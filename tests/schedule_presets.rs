//! Schedule-IR preset equivalence suite.
//!
//! The schedule IR replaces nothing at runtime: `lower_schedule` must hand
//! back exactly the plan objects the hand-written constructors built
//! before it existed. This suite pins that contract three ways:
//!
//! 1. **Golden digests.** The image-aware and batch-aware presets, lowered
//!    through the IR, must reproduce the same golden digests (cycles, DMA
//!    and bus counters, flops, bit-exact output checksum) that
//!    `tests/determinism.rs` pins for the hand-constructed plans — at host
//!    thread counts 1, 4, and 8.
//! 2. **Plan-for-plan identity.** Each named preset, lowered, produces a
//!    digest identical to the directly constructed plan it names — same
//!    simulated cycles, same output bits.
//! 3. **Reference equivalence.** Every preset that lowers legally for a
//!    shape agrees exactly with the 7-loop reference on lattice data.

use sw_perfmodel::select::Blocking;
use sw_tensor::init::lattice_tensor;
use sw_tensor::{conv2d_ref, ConvShape, Layout};
use swdnn::plans::{BatchAwarePlan, ConvPlan, ConvRun, DirectPlan, ImageAwarePlan, ReferencePlan};
use swdnn::{lower_schedule, LowerCtx, Schedule};

#[derive(PartialEq, Eq, Debug, Clone)]
struct RunDigest {
    cycles: u64,
    dma_get_bytes: u64,
    dma_put_bytes: u64,
    bus_vectors_sent: u64,
    bus_vectors_received: u64,
    flops: u64,
    output_bits: u64,
}

/// Order-sensitive checksum over the exact bit patterns of the output.
fn checksum(data: &[f64]) -> u64 {
    data.iter()
        .fold(0u64, |h, v| h.rotate_left(7) ^ v.to_bits())
}

fn digest(run: &ConvRun) -> RunDigest {
    let t = &run.timing.stats.totals;
    RunDigest {
        cycles: run.timing.cycles,
        dma_get_bytes: t.dma_get_bytes,
        dma_put_bytes: t.dma_put_bytes,
        bus_vectors_sent: t.bus_vectors_sent,
        bus_vectors_received: t.bus_vectors_received,
        flops: t.flops,
        output_bits: checksum(run.output.data()),
    }
}

/// Same goldens as `tests/determinism.rs` — the IR must not move them.
fn image_golden() -> RunDigest {
    RunDigest {
        cycles: 82512,
        dma_get_bytes: 368640,
        dma_put_bytes: 65536,
        bus_vectors_sent: 20736,
        bus_vectors_received: 145152,
        flops: 2359296,
        output_bits: 8771703832349549151,
    }
}

fn batch_golden() -> RunDigest {
    RunDigest {
        cycles: 114504,
        dma_get_bytes: 172032,
        dma_put_bytes: 16384,
        bus_vectors_sent: 9216,
        bus_vectors_received: 64512,
        flops: 589824,
        output_bits: 11020029646220698066,
    }
}

/// Run `schedule` on `shape` with lattice operands seeded `(seed, seed+1)`.
fn run_schedule(schedule: &Schedule, shape: ConvShape, seed: u64) -> ConvRun {
    let plan = lower_schedule(schedule, &shape, &LowerCtx::default())
        .unwrap_or_else(|e| panic!("{} must lower for {shape:?}: {e}", schedule.describe()));
    let input = lattice_tensor(shape.input_shape(), Layout::Nchw, seed);
    let filter = lattice_tensor(shape.filter_shape(), Layout::Nchw, seed + 1);
    plan.run(&shape, &input, &filter)
        .expect("lowered plan runs")
}

fn lowered_image_case() -> ConvRun {
    run_schedule(
        &Schedule::image_aware(32, 4),
        ConvShape::new(32, 16, 16, 2, 8, 3, 3),
        11,
    )
}

fn lowered_batch_case() -> ConvRun {
    run_schedule(
        &Schedule::batch_aware(2),
        ConvShape::new(16, 16, 16, 2, 4, 3, 3),
        21,
    )
}

#[test]
fn lowered_presets_reproduce_the_golden_digests() {
    assert_eq!(digest(&lowered_image_case()), image_golden());
    assert_eq!(digest(&lowered_batch_case()), batch_golden());
}

#[test]
fn lowered_preset_digests_are_thread_count_invariant() {
    for threads in [1usize, 4, 8] {
        let (img, bat) =
            sw_runtime::with_threads(threads, || (lowered_image_case(), lowered_batch_case()));
        assert_eq!(digest(&img), image_golden(), "image @ {threads} threads");
        assert_eq!(digest(&bat), batch_golden(), "batch @ {threads} threads");
    }
}

#[test]
fn each_preset_is_digest_identical_to_its_hand_built_plan() {
    // (preset, hand-built plan) pairs on a shape every mesh plan accepts.
    let shape = ConvShape::new(32, 16, 16, 4, 8, 3, 3);
    let input = lattice_tensor(shape.input_shape(), Layout::Nchw, 41);
    let filter = lattice_tensor(shape.filter_shape(), Layout::Nchw, 42);
    let pairs: Vec<(Schedule, Box<dyn ConvPlan>)> = vec![
        (
            Schedule::image_aware(32, 4),
            Box::new(ImageAwarePlan::new(Blocking { b_b: 32, b_co: 4 })),
        ),
        (Schedule::batch_aware(2), Box::new(BatchAwarePlan::new(2))),
        (Schedule::direct(), Box::new(DirectPlan::default())),
        (Schedule::reference(), Box::new(ReferencePlan::default())),
    ];
    for (schedule, hand) in pairs {
        let lowered = lower_schedule(&schedule, &shape, &LowerCtx::default())
            .unwrap_or_else(|e| panic!("{} must lower: {e}", schedule.describe()));
        assert_eq!(lowered.name(), hand.name(), "{}", schedule.describe());
        let from_ir = lowered.run(&shape, &input, &filter).unwrap();
        let by_hand = hand.run(&shape, &input, &filter).unwrap();
        assert_eq!(
            digest(&from_ir),
            digest(&by_hand),
            "lowering {} must be invisible: same cycles, same bits",
            schedule.describe()
        );
    }
}

#[test]
fn every_legal_preset_matches_the_reference_convolution() {
    // Lattice operands (quarter-integers) make every summation order exact,
    // so all presets — including the tap-outer patch-GEMM — must agree
    // with the 7-loop reference to the last bit.
    let presets = [
        Schedule::image_aware(32, 4),
        Schedule::image_aware(32, 8),
        Schedule::image_aware_ni(32, 4, 8),
        Schedule::batch_aware(2),
        Schedule::batch_aware(4),
        Schedule::direct(),
        Schedule::reference(),
        Schedule::patch_gemm(32),
        Schedule::patch_gemm(64),
    ];
    let shapes = [
        ConvShape::new(32, 16, 16, 4, 8, 3, 3),
        ConvShape::new(32, 8, 16, 2, 4, 1, 1),
    ];
    for shape in shapes {
        let input = lattice_tensor(shape.input_shape(), Layout::Nchw, 51);
        let filter = lattice_tensor(shape.filter_shape(), Layout::Nchw, 52);
        let expect = conv2d_ref(shape, &input, &filter);
        let mut legal = 0usize;
        for schedule in &presets {
            let Ok(plan) = lower_schedule(schedule, &shape, &LowerCtx::default()) else {
                continue;
            };
            legal += 1;
            let run = plan.run(&shape, &input, &filter).unwrap();
            assert_eq!(
                run.output.max_abs_diff(&expect),
                0.0,
                "{} on {shape:?} must be bit-identical with conv2d_ref",
                schedule.describe()
            );
        }
        assert!(
            legal >= 6,
            "expected most presets legal for {shape:?}, got {legal}"
        );
    }
}
