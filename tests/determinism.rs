//! Golden-cycle determinism suite.
//!
//! The zero-copy messaging path, the fused pack-once rotation, the
//! register-tiled microkernel, and the fused multi-round superstep engine
//! (with its leased broadcast buffers) are host-side optimisations: they
//! must not move *simulated* time or results by a single cycle or bit.
//! This suite pins that down three ways:
//!
//! 1. **Golden digests.** One image-aware and one batch-aware plan run
//!    against digests (cycles, DMA/bus counters, flops, an order-sensitive
//!    checksum of the exact output bit patterns) captured from the
//!    pre-optimisation implementation.
//! 2. **Thread-count independence.** The same runs repeated under host
//!    fan-outs of 1, 4, 8, and the machine default (via
//!    `sw_runtime::with_threads`, the policy every layer now shares) must
//!    produce identical digests.
//! 3. **Microkernel equivalence.** Forcing the scalar reference kernel
//!    (`gemm_mesh::force_reference_microkernel`) must not change anything,
//!    down to per-CPE clocks and counters.

use sw_perfmodel::select::Blocking;
use sw_perfmodel::ChipSpec;
use sw_sim::{LdmBuf, Mesh};
use sw_tensor::init::lattice_tensor;
use sw_tensor::{ConvShape, Layout};
use swdnn::plans::gemm_mesh::{self, regcomm_gemm, zero_c, GemmBlock};
use swdnn::plans::{BatchAwarePlan, ConvPlan, ConvRun, ImageAwarePlan};

#[derive(PartialEq, Eq, Debug, Clone)]
struct RunDigest {
    cycles: u64,
    dma_get_bytes: u64,
    dma_put_bytes: u64,
    bus_vectors_sent: u64,
    bus_vectors_received: u64,
    flops: u64,
    output_bits: u64,
}

/// Order-sensitive checksum over the exact bit patterns of the output.
fn checksum(data: &[f64]) -> u64 {
    data.iter()
        .fold(0u64, |h, v| h.rotate_left(7) ^ v.to_bits())
}

fn digest(run: &ConvRun) -> RunDigest {
    let t = &run.timing.stats.totals;
    RunDigest {
        cycles: run.timing.cycles,
        dma_get_bytes: t.dma_get_bytes,
        dma_put_bytes: t.dma_put_bytes,
        bus_vectors_sent: t.bus_vectors_sent,
        bus_vectors_received: t.bus_vectors_received,
        flops: t.flops,
        output_bits: checksum(run.output.data()),
    }
}

/// Golden digests captured from the pre-zero-copy implementation (two
/// parallel supersteps per rotation, per-receiver payload clones, scalar
/// triple-loop microkernel). Any drift here is a simulation-fidelity bug,
/// not a perf regression.
fn image_golden() -> RunDigest {
    RunDigest {
        cycles: 82512,
        dma_get_bytes: 368640,
        dma_put_bytes: 65536,
        bus_vectors_sent: 20736,
        bus_vectors_received: 145152,
        flops: 2359296,
        output_bits: 8771703832349549151,
    }
}

fn batch_golden() -> RunDigest {
    RunDigest {
        cycles: 114504,
        dma_get_bytes: 172032,
        dma_put_bytes: 16384,
        bus_vectors_sent: 9216,
        bus_vectors_received: 64512,
        flops: 589824,
        output_bits: 11020029646220698066,
    }
}

fn image_case() -> ConvRun {
    let shape = ConvShape::new(32, 16, 16, 2, 8, 3, 3);
    let plan = ImageAwarePlan::new(Blocking { b_b: 32, b_co: 4 });
    plan.supports(&shape).expect("image shape supported");
    let input = lattice_tensor(shape.input_shape(), Layout::Nchw, 11);
    let filter = lattice_tensor(shape.filter_shape(), Layout::Nchw, 12);
    plan.run(&shape, &input, &filter).expect("image plan runs")
}

fn batch_case() -> ConvRun {
    let shape = ConvShape::new(16, 16, 16, 2, 4, 3, 3);
    let plan = BatchAwarePlan::new(2);
    plan.supports(&shape).expect("batch shape supported");
    let input = lattice_tensor(shape.input_shape(), Layout::Nchw, 21);
    let filter = lattice_tensor(shape.filter_shape(), Layout::Nchw, 22);
    plan.run(&shape, &input, &filter).expect("batch plan runs")
}

#[test]
fn image_aware_plan_matches_golden_digest() {
    assert_eq!(digest(&image_case()), image_golden());
}

#[test]
fn batch_aware_plan_matches_golden_digest() {
    assert_eq!(digest(&batch_case()), batch_golden());
}

#[test]
fn digests_are_identical_across_host_thread_counts() {
    for threads in [1usize, 4, 8] {
        let (img, bat) = sw_runtime::with_threads(threads, || (image_case(), batch_case()));
        assert_eq!(digest(&img), image_golden(), "image @ {threads} threads");
        assert_eq!(digest(&bat), batch_golden(), "batch @ {threads} threads");
    }
    // Machine default (whatever available_parallelism says).
    assert_eq!(digest(&image_case()), image_golden());
    assert_eq!(digest(&batch_case()), batch_golden());
}

#[test]
fn reference_microkernel_matches_golden_digest() {
    // The tiled and scalar kernels accumulate in the same order, so the
    // flag must be invisible in every digest field.
    gemm_mesh::force_reference_microkernel(true);
    let d = (digest(&image_case()), digest(&batch_case()));
    gemm_mesh::force_reference_microkernel(false);
    assert_eq!(d.0, image_golden());
    assert_eq!(d.1, batch_golden());
}

#[test]
fn fused_supersteps_match_unfused_baseline_bit_for_bit() {
    // The fused multi-round superstep path (DESIGN.md §14) is pure host
    // mechanics: at every thread count its digests and per-CPE snapshots
    // must equal the unfused round-per-handoff loop's exactly. The
    // `SWDNN_UNFUSED=1` opt-out must therefore also be invisible — CI runs
    // this whole suite once under that env to pin the other direction.
    let unfused = sw_runtime::with_threads(1, || {
        gemm_mesh::force_unfused(true);
        let r = (
            digest(&image_case()),
            digest(&batch_case()),
            mesh_gemm_snapshots(),
        );
        gemm_mesh::force_unfused(false);
        r
    });
    assert_eq!(unfused.0, image_golden());
    assert_eq!(unfused.1, batch_golden());
    for threads in [1usize, 4, 8] {
        let fused = sw_runtime::with_threads(threads, || {
            (
                digest(&image_case()),
                digest(&batch_case()),
                mesh_gemm_snapshots(),
            )
        });
        assert_eq!(fused.0, unfused.0, "image digest @ {threads} threads");
        assert_eq!(fused.1, unfused.1, "batch digest @ {threads} threads");
        assert_eq!(fused.2, unfused.2, "per-CPE snapshots @ {threads} threads");
    }
}

/// Per-CPE state for the direct mesh-level GEMM below.
struct St {
    a: Vec<f64>,
    b: Vec<f64>,
    c: LdmBuf,
}

/// Run one raw register-communication GEMM and snapshot every CPE.
fn mesh_gemm_snapshots() -> Vec<(usize, usize, u64, sw_sim::CpeStats)> {
    let (m8, n8, k8) = (4usize, 8usize, 4usize);
    let mut mesh = Mesh::new(ChipSpec::sw26010(), |row, col| St {
        a: (0..k8 * m8)
            .map(|i| ((row * 131 + col * 17 + i * 7) % 23) as f64 - 11.0)
            .collect(),
        b: (0..k8 * n8)
            .map(|i| ((row * 19 + col * 113 + i * 5) % 29) as f64 - 14.0)
            .collect(),
        c: LdmBuf { offset: 0, len: 0 },
    });
    mesh.superstep(|ctx, s| {
        s.c = ctx.ldm_alloc(m8 * n8)?;
        Ok(())
    })
    .unwrap();
    zero_c(&mut mesh, |s: &St| s.c).unwrap();
    regcomm_gemm(
        &mut mesh,
        GemmBlock::dense(m8, n8, k8, true),
        |_, s: &St, dst: &mut Vec<f64>| dst.extend_from_slice(&s.a),
        |_, s: &St, dst: &mut Vec<f64>| dst.extend_from_slice(&s.b),
        |s| (s.c, 0),
    )
    .unwrap();
    mesh.assert_inboxes_empty().unwrap();
    mesh.cpe_snapshots()
}

#[test]
fn per_cpe_clocks_and_counters_are_thread_count_invariant() {
    // Not just the aggregate: every individual CPE's clock and counters
    // must be identical whichever host schedule executed it.
    let baseline = sw_runtime::with_threads(1, mesh_gemm_snapshots);
    assert_eq!(baseline.len(), 64);
    for threads in [4usize, 8] {
        let got = sw_runtime::with_threads(threads, mesh_gemm_snapshots);
        assert_eq!(got, baseline, "per-CPE snapshots @ {threads} threads");
    }
    assert_eq!(mesh_gemm_snapshots(), baseline, "machine-default threads");
}
