//! Integration tests for the batch-serving engine (`swdnn::serve`): the
//! end-to-end claims the serving PR makes, exercised through the public
//! API only.
//!
//! 1. **Plan-cache determinism** — repeated lookups of the same shape hit
//!    the cache and return the exact entry (same cycles, same model), and
//!    a whole engine run is reproducible number-for-number.
//! 2. **Backpressure** — a bounded queue sheds overload with
//!    [`SwdnnError::Overloaded`], never with OOM or panic, and recovers
//!    after a drain.
//! 3. **Micro-batching** — the cap trigger fires on a full same-shape
//!    batch; the deadline trigger releases stragglers.
//! 4. **Sharded correctness** — a convolution row-sharded over the 4
//!    simulated CGs is bit-identical to the unsharded plan and to the
//!    scalar reference.

use std::sync::Arc;
use sw_tensor::{conv2d_ref, init::lattice_tensor, ConvShape, Layout};
use swdnn::serve::{BatchPolicy, PlanCache, ServeConfig, ServeEngine, ShardedDispatcher};
use swdnn::{ChipSpec, Conv2d, SwdnnError};

/// Small shape whose `ro = 8` splits across the chip's 4 CGs.
fn shape() -> ConvShape {
    ConvShape::new(16, 8, 8, 8, 8, 3, 3)
}

fn engine(max_batch: usize, queue_limit: usize) -> ServeEngine {
    ServeEngine::new(ServeConfig {
        policy: BatchPolicy {
            max_batch,
            deadline_us: 2_000,
        },
        queue_limit,
        ..ServeConfig::default()
    })
    .unwrap()
}

#[test]
fn plan_cache_hits_are_deterministic_and_identical() {
    let cache = PlanCache::new();
    let chip = ChipSpec::sw26010();
    let first = cache.plan(&chip, &shape(), None).unwrap();
    for _ in 0..10 {
        let again = cache.plan(&chip, &shape(), None).unwrap();
        assert!(Arc::ptr_eq(&first, &again), "hits return the cached entry");
        assert_eq!(first.timing.cycles, again.timing.cycles);
        assert_eq!(first.model.gflops_per_cg, again.model.gflops_per_cg);
    }
    let s = cache.stats();
    assert_eq!((s.plan_hits, s.plan_misses), (10, 1));
    assert!(s.plan_hit_rate() > 0.9);

    // A fresh cache re-derives the exact same timing: the simulation is
    // deterministic, so cached and uncached answers can never diverge.
    let fresh = PlanCache::new().plan(&chip, &shape(), None).unwrap();
    assert_eq!(fresh.timing.cycles, first.timing.cycles);
    assert_eq!(fresh.blocking, first.blocking);
}

#[test]
fn engine_runs_are_reproducible_end_to_end() {
    let run = || {
        let mut e = engine(4, 64);
        for _ in 0..12 {
            e.submit(shape()).unwrap();
        }
        e.drain().unwrap();
        let s = e.summary();
        (
            s.served,
            s.batches,
            s.p50_latency_us,
            s.p99_latency_us,
            e.counters.busy_cycles.get(),
        )
    };
    assert_eq!(run(), run(), "same load, same numbers");
}

#[test]
fn bounded_queue_sheds_overload_and_recovers() {
    let mut e = engine(4, 16);
    let mut rejected = 0u64;
    for _ in 0..160 {
        match e.submit(shape()) {
            Ok(_) => {}
            Err(SwdnnError::Overloaded {
                depth,
                limit,
                retry_after_us,
            }) => {
                assert_eq!((depth, limit), (16, 16));
                assert!(
                    retry_after_us > 0,
                    "a shed response must carry a usable retry hint"
                );
                rejected += 1;
            }
            Err(other) => panic!("overload must reject with Overloaded, got {other}"),
        }
    }
    assert_eq!(rejected, 144, "everything past the bound is shed");
    assert_eq!(e.queue_depth(), 16);
    assert_eq!(e.drain().unwrap(), 16, "queued work still completes");
    // The engine is healthy again: new submissions are accepted and served.
    e.submit(shape()).unwrap();
    e.drain().unwrap();
    let s = e.summary();
    assert_eq!(s.served, 17);
    assert_eq!(s.rejected, 144);
}

#[test]
fn cap_trigger_batches_and_deadline_releases_stragglers() {
    let mut e = engine(4, 64);
    // A full batch releases immediately on the cap…
    for _ in 0..4 {
        e.submit(shape()).unwrap();
    }
    assert_eq!(e.poll().unwrap(), 4, "cap trigger at max_batch");
    // …while a lone straggler waits for its deadline, not forever.
    e.submit(shape()).unwrap();
    assert_eq!(e.poll().unwrap(), 0, "no trigger before the deadline");
    e.advance_us(2_000);
    assert_eq!(e.poll().unwrap(), 1, "deadline releases the straggler");
    let straggler = *e.completions().last().unwrap();
    assert!(straggler.latency_us() >= 2_000);
}

#[test]
fn sharded_run_matches_unsharded_and_reference_bit_for_bit() {
    let shape = shape();
    let input = lattice_tensor(shape.input_shape(), Layout::Nchw, 17);
    let filter = lattice_tensor(shape.filter_shape(), Layout::Nchw, 18);
    let chip = ChipSpec::sw26010();

    let unsharded = Conv2d::new(shape)
        .unwrap()
        .forward(&input, &filter)
        .unwrap();
    let reference = conv2d_ref(shape, &input, &filter);
    for cgs in [1, 2, 4] {
        let d = ShardedDispatcher::new(chip, cgs).unwrap();
        let (out, wall) = d.run(&shape, &input, &filter).unwrap();
        assert_eq!(
            out.max_abs_diff(&unsharded.output),
            0.0,
            "{cgs}-way shard vs unsharded"
        );
        assert_eq!(out.max_abs_diff(&reference), 0.0, "{cgs}-way shard vs ref");
        assert!(wall > 0);
    }
}

#[test]
fn overload_does_not_improve_reported_p99() {
    // Regression test for latency accounting: shedding must never flatter
    // the completion percentiles. Serve the same total demand twice — once
    // within queue capacity, once at 10× overload where most requests are
    // shed — and require the overloaded run's reported p99 over *completed*
    // requests to be at least the uncontended one's.
    let run = |queue_limit: usize, offered: usize| {
        let mut e = engine(4, queue_limit);
        for _ in 0..offered {
            let _ = e.submit(shape());
        }
        e.drain().unwrap();
        e.summary()
    };
    let calm = run(64, 16);
    let overloaded = run(16, 160);
    assert_eq!(calm.rejected, 0);
    assert_eq!(overloaded.rejected, 144);
    assert!(
        overloaded.p99_latency_us >= calm.p99_latency_us,
        "shedding must not improve p99: overloaded {} vs calm {}",
        overloaded.p99_latency_us,
        calm.p99_latency_us
    );
    // The dropped requests live in their own histogram, not in p99.
    assert_eq!(overloaded.shed_p99_wait_us, 0, "sheds waited 0 µs in queue");
}

#[test]
fn serving_hits_cache_after_warmup_under_mixed_shapes() {
    // Two interleaved shapes: the batcher keeps them in separate batches
    // and each shape's plan is resolved exactly once.
    let other = ConvShape::new(16, 8, 16, 8, 8, 3, 3);
    let mut e = engine(4, 64);
    for round in 0..6 {
        for _ in 0..4 {
            e.submit(if round % 2 == 0 { shape() } else { other })
                .unwrap();
        }
        e.drain().unwrap();
    }
    let s = e.summary();
    assert_eq!(s.served, 24);
    let cs = e.cache_stats();
    assert_eq!(cs.plan_misses, 2, "one resolution per distinct slice shape");
    assert_eq!(cs.plan_hits, 4);
    assert_eq!(cs.plan_entries, 2);
}
