//! Cluster-level determinism and resilience suite.
//!
//! Four properties the multi-chip layer must hold, all end to end:
//!
//! 1. **Gradient bit-identity.** Data-parallel training produces the
//!    exact same parameters at 1/2/4/8 chips (and ragged counts), every
//!    worker-pool thread count, and every gradient bucket size — because
//!    the reduction order is fixed by microbatch index, not by the
//!    collective schedule, the bucketing, or the host schedule.
//! 2. **Routing determinism.** The fleet's routing-decision fingerprint
//!    and every serving number derived from it replay bit-for-bit across
//!    runs and thread counts.
//! 3. **Failure without loss.** Killing a serving chip with queued work
//!    reroutes everything to survivors; killing a *training* chip
//!    mid-step reshards its microbatches onto survivors and the step
//!    finishes with parameters identical to a healthy step.
//! 4. **Overlap is time-only.** Bucketized overlap strictly reduces the
//!    modeled step time and moves the `collective_overlap_permille`
//!    gauge without touching a parameter bit.
//!
//! `SWDNN_CHIP_FAULT_SEED` reseeds the chip-failure fault plan (CI runs
//! the suite once under `SWDNN_THREADS=2` with it set); the assertions
//! are seed-independent because a rate-1.0 plan always kills the first
//! active chip and the seed only moves the fail *point* within the step.

use sw_sim::FaultPlan;
use sw_tensor::{Layout, Shape4, Tensor4};
use swdnn::cluster::{Cluster, ClusterConfig, DataParallelTrainer, TrainConfig};
use swdnn::layers::Engine;
use swdnn::optim::Optimizer;
use swdnn::serve::{BatchPolicy, Priority, RequestClass, ServeConfig};
use swdnn::zoo::{lenet_12, serving_mix};
use swdnn::SwdnnError;

/// Deterministic two-class 12×12 task (same construction the trainer's
/// unit tests use, so failures here isolate the integration surface).
fn task(batch: usize, seed: u64) -> (Tensor4<f64>, Vec<usize>) {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut x = Tensor4::zeros(Shape4::new(batch, 1, 12, 12), Layout::Nchw);
    let mut y = Vec::new();
    for b in 0..batch {
        let class = (next() % 2) as usize;
        for r in 0..12 {
            for c in 0..12 {
                let noise = (next() % 1000) as f64 / 1e4 - 0.05;
                let v = if (class == 0) == (c < 6) { 1.0 } else { 0.1 };
                x.set(b, 0, r, c, v + noise);
            }
        }
        y.push(class);
    }
    (x, y)
}

/// Build the suite's standard trainer (8 microbatches of 4 over
/// lenet_12) with the given config knobs, run 3 steps, and return the
/// flattened parameters.
fn train_params_cfg(cfg: TrainConfig) -> Vec<f64> {
    let (x, y) = task(32, 0xD474);
    let net = lenet_12(32 / cfg.microbatches, 1, 2, Engine::Host, 42).expect("build lenet");
    let mut t = DataParallelTrainer::new(net, Optimizer::sgd(0.1), cfg).expect("build trainer");
    for _ in 0..3 {
        t.step(&x, &y).expect("train step");
    }
    t.parameters()
}

/// Train 3 steps at `chips` chips and return the flattened parameters.
fn train_params(chips: usize) -> Vec<f64> {
    train_params_cfg(TrainConfig {
        chips,
        microbatches: 8,
        ..TrainConfig::default()
    })
}

#[test]
fn gradients_bit_identical_across_chips_and_thread_counts() {
    // The comparand: 1 chip on a single-threaded pool.
    let reference = sw_runtime::with_threads(1, || train_params(1));
    assert!(!reference.is_empty());
    for threads in [1usize, 4, 8] {
        for chips in [1usize, 2, 4, 8] {
            let got = sw_runtime::with_threads(threads, || train_params(chips));
            assert_eq!(
                got, reference,
                "parameters diverged at {chips} chips / {threads} threads"
            );
        }
    }
}

#[test]
fn bucketized_allreduce_bit_identical_at_every_chip_thread_bucket_combo() {
    // The property the whole collective refactor rests on: bucket size
    // is a pure timing knob. Monolithic 1-chip single-thread training is
    // the comparand; every (chips × threads × bucket size) combination
    // must reproduce it bit for bit — including ragged chip counts that
    // don't divide the 8 microbatches.
    let reference = sw_runtime::with_threads(1, || train_params(1));
    for threads in [1usize, 4, 8] {
        for chips in [1usize, 2, 3, 4, 5, 8] {
            for bucket_params in [Some(1), Some(50), Some(100), Some(300), None] {
                let got = sw_runtime::with_threads(threads, || {
                    train_params_cfg(TrainConfig {
                        chips,
                        microbatches: 8,
                        bucket_params,
                        ..TrainConfig::default()
                    })
                });
                assert_eq!(
                    got, reference,
                    "parameters diverged at {chips} chips / {threads} threads / \
                     bucket_params={bucket_params:?}"
                );
            }
        }
    }
}

#[test]
fn fewer_microbatches_than_chips_is_a_structured_error() {
    let net = lenet_12(4, 1, 2, Engine::Host, 42).expect("build lenet");
    let err = DataParallelTrainer::new(
        net,
        Optimizer::sgd(0.1),
        TrainConfig {
            chips: 8,
            microbatches: 4,
            ..TrainConfig::default()
        },
    )
    .err()
    .expect("4 microbatches cannot feed 8 chips");
    match err {
        SwdnnError::InsufficientMicrobatches {
            microbatches,
            chips,
        } => {
            assert_eq!((microbatches, chips), (4, 8));
        }
        other => panic!("expected InsufficientMicrobatches, got {other}"),
    }
}

/// The chip-failure fault seed: CI sets `SWDNN_CHIP_FAULT_SEED` to run
/// the suite under a different decision stream; the assertions hold for
/// any seed because the failure *choice* is rate-1.0 deterministic and
/// the seed only moves the within-step fail point.
fn chip_fault_seed() -> u64 {
    std::env::var("SWDNN_CHIP_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xFA_17)
}

#[test]
fn training_chip_failure_reshards_and_keeps_parameters_bit_identical() {
    let (x, y) = task(32, 0xD474);
    let build = |fault: FaultPlan| {
        let net = lenet_12(4, 1, 2, Engine::Host, 42).expect("build lenet");
        DataParallelTrainer::new(
            net,
            Optimizer::sgd(0.1),
            TrainConfig {
                chips: 4,
                microbatches: 8,
                fault,
                ..TrainConfig::default()
            },
        )
        .expect("build trainer")
    };
    let mut healthy = build(FaultPlan::none(chip_fault_seed()));
    let mut faulty = build(FaultPlan::none(chip_fault_seed()).with_chip_fail_rate(1.0));
    for step in 0..3u64 {
        let rh = healthy.step(&x, &y).expect("healthy step");
        let rf = faulty.step(&x, &y).expect("faulty step");
        // Rate 1.0 kills the lowest-id active chip every step until one
        // survivor remains; each victim's whole assignment reshards.
        assert_eq!(rf.failed_chip, Some(step as usize), "victim order");
        assert!(rf.resharded_microbatches > 0, "no microbatch may be lost");
        assert!(
            rf.step_us > rh.step_us,
            "recomputation must cost simulated time"
        );
        assert_eq!(rf.loss, rh.loss, "losses must agree bit for bit");
        assert_eq!(
            healthy.parameters(),
            faulty.parameters(),
            "chip failure moved parameters at step {step}"
        );
    }
    assert_eq!(faulty.active_chips(), vec![3], "three failures in 3 steps");
    // A lone survivor keeps training rather than self-destructing.
    let last = faulty.step(&x, &y).expect("lone survivor step");
    assert_eq!(last.failed_chip, None);
    healthy.step(&x, &y).expect("healthy step 4");
    assert_eq!(healthy.parameters(), faulty.parameters());
}

#[test]
fn overlap_hides_wire_time_without_touching_numerics() {
    let (x, y) = task(32, 0xD474);
    let run = |overlap: bool| {
        let net = lenet_12(4, 1, 2, Engine::Host, 42).expect("build lenet");
        let mut t = DataParallelTrainer::new(
            net,
            Optimizer::sgd(0.1),
            TrainConfig {
                chips: 4,
                microbatches: 8,
                bucket_params: Some(100),
                overlap,
                topology: sw_perfmodel::Topology::sw_supernode(),
                ..TrainConfig::default()
            },
        )
        .expect("build trainer");
        let mut last = None;
        for _ in 0..3 {
            last = Some(t.step(&x, &y).expect("step"));
        }
        (last.unwrap(), t.parameters())
    };
    let (over, over_params) = run(true);
    let (serial, serial_params) = run(false);
    assert_eq!(over_params, serial_params, "overlap is a timing knob only");
    assert!(over.collective.buckets > 1);
    assert!(over.collective.overlap_permille > 0, "gauge must move");
    assert_eq!(serial.collective.overlap_permille, 0);
    assert!(
        over.step_us < serial.step_us,
        "overlapped {} µs must strictly beat serial {} µs",
        over.step_us,
        serial.step_us
    );
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        policy: BatchPolicy {
            max_batch: 4,
            deadline_us: 1_000,
        },
        queue_limit: 32,
        ..ServeConfig::default()
    }
}

/// Replay a deterministic mixed-priority trace through a 4-chip fleet
/// and return (fingerprint, served, p99).
fn fleet_run() -> (u64, u64, u64) {
    let mut c = Cluster::new(ClusterConfig {
        chips: 4,
        serve: serve_config(),
        ..ClusterConfig::default()
    })
    .expect("build cluster");
    let shapes = serving_mix();
    for i in 0..48usize {
        let (_, shape) = shapes[i % shapes.len()];
        let class = RequestClass {
            priority: if i % 3 == 0 {
                Priority::Low
            } else {
                Priority::High
            },
            tenant: (i % 2) as u32,
            deadline_us: None,
        };
        c.submit_at(shape, class, (i as u64) * 120).expect("submit");
    }
    c.drain().expect("drain");
    let s = c.summary();
    (c.route_fingerprint(), s.served, s.p99_latency_us)
}

#[test]
fn routing_fingerprint_is_identical_across_runs_and_thread_counts() {
    let reference = sw_runtime::with_threads(1, fleet_run);
    assert!(reference.1 > 0, "the trace must actually serve");
    for threads in [1usize, 4, 8] {
        let got = sw_runtime::with_threads(threads, fleet_run);
        assert_eq!(got, reference, "fleet replay diverged @ {threads} threads");
    }
    assert_eq!(fleet_run(), reference, "machine-default threads");
}

#[test]
fn chip_failure_loses_no_high_priority_work() {
    let mut c = Cluster::new(ClusterConfig {
        chips: 4,
        serve: serve_config(),
        ..ClusterConfig::default()
    })
    .expect("build cluster");
    let shapes = serving_mix();

    // Queue high-priority work on every chip without letting it dispatch
    // (everything submitted at t=0, nothing run yet).
    let mut offered_high = 0u64;
    let mut victim = None;
    for i in 0..24usize {
        let (_, shape) = shapes[i % shapes.len()];
        let class = RequestClass {
            priority: Priority::High,
            tenant: 0,
            deadline_us: None,
        };
        let (chip, _) = c.submit_at(shape, class, 0).expect("submit");
        offered_high += 1;
        victim.get_or_insert(chip);
    }
    let victim = victim.expect("at least one request routed");
    let queued = c.engine(victim).queue_depth();
    assert!(queued > 0, "the victim chip must hold queued work");

    let (moved, shed) = c.fail_chip(victim).expect("fail chip");
    assert_eq!(moved + shed, queued, "every evacuated request accounted");
    assert_eq!(c.engine(victim).queue_depth(), 0, "victim fully evacuated");

    c.drain().expect("drain survivors");
    let s = c.summary();
    // Zero lost high-priority work: all of it either completed on a
    // surviving chip or was shed through admission (counted in rejected).
    assert_eq!(
        s.served + s.rejected,
        offered_high,
        "high-priority accounting leak across chip failure"
    );
    assert_eq!(shed as u64, s.rejected);
    assert!(s.rerouted as usize == moved);

    // The dead chip takes no further traffic until recovery.
    for i in 0..8usize {
        let (_, shape) = shapes[i % shapes.len()];
        let (chip, _) = c
            .submit_at(shape, RequestClass::default(), c.now_us() + 1)
            .expect("submit after failure");
        assert_ne!(chip, victim, "down chip must be skipped");
    }
    c.recover_chip(victim);
    assert!(!c.is_down(victim));
    c.drain().expect("drain tail");
}

#[test]
fn every_chip_down_surfaces_a_structured_error() {
    let mut c = Cluster::new(ClusterConfig {
        chips: 2,
        serve: serve_config(),
        ..ClusterConfig::default()
    })
    .expect("build cluster");
    c.fail_chip(0).expect("fail 0");
    c.fail_chip(1).expect("fail 1");
    let err = c
        .submit_at(serving_mix()[0].1, RequestClass::default(), 0)
        .expect_err("no chip can take the request");
    match err {
        SwdnnError::ClusterUnavailable { chips } => assert_eq!(chips, 2),
        other => panic!("expected ClusterUnavailable, got {other}"),
    }
}
