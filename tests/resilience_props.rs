//! Property-based tests on the fault-injection + recovery machinery.
//!
//! Two invariants the resilient executor promises:
//!
//! 1. **No shape is ever left planless.** Any shape `Conv2d::new` accepts
//!    runs to completion through the fallback chain — in the worst case on
//!    the host reference plan — so `NoPlan` never reaches the caller.
//! 2. **Faults cost time, never accuracy.** Under injected DMA fault rates
//!    up to 1e-3 with retries enabled, outputs are bit-for-bit identical to
//!    the fault-free run, the reported cycle count never decreases, and
//!    whenever a retry fired its overhead shows up in the retry counters
//!    (wall cycles may stay flat while double-buffering slack absorbs it).

use proptest::prelude::*;
use sw_tensor::init::lattice_tensor;
use sw_tensor::{ConvShape, Layout};
use swdnn::resilient::ResilientExecutor;
use swdnn::{FaultPlan, SwdnnError};

/// Shapes spanning mesh-friendly and mesh-hostile geometries: odd channel
/// counts, tiny batches, and degenerate 1×1 images are all fair game.
fn arb_shape() -> impl Strategy<Value = ConvShape> {
    (
        1usize..33, // batch
        1usize..17, // ni
        1usize..17, // no
        1usize..7,  // ro
        1usize..9,  // co
        1usize..4,  // kr
        1usize..4,  // kc
    )
        .prop_map(|(b, ni, no, ro, co, kr, kc)| ConvShape::new(b, ni, no, ro, co, kr, kc))
}

/// Shapes the mesh plans actually map (so fault injection exercises real
/// DMA traffic, not the host fallback).
fn arb_mesh_shape() -> impl Strategy<Value = ConvShape> {
    (1usize..3, 1usize..3, 1usize..3, 1usize..3)
        .prop_map(|(b, ni, no, c)| ConvShape::new(32 * b, 8 * ni, 8 * no, 4, 4 * c, 3, 3))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn every_accepted_shape_completes_without_noplan(shape in arb_shape()) {
        let input = lattice_tensor(shape.input_shape(), Layout::Nchw, 21);
        let filter = lattice_tensor(shape.filter_shape(), Layout::Nchw, 22);
        match ResilientExecutor::new().run(&shape, &input, &filter) {
            Ok(rep) => {
                prop_assert_eq!(rep.run.output.shape(), shape.output_shape());
                prop_assert!(rep.run.output.data().iter().all(|v| v.is_finite()));
            }
            Err(SwdnnError::NoPlan(s)) => {
                return Err(TestCaseError::fail(format!(
                    "fallback chain surfaced NoPlan for {s}"
                )));
            }
            Err(e) => {
                return Err(TestCaseError::fail(format!("unexpected failure: {e}")));
            }
        }
    }

    #[test]
    fn low_rate_dma_faults_cost_cycles_not_accuracy(
        shape in arb_mesh_shape(),
        seed in 0u64..1_000,
        rate_millis in 1u32..=10,
    ) {
        let rate = rate_millis as f64 * 1e-4; // 1e-4 ..= 1e-3
        let input = lattice_tensor(shape.input_shape(), Layout::Nchw, 23);
        let filter = lattice_tensor(shape.filter_shape(), Layout::Nchw, 24);
        let clean = ResilientExecutor::new().run(&shape, &input, &filter).unwrap();
        let faulty = ResilientExecutor::new()
            .with_fault(Some(FaultPlan::none(seed).with_dma_fail_rate(rate)))
            .run(&shape, &input, &filter)
            .unwrap();
        // Bit-for-bit identical output: recovery replays the exact work.
        prop_assert_eq!(faulty.run.output.max_abs_diff(&clean.run.output), 0.0);
        // Retry overhead is charged into the timing model, never hidden.
        // Wall cycles may stay flat while double-buffering slack absorbs
        // the backoff, but they can never shrink, and the consumed slack
        // is always visible in the retry counters.
        prop_assert!(faulty.run.timing.cycles >= clean.run.timing.cycles);
        if faulty.dma_retries > 0 {
            prop_assert!(
                faulty.retry_cycles > 0,
                "retries fired ({}) but no overhead was charged",
                faulty.dma_retries
            );
        }
    }
}
