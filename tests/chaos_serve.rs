//! Property tests for the chaos-serving machinery: the per-CG circuit
//! breaker's state machine checked against an independent model, and the
//! end-to-end guarantee that a seeded fault stream produces identical
//! breaker transitions and serving numbers at any worker-pool thread
//! count.
//!
//! 1. **Threshold exactness** — from Closed, a breaker trips on exactly
//!    the `trip_after`-th *consecutive* failure, never earlier, and any
//!    interleaved success resets the streak (checked against a counter
//!    model over arbitrary outcome streams).
//! 2. **Single probe** — once tripped, no route is offered during the
//!    cooldown; afterwards exactly one probe is admitted no matter how
//!    often availability is asked, until the probe's outcome lands (or its
//!    admission is explicitly cancelled).
//! 3. **Thread-count independence** — a full chaos serving run (injected
//!    DMA faults, a dead CPE, priority traffic) replays
//!    number-for-number under `sw_runtime::with_threads` at 1, 4, and 8
//!    lanes: same completions, same drops, same breaker snapshot, same
//!    tags.

use proptest::prelude::*;
use sw_tensor::ConvShape;
use swdnn::serve::{
    Availability, BatchPolicy, BreakerPolicy, BreakerState, CgBreaker, ChaosConfig, HealthBoard,
    Priority, RequestClass, ServeConfig, ServeEngine,
};
use swdnn::FaultPlan;

fn policy(trip_after: u32, cooldown_us: u64) -> BreakerPolicy {
    BreakerPolicy {
        trip_after,
        cooldown_us,
    }
}

/// Outcome streams: `true` = the CG's slice succeeded.
fn arb_outcomes() -> impl Strategy<Value = Vec<bool>> {
    proptest::collection::vec((0u32..2).prop_map(|b| b == 1), 1..48)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn trips_exactly_at_the_configured_threshold(
        outcomes in arb_outcomes(),
        trip_after in 1u32..6,
    ) {
        let p = policy(trip_after, 1_000);
        let mut b = CgBreaker::default();
        // Independent model: a bare consecutive-failure counter.
        let mut streak = 0u32;
        for (i, &ok) in outcomes.iter().enumerate() {
            if b.state() != BreakerState::Closed {
                break; // Closed-phase property only; half-open is below.
            }
            let tripped = b.record(ok, i as u64, &p);
            streak = if ok { 0 } else { streak + 1 };
            prop_assert_eq!(
                tripped,
                streak == trip_after,
                "step {}: streak {} vs threshold {}",
                i, streak, trip_after
            );
            if streak > 0 && streak < trip_after {
                prop_assert_eq!(b.state(), BreakerState::Closed);
                prop_assert_eq!(b.consecutive_failures(), streak);
            }
            if tripped {
                prop_assert_eq!(
                    b.state(),
                    BreakerState::Open { until_us: i as u64 + 1_000 }
                );
                prop_assert_eq!(b.stats.trips, 1);
            }
        }
    }

    #[test]
    fn half_open_admits_exactly_one_probe_under_any_polling(
        cooldown_us in 100u64..10_000,
        asks_during in 0usize..6,
        asks_after in 1usize..6,
        probe_succeeds in (0u32..2).prop_map(|b| b == 1),
    ) {
        let p = policy(1, cooldown_us);
        let mut b = CgBreaker::default();
        prop_assert!(b.record(false, 0, &p), "trip_after 1 trips immediately");
        // However often the router asks during the cooldown, nothing routes.
        for i in 0..asks_during {
            let t = (i as u64 * cooldown_us.saturating_sub(1)) / asks_during.max(1) as u64;
            prop_assert_eq!(b.availability(t), Availability::Unavailable);
        }
        // After the cooldown, the first ask admits the single probe and
        // every further ask is refused until the outcome lands.
        prop_assert_eq!(b.availability(cooldown_us), Availability::Probe);
        for _ in 0..asks_after {
            prop_assert_eq!(b.availability(cooldown_us), Availability::Unavailable);
        }
        prop_assert_eq!(b.stats.probes, 1);
        let retrip = b.record(probe_succeeds, cooldown_us, &p);
        if probe_succeeds {
            prop_assert!(!retrip);
            prop_assert_eq!(b.state(), BreakerState::Closed);
            prop_assert_eq!(b.availability(cooldown_us), Availability::Ready);
        } else {
            prop_assert!(retrip, "failed probe must re-open");
            prop_assert_eq!(
                b.state(),
                BreakerState::Open { until_us: 2 * cooldown_us }
            );
        }
    }

    #[test]
    fn board_transitions_replay_identically_for_a_seeded_stream(
        seed in 0u64..1_000,
        cgs in 2usize..5,
    ) {
        // Drive two boards with the identical derived outcome stream and
        // demand identical routes, trip points, and snapshots — the board
        // must have no hidden state beyond what the stream determines.
        let run = || {
            let mut board = HealthBoard::new(cgs, policy(2, 500));
            let mut log = Vec::new();
            let mut rng = seed;
            for step in 0u64..40 {
                let now = step * 100;
                let route = board.route(now);
                for &g in &route.cgs {
                    rng = rng
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let ok = (rng >> 33) % 4 != 0; // 25% failure rate
                    board.record(g, ok, now);
                }
                log.push((route.cgs, route.probes, board.open_count()));
            }
            (log, board.totals(), board.snapshot())
        };
        prop_assert_eq!(run(), run());
    }
}

/// One fixed chaos serving scenario: mixed-priority traffic over a flaky
/// chip with one dead CPE, returning an exhaustive fingerprint of
/// everything the run produced.
#[allow(clippy::type_complexity)]
fn chaos_fingerprint() -> (
    Vec<(u64, u64, &'static str)>,
    Vec<(Option<u64>, &'static str)>,
    Vec<(&'static str, swdnn::serve::CgHealthStats)>,
    Vec<(String, u64)>,
    u64,
    u64,
) {
    let shape = ConvShape::new(16, 8, 8, 8, 8, 3, 3);
    let chaos = ChaosConfig {
        fault: FaultPlan::none(41)
            .with_dma_fail_rate(3e-3)
            .with_dma_stalls(1e-2, 512)
            .with_dead_cpe(1, 5),
        dead_cg: 2,
        breaker: BreakerPolicy {
            trip_after: 2,
            cooldown_us: 20_000,
        },
        dispatch_retries: 1,
    };
    let mut e = ServeEngine::new(ServeConfig {
        policy: BatchPolicy {
            max_batch: 4,
            deadline_us: 1_000,
        },
        queue_limit: 16,
        chaos: Some(chaos),
        ..ServeConfig::default()
    })
    .unwrap();
    // Alternate two burst shapes, both beyond what the chip clears before
    // the next burst: the even bursts overflow the bounded queue (sheds +
    // evictions of the low tier), the odd ones leave low-priority
    // stragglers queued behind a high burst long enough (batches run ≈ 2
    // ms against a 500 µs deadline) to time out.
    for i in 0..12u32 {
        let low = |j: u32| RequestClass {
            priority: Priority::Low,
            tenant: 1 + j % 2,
            deadline_us: Some(500),
        };
        let highs = if i % 2 == 0 { 18 } else { 8 };
        for j in 0..3u32 {
            let _ = e.submit_with(shape, low(j));
        }
        for _ in 0..highs {
            let _ = e.submit_with(shape, RequestClass::default());
        }
        e.run_until(e.now_us() + 500).unwrap();
    }
    e.drain().unwrap();
    (
        e.completions()
            .iter()
            .map(|c| (c.id, c.latency_us(), c.path.name()))
            .collect(),
        e.drops().iter().map(|d| (d.id, d.kind.name())).collect(),
        e.health_snapshot().unwrap(),
        e.tags.snapshot(),
        e.counters.fault_extra_cycles.get(),
        e.counters.busy_cycles.get(),
    )
}

#[test]
fn chaos_serving_is_identical_across_thread_counts() {
    let baseline = sw_runtime::with_threads(1, chaos_fingerprint);
    // The scenario must actually exercise the breaker machinery, or the
    // determinism claim is vacuous.
    assert!(
        baseline.2.iter().any(|(_, s)| s.trips > 0),
        "seeded stream must trip at least one breaker"
    );
    assert!(!baseline.0.is_empty() && !baseline.1.is_empty());
    for threads in [4, 8] {
        let other = sw_runtime::with_threads(threads, chaos_fingerprint);
        assert_eq!(
            baseline, other,
            "chaos run diverged at {threads} worker threads"
        );
    }
}
