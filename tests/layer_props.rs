//! Property-based tests on layer mathematics: algebraic identities every
//! layer must satisfy regardless of shape or data.

use proptest::prelude::*;
use sw_tensor::init::seeded_tensor;
use sw_tensor::{ConvShape, Layout, Shape4};
use swdnn::layers::{
    AvgPool2, Conv2dLayer, Engine, Layer, MaxPool2, ReLU, Sigmoid, SoftmaxCrossEntropy,
};

fn arb_shape() -> impl Strategy<Value = Shape4> {
    (1usize..4, 1usize..4, 1usize..4, 1usize..4)
        .prop_map(|(b, c, h, w)| Shape4::new(b, c, 2 * h, 2 * w))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn relu_is_idempotent(s in arb_shape(), seed in 0u64..1000) {
        let x = seeded_tensor::<f64>(s, Layout::Nchw, seed);
        let mut relu = ReLU::new();
        let once = relu.forward(&x).unwrap();
        let twice = ReLU::new().forward(&once).unwrap();
        prop_assert_eq!(twice.max_abs_diff(&once), 0.0);
    }

    #[test]
    fn relu_is_positively_homogeneous(s in arb_shape(), seed in 0u64..1000, a in 0.1f64..10.0) {
        let x = seeded_tensor::<f64>(s, Layout::Nchw, seed);
        let mut scaled = x.clone();
        scaled.data_mut().iter_mut().for_each(|v| *v *= a);
        let y1 = ReLU::new().forward(&scaled).unwrap();
        let mut y2 = ReLU::new().forward(&x).unwrap();
        y2.data_mut().iter_mut().for_each(|v| *v *= a);
        prop_assert!(y1.approx_eq(&y2, 1e-12));
    }

    #[test]
    fn maxpool_commutes_with_positive_scaling(s in arb_shape(), seed in 0u64..1000, a in 0.1f64..10.0) {
        let x = seeded_tensor::<f64>(s, Layout::Nchw, seed);
        let mut scaled = x.clone();
        scaled.data_mut().iter_mut().for_each(|v| *v *= a);
        let y1 = MaxPool2::new().forward(&scaled).unwrap();
        let mut y2 = MaxPool2::new().forward(&x).unwrap();
        y2.data_mut().iter_mut().for_each(|v| *v *= a);
        prop_assert!(y1.approx_eq(&y2, 1e-9));
    }

    #[test]
    fn avgpool_is_linear(s in arb_shape(), sa in 0u64..500, sb in 500u64..1000) {
        let x = seeded_tensor::<f64>(s, Layout::Nchw, sa);
        let y = seeded_tensor::<f64>(s, Layout::Nchw, sb);
        let mut sum = x.clone();
        for (v, w) in sum.data_mut().iter_mut().zip(y.data()) {
            *v += w;
        }
        let p_sum = AvgPool2::new().forward(&sum).unwrap();
        let px = AvgPool2::new().forward(&x).unwrap();
        let py = AvgPool2::new().forward(&y).unwrap();
        let mut p_sep = px.clone();
        for (v, w) in p_sep.data_mut().iter_mut().zip(py.data()) {
            *v += w;
        }
        prop_assert!(p_sum.approx_eq(&p_sep, 1e-10));
    }

    #[test]
    fn maxpool_dominates_avgpool(s in arb_shape(), seed in 0u64..1000) {
        let x = seeded_tensor::<f64>(s, Layout::Nchw, seed);
        let mx = MaxPool2::new().forward(&x).unwrap();
        let av = AvgPool2::new().forward(&x).unwrap();
        for (m, a) in mx.data().iter().zip(av.data()) {
            prop_assert!(m >= a);
        }
    }

    #[test]
    fn sigmoid_range_and_symmetry(s in arb_shape(), seed in 0u64..1000) {
        let x = seeded_tensor::<f64>(s, Layout::Nchw, seed);
        let y = Sigmoid::new().forward(&x).unwrap();
        for v in y.data() {
            prop_assert!((0.0..1.0).contains(v));
        }
        // sigmoid(-x) = 1 - sigmoid(x)
        let mut neg = x.clone();
        neg.data_mut().iter_mut().for_each(|v| *v = -*v);
        let yn = Sigmoid::new().forward(&neg).unwrap();
        for (a, b) in y.data().iter().zip(yn.data()) {
            prop_assert!((a + b - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn softmax_probabilities_sum_to_one_and_shift_invariant(
        batch in 1usize..4, classes in 2usize..6, seed in 0u64..1000, shift in -5.0f64..5.0,
    ) {
        let s = Shape4::new(batch, classes, 1, 1);
        let logits = seeded_tensor::<f64>(s, Layout::Nchw, seed);
        let labels: Vec<usize> = (0..batch).map(|b| b % classes).collect();
        let mut sm = SoftmaxCrossEntropy::new();
        let loss = sm.forward(&logits, &labels).unwrap();
        // Shift every logit by a constant: loss must be unchanged.
        let mut shifted = logits.clone();
        shifted.data_mut().iter_mut().for_each(|v| *v += shift);
        let loss2 = SoftmaxCrossEntropy::new().forward(&shifted, &labels).unwrap();
        prop_assert!((loss - loss2).abs() < 1e-9);
        // Gradients per sample sum to zero (p - onehot sums to 0).
        let g = sm.backward(&labels).unwrap();
        for b in 0..batch {
            let sum: f64 = (0..classes).map(|c| g.get(b, c, 0, 0)).sum();
            prop_assert!(sum.abs() < 1e-12);
        }
    }

    #[test]
    fn conv_layer_is_linear_in_its_input(
        seed in 0u64..1000,
    ) {
        let shape = ConvShape::new(2, 2, 3, 4, 4, 3, 3);
        let mut layer = Conv2dLayer::new(shape, Engine::Host, 77).unwrap();
        layer.bias.iter_mut().for_each(|b| *b = 0.0);
        let x = seeded_tensor::<f64>(shape.input_shape(), Layout::Nchw, seed);
        let y = seeded_tensor::<f64>(shape.input_shape(), Layout::Nchw, seed + 1);
        let mut sum = x.clone();
        for (v, w) in sum.data_mut().iter_mut().zip(y.data()) {
            *v += w;
        }
        let c_sum = layer.forward(&sum).unwrap();
        let cx = layer.forward(&x).unwrap();
        let cy = layer.forward(&y).unwrap();
        let mut c_sep = cx.clone();
        for (v, w) in c_sep.data_mut().iter_mut().zip(cy.data()) {
            *v += w;
        }
        prop_assert!(c_sum.approx_eq(&c_sep, 1e-9));
    }

    #[test]
    fn pooling_round_trip_gradient_conserves_mass(s in arb_shape(), seed in 0u64..1000) {
        // AvgPool backward distributes exactly the incoming gradient mass.
        let x = seeded_tensor::<f64>(s, Layout::Nchw, seed);
        let mut pool = AvgPool2::new();
        let y = pool.forward(&x).unwrap();
        let dy = seeded_tensor::<f64>(y.shape(), Layout::Nchw, seed + 2);
        let dx = pool.backward(&dy).unwrap();
        prop_assert!((dx.sum_f64() - dy.sum_f64()).abs() < 1e-9);
    }
}
