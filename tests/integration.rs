//! Cross-crate integration tests: the performance model, the instruction
//! pipeline, the simulator, and the plans must tell one consistent story.

use sw_perfmodel::dma::{DmaDirection, DmaTable};
use sw_perfmodel::{select_plan, ChipSpec, PlanKind};
use sw_tensor::ConvShape;
use swdnn::{Conv2d, Executor};

/// A small but mesh-eligible configuration used throughout.
fn small() -> ConvShape {
    ConvShape::new(32, 16, 16, 8, 8, 3, 3)
}

#[test]
fn executor_measured_traffic_is_at_least_the_compulsory_traffic() {
    // The simulator counts every byte; no plan can move less than one copy
    // of input + filters in, and one copy of the output out.
    let rep = Executor::new().run_config(&small()).unwrap();
    let shape = small();
    let compulsory_in = 8 * (shape.input_shape().len() + shape.filter_shape().len()) as u64;
    let compulsory_out = 8 * shape.output_shape().len() as u64;
    assert!(
        rep.timing.stats.totals.dma_get_bytes >= compulsory_in,
        "get {} < compulsory {}",
        rep.timing.stats.totals.dma_get_bytes,
        compulsory_in
    );
    assert!(rep.timing.stats.totals.dma_put_bytes >= compulsory_out);
}

#[test]
fn simulated_rate_never_exceeds_roofline() {
    // Measured Gflops must respect both peak compute and the memory
    // roofline implied by the plan's own measured traffic.
    let chip = ChipSpec::sw26010();
    for shape in [small(), ConvShape::new(32, 24, 16, 6, 8, 3, 3)] {
        let rep = Executor::new().run_config(&shape).unwrap();
        assert!(
            rep.gflops_cg <= chip.peak_gflops_per_cg() * 1.0001,
            "{shape}"
        );
        // Bandwidth implied by traffic/time must not exceed the DMA ceiling.
        assert!(
            rep.mbw_measured <= 36.02,
            "{shape}: MBW {:.1} exceeds the DDR3 interface",
            rep.mbw_measured
        );
    }
}

#[test]
fn kernel_efficiency_bounds_plan_efficiency() {
    // No plan can beat the inner kernel's EE = 16n/(17n+4) ceiling.
    let shape = small();
    let rep = Executor::new().run_config(&shape).unwrap();
    let ee = sw_isa::efficiency::ee_for_ni(shape.ni);
    assert!(
        rep.efficiency <= ee + 1e-9,
        "plan efficiency {:.3} above kernel EE {:.3}",
        rep.efficiency,
        ee
    );
}

#[test]
fn model_and_simulation_agree_on_plan_ranking() {
    // Wherever the model says direct << optimized, the simulation must too.
    let e = Executor::new();
    let shape = small();
    let opt = e.run_config(&shape).unwrap();
    let direct = e.run_config_with(&shape, PlanKind::DirectGload).unwrap();
    assert!(direct.model.gflops_per_cg < opt.model.gflops_per_cg);
    assert!(direct.gflops_cg < opt.gflops_cg);
}

#[test]
fn selection_is_consistent_with_plan_support() {
    // Every configuration of the paper's sweeps must yield a plan that
    // actually supports the shape.
    for ni in [64usize, 128, 256, 384] {
        for no in [64usize, 128, 256, 384] {
            let shape = ConvShape::new(128, ni, no, 64, 64, 3, 3);
            let conv = Conv2d::new(shape).unwrap();
            let plan = conv.plan();
            assert!(
                plan.supports(&shape).is_ok(),
                "selected plan {} rejects {shape}",
                plan.name()
            );
            assert_ne!(
                plan.name(),
                "reference",
                "paper configs must run on the mesh: {shape}"
            );
        }
    }
}

#[test]
fn select_plan_ldm_footprints_respect_the_budget() {
    let chip = ChipSpec::sw26010();
    for ni in (64..=384).step_by(64) {
        for no in (64..=384).step_by(64) {
            let shape = ConvShape::new(128, ni, no, 64, 64, 3, 3);
            let choice = select_plan(&shape, &chip).expect("a plan must exist");
            assert!(choice.ldm_doubles <= chip.ldm_doubles());
        }
    }
}

#[test]
fn dma_table_guides_the_layouts() {
    // The batch-aware layout's contiguous run (B doubles = 1 KiB at B=128)
    // must land in a faster bandwidth region than an unblocked NCHW row of
    // a small image — the reason the custom layouts exist.
    let t = DmaTable;
    let fast = t.bandwidth_gbps(DmaDirection::Get, 128 * 8);
    let slow = t.bandwidth_gbps(DmaDirection::Get, 8 * 8);
    assert!(fast > 2.0 * slow);
}

#[test]
fn multi_cg_speedup_matches_paper_claim() {
    let e = Executor::new();
    let shape = ConvShape::new(32, 16, 16, 8, 8, 3, 3);
    let one = e.run_multi_cg(&shape, 1).unwrap();
    let four = e.run_multi_cg(&shape, 4).unwrap();
    let speedup = one.wall_cycles as f64 / four.wall_cycles as f64;
    assert!(
        speedup > 3.5,
        "near-linear scaling expected, got {speedup:.2}"
    );
}

#[test]
fn sampled_and_full_timing_agree_on_a_mesh_config() {
    // The sampled-extrapolation machinery feeding the figure regenerators
    // must track a full simulation.
    let shape = ConvShape::new(32, 16, 16, 4, 8, 3, 3);
    let conv = Conv2d::new(shape).unwrap();
    let plan = conv.plan();
    let input = sw_tensor::init::seeded_tensor(shape.input_shape(), sw_tensor::Layout::Nchw, 1);
    let filter = sw_tensor::init::seeded_tensor(shape.filter_shape(), sw_tensor::Layout::Nchw, 2);
    let full = plan.run(&shape, &input, &filter).unwrap().timing;
    let sampled = plan.time_full_shape(&shape).unwrap();
    let rel = (sampled.cycles as f64 - full.cycles as f64).abs() / full.cycles as f64;
    assert!(
        rel < 0.08,
        "sampled {} vs full {} ({rel:.3})",
        sampled.cycles,
        full.cycles
    );
}

#[test]
fn bench_config_generators_cover_the_paper_ranges() {
    // (mirrors sw-bench's own tests, but exercised from outside the crate)
    let shape = ConvShape::new(128, 64, 64, 64, 64, 3, 3);
    assert!(shape.is_valid());
    let chip = ChipSpec::sw26010();
    assert!(select_plan(&shape, &chip).is_some());
}

#[test]
fn gpu_baseline_loses_on_mesh_eligible_configs() {
    // Spot-check the published speedup envelope. Small shapes keep this
    // fast in debug builds; the full paper-scale sweep lives in the
    // `fig7_channels` / `fig9_filters` release binaries.
    let gpu = sw_gpuref::K40m::default();
    let e = Executor::new();
    for (ni, no, k) in [(32, 32, 3), (64, 64, 3), (32, 32, 5)] {
        let shape = ConvShape::new(32, ni, no, 16, 16, k, k);
        let sw = e.run_multi_cg(&shape, 4).unwrap().gflops_chip;
        let k40 = gpu.conv_gflops(&shape);
        let speedup = sw / k40;
        assert!(
            (1.0..30.0).contains(&speedup),
            "speedup {speedup:.2} out of the plausible envelope at ni={ni} no={no} k={k}"
        );
        assert!(
            speedup > 1.5,
            "swDNN must win: {speedup:.2} at ni={ni} no={no} k={k}"
        );
    }
}
