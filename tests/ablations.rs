//! Integration tests for the design-choice ablations DESIGN.md calls out —
//! each optimization must be (a) functionally neutral and (b) measurably
//! beneficial on the simulator.

use sw_perfmodel::select::Blocking;
use sw_tensor::init::lattice_tensor;
use sw_tensor::{ConvShape, Layout};
use swdnn::plans::{BatchAwarePlan, ConvPlan, ImageAwarePlan};

fn shape() -> ConvShape {
    ConvShape::new(32, 16, 16, 6, 8, 3, 3)
}

fn operands(shape: &ConvShape) -> (sw_tensor::Tensor4<f64>, sw_tensor::Tensor4<f64>) {
    (
        lattice_tensor(shape.input_shape(), Layout::Nchw, 401),
        lattice_tensor(shape.filter_shape(), Layout::Nchw, 402),
    )
}

#[test]
fn kernel_reordering_helps_both_plans_and_changes_nothing() {
    // Needs enough channels that compute dominates over DMA and bus time;
    // with few channels the kernel is a couple of iterations and the gain
    // vanishes into communication overheads.
    let shape = ConvShape::new(32, 64, 64, 2, 8, 3, 3);
    let (input, filter) = operands(&shape);

    // Image plan.
    let mut img = ImageAwarePlan::new(Blocking { b_b: 32, b_co: 8 });
    let fast = img.run(&shape, &input, &filter).unwrap();
    img.reordered_kernel = false;
    let slow = img.run(&shape, &input, &filter).unwrap();
    assert_eq!(fast.output.max_abs_diff(&slow.output), 0.0);
    let ratio = slow.timing.cycles as f64 / fast.timing.cycles as f64;
    assert!(ratio > 1.1, "image plan reordering gain only {ratio:.2}x");
    assert!(
        ratio < 26.0 / 17.0 + 0.2,
        "gain cannot exceed the kernel bound"
    );

    // Batch plan.
    let mut bat = BatchAwarePlan::new(4);
    let fast = bat.run(&shape, &input, &filter).unwrap();
    bat.reordered_kernel = false;
    let slow = bat.run(&shape, &input, &filter).unwrap();
    assert_eq!(fast.output.max_abs_diff(&slow.output), 0.0);
    assert!(slow.timing.cycles > fast.timing.cycles);
}

#[test]
fn double_buffering_is_functionally_neutral_and_faster() {
    let shape = shape();
    let (input, filter) = operands(&shape);
    let buffered = ImageAwarePlan::new(Blocking { b_b: 32, b_co: 4 });
    let mut sync = buffered;
    sync.double_buffer = false;
    let a = buffered.run(&shape, &input, &filter).unwrap();
    let b = sync.run(&shape, &input, &filter).unwrap();
    assert_eq!(a.output.max_abs_diff(&b.output), 0.0);
    assert!(b.timing.cycles > a.timing.cycles);
}

#[test]
fn channel_blocking_trades_traffic_for_footprint() {
    let shape = ConvShape::new(32, 32, 8, 3, 8, 2, 2);
    let (input, filter) = operands(&shape);
    let plain = ImageAwarePlan::new(Blocking { b_b: 32, b_co: 4 });
    let blocked = plain.with_ni_blocking(8);
    let a = plain.run(&shape, &input, &filter).unwrap();
    let b = blocked.run(&shape, &input, &filter).unwrap();
    assert_eq!(a.output.max_abs_diff(&b.output), 0.0);
    // Footprint shrinks...
    assert!(blocked.ldm_doubles(&shape) < plain.ldm_doubles(&shape));
    // ...while input traffic grows (the window is re-fetched per block).
    assert!(
        b.timing.stats.totals.dma_get_bytes >= a.timing.stats.totals.dma_get_bytes,
        "blocking cannot reduce traffic"
    );
}

#[test]
fn bigger_ldm_blocks_reduce_traffic() {
    // Eq. 1's whole point: larger (b_b x b_co) tiles fetch the filter set
    // fewer times.
    let shape = ConvShape::new(64, 16, 16, 4, 16, 3, 3);
    let (input, filter) = operands(&shape);
    let small = ImageAwarePlan::new(Blocking { b_b: 32, b_co: 4 })
        .run(&shape, &input, &filter)
        .unwrap();
    let large = ImageAwarePlan::new(Blocking { b_b: 64, b_co: 16 })
        .run(&shape, &input, &filter)
        .unwrap();
    assert_eq!(small.output.max_abs_diff(&large.output), 0.0);
    assert!(
        large.timing.stats.totals.dma_get_bytes < small.timing.stats.totals.dma_get_bytes,
        "large blocks must move fewer bytes: {} vs {}",
        large.timing.stats.totals.dma_get_bytes,
        small.timing.stats.totals.dma_get_bytes
    );
}

#[test]
fn autotune_best_is_at_least_as_fast_as_every_candidate() {
    let rep = swdnn::tune::autotune(&shape()).unwrap();
    let best = rep.best().cycles;
    for c in &rep.candidates {
        assert!(best <= c.cycles);
    }
}

#[test]
fn res_mii_bounds_the_simulated_steady_state() {
    // The §VI schedule achieves its resource bound exactly.
    use sw_isa::{naive_gemm_kernel, reordered_gemm_kernel, DualPipe, KernelSpec};
    let pipe = DualPipe::default();
    for n in [4usize, 16] {
        let reord = reordered_gemm_kernel(KernelSpec::new(n));
        let c_n = pipe
            .run(&reordered_gemm_kernel(KernelSpec::new(n + 1)))
            .cycles
            - pipe.run(&reord).cycles;
        assert_eq!(c_n, 17, "steady state");
        // And the naive schedule misses the bound by 9 cycles/iter.
        let naive_period = pipe.run(&naive_gemm_kernel(KernelSpec::new(n + 1))).cycles
            - pipe.run(&naive_gemm_kernel(KernelSpec::new(n))).cycles;
        assert_eq!(naive_period, 26);
    }
}
