//! End-to-end training tests: the full layer stack learns, gradients are
//! correct through composition, and the simulated-chip convolution path is
//! interchangeable with the host path.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use swdnn::layers::{AvgPool2, Conv2dLayer, Engine, Linear, MaxPool2, ReLU};
use swdnn::network::Sequential;
use swdnn::{ConvShape, Layout, Tensor4};

/// Two-class task: left or right half brighter.
fn halves_batch(batch: usize, seed: u64) -> (Tensor4<f64>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let s = sw_tensor::Shape4::new(batch, 1, 6, 6);
    let mut x = Tensor4::zeros(s, Layout::Nchw);
    let mut y = Vec::with_capacity(batch);
    for b in 0..batch {
        let class = rng.gen_range(0..2usize);
        for r in 0..6 {
            for c in 0..6 {
                let bright = if (class == 0) == (c < 3) { 1.0 } else { 0.1 };
                x.set(b, 0, r, c, bright + rng.gen_range(-0.05..0.05));
            }
        }
        y.push(class);
    }
    (x, y)
}

fn cnn(engine: Engine, batch: usize) -> Sequential {
    let conv = Conv2dLayer::new(ConvShape::new(batch, 1, 2, 4, 4, 3, 3), engine, 100).unwrap();
    Sequential::new(vec![
        Box::new(conv),
        Box::new(ReLU::new()),
        Box::new(MaxPool2::new()),
        Box::new(Linear::new(2 * 2 * 2, 2, 101)),
    ])
}

#[test]
fn cnn_learns_with_host_convolutions() {
    let mut net = cnn(Engine::Host, 16);
    let (x, y) = halves_batch(16, 1);
    let first = net.train_step(&x, &y, 0.15).unwrap();
    for _ in 0..60 {
        net.train_step(&x, &y, 0.15).unwrap();
    }
    let (xt, yt) = halves_batch(16, 2);
    let acc = net.accuracy(&xt, &yt).unwrap();
    assert!(acc >= 0.9, "accuracy {acc}");
    let last = net.train_step(&x, &y, 0.15).unwrap();
    assert!(last < first * 0.3, "loss {first} -> {last}");
}

#[test]
fn simulated_and_host_training_take_identical_steps() {
    // Same init, same data => identical parameters after a step, because
    // the simulated convolution is numerically equal to the host one
    // within fp tolerance.
    let batch = 16;
    let (x, y) = halves_batch(batch, 3);
    let mut host = cnn(Engine::Host, batch);
    let mut sim = cnn(Engine::Simulated, batch);
    let lh = host.train_step(&x, &y, 0.1).unwrap();
    let ls = sim.train_step(&x, &y, 0.1).unwrap();
    assert!((lh - ls).abs() < 1e-9, "losses {lh} vs {ls}");
    let logits_h = host.forward(&x).unwrap();
    let logits_s = sim.forward(&x).unwrap();
    assert!(logits_h.approx_eq(&logits_s, 1e-8));
}

#[test]
fn whole_network_gradient_descends() {
    // Composition check through the full stack (conv -> relu -> avgpool
    // -> fc -> softmax): a small SGD step along the backpropagated
    // gradient must strictly reduce the loss, and rebuilding the network
    // from the same seeds must reproduce it exactly.
    let batch = 4;
    let build = || {
        let conv =
            Conv2dLayer::new(ConvShape::new(batch, 1, 2, 4, 4, 3, 3), Engine::Host, 5).unwrap();
        Sequential::new(vec![
            Box::new(conv) as Box<dyn swdnn::layers::Layer>,
            Box::new(ReLU::new()),
            Box::new(AvgPool2::new()),
            Box::new(Linear::new(2 * 2 * 2, 2, 6)),
        ])
    };
    let (x, y) = halves_batch(batch, 7);

    let mut net = build();
    let l0 = net.train_step(&x, &y, 1e-3).unwrap();
    let l1 = net.train_step(&x, &y, 0.0).unwrap();
    assert!(l1 < l0, "a gradient step must descend: {l0} -> {l1}");

    let mut net2 = build();
    let l0_again = net2.train_step(&x, &y, 1e-3).unwrap();
    assert_eq!(l0, l0_again, "deterministic rebuild");
}

#[test]
fn training_is_deterministic() {
    let (x, y) = halves_batch(16, 11);
    let mut a = cnn(Engine::Host, 16);
    let mut b = cnn(Engine::Host, 16);
    for _ in 0..5 {
        let la = a.train_step(&x, &y, 0.1).unwrap();
        let lb = b.train_step(&x, &y, 0.1).unwrap();
        assert_eq!(la, lb);
    }
}

#[test]
fn deeper_stack_with_both_pools_trains() {
    let batch = 8;
    let conv1 =
        Conv2dLayer::new(ConvShape::new(batch, 1, 4, 4, 4, 3, 3), Engine::Host, 21).unwrap();
    let mut net = Sequential::new(vec![
        Box::new(conv1),
        Box::new(ReLU::new()),
        Box::new(AvgPool2::new()),
        Box::new(Linear::new(4 * 2 * 2, 2, 23)),
    ]);
    let (x, y) = halves_batch(batch, 13);
    let first = net.train_step(&x, &y, 0.1).unwrap();
    let mut last = first;
    for _ in 0..40 {
        last = net.train_step(&x, &y, 0.1).unwrap();
    }
    assert!(last < first, "loss should decrease: {first} -> {last}");
}
