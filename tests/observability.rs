//! Tier-1 observability tests: the measured counters, the analytic model,
//! and the snapshot/comparator pipeline must stay mutually consistent.
//!
//! Three claims are pinned here:
//!
//! 1. **Model-vs-measured agreement.** For both evaluated plan families
//!    the counter-derived per-level bandwidth must land inside a
//!    documented factor of the model's figures — the reproduction of the
//!    paper's Table III "reasonable match" as an executable bound.
//! 2. **Chrome-trace round-trip.** A trace exported from a real simulated
//!    run survives the JSON layer byte-exactly.
//! 3. **Regression gating.** The comparator accepts the committed
//!    `results/BENCH_PERF.baseline.json` against itself and rejects an
//!    injected regression on it — the same check CI's `bench-regression`
//!    job performs.

use std::path::Path;
use sw_bench::configs::perf_snapshot_configs;
use sw_obs::{compare, ChromeTrace, PerfReport, Snapshot, Tolerances};
use swdnn::{Executor, PlanKind};

/// Documented agreement bounds (see DESIGN.md, "Observability"):
///
/// * measured throughput sits in `[0.5, 1.05] ×` the model's prediction —
///   the simulator charges overheads (spill/refill, launch, barriers) the
///   closed-form model elides, so measured < modeled is expected, but a
///   2× disagreement would mean model and implementation diverged;
/// * measured per-CPE LDM→REG bandwidth never exceeds the hardware figure
///   the model credits (46.4 GB/s per CPE);
/// * measured MEM bandwidth never exceeds the model's DMA-curve figure.
const GFLOPS_AGREEMENT: (f64, f64) = (0.5, 1.05);

fn measure(shape_idx: usize) -> PerfReport {
    let (shape, kind) = perf_snapshot_configs()[shape_idx];
    let exec = Executor::new();
    let rep = exec.run_config_with(&shape, kind).expect("config runs");
    rep.obs_report(&exec.chip)
}

#[test]
fn image_aware_measured_bandwidth_agrees_with_model() {
    let obs = measure(0);
    assert_eq!(obs.plan, "image_size_aware");
    let ratio = obs.gflops_measured / obs.gflops_modeled;
    assert!(
        ratio > GFLOPS_AGREEMENT.0 && ratio < GFLOPS_AGREEMENT.1,
        "image_aware measured/modeled = {ratio:.3}, outside {GFLOPS_AGREEMENT:?}"
    );
    assert!(
        obs.reg.measured_gbps <= obs.reg.modeled_gbps * 1.001,
        "per-CPE LDM→REG {:.1} GB/s exceeds the hardware's {:.1}",
        obs.reg.measured_gbps,
        obs.reg.modeled_gbps
    );
    assert!(
        obs.mem.measured_gbps <= obs.mem.modeled_gbps * 1.001,
        "MEM→LDM {:.1} GB/s exceeds the DMA curve's {:.1}",
        obs.mem.measured_gbps,
        obs.mem.modeled_gbps
    );
    assert!(obs.reg.bytes > 0 && obs.mem.bytes > 0);
    assert!(obs.ldm_high_water_frac > 0.0 && obs.ldm_high_water_frac <= 1.0);
}

#[test]
fn batch_aware_measured_bandwidth_agrees_with_model() {
    let obs = measure(2);
    assert_eq!(obs.plan, "batch_size_aware");
    let ratio = obs.gflops_measured / obs.gflops_modeled;
    assert!(
        ratio > GFLOPS_AGREEMENT.0 && ratio < GFLOPS_AGREEMENT.1,
        "batch_aware measured/modeled = {ratio:.3}, outside {GFLOPS_AGREEMENT:?}"
    );
    assert!(obs.reg.measured_gbps <= obs.reg.modeled_gbps * 1.001);
    assert!(obs.mem.measured_gbps <= obs.mem.modeled_gbps * 1.001);
    // The batch plan fills LDM to capacity by design (§IV-B).
    assert!(obs.ldm_high_water_frac > 0.5);
}

#[test]
fn chrome_trace_from_simulated_run_round_trips() {
    use sw_sim::{trace::to_chrome, Mesh};
    let chip = swdnn::ChipSpec::sw26010();
    let mut mesh = Mesh::new(chip, |_, _| ());
    mesh.enable_trace();
    let host = vec![0.0f64; 512];
    mesh.superstep(|ctx, _| {
        let buf = ctx.ldm_alloc(512)?;
        let h = ctx.dma_get(buf, 0, &host, 0, 512)?;
        ctx.dma_wait(h);
        ctx.charge_compute(1000);
        Ok(())
    })
    .expect("traced superstep");
    let trace = to_chrome(&mesh.take_traces(), chip.clock_ghz);
    assert!(
        trace.events.len() >= 64 * 3,
        "every CPE must record get + wait + compute"
    );
    assert!(trace.events.iter().any(|e| e.cat == "mem"));
    assert!(trace.events.iter().any(|e| e.cat == "reg"));
    let doc = trace.to_json_string();
    let back = ChromeTrace::from_json_str(&doc).expect("chrome trace parses back");
    assert_eq!(back, trace, "round-trip through serde_json is exact");
}

fn baseline() -> Snapshot {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/BENCH_PERF.baseline.json");
    Snapshot::load(&path).expect("committed baseline parses")
}

#[test]
fn committed_baseline_is_wellformed_and_self_consistent() {
    let base = baseline();
    let mut keys: Vec<String> = perf_snapshot_configs()
        .iter()
        .map(|(shape, kind)| {
            let plan = match kind {
                PlanKind::ImageSizeAware => "image_size_aware",
                PlanKind::BatchSizeAware => "batch_size_aware",
                other => panic!("unexpected snapshot plan {other:?}"),
            };
            format!("{shape} / {plan}")
        })
        .collect();
    keys.push(format!(
        "{} / {}",
        sw_bench::serve_load::SERVE_REPORT_CONFIG,
        sw_bench::serve_load::SERVE_REPORT_PLAN
    ));
    keys.push(format!(
        "{} / {}",
        sw_bench::chaos_load::CHAOS_REPORT_CONFIG,
        sw_bench::chaos_load::CHAOS_REPORT_PLAN
    ));
    // perf_snapshot appends one host wall-clock row for conv_256 (see
    // sim_throughput::measure_conv); its plan name is prefixed to keep
    // snapshot keys unique.
    let (host_shape, host_kind) = sw_bench::configs::conv_256();
    assert_eq!(host_kind, PlanKind::BatchSizeAware);
    keys.push(format!(
        "{host_shape} / {}batch_size_aware",
        sw_bench::sim_throughput::PLAN_PREFIX
    ));
    assert_eq!(
        base.reports.iter().map(PerfReport::key).collect::<Vec<_>>(),
        keys,
        "baseline keys must track perf_snapshot_configs()"
    );
    let cmp = compare(&base, &base.clone(), &Tolerances::default());
    assert!(cmp.is_ok(), "baseline vs itself: {}", cmp.summary());
}

#[test]
fn comparator_rejects_injected_regression_on_committed_baseline() {
    let base = baseline();
    let mut cur = base.clone();
    cur.reports[0].gflops_measured *= 0.90; // 10% drop, tolerance is 2%
    cur.reports[1].reg.bytes = cur.reports[1].reg.bytes * 11 / 10; // traffic drift
    let cmp = compare(&base, &cur, &Tolerances::default());
    assert!(!cmp.is_ok());
    let metrics: Vec<&str> = cmp.regressions.iter().map(|r| r.metric.as_str()).collect();
    assert!(metrics.contains(&"gflops_measured"));
    assert!(metrics.contains(&"reg.bytes"));
}
