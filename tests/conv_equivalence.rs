//! Property-based equivalence: every optimized convolution plan must agree
//! with the naive 7-loop reference (Listing 1) on arbitrary shapes and
//! data — the central correctness claim of the reproduction.
//!
//! Uses `lattice` operands (quarter-integers) so results are *exactly*
//! equal regardless of each plan's summation order, plus a random-data
//! pass with a tight tolerance.

use proptest::prelude::*;
use sw_perfmodel::select::Blocking;
use sw_tensor::init::{lattice_tensor, seeded_tensor};
use sw_tensor::{conv2d_ref, ConvShape, Layout};
use swdnn::plans::{BatchAwarePlan, ConvPlan, DirectPlan, ImageAwarePlan};
use swdnn::Conv2d;

/// Shapes the image-size-aware plan supports (bB = 32).
fn image_plan_shapes() -> impl Strategy<Value = (ConvShape, Blocking)> {
    (
        1usize..=2, // batch multiple of 32
        1usize..=3, // ni / 8
        1usize..=3, // no / 8
        1usize..=4, // ro
        1usize..=2, // co / b_co
        1usize..=3, // kr
        1usize..=3, // kc
        prop::sample::select(vec![4usize, 8]),
    )
        .prop_map(|(b32, ni8, no8, ro, cob, kr, kc, b_co)| {
            (
                ConvShape::new(32 * b32, 8 * ni8, 8 * no8, ro, b_co * cob, kr, kc),
                Blocking { b_b: 32, b_co },
            )
        })
}

/// Shapes the batch-size-aware plan supports.
fn batch_plan_shapes() -> impl Strategy<Value = (ConvShape, usize)> {
    (
        1usize..=3, // batch / 8
        1usize..=3,
        1usize..=3,
        1usize..=4,
        1usize..=3, // co / b_co
        1usize..=3,
        1usize..=3,
        prop::sample::select(vec![2usize, 4]),
    )
        .prop_map(|(b8, ni8, no8, ro, cob, kr, kc, b_co)| {
            (
                ConvShape::new(8 * b8, 8 * ni8, 8 * no8, ro, b_co * cob, kr, kc),
                b_co,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn image_aware_plan_equals_reference((shape, blocking) in image_plan_shapes(), seed in 0u64..1000) {
        let plan = ImageAwarePlan::new(blocking);
        prop_assume!(plan.supports(&shape).is_ok());
        let input = lattice_tensor(shape.input_shape(), Layout::Nchw, seed);
        let filter = lattice_tensor(shape.filter_shape(), Layout::Nchw, seed + 1);
        let expect = conv2d_ref(shape, &input, &filter);
        let run = plan.run(&shape, &input, &filter).unwrap();
        prop_assert_eq!(run.output.max_abs_diff(&expect), 0.0);
    }

    #[test]
    fn batch_aware_plan_equals_reference((shape, b_co) in batch_plan_shapes(), seed in 0u64..1000) {
        let plan = BatchAwarePlan::new(b_co);
        prop_assume!(plan.supports(&shape).is_ok());
        let input = lattice_tensor(shape.input_shape(), Layout::Nchw, seed);
        let filter = lattice_tensor(shape.filter_shape(), Layout::Nchw, seed + 1);
        let expect = conv2d_ref(shape, &input, &filter);
        let run = plan.run(&shape, &input, &filter).unwrap();
        prop_assert_eq!(run.output.max_abs_diff(&expect), 0.0);
    }

    #[test]
    fn direct_plan_equals_reference_on_any_shape(
        b in 1usize..4, ni in 1usize..5, no in 1usize..5,
        ro in 1usize..4, co in 1usize..4, kr in 1usize..3, kc in 1usize..3,
        seed in 0u64..1000,
    ) {
        let shape = ConvShape::new(b, ni, no, ro, co, kr, kc);
        let input = seeded_tensor(shape.input_shape(), Layout::Nchw, seed);
        let filter = seeded_tensor(shape.filter_shape(), Layout::Nchw, seed + 1);
        let expect = conv2d_ref(shape, &input, &filter);
        let run = DirectPlan::default().run(&shape, &input, &filter).unwrap();
        // Same summation order as the reference => exactly equal.
        prop_assert_eq!(run.output.max_abs_diff(&expect), 0.0);
    }

    #[test]
    fn auto_selected_plan_equals_reference_on_random_data(
        (shape, _) in batch_plan_shapes(), seed in 0u64..1000,
    ) {
        let conv = Conv2d::new(shape).unwrap();
        let input = seeded_tensor(shape.input_shape(), Layout::Nchw, seed);
        let filter = seeded_tensor(shape.filter_shape(), Layout::Nchw, seed + 1);
        let expect = conv2d_ref(shape, &input, &filter);
        let run = conv.forward(&input, &filter).unwrap();
        prop_assert!(run.output.approx_eq(&expect, 1e-9));
    }

    #[test]
    fn bwd_filter_plan_equals_reference(
        ni8 in 1usize..=3, no8 in 1usize..=3,
        ro in 1usize..=4, cob in 1usize..=2,
        kr in 1usize..=3, kc in 1usize..=3,
        b_co in prop::sample::select(vec![2usize, 4]),
        seed in 0u64..1000,
    ) {
        let shape = ConvShape::new(32, 8 * ni8, 8 * no8, ro, b_co * cob, kr, kc);
        let plan = swdnn::plans::BwdFilterPlan::new(32, b_co);
        prop_assume!(plan.supports(&shape).is_ok());
        let input = lattice_tensor(shape.input_shape(), Layout::Nchw, seed);
        let d_out = lattice_tensor(shape.output_shape(), Layout::Nchw, seed + 1);
        let expect = sw_tensor::conv2d_bwd_filter_ref(shape, &input, &d_out);
        let (dw, _) = plan.run(&shape, &input, &d_out).unwrap();
        prop_assert_eq!(dw.max_abs_diff(&expect), 0.0);
    }

    #[test]
    fn im2col_equals_reference(
        b in 1usize..3, ni in 1usize..4, no in 1usize..4,
        ro in 1usize..4, co in 1usize..4, kr in 1usize..3, kc in 1usize..3,
        seed in 0u64..1000,
    ) {
        let shape = ConvShape::new(b, ni, no, ro, co, kr, kc);
        let input = lattice_tensor(shape.input_shape(), Layout::Nchw, seed);
        let filter = lattice_tensor(shape.filter_shape(), Layout::Nchw, seed + 1);
        let expect = conv2d_ref(shape, &input, &filter);
        let got = sw_gpuref::conv2d_im2col(&shape, &input, &filter);
        prop_assert_eq!(got.max_abs_diff(&expect), 0.0);
    }

    #[test]
    fn layouts_round_trip(
        d0 in 1usize..10, d1 in 1usize..6, d2 in 1usize..6, d3 in 1usize..6,
        seed in 0u64..1000,
    ) {
        let s = sw_tensor::Shape4::new(d0, d1, d2, d3);
        let t = seeded_tensor::<f64>(s, Layout::Nchw, seed);
        for lay in Layout::ALL {
            let back = t.to_layout(lay).to_layout(Layout::Nchw);
            prop_assert_eq!(back.max_abs_diff(&t), 0.0);
        }
    }

    #[test]
    fn backward_data_is_adjoint_of_forward(
        b in 1usize..3, ni in 1usize..3, no in 1usize..3,
        ro in 1usize..4, co in 1usize..4, kr in 1usize..3, kc in 1usize..3,
        seed in 0u64..1000,
    ) {
        // <conv(x), y> == <x, conv^T(y)> — the defining adjoint property.
        let shape = ConvShape::new(b, ni, no, ro, co, kr, kc);
        let x = seeded_tensor::<f64>(shape.input_shape(), Layout::Nchw, seed);
        let w = seeded_tensor::<f64>(shape.filter_shape(), Layout::Nchw, seed + 1);
        let y = seeded_tensor::<f64>(shape.output_shape(), Layout::Nchw, seed + 2);
        let fwd = conv2d_ref(shape, &x, &w);
        let bwd = sw_tensor::conv2d_bwd_data_ref(shape, &y, &w);
        let lhs: f64 = (0..shape.output_shape().len())
            .map(|i| fwd.data()[i] * y.data()[i])
            .sum();
        let rhs: f64 = (0..shape.input_shape().len())
            .map(|i| x.data()[i] * bwd.data()[i])
            .sum();
        prop_assert!((lhs - rhs).abs() <= 1e-9 * (1.0 + lhs.abs()));
    }
}
