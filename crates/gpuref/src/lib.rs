//! GPU baseline: im2col + GEMM convolution and a Tesla K40m / cuDNNv5
//! timing model.
//!
//! The paper's Figures 7 and 9 compare swDNN on one SW26010 against
//! cuDNNv5.1 on a Tesla K40m. Neither the GPU nor cuDNN is available here,
//! so this crate substitutes:
//!
//! * [`im2col`] — the lowering cuDNN's GEMM path uses, implemented
//!   functionally (and rayon-parallel) as a second correctness oracle;
//! * [`k40m`] — a calibrated throughput model reproducing the published
//!   envelope: ≤ 40 % double-precision efficiency at best, strong
//!   sensitivity to filter size (cuDNN's tuned kernels favour small
//!   filters), mild sensitivity to channel count, and the
//!   configuration-to-configuration instability the paper highlights
//!   ("not like cuDNN, our program is stable under different parameter
//!   configurations"). The model is deterministic: the "instability" is a
//!   hash of the configuration, so runs are reproducible.

pub mod im2col;
pub mod k40m;
pub mod winograd;

pub use im2col::{conv2d_im2col, im2col_matrix};
pub use k40m::K40m;
pub use winograd::conv2d_winograd;
