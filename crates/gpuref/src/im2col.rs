//! im2col lowering + GEMM — the "lowering the convolutions into a matrix
//! multiplication" path of §III-C that cuDNN popularized.
//!
//! `im2col` unrolls every receptive field into a column of a
//! `(Ni·Kr·Kc) × (B·Ro·Co)` matrix; the convolution is then one GEMM with
//! the `(No) × (Ni·Kr·Kc)` filter matrix. This is both the functional core
//! of the GPU baseline and an independent correctness oracle for the mesh
//! plans (it reassociates the sum differently from the naive loops).

use rayon::prelude::*;
use sw_tensor::{ConvShape, Layout, Tensor4};

/// Build the im2col matrix, row-major `(Ni·Kr·Kc) × (B·Ro·Co)`.
///
/// Row index = `(ni·Kr + kr)·Kc + kc`; column index = `(b·Ro + ro)·Co + co`.
pub fn im2col_matrix(shape: &ConvShape, input: &Tensor4<f64>) -> Vec<f64> {
    assert_eq!(input.shape(), shape.input_shape(), "input shape");
    let rows = shape.ni * shape.kr * shape.kc;
    let cols = shape.batch * shape.ro * shape.co;
    let mut m = vec![0.0f64; rows * cols];
    m.par_chunks_mut(cols).enumerate().for_each(|(row, out)| {
        let kc = row % shape.kc;
        let kr = (row / shape.kc) % shape.kr;
        let ni = row / (shape.kc * shape.kr);
        let mut col = 0;
        for b in 0..shape.batch {
            for ro in 0..shape.ro {
                for co in 0..shape.co {
                    out[col] = input.get(b, ni, ro + kr, co + kc);
                    col += 1;
                }
            }
        }
        debug_assert_eq!(col, cols);
    });
    m
}

/// Forward convolution via im2col + GEMM.
pub fn conv2d_im2col(
    shape: &ConvShape,
    input: &Tensor4<f64>,
    filter: &Tensor4<f64>,
) -> Tensor4<f64> {
    assert_eq!(filter.shape(), shape.filter_shape(), "filter shape");
    let rows = shape.ni * shape.kr * shape.kc;
    let cols = shape.batch * shape.ro * shape.co;
    let lowered = im2col_matrix(shape, input);

    // Filter matrix (No x rows), row-major; same (ni, kr, kc) row order.
    let mut w = vec![0.0f64; shape.no * rows];
    for no in 0..shape.no {
        for ni in 0..shape.ni {
            for kr in 0..shape.kr {
                for kc in 0..shape.kc {
                    w[no * rows + (ni * shape.kr + kr) * shape.kc + kc] =
                        filter.get(no, ni, kr, kc);
                }
            }
        }
    }

    // out (No x cols) = w (No x rows) * lowered (rows x cols)
    let mut out_m = vec![0.0f64; shape.no * cols];
    out_m
        .par_chunks_mut(cols)
        .enumerate()
        .for_each(|(no, out)| {
            for r in 0..rows {
                let wv = w[no * rows + r];
                if wv == 0.0 {
                    continue;
                }
                let src = &lowered[r * cols..(r + 1) * cols];
                for (o, &s) in out.iter_mut().zip(src) {
                    *o += wv * s;
                }
            }
        });

    // Scatter back to (B, No, Ro, Co).
    let mut out = Tensor4::zeros(shape.output_shape(), Layout::Nchw);
    for no in 0..shape.no {
        let mut col = 0;
        for b in 0..shape.batch {
            for ro in 0..shape.ro {
                for co in 0..shape.co {
                    out.set(b, no, ro, co, out_m[no * cols + col]);
                    col += 1;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_tensor::conv2d_ref;
    use sw_tensor::init::{lattice_tensor, seeded_tensor};

    #[test]
    fn matrix_has_receptive_fields_as_columns() {
        let shape = ConvShape::new(1, 1, 1, 2, 2, 2, 2);
        let input = Tensor4::from_fn(shape.input_shape(), Layout::Nchw, |_, _, r, c| {
            (r * 3 + c) as f64
        });
        let m = im2col_matrix(&shape, &input);
        // rows = 4 (kr,kc), cols = 4 (ro,co). Column 0 = field at (0,0):
        // values [0,1,3,4] down the rows.
        let cols = 4;
        assert_eq!(m[0], 0.0);
        assert_eq!(m[cols], 1.0);
        assert_eq!(m[2 * cols], 3.0);
        assert_eq!(m[3 * cols], 4.0);
    }

    #[test]
    fn im2col_conv_matches_reference_exactly_on_lattice() {
        let shape = ConvShape::new(3, 4, 5, 4, 6, 3, 2);
        let input = lattice_tensor(shape.input_shape(), Layout::Nchw, 61);
        let filter = lattice_tensor(shape.filter_shape(), Layout::Nchw, 62);
        let a = conv2d_ref(shape, &input, &filter);
        let b = conv2d_im2col(&shape, &input, &filter);
        assert_eq!(a.max_abs_diff(&b), 0.0);
    }

    #[test]
    fn im2col_conv_matches_reference_on_random_data() {
        let shape = ConvShape::new(2, 3, 4, 5, 5, 3, 3);
        let input = seeded_tensor(shape.input_shape(), Layout::Nchw, 63);
        let filter = seeded_tensor(shape.filter_shape(), Layout::Nchw, 64);
        let a = conv2d_ref(shape, &input, &filter);
        let b = conv2d_im2col(&shape, &input, &filter);
        assert!(a.approx_eq(&b, 1e-10));
    }

    #[test]
    fn one_by_one_filter_is_channel_mix() {
        let shape = ConvShape::new(1, 2, 1, 2, 2, 1, 1);
        let input = seeded_tensor(shape.input_shape(), Layout::Nchw, 65);
        let filter = Tensor4::from_fn(shape.filter_shape(), Layout::Nchw, |_, ni, _, _| {
            (ni + 1) as f64
        });
        let out = conv2d_im2col(&shape, &input, &filter);
        let expect = input.get(0, 0, 1, 1) + 2.0 * input.get(0, 1, 1, 1);
        assert!((out.get(0, 0, 1, 1) - expect).abs() < 1e-12);
    }
}
