//! Winograd minimal filtering `F(2×2, 3×3)` — the fast GPU-side algorithm
//! of the paper's related work (Lavin, "Fast algorithms for convolutional
//! neural networks", the `maxDNN`/cuDNN lineage).
//!
//! Each 4×4 input tile produces a 2×2 output tile with 16 multiplies
//! instead of the direct method's 36 (2.25× fewer), at the cost of the
//! transforms:
//!
//! ```text
//! Y = Aᵀ [ (G g Gᵀ) ⊙ (Bᵀ d B) ] A
//! ```
//!
//! with the standard matrices
//! `B` (4×4, entries 0/±1), `G` (4×3, entries 0/±½/1), `A` (4×2).
//!
//! Used here as (a) a third independent functional oracle for 3×3
//! convolutions and (b) the arithmetic baseline behind the paper's implicit
//! claim that SW26010's constraint is bandwidth, not multiplies (a
//! multiply-saving algorithm does not help a bandwidth-bound kernel).

// Index loops here mirror the published transform matrices row-by-row.
#![allow(clippy::needless_range_loop)]

use sw_tensor::{ConvShape, Layout, Tensor4};

/// `Bᵀ d B` for a 4×4 data tile.
fn input_transform(d: &[[f64; 4]; 4]) -> [[f64; 4]; 4] {
    // Bt = [1 0 -1 0; 0 1 1 0; 0 -1 1 0; 0 1 0 -1]
    let mut tmp = [[0.0; 4]; 4];
    for c in 0..4 {
        tmp[0][c] = d[0][c] - d[2][c];
        tmp[1][c] = d[1][c] + d[2][c];
        tmp[2][c] = d[2][c] - d[1][c];
        tmp[3][c] = d[1][c] - d[3][c];
    }
    let mut out = [[0.0; 4]; 4];
    for r in 0..4 {
        out[r][0] = tmp[r][0] - tmp[r][2];
        out[r][1] = tmp[r][1] + tmp[r][2];
        out[r][2] = tmp[r][2] - tmp[r][1];
        out[r][3] = tmp[r][1] - tmp[r][3];
    }
    out
}

/// `G g Gᵀ` for a 3×3 filter.
fn filter_transform(g: &[[f64; 3]; 3]) -> [[f64; 4]; 4] {
    // G = [1 0 0; 1/2 1/2 1/2; 1/2 -1/2 1/2; 0 0 1]
    let mut tmp = [[0.0; 3]; 4];
    for c in 0..3 {
        tmp[0][c] = g[0][c];
        tmp[1][c] = 0.5 * (g[0][c] + g[1][c] + g[2][c]);
        tmp[2][c] = 0.5 * (g[0][c] - g[1][c] + g[2][c]);
        tmp[3][c] = g[2][c];
    }
    let mut out = [[0.0; 4]; 4];
    for r in 0..4 {
        out[r][0] = tmp[r][0];
        out[r][1] = 0.5 * (tmp[r][0] + tmp[r][1] + tmp[r][2]);
        out[r][2] = 0.5 * (tmp[r][0] - tmp[r][1] + tmp[r][2]);
        out[r][3] = tmp[r][2];
    }
    out
}

/// `Aᵀ m A` for a 4×4 elementwise product, yielding the 2×2 output tile.
fn output_transform(m: &[[f64; 4]; 4]) -> [[f64; 2]; 2] {
    // At = [1 1 1 0; 0 1 -1 -1]
    let mut tmp = [[0.0; 4]; 2];
    for c in 0..4 {
        tmp[0][c] = m[0][c] + m[1][c] + m[2][c];
        tmp[1][c] = m[1][c] - m[2][c] - m[3][c];
    }
    let mut out = [[0.0; 2]; 2];
    for r in 0..2 {
        out[r][0] = tmp[r][0] + tmp[r][1] + tmp[r][2];
        out[r][1] = tmp[r][1] - tmp[r][2] - tmp[r][3];
    }
    out
}

/// Winograd `F(2×2, 3×3)` forward convolution.
///
/// Requires `kr == kc == 3` and even output extents (whole 2×2 tiles).
pub fn conv2d_winograd(
    shape: &ConvShape,
    input: &Tensor4<f64>,
    filter: &Tensor4<f64>,
) -> Tensor4<f64> {
    assert_eq!((shape.kr, shape.kc), (3, 3), "F(2x2,3x3) needs 3x3 filters");
    assert!(
        shape.ro.is_multiple_of(2) && shape.co.is_multiple_of(2),
        "whole output tiles required"
    );
    assert_eq!(input.shape(), shape.input_shape());
    assert_eq!(filter.shape(), shape.filter_shape());

    // Pre-transform every filter.
    let mut u = vec![[[0.0f64; 4]; 4]; shape.no * shape.ni];
    for no in 0..shape.no {
        for ni in 0..shape.ni {
            let mut g = [[0.0; 3]; 3];
            for r in 0..3 {
                for c in 0..3 {
                    g[r][c] = filter.get(no, ni, r, c);
                }
            }
            u[no * shape.ni + ni] = filter_transform(&g);
        }
    }

    let mut out = Tensor4::zeros(shape.output_shape(), Layout::Nchw);
    for b in 0..shape.batch {
        for tr in 0..shape.ro / 2 {
            for tc in 0..shape.co / 2 {
                for no in 0..shape.no {
                    let mut m = [[0.0f64; 4]; 4];
                    for ni in 0..shape.ni {
                        let mut d = [[0.0; 4]; 4];
                        for r in 0..4 {
                            for c in 0..4 {
                                d[r][c] = input.get(b, ni, 2 * tr + r, 2 * tc + c);
                            }
                        }
                        let v = input_transform(&d);
                        let uf = &u[no * shape.ni + ni];
                        for r in 0..4 {
                            for c in 0..4 {
                                m[r][c] += uf[r][c] * v[r][c];
                            }
                        }
                    }
                    let y = output_transform(&m);
                    for r in 0..2 {
                        for c in 0..2 {
                            out.set(b, no, 2 * tr + r, 2 * tc + c, y[r][c]);
                        }
                    }
                }
            }
        }
    }
    out
}

/// Multiplications per output element: direct = `Ni·9`, Winograd =
/// `Ni·16/4` (+ transform adds). The classic 2.25× multiply saving.
pub fn multiply_ratio(ni: usize) -> f64 {
    (ni * 9) as f64 / (ni * 4) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_tensor::conv2d_ref;
    use sw_tensor::init::{lattice_tensor, seeded_tensor};

    #[test]
    fn matches_reference_on_lattice_data() {
        let shape = ConvShape::new(2, 3, 4, 4, 6, 3, 3);
        let input = lattice_tensor(shape.input_shape(), Layout::Nchw, 501);
        let filter = lattice_tensor(shape.filter_shape(), Layout::Nchw, 502);
        let expect = conv2d_ref(shape, &input, &filter);
        let got = conv2d_winograd(&shape, &input, &filter);
        // Winograd transforms are exact on dyadic rationals (only /2 by
        // powers of two), so lattice data matches exactly.
        assert_eq!(got.max_abs_diff(&expect), 0.0);
    }

    #[test]
    fn matches_reference_on_random_data() {
        let shape = ConvShape::new(3, 5, 2, 6, 4, 3, 3);
        let input = seeded_tensor(shape.input_shape(), Layout::Nchw, 503);
        let filter = seeded_tensor(shape.filter_shape(), Layout::Nchw, 504);
        let expect = conv2d_ref(shape, &input, &filter);
        let got = conv2d_winograd(&shape, &input, &filter);
        assert!(got.approx_eq(&expect, 1e-10));
    }

    #[test]
    fn multiply_saving_is_2_25x() {
        assert!((multiply_ratio(64) - 2.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "3x3 filters")]
    fn rejects_non_3x3_filters() {
        let shape = ConvShape::new(1, 1, 1, 2, 2, 2, 2);
        let input = seeded_tensor(shape.input_shape(), Layout::Nchw, 1);
        let filter = seeded_tensor(shape.filter_shape(), Layout::Nchw, 2);
        let _ = conv2d_winograd(&shape, &input, &filter);
    }

    #[test]
    #[should_panic(expected = "whole output tiles")]
    fn rejects_odd_outputs() {
        let shape = ConvShape::new(1, 1, 1, 3, 4, 3, 3);
        let input = seeded_tensor(shape.input_shape(), Layout::Nchw, 1);
        let filter = seeded_tensor(shape.filter_shape(), Layout::Nchw, 2);
        let _ = conv2d_winograd(&shape, &input, &filter);
    }
}
