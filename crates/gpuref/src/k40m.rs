//! Tesla K40m + cuDNNv5.1 throughput model.
//!
//! What the paper reports about the baseline:
//!
//! * K40m peak double precision ≈ 1.43 Tflops (1.66 with GPU boost); the
//!   paper quotes its memory bandwidth as 240–480 GB/s depending on ECC
//!   and counting;
//! * "the best efficiency on K40m is around 40% but only for a small set
//!   of parameter configurations";
//! * cuDNN's throughput is *unstable* across configurations (Fig. 7's GPU
//!   curve swings widely while swDNN's is flat);
//! * large filters hurt cuDNN badly (Fig. 9: swDNN's advantage grows with
//!   filter size, up to 9.75×).
//!
//! The model composes four calibrated factors:
//! `gflops = 1430 · 0.40 · ch(ni, no) · flt(k) · stab(config-hash)`, with
//! `ch` a mild channel-count factor, `flt = (3/max(k,3))^0.25`, and `stab`
//! a deterministic per-configuration factor in `[0.55, 1.0]` standing in
//! for cuDNN's kernel-selection cliffs. The constants were chosen so the
//! published envelope holds: best efficiency ≈ 40%, and swDNN speedups on
//! the Fig. 7/8/9 configuration sets spanning roughly 1.9–9.8×.

use sw_tensor::ConvShape;

/// The baseline device model.
#[derive(Clone, Copy, Debug)]
pub struct K40m {
    /// Peak double-precision Gflops.
    pub peak_gflops: f64,
    /// Best-case cuDNN efficiency.
    pub best_efficiency: f64,
}

impl Default for K40m {
    fn default() -> Self {
        Self {
            peak_gflops: 1430.0,
            best_efficiency: 0.40,
        }
    }
}

/// Deterministic config hash → [0, 1).
fn unit_hash(shape: &ConvShape) -> f64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for v in [
        shape.batch,
        shape.ni,
        shape.no,
        shape.ro,
        shape.co,
        shape.kr,
        shape.kc,
    ] {
        h ^= v as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    (h >> 11) as f64 / (1u64 << 53) as f64
}

impl K40m {
    /// Modeled cuDNNv5.1 double-precision convolution throughput, Gflops.
    pub fn conv_gflops(&self, shape: &ConvShape) -> f64 {
        self.peak_gflops
            * self.best_efficiency
            * self.channel_factor(shape)
            * self.filter_factor(shape)
            * self.stability_factor(shape)
    }

    /// Seconds for one forward convolution.
    pub fn conv_seconds(&self, shape: &ConvShape) -> f64 {
        shape.flops() as f64 / (self.conv_gflops(shape) * 1e9)
    }

    /// Mild preference for larger channel counts (GEMMs get fatter).
    pub fn channel_factor(&self, shape: &ConvShape) -> f64 {
        let m = shape.ni.min(shape.no) as f64;
        (m / 384.0).powf(0.08).clamp(0.5, 1.0)
    }

    /// cuDNN's tuned kernels favour small filters; large ones fall off the
    /// fast paths (Fig. 9).
    pub fn filter_factor(&self, shape: &ConvShape) -> f64 {
        let k = shape.kr.max(shape.kc).max(3) as f64;
        (3.0 / k).powf(0.25)
    }

    /// Kernel-selection instability: deterministic pseudo-random factor in
    /// [0.55, 1.0] — wide enough that Fig. 7's GPU curve swings while the
    /// swDNN curve stays flat.
    pub fn stability_factor(&self, shape: &ConvShape) -> f64 {
        0.55 + 0.45 * unit_hash(shape)
    }

    /// Achieved fraction of peak.
    pub fn efficiency(&self, shape: &ConvShape) -> f64 {
        self.conv_gflops(shape) / self.peak_gflops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_shape(ni: usize, no: usize, k: usize) -> ConvShape {
        ConvShape::new(128, ni, no, 64, 64, k, k)
    }

    #[test]
    fn efficiency_never_exceeds_40_percent() {
        let gpu = K40m::default();
        for ni in (64..=384).step_by(32) {
            for no in (64..=384).step_by(32) {
                for k in [3, 5, 9, 15, 21] {
                    let e = gpu.efficiency(&paper_shape(ni, no, k));
                    assert!(e <= 0.40 + 1e-12, "eff {e} at ni={ni} no={no} k={k}");
                    assert!(e > 0.05, "eff {e} collapsed at ni={ni} no={no} k={k}");
                }
            }
        }
    }

    #[test]
    fn best_configs_reach_about_40_percent() {
        let gpu = K40m::default();
        let best = (64..=384)
            .step_by(32)
            .flat_map(|ni| (64..=384).step_by(32).map(move |no| (ni, no)))
            .map(|(ni, no)| gpu.efficiency(&paper_shape(ni, no, 3)))
            .fold(0.0f64, f64::max);
        assert!(best > 0.35, "best efficiency {best}");
    }

    #[test]
    fn large_filters_are_much_slower() {
        let gpu = K40m::default();
        let small = gpu.conv_gflops(&paper_shape(128, 128, 3));
        let large = gpu.conv_gflops(&paper_shape(128, 128, 21));
        assert!(large < small * 0.75, "{large} vs 0.75 * {small}");
    }

    #[test]
    fn model_is_deterministic_but_config_sensitive() {
        let gpu = K40m::default();
        let a = gpu.conv_gflops(&paper_shape(128, 128, 3));
        let b = gpu.conv_gflops(&paper_shape(128, 128, 3));
        assert_eq!(a, b);
        let c = gpu.conv_gflops(&paper_shape(128, 160, 3));
        assert_ne!(a, c);
    }

    #[test]
    fn instability_spread_is_wide() {
        // The stability factor must move results by tens of percent across
        // neighbouring configs — the "unstable" behaviour of Fig. 7.
        let gpu = K40m::default();
        let effs: Vec<f64> = (64..=384)
            .step_by(32)
            .map(|ni| gpu.efficiency(&paper_shape(ni, 128, 3)))
            .collect();
        let min = effs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = effs.iter().cloned().fold(0.0f64, f64::max);
        assert!(max / min > 1.35, "spread {min}..{max} too flat");
    }

    #[test]
    fn conv_seconds_is_flops_over_gflops() {
        let gpu = K40m::default();
        let s = paper_shape(128, 128, 3);
        let t = gpu.conv_seconds(&s);
        let g = gpu.conv_gflops(&s);
        assert!((t * g * 1e9 - s.flops() as f64).abs() / (s.flops() as f64) < 1e-12);
    }
}
