//! Property tests for the instruction scheduler: on arbitrary straight-line
//! programs, `list_schedule` must produce a dependence-preserving
//! permutation that is never slower than program order, and the pipeline
//! simulator must respect its documented bounds.

use proptest::prelude::*;
use sw_isa::pipeline::LatencyTable;
use sw_isa::schedule::apply_order;
use sw_isa::{list_schedule, validate_order, DualPipe, Inst, Op, Reg};

/// Arbitrary straight-line instruction (no branches — those are barriers
/// that the generators place explicitly).
fn arb_inst() -> impl Strategy<Value = Inst> {
    let vreg = (0u8..16).prop_map(Reg::V);
    let rreg = (0u8..4).prop_map(Reg::R);
    prop_oneof![
        // vload
        (vreg.clone(), rreg.clone(), 0i32..256).prop_map(|(dst, base, disp)| Inst::new(
            Op::Vload {
                dst,
                base,
                disp: disp * 8
            }
        )),
        // vfmadd (acc == dst, like the kernels)
        (vreg.clone(), vreg.clone(), vreg.clone()).prop_map(|(dst, a, b)| Inst::new(Op::Vfmadd {
            dst,
            a,
            b,
            acc: dst
        })),
        // vstore
        (vreg.clone(), rreg.clone(), 0i32..256).prop_map(|(src, base, disp)| Inst::new(
            Op::Vstore {
                src,
                base,
                disp: disp * 8
            }
        )),
        // addi
        (rreg.clone(), rreg.clone(), -64i64..64).prop_map(|(dst, src, imm)| Inst::new(Op::Addi {
            dst,
            src,
            imm
        })),
        // cmp
        (rreg.clone(), rreg.clone(), rreg).prop_map(|(dst, a, b)| Inst::new(Op::Cmp { dst, a, b })),
        Just(Inst::new(Op::Nop)),
    ]
}

fn arb_program() -> impl Strategy<Value = Vec<Inst>> {
    prop::collection::vec(arb_inst(), 1..40)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn list_schedule_is_always_a_valid_permutation(prog in arb_program()) {
        let lat = LatencyTable::default();
        let order = list_schedule(&prog, &lat);
        prop_assert_eq!(order.len(), prog.len());
        validate_order(&prog, &order, &lat).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn list_schedule_regression_is_bounded(prog in arb_program()) {
        // The greedy scheduler's resource model lets any two ready ops
        // co-issue, while the real front end only pairs *adjacent* queue
        // entries — so on adversarial programs the schedule can lose a few
        // cycles locally. The property worth holding: it can never lose
        // much, and on latency-bound programs it wins (see the kernel
        // tests in `sw_isa::schedule`).
        let lat = LatencyTable::default();
        let pipe = DualPipe::default();
        let before = pipe.run(&prog).cycles;
        let order = list_schedule(&prog, &lat);
        let after = pipe.run(&apply_order(&prog, &order)).cycles;
        prop_assert!(
            after <= before + before / 3 + 4,
            "schedule regressed too far: {before} -> {after}"
        );
    }

    #[test]
    fn list_schedule_helps_load_then_use_programs(n_loads in 1usize..8) {
        // Structured case: a batch of loads each immediately followed by
        // its (dependent) FMA — the scheduler must hoist loads and beat
        // program order, which stalls 4 cycles per pair.
        let mut prog = Vec::new();
        for i in 0..n_loads as u8 {
            prog.push(Inst::new(Op::Vload { dst: Reg::V(i), base: Reg::R(0), disp: i as i32 * 32 }));
            prog.push(Inst::new(Op::Vfmadd {
                dst: Reg::V(8 + i),
                a: Reg::V(i),
                b: Reg::V(15),
                acc: Reg::V(8 + i),
            }));
        }
        let lat = LatencyTable::default();
        let pipe = DualPipe::default();
        let before = pipe.run(&prog).cycles;
        let order = list_schedule(&prog, &lat);
        validate_order(&prog, &order, &lat).map_err(TestCaseError::fail)?;
        let after = pipe.run(&apply_order(&prog, &order)).cycles;
        if n_loads >= 3 {
            prop_assert!(after < before, "expected speedup: {before} -> {after}");
        } else {
            prop_assert!(after <= before + 1);
        }
    }

    #[test]
    fn identity_order_is_always_valid(prog in arb_program()) {
        let lat = LatencyTable::default();
        let order: Vec<usize> = (0..prog.len()).collect();
        prop_assert!(validate_order(&prog, &order, &lat).is_ok());
    }

    #[test]
    fn reversal_of_dependent_pairs_is_rejected(
        dst in 0u8..8, a in 8u8..16, b in 8u8..16,
    ) {
        // load writes v<dst>, fma reads it: swapping must fail validation.
        let prog = [
            Inst::new(Op::Vload { dst: Reg::V(dst), base: Reg::R(0), disp: 0 }),
            Inst::new(Op::Vfmadd { dst: Reg::V(a), a: Reg::V(dst), b: Reg::V(b), acc: Reg::V(a) }),
        ];
        let lat = LatencyTable::default();
        prop_assert!(validate_order(&prog, &[1, 0], &lat).is_err());
    }

    #[test]
    fn simulated_cycles_bounded_by_instruction_count_and_critical_path(prog in arb_program()) {
        // Lower bound: ceil(n / 2) (2-wide issue). Upper bound: every
        // instruction stalls its full latency: sum of latencies.
        let pipe = DualPipe::default();
        let lat = LatencyTable::default();
        let rep = pipe.run(&prog);
        let lower = (prog.len() as u64).div_ceil(2);
        let upper: u64 = prog.iter().map(|i| lat.of(i).max(1)).sum();
        prop_assert!(rep.cycles >= lower, "cycles {} < lower {lower}", rep.cycles);
        prop_assert!(rep.cycles <= upper, "cycles {} > upper {upper}", rep.cycles);
    }

    #[test]
    fn issue_trace_is_complete_and_ordered(prog in arb_program()) {
        let rep = DualPipe::default().run(&prog);
        prop_assert_eq!(rep.issue_trace.len(), prog.len());
        prop_assert!(rep.issue_trace.windows(2).all(|w| w[0].0 <= w[1].0));
        prop_assert_eq!(rep.p0_issued + rep.p1_issued, prog.len() as u64);
    }

    #[test]
    fn asm_round_trip_over_arbitrary_programs(prog in arb_program()) {
        let text = sw_isa::print_program(&prog, true);
        let back = sw_isa::parse_program(&text).map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(back, prog);
    }
}
