//! Instruction-level model of the SW26010 Computing Processing Element (CPE).
//!
//! Section VI of the swDNN paper describes each CPE as a 2-wide in-order
//! core with two asymmetric execution pipelines sharing one instruction
//! decoder:
//!
//! * **P0** — floating-point and vector operations (plus scalar integer),
//! * **P1** — memory accesses, register communication and control transfer
//!   (plus scalar integer).
//!
//! Two queue-head instructions dual-issue only when (1) neither conflicts
//! with in-flight instructions, (2) they have no RAW/WAW hazard between
//! themselves, and (3) they map to different pipelines.
//!
//! This crate provides:
//!
//! * [`inst`] — the subset of the CPE ISA swDNN's inner kernels use,
//! * [`pipeline`] — a cycle-accurate dual-issue simulator implementing the
//!   contract above (loads 4 cycles, `vfmadd` 7 cycles, fully pipelined),
//! * [`schedule`] — dependence analysis, a greedy dual-issue list scheduler
//!   and the two-stage software pipeliner of §VI-B,
//! * [`kernels`] — generators for the GEMM inner kernel in its naive
//!   (compiler-like) and reordered (hand-scheduled) forms,
//! * [`efficiency`] — the closed-form execution-efficiency expressions the
//!   paper derives (16/26 naive; `16n / (17n + 4)` pipelined).
//!
//! The headline reproduction: simulating the naive kernel yields 26 cycles
//! per iteration and the reordered kernel 17, exactly as Fig. 6 reports.

pub mod asm;
pub mod efficiency;
pub mod inst;
pub mod kernels;
pub mod liveness;
pub mod pipeline;
pub mod schedule;

pub use asm::{format_inst, parse_program, print_program};
pub use inst::{Inst, Op, Pipe, PipeClass, Reg};
pub use kernels::{naive_gemm_kernel, regcomm_consumer_kernel, reordered_gemm_kernel, KernelSpec};
pub use liveness::{analyze as analyze_liveness, PressureReport};
pub use pipeline::{DualPipe, ExecReport, LatencyTable};
pub use schedule::{list_schedule, res_mii, software_pipeline, validate_order, DepGraph};
