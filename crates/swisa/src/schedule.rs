//! Dependence analysis and the §VI instruction-reordering optimizer.
//!
//! The paper describes a three-step manual process — dependence analysis,
//! intra-loop pipelining/reordering, inter-loop pipelining — because "current
//! optimization tools in the Sunway C compiler can not provide an optimized
//! solution". This module mechanizes those steps:
//!
//! * [`DepGraph`] — register RAW/WAW/WAR and memory/control dependences of a
//!   straight-line instruction block,
//! * [`list_schedule`] — greedy critical-path list scheduling under the
//!   dual-pipeline resource model (step 2),
//! * [`software_pipeline`] — two-stage inter-loop pipelining that hoists each
//!   iteration's stage-0 (load) instructions into the previous iteration
//!   (step 3). It is a pure reordering: the caller must already have broken
//!   WAR conflicts by double-buffering registers across iterations (the
//!   paper's "register package"), and [`validate_order`] will reject the
//!   transformation if they have not,
//! * [`validate_order`] — checks that a permutation of a block preserves
//!   every dependence edge (the proptest target for scheduler soundness).

use crate::inst::{Inst, Op, Reg};
use crate::pipeline::LatencyTable;

/// Kind of dependence edge.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DepKind {
    /// Read-after-write: consumer must wait the producer's full latency.
    Raw,
    /// Write-after-write: later write must not be reordered before.
    Waw,
    /// Write-after-read: the write must not move before the read
    /// (same-cycle is fine: operands are captured at issue).
    War,
    /// Memory ordering (store vs load/store on a possibly-aliasing address).
    Mem,
    /// Control: nothing moves across a branch.
    Ctrl,
}

/// A dependence edge `from -> to` with a minimum issue-distance in cycles.
#[derive(Clone, Copy, Debug)]
pub struct DepEdge {
    pub from: usize,
    pub to: usize,
    pub kind: DepKind,
    /// `issue(to) >= issue(from) + min_latency`.
    pub min_latency: u64,
}

/// Dependence graph over one straight-line block (branches act as barriers).
#[derive(Clone, Debug)]
pub struct DepGraph {
    pub n: usize,
    pub edges: Vec<DepEdge>,
    /// `preds[j]` = indices of edges into node `j`.
    preds: Vec<Vec<usize>>,
}

fn mem_footprint(inst: &Inst) -> Option<(Reg, i32, bool)> {
    // (base, disp, is_write-to-memory)
    match inst.op {
        Op::Vload { base, disp, .. }
        | Op::Vldde { base, disp, .. }
        | Op::Vldr { base, disp, .. }
        | Op::Vldc { base, disp, .. } => Some((base, disp, false)),
        Op::Vstore { base, disp, .. } => Some((base, disp, true)),
        _ => None,
    }
}

impl DepGraph {
    /// Build the dependence graph of `block` with latencies from `lat`.
    pub fn build(block: &[Inst], lat: &LatencyTable) -> Self {
        let mut edges: Vec<DepEdge> = Vec::new();
        let mut push = |from: usize, to: usize, kind: DepKind, min_latency: u64| {
            edges.push(DepEdge {
                from,
                to,
                kind,
                min_latency,
            });
        };

        for j in 0..block.len() {
            let bj = &block[j];
            let j_reads = bj.reads();
            let j_writes = bj.writes();
            let j_mem = mem_footprint(bj);
            for i in (0..j).rev() {
                let bi = &block[i];
                let i_writes = bi.writes();
                // RAW
                if let Some(w) = i_writes {
                    if j_reads.contains(&w) {
                        push(i, j, DepKind::Raw, lat.of(bi));
                    }
                    // WAW
                    if j_writes == Some(w) {
                        push(i, j, DepKind::Waw, 1);
                    }
                }
                // WAR
                if let Some(w) = j_writes {
                    if bi.reads().contains(&w) {
                        push(i, j, DepKind::War, 0);
                    }
                }
                // Memory: conservative — any pair touching the same base
                // register where at least one side writes memory is ordered.
                // Distinct base registers are assumed disjoint (the kernel
                // convention: each base points at a separate LDM array).
                if let (Some((ib, _id, iw)), Some((jb, _jd, jw))) = (mem_footprint(bi), j_mem) {
                    if (iw || jw) && ib == jb {
                        push(i, j, DepKind::Mem, 1);
                    }
                }
                // Control: everything *before* a branch stays before it, and
                // memory writes / other branches stay *after* it. Loads and
                // arithmetic may be hoisted across an earlier branch — the
                // speculative load hoisting that software pipelining relies
                // on (the hoisted operation is register-renamed by the
                // caller and side-effect free).
                if bj.is_branch() {
                    push(i, j, DepKind::Ctrl, 1);
                } else if bi.is_branch() {
                    let j_writes_mem = j_mem.map(|(_, _, w)| w).unwrap_or(false)
                        || matches!(bj.op, Op::Putr { .. } | Op::Putc { .. });
                    if j_writes_mem {
                        push(i, j, DepKind::Ctrl, 1);
                    }
                }
            }
        }

        let mut preds = vec![Vec::new(); block.len()];
        for (e_idx, e) in edges.iter().enumerate() {
            preds[e.to].push(e_idx);
        }
        Self {
            n: block.len(),
            edges,
            preds,
        }
    }

    /// Longest-path priority of each node (critical path to any sink).
    pub fn critical_path(&self) -> Vec<u64> {
        let mut prio = vec![0u64; self.n];
        // edges go from lower to higher index; reverse topological = reverse index order.
        let mut succs: Vec<Vec<(usize, u64)>> = vec![Vec::new(); self.n];
        for e in &self.edges {
            succs[e.from].push((e.to, e.min_latency.max(1)));
        }
        for i in (0..self.n).rev() {
            for &(t, l) in &succs[i] {
                prio[i] = prio[i].max(prio[t] + l);
            }
        }
        prio
    }

    fn pred_edges(&self, j: usize) -> impl Iterator<Item = &DepEdge> {
        self.preds[j].iter().map(move |&e| &self.edges[e])
    }
}

/// Check that executing `block` in the order given by `order` (a permutation
/// of `0..block.len()`) preserves every dependence edge.
///
/// Returns `Err` naming the first violated edge.
pub fn validate_order(block: &[Inst], order: &[usize], lat: &LatencyTable) -> Result<(), String> {
    if order.len() != block.len() {
        return Err(format!(
            "order length {} != block length {}",
            order.len(),
            block.len()
        ));
    }
    let mut pos = vec![usize::MAX; block.len()];
    for (p, &i) in order.iter().enumerate() {
        if i >= block.len() || pos[i] != usize::MAX {
            return Err(format!("order is not a permutation (index {i})"));
        }
        pos[i] = p;
    }
    let g = DepGraph::build(block, lat);
    for e in &g.edges {
        // WAR edges allow same-position... positions are strict order, so
        // every edge just requires pos[from] < pos[to]; same-cycle pairing is
        // the pipeline simulator's job, the *order* must still respect deps.
        if pos[e.from] >= pos[e.to] {
            return Err(format!(
                "dependence {:?} {} -> {} violated: scheduled {} -> {}",
                e.kind, e.from, e.to, pos[e.from], pos[e.to]
            ));
        }
    }
    Ok(())
}

/// Greedy critical-path list scheduling under the dual-pipe resource model.
///
/// Produces a new issue *order* (indices into `block`). At each simulated
/// cycle the scheduler issues at most one P0 and one P1 instruction among
/// those whose predecessors have completed, preferring higher critical-path
/// priority. `Either`-class instructions fill whichever slot is free.
pub fn list_schedule(block: &[Inst], lat: &LatencyTable) -> Vec<usize> {
    use crate::inst::PipeClass;
    let g = DepGraph::build(block, lat);
    let prio = g.critical_path();
    let mut issued: Vec<Option<u64>> = vec![None; block.len()]; // issue cycle
    let mut order: Vec<usize> = Vec::with_capacity(block.len());
    let mut cycle: u64 = 0;
    let mut remaining = block.len();

    while remaining > 0 {
        // Nodes ready this cycle: all preds issued and latency satisfied.
        let mut ready: Vec<usize> = (0..block.len())
            .filter(|&j| issued[j].is_none())
            .filter(|&j| {
                g.pred_edges(j)
                    .all(|e| issued[e.from].is_some_and(|c| c + e.min_latency <= cycle))
            })
            .collect();
        ready.sort_by_key(|&j| (std::cmp::Reverse(prio[j]), j));

        let mut p0_free = true;
        let mut p1_free = true;
        let mut issued_branch = false;
        for &j in &ready {
            if issued_branch {
                break;
            }
            let class = block[j].pipe_class();
            let slot = match class {
                PipeClass::P0Only if p0_free => Some(&mut p0_free),
                PipeClass::P1Only if p1_free => Some(&mut p1_free),
                PipeClass::Either if p1_free => Some(&mut p1_free),
                PipeClass::Either if p0_free => Some(&mut p0_free),
                _ => None,
            };
            if let Some(flag) = slot {
                *flag = false;
                issued[j] = Some(cycle);
                order.push(j);
                remaining -= 1;
                if block[j].is_branch() {
                    issued_branch = true;
                }
            }
            if !p0_free && !p1_free {
                break;
            }
        }
        cycle += 1;
    }
    order
}

/// Inter-loop (two-stage) software pipelining — §VI-B step 3.
///
/// `iterations[k]` is the instruction list of loop iteration `k`, with each
/// instruction tagged `stage 0` (operand loads) or `stage 1` (compute and
/// control). The transformation emits:
///
/// * a prologue — iteration 0's stage-0 instructions,
/// * for each iteration `k`: its stage-1 instructions interleaved 1:1 with
///   iteration `k+1`'s stage-0 instructions (loads hide under FMAs), with
///   any branch kept last in its iteration,
/// * iteration `n-1`'s stage-1 instructions form the natural epilogue
///   (there is nothing left to interleave).
///
/// Returns indices into the *concatenation* of `iterations`, so the caller
/// can both materialize the program and [`validate_order`] it.
pub fn software_pipeline(iterations: &[Vec<Inst>]) -> Vec<usize> {
    let n = iterations.len();
    // Global index of iterations[k][i].
    let mut base = vec![0usize; n + 1];
    for k in 0..n {
        base[k + 1] = base[k] + iterations[k].len();
    }
    let mut order: Vec<usize> = Vec::with_capacity(base[n]);

    let stage_idx = |k: usize, stage: u8| -> Vec<usize> {
        iterations[k]
            .iter()
            .enumerate()
            .filter(|(_, inst)| inst.stage == stage)
            .map(|(i, _)| base[k] + i)
            .collect()
    };

    // Prologue: iteration 0's loads.
    order.extend(stage_idx(0, 0));

    let concat: Vec<&Inst> = iterations.iter().flatten().collect();
    for k in 0..n {
        let compute = stage_idx(k, 1);
        // Branch (if any) must stay last within the iteration so it can pair
        // with the final P0 op; every other non-P0 compute op (e.g. `cmp`)
        // rides the P1 stream together with the hoisted loads.
        let (branches, body): (Vec<usize>, Vec<usize>) =
            compute.into_iter().partition(|&g| concat[g].is_branch());
        let (p0_ops, p1_extra): (Vec<usize>, Vec<usize>) = body
            .into_iter()
            .partition(|&g| concat[g].pipe_class() == crate::inst::PipeClass::P0Only);
        let hoisted: Vec<usize> = if k + 1 < n {
            stage_idx(k + 1, 0)
        } else {
            Vec::new()
        };
        let mut p1_side = hoisted.into_iter().chain(p1_extra);
        for g in p0_ops {
            order.push(g);
            if let Some(h) = p1_side.next() {
                order.push(h);
            }
        }
        order.extend(p1_side);
        order.extend(branches);
    }
    order
}

/// Materialize a permutation into an instruction vector.
pub fn apply_order(block: &[Inst], order: &[usize]) -> Vec<Inst> {
    order.iter().map(|&i| block[i]).collect()
}

/// Resource-constrained minimum initiation interval (ResMII) of a loop
/// body under the dual-pipeline contract: the steady-state cycles per
/// iteration can never beat the busier pipeline, and a taken loop-back
/// branch adds its fetch bubble.
///
/// `Either`-class operations are assigned to the less-loaded pipe (the
/// optimistic bound). For the paper's inner kernel — 16 P0 FMAs vs
/// 8 loads + `cmp` + `bnw` on P1 — this gives `max(16, 10) + 1 = 17`,
/// which the §VI schedule achieves exactly: the hand schedule is optimal.
pub fn res_mii(body: &[Inst]) -> u64 {
    use crate::inst::PipeClass;
    let mut p0 = 0u64;
    let mut p1 = 0u64;
    let mut either = 0u64;
    let mut bubble = 0u64;
    for inst in body {
        match inst.pipe_class() {
            PipeClass::P0Only => p0 += 1,
            PipeClass::P1Only => p1 += 1,
            PipeClass::Either => either += 1,
        }
        if matches!(inst.op, Op::Branch { taken: true, .. }) {
            bubble = 1;
        }
    }
    // Distribute Either ops onto the less-loaded pipe.
    let mut e = either;
    while e > 0 {
        if p0 <= p1 {
            p0 += 1;
        } else {
            p1 += 1;
        }
        e -= 1;
    }
    p0.max(p1) + bubble
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Inst, Op, Reg};
    use crate::pipeline::DualPipe;

    fn vload(dst: u8, disp: i32) -> Inst {
        Inst::staged(
            Op::Vload {
                dst: Reg::V(dst),
                base: Reg::R(0),
                disp,
            },
            0,
        )
    }
    fn fma(dst: u8, a: u8, b: u8) -> Inst {
        Inst::staged(
            Op::Vfmadd {
                dst: Reg::V(dst),
                a: Reg::V(a),
                b: Reg::V(b),
                acc: Reg::V(dst),
            },
            1,
        )
    }

    #[test]
    fn raw_edges_are_found() {
        let block = [vload(0, 0), fma(8, 0, 1)];
        let g = DepGraph::build(&block, &LatencyTable::default());
        assert!(g
            .edges
            .iter()
            .any(|e| e.kind == DepKind::Raw && e.from == 0 && e.to == 1 && e.min_latency == 4));
    }

    #[test]
    fn war_edges_are_found() {
        // fma reads v0, then a load overwrites v0.
        let block = [fma(8, 0, 1), vload(0, 0)];
        let g = DepGraph::build(&block, &LatencyTable::default());
        assert!(g
            .edges
            .iter()
            .any(|e| e.kind == DepKind::War && e.from == 0 && e.to == 1));
    }

    #[test]
    fn branch_control_edges_are_asymmetric() {
        let block = [
            vload(0, 0),
            Inst::staged(
                Op::Branch {
                    cond: Reg::R(3),
                    taken: true,
                },
                1,
            ),
            vload(1, 32),
            Inst::staged(
                Op::Vstore {
                    src: Reg::V(1),
                    base: Reg::R(5),
                    disp: 0,
                },
                1,
            ),
        ];
        let g = DepGraph::build(&block, &LatencyTable::default());
        // Anything before a branch stays before it.
        assert!(g
            .edges
            .iter()
            .any(|e| e.kind == DepKind::Ctrl && e.from == 0 && e.to == 1));
        // Loads may be speculatively hoisted across an earlier branch...
        assert!(!g
            .edges
            .iter()
            .any(|e| e.kind == DepKind::Ctrl && e.from == 1 && e.to == 2));
        // ...but memory writes may not.
        assert!(g
            .edges
            .iter()
            .any(|e| e.kind == DepKind::Ctrl && e.from == 1 && e.to == 3));
    }

    #[test]
    fn validate_accepts_identity_and_rejects_violations() {
        let block = [vload(0, 0), fma(8, 0, 1)];
        let lat = LatencyTable::default();
        assert!(validate_order(&block, &[0, 1], &lat).is_ok());
        assert!(validate_order(&block, &[1, 0], &lat).is_err());
        assert!(validate_order(&block, &[0, 0], &lat).is_err());
        assert!(validate_order(&block, &[0], &lat).is_err());
    }

    #[test]
    fn list_schedule_is_valid_and_no_slower() {
        // A block with an obvious improvement: load feeding the last fma
        // placed late by the programmer.
        let block = [
            fma(16, 1, 2),
            fma(17, 1, 2),
            fma(18, 1, 2),
            vload(0, 0),
            fma(19, 0, 2), // depends on the load
        ];
        let lat = LatencyTable::default();
        let order = list_schedule(&block, &lat);
        validate_order(&block, &order, &lat).unwrap();
        let pipe = DualPipe::default();
        let before = pipe.run(&block).cycles;
        let after = pipe.run(&apply_order(&block, &order)).cycles;
        assert!(
            after <= before,
            "list schedule regressed: {before} -> {after}"
        );
        // The load should have been hoisted to cycle 0 alongside an fma.
        assert!(order[0..2].contains(&3));
    }

    #[test]
    fn software_pipeline_reproduces_the_17_cycle_loop() {
        // Build naive-style iterations but with ping-pong register sets, as
        // the paper's "register package" requires; pipeline them and check
        // both validity and the steady-state period.
        let n = 8usize;
        let lat = LatencyTable::default();
        let iterations: Vec<Vec<Inst>> = (0..n)
            .map(|k| {
                let s = (k % 2) as u8 * 8; // A: v0..3 / v8..11; B: v4..7 / v12..15
                let mut body = Vec::new();
                body.push(Inst::staged(
                    Op::Vldde {
                        dst: Reg::V(s + 4),
                        base: Reg::R(1),
                        disp: (k * 32) as i32,
                    },
                    0,
                ));
                for i in 0..4u8 {
                    body.push(Inst::staged(
                        Op::Vload {
                            dst: Reg::V(s + i),
                            base: Reg::R(0),
                            disp: (k * 128) as i32 + i as i32 * 32,
                        },
                        0,
                    ));
                }
                for j in 1..4u8 {
                    body.push(Inst::staged(
                        Op::Vldde {
                            dst: Reg::V(s + 4 + j),
                            base: Reg::R(1),
                            disp: (k * 32) as i32 + j as i32 * 8,
                        },
                        0,
                    ));
                }
                // column-major FMAs
                for j in 0..4u8 {
                    for i in 0..4u8 {
                        body.push(Inst::staged(
                            Op::Vfmadd {
                                dst: Reg::V(16 + 4 * j + i),
                                a: Reg::V(s + i),
                                b: Reg::V(s + 4 + j),
                                acc: Reg::V(16 + 4 * j + i),
                            },
                            1,
                        ));
                    }
                }
                body.push(Inst::staged(
                    Op::Cmp {
                        dst: Reg::R(3),
                        a: Reg::R(0),
                        b: Reg::R(2),
                    },
                    1,
                ));
                body.push(Inst::staged(
                    Op::Branch {
                        cond: Reg::R(3),
                        taken: k + 1 < n,
                    },
                    1,
                ));
                body
            })
            .collect();

        let concat: Vec<Inst> = iterations.iter().flatten().copied().collect();
        let order = software_pipeline(&iterations);
        validate_order(&concat, &order, &lat).unwrap();

        let pipe = DualPipe::default();
        let scheduled = apply_order(&concat, &order);
        let rep = pipe.run(&scheduled);
        let naive = pipe.run(&concat);
        assert!(rep.cycles < naive.cycles);
        // Steady-state period must be 17 cycles (16 FMA slots + bubble).
        let mut iters9 = iterations.clone();
        {
            let k = n;
            // one more iteration, same shape
            let mut body = iters9[n - 2].clone();
            for inst in &mut body {
                if let Op::Branch { taken, .. } = &mut inst.op {
                    *taken = false;
                }
            }
            // fix previous last branch to taken
            for inst in iters9[n - 1].iter_mut() {
                if let Op::Branch { taken, .. } = &mut inst.op {
                    *taken = true;
                }
            }
            let _ = k;
            iters9.push(body);
        }
        let concat9: Vec<Inst> = iters9.iter().flatten().copied().collect();
        let order9 = software_pipeline(&iters9);
        validate_order(&concat9, &order9, &lat).unwrap();
        let rep9 = pipe.run(&apply_order(&concat9, &order9));
        assert_eq!(rep9.cycles - rep.cycles, 17);
    }

    #[test]
    fn res_mii_of_the_paper_kernel_is_17() {
        // One steady-state iteration: 16 FMAs, 8 loads, cmp, taken branch.
        let mut body: Vec<Inst> = Vec::new();
        for j in 0..4u8 {
            for i in 0..4u8 {
                body.push(fma(16 + 4 * j + i, i, 4 + j));
            }
        }
        for i in 0..8 {
            body.push(vload(i, i as i32 * 32));
        }
        body.push(Inst::staged(
            Op::Cmp {
                dst: Reg::R(3),
                a: Reg::R(0),
                b: Reg::R(2),
            },
            1,
        ));
        body.push(Inst::staged(
            Op::Branch {
                cond: Reg::R(3),
                taken: true,
            },
            1,
        ));
        assert_eq!(res_mii(&body), 17, "the hand schedule of Fig. 6 is optimal");
    }

    #[test]
    fn res_mii_balances_either_ops() {
        // 3 FMAs (P0), 1 load (P1), 2 addi (Either) -> P1 takes both: max(3,3)=3.
        let body = vec![
            fma(16, 0, 1),
            fma(17, 0, 1),
            fma(18, 0, 1),
            vload(0, 0),
            Inst::new(Op::Addi {
                dst: Reg::R(5),
                src: Reg::R(5),
                imm: 1,
            }),
            Inst::new(Op::Addi {
                dst: Reg::R(6),
                src: Reg::R(6),
                imm: 1,
            }),
        ];
        assert_eq!(res_mii(&body), 3);
    }

    #[test]
    fn software_pipeline_without_register_renaming_is_rejected() {
        // Single register set: hoisting iteration k+1's loads above
        // iteration k's FMAs violates WAR dependences.
        let n = 3usize;
        let iterations: Vec<Vec<Inst>> = (0..n)
            .map(|k| {
                // Two FMAs read v0, so a load of v0 hoisted between them
                // clobbers the operand of the second one (WAR violation).
                vec![
                    Inst::staged(
                        Op::Vload {
                            dst: Reg::V(0),
                            base: Reg::R(0),
                            disp: (k * 32) as i32,
                        },
                        0,
                    ),
                    fma(16, 0, 1),
                    fma(17, 0, 2),
                    Inst::staged(
                        Op::Branch {
                            cond: Reg::R(3),
                            taken: k + 1 < n,
                        },
                        1,
                    ),
                ]
            })
            .collect();
        let concat: Vec<Inst> = iterations.iter().flatten().copied().collect();
        let order = software_pipeline(&iterations);
        assert!(validate_order(&concat, &order, &LatencyTable::default()).is_err());
    }
}
