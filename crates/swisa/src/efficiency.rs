//! Closed-form execution-efficiency (EE) expressions from §VI-B.
//!
//! The paper's EE is the fraction of issue cycles in which P0 performs a
//! floating-point operation. For the 16-FMA inner kernel iterated `n = Ni/8`
//! times:
//!
//! * naive flow: 26 issue slots per iteration ⇒ `EE → 16/26 = 61.5 %`,
//! * reordered flow: `EE(n) = 16n / (5 + 17(n−1) + 16) = 16n / (17n + 4)`
//!   — "larger Ni will get higher execution efficiency".

/// Iterations of the inner loop for a given number of input channels.
pub fn iterations_for_ni(ni: usize) -> usize {
    (ni / 8).max(1)
}

/// Steady-state EE of the naive kernel: `16/26 ≈ 0.615`.
pub fn ee_naive_asymptotic() -> f64 {
    16.0 / 26.0
}

/// Exact EE of the naive kernel for `n` iterations as simulated
/// (the final fall-through branch saves its bubble: `16n / (26n − 1)`).
pub fn ee_naive(n: usize) -> f64 {
    let n = n as f64;
    16.0 * n / (26.0 * n - 1.0)
}

/// EE of the software-pipelined kernel, the paper's
/// `(Ni/8 · 16) / (5 + (Ni/8 − 1)·17 + 16)`.
pub fn ee_reordered(n: usize) -> f64 {
    let n = n as f64;
    16.0 * n / (17.0 * n + 4.0)
}

/// Total issue cycles of the reordered kernel: `17n + 4`.
pub fn cycles_reordered(n: usize) -> u64 {
    17 * n as u64 + 4
}

/// Total issue cycles of the naive kernel: `26n − 1`.
pub fn cycles_naive(n: usize) -> u64 {
    26 * n as u64 - 1
}

/// EE for a given channel count under the reordered kernel.
pub fn ee_for_ni(ni: usize) -> f64 {
    ee_reordered(iterations_for_ni(ni))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{naive_gemm_kernel, reordered_gemm_kernel, KernelSpec};
    use crate::pipeline::DualPipe;

    #[test]
    fn formulas_match_simulation() {
        let pipe = DualPipe::default();
        for n in 2..=48usize {
            let spec = KernelSpec::new(n);
            assert_eq!(
                pipe.run(&naive_gemm_kernel(spec)).cycles,
                cycles_naive(n),
                "naive n={n}"
            );
            assert_eq!(
                pipe.run(&reordered_gemm_kernel(spec)).cycles,
                cycles_reordered(n),
                "reordered n={n}"
            );
        }
    }

    #[test]
    fn paper_headline_numbers() {
        // 16/26 = 61.5%
        assert!((ee_naive_asymptotic() - 0.615).abs() < 1e-3);
        // Ni=64 -> n=8 -> 128/140 ≈ 91.4%
        assert!((ee_for_ni(64) - 128.0 / 140.0).abs() < 1e-12);
        // Larger Ni gives higher efficiency.
        assert!(ee_for_ni(384) > ee_for_ni(64));
        assert!(ee_for_ni(64) > ee_naive_asymptotic());
    }

    #[test]
    fn ee_is_monotone_in_n_and_bounded() {
        let mut prev = 0.0;
        for n in 1..200 {
            let e = ee_reordered(n);
            assert!(e > prev);
            assert!(e < 16.0 / 17.0);
            prev = e;
        }
    }

    #[test]
    fn iterations_floor_at_one() {
        assert_eq!(iterations_for_ni(4), 1);
        assert_eq!(iterations_for_ni(64), 8);
        assert_eq!(iterations_for_ni(384), 48);
    }
}
