//! The subset of the CPE instruction set used by swDNN inner kernels.
//!
//! Registers are architectural: 32 vector registers (256-bit, `V0..V31`)
//! and 32 scalar registers (`R0..R31`). Operand values are not interpreted
//! by this crate — only *names* matter, for hazards — except the branch
//! `taken` flag, which drives control flow in the timing simulator.

use std::fmt;

/// An architectural register name.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Reg {
    /// 256-bit vector register (holds 4 doubles).
    V(u8),
    /// 64-bit scalar register.
    R(u8),
}

impl Reg {
    pub const fn is_vector(self) -> bool {
        matches!(self, Reg::V(_))
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reg::V(i) => write!(f, "v{i}"),
            Reg::R(i) => write!(f, "r{i}"),
        }
    }
}

/// Which execution pipeline(s) can handle an operation (§VI-A).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PipeClass {
    /// Floating-point / vector arithmetic: P0 only.
    P0Only,
    /// Memory, register communication, control transfer: P1 only.
    P1Only,
    /// Scalar integer operations: either pipeline.
    Either,
}

/// A concrete pipeline assignment made at issue time.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Pipe {
    P0,
    P1,
}

/// Operations. Memory operands are `(base register, displacement)`; the
/// displacement participates only in disambiguation, not in timing.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Op {
    /// Vector load from LDM: `dst <- ldm[base+disp ..+32]`. P1, 4 cycles.
    Vload { dst: Reg, base: Reg, disp: i32 },
    /// Scalar double load replicated into all 4 lanes (`vldde`). P1, 4 cycles.
    Vldde { dst: Reg, base: Reg, disp: i32 },
    /// Vector store to LDM. P1, 1 cycle (no consumer waits on it).
    Vstore { src: Reg, base: Reg, disp: i32 },
    /// Vector fused multiply-add `dst = a*b + acc` (`vfmad`). P0, 7 cycles.
    Vfmadd { dst: Reg, a: Reg, b: Reg, acc: Reg },
    /// Vector add `dst = a + b`. P0, 7 cycles (shares the FP pipe).
    Vaddd { dst: Reg, a: Reg, b: Reg },
    /// Load + broadcast onto the row bus (`vldr` = `vload`+`putr`). P1, 4 cycles.
    Vldr { dst: Reg, base: Reg, disp: i32 },
    /// Load + broadcast onto the column bus (`vldc`). P1, 4 cycles.
    Vldc { dst: Reg, base: Reg, disp: i32 },
    /// Put a vector register on the row bus. P1, 1 cycle.
    Putr { src: Reg },
    /// Put a vector register on the column bus. P1, 1 cycle.
    Putc { src: Reg },
    /// Fetch 256 bits from the row transfer buffer. P1, 4 cycles.
    Getr { dst: Reg },
    /// Fetch 256 bits from the column transfer buffer. P1, 4 cycles.
    Getc { dst: Reg },
    /// Scalar integer add-immediate (address update). Either pipe, 1 cycle.
    Addi { dst: Reg, src: Reg, imm: i64 },
    /// Scalar compare writing a predicate register. Either pipe, 1 cycle.
    Cmp { dst: Reg, a: Reg, b: Reg },
    /// Conditional branch on a predicate. P1; a taken branch inserts a
    /// 1-cycle fetch bubble (no delay slot on the CPE).
    Branch { cond: Reg, taken: bool },
    /// No-operation (either pipe, 1 cycle).
    Nop,
}

/// One instruction: an [`Op`] plus an optional pipeline-stage tag used by
/// the software pipeliner (`stage 0` = loads, `stage 1` = computes).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Inst {
    pub op: Op,
    pub stage: u8,
}

impl Inst {
    pub const fn new(op: Op) -> Self {
        Self { op, stage: 0 }
    }

    pub const fn staged(op: Op, stage: u8) -> Self {
        Self { op, stage }
    }

    /// The pipeline class of this instruction.
    pub fn pipe_class(&self) -> PipeClass {
        match self.op {
            Op::Vfmadd { .. } | Op::Vaddd { .. } => PipeClass::P0Only,
            Op::Vload { .. }
            | Op::Vldde { .. }
            | Op::Vstore { .. }
            | Op::Vldr { .. }
            | Op::Vldc { .. }
            | Op::Putr { .. }
            | Op::Putc { .. }
            | Op::Getr { .. }
            | Op::Getc { .. }
            | Op::Branch { .. } => PipeClass::P1Only,
            Op::Addi { .. } | Op::Cmp { .. } | Op::Nop => PipeClass::Either,
        }
    }

    /// Registers read by this instruction (operands captured at issue).
    pub fn reads(&self) -> Vec<Reg> {
        match self.op {
            Op::Vload { base, .. }
            | Op::Vldde { base, .. }
            | Op::Vldr { base, .. }
            | Op::Vldc { base, .. } => {
                vec![base]
            }
            Op::Vstore { src, base, .. } => vec![src, base],
            Op::Vfmadd { a, b, acc, .. } => vec![a, b, acc],
            Op::Vaddd { a, b, .. } => vec![a, b],
            Op::Putr { src } | Op::Putc { src } => vec![src],
            Op::Getr { .. } | Op::Getc { .. } => vec![],
            Op::Addi { src, .. } => vec![src],
            Op::Cmp { a, b, .. } => vec![a, b],
            Op::Branch { cond, .. } => vec![cond],
            Op::Nop => vec![],
        }
    }

    /// Register written by this instruction, if any.
    pub fn writes(&self) -> Option<Reg> {
        match self.op {
            Op::Vload { dst, .. }
            | Op::Vldde { dst, .. }
            | Op::Vldr { dst, .. }
            | Op::Vldc { dst, .. }
            | Op::Getr { dst }
            | Op::Getc { dst }
            | Op::Vfmadd { dst, .. }
            | Op::Vaddd { dst, .. }
            | Op::Addi { dst, .. }
            | Op::Cmp { dst, .. } => Some(dst),
            Op::Vstore { .. } | Op::Putr { .. } | Op::Putc { .. } | Op::Branch { .. } | Op::Nop => {
                None
            }
        }
    }

    pub const fn is_branch(&self) -> bool {
        matches!(self.op, Op::Branch { .. })
    }

    /// True for operations whose *useful work* is floating-point arithmetic
    /// (used by execution-efficiency accounting).
    pub const fn is_flop(&self) -> bool {
        matches!(self.op, Op::Vfmadd { .. } | Op::Vaddd { .. })
    }

    /// Double-precision flops performed (4-lane FMA = 8 flops).
    pub const fn flops(&self) -> u64 {
        match self.op {
            Op::Vfmadd { .. } => 8,
            Op::Vaddd { .. } => 4,
            _ => 0,
        }
    }

    /// LDM bytes *read* by this instruction, in the paper's Eq. 5
    /// bandwidth accounting: a 256-bit vector load moves 32 bytes, and
    /// `vldde` — which reads one 8-byte double but replicates it through
    /// the load path into all 4 lanes — is charged the full 32 bytes of
    /// register-file fill it produces (this 4x factor is exactly how Eq. 5
    /// arrives at its `4*rb_no` term). `vldr`/`vldc` read LDM before
    /// broadcasting; `getr`/`getc` read the bus transfer buffer, not LDM.
    pub const fn ldm_load_bytes(&self) -> u64 {
        match self.op {
            Op::Vload { .. } | Op::Vldde { .. } | Op::Vldr { .. } | Op::Vldc { .. } => 32,
            _ => 0,
        }
    }

    /// LDM bytes *written* by this instruction (vector store = 32 bytes).
    pub const fn ldm_store_bytes(&self) -> u64 {
        match self.op {
            Op::Vstore { .. } => 32,
            _ => 0,
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.op {
            Op::Vload { dst, base, disp } => write!(f, "vload {dst:?}, {disp}({base:?})"),
            Op::Vldde { dst, base, disp } => write!(f, "vldde {dst:?}, {disp}({base:?})"),
            Op::Vstore { src, base, disp } => write!(f, "vstore {src:?}, {disp}({base:?})"),
            Op::Vfmadd { dst, a, b, acc } => write!(f, "vfmad {dst:?}, {a:?}, {b:?}, {acc:?}"),
            Op::Vaddd { dst, a, b } => write!(f, "vaddd {dst:?}, {a:?}, {b:?}"),
            Op::Vldr { dst, base, disp } => write!(f, "vldr {dst:?}, {disp}({base:?})"),
            Op::Vldc { dst, base, disp } => write!(f, "vldc {dst:?}, {disp}({base:?})"),
            Op::Putr { src } => write!(f, "putr {src:?}"),
            Op::Putc { src } => write!(f, "putc {src:?}"),
            Op::Getr { dst } => write!(f, "getr {dst:?}"),
            Op::Getc { dst } => write!(f, "getc {dst:?}"),
            Op::Addi { dst, src, imm } => write!(f, "addi {dst:?}, {src:?}, {imm}"),
            Op::Cmp { dst, a, b } => write!(f, "cmp {dst:?}, {a:?}, {b:?}"),
            Op::Branch { cond, taken } => {
                write!(
                    f,
                    "bnw {cond:?} ({})",
                    if taken { "taken" } else { "fall-through" }
                )
            }
            Op::Nop => write!(f, "nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipe_classes_follow_section_vi() {
        let fma = Inst::new(Op::Vfmadd {
            dst: Reg::V(0),
            a: Reg::V(1),
            b: Reg::V(2),
            acc: Reg::V(0),
        });
        assert_eq!(fma.pipe_class(), PipeClass::P0Only);
        let ld = Inst::new(Op::Vload {
            dst: Reg::V(0),
            base: Reg::R(1),
            disp: 0,
        });
        assert_eq!(ld.pipe_class(), PipeClass::P1Only);
        let addi = Inst::new(Op::Addi {
            dst: Reg::R(0),
            src: Reg::R(0),
            imm: 32,
        });
        assert_eq!(addi.pipe_class(), PipeClass::Either);
        let br = Inst::new(Op::Branch {
            cond: Reg::R(2),
            taken: true,
        });
        assert_eq!(br.pipe_class(), PipeClass::P1Only);
    }

    #[test]
    fn reads_and_writes_are_complete() {
        let fma = Inst::new(Op::Vfmadd {
            dst: Reg::V(0),
            a: Reg::V(1),
            b: Reg::V(2),
            acc: Reg::V(0),
        });
        assert_eq!(fma.reads(), vec![Reg::V(1), Reg::V(2), Reg::V(0)]);
        assert_eq!(fma.writes(), Some(Reg::V(0)));

        let st = Inst::new(Op::Vstore {
            src: Reg::V(3),
            base: Reg::R(4),
            disp: 64,
        });
        assert_eq!(st.reads(), vec![Reg::V(3), Reg::R(4)]);
        assert_eq!(st.writes(), None);
    }

    #[test]
    fn flop_accounting() {
        let fma = Inst::new(Op::Vfmadd {
            dst: Reg::V(0),
            a: Reg::V(1),
            b: Reg::V(2),
            acc: Reg::V(0),
        });
        assert_eq!(fma.flops(), 8);
        assert!(fma.is_flop());
        let ld = Inst::new(Op::Vload {
            dst: Reg::V(0),
            base: Reg::R(1),
            disp: 0,
        });
        assert_eq!(ld.flops(), 0);
    }

    #[test]
    fn display_is_readable() {
        let fma = Inst::new(Op::Vfmadd {
            dst: Reg::V(0),
            a: Reg::V(1),
            b: Reg::V(2),
            acc: Reg::V(0),
        });
        assert_eq!(format!("{fma}"), "vfmad v0, v1, v2, v0");
    }
}
