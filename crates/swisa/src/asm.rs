//! Textual assembly for the CPE kernel subset.
//!
//! The original swDNN ships its inner kernels as hand-written `.asm` files
//! (the paper's reference \[16\] points at `swDNN/tree/master/src/asm`).
//! This module provides the equivalent round-trippable text format so
//! kernels can be dumped for inspection, diffed against schedules, and
//! read back:
//!
//! ```text
//! vldde  v4, 0(r1)
//! vload  v0, 0(r0)
//! vfmad  v16, v0, v4, v16
//! cmp    r3, r0, r2
//! bnw    r3, taken
//! ```
//!
//! The printer/parser pair is proven inverse by a property test over
//! generated kernels.

use crate::inst::{Inst, Op, Reg};
use std::fmt::Write as _;

/// Pretty-print a program, one instruction per line, with stage comments
/// when `annotate_stages` is set.
pub fn print_program(prog: &[Inst], annotate_stages: bool) -> String {
    let mut out = String::new();
    for inst in prog {
        if annotate_stages {
            let _ = writeln!(out, "{:<40} # stage {}", format_inst(inst), inst.stage);
        } else {
            let _ = writeln!(out, "{}", format_inst(inst));
        }
    }
    out
}

fn reg(r: Reg) -> String {
    match r {
        Reg::V(i) => format!("v{i}"),
        Reg::R(i) => format!("r{i}"),
    }
}

/// One instruction in canonical text form.
pub fn format_inst(inst: &Inst) -> String {
    match inst.op {
        Op::Vload { dst, base, disp } => format!("vload  {}, {}({})", reg(dst), disp, reg(base)),
        Op::Vldde { dst, base, disp } => format!("vldde  {}, {}({})", reg(dst), disp, reg(base)),
        Op::Vstore { src, base, disp } => format!("vstore {}, {}({})", reg(src), disp, reg(base)),
        Op::Vfmadd { dst, a, b, acc } => {
            format!("vfmad  {}, {}, {}, {}", reg(dst), reg(a), reg(b), reg(acc))
        }
        Op::Vaddd { dst, a, b } => format!("vaddd  {}, {}, {}", reg(dst), reg(a), reg(b)),
        Op::Vldr { dst, base, disp } => format!("vldr   {}, {}({})", reg(dst), disp, reg(base)),
        Op::Vldc { dst, base, disp } => format!("vldc   {}, {}({})", reg(dst), disp, reg(base)),
        Op::Putr { src } => format!("putr   {}", reg(src)),
        Op::Putc { src } => format!("putc   {}", reg(src)),
        Op::Getr { dst } => format!("getr   {}", reg(dst)),
        Op::Getc { dst } => format!("getc   {}", reg(dst)),
        Op::Addi { dst, src, imm } => format!("addi   {}, {}, {}", reg(dst), reg(src), imm),
        Op::Cmp { dst, a, b } => format!("cmp    {}, {}, {}", reg(dst), reg(a), reg(b)),
        Op::Branch { cond, taken } => {
            format!(
                "bnw    {}, {}",
                reg(cond),
                if taken { "taken" } else { "fall" }
            )
        }
        Op::Nop => "nop".to_string(),
    }
}

/// Parse errors carry the offending line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsmError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "asm line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, AsmError> {
    let err = || AsmError {
        line,
        message: format!("bad register '{tok}'"),
    };
    let (kind, num) = tok.split_at(1);
    let n: u8 = num.parse().map_err(|_| err())?;
    if n >= 32 {
        return Err(err());
    }
    match kind {
        "v" => Ok(Reg::V(n)),
        "r" => Ok(Reg::R(n)),
        _ => Err(err()),
    }
}

/// Parse `disp(base)`.
fn parse_mem(tok: &str, line: usize) -> Result<(Reg, i32), AsmError> {
    let err = || AsmError {
        line,
        message: format!("bad memory operand '{tok}'"),
    };
    let open = tok.find('(').ok_or_else(err)?;
    if !tok.ends_with(')') {
        return Err(err());
    }
    let disp: i32 = tok[..open].parse().map_err(|_| err())?;
    let base = parse_reg(&tok[open + 1..tok.len() - 1], line)?;
    Ok((base, disp))
}

/// Parse a whole program. Blank lines and `#` comments are skipped; stage
/// annotations (`# stage N`) are restored when present.
pub fn parse_program(text: &str) -> Result<Vec<Inst>, AsmError> {
    let mut prog = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        // Extract a stage annotation before stripping the comment.
        let stage = raw
            .split('#')
            .nth(1)
            .and_then(|c| c.trim().strip_prefix("stage "))
            .and_then(|s| s.trim().parse::<u8>().ok())
            .unwrap_or(0);
        let code = raw.split('#').next().unwrap_or("").trim();
        if code.is_empty() {
            continue;
        }
        let (mnemonic, rest) = code.split_once(char::is_whitespace).unwrap_or((code, ""));
        let ops: Vec<&str> = rest
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        let argc = |n: usize| -> Result<(), AsmError> {
            if ops.len() == n {
                Ok(())
            } else {
                Err(AsmError {
                    line,
                    message: format!("{mnemonic} expects {n} operands, got {}", ops.len()),
                })
            }
        };
        let op = match mnemonic {
            "vload" | "vldde" | "vldr" | "vldc" => {
                argc(2)?;
                let dst = parse_reg(ops[0], line)?;
                let (base, disp) = parse_mem(ops[1], line)?;
                match mnemonic {
                    "vload" => Op::Vload { dst, base, disp },
                    "vldde" => Op::Vldde { dst, base, disp },
                    "vldr" => Op::Vldr { dst, base, disp },
                    _ => Op::Vldc { dst, base, disp },
                }
            }
            "vstore" => {
                argc(2)?;
                let src = parse_reg(ops[0], line)?;
                let (base, disp) = parse_mem(ops[1], line)?;
                Op::Vstore { src, base, disp }
            }
            "vfmad" => {
                argc(4)?;
                Op::Vfmadd {
                    dst: parse_reg(ops[0], line)?,
                    a: parse_reg(ops[1], line)?,
                    b: parse_reg(ops[2], line)?,
                    acc: parse_reg(ops[3], line)?,
                }
            }
            "vaddd" => {
                argc(3)?;
                Op::Vaddd {
                    dst: parse_reg(ops[0], line)?,
                    a: parse_reg(ops[1], line)?,
                    b: parse_reg(ops[2], line)?,
                }
            }
            "putr" | "putc" => {
                argc(1)?;
                let src = parse_reg(ops[0], line)?;
                if mnemonic == "putr" {
                    Op::Putr { src }
                } else {
                    Op::Putc { src }
                }
            }
            "getr" | "getc" => {
                argc(1)?;
                let dst = parse_reg(ops[0], line)?;
                if mnemonic == "getr" {
                    Op::Getr { dst }
                } else {
                    Op::Getc { dst }
                }
            }
            "addi" => {
                argc(3)?;
                Op::Addi {
                    dst: parse_reg(ops[0], line)?,
                    src: parse_reg(ops[1], line)?,
                    imm: ops[2].parse().map_err(|_| AsmError {
                        line,
                        message: format!("bad immediate '{}'", ops[2]),
                    })?,
                }
            }
            "cmp" => {
                argc(3)?;
                Op::Cmp {
                    dst: parse_reg(ops[0], line)?,
                    a: parse_reg(ops[1], line)?,
                    b: parse_reg(ops[2], line)?,
                }
            }
            "bnw" => {
                argc(2)?;
                let cond = parse_reg(ops[0], line)?;
                let taken = match ops[1] {
                    "taken" => true,
                    "fall" => false,
                    other => {
                        return Err(AsmError {
                            line,
                            message: format!("bnw direction must be taken/fall, got '{other}'"),
                        })
                    }
                };
                Op::Branch { cond, taken }
            }
            "nop" => {
                argc(0)?;
                Op::Nop
            }
            other => {
                return Err(AsmError {
                    line,
                    message: format!("unknown mnemonic '{other}'"),
                })
            }
        };
        prog.push(Inst::staged(op, stage));
    }
    Ok(prog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{naive_gemm_kernel, reordered_gemm_kernel, KernelSpec};

    #[test]
    fn kernel_round_trips_through_text() {
        for n in [1, 2, 8] {
            for prog in [
                naive_gemm_kernel(KernelSpec::new(n)),
                reordered_gemm_kernel(KernelSpec::new(n)),
            ] {
                let text = print_program(&prog, true);
                let back = parse_program(&text).expect("parse");
                assert_eq!(back, prog, "n={n}");
            }
        }
    }

    #[test]
    fn round_trip_without_stage_annotations_loses_only_stages() {
        let prog = reordered_gemm_kernel(KernelSpec::new(2));
        let text = print_program(&prog, false);
        let back = parse_program(&text).unwrap();
        assert_eq!(back.len(), prog.len());
        for (a, b) in back.iter().zip(&prog) {
            assert_eq!(a.op, b.op);
        }
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "\n# header comment\nnop\n\n  vload v1, 32(r0)  # trailing\n";
        let prog = parse_program(text).unwrap();
        assert_eq!(prog.len(), 2);
        assert_eq!(format_inst(&prog[1]), "vload  v1, 32(r0)");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_program("nop\nbogus v1").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("bogus"));

        let err = parse_program("vload v99, 0(r0)").unwrap_err();
        assert!(err.message.contains("bad register"));

        let err = parse_program("vfmad v0, v1").unwrap_err();
        assert!(err.message.contains("expects 4 operands"));

        let err = parse_program("bnw r3, sideways").unwrap_err();
        assert!(err.message.contains("taken/fall"));
    }

    #[test]
    fn negative_displacements_parse() {
        let prog = parse_program("vstore v2, -64(r5)").unwrap();
        assert_eq!(
            prog[0].op,
            crate::inst::Op::Vstore {
                src: Reg::V(2),
                base: Reg::R(5),
                disp: -64
            }
        );
    }
}
