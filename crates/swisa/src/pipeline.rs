//! Cycle-accurate model of the CPE's dual-issue front end (§VI-A).
//!
//! The model is *issue-centric*: the decoder looks at the two instructions
//! at the head of the in-order queue each cycle and issues
//!
//! * the first, if its source operands are ready and no in-flight write to
//!   its destination is pending (RAW / WAW against in-flight instructions),
//! * additionally the second, if it maps to the *other* pipeline, has no
//!   RAW/WAW hazard against the first, and its own operands are ready.
//!
//! Operands are captured at issue, so WAR hazards never stall (this matches
//! reservation-station-free in-order designs where the register file is read
//! in the same cycle as issue). Both pipelines are fully pipelined — one
//! instruction may enter each per cycle regardless of latency.
//!
//! A taken branch inserts a one-cycle fetch bubble. Total `cycles` is the
//! issue slot of the last instruction plus one (plus a final bubble if the
//! last instruction is a taken branch) — the same counting the paper uses
//! when it reports "26 cycles per iteration".

use crate::inst::{Inst, Op, Pipe, PipeClass, Reg};
use std::collections::HashMap;

/// Instruction latencies in cycles (producer → consumer).
///
/// Defaults follow §VI-B: loads (and the load-like register-communication
/// `get`s) take 4 cycles, `vfmadd` takes 7, everything else is single-cycle.
#[derive(Clone, Copy, Debug)]
pub struct LatencyTable {
    pub load: u64,
    pub fma: u64,
    pub int_op: u64,
    pub store: u64,
    pub put: u64,
    pub get: u64,
}

impl Default for LatencyTable {
    fn default() -> Self {
        Self {
            load: 4,
            fma: 7,
            int_op: 1,
            store: 1,
            put: 1,
            get: 4,
        }
    }
}

impl LatencyTable {
    /// Latency of `inst`'s result (cycles until a consumer may issue).
    pub fn of(&self, inst: &Inst) -> u64 {
        match inst.op {
            Op::Vload { .. } | Op::Vldde { .. } | Op::Vldr { .. } | Op::Vldc { .. } => self.load,
            Op::Getr { .. } | Op::Getc { .. } => self.get,
            Op::Vfmadd { .. } | Op::Vaddd { .. } => self.fma,
            Op::Vstore { .. } => self.store,
            Op::Putr { .. } | Op::Putc { .. } => self.put,
            Op::Addi { .. } | Op::Cmp { .. } | Op::Nop => self.int_op,
            Op::Branch { .. } => self.int_op,
        }
    }
}

/// Result of simulating one instruction stream on one CPE.
#[derive(Clone, Debug)]
pub struct ExecReport {
    /// Total issue cycles consumed (see module docs for the convention).
    pub cycles: u64,
    /// Number of instructions issued to P0 / P1.
    pub p0_issued: u64,
    pub p1_issued: u64,
    /// Cycles in which two instructions issued together.
    pub dual_issues: u64,
    /// Cycles in which nothing issued (operand stalls + branch bubbles).
    pub stall_cycles: u64,
    /// Double-precision flops performed by the stream.
    pub flops: u64,
    /// LDM bytes read by the stream (Eq. 5 accounting: `vldde` counts as
    /// 32 bytes of register-file fill — see [`Inst::ldm_load_bytes`]).
    pub ldm_load_bytes: u64,
    /// LDM bytes written by the stream (vector stores).
    pub ldm_store_bytes: u64,
    /// Per-instruction issue cycle and pipe, in program order.
    pub issue_trace: Vec<(u64, Pipe)>,
}

impl ExecReport {
    /// Execution efficiency: fraction of cycles P0 spends on floating-point
    /// work — the paper's `EE` (e.g. 16/26 = 61.5% for the naive kernel).
    pub fn execution_efficiency(&self, flop_insts: u64) -> f64 {
        flop_insts as f64 / self.cycles as f64
    }

    /// Achieved fraction of the CPE's peak FP throughput
    /// (peak = 8 flops/cycle: one 4-lane FMA per cycle).
    pub fn fp_utilization(&self) -> f64 {
        self.flops as f64 / (8.0 * self.cycles as f64)
    }
}

impl ExecReport {
    /// Render a Fig. 6-style annotated listing: one line per instruction
    /// with its issue cycle and pipeline. Dual-issued pairs share a cycle.
    pub fn annotate(&self, program: &[crate::inst::Inst]) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "cycle  pipe  instruction");
        let mut prev_cycle = None;
        for (inst, &(cycle, pipe)) in program.iter().zip(&self.issue_trace) {
            let cyc = if prev_cycle == Some(cycle) {
                "    .".to_string()
            } else {
                format!("{cycle:>5}")
            };
            prev_cycle = Some(cycle);
            let _ = writeln!(
                out,
                "{cyc}    {}  {}",
                match pipe {
                    Pipe::P0 => "P0",
                    Pipe::P1 => "P1",
                },
                crate::asm::format_inst(inst)
            );
        }
        let _ = writeln!(
            out,
            "total {} cycles, {} dual-issues, {} stalls",
            self.cycles, self.dual_issues, self.stall_cycles
        );
        out
    }
}

/// The dual-pipeline issue simulator.
#[derive(Clone, Debug, Default)]
pub struct DualPipe {
    pub latency: LatencyTable,
}

impl DualPipe {
    pub fn new(latency: LatencyTable) -> Self {
        Self { latency }
    }

    /// Simulate `program` to completion and report timing.
    pub fn run(&self, program: &[Inst]) -> ExecReport {
        let mut ready: HashMap<Reg, u64> = HashMap::new();
        let mut cycle: u64 = 0;
        let mut idx = 0usize;
        let mut p0 = 0u64;
        let mut p1 = 0u64;
        let mut dual = 0u64;
        let mut stalls = 0u64;
        let mut flops = 0u64;
        let mut ldm_loads = 0u64;
        let mut ldm_stores = 0u64;
        let mut trace = Vec::with_capacity(program.len());

        while idx < program.len() {
            let first = &program[idx];
            if !self.can_issue(first, &ready, cycle) {
                stalls += 1;
                cycle += 1;
                continue;
            }
            // Choose the first instruction's pipe, peeking at the second to
            // maximize pairing for `Either`-class instructions.
            let second = program.get(idx + 1);
            let first_pipe = match first.pipe_class() {
                PipeClass::P0Only => Pipe::P0,
                PipeClass::P1Only => Pipe::P1,
                PipeClass::Either => match second.map(Inst::pipe_class) {
                    Some(PipeClass::P0Only) => Pipe::P1,
                    Some(PipeClass::P1Only) => Pipe::P0,
                    _ => Pipe::P1,
                },
            };
            self.commit(first, &mut ready, cycle);
            trace.push((cycle, first_pipe));
            match first_pipe {
                Pipe::P0 => p0 += 1,
                Pipe::P1 => p1 += 1,
            }
            flops += first.flops();
            ldm_loads += first.ldm_load_bytes();
            ldm_stores += first.ldm_store_bytes();
            let mut advanced = 1usize;
            let mut branch_taken = matches!(first.op, Op::Branch { taken: true, .. });

            // Dual-issue attempt: the branch occupies the rest of the fetch
            // group, so nothing pairs *after* a branch.
            if !first.is_branch() {
                if let Some(snd) = second {
                    let other = match first_pipe {
                        Pipe::P0 => Pipe::P1,
                        Pipe::P1 => Pipe::P0,
                    };
                    let compatible = match snd.pipe_class() {
                        PipeClass::P0Only => other == Pipe::P0,
                        PipeClass::P1Only => other == Pipe::P1,
                        PipeClass::Either => true,
                    };
                    if compatible
                        && !Self::pair_hazard(first, snd)
                        && self.can_issue(snd, &ready, cycle)
                    {
                        self.commit(snd, &mut ready, cycle);
                        trace.push((cycle, other));
                        match other {
                            Pipe::P0 => p0 += 1,
                            Pipe::P1 => p1 += 1,
                        }
                        flops += snd.flops();
                        ldm_loads += snd.ldm_load_bytes();
                        ldm_stores += snd.ldm_store_bytes();
                        dual += 1;
                        advanced = 2;
                        branch_taken |= matches!(snd.op, Op::Branch { taken: true, .. });
                    }
                }
            }

            idx += advanced;
            cycle += 1;
            if branch_taken {
                stalls += 1;
                cycle += 1; // fetch bubble
            }
        }

        ExecReport {
            cycles: cycle,
            p0_issued: p0,
            p1_issued: p1,
            dual_issues: dual,
            stall_cycles: stalls,
            flops,
            ldm_load_bytes: ldm_loads,
            ldm_store_bytes: ldm_stores,
            issue_trace: trace,
        }
    }

    /// RAW and WAW between two candidates for the same issue cycle.
    fn pair_hazard(first: &Inst, second: &Inst) -> bool {
        if let Some(w) = first.writes() {
            if second.reads().contains(&w) {
                return true; // RAW within the pair
            }
            if second.writes() == Some(w) {
                return true; // WAW within the pair
            }
        }
        false
    }

    fn can_issue(&self, inst: &Inst, ready: &HashMap<Reg, u64>, cycle: u64) -> bool {
        // Sources ready?
        for r in inst.reads() {
            if ready.get(&r).copied().unwrap_or(0) > cycle {
                return false;
            }
        }
        // No pending in-flight write to the same destination (WAW).
        if let Some(w) = inst.writes() {
            if ready.get(&w).copied().unwrap_or(0) > cycle {
                return false;
            }
        }
        true
    }

    fn commit(&self, inst: &Inst, ready: &mut HashMap<Reg, u64>, cycle: u64) {
        if let Some(w) = inst.writes() {
            ready.insert(w, cycle + self.latency.of(inst));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Inst, Op, Reg};

    fn vload(dst: u8, base: u8, disp: i32) -> Inst {
        Inst::new(Op::Vload {
            dst: Reg::V(dst),
            base: Reg::R(base),
            disp,
        })
    }
    fn vfmadd(dst: u8, a: u8, b: u8) -> Inst {
        Inst::new(Op::Vfmadd {
            dst: Reg::V(dst),
            a: Reg::V(a),
            b: Reg::V(b),
            acc: Reg::V(dst),
        })
    }

    #[test]
    fn independent_ops_on_different_pipes_dual_issue() {
        // load (P1) + fma (P0), no hazards -> 1 cycle.
        let prog = [vload(0, 0, 0), vfmadd(8, 1, 2)];
        let rep = DualPipe::default().run(&prog);
        assert_eq!(rep.cycles, 1);
        assert_eq!(rep.dual_issues, 1);
    }

    #[test]
    fn same_pipe_serializes() {
        let prog = [vload(0, 0, 0), vload(1, 0, 32)];
        let rep = DualPipe::default().run(&prog);
        assert_eq!(rep.cycles, 2);
        assert_eq!(rep.dual_issues, 0);
    }

    #[test]
    fn raw_within_pair_blocks_dual_issue() {
        // fma reads v0 which the load writes.
        let prog = [vload(0, 0, 0), vfmadd(8, 0, 2)];
        let rep = DualPipe::default().run(&prog);
        // load at 0; fma waits for v0 ready at 4 -> issues at 4 -> 5 cycles.
        assert_eq!(rep.cycles, 5);
        assert_eq!(rep.stall_cycles, 3);
    }

    #[test]
    fn load_use_latency_is_four() {
        let prog = [vload(0, 0, 0), Inst::new(Op::Nop), vfmadd(8, 0, 2)];
        let rep = DualPipe::default().run(&prog);
        // load@0 (nop pairs @0), fma must wait until cycle 4.
        assert_eq!(rep.cycles, 5);
    }

    #[test]
    fn fma_chain_respects_seven_cycle_latency() {
        // acc chain: each fma reads the previous result.
        let prog = [vfmadd(0, 1, 2), vfmadd(0, 1, 2), vfmadd(0, 1, 2)];
        let rep = DualPipe::default().run(&prog);
        // issues at 0, 7, 14 -> 15 cycles.
        assert_eq!(rep.cycles, 15);
    }

    #[test]
    fn independent_fmas_fully_pipeline() {
        let prog: Vec<Inst> = (0..8).map(|i| vfmadd(i, 20, 21)).collect();
        let rep = DualPipe::default().run(&prog);
        assert_eq!(rep.cycles, 8);
        assert_eq!(rep.flops, 64);
    }

    #[test]
    fn taken_branch_inserts_bubble() {
        let prog = [
            Inst::new(Op::Cmp {
                dst: Reg::R(2),
                a: Reg::R(0),
                b: Reg::R(1),
            }),
            Inst::new(Op::Branch {
                cond: Reg::R(2),
                taken: true,
            }),
            Inst::new(Op::Nop),
        ];
        let rep = DualPipe::default().run(&prog);
        // cmp@0 (branch cannot pair: RAW on r2), branch@1, bubble@2, nop@3.
        assert_eq!(rep.cycles, 4);
    }

    #[test]
    fn fall_through_branch_has_no_bubble() {
        let prog = [
            Inst::new(Op::Branch {
                cond: Reg::R(2),
                taken: false,
            }),
            Inst::new(Op::Nop),
        ];
        let rep = DualPipe::default().run(&prog);
        assert_eq!(rep.cycles, 2);
    }

    #[test]
    fn nothing_pairs_after_a_branch() {
        let prog = [
            Inst::new(Op::Branch {
                cond: Reg::R(2),
                taken: false,
            }),
            vfmadd(0, 1, 2),
        ];
        let rep = DualPipe::default().run(&prog);
        assert_eq!(rep.dual_issues, 0);
        assert_eq!(rep.cycles, 2);
    }

    #[test]
    fn either_class_takes_the_free_pipe() {
        // addi should go to P0 so the following load can... actually pairing
        // is with the *next* instruction: [addi, vload] -> addi->P0, vload->P1.
        let prog = [
            Inst::new(Op::Addi {
                dst: Reg::R(5),
                src: Reg::R(5),
                imm: 32,
            }),
            vload(0, 0, 0),
        ];
        let rep = DualPipe::default().run(&prog);
        assert_eq!(rep.cycles, 1);
        assert_eq!(rep.dual_issues, 1);
    }

    #[test]
    fn waw_stalls_until_first_write_completes() {
        // Two loads into the same register.
        let prog = [vload(0, 0, 0), vload(0, 0, 32)];
        let rep = DualPipe::default().run(&prog);
        // first@0 ready at 4; second can issue at 4 -> total 5.
        assert_eq!(rep.cycles, 5);
    }

    #[test]
    fn annotated_listing_shows_cycles_and_pipes() {
        let prog = [vload(0, 0, 0), vfmadd(8, 1, 2), vfmadd(9, 1, 2)];
        let rep = DualPipe::default().run(&prog);
        let text = rep.annotate(&prog);
        assert!(text.contains("P1  vload"));
        assert!(text.contains("P0  vfmad"));
        // The dual-issued partner shares its cycle (rendered as '.').
        assert!(text.contains("    ."), "{text}");
        assert!(text.contains("total"));
    }

    #[test]
    fn ldm_traffic_accounting_follows_eq5() {
        let prog = [
            vload(0, 0, 0), // 32 B load
            Inst::new(Op::Vldde {
                dst: Reg::V(1),
                base: Reg::R(1),
                disp: 0,
            }), // 32 B bandwidth-equivalent (8 B replicated x4)
            vfmadd(8, 0, 1), // no LDM traffic
            Inst::new(Op::Vstore {
                src: Reg::V(8),
                base: Reg::R(2),
                disp: 0,
            }), // 32 B store
            Inst::new(Op::Getr { dst: Reg::V(9) }), // bus, not LDM
        ];
        let rep = DualPipe::default().run(&prog);
        assert_eq!(rep.ldm_load_bytes, 64);
        assert_eq!(rep.ldm_store_bytes, 32);
    }

    #[test]
    fn report_counts_are_consistent() {
        let prog = [vload(0, 0, 0), vfmadd(8, 1, 2), vfmadd(9, 1, 2)];
        let rep = DualPipe::default().run(&prog);
        assert_eq!(rep.p0_issued + rep.p1_issued, prog.len() as u64);
        assert_eq!(rep.issue_trace.len(), prog.len());
        // trace is in program order with non-decreasing cycles
        assert!(rep.issue_trace.windows(2).all(|w| w[0].0 <= w[1].0));
    }
}
