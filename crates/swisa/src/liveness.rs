//! Register liveness and pressure analysis.
//!
//! The CPE has 32 vector and 32 scalar registers; §VI-B notes that the
//! final kernel applies "register package (packing 4 long or 8 int into
//! vector structure) to innermost loop to reduce required register
//! number". This module computes, for a straight-line program, the set of
//! live registers at every point and the peak pressure per register file —
//! the check that a schedule is actually encodable.
//!
//! Liveness here is the standard backward dataflow on straight-line code:
//! a register is live at a point if some later instruction reads it before
//! any later instruction overwrites it. Registers read before any write in
//! the block are treated as live-in (e.g. base pointers); accumulators
//! written by `vfmadd dst==acc` count as read-then-write.

use crate::inst::{Inst, Reg};
use std::collections::HashSet;

/// Result of a liveness scan.
#[derive(Clone, Debug)]
pub struct PressureReport {
    /// Peak simultaneously-live vector registers.
    pub peak_vector: usize,
    /// Peak simultaneously-live scalar registers.
    pub peak_scalar: usize,
    /// Registers live on entry (consumed before produced).
    pub live_in: Vec<Reg>,
    /// Index of the instruction at which vector pressure peaks.
    pub peak_at: usize,
}

impl PressureReport {
    /// Does the program fit the CPE's register files?
    pub fn fits(&self, vector_regs: usize, scalar_regs: usize) -> bool {
        self.peak_vector <= vector_regs && self.peak_scalar <= scalar_regs
    }
}

/// Compute liveness and peak pressure for `prog`.
pub fn analyze(prog: &[Inst]) -> PressureReport {
    // Backward scan: live set after the last instruction is empty (values
    // dying at block end; callers wanting live-out semantics can append
    // artificial readers).
    let mut live: HashSet<Reg> = HashSet::new();
    let mut peak_vector = 0usize;
    let mut peak_scalar = 0usize;
    let mut peak_at = 0usize;
    // live_before[i] computed from live_after[i].
    for (i, inst) in prog.iter().enumerate().rev() {
        if let Some(w) = inst.writes() {
            live.remove(&w);
        }
        for r in inst.reads() {
            live.insert(r);
        }
        let v = live.iter().filter(|r| r.is_vector()).count();
        let s = live.len() - v;
        if v > peak_vector {
            peak_vector = v;
            peak_at = i;
        }
        peak_scalar = peak_scalar.max(s);
    }
    let mut live_in: Vec<Reg> = live.into_iter().collect();
    live_in.sort();
    PressureReport {
        peak_vector,
        peak_scalar,
        live_in,
        peak_at,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Op;
    use crate::kernels::{
        naive_gemm_kernel, regcomm_consumer_kernel, reordered_gemm_kernel, KernelSpec,
    };

    fn vload(dst: u8, base: u8) -> Inst {
        Inst::new(Op::Vload {
            dst: Reg::V(dst),
            base: Reg::R(base),
            disp: 0,
        })
    }
    fn fma(dst: u8, a: u8, b: u8) -> Inst {
        Inst::new(Op::Vfmadd {
            dst: Reg::V(dst),
            a: Reg::V(a),
            b: Reg::V(b),
            acc: Reg::V(dst),
        })
    }

    #[test]
    fn straight_line_pressure() {
        // Two loads live simultaneously, consumed by one fma.
        let prog = [vload(0, 0), vload(1, 0), fma(2, 0, 1)];
        let rep = analyze(&prog);
        // At the fma, v0, v1 and the accumulator v2 are live-before.
        assert_eq!(rep.peak_vector, 3);
        assert!(rep.live_in.contains(&Reg::R(0)), "base pointer is live-in");
        assert!(
            rep.live_in.contains(&Reg::V(2)),
            "accumulator is read before written"
        );
    }

    #[test]
    fn dead_values_do_not_count() {
        // v0 is overwritten before use: only one of the loads is live.
        let prog = [vload(0, 0), vload(0, 0), fma(1, 0, 0)];
        let rep = analyze(&prog);
        assert_eq!(rep.peak_vector, 2, "v0 + accumulator v1");
    }

    #[test]
    fn paper_kernels_fit_the_register_file() {
        // 16 accumulators + two ping-pong operand sets = 32 vector regs;
        // every generated kernel must be encodable.
        for n in [1usize, 2, 8, 48] {
            for prog in [
                naive_gemm_kernel(KernelSpec::new(n)),
                reordered_gemm_kernel(KernelSpec::new(n)),
                regcomm_consumer_kernel(KernelSpec::new(n)),
            ] {
                let rep = analyze(&prog);
                assert!(
                    rep.fits(32, 32),
                    "n={n}: peak {} vector regs at inst {}",
                    rep.peak_vector,
                    rep.peak_at
                );
            }
        }
    }

    #[test]
    fn reordered_kernel_uses_more_registers_than_naive() {
        // The §VI-B software pipeline pays register pressure (ping-pong
        // operand sets) for its 17-cycle steady state.
        let n = 8;
        let naive = analyze(&naive_gemm_kernel(KernelSpec::new(n)));
        let reord = analyze(&reordered_gemm_kernel(KernelSpec::new(n)));
        assert!(reord.peak_vector > naive.peak_vector);
        assert!(reord.peak_vector <= 32);
    }

    #[test]
    fn accumulators_are_live_across_the_whole_loop() {
        let rep = analyze(&reordered_gemm_kernel(KernelSpec::new(4)));
        // All 16 accumulators are live-in (read by the first FMAs before
        // any write in this unrolled trace).
        let acc_live_in = rep
            .live_in
            .iter()
            .filter(|r| matches!(r, Reg::V(v) if *v >= 16))
            .count();
        assert_eq!(acc_live_in, 16);
    }
}
