//! Generators for the swDNN GEMM inner kernel (Fig. 6).
//!
//! The inner kernel of both convolution plans is a register-blocked GEMM
//! update `C[4][4] += A[4] ⊗ B[4]` over 256-bit vectors, iterated `Ni/8`
//! times (§VI-B): per iteration it loads 4 vectors of image data (`A`,
//! `rb_B = 16` batch elements) and 4 replicated filter elements (`B`,
//! `rb_No = 4`), then performs 16 `vfmadd`s into 16 vector accumulators —
//! 64 output values live in registers across the whole loop.
//!
//! Two forms are generated:
//!
//! * [`naive_gemm_kernel`] — the compiler-like flow of Fig. 6 (left): all 8
//!   loads, then the 16 `vfmadd`s, then `cmp` + `bnw`. Simulated cost:
//!   **26 cycles per iteration** (8 serialized P1 loads, 16 serialized P0
//!   FMAs gated by load latency, the `cmp` pairs with the last FMA, the
//!   taken branch adds its bubble).
//! * [`reordered_gemm_kernel`] — the hand-scheduled flow of Fig. 6 (right):
//!   a 5-cycle initial section, software-pipelined iterations in which next
//!   iteration's loads pair with this iteration's FMAs (**17 cycles per
//!   iteration** — 16 FMA issue slots + 1 branch bubble), and a 16-cycle
//!   exit section. Register sets for `A`/`B` are double-buffered (ping-pong)
//!   across iterations, which is the "register package" trick the paper
//!   applies to avoid WAR conflicts.

use crate::inst::{Inst, Op, Reg};

/// Register allocation and shape of the inner GEMM kernel.
#[derive(Clone, Copy, Debug)]
pub struct KernelSpec {
    /// Number of reduction iterations (`Ni/8` in the paper).
    pub iterations: usize,
}

impl KernelSpec {
    pub fn new(iterations: usize) -> Self {
        assert!(iterations >= 1, "kernel needs at least one iteration");
        Self { iterations }
    }

    /// Flop-bearing instructions per full kernel (16 FMAs per iteration).
    pub fn fma_count(&self) -> u64 {
        16 * self.iterations as u64
    }

    /// Double-precision flops (each 4-lane FMA = 8 flops).
    pub fn flops(&self) -> u64 {
        8 * self.fma_count()
    }
}

// Register map:
//   A (image vectors):   set 0 -> v0..v3,  set 1 -> v8..v11
//   B (filter vectors):  set 0 -> v4..v7,  set 1 -> v12..v15
//   C (accumulators):    v16..v31
//   r0 = A base pointer, r1 = B base pointer, r2 = loop bound, r3 = predicate
fn a_reg(set: usize, i: usize) -> Reg {
    Reg::V((if set == 0 { 0 } else { 8 } + i) as u8)
}
fn b_reg(set: usize, j: usize) -> Reg {
    Reg::V((if set == 0 { 4 } else { 12 } + j) as u8)
}
fn c_reg(i: usize, j: usize) -> Reg {
    Reg::V((16 + 4 * j + i) as u8)
}

fn ld_a(set: usize, i: usize, iter: usize) -> Inst {
    Inst::staged(
        Op::Vload {
            dst: a_reg(set, i),
            base: Reg::R(0),
            disp: (iter * 128 + i * 32) as i32,
        },
        0,
    )
}
fn ld_b(set: usize, j: usize, iter: usize) -> Inst {
    Inst::staged(
        Op::Vldde {
            dst: b_reg(set, j),
            base: Reg::R(1),
            disp: (iter * 32 + j * 8) as i32,
        },
        0,
    )
}
fn fma(set: usize, i: usize, j: usize) -> Inst {
    Inst::staged(
        Op::Vfmadd {
            dst: c_reg(i, j),
            a: a_reg(set, i),
            b: b_reg(set, j),
            acc: c_reg(i, j),
        },
        1,
    )
}
fn cmp() -> Inst {
    Inst::staged(
        Op::Cmp {
            dst: Reg::R(3),
            a: Reg::R(0),
            b: Reg::R(2),
        },
        1,
    )
}
fn bnw(taken: bool) -> Inst {
    Inst::staged(
        Op::Branch {
            cond: Reg::R(3),
            taken,
        },
        1,
    )
}

/// The unoptimized (compiler-like) kernel: per iteration
/// `8 loads; 16 vfmadd; cmp; bnw` in program order, one register set.
///
/// FMAs are emitted row-major (`(i, 0..3)` for each `i`), the order a
/// straightforward unrolled C loop produces.
pub fn naive_gemm_kernel(spec: KernelSpec) -> Vec<Inst> {
    let n = spec.iterations;
    let mut prog = Vec::with_capacity(26 * n);
    for k in 0..n {
        for i in 0..4 {
            prog.push(ld_a(0, i, k));
        }
        for j in 0..4 {
            prog.push(ld_b(0, j, k));
        }
        for i in 0..4 {
            for j in 0..4 {
                prog.push(fma(0, i, j));
            }
        }
        prog.push(cmp());
        prog.push(bnw(k + 1 < n));
    }
    prog
}

/// The §VI-B software-pipelined kernel.
///
/// Structure (for `n >= 2` iterations):
///
/// * **initial section** (5 issue cycles): `ldde B0; vload A0..A3` for
///   register set 0;
/// * **iteration 0**: FMAs in column-major order interleaved with the
///   remaining set-0 filter loads (`B1..B3`) and all 8 set-1 loads for
///   iteration 1, then `cmp` + taken `bnw`;
/// * **iterations 1..n-1**: 16 FMAs on set `k%2` interleaved 1:1 with the 8
///   loads of set `(k+1)%2`, `cmp`, taken `bnw`;
/// * **exit section**: the last iteration is FMAs only (16 cycles).
pub fn reordered_gemm_kernel(spec: KernelSpec) -> Vec<Inst> {
    let n = spec.iterations;
    let mut prog = Vec::new();

    // Initial section: first filter element + the 4 image vectors of set 0.
    prog.push(ld_b(0, 0, 0));
    for i in 0..4 {
        prog.push(ld_a(0, i, 0));
    }

    if n == 1 {
        // Degenerate: no steady state; load B1..B3 then drain FMAs.
        for j in 1..4 {
            prog.push(ld_b(0, j, 0));
        }
        push_fmas_column_major(&mut prog, 0, &[]);
        return prog;
    }

    // Iteration 0: own B1..B3 plus all of iteration 1's loads ride on P1.
    {
        let mut p1_ops: Vec<Inst> = Vec::new();
        for j in 1..4 {
            p1_ops.push(ld_b(0, j, 0));
        }
        p1_ops.push(ld_b(1, 0, 1));
        for i in 0..4 {
            p1_ops.push(ld_a(1, i, 1));
        }
        for j in 1..4 {
            p1_ops.push(ld_b(1, j, 1));
        }
        p1_ops.push(cmp());
        push_fmas_column_major(&mut prog, 0, &p1_ops);
        prog.push(bnw(true));
    }

    // Steady-state iterations 1..n-1 (exclusive): compute on set k%2 while
    // loading set (k+1)%2.
    for k in 1..n - 1 {
        let cur = k % 2;
        let nxt = (k + 1) % 2;
        let mut p1_ops: Vec<Inst> = Vec::new();
        p1_ops.push(ld_b(nxt, 0, k + 1));
        for i in 0..4 {
            p1_ops.push(ld_a(nxt, i, k + 1));
        }
        for j in 1..4 {
            p1_ops.push(ld_b(nxt, j, k + 1));
        }
        p1_ops.push(cmp());
        push_fmas_column_major(&mut prog, cur, &p1_ops);
        prog.push(bnw(true));
    }

    // Exit section: the final iteration's FMAs with nothing to hide.
    push_fmas_column_major(&mut prog, (n - 1) % 2, &[]);
    prog
}

/// Emit the 16 FMAs of one iteration in column-major order (`(0..3, j)` for
/// each `j` — delays each `B_j`'s first use as long as possible), pairing
/// one P1 op after each FMA while any remain.
fn push_fmas_column_major(prog: &mut Vec<Inst>, set: usize, p1_ops: &[Inst]) {
    let mut p1 = p1_ops.iter().copied();
    for j in 0..4 {
        for i in 0..4 {
            prog.push(fma(set, i, j));
            if let Some(op) = p1.next() {
                prog.push(op);
            }
        }
    }
    // Any leftovers (cannot happen with <=16 P1 ops, but stay safe).
    prog.extend(p1);
}

/// The register-communication variant of the inner kernel (§V-A + Fig. 5):
/// instead of `vload`ing operands from LDM, the consumer CPE `getr`s the
/// broadcast filter vectors from its row transfer buffer and `getc`s the
/// image vectors from its column transfer buffer (both 4-cycle-latency P1
/// operations, like loads). Senders pay `vldr`/`vldc` (load + broadcast)
/// on their own P1.
///
/// The schedule shape is identical to [`reordered_gemm_kernel`]: 8 P1
/// receives hide under 16 P0 FMAs, so the steady state is the same
/// 17 cycles per iteration — the fact that lets the mesh simulator charge
/// rotation rounds with the ordinary tile-kernel cost.
pub fn regcomm_consumer_kernel(spec: KernelSpec) -> Vec<Inst> {
    let n = spec.iterations;
    let get_a = |set: usize, i: usize| Inst::staged(Op::Getc { dst: a_reg(set, i) }, 0);
    let get_b = |set: usize, j: usize| Inst::staged(Op::Getr { dst: b_reg(set, j) }, 0);

    let mut prog = Vec::new();
    // Initial section, mirroring the DMA-fed kernel.
    prog.push(get_b(0, 0));
    for i in 0..4 {
        prog.push(get_a(0, i));
    }
    if n == 1 {
        for j in 1..4 {
            prog.push(get_b(0, j));
        }
        push_fmas_column_major(&mut prog, 0, &[]);
        return prog;
    }
    {
        let mut p1_ops: Vec<Inst> = Vec::new();
        for j in 1..4 {
            p1_ops.push(get_b(0, j));
        }
        p1_ops.push(get_b(1, 0));
        for i in 0..4 {
            p1_ops.push(get_a(1, i));
        }
        for j in 1..4 {
            p1_ops.push(get_b(1, j));
        }
        p1_ops.push(cmp());
        push_fmas_column_major(&mut prog, 0, &p1_ops);
        prog.push(bnw(true));
    }
    for k in 1..n - 1 {
        let cur = k % 2;
        let nxt = (k + 1) % 2;
        let mut p1_ops: Vec<Inst> = Vec::new();
        p1_ops.push(get_b(nxt, 0));
        for i in 0..4 {
            p1_ops.push(get_a(nxt, i));
        }
        for j in 1..4 {
            p1_ops.push(get_b(nxt, j));
        }
        p1_ops.push(cmp());
        push_fmas_column_major(&mut prog, cur, &p1_ops);
        prog.push(bnw(true));
    }
    push_fmas_column_major(&mut prog, (n - 1) % 2, &[]);
    prog
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::DualPipe;

    #[test]
    fn naive_kernel_instruction_count_matches_paper() {
        // "8vload + 1cmp + 1bnw + 16vmad = 26" per iteration.
        let prog = naive_gemm_kernel(KernelSpec::new(3));
        assert_eq!(prog.len(), 26 * 3);
    }

    #[test]
    fn naive_kernel_is_26_cycles_per_iteration() {
        let pipe = DualPipe::default();
        // Steady-state periodicity: difference between n and n+1 iterations.
        let c8 = pipe.run(&naive_gemm_kernel(KernelSpec::new(8))).cycles;
        let c9 = pipe.run(&naive_gemm_kernel(KernelSpec::new(9))).cycles;
        assert_eq!(c9 - c8, 26, "steady-state naive period");
        // Absolute: last iteration's fall-through branch saves its bubble.
        assert_eq!(c8, 26 * 8 - 1);
    }

    #[test]
    fn reordered_kernel_is_17_cycles_per_iteration() {
        let pipe = DualPipe::default();
        let c8 = pipe.run(&reordered_gemm_kernel(KernelSpec::new(8))).cycles;
        let c9 = pipe.run(&reordered_gemm_kernel(KernelSpec::new(9))).cycles;
        assert_eq!(c9 - c8, 17, "steady-state reordered period");
        // Paper: 5 (init) + 17*(n-1) + 16 (exit) = 17n + 4.
        assert_eq!(c8, 17 * 8 + 4);
    }

    #[test]
    fn reordered_kernel_matches_formula_for_many_n() {
        let pipe = DualPipe::default();
        for n in 2..=48 {
            let rep = pipe.run(&reordered_gemm_kernel(KernelSpec::new(n)));
            assert_eq!(rep.cycles, 17 * n as u64 + 4, "n={n}");
            assert_eq!(rep.flops, KernelSpec::new(n).flops());
        }
    }

    #[test]
    fn both_kernels_do_identical_fma_work() {
        for n in [1, 2, 5, 16] {
            let spec = KernelSpec::new(n);
            let naive: Vec<_> = naive_gemm_kernel(spec)
                .into_iter()
                .filter(Inst::is_flop)
                .collect();
            let reord: Vec<_> = reordered_gemm_kernel(spec)
                .into_iter()
                .filter(Inst::is_flop)
                .collect();
            assert_eq!(naive.len(), reord.len(), "n={n}");
            assert_eq!(naive.len(), 16 * n);
        }
    }

    #[test]
    fn single_iteration_kernel_still_correct() {
        let pipe = DualPipe::default();
        let rep = pipe.run(&reordered_gemm_kernel(KernelSpec::new(1)));
        assert_eq!(rep.flops, 128);
        assert!(rep.cycles >= 16);
    }

    #[test]
    fn regcomm_consumer_kernel_matches_dma_fed_timing() {
        // The bus-fed kernel must sustain the same 17-cycle steady state —
        // the assumption behind pricing mesh GEMM rounds with the ordinary
        // tile-kernel cost.
        let pipe = DualPipe::default();
        for n in [2usize, 8, 16, 48] {
            let dma = pipe.run(&reordered_gemm_kernel(KernelSpec::new(n)));
            let bus = pipe.run(&regcomm_consumer_kernel(KernelSpec::new(n)));
            assert_eq!(bus.cycles, dma.cycles, "n={n}");
            assert_eq!(bus.flops, dma.flops);
        }
    }

    #[test]
    fn regcomm_kernel_uses_only_bus_receives() {
        let prog = regcomm_consumer_kernel(KernelSpec::new(4));
        assert!(prog.iter().all(|i| !matches!(
            i.op,
            crate::inst::Op::Vload { .. } | crate::inst::Op::Vldde { .. }
        )));
        let gets = prog
            .iter()
            .filter(|i| {
                matches!(
                    i.op,
                    crate::inst::Op::Getr { .. } | crate::inst::Op::Getc { .. }
                )
            })
            .count();
        assert_eq!(gets, 8 * 4, "8 receives per iteration");
    }

    #[test]
    fn reordered_dual_issues_heavily() {
        let rep = DualPipe::default().run(&reordered_gemm_kernel(KernelSpec::new(16)));
        let naive = DualPipe::default().run(&naive_gemm_kernel(KernelSpec::new(16)));
        assert!(rep.dual_issues > 8 * 14, "loads should hide under FMAs");
        assert!(
            naive.dual_issues <= 16,
            "naive flow pairs at most cmp per iter"
        );
    }
}
