//! Property tests for the simulator: determinism under pool scheduling,
//! conservation of DMA data, bandwidth-model monotonicity, and LDM
//! allocator invariants.

use proptest::prelude::*;
use sw_perfmodel::dma::DmaDirection;
use sw_perfmodel::ChipSpec;
use sw_sim::{DmaEngine, Ldm, LdmBuf, Mesh};

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn dma_round_trip_preserves_data(len in 1usize..64, seed in 0u64..1000) {
        // Every CPE copies its slice through LDM; the output must equal
        // the input exactly.
        let n = len * 64;
        let src: Vec<f64> = (0..n).map(|i| ((i as u64 ^ seed) % 1000) as f64 * 0.5).collect();
        let mut out = vec![0.0f64; n];
        let mut mesh: Mesh<LdmBuf> =
            Mesh::new(ChipSpec::sw26010(), |_, _| LdmBuf { offset: 0, len: 0 });
        mesh.superstep(|ctx, buf| {
            *buf = ctx.ldm_alloc(len)?;
            let base = ctx.id() * len;
            let h = ctx.dma_get(*buf, 0, &src, base, len)?;
            ctx.dma_wait(h);
            let h = ctx.dma_put(*buf, 0, base, len)?;
            ctx.dma_wait(h);
            Ok(())
        }).unwrap();
        mesh.drain_puts(&mut out).unwrap();
        prop_assert_eq!(out, src);
    }

    #[test]
    fn simulation_timing_is_deterministic(len in 1usize..32, reps in 1usize..4) {
        // Rayon's scheduling must never leak into simulated time.
        let run = || {
            let src = vec![1.0f64; len * 64];
            let mut mesh: Mesh<LdmBuf> =
                Mesh::new(ChipSpec::sw26010(), |_, _| LdmBuf { offset: 0, len: 0 });
            mesh.superstep(|ctx, buf| {
                *buf = ctx.ldm_alloc(len)?;
                Ok(())
            }).unwrap();
            for _ in 0..reps {
                mesh.superstep(|ctx, buf| {
                    let h = ctx.dma_get(*buf, 0, &src, ctx.id() * len, len)?;
                    ctx.dma_wait(h);
                    if ctx.col == 0 {
                        ctx.bcast_row(&[1.0, 2.0, 3.0, 4.0]);
                    }
                    Ok(())
                }).unwrap();
                mesh.superstep(|ctx, _| {
                    if ctx.col != 0 {
                        let _ = ctx.recv_row()?;
                    }
                    Ok(())
                }).unwrap();
            }
            let st = mesh.stats();
            (st.cycles, st.totals)
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.0, b.0);
        prop_assert_eq!(a.1, b.1);
    }

    #[test]
    fn broadcast_reaches_exactly_seven_peers(row in 0usize..8, col in 0usize..8) {
        let mut mesh: Mesh<usize> = Mesh::new(ChipSpec::sw26010(), |_, _| 0);
        mesh.superstep(|ctx, _| {
            if ctx.row == row && ctx.col == col {
                ctx.bcast_row(&[7.0; 4]);
                ctx.bcast_col(&[9.0; 4]);
            }
            Ok(())
        }).unwrap();
        mesh.superstep(|ctx, got| {
            if ctx.row == row && ctx.col != col {
                assert_eq!(ctx.recv_row()?[0], 7.0);
                *got += 1;
            }
            if ctx.col == col && ctx.row != row {
                assert_eq!(ctx.recv_col()?[0], 9.0);
                *got += 1;
            }
            Ok(())
        }).unwrap();
        mesh.assert_inboxes_empty().unwrap();
        let st = mesh.stats();
        prop_assert_eq!(st.totals.bus_vectors_received, 14);
    }

    #[test]
    fn dma_bandwidth_cost_is_monotone_in_bytes(block in 1usize..9, a in 1usize..50, b in 1usize..50) {
        let e = DmaEngine::new(ChipSpec::sw26010());
        let block_bytes = block * 128;
        let (small, large) = (a.min(b) * 256, a.max(b) * 256);
        let cs = e.cost_cycles(DmaDirection::Get, small, block_bytes);
        let cl = e.cost_cycles(DmaDirection::Get, large, block_bytes);
        prop_assert!(cs <= cl);
    }

    #[test]
    fn larger_blocks_never_cost_more_per_byte(b1 in 1usize..64, b2 in 1usize..64) {
        // Effective bandwidth is non-decreasing in block size on the
        // interpolated curve except at the published misalignment dips —
        // compare only 128-byte multiples that are also 256-aligned.
        let e = DmaEngine::new(ChipSpec::sw26010());
        let (s, l) = (b1.min(b2) * 256, b1.max(b2) * 256);
        let bytes = 1 << 20;
        let cs = e.cost_cycles(DmaDirection::Get, bytes, s);
        let cl = e.cost_cycles(DmaDirection::Get, bytes, l);
        prop_assert!(cl <= cs + 1, "block {l} slower than {s}: {cl} vs {cs}");
    }

    #[test]
    fn ldm_allocator_never_hands_out_overlapping_buffers(sizes in prop::collection::vec(1usize..600, 1..20)) {
        let mut ldm = Ldm::new(64 * 1024);
        let mut taken: Vec<(usize, usize)> = Vec::new();
        for len in sizes {
            match ldm.alloc(len) {
                Ok(buf) => {
                    for &(o, l) in &taken {
                        prop_assert!(
                            buf.offset >= o + l || buf.offset + buf.len <= o,
                            "overlap: ({o},{l}) vs ({},{})", buf.offset, buf.len
                        );
                    }
                    prop_assert!(buf.offset % 4 == 0, "alignment");
                    prop_assert!(buf.offset + buf.len <= ldm.capacity_doubles());
                    taken.push((buf.offset, buf.len));
                }
                Err(e) => {
                    // Failure must be honest: the request really exceeds
                    // what's left (accounting for alignment padding).
                    prop_assert!(e.used_doubles + len > e.capacity_doubles
                        || e.used_doubles + e.requested_doubles > e.capacity_doubles);
                }
            }
        }
    }

    #[test]
    fn strided_gets_pack_correctly(runs in 1usize..6, run_len in 1usize..8, stride_extra in 0usize..5) {
        let stride = run_len + stride_extra;
        let total_src = stride * runs + run_len + 4;
        let src: Vec<f64> = (0..total_src).map(|i| i as f64).collect();
        let mut mesh: Mesh<LdmBuf> =
            Mesh::new(ChipSpec::sw26010(), |_, _| LdmBuf { offset: 0, len: 0 });
        let expected: Vec<f64> = (0..runs)
            .flat_map(|r| (0..run_len).map(move |i| (r * stride + i) as f64))
            .collect();
        mesh.superstep(|ctx, buf| {
            if ctx.id() != 0 {
                return Ok(());
            }
            *buf = ctx.ldm_alloc(runs * run_len)?;
            let h = ctx.dma_get_strided(*buf, 0, &src, 0, runs, stride, run_len)?;
            ctx.dma_wait(h);
            assert_eq!(ctx.ldm(*buf), &expected[..]);
            Ok(())
        }).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn counter_totals_are_schedule_independent(len in 1usize..32, flops in 1u64..1000) {
        // The per-CPE counters are relaxed atomics bumped from the pool's
        // worker threads; relaxed addition is commutative, so aggregate
        // totals must match the closed-form expectation on every run and
        // be identical across repeated runs (whatever interleaving the
        // thread pool happens to produce).
        let run = || {
            let src = vec![1.0f64; len * 64];
            let mut mesh: Mesh<LdmBuf> =
                Mesh::new(ChipSpec::sw26010(), |_, _| LdmBuf { offset: 0, len: 0 });
            mesh.superstep(|ctx, buf| {
                *buf = ctx.ldm_alloc(len)?;
                let h = ctx.dma_get(*buf, 0, &src, ctx.id() * len, len)?;
                ctx.dma_wait(h);
                ctx.add_flops(flops);
                ctx.add_ldm_reg_bytes(32 * flops);
                ctx.add_issue_slots(flops, 2 * flops);
                Ok(())
            }).unwrap();
            mesh.stats()
        };
        let first = run();
        prop_assert_eq!(first.totals.dma_get_bytes, (len * 8 * 64) as u64);
        prop_assert_eq!(first.totals.flops, 64 * flops);
        prop_assert_eq!(first.totals.ldm_reg_bytes, 64 * 32 * flops);
        prop_assert_eq!(first.totals.p0_issue_slots, 64 * flops);
        prop_assert_eq!(first.totals.p1_issue_slots, 64 * 2 * flops);
        for _ in 0..3 {
            let again = run();
            prop_assert_eq!(again.totals, first.totals);
            prop_assert_eq!(again.cycles, first.cycles);
        }
    }
}
