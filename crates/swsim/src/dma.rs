//! The DMA engine: asynchronous block transfers between main memory and
//! LDM (§III-D, Table II).
//!
//! Cost model: the engine charges transfer time from the published Table II
//! bandwidth curve at the request's block size — the effective bandwidth is
//! an *aggregate* for one CG with all 64 CPEs streaming, so each CPE's
//! request is charged against a 1/64 share. A request of `bytes` in blocks
//! of `block_bytes` therefore takes
//!
//! ```text
//! cycles = bytes / (bw(block_bytes) / 64 GB/s) · clock
//! ```
//!
//! Requests are asynchronous: [`DmaEngine::cost_cycles`] prices a transfer
//! and the mesh's `CpeCtx` tracks a `done_at` timestamp per handle so a
//! double-buffered plan only stalls for whatever latency it failed to hide
//! (§IV-A "While the data is computed in one LDM buffer, the data to be
//! used at next iteration is loaded into another LDM buffer by DMA").

use sw_perfmodel::dma::{DmaDirection, DmaTable};
use sw_perfmodel::ChipSpec;

/// Completion token for an asynchronous DMA request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DmaHandle {
    /// CPE-local cycle at which the transfer completes.
    pub done_at: u64,
}

/// Prices DMA transfers for one core group.
#[derive(Clone, Copy, Debug)]
pub struct DmaEngine {
    pub table: DmaTable,
    pub chip: ChipSpec,
}

impl DmaEngine {
    pub fn new(chip: ChipSpec) -> Self {
        Self {
            table: DmaTable,
            chip,
        }
    }

    /// Effective aggregate bandwidth for a given block size, GB/s.
    pub fn bandwidth_gbps(&self, dir: DmaDirection, block_bytes: usize) -> f64 {
        self.table.bandwidth_gbps(dir, block_bytes)
    }

    /// Cycles one CPE's transfer of `bytes` takes, assuming all 64 CPEs
    /// stream concurrently (each gets a 1/64 bandwidth share).
    pub fn cost_cycles(&self, dir: DmaDirection, bytes: usize, block_bytes: usize) -> u64 {
        if bytes == 0 {
            return 0;
        }
        let share_gbps = self.bandwidth_gbps(dir, block_bytes) / self.chip.cpes_per_cg as f64;
        let seconds = bytes as f64 / (share_gbps * 1e9);
        (seconds * self.chip.clock_ghz * 1e9).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> DmaEngine {
        DmaEngine::new(ChipSpec::sw26010())
    }

    #[test]
    fn cost_scales_inversely_with_bandwidth() {
        let e = engine();
        let slow = e.cost_cycles(DmaDirection::Get, 4096, 64); // 9.00 GB/s
        let fast = e.cost_cycles(DmaDirection::Get, 4096, 4096); // 32.05 GB/s
        assert!(
            slow > 3 * fast,
            "64B blocks must be ~3.6x slower: {slow} vs {fast}"
        );
    }

    #[test]
    fn aggregate_bandwidth_recovered_when_all_cpes_stream() {
        // 64 CPEs each move 1 MiB in 512B blocks; total time must equal
        // total bytes / table bandwidth.
        let e = engine();
        let per_cpe_bytes = 1 << 20;
        let cycles = e.cost_cycles(DmaDirection::Get, per_cpe_bytes, 512);
        let seconds = cycles as f64 / 1.45e9;
        let implied_gbps = (per_cpe_bytes as f64 * 64.0) / seconds / 1e9;
        let expected = e.bandwidth_gbps(DmaDirection::Get, 512);
        assert!(
            (implied_gbps - expected).abs() / expected < 0.01,
            "{implied_gbps} vs {expected}"
        );
    }

    #[test]
    fn zero_bytes_is_free() {
        assert_eq!(engine().cost_cycles(DmaDirection::Put, 0, 512), 0);
    }

    #[test]
    fn put_uses_put_column() {
        let e = engine();
        // At 4096B, put (36.01) beats get (32.05).
        let g = e.cost_cycles(DmaDirection::Get, 1 << 20, 4096);
        let p = e.cost_cycles(DmaDirection::Put, 1 << 20, 4096);
        assert!(p < g);
    }
}
