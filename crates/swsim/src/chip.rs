//! Multi-core-group execution (§III-D).
//!
//! "We can partition output images into four parts along the row, and
//! assign each CG to process one fourth of the output images. Our
//! experiments demonstrate that such a partition scheme can generally
//! achieve near linear scaling among the four CGs."
//!
//! Each CG owns a private memory segment (its slice of the batch/rows), so
//! the four simulations are independent; the chip-level wall time is the
//! maximum over CGs plus a fixed kernel-launch overhead on the MPEs.

use crate::stats::CgStats;
use sw_runtime::ExecutionContext;

/// Result of a multi-CG run.
#[derive(Clone, Debug)]
pub struct MultiCgReport {
    pub per_cg: Vec<CgStats>,
    /// Wall-clock cycles: max over CGs + launch overhead.
    pub wall_cycles: u64,
    /// Total flops across CGs.
    pub total_flops: u64,
}

/// Cycles the MPE spends launching a kernel onto its CPE mesh.
pub const LAUNCH_OVERHEAD_CYCLES: u64 = 2_000;

impl MultiCgReport {
    pub fn gflops(&self, clock_ghz: f64) -> f64 {
        if self.wall_cycles == 0 {
            return 0.0;
        }
        let secs = self.wall_cycles as f64 / (clock_ghz * 1e9);
        self.total_flops as f64 / secs / 1e9
    }

    /// Parallel speedup relative to a single-CG run of the whole problem.
    pub fn speedup_vs(&self, single_cg_cycles: u64) -> f64 {
        single_cg_cycles as f64 / self.wall_cycles as f64
    }
}

/// Run `work(cg_index)` for each of `cgs` core groups (in parallel over
/// the process-wide worker pool — each closure builds and runs its own
/// [`crate::Mesh`]) and combine timing.
pub fn run_multi_cg<F>(cgs: usize, work: F) -> MultiCgReport
where
    F: Fn(usize) -> CgStats + Sync + Send,
{
    run_multi_cg_on(sw_runtime::global(), cgs, |i| (work(i), ())).0
}

/// [`run_multi_cg`] for workloads that produce a value per core group
/// alongside the timing (e.g. each CG's slice of a sharded output tensor).
/// Results come back in CG order regardless of thread scheduling.
pub fn run_multi_cg_with<R, F>(cgs: usize, work: F) -> (MultiCgReport, Vec<R>)
where
    F: Fn(usize) -> (CgStats, R) + Sync + Send,
    R: Send,
{
    run_multi_cg_on(sw_runtime::global(), cgs, work)
}

/// [`run_multi_cg_with`] on an explicit [`ExecutionContext`]: the serving
/// dispatcher shares one context across its per-batch CG fan-outs instead
/// of spawning threads per request. Scheduled with per-lane slot affinity
/// ([`ExecutionContext::map_index_affine`]) so CG `i` lands on the same
/// pool lane call after call — the serve dispatcher's 4 CGs stop
/// migrating across worker threads between requests, keeping each CG's
/// mesh state warm in one core's cache. Affinity is a scheduling hint
/// only; results are indexed by CG and bit-identical either way.
pub fn run_multi_cg_on<R, F>(rt: &ExecutionContext, cgs: usize, work: F) -> (MultiCgReport, Vec<R>)
where
    F: Fn(usize) -> (CgStats, R) + Sync + Send,
    R: Send,
{
    let pairs: Vec<(CgStats, R)> = rt.map_index_affine(cgs, work);
    let (per_cg, results): (Vec<CgStats>, Vec<R>) = pairs.into_iter().unzip();
    let wall = per_cg.iter().map(|s| s.cycles).max().unwrap_or(0) + LAUNCH_OVERHEAD_CYCLES;
    let flops = per_cg.iter().map(|s| s.totals.flops).sum();
    (
        MultiCgReport {
            per_cg,
            wall_cycles: wall,
            total_flops: flops,
        },
        results,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::CpeStats;

    fn fake_cg(cycles: u64, flops: u64) -> CgStats {
        CgStats {
            cycles,
            totals: CpeStats {
                flops,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn wall_time_is_max_plus_overhead() {
        let rep = run_multi_cg(4, |i| fake_cg(1000 + i as u64 * 10, 100));
        assert_eq!(rep.wall_cycles, 1030 + LAUNCH_OVERHEAD_CYCLES);
        assert_eq!(rep.total_flops, 400);
    }

    #[test]
    fn balanced_partition_scales_nearly_linearly() {
        // A problem of 4N cycles on one CG becomes N cycles per CG on four.
        let total_work = 40_000_000u64;
        let one = run_multi_cg(1, |_| fake_cg(total_work, total_work));
        let four = run_multi_cg(4, |_| fake_cg(total_work / 4, total_work / 4));
        let speedup = four.speedup_vs(one.wall_cycles);
        assert!(speedup > 3.9 && speedup <= 4.01, "speedup {speedup}");
    }

    #[test]
    fn run_with_returns_results_in_cg_order() {
        let (rep, results) = run_multi_cg_with(4, |i| (fake_cg(100, 10), i * i));
        assert_eq!(results, vec![0, 1, 4, 9]);
        assert_eq!(rep.wall_cycles, 100 + LAUNCH_OVERHEAD_CYCLES);
        assert_eq!(rep.total_flops, 40);
    }

    #[test]
    fn gflops_sums_across_cgs() {
        // Each CG does 1e9 flops in 1.45e9 cycles (1s) -> 1 Gflops each.
        let rep = run_multi_cg(4, |_| fake_cg(1_450_000_000, 1_000_000_000));
        assert!((rep.gflops(1.45) - 4.0).abs() < 0.01);
    }
}
