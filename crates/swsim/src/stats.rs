//! Traffic and work counters.
//!
//! Every claim the reproduction makes about bandwidth requirements is
//! *measured* here, not assumed: plans cannot move a byte or execute a flop
//! without it being counted, so the benchmark harness can report achieved
//! MEM→LDM bandwidth and Gflops directly from these counters.
//!
//! Counters live in two forms. [`CpeCounters`] is the *live* form inside
//! each mesh node: relaxed-atomic [`sw_obs::Counter`]s, safe to bump from
//! the pool-parallel superstep closures and — because relaxed addition is
//! commutative — guaranteed to reach the same totals regardless of thread
//! scheduling (asserted by the `counter_determinism` test suite).
//! [`CpeStats`] is the *snapshot* form: a plain `Copy` struct taken at a
//! quiescent point (superstep barrier or end of run), which the planner's
//! timing extrapolation and the bench harness manipulate freely.
//!
//! The field list is defined once in `for_each_cpe_stat!` and expanded into
//! both structs and every whole-struct operation, so adding a counter in
//! one place wires it through snapshotting, summation and extrapolation.

/// Invokes `$action!(field, field, ...)` with the complete counter field
/// list — the single source of truth for what a CPE counts.
macro_rules! for_each_cpe_stat {
    ($action:ident) => {
        $action! {
            dma_get_bytes,
            dma_put_bytes,
            dma_requests,
            bus_vectors_sent,
            bus_vectors_received,
            flops,
            ldm_reg_bytes,
            p0_issue_slots,
            p1_issue_slots,
            dma_stall_cycles,
            compute_cycles,
            dma_retries,
            fault_retry_cycles,
            fault_stall_cycles,
            msgs_dropped
        }
    };
}

/// Counters for one CPE (plain snapshot form).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CpeStats {
    /// Bytes moved memory → LDM by DMA gets.
    pub dma_get_bytes: u64,
    /// Bytes moved LDM → memory by DMA puts.
    pub dma_put_bytes: u64,
    /// Number of DMA requests issued.
    pub dma_requests: u64,
    /// 256-bit payloads sent on row/column buses.
    pub bus_vectors_sent: u64,
    /// 256-bit payloads received from transfer buffers.
    pub bus_vectors_received: u64,
    /// Double-precision flops executed.
    pub flops: u64,
    /// Bytes moved LDM → register file by the inner kernel's vector
    /// loads/stores, in the paper's Eq. 5 accounting (`vldde` charged 32 B).
    pub ldm_reg_bytes: u64,
    /// Instructions issued to pipeline P0 (FP/vector arithmetic).
    pub p0_issue_slots: u64,
    /// Instructions issued to pipeline P1 (memory/communication/control).
    pub p1_issue_slots: u64,
    /// Cycles spent waiting on DMA completions.
    pub dma_stall_cycles: u64,
    /// Cycles spent in compute kernels.
    pub compute_cycles: u64,
    /// DMA attempts re-issued after an injected failure.
    pub dma_retries: u64,
    /// Cycles charged for re-issued transfers plus retry backoff.
    pub fault_retry_cycles: u64,
    /// Cycles lost to injected DMA/CPE stalls.
    pub fault_stall_cycles: u64,
    /// Bus messages dropped by fault injection (counted at the sender).
    pub msgs_dropped: u64,
}

impl CpeStats {
    /// Field-wise combination: the one place whole-struct arithmetic is
    /// written. `add` is `combine(+)`; the planner's timing extrapolation
    /// is `combine(lerp)`.
    pub fn combine(&self, other: &CpeStats, mut f: impl FnMut(u64, u64) -> u64) -> CpeStats {
        macro_rules! combined {
            ($($field:ident),+) => {
                CpeStats { $($field: f(self.$field, other.$field)),+ }
            };
        }
        for_each_cpe_stat!(combined)
    }

    pub fn add(&mut self, other: &CpeStats) {
        *self = self.combine(other, |a, b| a + b);
    }

    /// `(name, value)` pairs for every counter, in declaration order —
    /// the raw-counter dump exported into perf reports and trace args.
    pub fn named(&self) -> Vec<(&'static str, u64)> {
        macro_rules! named {
            ($($field:ident),+) => {
                vec![$((stringify!($field), self.$field)),+]
            };
        }
        for_each_cpe_stat!(named)
    }
}

/// Live counters for one CPE: the same fields as [`CpeStats`], as
/// relaxed-atomic [`sw_obs::Counter`]s shared with the superstep closure.
macro_rules! counters_struct {
    ($($field:ident),+) => {
        #[derive(Debug, Default)]
        pub struct CpeCounters {
            $(pub $field: sw_obs::Counter),+
        }

        impl CpeCounters {
            /// Copy the current values into a plain snapshot. Exact once
            /// producers are quiescent (e.g. at a superstep barrier).
            pub fn snapshot(&self) -> CpeStats {
                CpeStats { $($field: self.$field.get()),+ }
            }

            /// Zero every counter (for reusing a mesh between runs).
            pub fn reset(&self) {
                $(self.$field.reset();)+
            }
        }
    };
}
for_each_cpe_stat!(counters_struct);

/// Aggregated result of running a kernel on one core group.
#[derive(Clone, Copy, Debug, Default)]
pub struct CgStats {
    /// Wall-clock cycles (max over CPEs, including superstep syncs).
    pub cycles: u64,
    /// Sum over all 64 CPEs.
    pub totals: CpeStats,
    /// Peak LDM usage of any CPE, in doubles.
    pub ldm_high_water_doubles: u64,
}

impl CgStats {
    /// Seconds of simulated wall time at `clock_ghz`.
    pub fn seconds(&self, clock_ghz: f64) -> f64 {
        self.cycles as f64 / (clock_ghz * 1e9)
    }

    /// Attained Gflops of the kernel on this CG.
    pub fn gflops(&self, clock_ghz: f64) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.totals.flops as f64 / self.seconds(clock_ghz) / 1e9
    }

    /// Achieved MEM→LDM bandwidth in GB/s over the kernel's lifetime.
    pub fn dma_get_gbps(&self, clock_ghz: f64) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.totals.dma_get_bytes as f64 / self.seconds(clock_ghz) / 1e9
    }

    /// Achieved LDM→REG bandwidth in GB/s (per CPE, lifetime average):
    /// the Eq. 5 counterpart of [`Self::dma_get_gbps`]. Per-CPE because
    /// the paper's 46.4 GB/s LDM→REG figure is a single CPE's load path.
    pub fn ldm_reg_gbps_per_cpe(&self, clock_ghz: f64, cpes: u64) -> f64 {
        if self.cycles == 0 || cpes == 0 {
            return 0.0;
        }
        self.totals.ldm_reg_bytes as f64 / cpes as f64 / self.seconds(clock_ghz) / 1e9
    }

    /// Total memory traffic (both directions) in bytes.
    pub fn mem_bytes(&self) -> u64 {
        self.totals.dma_get_bytes + self.totals.dma_put_bytes
    }

    /// Peak LDM occupancy as a fraction of `ldm_bytes` capacity.
    pub fn ldm_high_water_frac(&self, ldm_bytes: usize) -> f64 {
        if ldm_bytes == 0 {
            return 0.0;
        }
        (self.ldm_high_water_doubles * 8) as f64 / ldm_bytes as f64
    }

    /// Fraction of the CG's peak the kernel attained.
    pub fn efficiency(&self, peak_gflops: f64, clock_ghz: f64) -> f64 {
        self.gflops(clock_ghz) / peak_gflops
    }

    /// The *simulator's* throughput: simulated Gflop of useful work
    /// produced per second of host wall-clock time. This is the metric the
    /// `sim_throughput` bench gates — higher means the host finishes the
    /// same simulation faster.
    pub fn host_gflops(&self, host_secs: f64) -> f64 {
        if host_secs <= 0.0 {
            return 0.0;
        }
        self.totals.flops as f64 / host_secs / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gflops_arithmetic() {
        let s = CgStats {
            cycles: 1_450_000_000, // one second at 1.45 GHz
            totals: CpeStats {
                flops: 500_000_000_000,
                ..Default::default()
            },
            ..Default::default()
        };
        assert!((s.gflops(1.45) - 500.0).abs() < 1e-9);
        assert!((s.seconds(1.45) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_arithmetic() {
        let s = CgStats {
            cycles: 1_450_000_000,
            totals: CpeStats {
                dma_get_bytes: 36_000_000_000,
                ldm_reg_bytes: 64 * 46_400_000_000,
                ..Default::default()
            },
            ..Default::default()
        };
        assert!((s.dma_get_gbps(1.45) - 36.0).abs() < 1e-9);
        assert!((s.ldm_reg_gbps_per_cpe(1.45, 64) - 46.4).abs() < 1e-9);
    }

    #[test]
    fn zero_cycles_is_not_a_division_error() {
        let s = CgStats::default();
        assert_eq!(s.gflops(1.45), 0.0);
        assert_eq!(s.dma_get_gbps(1.45), 0.0);
        assert_eq!(s.ldm_reg_gbps_per_cpe(1.45, 64), 0.0);
        assert_eq!(s.ldm_high_water_frac(0), 0.0);
    }

    #[test]
    fn host_gflops_is_flops_over_host_seconds() {
        let s = CgStats {
            totals: CpeStats {
                flops: 2_000_000_000,
                ..Default::default()
            },
            ..Default::default()
        };
        assert!((s.host_gflops(2.0) - 1.0).abs() < 1e-12);
        assert_eq!(s.host_gflops(0.0), 0.0);
    }

    #[test]
    fn ldm_high_water_fraction() {
        let s = CgStats {
            ldm_high_water_doubles: 4096, // 32 KB
            ..Default::default()
        };
        assert!((s.ldm_high_water_frac(65536) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn stats_add_accumulates_all_fields() {
        let mut a = CpeStats {
            flops: 1,
            dma_get_bytes: 2,
            ..Default::default()
        };
        let b = CpeStats {
            flops: 10,
            dma_get_bytes: 20,
            bus_vectors_sent: 3,
            ldm_reg_bytes: 7,
            p0_issue_slots: 5,
            ..Default::default()
        };
        a.add(&b);
        assert_eq!(a.flops, 11);
        assert_eq!(a.dma_get_bytes, 22);
        assert_eq!(a.bus_vectors_sent, 3);
        assert_eq!(a.ldm_reg_bytes, 7);
        assert_eq!(a.p0_issue_slots, 5);
    }

    #[test]
    fn combine_covers_every_field() {
        // combine(max) of a struct against itself must be the identity;
        // through the macro this exercises the complete field list.
        let t = CpeStats {
            flops: 3,
            msgs_dropped: 9,
            p1_issue_slots: 2,
            ..Default::default()
        };
        assert_eq!(t.combine(&t, |a, b| a.max(b)), t);
        assert_eq!(t.named().len(), 15);
        assert!(t.named().contains(&("p1_issue_slots", 2)));
    }

    #[test]
    fn counters_snapshot_and_reset() {
        let c = CpeCounters::default();
        c.flops.add(8);
        c.ldm_reg_bytes.add(256);
        c.dma_requests.inc();
        let snap = c.snapshot();
        assert_eq!(snap.flops, 8);
        assert_eq!(snap.ldm_reg_bytes, 256);
        assert_eq!(snap.dma_requests, 1);
        c.reset();
        assert_eq!(c.snapshot(), CpeStats::default());
    }

    #[test]
    fn counters_are_schedule_independent() {
        use std::sync::Arc;
        let c = Arc::new(CpeCounters::default());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        c.flops.add(8);
                        c.ldm_reg_bytes.add(32);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.snapshot().flops, 8 * 500 * 8);
        assert_eq!(c.snapshot().ldm_reg_bytes, 8 * 500 * 32);
    }
}
