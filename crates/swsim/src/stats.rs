//! Traffic and work counters.
//!
//! Every claim the reproduction makes about bandwidth requirements is
//! *measured* here, not assumed: plans cannot move a byte or execute a flop
//! without it being counted, so the benchmark harness can report achieved
//! MEM→LDM bandwidth and Gflops directly from these counters.

/// Counters for one CPE.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CpeStats {
    /// Bytes moved memory → LDM by DMA gets.
    pub dma_get_bytes: u64,
    /// Bytes moved LDM → memory by DMA puts.
    pub dma_put_bytes: u64,
    /// Number of DMA requests issued.
    pub dma_requests: u64,
    /// 256-bit payloads sent on row/column buses.
    pub bus_vectors_sent: u64,
    /// 256-bit payloads received from transfer buffers.
    pub bus_vectors_received: u64,
    /// Double-precision flops executed.
    pub flops: u64,
    /// Cycles spent waiting on DMA completions.
    pub dma_stall_cycles: u64,
    /// Cycles spent in compute kernels.
    pub compute_cycles: u64,
    /// DMA attempts re-issued after an injected failure.
    pub dma_retries: u64,
    /// Cycles charged for re-issued transfers plus retry backoff.
    pub fault_retry_cycles: u64,
    /// Cycles lost to injected DMA/CPE stalls.
    pub fault_stall_cycles: u64,
    /// Bus messages dropped by fault injection (counted at the sender).
    pub msgs_dropped: u64,
}

impl CpeStats {
    pub fn add(&mut self, other: &CpeStats) {
        self.dma_get_bytes += other.dma_get_bytes;
        self.dma_put_bytes += other.dma_put_bytes;
        self.dma_requests += other.dma_requests;
        self.bus_vectors_sent += other.bus_vectors_sent;
        self.bus_vectors_received += other.bus_vectors_received;
        self.flops += other.flops;
        self.dma_stall_cycles += other.dma_stall_cycles;
        self.compute_cycles += other.compute_cycles;
        self.dma_retries += other.dma_retries;
        self.fault_retry_cycles += other.fault_retry_cycles;
        self.fault_stall_cycles += other.fault_stall_cycles;
        self.msgs_dropped += other.msgs_dropped;
    }
}

/// Aggregated result of running a kernel on one core group.
#[derive(Clone, Copy, Debug, Default)]
pub struct CgStats {
    /// Wall-clock cycles (max over CPEs, including superstep syncs).
    pub cycles: u64,
    /// Sum over all 64 CPEs.
    pub totals: CpeStats,
}

impl CgStats {
    /// Seconds of simulated wall time at `clock_ghz`.
    pub fn seconds(&self, clock_ghz: f64) -> f64 {
        self.cycles as f64 / (clock_ghz * 1e9)
    }

    /// Attained Gflops of the kernel on this CG.
    pub fn gflops(&self, clock_ghz: f64) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.totals.flops as f64 / self.seconds(clock_ghz) / 1e9
    }

    /// Achieved MEM→LDM bandwidth in GB/s over the kernel's lifetime.
    pub fn dma_get_gbps(&self, clock_ghz: f64) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.totals.dma_get_bytes as f64 / self.seconds(clock_ghz) / 1e9
    }

    /// Total memory traffic (both directions) in bytes.
    pub fn mem_bytes(&self) -> u64 {
        self.totals.dma_get_bytes + self.totals.dma_put_bytes
    }

    /// Fraction of the CG's peak the kernel attained.
    pub fn efficiency(&self, peak_gflops: f64, clock_ghz: f64) -> f64 {
        self.gflops(clock_ghz) / peak_gflops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gflops_arithmetic() {
        let s = CgStats {
            cycles: 1_450_000_000, // one second at 1.45 GHz
            totals: CpeStats {
                flops: 500_000_000_000,
                ..Default::default()
            },
        };
        assert!((s.gflops(1.45) - 500.0).abs() < 1e-9);
        assert!((s.seconds(1.45) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_arithmetic() {
        let s = CgStats {
            cycles: 1_450_000_000,
            totals: CpeStats {
                dma_get_bytes: 36_000_000_000,
                ..Default::default()
            },
        };
        assert!((s.dma_get_gbps(1.45) - 36.0).abs() < 1e-9);
    }

    #[test]
    fn zero_cycles_is_not_a_division_error() {
        let s = CgStats::default();
        assert_eq!(s.gflops(1.45), 0.0);
        assert_eq!(s.dma_get_gbps(1.45), 0.0);
    }

    #[test]
    fn stats_add_accumulates_all_fields() {
        let mut a = CpeStats {
            flops: 1,
            dma_get_bytes: 2,
            ..Default::default()
        };
        let b = CpeStats {
            flops: 10,
            dma_get_bytes: 20,
            bus_vectors_sent: 3,
            ..Default::default()
        };
        a.add(&b);
        assert_eq!(a.flops, 11);
        assert_eq!(a.dma_get_bytes, 22);
        assert_eq!(a.bus_vectors_sent, 3);
    }
}
