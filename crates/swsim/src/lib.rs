//! Functional + timing simulator for the SW26010 many-core processor.
//!
//! There is no Sunway toolchain or hardware outside the National
//! Supercomputing Center in Wuxi, so this crate substitutes a software
//! model that preserves the constraints the swDNN paper's optimizations
//! react to:
//!
//! * **LDM** ([`ldm`]) — each CPE owns a 64 KB scratchpad with an explicit
//!   allocator; plans that overflow it fail loudly, exactly like a real
//!   LDM-resident kernel would fail to link.
//! * **DMA** ([`dma`]) — asynchronous block transfers between main memory
//!   and LDM whose cost follows the *published* Table II bandwidth curve
//!   (small or misaligned blocks are slow, ≥256 B aligned blocks approach
//!   the 32–36 GB/s ceiling), shared across the 64 CPEs of a core group.
//! * **Register communication** ([`mesh`]) — row/column buses carrying
//!   256-bit payloads between CPEs of the 8×8 mesh, with transfer-buffer
//!   mailboxes and put/get cycle costs.
//! * **Execution** — plans run *real* double-precision arithmetic (results
//!   are bit-checked against the reference convolution) and charge compute
//!   cycles from the `sw-isa` dual-pipeline kernel model.
//!
//! The execution model is bulk-synchronous: a program is a sequence of
//! *supersteps*; within a superstep all 64 CPEs run independently (in
//! parallel on the persistent [`sw_runtime`] worker pool) and may send
//! bus messages, which are delivered at
//! the superstep boundary where all CPE clocks synchronize to the maximum.
//! This is a conservative approximation of the hardware's pairwise
//! producer-consumer blocking: the real mesh can overlap slightly more,
//! never less.
//!
//! [`chip`] scales a per-CG simulation across the four core groups with the
//! paper's output-row partitioning.

pub mod chip;
pub mod dma;
pub mod fault;
pub mod ldm;
pub mod mem;
pub mod mesh;
pub mod noc;
pub mod stats;
pub mod trace;

pub use chip::{run_multi_cg, run_multi_cg_on, run_multi_cg_with, MultiCgReport};
pub use dma::{DmaEngine, DmaHandle};
pub use fault::{FaultPlan, RetryPolicy};
pub use ldm::{Ldm, LdmBuf};
pub use mem::{AccessClass, MemBlock, MemoryMap, Segment};
pub use mesh::{Bus, CpeCtx, Mesh, SimError};
pub use noc::{NocModel, TrafficSplit};
pub use stats::{CgStats, CpeStats};
pub use trace::{render_summary, Event, EventKind, TraceSummary};

pub use sw_perfmodel::ChipSpec;

/// Number of CPEs in one core group.
pub const CPES: usize = 64;
/// Mesh side length.
pub const MESH_DIM: usize = 8;
