//! The network-on-chip connecting the four core groups (§III-B).
//!
//! "The on-chip network (NoC) connects four CGs with System Interface.
//! Memory of four CGs are also connected through the NoC. Users can
//! explicitly set the size of each CG's private memory space, and the
//! size of the memory space shared among the four CGs."
//!
//! swDNN's multi-CG strategy (§III-D) partitions the *output rows* so each
//! CG touches only its private segment — this module prices the
//! alternative so the choice is checkable: a cross-CG access pays the NoC
//! traversal (lower bandwidth than the local memory controller and shared
//! by all remote traffic), so an interleaved partitioning that pulls 3/4
//! of its inputs across the NoC is strictly slower than the row
//! partitioning that pulls none.

use sw_perfmodel::ChipSpec;

/// NoC cost parameters.
#[derive(Clone, Copy, Debug)]
pub struct NocModel {
    pub chip: ChipSpec,
    /// Aggregate cross-CG bandwidth of the NoC, GB/s (shared by all four
    /// CGs' remote traffic).
    pub cross_gbps: f64,
    /// Extra latency per remote transaction, cycles.
    pub hop_latency_cycles: u64,
}

impl Default for NocModel {
    fn default() -> Self {
        // The NoC sustains on the order of one memory controller's worth
        // of aggregate remote bandwidth — enough for occasional sharing,
        // far too little to stream operands from remote memories.
        Self {
            chip: ChipSpec::sw26010(),
            cross_gbps: 32.0,
            hop_latency_cycles: 200,
        }
    }
}

/// Where a CG's traffic lands.
#[derive(Clone, Copy, Debug)]
pub struct TrafficSplit {
    /// Bytes served from the CG's own memory controller.
    pub local_bytes: u64,
    /// Bytes crossing the NoC from remote CG memories.
    pub remote_bytes: u64,
}

impl NocModel {
    /// Seconds for one CG to move the given traffic split, with local
    /// traffic at the DDR3 peak and remote traffic at its 1/4 share of the
    /// NoC (all four CGs pulling concurrently).
    pub fn transfer_seconds(&self, split: &TrafficSplit) -> f64 {
        let local = split.local_bytes as f64 / (self.chip.ddr3_peak_gbps * 1e9);
        let remote_share = self.cross_gbps / self.chip.core_groups as f64;
        let remote = split.remote_bytes as f64 / (remote_share * 1e9);
        // Local DMA and remote NoC pulls can overlap; the slower stream
        // dominates, plus a hop latency per remote burst.
        let lat = if split.remote_bytes > 0 {
            self.hop_latency_cycles as f64 / (self.chip.clock_ghz * 1e9)
        } else {
            0.0
        };
        local.max(remote) + lat
    }

    /// Traffic split of the paper's row partitioning: every operand byte
    /// is private.
    pub fn row_partitioned(&self, bytes_per_cg: u64) -> TrafficSplit {
        TrafficSplit {
            local_bytes: bytes_per_cg,
            remote_bytes: 0,
        }
    }

    /// Traffic split of a naive interleaving where data is striped across
    /// the four memories: 3/4 of every CG's reads are remote.
    pub fn interleaved(&self, bytes_per_cg: u64) -> TrafficSplit {
        TrafficSplit {
            local_bytes: bytes_per_cg / 4,
            remote_bytes: bytes_per_cg * 3 / 4,
        }
    }

    /// Slowdown of interleaved placement vs row partitioning.
    pub fn interleaving_penalty(&self, bytes_per_cg: u64) -> f64 {
        self.transfer_seconds(&self.interleaved(bytes_per_cg))
            / self.transfer_seconds(&self.row_partitioned(bytes_per_cg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn private_partitioning_beats_interleaving() {
        let noc = NocModel::default();
        // One Fig. 7 config's per-CG traffic is on the order of 100 MB.
        let penalty = noc.interleaving_penalty(100 << 20);
        assert!(
            penalty > 2.5,
            "interleaved placement must be several times slower, got {penalty:.2}x"
        );
    }

    #[test]
    fn local_only_traffic_runs_at_ddr3_peak() {
        let noc = NocModel::default();
        let s = noc.transfer_seconds(&noc.row_partitioned(36_000_000_000));
        assert!((s - 1.0).abs() < 1e-9, "36 GB at 36 GB/s = 1 s, got {s}");
    }

    #[test]
    fn hop_latency_only_charged_for_remote_traffic() {
        let noc = NocModel::default();
        let local = noc.transfer_seconds(&TrafficSplit {
            local_bytes: 0,
            remote_bytes: 0,
        });
        assert_eq!(local, 0.0);
        let remote = noc.transfer_seconds(&TrafficSplit {
            local_bytes: 0,
            remote_bytes: 1,
        });
        assert!(remote > 0.0);
    }

    #[test]
    fn penalty_grows_with_remote_share() {
        let noc = NocModel::default();
        let b = 64 << 20;
        let quarter = TrafficSplit {
            local_bytes: 3 * b / 4,
            remote_bytes: b / 4,
        };
        let three_quarters = noc.interleaved(b);
        assert!(noc.transfer_seconds(&three_quarters) > noc.transfer_seconds(&quarter));
    }
}
