//! Execution tracing: a per-CPE event log for debugging and for
//! understanding where simulated time goes.
//!
//! Tracing is off by default (zero overhead beyond a branch); enable it
//! with [`crate::Mesh::enable_trace`]. Each CPE records an [`Event`] per
//! DMA request/wait, bus operation, compute block and barrier, with its
//! local start cycle. [`render_summary`] aggregates a human-readable
//! where-did-the-time-go report; the raw events are available for custom
//! analysis.

use std::fmt;

/// One traced action on one CPE.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EventKind {
    /// Asynchronous DMA get issued (`bytes`, priced completion cycle).
    DmaGetIssue { bytes: u64, done_at: u64 },
    /// Asynchronous DMA put issued.
    DmaPutIssue { bytes: u64, done_at: u64 },
    /// Blocked waiting for a DMA completion (`stall` cycles).
    DmaWait { stall: u64 },
    /// Put 256-bit vectors on a bus (`vectors`).
    BusSend { vectors: u64 },
    /// Received vectors from a transfer buffer.
    BusRecv { vectors: u64 },
    /// Compute block charged by the kernel model.
    Compute { cycles: u64 },
    /// Superstep barrier: clock jumped forward to the mesh maximum.
    Barrier { to: u64 },
}

/// A timestamped event.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Event {
    /// CPE-local cycle when the event was recorded.
    pub at: u64,
    pub kind: EventKind,
}

/// Aggregated view of one CPE's trace.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TraceSummary {
    pub dma_gets: u64,
    pub dma_puts: u64,
    pub dma_bytes: u64,
    pub dma_stall_cycles: u64,
    pub bus_vectors: u64,
    pub compute_cycles: u64,
    pub barriers: u64,
}

impl TraceSummary {
    pub fn from_events(events: &[Event]) -> Self {
        let mut s = Self::default();
        for e in events {
            match e.kind {
                EventKind::DmaGetIssue { bytes, .. } => {
                    s.dma_gets += 1;
                    s.dma_bytes += bytes;
                }
                EventKind::DmaPutIssue { bytes, .. } => {
                    s.dma_puts += 1;
                    s.dma_bytes += bytes;
                }
                EventKind::DmaWait { stall } => s.dma_stall_cycles += stall,
                EventKind::BusSend { vectors } | EventKind::BusRecv { vectors } => {
                    s.bus_vectors += vectors
                }
                EventKind::Compute { cycles } => s.compute_cycles += cycles,
                EventKind::Barrier { .. } => s.barriers += 1,
            }
        }
        s
    }
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dma: {} gets + {} puts ({} B), stalled {} cyc; bus: {} vecs; compute: {} cyc; {} barriers",
            self.dma_gets,
            self.dma_puts,
            self.dma_bytes,
            self.dma_stall_cycles,
            self.bus_vectors,
            self.compute_cycles,
            self.barriers
        )
    }
}

/// Render a per-mesh report: one line per CPE plus a where-time-went
/// footer over the busiest CPE.
pub fn render_summary(traces: &[(usize, usize, Vec<Event>)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mut busiest: Option<(u64, usize, usize, TraceSummary)> = None;
    for (row, col, events) in traces {
        let s = TraceSummary::from_events(events);
        let busy = s.compute_cycles + s.dma_stall_cycles;
        let _ = writeln!(out, "CPE({row},{col}): {s}");
        if busiest.is_none_or(|(b, ..)| busy > b) {
            busiest = Some((busy, *row, *col, s));
        }
    }
    if let Some((_, row, col, s)) = busiest {
        let total = (s.compute_cycles + s.dma_stall_cycles).max(1);
        let _ = writeln!(
            out,
            "busiest CPE({row},{col}): {:.1}% compute, {:.1}% dma stall",
            100.0 * s.compute_cycles as f64 / total as f64,
            100.0 * s.dma_stall_cycles as f64 / total as f64,
        );
    }
    out
}

/// Convert per-CPE traces into a Chrome-trace document (`pid` 0 = the core
/// group, `tid` = linear CPE id, timestamps in microseconds of simulated
/// time at `clock_ghz`). Load the serialized output in `chrome://tracing`.
///
/// Event categories follow the paper's level mapping: DMA transfers are
/// `mem`, DMA waits are `ldm` (the CPE idles waiting for its scratchpad to
/// fill), compute blocks and bus operations are `reg`, barriers are `exec`.
pub fn to_chrome(traces: &[(usize, usize, Vec<Event>)], clock_ghz: f64) -> sw_obs::ChromeTrace {
    use sw_obs::{ChromeEvent, Level};
    let us = |cycles: u64| cycles as f64 / (clock_ghz * 1e3);
    let mut out = sw_obs::ChromeTrace::new();
    for (row, col, events) in traces {
        let tid = (row * crate::MESH_DIM + col) as u64;
        for e in events {
            let (name, cat, dur_cycles, args): (&str, &str, u64, Vec<(String, serde_json::Value)>) =
                match e.kind {
                    EventKind::DmaGetIssue { bytes, done_at } => (
                        "dma_get",
                        Level::Mem.name(),
                        done_at.saturating_sub(e.at),
                        vec![("bytes".into(), bytes.into())],
                    ),
                    EventKind::DmaPutIssue { bytes, done_at } => (
                        "dma_put",
                        Level::Mem.name(),
                        done_at.saturating_sub(e.at),
                        vec![("bytes".into(), bytes.into())],
                    ),
                    EventKind::DmaWait { stall } => ("dma_wait", Level::Ldm.name(), stall, vec![]),
                    EventKind::BusSend { vectors } => (
                        "bus_send",
                        Level::Reg.name(),
                        vectors,
                        vec![("vectors".into(), vectors.into())],
                    ),
                    EventKind::BusRecv { vectors } => (
                        "bus_recv",
                        Level::Reg.name(),
                        vectors,
                        vec![("vectors".into(), vectors.into())],
                    ),
                    EventKind::Compute { cycles } => ("compute", Level::Reg.name(), cycles, vec![]),
                    EventKind::Barrier { to } => (
                        "barrier",
                        "exec",
                        to.saturating_sub(e.at),
                        vec![("to_cycle".into(), to.into())],
                    ),
                };
            out.push(ChromeEvent {
                name: name.to_string(),
                cat: cat.to_string(),
                ph: 'X',
                ts_us: us(e.at),
                dur_us: us(dur_cycles),
                pid: 0,
                tid,
                args,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64, kind: EventKind) -> Event {
        Event { at, kind }
    }

    #[test]
    fn summary_aggregates_by_kind() {
        let events = vec![
            ev(
                0,
                EventKind::DmaGetIssue {
                    bytes: 128,
                    done_at: 50,
                },
            ),
            ev(0, EventKind::DmaWait { stall: 50 }),
            ev(50, EventKind::Compute { cycles: 100 }),
            ev(150, EventKind::BusSend { vectors: 4 }),
            ev(154, EventKind::Barrier { to: 200 }),
            ev(
                200,
                EventKind::DmaPutIssue {
                    bytes: 64,
                    done_at: 240,
                },
            ),
        ];
        let s = TraceSummary::from_events(&events);
        assert_eq!(s.dma_gets, 1);
        assert_eq!(s.dma_puts, 1);
        assert_eq!(s.dma_bytes, 192);
        assert_eq!(s.dma_stall_cycles, 50);
        assert_eq!(s.bus_vectors, 4);
        assert_eq!(s.compute_cycles, 100);
        assert_eq!(s.barriers, 1);
    }

    #[test]
    fn render_reports_busiest_cpe() {
        let traces = vec![
            (0, 0, vec![ev(0, EventKind::Compute { cycles: 10 })]),
            (
                0,
                1,
                vec![
                    ev(0, EventKind::Compute { cycles: 90 }),
                    ev(0, EventKind::DmaWait { stall: 10 }),
                ],
            ),
        ];
        let text = render_summary(&traces);
        assert!(text.contains("CPE(0,0)"));
        assert!(text.contains("busiest CPE(0,1): 90.0% compute, 10.0% dma stall"));
    }

    #[test]
    fn chrome_export_maps_events_to_levels() {
        let traces = vec![(
            0usize,
            1usize,
            vec![
                ev(
                    0,
                    EventKind::DmaGetIssue {
                        bytes: 4096,
                        done_at: 1450,
                    },
                ),
                ev(0, EventKind::DmaWait { stall: 1450 }),
                ev(1450, EventKind::Compute { cycles: 2900 }),
                ev(4350, EventKind::Barrier { to: 4400 }),
            ],
        )];
        let chrome = to_chrome(&traces, 1.45);
        assert_eq!(chrome.events.len(), 4);
        let get = &chrome.events[0];
        assert_eq!(get.cat, "mem");
        assert_eq!(get.tid, 1);
        // 1450 cycles at 1.45 GHz = 1 µs.
        assert!((get.dur_us - 1.0).abs() < 1e-12);
        assert_eq!(chrome.events[1].cat, "ldm");
        assert_eq!(chrome.events[2].cat, "reg");
        assert_eq!(chrome.events[3].cat, "exec");
        // The document round-trips through the JSON layer.
        let back = sw_obs::ChromeTrace::from_json_str(&chrome.to_json_string()).unwrap();
        assert_eq!(back, chrome);
    }

    #[test]
    fn display_is_compact() {
        let s = TraceSummary {
            dma_gets: 2,
            dma_bytes: 256,
            ..Default::default()
        };
        assert!(s.to_string().contains("2 gets"));
    }
}
