//! Execution tracing: a per-CPE event log for debugging and for
//! understanding where simulated time goes.
//!
//! Tracing is off by default (zero overhead beyond a branch); enable it
//! with [`crate::Mesh::enable_trace`]. Each CPE records an [`Event`] per
//! DMA request/wait, bus operation, compute block and barrier, with its
//! local start cycle. [`render_summary`] aggregates a human-readable
//! where-did-the-time-go report; the raw events are available for custom
//! analysis.

use std::fmt;

/// One traced action on one CPE.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EventKind {
    /// Asynchronous DMA get issued (`bytes`, priced completion cycle).
    DmaGetIssue { bytes: u64, done_at: u64 },
    /// Asynchronous DMA put issued.
    DmaPutIssue { bytes: u64, done_at: u64 },
    /// Blocked waiting for a DMA completion (`stall` cycles).
    DmaWait { stall: u64 },
    /// Put 256-bit vectors on a bus (`vectors`).
    BusSend { vectors: u64 },
    /// Received vectors from a transfer buffer.
    BusRecv { vectors: u64 },
    /// Compute block charged by the kernel model.
    Compute { cycles: u64 },
    /// Superstep barrier: clock jumped forward to the mesh maximum.
    Barrier { to: u64 },
}

/// A timestamped event.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Event {
    /// CPE-local cycle when the event was recorded.
    pub at: u64,
    pub kind: EventKind,
}

/// Aggregated view of one CPE's trace.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TraceSummary {
    pub dma_gets: u64,
    pub dma_puts: u64,
    pub dma_bytes: u64,
    pub dma_stall_cycles: u64,
    pub bus_vectors: u64,
    pub compute_cycles: u64,
    pub barriers: u64,
}

impl TraceSummary {
    pub fn from_events(events: &[Event]) -> Self {
        let mut s = Self::default();
        for e in events {
            match e.kind {
                EventKind::DmaGetIssue { bytes, .. } => {
                    s.dma_gets += 1;
                    s.dma_bytes += bytes;
                }
                EventKind::DmaPutIssue { bytes, .. } => {
                    s.dma_puts += 1;
                    s.dma_bytes += bytes;
                }
                EventKind::DmaWait { stall } => s.dma_stall_cycles += stall,
                EventKind::BusSend { vectors } | EventKind::BusRecv { vectors } => {
                    s.bus_vectors += vectors
                }
                EventKind::Compute { cycles } => s.compute_cycles += cycles,
                EventKind::Barrier { .. } => s.barriers += 1,
            }
        }
        s
    }
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dma: {} gets + {} puts ({} B), stalled {} cyc; bus: {} vecs; compute: {} cyc; {} barriers",
            self.dma_gets,
            self.dma_puts,
            self.dma_bytes,
            self.dma_stall_cycles,
            self.bus_vectors,
            self.compute_cycles,
            self.barriers
        )
    }
}

/// Render a per-mesh report: one line per CPE plus a where-time-went
/// footer over the busiest CPE.
pub fn render_summary(traces: &[(usize, usize, Vec<Event>)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mut busiest: Option<(u64, usize, usize, TraceSummary)> = None;
    for (row, col, events) in traces {
        let s = TraceSummary::from_events(events);
        let busy = s.compute_cycles + s.dma_stall_cycles;
        let _ = writeln!(out, "CPE({row},{col}): {s}");
        if busiest.is_none_or(|(b, ..)| busy > b) {
            busiest = Some((busy, *row, *col, s));
        }
    }
    if let Some((_, row, col, s)) = busiest {
        let total = (s.compute_cycles + s.dma_stall_cycles).max(1);
        let _ = writeln!(
            out,
            "busiest CPE({row},{col}): {:.1}% compute, {:.1}% dma stall",
            100.0 * s.compute_cycles as f64 / total as f64,
            100.0 * s.dma_stall_cycles as f64 / total as f64,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64, kind: EventKind) -> Event {
        Event { at, kind }
    }

    #[test]
    fn summary_aggregates_by_kind() {
        let events = vec![
            ev(
                0,
                EventKind::DmaGetIssue {
                    bytes: 128,
                    done_at: 50,
                },
            ),
            ev(0, EventKind::DmaWait { stall: 50 }),
            ev(50, EventKind::Compute { cycles: 100 }),
            ev(150, EventKind::BusSend { vectors: 4 }),
            ev(154, EventKind::Barrier { to: 200 }),
            ev(
                200,
                EventKind::DmaPutIssue {
                    bytes: 64,
                    done_at: 240,
                },
            ),
        ];
        let s = TraceSummary::from_events(&events);
        assert_eq!(s.dma_gets, 1);
        assert_eq!(s.dma_puts, 1);
        assert_eq!(s.dma_bytes, 192);
        assert_eq!(s.dma_stall_cycles, 50);
        assert_eq!(s.bus_vectors, 4);
        assert_eq!(s.compute_cycles, 100);
        assert_eq!(s.barriers, 1);
    }

    #[test]
    fn render_reports_busiest_cpe() {
        let traces = vec![
            (0, 0, vec![ev(0, EventKind::Compute { cycles: 10 })]),
            (
                0,
                1,
                vec![
                    ev(0, EventKind::Compute { cycles: 90 }),
                    ev(0, EventKind::DmaWait { stall: 10 }),
                ],
            ),
        ];
        let text = render_summary(&traces);
        assert!(text.contains("CPE(0,0)"));
        assert!(text.contains("busiest CPE(0,1): 90.0% compute, 10.0% dma stall"));
    }

    #[test]
    fn display_is_compact() {
        let s = TraceSummary {
            dma_gets: 2,
            dma_bytes: 256,
            ..Default::default()
        };
        assert!(s.to_string().contains("2 gets"));
    }
}
