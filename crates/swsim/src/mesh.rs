//! The 8×8 CPE mesh: bulk-synchronous execution with register
//! communication over row/column buses (§III-B, §V-A).
//!
//! A kernel is a sequence of **supersteps**. In each superstep every CPE
//! runs the same closure over its private state, its LDM, and a [`CpeCtx`]
//! that provides DMA, bus communication and cycle accounting. Bus messages
//! sent in superstep *k* sit in the receiver's transfer buffer and are
//! received (`recv_row`/`recv_col`) in superstep *k+1* — the staged
//! equivalent of the hardware's producer/consumer blocking. At each
//! superstep boundary all CPE clocks synchronize to the maximum plus a
//! small mesh-synchronization overhead.
//!
//! DMA puts to main memory are *logged* during the superstep and applied by
//! [`Mesh::drain_puts`] — plans therefore cannot race on the output buffer,
//! and the simulation stays deterministic regardless of the worker pool's
//! scheduling.
//!
//! Supersteps execute through a persistent [`sw_runtime::ExecutionContext`]
//! (the worker pool spawned once per process), not a per-superstep thread
//! fan-out; [`Mesh::new_on`] pins a mesh to a specific context, and
//! [`Mesh::new`] uses the process-wide [`sw_runtime::global`] one.

use crate::dma::{DmaEngine, DmaHandle};
use crate::fault::FaultPlan;
use crate::ldm::{Ldm, LdmBuf, LdmOverflow};
use crate::stats::{CgStats, CpeCounters, CpeStats};
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex};
use sw_perfmodel::dma::DmaDirection;
use sw_perfmodel::ChipSpec;

/// Which communication bus of the mesh.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Bus {
    Row,
    Col,
}

/// Simulation failures. Most correspond to real programming errors on the
/// hardware (scratchpad overflow, reading an empty transfer buffer, DMA
/// outside the mapped segment); `DmaFault` and `CpeOffline` are injected
/// hardware faults from a [`FaultPlan`].
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    Ldm(LdmOverflow),
    /// `recv` on an empty transfer buffer: on hardware this deadlocks.
    EmptyInbox {
        row: usize,
        col: usize,
        bus: Bus,
    },
    /// DMA touching memory outside the registered segment.
    OutOfBounds {
        offset: usize,
        len: usize,
        size: usize,
    },
    /// Plan-level invariant failure.
    Program(String),
    /// An injected DMA failure persisted through every retry.
    DmaFault {
        row: usize,
        col: usize,
        attempts: u32,
    },
    /// The CPE is marked permanently offline by the active [`FaultPlan`].
    CpeOffline {
        row: usize,
        col: usize,
    },
}

impl SimError {
    /// Whether a re-run (with a different fault pattern) could succeed.
    /// Programming errors are deterministic and will recur; injected
    /// transient faults and drop-induced deadlocks may not.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            SimError::DmaFault { .. } | SimError::EmptyInbox { .. }
        )
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Ldm(e) => write!(f, "{e}"),
            SimError::EmptyInbox { row, col, bus } => {
                write!(
                    f,
                    "CPE({row},{col}) get on empty {bus:?} transfer buffer (deadlock)"
                )
            }
            SimError::OutOfBounds { offset, len, size } => {
                write!(
                    f,
                    "DMA [{offset}..{}) outside segment of {size} doubles",
                    offset + len
                )
            }
            SimError::Program(s) => write!(f, "plan error: {s}"),
            SimError::DmaFault { row, col, attempts } => {
                write!(
                    f,
                    "CPE({row},{col}) DMA transfer failed after {attempts} attempts"
                )
            }
            SimError::CpeOffline { row, col } => write!(f, "CPE({row},{col}) is offline"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<LdmOverflow> for SimError {
    fn from(e: LdmOverflow) -> Self {
        SimError::Ldm(e)
    }
}

/// Outgoing bus message. Payloads are shared slices: a broadcast is one
/// allocation handed to every receiver by reference count, not one
/// allocation plus a clone per target.
#[derive(Clone, Debug)]
enum OutMsg {
    Bcast {
        bus: Bus,
        data: Arc<[f64]>,
    },
    Send {
        bus: Bus,
        to: usize,
        data: Arc<[f64]>,
    },
}

struct CpeNode<S> {
    row: usize,
    col: usize,
    ldm: Ldm,
    clock: u64,
    /// Cycle at which this CPE's DMA queue is free: outstanding requests
    /// from one CPE serialize (one transfer agent per CPE).
    dma_free: u64,
    /// Monotonic DMA request counter, keying fault-injection decisions so
    /// they are independent of thread scheduling.
    dma_seq: u64,
    stats: CpeCounters,
    row_inbox: VecDeque<Arc<[f64]>>,
    col_inbox: VecDeque<Arc<[f64]>>,
    events: Vec<crate::trace::Event>,
    state: S,
}

/// Per-CPE execution context handed to superstep closures.
pub struct CpeCtx<'a> {
    pub row: usize,
    pub col: usize,
    ldm: &'a mut Ldm,
    clock: &'a mut u64,
    stats: &'a CpeCounters,
    row_inbox: &'a mut VecDeque<Arc<[f64]>>,
    col_inbox: &'a mut VecDeque<Arc<[f64]>>,
    dma_free: &'a mut u64,
    dma_seq: &'a mut u64,
    dma: DmaEngine,
    fault: Option<FaultPlan>,
    block_hint: Option<usize>,
    trace: Option<&'a mut Vec<crate::trace::Event>>,
    out_msgs: Vec<OutMsg>,
    out_puts: Vec<(usize, Vec<f64>)>,
}

/// Cycles to receive one message header from a transfer buffer.
const GET_LATENCY: u64 = 4;

impl CpeCtx<'_> {
    /// Linear CPE id (`row * 8 + col`).
    #[inline]
    pub fn id(&self) -> usize {
        self.row * crate::MESH_DIM + self.col
    }

    /// Current CPE-local cycle.
    #[inline]
    pub fn clock(&self) -> u64 {
        *self.clock
    }

    /// Allocate LDM.
    pub fn ldm_alloc(&mut self, doubles: usize) -> Result<LdmBuf, SimError> {
        Ok(self.ldm.alloc(doubles)?)
    }

    /// Allocate a double-buffer pair.
    pub fn ldm_alloc_pair(&mut self, doubles: usize) -> Result<[LdmBuf; 2], SimError> {
        Ok(self.ldm.alloc_pair(doubles)?)
    }

    /// Read-only view of one LDM buffer.
    #[inline]
    pub fn ldm(&self, buf: LdmBuf) -> &[f64] {
        self.ldm.buf(buf)
    }

    /// Mutable view of the whole scratchpad (for inner kernels spanning
    /// several disjoint buffers).
    #[inline]
    pub fn ldm_data_mut(&mut self) -> &mut [f64] {
        self.ldm.data_mut()
    }

    pub fn ldm_high_water(&self) -> usize {
        self.ldm.high_water_doubles()
    }

    /// Asynchronous DMA get of one contiguous run: copies
    /// `src[src_off .. src_off+len]` into `dst[dst_off ..]` and prices the
    /// transfer at block size `len * 8` bytes.
    pub fn dma_get(
        &mut self,
        dst: LdmBuf,
        dst_off: usize,
        src: &[f64],
        src_off: usize,
        len: usize,
    ) -> Result<DmaHandle, SimError> {
        self.dma_get_strided(dst, dst_off, src, src_off, 1, 0, len)
    }

    /// Asynchronous strided DMA get: `runs` runs of `run_len` doubles,
    /// source stride `src_stride`, packed contiguously into the LDM buffer.
    /// One DMA request; the effective block size is the run length.
    #[allow(clippy::too_many_arguments)]
    pub fn dma_get_strided(
        &mut self,
        dst: LdmBuf,
        dst_off: usize,
        src: &[f64],
        src_off: usize,
        runs: usize,
        src_stride: usize,
        run_len: usize,
    ) -> Result<DmaHandle, SimError> {
        let total = runs * run_len;
        if dst_off + total > dst.len {
            return Err(SimError::Program(format!(
                "DMA get writes {} doubles past LDM buffer of {}",
                dst_off + total,
                dst.len
            )));
        }
        let last = src_off + src_stride * runs.saturating_sub(1) + run_len;
        if last > src.len() {
            return Err(SimError::OutOfBounds {
                offset: src_off,
                len: last - src_off,
                size: src.len(),
            });
        }
        let d = self.ldm.buf_mut(dst);
        for r in 0..runs {
            let s = src_off + r * src_stride;
            d[dst_off + r * run_len..dst_off + (r + 1) * run_len]
                .copy_from_slice(&src[s..s + run_len]);
        }
        let bytes = total * 8;
        let cycles = self.dma.cost_cycles(
            DmaDirection::Get,
            bytes,
            self.block_hint.take().unwrap_or(run_len * 8),
        );
        self.stats.dma_get_bytes.add(bytes as u64);
        self.stats.dma_requests.inc();
        let h = self.enqueue_dma(cycles)?;
        self.record(crate::trace::EventKind::DmaGetIssue {
            bytes: bytes as u64,
            done_at: h.done_at,
        });
        Ok(h)
    }

    /// Price the *next* DMA request at `block_bytes` instead of its run
    /// length — models the SW26010's collective (row-mode) DMA, where the
    /// eight CPEs of a mesh row jointly fetch one contiguous region.
    pub fn dma_block_hint(&mut self, block_bytes: usize) {
        self.block_hint = Some(block_bytes);
    }

    /// Requests from one CPE serialize through its transfer agent.
    ///
    /// With an active [`FaultPlan`] this is also where injected DMA faults
    /// land: a stalled transfer takes longer, and a failed attempt is
    /// re-issued (paying the wasted transfer plus an exponential backoff)
    /// up to [`crate::fault::RetryPolicy::max_retries`] times. All of that
    /// time flows into `done_at`, so retries eat exactly the slack that
    /// double buffering would otherwise hide.
    fn enqueue_dma(&mut self, cycles: u64) -> Result<DmaHandle, SimError> {
        let mut total = cycles;
        if let Some(fp) = self.fault {
            let seq = *self.dma_seq;
            *self.dma_seq += 1;
            let id = self.row * crate::MESH_DIM + self.col;
            let stall = fp.dma_stall(id, seq);
            if stall > 0 {
                total += stall;
                self.stats.fault_stall_cycles.add(stall);
            }
            let mut attempt = 0u32;
            while fp.dma_attempt_fails(id, seq, attempt) {
                if attempt >= fp.retry.max_retries {
                    return Err(SimError::DmaFault {
                        row: self.row,
                        col: self.col,
                        attempts: attempt + 1,
                    });
                }
                let backoff = fp.retry.base_backoff_cycles << attempt;
                total += cycles + backoff;
                self.stats.dma_retries.inc();
                self.stats.fault_retry_cycles.add(cycles + backoff);
                attempt += 1;
            }
        }
        let start = (*self.clock).max(*self.dma_free);
        let done = start + total;
        *self.dma_free = done;
        Ok(DmaHandle { done_at: done })
    }

    #[inline]
    fn record(&mut self, kind: crate::trace::EventKind) {
        let at = *self.clock;
        if let Some(t) = self.trace.as_deref_mut() {
            t.push(crate::trace::Event { at, kind });
        }
    }

    /// Asynchronous strided DMA put: reads `runs * run_len` doubles
    /// contiguously from the LDM buffer and logs them for scatter into the
    /// global output at `dst_off + r * dst_stride`.
    #[allow(clippy::too_many_arguments)]
    pub fn dma_put_strided(
        &mut self,
        src: LdmBuf,
        src_off: usize,
        dst_off: usize,
        runs: usize,
        dst_stride: usize,
        run_len: usize,
    ) -> Result<DmaHandle, SimError> {
        let total = runs * run_len;
        if src_off + total > src.len {
            return Err(SimError::Program(format!(
                "DMA put reads {} doubles past LDM buffer of {}",
                src_off + total,
                src.len
            )));
        }
        let s = self.ldm.buf(src);
        for r in 0..runs {
            let data = s[src_off + r * run_len..src_off + (r + 1) * run_len].to_vec();
            self.out_puts.push((dst_off + r * dst_stride, data));
        }
        let bytes = total * 8;
        let cycles = self.dma.cost_cycles(
            DmaDirection::Put,
            bytes,
            self.block_hint.take().unwrap_or(run_len * 8),
        );
        self.stats.dma_put_bytes.add(bytes as u64);
        self.stats.dma_requests.inc();
        let h = self.enqueue_dma(cycles)?;
        self.record(crate::trace::EventKind::DmaPutIssue {
            bytes: bytes as u64,
            done_at: h.done_at,
        });
        Ok(h)
    }

    /// Fully general scatter put: `runs` runs of `run_len` doubles read
    /// from the LDM buffer at stride `src_stride` and written to the global
    /// segment at stride `dst_stride`.
    #[allow(clippy::too_many_arguments)]
    pub fn dma_put_scatter(
        &mut self,
        src: LdmBuf,
        src_off: usize,
        src_stride: usize,
        dst_off: usize,
        dst_stride: usize,
        runs: usize,
        run_len: usize,
    ) -> Result<DmaHandle, SimError> {
        let last = src_off + src_stride * runs.saturating_sub(1) + run_len;
        if last > src.len {
            return Err(SimError::Program(format!(
                "DMA scatter put reads {last} doubles past LDM buffer of {}",
                src.len
            )));
        }
        let s = self.ldm.buf(src);
        for r in 0..runs {
            let a = src_off + r * src_stride;
            self.out_puts
                .push((dst_off + r * dst_stride, s[a..a + run_len].to_vec()));
        }
        let bytes = runs * run_len * 8;
        let cycles = self.dma.cost_cycles(
            DmaDirection::Put,
            bytes,
            self.block_hint.take().unwrap_or(run_len * 8),
        );
        self.stats.dma_put_bytes.add(bytes as u64);
        self.stats.dma_requests.inc();
        let h = self.enqueue_dma(cycles)?;
        self.record(crate::trace::EventKind::DmaPutIssue {
            bytes: bytes as u64,
            done_at: h.done_at,
        });
        Ok(h)
    }

    /// Contiguous put.
    pub fn dma_put(
        &mut self,
        src: LdmBuf,
        src_off: usize,
        dst_off: usize,
        len: usize,
    ) -> Result<DmaHandle, SimError> {
        self.dma_put_strided(src, src_off, dst_off, 1, 0, len)
    }

    /// Block until a DMA transfer completes.
    pub fn dma_wait(&mut self, h: DmaHandle) {
        if h.done_at > *self.clock {
            let stall = h.done_at - *self.clock;
            self.record(crate::trace::EventKind::DmaWait { stall });
            self.stats.dma_stall_cycles.add(stall);
            *self.clock = h.done_at;
        }
    }

    /// Broadcast `data` to the other 7 CPEs on this row (`vldr`-style).
    /// Costs one P1 put per 256-bit vector. Copies `data` once; senders
    /// that already hold a shared payload should use
    /// [`Self::bcast_row_shared`] to skip even that copy.
    pub fn bcast_row(&mut self, data: &[f64]) {
        self.bcast_row_shared(Arc::from(data));
    }

    /// Broadcast `data` to the other 7 CPEs on this column (`vldc`-style).
    pub fn bcast_col(&mut self, data: &[f64]) {
        self.bcast_col_shared(Arc::from(data));
    }

    /// Zero-copy row broadcast of an already-shared payload.
    pub fn bcast_row_shared(&mut self, data: Arc<[f64]>) {
        self.charge_put(data.len());
        self.out_msgs.push(OutMsg::Bcast {
            bus: Bus::Row,
            data,
        });
    }

    /// Zero-copy column broadcast of an already-shared payload.
    pub fn bcast_col_shared(&mut self, data: Arc<[f64]>) {
        self.charge_put(data.len());
        self.out_msgs.push(OutMsg::Bcast {
            bus: Bus::Col,
            data,
        });
    }

    /// Point-to-point put along this row to column `to_col`.
    pub fn send_row(&mut self, to_col: usize, data: &[f64]) {
        assert!(to_col < crate::MESH_DIM);
        self.charge_put(data.len());
        self.out_msgs.push(OutMsg::Send {
            bus: Bus::Row,
            to: to_col,
            data: Arc::from(data),
        });
    }

    /// Point-to-point put along this column to row `to_row`.
    pub fn send_col(&mut self, to_row: usize, data: &[f64]) {
        assert!(to_row < crate::MESH_DIM);
        self.charge_put(data.len());
        self.out_msgs.push(OutMsg::Send {
            bus: Bus::Col,
            to: to_row,
            data: Arc::from(data),
        });
    }

    #[inline]
    fn charge_put(&mut self, doubles: usize) {
        let vectors = doubles.div_ceil(4) as u64;
        self.record(crate::trace::EventKind::BusSend { vectors });
        self.stats.bus_vectors_sent.add(vectors);
        *self.clock += vectors; // one put per cycle on P1
    }

    #[inline]
    fn pop_inbox(&mut self, bus: Bus) -> Result<Arc<[f64]>, SimError> {
        let inbox = match bus {
            Bus::Row => &mut self.row_inbox,
            Bus::Col => &mut self.col_inbox,
        };
        let msg = inbox.pop_front().ok_or(SimError::EmptyInbox {
            row: self.row,
            col: self.col,
            bus,
        })?;
        self.charge_get(msg.len());
        Ok(msg)
    }

    /// Receive the oldest message from the row transfer buffer.
    pub fn recv_row(&mut self) -> Result<Vec<f64>, SimError> {
        Ok(self.pop_inbox(Bus::Row)?[..].to_vec())
    }

    /// Receive the oldest message from the column transfer buffer.
    pub fn recv_col(&mut self) -> Result<Vec<f64>, SimError> {
        Ok(self.pop_inbox(Bus::Col)?[..].to_vec())
    }

    /// Zero-copy receive from the row transfer buffer: the returned slice
    /// is shared with the sender and the other receivers.
    pub fn recv_row_shared(&mut self) -> Result<Arc<[f64]>, SimError> {
        self.pop_inbox(Bus::Row)
    }

    /// Zero-copy receive from the column transfer buffer.
    pub fn recv_col_shared(&mut self) -> Result<Arc<[f64]>, SimError> {
        self.pop_inbox(Bus::Col)
    }

    /// Receive from the row transfer buffer into a reusable scratch buffer
    /// (cleared first) — allocation-free once `dst` has grown to the
    /// steady-state message size.
    pub fn recv_row_into(&mut self, dst: &mut Vec<f64>) -> Result<(), SimError> {
        let msg = self.pop_inbox(Bus::Row)?;
        dst.clear();
        dst.extend_from_slice(&msg);
        Ok(())
    }

    /// Receive from the column transfer buffer into a reusable scratch
    /// buffer (cleared first).
    pub fn recv_col_into(&mut self, dst: &mut Vec<f64>) -> Result<(), SimError> {
        let msg = self.pop_inbox(Bus::Col)?;
        dst.clear();
        dst.extend_from_slice(&msg);
        Ok(())
    }

    #[inline]
    fn charge_get(&mut self, doubles: usize) {
        let vectors = doubles.div_ceil(4) as u64;
        self.record(crate::trace::EventKind::BusRecv { vectors });
        self.stats.bus_vectors_received.add(vectors);
        *self.clock += vectors + GET_LATENCY;
    }

    /// Charge compute cycles (priced by the `sw-isa` kernel model).
    #[inline]
    pub fn charge_compute(&mut self, cycles: u64) {
        self.record(crate::trace::EventKind::Compute { cycles });
        self.stats.compute_cycles.add(cycles);
        *self.clock += cycles;
    }

    /// Record floating-point work.
    #[inline]
    pub fn add_flops(&mut self, flops: u64) {
        self.stats.flops.add(flops);
    }

    /// Record LDM → register-file traffic of an inner kernel (Eq. 5
    /// accounting, priced by the `sw-isa` instruction model).
    #[inline]
    pub fn add_ldm_reg_bytes(&mut self, bytes: u64) {
        self.stats.ldm_reg_bytes.add(bytes);
    }

    /// Record instruction issue slots consumed on each pipeline.
    #[inline]
    pub fn add_issue_slots(&mut self, p0: u64, p1: u64) {
        self.stats.p0_issue_slots.add(p0);
        self.stats.p1_issue_slots.add(p1);
    }
}

/// One core group's 8×8 mesh plus its DMA engine and put log.
/// Per-CPE outcome of one superstep: outgoing bus messages, DMA puts to
/// main memory, and the CPE program's result.
type StepResult = (Vec<OutMsg>, Vec<(usize, Vec<f64>)>, Result<(), SimError>);

/// Execute one CPE's program for one superstep: fault checks, context
/// construction, the program body. Shared verbatim by the parallel
/// [`Mesh::superstep`] and the serial [`Mesh::superstep_serial`] so both
/// charge identical cycles and key faults identically.
fn run_node<S, F>(
    node: &mut CpeNode<S>,
    f: &mut F,
    dma: DmaEngine,
    trace_on: bool,
    fault: Option<FaultPlan>,
    step: u64,
) -> StepResult
where
    F: FnMut(&mut CpeCtx<'_>, &mut S) -> Result<(), SimError>,
{
    if let Some(fp) = fault {
        if fp.cpe_dead(node.row, node.col) {
            let err = SimError::CpeOffline {
                row: node.row,
                col: node.col,
            };
            return (Vec::new(), Vec::new(), Err(err));
        }
        let id = node.row * crate::MESH_DIM + node.col;
        let stall = fp.cpe_stall(id, step);
        if stall > 0 {
            node.clock += stall;
            node.stats.fault_stall_cycles.add(stall);
        }
    }
    let mut ctx = CpeCtx {
        row: node.row,
        col: node.col,
        ldm: &mut node.ldm,
        clock: &mut node.clock,
        stats: &node.stats,
        row_inbox: &mut node.row_inbox,
        col_inbox: &mut node.col_inbox,
        dma_free: &mut node.dma_free,
        dma_seq: &mut node.dma_seq,
        dma,
        fault,
        block_hint: None,
        trace: if trace_on {
            Some(&mut node.events)
        } else {
            None
        },
        out_msgs: Vec::new(),
        out_puts: Vec::new(),
    };
    let r = f(&mut ctx, &mut node.state);
    (ctx.out_msgs, ctx.out_puts, r)
}

/// The superstep seam, shared *verbatim* by [`Mesh::finish_superstep`]
/// (one superstep per pool handoff) and the fused
/// [`Mesh::superstep_rounds`] seam (many supersteps per handoff, the seam
/// running on whichever pool lane finished the step last): surface the
/// first error deterministically, deliver bus messages in CPE-id order,
/// log DMA puts, synchronize clocks to the barrier. A free function over
/// the mesh's parts because the fused path cannot hold `&mut Mesh` while
/// the worker lanes hold raw slices into it.
#[allow(clippy::too_many_arguments)]
fn finish_superstep_parts<S>(
    dim: usize,
    fault: Option<FaultPlan>,
    trace_on: bool,
    sync_cycles: u64,
    cpes: &mut [CpeNode<S>],
    put_log: &mut Vec<(usize, Vec<f64>)>,
    msg_deliveries: &mut u64,
    supersteps: &mut u64,
    results: Vec<StepResult>,
) -> Result<(), SimError> {
    // Surface the first error deterministically (lowest CPE id) —
    // by reference, so a clean superstep clones no Results.
    if let Some(e) = results.iter().find_map(|(_, _, r)| r.as_ref().err()) {
        return Err(e.clone());
    }

    // Deliver messages in CPE-id order for determinism. Each delivery
    // bumps a mesh-global counter; with an active fault plan a delivery
    // may be dropped (the receiver's later recv then hits EmptyInbox).
    for (id, (msgs, puts, _)) in results.into_iter().enumerate() {
        let (row, col) = (id / dim, id % dim);
        for m in msgs {
            let (bus, targets, data) = match m {
                OutMsg::Bcast {
                    bus: Bus::Row,
                    data,
                } => (
                    Bus::Row,
                    (0..dim)
                        .filter(|&c| c != col)
                        .map(|c| row * dim + c)
                        .collect::<Vec<_>>(),
                    data,
                ),
                OutMsg::Bcast {
                    bus: Bus::Col,
                    data,
                } => (
                    Bus::Col,
                    (0..dim)
                        .filter(|&r| r != row)
                        .map(|r| r * dim + col)
                        .collect(),
                    data,
                ),
                OutMsg::Send {
                    bus: Bus::Row,
                    to,
                    data,
                } => (Bus::Row, vec![row * dim + to], data),
                OutMsg::Send {
                    bus: Bus::Col,
                    to,
                    data,
                } => (Bus::Col, vec![to * dim + col], data),
            };
            for target in targets {
                let seq = *msg_deliveries;
                *msg_deliveries += 1;
                if let Some(fp) = fault {
                    if fp.msg_dropped(id, target, seq) {
                        cpes[id].stats.msgs_dropped.inc();
                        continue;
                    }
                }
                match bus {
                    Bus::Row => cpes[target].row_inbox.push_back(data.clone()),
                    Bus::Col => cpes[target].col_inbox.push_back(data.clone()),
                }
            }
        }
        put_log.extend(puts);
    }

    // Barrier: clocks synchronize to the slowest CPE.
    let max_clock = cpes.iter().map(|c| c.clock).max().unwrap_or(0) + sync_cycles;
    for c in cpes {
        if trace_on {
            c.events.push(crate::trace::Event {
                at: c.clock,
                kind: crate::trace::EventKind::Barrier { to: max_clock },
            });
        }
        c.clock = max_clock;
    }
    *supersteps += 1;
    Ok(())
}

/// A raw pointer shared across the lanes of one fused superstep batch.
/// Safety is argued at each use site: work slots dereference disjoint
/// CPE/result indices, and the seam runs only when every slot of its step
/// has finished (`run_stepped`'s last-finisher guarantee).
struct RawShare<T>(*mut T);
unsafe impl<T> Send for RawShare<T> {}
unsafe impl<T> Sync for RawShare<T> {}

impl<T> RawShare<T> {
    fn get(&self) -> *mut T {
        self.0
    }
}

pub struct Mesh<S> {
    pub chip: ChipSpec,
    /// The runtime context whose worker pool executes parallel supersteps.
    rt: &'static sw_runtime::ExecutionContext,
    dma: DmaEngine,
    cpes: Vec<CpeNode<S>>,
    put_log: Vec<(usize, Vec<f64>)>,
    supersteps: u64,
    /// Cycle cost of each superstep barrier.
    pub sync_cycles: u64,
    trace_on: bool,
    fault: Option<FaultPlan>,
    /// Mesh-global bus-delivery counter keying message-drop decisions.
    msg_deliveries: u64,
}

impl<S: Send> Mesh<S> {
    /// Build a mesh whose CPE states come from `init(row, col)`, running
    /// its supersteps on the process-wide [`sw_runtime::global`] context.
    pub fn new(chip: ChipSpec, init: impl FnMut(usize, usize) -> S) -> Self {
        Self::new_on(sw_runtime::global(), chip, init)
    }

    /// [`Self::new`] pinned to a specific execution context.
    pub fn new_on(
        rt: &'static sw_runtime::ExecutionContext,
        chip: ChipSpec,
        mut init: impl FnMut(usize, usize) -> S,
    ) -> Self {
        let dim = chip.mesh_dim;
        let mut cpes = Vec::with_capacity(dim * dim);
        for row in 0..dim {
            for col in 0..dim {
                cpes.push(CpeNode {
                    row,
                    col,
                    ldm: Ldm::new(chip.ldm_bytes),
                    clock: 0,
                    dma_free: 0,
                    dma_seq: 0,
                    stats: CpeCounters::default(),
                    row_inbox: VecDeque::new(),
                    col_inbox: VecDeque::new(),
                    events: Vec::new(),
                    state: init(row, col),
                });
            }
        }
        Self {
            chip,
            rt,
            dma: DmaEngine::new(chip),
            cpes,
            put_log: Vec::new(),
            supersteps: 0,
            sync_cycles: 8,
            trace_on: false,
            fault: None,
            msg_deliveries: 0,
        }
    }

    /// The execution context this mesh's supersteps run on.
    pub fn runtime(&self) -> &'static sw_runtime::ExecutionContext {
        self.rt
    }

    /// Start recording per-CPE [`crate::trace::Event`]s.
    pub fn enable_trace(&mut self) {
        self.trace_on = true;
    }

    /// Activate a fault-injection plan for all subsequent supersteps.
    pub fn inject_faults(&mut self, plan: FaultPlan) {
        self.fault = Some(plan);
    }

    /// The active fault plan, if any.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.fault
    }

    /// Drain the recorded traces as `(row, col, events)` triples.
    pub fn take_traces(&mut self) -> Vec<(usize, usize, Vec<crate::trace::Event>)> {
        self.cpes
            .iter_mut()
            .map(|c| (c.row, c.col, std::mem::take(&mut c.events)))
            .collect()
    }

    /// Run one superstep: `f` executes on all 64 CPEs (fanned out over the
    /// context's persistent worker pool), then messages are delivered and
    /// clocks synchronize.
    pub fn superstep<F>(&mut self, f: F) -> Result<(), SimError>
    where
        F: Fn(&mut CpeCtx<'_>, &mut S) -> Result<(), SimError> + Sync,
        S: Send,
    {
        let dma = self.dma;
        let trace_on = self.trace_on;
        let fault = self.fault;
        let step = self.supersteps;
        let results: Vec<StepResult> = self.rt.map_mut(&mut self.cpes, |_, node| {
            run_node(node, &mut (&f), dma, trace_on, fault, step)
        });
        self.finish_superstep(results)
    }

    /// Run one superstep with the CPE programs executed serially, in
    /// CPE-id order, on the calling thread. Cycle accounting, fault
    /// keying, message delivery, and the barrier are identical to
    /// [`Self::superstep`] — the only difference is the absence of a
    /// thread fan-out, which makes this the cheaper choice for short
    /// supersteps (e.g. the pack/broadcast phase of a GEMM rotation)
    /// where per-task handoff overhead would dominate. `f` may be `FnMut`
    /// and borrow mutable host-side scratch.
    pub fn superstep_serial<F>(&mut self, mut f: F) -> Result<(), SimError>
    where
        F: FnMut(&mut CpeCtx<'_>, &mut S) -> Result<(), SimError>,
    {
        let dma = self.dma;
        let trace_on = self.trace_on;
        let fault = self.fault;
        let step = self.supersteps;
        let results: Vec<StepResult> = self.rt.map_mut_serial(&mut self.cpes, |_, node| {
            run_node(node, &mut f, dma, trace_on, fault, step)
        });
        self.finish_superstep(results)
    }

    /// Run a *batch* of `rounds` rounds — each a serial superstep (e.g.
    /// the pack/broadcast phase of a GEMM rotation) followed by a parallel
    /// superstep (the compute phase) — under ONE pool handoff, via
    /// [`sw_runtime::ExecutionContext::run_stepped`].
    ///
    /// Semantics are exactly `for r in 0..rounds {
    /// superstep_serial(serial_f(r, ..)); superstep(parallel_f(r, ..)) }`:
    /// same per-CPE execution order, same fault keying (the simulated step
    /// number advances once per superstep), same message delivery and
    /// barrier (the seam logic is `finish_superstep_parts`, shared verbatim),
    /// and the same abort point on error — the first failing superstep
    /// skips all remaining rounds and returns its lowest-CPE-id error.
    /// Simulated cycles, counters and outputs are bit-identical to the
    /// unfused loop at every thread count; only the number of pool
    /// handoffs changes (1 instead of `rounds` per batch at ≥2 threads).
    pub fn superstep_rounds<FS, FP>(
        &mut self,
        rounds: usize,
        serial_f: &FS,
        parallel_f: &FP,
    ) -> Result<(), SimError>
    where
        FS: Fn(usize, &mut CpeCtx<'_>, &mut S) -> Result<(), SimError> + Sync,
        FP: Fn(usize, &mut CpeCtx<'_>, &mut S) -> Result<(), SimError> + Sync,
    {
        if rounds == 0 {
            return Ok(());
        }
        let n = self.cpes.len();
        let lanes = sw_runtime::effective_threads().min(n.max(1));
        if lanes <= 1 {
            // Single-lane: the unfused loop is already handoff-free and
            // runs everything inline in the identical order.
            for r in 0..rounds {
                self.superstep_serial(|ctx, s| serial_f(r, ctx, s))?;
                self.superstep(|ctx, s| parallel_f(r, ctx, s))?;
            }
            return Ok(());
        }

        // Round 0's serial pack superstep runs inline on the posting
        // thread, exactly like the unfused loop (no handoff either way);
        // every later pack superstep runs inside the *seam* of the
        // preceding compute step, so the step schedule below is
        // compute-steps only — one wake cycle per round instead of two,
        // and no pathological one-slot steps for the lanes to idle
        // through. The simulated superstep numbering is unchanged: pack
        // `r` is superstep `step_base + 2r`, compute `r` is
        // `step_base + 2r + 1`.
        let step_base = self.supersteps;
        self.superstep_serial(|ctx, s| serial_f(0, ctx, s))?;

        let dim = self.chip.mesh_dim;
        let dma = self.dma;
        let trace_on = self.trace_on;
        let fault = self.fault;
        let sync_cycles = self.sync_cycles;
        // Same deterministic chunking as `map_mut` drives the unfused
        // parallel superstep (chunk boundaries are a pure function of
        // `(n, lanes)`; they do not affect simulation results, which are
        // per-CPE, but keeping them identical keeps the schedules
        // comparable).
        let chunk = n.div_ceil(lanes);
        let compute_slots = n.div_ceil(chunk);

        // Seam state moves out of `self` for the duration of the batch:
        // the seam runs on whichever lane finished the step last, and may
        // not alias the raw CPE slices the work slots hold.
        struct FusedSeam {
            put_log: Vec<(usize, Vec<f64>)>,
            supersteps: u64,
            msg_deliveries: u64,
            err: Option<SimError>,
        }
        let seam_state = Mutex::new(FusedSeam {
            put_log: std::mem::take(&mut self.put_log),
            supersteps: self.supersteps,
            msg_deliveries: self.msg_deliveries,
            err: None,
        });
        let mut results: Vec<Option<StepResult>> = (0..n).map(|_| None).collect();
        let res_base = RawShare(results.as_mut_ptr());
        let cpe_base = RawShare(self.cpes.as_mut_ptr());

        self.rt.run_stepped(
            rounds,
            |_| compute_slots,
            |step, slot| {
                let r = step;
                let sim_step = step_base + 2 * step as u64 + 1;
                let (lo, hi) = (slot * chunk, ((slot + 1) * chunk).min(n));
                for i in lo..hi {
                    // SAFETY: within a step, slots cover disjoint index
                    // ranges; across steps, `run_stepped`'s seam barrier
                    // orders all accesses. Each index is written once per
                    // step and consumed by that step's seam.
                    let node = unsafe { &mut *cpe_base.get().add(i) };
                    let res = run_node(
                        node,
                        &mut |ctx: &mut CpeCtx<'_>, s: &mut S| parallel_f(r, ctx, s),
                        dma,
                        trace_on,
                        fault,
                        sim_step,
                    );
                    unsafe { *res_base.get().add(i) = Some(res) };
                }
            },
            |step| {
                let mut guard = seam_state.lock().unwrap();
                let st = &mut *guard;
                let step_results: Vec<StepResult> = (0..n)
                    .map(|i| {
                        // SAFETY: every slot of this step has finished
                        // (last-finisher guarantee), so each entry is Some
                        // and no work slot aliases it.
                        unsafe { (*res_base.get().add(i)).take().expect("every CPE ran") }
                    })
                    .collect();
                // SAFETY: no work slot runs concurrently with the seam.
                let cpes = unsafe { std::slice::from_raw_parts_mut(cpe_base.get(), n) };
                let finish = |st: &mut FusedSeam, cpes: &mut [CpeNode<S>], results| {
                    match finish_superstep_parts(
                        dim,
                        fault,
                        trace_on,
                        sync_cycles,
                        cpes,
                        &mut st.put_log,
                        &mut st.msg_deliveries,
                        &mut st.supersteps,
                        results,
                    ) {
                        Ok(()) => true,
                        Err(e) => {
                            st.err = Some(e);
                            false
                        }
                    }
                };
                if !finish(st, cpes, step_results) {
                    return false;
                }
                // Next round's serial pack superstep, still inside this
                // seam: walk every CPE in id order (the same order the
                // one-slot serial walk and `superstep_serial` use), then
                // deliver/barrier it so its broadcasts are in the inboxes
                // before any lane claims the next compute step.
                let r_next = step + 1;
                if r_next < rounds {
                    let sim_step = step_base + 2 * r_next as u64;
                    let pack_results: Vec<StepResult> = cpes
                        .iter_mut()
                        .map(|node| {
                            run_node(
                                node,
                                &mut |ctx: &mut CpeCtx<'_>, s: &mut S| serial_f(r_next, ctx, s),
                                dma,
                                trace_on,
                                fault,
                                sim_step,
                            )
                        })
                        .collect();
                    if !finish(st, cpes, pack_results) {
                        return false;
                    }
                }
                true
            },
        );

        let seam = seam_state.into_inner().unwrap();
        self.put_log = seam.put_log;
        self.supersteps = seam.supersteps;
        self.msg_deliveries = seam.msg_deliveries;
        match seam.err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Deliver messages, log puts, and synchronize clocks after one
    /// superstep's per-CPE programs have run.
    fn finish_superstep(&mut self, results: Vec<StepResult>) -> Result<(), SimError> {
        finish_superstep_parts(
            self.chip.mesh_dim,
            self.fault,
            self.trace_on,
            self.sync_cycles,
            &mut self.cpes,
            &mut self.put_log,
            &mut self.msg_deliveries,
            &mut self.supersteps,
            results,
        )
    }

    /// Apply all logged DMA puts to the global output segment.
    pub fn drain_puts(&mut self, out: &mut [f64]) -> Result<(), SimError> {
        for (off, data) in self.put_log.drain(..) {
            if off + data.len() > out.len() {
                return Err(SimError::OutOfBounds {
                    offset: off,
                    len: data.len(),
                    size: out.len(),
                });
            }
            out[off..off + data.len()].copy_from_slice(&data);
        }
        Ok(())
    }

    /// Number of logged-but-undrained puts.
    pub fn pending_puts(&self) -> usize {
        self.put_log.len()
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> CgStats {
        let mut totals = CpeStats::default();
        for c in &self.cpes {
            totals.add(&c.stats.snapshot());
        }
        CgStats {
            cycles: self.cpes.iter().map(|c| c.clock).max().unwrap_or(0),
            totals,
            ldm_high_water_doubles: self.ldm_high_water() as u64,
        }
    }

    /// Peak LDM usage across the mesh, in doubles.
    pub fn ldm_high_water(&self) -> usize {
        self.cpes
            .iter()
            .map(|c| c.ldm.high_water_doubles())
            .max()
            .unwrap_or(0)
    }

    /// Supersteps executed.
    pub fn supersteps(&self) -> u64 {
        self.supersteps
    }

    /// Per-CPE `(row, col, clock, counters)` snapshot, in CPE-id order.
    /// Determinism tests use this to assert that every individual CPE —
    /// not just the aggregate — lands on identical cycles and traffic
    /// regardless of host thread count.
    pub fn cpe_snapshots(&self) -> Vec<(usize, usize, u64, CpeStats)> {
        self.cpes
            .iter()
            .map(|c| (c.row, c.col, c.clock, c.stats.snapshot()))
            .collect()
    }

    /// Check that every transfer buffer has been drained (catches plans
    /// that broadcast more than they receive).
    pub fn assert_inboxes_empty(&self) -> Result<(), SimError> {
        for c in &self.cpes {
            if !c.row_inbox.is_empty() {
                return Err(SimError::Program(format!(
                    "CPE({},{}) finished with {} unread row messages",
                    c.row,
                    c.col,
                    c.row_inbox.len()
                )));
            }
            if !c.col_inbox.is_empty() {
                return Err(SimError::Program(format!(
                    "CPE({},{}) finished with {} unread col messages",
                    c.row,
                    c.col,
                    c.col_inbox.len()
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh<u64> {
        Mesh::new(ChipSpec::sw26010(), |r, c| (r * 8 + c) as u64)
    }

    #[test]
    fn mesh_has_64_cpes_with_coords() {
        let mut m = mesh();
        m.superstep(|ctx, s| {
            assert_eq!(ctx.id() as u64, *s);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn dma_round_trip_moves_data_and_time() {
        let mut m = mesh();
        let src: Vec<f64> = (0..1024).map(|i| i as f64).collect();
        let mut out = vec![0.0; 1024];
        m.superstep(|ctx, _| {
            let buf = ctx.ldm_alloc(16)?;
            let base = ctx.id() * 16;
            let h = ctx.dma_get(buf, 0, &src, base, 16)?;
            ctx.dma_wait(h);
            assert_eq!(ctx.ldm(buf)[0], base as f64);
            let h = ctx.dma_put(buf, 0, base, 16)?;
            ctx.dma_wait(h);
            Ok(())
        })
        .unwrap();
        m.drain_puts(&mut out).unwrap();
        assert_eq!(out, src);
        let st = m.stats();
        assert!(st.cycles > 0);
        assert_eq!(st.totals.dma_get_bytes, 64 * 16 * 8);
        assert_eq!(st.totals.dma_put_bytes, 64 * 16 * 8);
    }

    #[test]
    fn strided_get_packs_runs() {
        let mut m = mesh();
        let src: Vec<f64> = (0..100).map(|i| i as f64).collect();
        m.superstep(|ctx, _| {
            if ctx.id() != 0 {
                return Ok(());
            }
            let buf = ctx.ldm_alloc(6)?;
            // 3 runs of 2, stride 10, from offset 5: [5,6, 15,16, 25,26]
            let h = ctx.dma_get_strided(buf, 0, &src, 5, 3, 10, 2)?;
            ctx.dma_wait(h);
            assert_eq!(ctx.ldm(buf), &[5.0, 6.0, 15.0, 16.0, 25.0, 26.0]);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn bus_messages_arrive_next_superstep() {
        let mut m = mesh();
        m.superstep(|ctx, _| {
            if ctx.col == 0 {
                ctx.bcast_row(&[ctx.row as f64; 4]);
            }
            Ok(())
        })
        .unwrap();
        m.superstep(|ctx, _| {
            if ctx.col != 0 {
                let msg = ctx.recv_row()?;
                assert_eq!(msg, vec![ctx.row as f64; 4]);
            }
            Ok(())
        })
        .unwrap();
        m.assert_inboxes_empty().unwrap();
    }

    #[test]
    fn recv_before_send_is_a_deadlock_error() {
        let mut m = mesh();
        let err = m
            .superstep(|ctx, _| {
                ctx.recv_col()?;
                Ok(())
            })
            .unwrap_err();
        assert!(matches!(err, SimError::EmptyInbox { bus: Bus::Col, .. }));
    }

    #[test]
    fn targeted_send_reaches_only_target() {
        let mut m = mesh();
        m.superstep(|ctx, _| {
            if ctx.row == 0 && ctx.col == 0 {
                ctx.send_row(3, &[42.0; 4]);
                ctx.send_col(5, &[7.0; 4]);
            }
            Ok(())
        })
        .unwrap();
        m.superstep(|ctx, _| {
            if ctx.row == 0 && ctx.col == 3 {
                assert_eq!(ctx.recv_row()?[0], 42.0);
            } else if ctx.row == 5 && ctx.col == 0 {
                assert_eq!(ctx.recv_col()?[0], 7.0);
            }
            Ok(())
        })
        .unwrap();
        m.assert_inboxes_empty().unwrap();
    }

    #[test]
    fn clocks_synchronize_to_slowest() {
        let mut m = mesh();
        m.superstep(|ctx, _| {
            if ctx.id() == 13 {
                ctx.charge_compute(1000);
            }
            Ok(())
        })
        .unwrap();
        let base = m.stats().cycles;
        assert!(base >= 1000);
        // Everyone advanced to the barrier.
        m.superstep(|ctx, _| {
            assert!(ctx.clock() >= 1000);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn ldm_overflow_surfaces_as_error() {
        let mut m = mesh();
        let err = m
            .superstep(|ctx, _| {
                ctx.ldm_alloc(10_000)?;
                Ok(())
            })
            .unwrap_err();
        assert!(matches!(err, SimError::Ldm(_)));
    }

    #[test]
    fn out_of_bounds_put_is_caught_at_drain() {
        let mut m = mesh();
        m.superstep(|ctx, _| {
            if ctx.id() == 0 {
                let buf = ctx.ldm_alloc(4)?;
                ctx.dma_put(buf, 0, 100, 4)?;
            }
            Ok(())
        })
        .unwrap();
        let mut out = vec![0.0; 10];
        assert!(matches!(
            m.drain_puts(&mut out),
            Err(SimError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn tracing_records_dma_and_compute_events() {
        let mut m: Mesh<()> = Mesh::new(ChipSpec::sw26010(), |_, _| ());
        m.enable_trace();
        let src = vec![1.0; 64 * 64];
        m.superstep(|ctx, _| {
            let buf = ctx.ldm_alloc(64)?;
            let h = ctx.dma_get(buf, 0, &src, ctx.id() * 64, 64)?;
            ctx.dma_wait(h);
            ctx.charge_compute(100);
            if ctx.col == 0 {
                ctx.bcast_row(&[1.0; 8]);
            }
            Ok(())
        })
        .unwrap();
        let traces = m.take_traces();
        assert_eq!(traces.len(), 64);
        let (_, _, ev0) = &traces[0];
        use crate::trace::EventKind;
        assert!(ev0
            .iter()
            .any(|e| matches!(e.kind, EventKind::DmaGetIssue { .. })));
        assert!(ev0
            .iter()
            .any(|e| matches!(e.kind, EventKind::Compute { cycles: 100 })));
        assert!(ev0
            .iter()
            .any(|e| matches!(e.kind, EventKind::Barrier { .. })));
        // CPE(0,0) broadcast.
        assert!(ev0
            .iter()
            .any(|e| matches!(e.kind, EventKind::BusSend { vectors: 2 })));
        let text = crate::trace::render_summary(&traces);
        assert!(text.contains("busiest CPE"));
        // Tracing must not perturb timing.
        let mut m2: Mesh<()> = Mesh::new(ChipSpec::sw26010(), |_, _| ());
        m2.superstep(|ctx, _| {
            let buf = ctx.ldm_alloc(64)?;
            let h = ctx.dma_get(buf, 0, &src, ctx.id() * 64, 64)?;
            ctx.dma_wait(h);
            ctx.charge_compute(100);
            if ctx.col == 0 {
                ctx.bcast_row(&[1.0; 8]);
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(m.stats().cycles, m2.stats().cycles);
    }

    #[test]
    fn injected_dma_failures_retry_and_cost_cycles() {
        use crate::fault::FaultPlan;
        let src = vec![1.0; 64 * 256];
        let run = |fault: Option<FaultPlan>| {
            let mut m: Mesh<()> = Mesh::new(ChipSpec::sw26010(), |_, _| ());
            if let Some(fp) = fault {
                m.inject_faults(fp);
            }
            for _ in 0..16 {
                m.superstep(|ctx, _| {
                    let buf = ctx.ldm_alloc(256)?;
                    let h = ctx.dma_get(buf, 0, &src, ctx.id() * 256, 256)?;
                    ctx.dma_wait(h);
                    Ok(())
                })
                .unwrap();
            }
            m.stats()
        };
        let clean = run(None);
        // 16 supersteps × 64 CPEs: a 2% per-attempt rate makes >0 retries
        // overwhelmingly likely, and with max_retries=4 a full exhaustion
        // (p ≈ 0.02^5) essentially impossible.
        let faulty = run(Some(FaultPlan::none(1234).with_dma_fail_rate(0.02)));
        assert!(faulty.totals.dma_retries > 0, "no retries injected");
        assert!(faulty.totals.fault_retry_cycles > 0);
        assert!(faulty.cycles > clean.cycles, "retries must consume cycles");
        assert_eq!(faulty.totals.dma_get_bytes, clean.totals.dma_get_bytes);
        // Determinism: the same plan replays the identical outcome.
        let replay = run(Some(FaultPlan::none(1234).with_dma_fail_rate(0.02)));
        assert_eq!(replay.cycles, faulty.cycles);
        assert_eq!(replay.totals.dma_retries, faulty.totals.dma_retries);
    }

    #[test]
    fn exhausted_dma_retries_surface_as_fault_error() {
        use crate::fault::{FaultPlan, RetryPolicy};
        let mut m = mesh();
        m.inject_faults(
            FaultPlan::none(7)
                .with_dma_fail_rate(1.0)
                .with_retry(RetryPolicy {
                    max_retries: 2,
                    base_backoff_cycles: 16,
                }),
        );
        let src = vec![0.0; 64];
        let err = m
            .superstep(|ctx, _| {
                let buf = ctx.ldm_alloc(1)?;
                ctx.dma_get(buf, 0, &src, ctx.id(), 1)?;
                Ok(())
            })
            .unwrap_err();
        assert!(matches!(err, SimError::DmaFault { attempts: 3, .. }));
        assert!(err.is_transient());
    }

    #[test]
    fn dead_cpe_reports_offline_deterministically() {
        use crate::fault::FaultPlan;
        let mut m = mesh();
        m.inject_faults(FaultPlan::none(0).with_dead_cpe(3, 5));
        let err = m.superstep(|_, _| Ok(())).unwrap_err();
        assert_eq!(err, SimError::CpeOffline { row: 3, col: 5 });
        assert!(!err.is_transient());
    }

    #[test]
    fn dropped_broadcast_becomes_empty_inbox() {
        use crate::fault::FaultPlan;
        let mut m = mesh();
        // Drop everything: every receiver must then deadlock on recv.
        m.inject_faults(FaultPlan::none(3).with_msg_drop_rate(1.0));
        m.superstep(|ctx, _| {
            if ctx.col == 0 {
                ctx.bcast_row(&[1.0; 4]);
            }
            Ok(())
        })
        .unwrap();
        assert!(m.stats().totals.msgs_dropped > 0);
        let err = m
            .superstep(|ctx, _| {
                if ctx.col != 0 {
                    ctx.recv_row()?;
                }
                Ok(())
            })
            .unwrap_err();
        assert!(matches!(err, SimError::EmptyInbox { bus: Bus::Row, .. }));
    }

    #[test]
    fn cpe_stalls_slow_the_mesh_without_changing_results() {
        use crate::fault::FaultPlan;
        let src = vec![2.0; 64 * 32];
        let run = |fault: Option<FaultPlan>| {
            let mut m: Mesh<Vec<f64>> = Mesh::new(ChipSpec::sw26010(), |_, _| Vec::new());
            if let Some(fp) = fault {
                m.inject_faults(fp);
            }
            for _ in 0..8 {
                m.superstep(|ctx, s| {
                    let buf = ctx.ldm_alloc(32)?;
                    let h = ctx.dma_get(buf, 0, &src, ctx.id() * 32, 32)?;
                    ctx.dma_wait(h);
                    s.push(ctx.ldm(buf).iter().sum());
                    Ok(())
                })
                .unwrap();
            }
            m
        };
        let clean = run(None);
        let faulty = run(Some(FaultPlan::none(5).with_cpe_stalls(0.2, 5_000)));
        assert!(faulty.stats().totals.fault_stall_cycles > 0);
        assert!(faulty.stats().cycles > clean.stats().cycles);
        for (a, b) in clean.cpes.iter().zip(faulty.cpes.iter()) {
            assert_eq!(a.state, b.state, "stalls must not change data");
        }
    }

    #[test]
    fn fused_rounds_are_bit_identical_to_unfused_loop() {
        // A 6-round broadcast/compute rotation run both ways, at several
        // thread counts: per-CPE clocks, counters, states, put logs and
        // the superstep count must match exactly; only handoffs differ.
        let serial_phase = |r: usize, ctx: &mut CpeCtx<'_>, _s: &mut Vec<f64>| {
            if ctx.col == r {
                ctx.bcast_row(&[r as f64, ctx.row as f64, 3.0, 4.0]);
            }
            Ok(())
        };
        let parallel_phase = |r: usize, ctx: &mut CpeCtx<'_>, s: &mut Vec<f64>| {
            if ctx.col != r {
                let msg = ctx.recv_row()?;
                s.push(msg[0] + msg[1]);
            }
            ctx.charge_compute(10 + ctx.id() as u64);
            let buf = ctx.ldm_alloc(2)?;
            ctx.dma_put(buf, 0, ctx.id() * 2, 2)?;
            Ok(())
        };
        // A private context: the handoff-count assertion below must not
        // race other tests posting jobs to the global pool.
        let rt: &'static sw_runtime::ExecutionContext =
            Box::leak(Box::new(sw_runtime::ExecutionContext::new()));
        let build = || Mesh::<Vec<f64>>::new_on(rt, ChipSpec::sw26010(), |_, _| Vec::new());
        for threads in [1, 2, 4, 8] {
            sw_runtime::with_threads(threads, || {
                let mut unfused = build();
                for r in 0..6 {
                    unfused
                        .superstep_serial(|ctx, s| serial_phase(r, ctx, s))
                        .unwrap();
                    unfused
                        .superstep(|ctx, s| parallel_phase(r, ctx, s))
                        .unwrap();
                }
                let mut fused = build();
                let before = fused.runtime().pool_handoffs();
                fused
                    .superstep_rounds(6, &serial_phase, &parallel_phase)
                    .unwrap();
                let fused_handoffs = fused.runtime().pool_handoffs() - before;
                assert_eq!(fused.supersteps(), unfused.supersteps());
                assert_eq!(fused.cpe_snapshots(), unfused.cpe_snapshots());
                assert_eq!(fused.put_log, unfused.put_log, "threads = {threads}");
                for (a, b) in fused.cpes.iter().zip(unfused.cpes.iter()) {
                    assert_eq!(a.state, b.state);
                }
                if threads > 1 {
                    assert_eq!(fused_handoffs, 1, "one handoff for the whole batch");
                }
            });
        }
    }

    #[test]
    fn fused_rounds_abort_on_error_like_the_unfused_loop() {
        let serial_phase = |r: usize, ctx: &mut CpeCtx<'_>, _s: &mut u64| {
            if ctx.col == r {
                ctx.bcast_row(&[1.0; 4]);
            }
            Ok(())
        };
        let parallel_phase = |r: usize, ctx: &mut CpeCtx<'_>, s: &mut u64| {
            if r == 2 && ctx.id() == 9 {
                return Err(SimError::Program("round 2 blows up".into()));
            }
            if ctx.col != r {
                ctx.recv_row()?;
            }
            *s += 1;
            Ok(())
        };
        let run = |fused: bool| {
            let mut m = Mesh::<u64>::new(ChipSpec::sw26010(), |_, _| 0);
            let err = if fused {
                m.superstep_rounds(6, &serial_phase, &parallel_phase)
                    .unwrap_err()
            } else {
                (|| {
                    for r in 0..6 {
                        m.superstep_serial(|ctx, s| serial_phase(r, ctx, s))?;
                        m.superstep(|ctx, s| parallel_phase(r, ctx, s))?;
                    }
                    Ok(())
                })()
                .unwrap_err()
            };
            (m.supersteps(), err)
        };
        for threads in [1, 4] {
            sw_runtime::with_threads(threads, || {
                let (fused_steps, fused_err) = run(true);
                let (unfused_steps, unfused_err) = run(false);
                assert_eq!(fused_err, unfused_err, "threads = {threads}");
                assert_eq!(fused_steps, unfused_steps, "abort point matches");
            });
        }
    }

    #[test]
    fn double_buffering_hides_dma_latency() {
        // Two plans moving identical data: one waits for each DMA before
        // computing, one overlaps the next get with current compute. The
        // overlap must be strictly faster.
        let src = vec![1.0; 64 * 512];
        let compute_per_tile = 4000u64;
        let tiles = 8usize;

        let run = |overlap: bool| -> u64 {
            let mut m: Mesh<()> = Mesh::new(ChipSpec::sw26010(), |_, _| ());
            m.superstep(|ctx, _| {
                let bufs = ctx.ldm_alloc_pair(512)?;
                if overlap {
                    let mut pending = ctx.dma_get(bufs[0], 0, &src, 0, 512)?;
                    for t in 0..tiles {
                        let cur = pending;
                        if t + 1 < tiles {
                            pending = ctx.dma_get(bufs[(t + 1) % 2], 0, &src, 0, 512)?;
                        }
                        ctx.dma_wait(cur);
                        ctx.charge_compute(compute_per_tile);
                    }
                } else {
                    for t in 0..tiles {
                        let h = ctx.dma_get(bufs[t % 2], 0, &src, 0, 512)?;
                        ctx.dma_wait(h);
                        ctx.charge_compute(compute_per_tile);
                    }
                }
                Ok(())
            })
            .unwrap();
            m.stats().cycles
        };

        let serial = run(false);
        let overlapped = run(true);
        assert!(
            overlapped < serial,
            "overlap {overlapped} !< serial {serial}"
        );
    }
}
