//! The main-memory map: per-CG private segments and the chip-wide shared
//! segment (§III-B).
//!
//! "Each CG connects to its own 8GB DDR3 memory ... Users can explicitly
//! set the size of each CG's private memory space, and the size of the
//! memory space shared among the four CGs."
//!
//! swDNN's §III-D strategy allocates every convolution operand in the
//! *private* segment of the CG that processes it (output-row
//! partitioning), so no transfer ever crosses the NoC. This module models
//! the memory map itself: segment layout, an allocator over each segment,
//! and classification of an access (local / remote / shared) so the
//! [`crate::noc::NocModel`] can price placements.

use std::fmt;

/// A region of one CG's DDR3 or of the shared window.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Segment {
    /// Private to core group `cg`.
    Private { cg: usize },
    /// Visible to all CGs through the NoC.
    Shared,
}

/// A chip memory map: how much of each CG's 8 GB is private vs contributed
/// to the shared window.
#[derive(Clone, Debug)]
pub struct MemoryMap {
    /// Bytes of private space per CG.
    pub private_bytes: Vec<u64>,
    /// Bytes of the shared window.
    pub shared_bytes: u64,
    // Bump cursors.
    private_used: Vec<u64>,
    shared_used: u64,
}

/// An allocated block.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MemBlock {
    pub segment: Segment,
    pub offset: u64,
    pub bytes: u64,
}

/// Allocation failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemExhausted {
    pub segment: Segment,
    pub requested: u64,
    pub available: u64,
}

impl fmt::Display for MemExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} exhausted: requested {} bytes, {} available",
            self.segment, self.requested, self.available
        )
    }
}

impl std::error::Error for MemExhausted {}

impl MemoryMap {
    /// The paper's default: 8 GB per CG, all private (the swDNN layout),
    /// `cgs` core groups.
    pub fn all_private(cgs: usize) -> Self {
        Self {
            private_bytes: vec![8 << 30; cgs],
            shared_bytes: 0,
            private_used: vec![0; cgs],
            shared_used: 0,
        }
    }

    /// Split each CG's memory: `shared_per_cg` bytes contributed to the
    /// shared window, the rest private.
    pub fn with_shared(cgs: usize, shared_per_cg: u64) -> Self {
        assert!(shared_per_cg <= 8 << 30);
        Self {
            private_bytes: vec![(8 << 30) - shared_per_cg; cgs],
            shared_bytes: shared_per_cg * cgs as u64,
            private_used: vec![0; cgs],
            shared_used: 0,
        }
    }

    /// Allocate `bytes` in a segment (bump allocation, 128-byte aligned —
    /// the DMA alignment sweet spot of Table II).
    pub fn alloc(&mut self, segment: Segment, bytes: u64) -> Result<MemBlock, MemExhausted> {
        let aligned = bytes.div_ceil(128) * 128;
        let (cap, used) = match segment {
            Segment::Private { cg } => (self.private_bytes[cg], &mut self.private_used[cg]),
            Segment::Shared => (self.shared_bytes, &mut self.shared_used),
        };
        if *used + aligned > cap {
            return Err(MemExhausted {
                segment,
                requested: aligned,
                available: cap - *used,
            });
        }
        let offset = *used;
        *used += aligned;
        Ok(MemBlock {
            segment,
            offset,
            bytes,
        })
    }

    /// Is an access by core group `cg` to this block local, remote-private,
    /// or shared?
    pub fn classify(&self, cg: usize, block: &MemBlock) -> AccessClass {
        match block.segment {
            Segment::Private { cg: owner } if owner == cg => AccessClass::Local,
            Segment::Private { .. } => AccessClass::RemotePrivate,
            Segment::Shared => AccessClass::Shared,
        }
    }

    /// Free bytes remaining in a segment.
    pub fn free_bytes(&self, segment: Segment) -> u64 {
        match segment {
            Segment::Private { cg } => self.private_bytes[cg] - self.private_used[cg],
            Segment::Shared => self.shared_bytes - self.shared_used,
        }
    }
}

/// How an access relates to the accessing CG.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessClass {
    /// Own memory controller: DDR3 peak applies.
    Local,
    /// Another CG's private memory: architecturally invalid for DMA — the
    /// data must be staged through the shared window.
    RemotePrivate,
    /// The shared window: NoC bandwidth applies.
    Shared,
}

/// The §III-D operand placement: every tensor of CG `cg`'s output-row
/// slice goes into that CG's private segment. Returns one block per CG.
pub fn partition_private(
    map: &mut MemoryMap,
    bytes_per_cg: u64,
) -> Result<Vec<MemBlock>, MemExhausted> {
    (0..map.private_bytes.len())
        .map(|cg| map.alloc(Segment::Private { cg }, bytes_per_cg))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_private_map_has_no_shared_space() {
        let mut map = MemoryMap::all_private(4);
        assert_eq!(map.shared_bytes, 0);
        assert!(map.alloc(Segment::Shared, 1).is_err());
        assert!(map.alloc(Segment::Private { cg: 2 }, 1 << 20).is_ok());
    }

    #[test]
    fn shared_window_pools_contributions() {
        let map = MemoryMap::with_shared(4, 1 << 30);
        assert_eq!(map.shared_bytes, 4 << 30);
        assert_eq!(map.private_bytes[0], (8u64 << 30) - (1 << 30));
    }

    #[test]
    fn allocation_is_aligned_and_bounded() {
        let mut map = MemoryMap::with_shared(2, 1 << 20);
        let a = map.alloc(Segment::Shared, 100).unwrap();
        let b = map.alloc(Segment::Shared, 100).unwrap();
        assert_eq!(a.offset, 0);
        assert_eq!(b.offset, 128, "128-byte alignment");
        let err = map.alloc(Segment::Shared, 4 << 20).unwrap_err();
        assert!(err.to_string().contains("exhausted"));
    }

    #[test]
    fn classification_matches_ownership() {
        let mut map = MemoryMap::with_shared(4, 1 << 20);
        let own = map.alloc(Segment::Private { cg: 1 }, 64).unwrap();
        let shared = map.alloc(Segment::Shared, 64).unwrap();
        assert_eq!(map.classify(1, &own), AccessClass::Local);
        assert_eq!(map.classify(0, &own), AccessClass::RemotePrivate);
        assert_eq!(map.classify(3, &shared), AccessClass::Shared);
    }

    #[test]
    fn paper_partitioning_gives_every_cg_local_data() {
        let mut map = MemoryMap::all_private(4);
        let blocks = partition_private(&mut map, 100 << 20).unwrap();
        assert_eq!(blocks.len(), 4);
        for (cg, block) in blocks.iter().enumerate() {
            assert_eq!(map.classify(cg, block), AccessClass::Local);
        }
    }

    #[test]
    fn exhaustion_reports_availability() {
        let mut map = MemoryMap::with_shared(1, 8 << 30); // everything shared
        assert_eq!(map.free_bytes(Segment::Private { cg: 0 }), 0);
        let err = map.alloc(Segment::Private { cg: 0 }, 1).unwrap_err();
        assert_eq!(err.available, 0);
    }
}
