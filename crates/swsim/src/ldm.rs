//! The per-CPE Local Directive Memory (LDM / scratch-pad), §III-B.
//!
//! Each CPE has 64 KB of software-managed fast memory and *no* data cache.
//! Kernels must place every operand tile here explicitly; exceeding the
//! capacity is a hard failure. The allocator is a bump allocator (tiles are
//! allocated once at plan setup and live for the whole kernel, so nothing
//! fancier is needed) with 32-byte alignment so every buffer can serve
//! 256-bit vector loads.

use std::fmt;

/// Handle to an allocated LDM region, in doubles.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LdmBuf {
    pub offset: usize,
    pub len: usize,
}

impl LdmBuf {
    pub fn range(&self) -> std::ops::Range<usize> {
        self.offset..self.offset + self.len
    }
}

/// Allocation failure: the plan asked for more scratchpad than exists.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LdmOverflow {
    pub requested_doubles: usize,
    pub used_doubles: usize,
    pub capacity_doubles: usize,
}

impl fmt::Display for LdmOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LDM overflow: requested {} doubles with {}/{} in use",
            self.requested_doubles, self.used_doubles, self.capacity_doubles
        )
    }
}

impl std::error::Error for LdmOverflow {}

/// One CPE's scratchpad.
#[derive(Clone, Debug)]
pub struct Ldm {
    data: Vec<f64>,
    top: usize,
    high_water: usize,
}

/// Alignment of every allocation, in doubles (32 B = one vector register).
const ALIGN_DOUBLES: usize = 4;

impl Ldm {
    /// A scratchpad of `capacity_bytes` (64 KB on SW26010).
    pub fn new(capacity_bytes: usize) -> Self {
        let doubles = capacity_bytes / 8;
        Self {
            data: vec![0.0; doubles],
            top: 0,
            high_water: 0,
        }
    }

    pub fn capacity_doubles(&self) -> usize {
        self.data.len()
    }

    pub fn used_doubles(&self) -> usize {
        self.top
    }

    /// Peak usage over the lifetime of this LDM.
    pub fn high_water_doubles(&self) -> usize {
        self.high_water
    }

    /// Allocate `len` doubles (rounded up to vector alignment).
    pub fn alloc(&mut self, len: usize) -> Result<LdmBuf, LdmOverflow> {
        let padded = len.div_ceil(ALIGN_DOUBLES) * ALIGN_DOUBLES;
        if self.top + padded > self.data.len() {
            return Err(LdmOverflow {
                requested_doubles: padded,
                used_doubles: self.top,
                capacity_doubles: self.data.len(),
            });
        }
        let buf = LdmBuf {
            offset: self.top,
            len,
        };
        self.top += padded;
        self.high_water = self.high_water.max(self.top);
        Ok(buf)
    }

    /// Allocate a double-buffer pair of `len` doubles each (§IV-A's
    /// "Double Buffering ... overlap DMA with computing").
    pub fn alloc_pair(&mut self, len: usize) -> Result<[LdmBuf; 2], LdmOverflow> {
        Ok([self.alloc(len)?, self.alloc(len)?])
    }

    /// Release everything (between independent kernel launches).
    pub fn reset(&mut self) {
        self.top = 0;
    }

    /// Read-only view of a buffer.
    #[inline]
    pub fn buf(&self, b: LdmBuf) -> &[f64] {
        &self.data[b.range()]
    }

    /// Mutable view of a buffer.
    #[inline]
    pub fn buf_mut(&mut self, b: LdmBuf) -> &mut [f64] {
        &mut self.data[b.range()]
    }

    /// The whole scratchpad, mutable — inner kernels index across several
    /// disjoint buffers at once and a single borrow is the idiomatic way to
    /// do so without split-borrow gymnastics.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned_and_bump() {
        let mut ldm = Ldm::new(64 * 1024);
        let a = ldm.alloc(5).unwrap();
        let b = ldm.alloc(3).unwrap();
        assert_eq!(a.offset, 0);
        assert_eq!(b.offset, 8, "5 doubles round up to 8 (32B alignment)");
        assert_eq!(ldm.used_doubles(), 12);
    }

    #[test]
    fn overflow_is_reported_with_context() {
        let mut ldm = Ldm::new(256); // 32 doubles
        assert!(ldm.alloc(16).is_ok());
        let err = ldm.alloc(32).unwrap_err();
        assert_eq!(err.used_doubles, 16);
        assert_eq!(err.capacity_doubles, 32);
        assert!(err.to_string().contains("LDM overflow"));
    }

    #[test]
    fn capacity_matches_sw26010() {
        let ldm = Ldm::new(64 * 1024);
        assert_eq!(ldm.capacity_doubles(), 8192);
    }

    #[test]
    fn double_buffer_pair_is_disjoint() {
        let mut ldm = Ldm::new(64 * 1024);
        let [a, b] = ldm.alloc_pair(100).unwrap();
        assert!(a.range().end <= b.range().start);
    }

    #[test]
    fn reset_reclaims_but_high_water_persists() {
        let mut ldm = Ldm::new(64 * 1024);
        ldm.alloc(4000).unwrap();
        ldm.reset();
        assert_eq!(ldm.used_doubles(), 0);
        assert_eq!(ldm.high_water_doubles(), 4000);
        assert!(ldm.alloc(8000).is_ok());
    }

    #[test]
    fn buffers_read_back_written_values() {
        let mut ldm = Ldm::new(1024);
        let b = ldm.alloc(8).unwrap();
        ldm.buf_mut(b)
            .copy_from_slice(&[1., 2., 3., 4., 5., 6., 7., 8.]);
        assert_eq!(ldm.buf(b)[3], 4.0);
    }
}
