//! Deterministic, seeded fault injection for the simulated SW26010.
//!
//! A [`FaultPlan`] describes *which* hardware misbehaviors to inject and at
//! *what rate*; the mesh consults it at well-defined points (DMA request
//! issue, bus-message delivery, superstep entry). Every decision is a pure
//! hash of `(seed, stream, actor, sequence)` — never of wall-clock time or
//! thread scheduling — so a given plan replays the identical fault pattern
//! on every run regardless of how the worker pool schedules the 64 CPE
//! closures.
//!
//! Fault classes:
//!
//! * **DMA failures** — a transfer aborts and must be re-issued. The mesh
//!   retries up to [`RetryPolicy::max_retries`] times with exponential
//!   backoff *in cycles*; both the wasted transfer time and the backoff are
//!   charged into the request's completion time, so retries visibly consume
//!   the slack that double buffering (§IV-A) otherwise hides. Exhausted
//!   retries surface as [`crate::SimError::DmaFault`].
//! * **DMA stalls** — a transfer completes but takes
//!   [`FaultPlan::dma_stall_cycles`] longer (e.g. DMA-engine contention).
//! * **Message drops** — a register-communication payload vanishes between
//!   sender and receiver transfer buffer. The receiver's later `recv` hits
//!   [`crate::SimError::EmptyInbox`], exactly like the hardware deadlock.
//! * **CPE stalls** — a core loses [`FaultPlan::cpe_stall_cycles`] at the
//!   start of a superstep (OS noise, thermal throttle).
//! * **Dead CPEs** — cores in [`FaultPlan::dead_mask`] never execute;
//!   every superstep reports [`crate::SimError::CpeOffline`] so the caller
//!   can re-plan on a degraded mesh.

/// How the mesh retries failed DMA transfers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Re-issues after the first failure; 0 disables retrying.
    pub max_retries: u32,
    /// Backoff before retry `k` is `base_backoff_cycles << k`.
    pub base_backoff_cycles: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            base_backoff_cycles: 256,
        }
    }
}

/// Seeded description of the faults to inject into one [`crate::Mesh`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Root seed; all injection decisions derive from it.
    pub seed: u64,
    /// Probability that one DMA attempt aborts and needs a re-issue.
    pub dma_fail_rate: f64,
    /// Probability that a DMA transfer is slowed by `dma_stall_cycles`.
    pub dma_stall_rate: f64,
    /// Extra cycles added to a stalled DMA transfer.
    pub dma_stall_cycles: u64,
    /// Probability that a delivered bus message is dropped.
    pub msg_drop_rate: f64,
    /// Probability that a CPE stalls at the start of a superstep.
    pub cpe_stall_rate: f64,
    /// Extra cycles a stalled CPE loses.
    pub cpe_stall_cycles: u64,
    /// Bitmask of permanently-offline CPEs; bit `row * 8 + col`.
    pub dead_mask: u64,
    /// Probability that a whole *chip* (one node of a multi-chip cluster)
    /// fails during a training step. Consulted by the cluster layer, not
    /// the mesh: a chip failure kills all 4 CGs at once, so it is decided
    /// at chip grain rather than per CPE.
    pub chip_fail_rate: f64,
    /// DMA retry policy applied inside the mesh.
    pub retry: RetryPolicy,
}

/// Independent decision streams: keeps e.g. the DMA-failure pattern stable
/// when an unrelated rate (message drops) is toggled on the same seed.
#[derive(Clone, Copy, Debug)]
#[repr(u64)]
enum Stream {
    DmaFail = 1,
    DmaStall = 2,
    MsgDrop = 3,
    CpeStall = 4,
    ChipFail = 5,
    ChipFailPoint = 6,
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// A plan injecting nothing — useful as a builder base.
    pub fn none(seed: u64) -> Self {
        FaultPlan {
            seed,
            dma_fail_rate: 0.0,
            dma_stall_rate: 0.0,
            dma_stall_cycles: 0,
            msg_drop_rate: 0.0,
            cpe_stall_rate: 0.0,
            cpe_stall_cycles: 0,
            dead_mask: 0,
            chip_fail_rate: 0.0,
            retry: RetryPolicy::default(),
        }
    }

    pub fn with_dma_fail_rate(mut self, rate: f64) -> Self {
        self.dma_fail_rate = rate;
        self
    }

    pub fn with_dma_stalls(mut self, rate: f64, cycles: u64) -> Self {
        self.dma_stall_rate = rate;
        self.dma_stall_cycles = cycles;
        self
    }

    pub fn with_msg_drop_rate(mut self, rate: f64) -> Self {
        self.msg_drop_rate = rate;
        self
    }

    pub fn with_cpe_stalls(mut self, rate: f64, cycles: u64) -> Self {
        self.cpe_stall_rate = rate;
        self.cpe_stall_cycles = cycles;
        self
    }

    /// Mark CPE `(row, col)` permanently offline.
    pub fn with_dead_cpe(mut self, row: usize, col: usize) -> Self {
        self.dead_mask |= 1u64 << (row * 8 + col);
        self
    }

    /// Probability that a chip drops out of a training step.
    pub fn with_chip_fail_rate(mut self, rate: f64) -> Self {
        self.chip_fail_rate = rate;
        self
    }

    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Same fault rates, different random pattern. Used by resilient
    /// executors re-running a failed attempt: replaying the *same* seed
    /// would deterministically reproduce the exact failure.
    pub fn reseed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// True when any injection can actually occur.
    pub fn is_active(&self) -> bool {
        self.dma_fail_rate > 0.0
            || self.dma_stall_rate > 0.0
            || self.msg_drop_rate > 0.0
            || self.cpe_stall_rate > 0.0
            || self.dead_mask != 0
            || self.chip_fail_rate > 0.0
    }

    /// Uniform draw in `[0, 1)` for `(stream, actor, seq)` — pure in the
    /// plan seed, independent of evaluation order.
    fn roll(&self, stream: Stream, actor: u64, seq: u64) -> f64 {
        let mut h = splitmix64(self.seed ^ (stream as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        h = splitmix64(h ^ actor);
        h = splitmix64(h ^ seq);
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Does attempt `attempt` of DMA request `seq` on CPE `cpe_id` abort?
    pub fn dma_attempt_fails(&self, cpe_id: usize, seq: u64, attempt: u32) -> bool {
        self.dma_fail_rate > 0.0
            && self.roll(
                Stream::DmaFail,
                cpe_id as u64,
                seq.wrapping_mul(64) + attempt as u64,
            ) < self.dma_fail_rate
    }

    /// Extra cycles injected into DMA request `seq` on CPE `cpe_id`.
    pub fn dma_stall(&self, cpe_id: usize, seq: u64) -> u64 {
        if self.dma_stall_rate > 0.0
            && self.roll(Stream::DmaStall, cpe_id as u64, seq) < self.dma_stall_rate
        {
            self.dma_stall_cycles
        } else {
            0
        }
    }

    /// Is delivery `seq` (a mesh-global delivery counter) dropped on the
    /// link `sender → receiver`?
    pub fn msg_dropped(&self, sender_id: usize, receiver_id: usize, seq: u64) -> bool {
        self.msg_drop_rate > 0.0
            && self.roll(
                Stream::MsgDrop,
                (sender_id as u64) << 32 | receiver_id as u64,
                seq,
            ) < self.msg_drop_rate
    }

    /// Cycles CPE `cpe_id` loses at the start of superstep `superstep`.
    pub fn cpe_stall(&self, cpe_id: usize, superstep: u64) -> u64 {
        if self.cpe_stall_rate > 0.0
            && self.roll(Stream::CpeStall, cpe_id as u64, superstep) < self.cpe_stall_rate
        {
            self.cpe_stall_cycles
        } else {
            0
        }
    }

    /// Is CPE `(row, col)` permanently offline?
    pub fn cpe_dead(&self, row: usize, col: usize) -> bool {
        self.dead_mask & (1u64 << (row * 8 + col)) != 0
    }

    /// Does chip `chip` fail during training step `step`? Pure in the
    /// seed — the same plan replays the identical failure pattern across
    /// runs and worker-pool thread counts, which is what lets the elastic
    /// trainer's reshard protocol be asserted bit-for-bit.
    pub fn chip_fails(&self, chip: usize, step: u64) -> bool {
        self.chip_fail_rate > 0.0
            && self.roll(Stream::ChipFail, chip as u64, step) < self.chip_fail_rate
    }

    /// Where in the step chip `chip` dies, as a fraction in `[0, 1)` of
    /// its assigned microbatches completed before the failure. Drawn from
    /// an independent stream so retuning the failure *rate* never moves
    /// the failure *point* of a step that fails either way.
    pub fn chip_fail_progress(&self, chip: usize, step: u64) -> f64 {
        self.roll(Stream::ChipFailPoint, chip as u64, step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_in_the_seed() {
        let p = FaultPlan::none(42)
            .with_dma_fail_rate(0.3)
            .with_msg_drop_rate(0.2);
        let q = FaultPlan::none(42)
            .with_dma_fail_rate(0.3)
            .with_msg_drop_rate(0.2);
        for id in 0..64 {
            for seq in 0..100 {
                assert_eq!(
                    p.dma_attempt_fails(id, seq, 0),
                    q.dma_attempt_fails(id, seq, 0)
                );
                assert_eq!(
                    p.msg_dropped(id, 63 - id, seq),
                    q.msg_dropped(id, 63 - id, seq)
                );
            }
        }
    }

    #[test]
    fn reseed_changes_the_pattern_but_not_the_rates() {
        let p = FaultPlan::none(1).with_dma_fail_rate(0.5);
        let q = p.reseed(2);
        assert_eq!(p.dma_fail_rate, q.dma_fail_rate);
        let differs =
            (0..200).any(|seq| p.dma_attempt_fails(0, seq, 0) != q.dma_attempt_fails(0, seq, 0));
        assert!(differs, "reseeding must change the injected pattern");
    }

    #[test]
    fn rates_are_statistically_respected() {
        let p = FaultPlan::none(7).with_dma_fail_rate(0.1);
        let n = 100_000;
        let hits = (0..n).filter(|&seq| p.dma_attempt_fails(3, seq, 0)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.01, "observed rate {rate}");
    }

    #[test]
    fn streams_are_independent() {
        // Toggling the message-drop rate must not change the DMA pattern.
        let p = FaultPlan::none(11).with_dma_fail_rate(0.2);
        let q = p.with_msg_drop_rate(0.9);
        for seq in 0..500 {
            assert_eq!(
                p.dma_attempt_fails(5, seq, 0),
                q.dma_attempt_fails(5, seq, 0)
            );
        }
    }

    #[test]
    fn zero_rate_plan_injects_nothing() {
        let p = FaultPlan::none(99);
        assert!(!p.is_active());
        for seq in 0..1000 {
            assert!(!p.dma_attempt_fails(0, seq, 0));
            assert_eq!(p.dma_stall(0, seq), 0);
            assert!(!p.msg_dropped(0, 1, seq));
            assert_eq!(p.cpe_stall(0, seq), 0);
        }
    }

    #[test]
    fn chip_failures_are_deterministic_and_rate_independent_of_point() {
        let p = FaultPlan::none(3).with_chip_fail_rate(0.25);
        let q = FaultPlan::none(3).with_chip_fail_rate(0.25);
        assert!(p.is_active());
        let mut any = false;
        for chip in 0..8 {
            for step in 0..64 {
                assert_eq!(p.chip_fails(chip, step), q.chip_fails(chip, step));
                any |= p.chip_fails(chip, step);
                let prog = p.chip_fail_progress(chip, step);
                assert!((0.0..1.0).contains(&prog));
            }
        }
        assert!(any, "a 25% rate over 512 draws must hit");
        // Retuning the rate leaves the failure point of a given (chip,
        // step) untouched — independent streams.
        let r = FaultPlan::none(3).with_chip_fail_rate(0.9);
        assert_eq!(p.chip_fail_progress(2, 7), r.chip_fail_progress(2, 7));
        // Rate 0 never fails.
        let z = FaultPlan::none(3);
        assert!((0..64).all(|s| !z.chip_fails(0, s)));
    }

    #[test]
    fn dead_mask_marks_exact_cpes() {
        let p = FaultPlan::none(0).with_dead_cpe(2, 3).with_dead_cpe(7, 7);
        assert!(p.cpe_dead(2, 3));
        assert!(p.cpe_dead(7, 7));
        assert!(!p.cpe_dead(3, 2));
        assert!(p.is_active());
    }
}
