//! Extension bench: the full training step on the simulated chip.
//!
//! The paper focuses on the forward convolution kernel but motivates swDNN
//! with *training*. This harness times all three convolution passes of a
//! training step — forward, backward-data (lowered to a forward
//! convolution with flipped/transposed filters), backward-filter (the
//! dedicated pixel-reduction rotation plan) — at paper scale, and reports
//! the aggregate step throughput on the 4-CG chip.

use sw_bench::report::{f, Table};
use sw_perfmodel::ChipSpec;
use sw_tensor::ConvShape;
use swdnn::plans::BwdFilterPlan;
use swdnn::{Conv2d, Executor};

fn main() {
    let chip = ChipSpec::sw26010();
    let exec = Executor::new();
    let mut t = Table::new(
        "Training-step passes on the simulated SW26010 (per CG)",
        &["Ni", "No", "pass", "plan", "Gflops/CG", "eff%", "ms/chip"],
    );

    let mut total_ms = [0.0f64; 3];
    for (ni, no) in [(64usize, 64usize), (128, 128), (256, 128)] {
        let shape = ConvShape::new(128, ni, no, 64, 64, 3, 3);
        let conv = Conv2d::new(shape).unwrap();

        // Forward.
        let fwd = exec.run_config(&shape).expect("forward");
        let fwd_ms = shape.flops() as f64 / (fwd.gflops_cg * chip.core_groups as f64 * 1e9) * 1e3;
        total_ms[0] += fwd_ms;
        t.row(vec![
            ni.to_string(),
            no.to_string(),
            "forward".into(),
            fwd.plan_name.clone(),
            f(fwd.gflops_cg, 0),
            f(100.0 * fwd.efficiency, 1),
            f(fwd_ms, 2),
        ]);

        // Backward data = forward conv of the derived shape.
        let bwd_shape = conv.backward_data_shape();
        let bwd = exec.run_config(&bwd_shape).expect("backward data");
        let bwd_ms =
            bwd_shape.flops() as f64 / (bwd.gflops_cg * chip.core_groups as f64 * 1e9) * 1e3;
        total_ms[1] += bwd_ms;
        t.row(vec![
            ni.to_string(),
            no.to_string(),
            "bwd-data".into(),
            bwd.plan_name.clone(),
            f(bwd.gflops_cg, 0),
            f(100.0 * bwd.efficiency, 1),
            f(bwd_ms, 2),
        ]);

        // Backward filter: the dedicated rotation plan.
        let plan = BwdFilterPlan::auto(&shape);
        let timing = plan.time_full_shape(&shape).expect("backward filter");
        let g = timing.gflops(&shape, &chip);
        let bwf_ms = shape.flops() as f64 / (g * chip.core_groups as f64 * 1e9) * 1e3;
        total_ms[2] += bwf_ms;
        t.row(vec![
            ni.to_string(),
            no.to_string(),
            "bwd-filter".into(),
            "bwd_filter".into(),
            f(g, 0),
            f(100.0 * g / chip.peak_gflops_per_cg(), 1),
            f(bwf_ms, 2),
        ]);
    }
    t.print();
    t.write_csv("training_pass");
    println!(
        "\nStep totals across the three configs: forward {:.1} ms, bwd-data {:.1} ms, \
         bwd-filter {:.1} ms\n(all three passes run through the same register-communication \
         GEMM machinery, so a\ntraining step sustains the forward kernel's efficiency class \
         end to end).",
        total_ms[0], total_ms[1], total_ms[2]
    );
}
