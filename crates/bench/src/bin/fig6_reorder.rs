//! Fig. 6 / §VI — double-pipeline instruction reordering.
//!
//! Simulates the naive and reordered GEMM inner kernels on the dual-issue
//! CPE pipeline model for the channel counts of the evaluation, reporting
//! cycles per iteration and execution efficiency (EE), and checks the
//! paper's closed forms: 26 cycles/iter naive (EE → 16/26 = 61.5 %) vs
//! 5 + 17(n−1) + 16 cycles reordered (EE = 16n/(17n+4)).
//!
//! Also demonstrates the *automated* pipeliner: applying
//! `software_pipeline` to a generic two-register-set loop body reproduces
//! the hand schedule's steady state.

use sw_bench::report::{f, Table};
use sw_isa::efficiency;
use sw_isa::{naive_gemm_kernel, reordered_gemm_kernel, DualPipe, KernelSpec};

fn main() {
    let pipe = DualPipe::default();
    let mut t = Table::new(
        "Fig. 6 / §VI: inner-kernel pipeline schedule (per Ni)",
        &[
            "Ni",
            "iters n",
            "naive cyc",
            "naive/iter",
            "naive EE%",
            "reord cyc",
            "reord/iter",
            "reord EE%",
            "speedup",
        ],
    );

    for ni in [64usize, 128, 192, 256, 320, 384] {
        let n = efficiency::iterations_for_ni(ni);
        let spec = KernelSpec::new(n);
        let naive = pipe.run(&naive_gemm_kernel(spec));
        let reord = pipe.run(&reordered_gemm_kernel(spec));
        assert_eq!(
            naive.cycles,
            efficiency::cycles_naive(n),
            "closed form (naive)"
        );
        assert_eq!(
            reord.cycles,
            efficiency::cycles_reordered(n),
            "closed form (reordered)"
        );
        t.row(vec![
            ni.to_string(),
            n.to_string(),
            naive.cycles.to_string(),
            f(naive.cycles as f64 / n as f64, 2),
            f(100.0 * efficiency::ee_naive(n), 1),
            reord.cycles.to_string(),
            f(reord.cycles as f64 / n as f64, 2),
            f(100.0 * efficiency::ee_reordered(n), 1),
            f(naive.cycles as f64 / reord.cycles as f64, 2),
        ]);
    }
    t.print();
    t.write_csv("fig6_reorder");

    println!(
        "\nPaper anchors: naive flow = 8 vload + 1 cmp + 1 bnw + 16 vmad = 26\n\
         cycles/iter (EE 61.5%); reordered: 5-cycle initial section, 17-cycle\n\
         steady state, 16-cycle exit => EE = 16n/(17n+4); larger Ni -> higher EE."
    );

    // Dual-issue statistics for one representative kernel.
    let rep = pipe.run(&reordered_gemm_kernel(KernelSpec::new(16)));
    println!(
        "\nReordered kernel (n=16): {} instrs issued, {} dual-issue cycles, {} stalls, {} flops",
        rep.p0_issued + rep.p1_issued,
        rep.dual_issues,
        rep.stall_cycles,
        rep.flops
    );
}
