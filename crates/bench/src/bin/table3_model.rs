//! Table III — performance model evaluation: modeled vs measured Gflops on
//! one CG for the four published plan/parameter rows.
//!
//! | plan  | Kc | bB | bCo | Ni  | No  | paper RBW | paper MBW | paper mdl | paper meas |
//! |-------|----|----|-----|-----|-----|-----------|-----------|-----------|------------|
//! | img   | 3  | 32 | 16  | 128 | 128 | 29.0      | 21.9      | 368       | 350        |
//! | img   | 3  | 32 | 8   | 128 | 256 | 23.2      | 18.2      | 397       | 375        |
//! | batch | 3  | –  | –   | 256 | 256 | 27.1      | 21.2      | 422       | 410        |
//! | batch | 3  | –  | –   | 128 | 384 | 25.7      | 21.2      | 407       | 392        |
//!
//! Our RBW column reproduces the paper's exactly (Eqs. 1–2 are closed
//! forms). The mdl column is our Fig. 2 model, the meas column the
//! simulated execution of the same plan with the same blocking. The
//! reproduced claim is the *reasonable match between model and
//! measurement*, row by row.

use sw_bench::report::{f, Table};
use sw_perfmodel::rbw;
use sw_perfmodel::select::Blocking;
use sw_perfmodel::{ConvPerfModel, PlanKind};
use sw_tensor::ConvShape;
use swdnn::plans::{BatchAwarePlan, ConvPlan, ImageAwarePlan};

struct Row {
    plan: &'static str,
    b_b: usize,
    b_co: usize,
    ni: usize,
    no: usize,
    paper_rbw: f64,
    paper_mbw: f64,
    paper_mdl: f64,
    paper_meas: f64,
}

fn main() {
    let rows = [
        Row {
            plan: "img",
            b_b: 32,
            b_co: 16,
            ni: 128,
            no: 128,
            paper_rbw: 29.0,
            paper_mbw: 21.9,
            paper_mdl: 368.0,
            paper_meas: 350.0,
        },
        Row {
            plan: "img",
            b_b: 32,
            b_co: 8,
            ni: 128,
            no: 256,
            paper_rbw: 23.2,
            paper_mbw: 18.2,
            paper_mdl: 397.0,
            paper_meas: 375.0,
        },
        Row {
            plan: "batch",
            b_b: 0,
            b_co: 0,
            ni: 256,
            no: 256,
            paper_rbw: 27.1,
            paper_mbw: 21.2,
            paper_mdl: 422.0,
            paper_meas: 410.0,
        },
        Row {
            plan: "batch",
            b_b: 0,
            b_co: 0,
            ni: 128,
            no: 384,
            paper_rbw: 25.7,
            paper_mbw: 21.2,
            paper_mdl: 407.0,
            paper_meas: 392.0,
        },
    ];

    let model = ConvPerfModel::default();
    let t_cg = 742.4;
    let mut table = Table::new(
        "Table III: Performance Model Evaluation (one CG, Kc=3, B=128)",
        &[
            "plan",
            "bB",
            "bCo",
            "Ni",
            "No",
            "RBW(paper)",
            "RBW(ours)",
            "MBW(paper)",
            "MBW(ours)",
            "mdl(paper)",
            "mdl(ours)",
            "meas(paper)",
            "meas(ours)",
            "mdl/meas",
        ],
    );

    for r in &rows {
        let shape = ConvShape::new(128, r.ni, r.no, 64, 64, 3, 3);
        let (rbw_ours, est, meas) = match r.plan {
            "img" => {
                let blk = Blocking {
                    b_b: r.b_b,
                    b_co: r.b_co,
                };
                let rbw_v = rbw::rbw_image_aware(r.b_b, r.b_co, r.no, t_cg);
                let est = model.estimate(PlanKind::ImageSizeAware, blk, 128, r.ni, r.no, 3);
                let plan = ImageAwarePlan::new(blk);
                let timing = plan.time_full_shape(&shape).expect("img plan");
                (rbw_v, est, timing)
            }
            _ => {
                let rbw_v = rbw::rbw_batch_aware(128, 3, r.no, t_cg);
                let est = model.estimate(
                    PlanKind::BatchSizeAware,
                    Blocking::default(),
                    128,
                    r.ni,
                    r.no,
                    3,
                );
                let plan = BatchAwarePlan::auto(&shape);
                let timing = plan.time_full_shape(&shape).expect("batch plan");
                (rbw_v, est, timing)
            }
        };
        let chip = sw_perfmodel::ChipSpec::sw26010();
        let meas_gflops = meas.gflops(&shape, &chip);
        let secs = meas.cycles as f64 / (chip.clock_ghz * 1e9);
        let mbw_ours = meas.stats.totals.dma_get_bytes as f64 / secs / 1e9;
        table.row(vec![
            r.plan.to_string(),
            if r.b_b > 0 {
                r.b_b.to_string()
            } else {
                "-".into()
            },
            if r.b_co > 0 {
                r.b_co.to_string()
            } else {
                "-".into()
            },
            r.ni.to_string(),
            r.no.to_string(),
            f(r.paper_rbw, 1),
            f(rbw_ours, 1),
            f(r.paper_mbw, 1),
            f(mbw_ours, 1),
            f(r.paper_mdl, 0),
            f(est.gflops_per_cg, 0),
            f(r.paper_meas, 0),
            f(meas_gflops, 0),
            f(est.gflops_per_cg / meas_gflops, 2),
        ]);
    }
    table.print();
    table.write_csv("table3_model");

    println!(
        "\nReproduced: the RBW column matches the paper exactly (Eqs. 1-2).\n\
         The model-vs-measured comparison shows the same 'reasonable match'\n\
         the paper reports; our simulated MBW is the bandwidth the plan\n\
         actually achieved over the kernel's lifetime (DMA is largely hidden\n\
         behind compute by double buffering, so lifetime-average MBW sits\n\
         below the Table II per-request bandwidth, as in the paper)."
    );
}
