//! Fig. 2 — the two mapping paths of the performance model, made
//! executable.
//!
//! The figure contrasts the *direct memory access* mapping (gload from
//! main memory, `(8/139.2)² ≈ 0.32 %` of peak) with the *REG-LDM-MEM*
//! hierarchy. This binary evaluates both analytically AND by simulation:
//! the direct plan is actually executed (sampled), as is the selected
//! LDM plan, for a set of representative configurations.

use sw_bench::report::{f, Table};
use sw_perfmodel::{ChipSpec, PlanKind};
use sw_tensor::ConvShape;
use swdnn::Executor;

fn main() {
    let chip = ChipSpec::sw26010();
    let exec = Executor::new();
    let peak = chip.peak_gflops_per_cg();

    let mut t = Table::new(
        "Fig. 2: direct-gload vs REG-LDM-MEM (one CG)",
        &[
            "Ni",
            "No",
            "direct mdl",
            "direct sim",
            "dir eff%",
            "ldm mdl",
            "ldm sim",
            "ldm eff%",
            "gain",
        ],
    );

    for (ni, no) in [(64, 64), (128, 128), (256, 256)] {
        let shape = ConvShape::new(128, ni, no, 64, 64, 3, 3);
        let direct = exec
            .run_config_with(&shape, PlanKind::DirectGload)
            .expect("direct");
        let opt = exec.run_config(&shape).expect("optimized");
        t.row(vec![
            ni.to_string(),
            no.to_string(),
            f(direct.model.gflops_per_cg, 2),
            f(direct.gflops_cg, 2),
            f(100.0 * direct.efficiency, 3),
            f(opt.model.gflops_per_cg, 1),
            f(opt.gflops_cg, 1),
            f(100.0 * opt.efficiency, 1),
            format!("{:.0}x", opt.gflops_cg / direct.gflops_cg),
        ]);
    }
    t.print();
    t.write_csv("fig2_model");

    let ratio = (chip.gload_gbps / chip.rbw_direct_mem_gbps).powi(2);
    println!(
        "\nPaper: direct mapping sustains (8/139.2)^2 = {:.2}% of the {:.1} Gflops\n\
         CG peak; the REG-LDM-MEM path recovers >50%. The simulated direct plan\n\
         lands at the same collapse, two orders of magnitude below the LDM plans.",
        100.0 * ratio,
        peak
    );
}
