//! `perf_snapshot` — the machine-readable observability artifact CI gates
//! on: measured counters next to the analytic model's per-level RBW/MBW
//! for every [`sw_bench::configs::perf_snapshot_configs`] entry.
//!
//! Modes:
//!
//! ```sh
//! # Measure and write BENCH_PERF.json + BENCH_TRACE.json (Chrome trace)
//! # into $SWDNN_RESULTS_DIR (default: results/).
//! cargo run --release -p sw-bench --bin perf_snapshot
//!
//! # Measure and gate against a committed baseline (CI's bench-regression
//! # job). Exits 1 when any metric regresses beyond tolerance.
//! cargo run --release -p sw-bench --bin perf_snapshot -- --check results/BENCH_PERF.baseline.json
//!
//! # Diff two saved snapshots without re-measuring.
//! cargo run --release -p sw-bench --bin perf_snapshot -- --diff old.json new.json
//! ```
//!
//! The measurement is a deterministic simulation, so the default
//! [`Tolerances`] are tight (2% on throughput/traffic, ~0 on model
//! outputs). To accept an intentional performance change, regenerate the
//! baseline (see CONTRIBUTING.md):
//!
//! ```sh
//! cargo run --release -p sw-bench --bin perf_snapshot
//! cp results/BENCH_PERF.json results/BENCH_PERF.baseline.json
//! ```

use std::path::{Path, PathBuf};
use std::process::exit;
use sw_bench::chaos_load::{
    chaos_perf_report, run_chaos_scenario, snapshot_chaos_cell, SNAPSHOT_CHAOS_REQUESTS,
};
use sw_bench::configs::perf_snapshot_configs;
use sw_bench::serve_load::{run_scenario, serve_perf_report, SNAPSHOT_ROUNDS};
use sw_obs::{compare, ChromeTrace, Snapshot, Tolerances};
use sw_perfmodel::ChipSpec;
use sw_sim::{trace::to_chrome, LdmBuf, Mesh};
use swdnn::plans::gemm_mesh::{regcomm_gemm, zero_c, GemmBlock};
use swdnn::Executor;

fn usage() -> ! {
    eprintln!(
        "usage: perf_snapshot                    measure, write BENCH_PERF.json + BENCH_TRACE.json\n\
         \u{20}      perf_snapshot --check <baseline> measure, fail (exit 1) on regression vs baseline\n\
         \u{20}      perf_snapshot --diff <a> <b>     compare two saved snapshots"
    );
    exit(2);
}

fn results_dir() -> PathBuf {
    PathBuf::from(std::env::var("SWDNN_RESULTS_DIR").unwrap_or_else(|_| "results".into()))
}

/// Measure every snapshot configuration on the simulated chip.
fn measure() -> Snapshot {
    let exec = Executor::new();
    let mut reports = Vec::new();
    for (shape, kind) in perf_snapshot_configs() {
        let rep = exec
            .run_config_with(&shape, kind)
            .unwrap_or_else(|e| panic!("measuring {shape}: {e}"));
        let obs = rep.obs_report(&exec.chip);
        print!("{}", obs.summary());
        reports.push(obs);
    }
    // Serving row: closed-loop chip-level throughput plus latency/hit-rate
    // counters from the sharded batch-serving engine.
    let serve = run_scenario(SNAPSHOT_ROUNDS).unwrap_or_else(|e| panic!("serve scenario: {e}"));
    let obs = serve_perf_report(&serve);
    print!("{}", obs.summary());
    reports.push(obs);
    // Chaos row: the snapshot cell of the open-loop fault sweep (steady
    // Poisson × flaky DMA), tracking drop counts, fallback-path counts,
    // and the high-priority tail under injected faults.
    let (traffic, fault_name, chaos_cfg) = snapshot_chaos_cell();
    let chaos = run_chaos_scenario(&traffic, fault_name, chaos_cfg, SNAPSHOT_CHAOS_REQUESTS)
        .unwrap_or_else(|e| panic!("chaos scenario: {e}"));
    let obs = chaos_perf_report(&chaos);
    print!("{}", obs.summary());
    reports.push(obs);
    // Host-side throughput row: the anchor shape with wall-clock attached
    // (`host` block, gated loosely and directionally — see sim_throughput).
    // Min-of-3 reps: a single sample sits too close to scheduler noise
    // for even the loose 15% gate.
    let (shape, kind) = sw_bench::configs::conv_256();
    let host_row = sw_bench::sim_throughput::measure_conv(&shape, kind, 3);
    print!("{}", host_row.summary());
    reports.push(host_row);
    Snapshot::new(reports)
}

/// A small traced run of the register-communication GEMM, exported as a
/// Chrome-trace document: one track per CPE, spans categorized by the
/// REG/LDM/MEM level that owns them. Load in `chrome://tracing`/Perfetto.
fn demo_trace() -> ChromeTrace {
    struct St {
        a: Vec<f64>,
        b: Vec<f64>,
        c: LdmBuf,
    }
    let (m8, n8, k8) = (4usize, 16usize, 8usize);
    let chip = ChipSpec::sw26010();
    let mut mesh = Mesh::new(chip, |_, _| St {
        a: vec![1.0; k8 * m8],
        b: vec![0.5; k8 * n8],
        c: LdmBuf { offset: 0, len: 0 },
    });
    mesh.enable_trace();
    mesh.superstep(|ctx, s| {
        s.c = ctx.ldm_alloc(m8 * n8)?;
        Ok(())
    })
    .expect("ldm alloc");
    zero_c(&mut mesh, |s: &St| s.c).expect("zero C");
    regcomm_gemm(
        &mut mesh,
        GemmBlock::dense(m8, n8, k8, true),
        |_, s: &St, dst: &mut Vec<f64>| dst.extend_from_slice(&s.a),
        |_, s: &St, dst: &mut Vec<f64>| dst.extend_from_slice(&s.b),
        |s| (s.c, 0),
    )
    .expect("traced GEMM");
    to_chrome(&mesh.take_traces(), chip.clock_ghz)
}

fn load(path: &str) -> Snapshot {
    Snapshot::load(Path::new(path)).unwrap_or_else(|e| {
        eprintln!("cannot load snapshot: {e}");
        exit(2);
    })
}

/// Print the comparison and turn it into an exit code.
fn finish(report: sw_obs::CompareReport) -> ! {
    print!("{}", report.summary());
    exit(if report.is_ok() { 0 } else { 1 });
}

fn main() {
    // The conv_256 host row times simulation work on the shared pool;
    // prewarm so no measurement pays thread start-up.
    sw_runtime::global().prewarm();
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None => {
            let snap = measure();
            let dir = results_dir();
            std::fs::create_dir_all(&dir).expect("create results dir");
            let perf = dir.join("BENCH_PERF.json");
            snap.save(&perf).expect("write BENCH_PERF.json");
            println!("(snapshot written to {})", perf.display());
            let trace_path = dir.join("BENCH_TRACE.json");
            let mut doc = demo_trace().to_json_string();
            doc.push('\n');
            std::fs::write(&trace_path, doc).expect("write BENCH_TRACE.json");
            println!("(chrome trace written to {})", trace_path.display());
        }
        Some("--check") if args.len() == 2 => {
            let baseline = load(&args[1]);
            let mut current = measure();
            // Only the conv_256 host block is wall-clock-sensitive; when
            // the gate trips, re-measure just that row once to absorb a
            // scheduler burst (see sim_throughput::compare_with_host_retry
            // — simulated metrics are exact and unaffected).
            let report = sw_bench::sim_throughput::compare_with_host_retry(
                &baseline,
                &mut current,
                &Tolerances::default(),
                || {
                    let (shape, kind) = sw_bench::configs::conv_256();
                    Snapshot::new(vec![sw_bench::sim_throughput::measure_conv(
                        &shape, kind, 3,
                    )])
                },
            );
            finish(report);
        }
        Some("--diff") if args.len() == 3 => {
            let a = load(&args[1]);
            let b = load(&args[2]);
            finish(compare(&a, &b, &Tolerances::default()));
        }
        _ => usage(),
    }
}
