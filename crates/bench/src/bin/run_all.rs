//! Run every table/figure regenerator in sequence — the one-command
//! reproduction of the paper's evaluation section.
//!
//! ```sh
//! SWDNN_RESULTS_DIR=results cargo run --release -p sw-bench --bin run_all
//! ```
//!
//! Each artifact's binary can also be run individually; this driver simply
//! invokes their `main` logic via the same process (no subprocesses), so a
//! single build suffices.

use std::process::Command;
use std::time::Instant;

const BINARIES: &[(&str, &str)] = &[
    ("table2_dma", "Table II — DMA bandwidth vs block size"),
    ("fig2_model", "Fig. 2 — direct vs REG-LDM-MEM"),
    ("fig6_reorder", "Fig. 6 / §VI — instruction reordering"),
    ("table3_model", "Table III — model vs measured"),
    ("scaling_cgs", "§III-D — multi-CG scaling"),
    ("ablation_regblock", "§V-B/C — register blocking (Eqs. 3-5)"),
    ("ablation_ldm", "§IV-A — LDM blocking / kernel reordering"),
    (
        "training_pass",
        "extension — fwd + bwd passes at paper scale",
    ),
    (
        "model_vs_autotune",
        "§VII — model guidance vs exhaustive autotuning",
    ),
    (
        "autotune_search",
        "extension — schedule search vs hand presets + stride-2 coverage",
    ),
    ("fig7_channels", "Fig. 7 — 101 channel configs vs K40m"),
    ("fig9_filters", "Fig. 9 — filter sizes vs K40m"),
    (
        "fault_campaign",
        "extension — fault-rate sweep + degraded mesh",
    ),
    (
        "serve_bench",
        "extension — sharded batch-serving engine under closed-loop load",
    ),
    (
        "chaos_serve",
        "extension — open-loop serving under injected faults",
    ),
    (
        "perf_snapshot",
        "observability — measured vs modeled per-level bandwidth snapshot",
    ),
    (
        "sim_throughput",
        "extension — host wall-clock throughput of the simulator itself",
    ),
];

fn main() {
    let exe_dir = std::env::current_exe()
        .expect("current_exe")
        .parent()
        .expect("bin dir")
        .to_path_buf();
    let started = Instant::now();
    let mut failures = Vec::new();
    for (bin, title) in BINARIES {
        println!("\n################################################################");
        println!("## {title}");
        println!("################################################################");
        let t0 = Instant::now();
        let status = Command::new(exe_dir.join(bin)).status();
        match status {
            Ok(s) if s.success() => {
                println!("## ({bin} finished in {:.1}s)", t0.elapsed().as_secs_f64());
            }
            Ok(s) => {
                eprintln!("## {bin} FAILED with {s}");
                failures.push(*bin);
            }
            Err(e) => {
                eprintln!("## {bin} could not start: {e} (build with --bins first)");
                failures.push(*bin);
            }
        }
    }
    println!(
        "\nAll artifacts attempted in {:.1}s; {} failures{}",
        started.elapsed().as_secs_f64(),
        failures.len(),
        if failures.is_empty() {
            String::new()
        } else {
            format!(": {failures:?}")
        }
    );
    if !failures.is_empty() {
        std::process::exit(1);
    }
}
