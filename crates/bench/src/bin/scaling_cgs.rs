//! §III-D — scaling across the four core groups.
//!
//! "We can partition output images into four parts along the row, and
//! assign each CG to process one fourth ... near linear scaling among the
//! four CGs in one processor."

use sw_bench::report::{f, Table};
use sw_perfmodel::ChipSpec;
use sw_tensor::ConvShape;
use swdnn::Executor;

fn main() {
    let exec = Executor::new();
    let chip = ChipSpec::sw26010();
    let mut t = Table::new(
        "Multi-CG scaling (output-row partitioning)",
        &[
            "Ni",
            "No",
            "CGs",
            "wall Mcycles",
            "chip Gflops",
            "speedup",
            "parallel eff%",
        ],
    );

    for (ni, no) in [(128, 128), (256, 256)] {
        let shape = ConvShape::new(128, ni, no, 64, 64, 3, 3);
        let base = exec.run_multi_cg(&shape, 1).expect("1 CG");
        for cgs in [1usize, 2, 4] {
            let rep = exec.run_multi_cg(&shape, cgs).expect("multi CG");
            let speedup = base.wall_cycles as f64 / rep.wall_cycles as f64;
            t.row(vec![
                ni.to_string(),
                no.to_string(),
                cgs.to_string(),
                f(rep.wall_cycles as f64 / 1e6, 1),
                f(rep.gflops_chip, 0),
                f(speedup, 2),
                f(100.0 * speedup / cgs as f64, 1),
            ]);
        }
    }
    t.print();
    t.write_csv("scaling_cgs");
    println!(
        "\nPaper claim: near-linear scaling across the 4 CGs (private memory\n\
         partitions, no cross-CG traffic). Peak chip throughput = 4 x {:.1} Gflops.",
        chip.peak_gflops_per_cg()
    );
}
