//! `chaos_serve` — open-loop traffic replayed against the fault-injecting
//! serving engine: a fault-rate × burst-profile sweep with hard chaos
//! gates.
//!
//! ```sh
//! cargo run --release -p sw-bench --bin chaos_serve            # full sweep
//! cargo run --release -p sw-bench --bin chaos_serve -- --smoke # CI gate
//! ```
//!
//! Every cell replays a seeded arrival trace (Poisson or bursty, mixed
//! shapes/tenants/priorities) on the logical clock and *fails* (exit 1)
//! when any chaos SLO is violated:
//!
//! * a high-priority request is lost — neither served nor shed with a
//!   structured `Overloaded` (queue depth + retry hint);
//! * any row-split width drifts numerically from the scalar reference
//!   (completed answers must match the fault-free golden run bit-for-bit);
//! * high-priority p99 exceeds the ceiling while faults are active.
//!
//! `--smoke` runs the snapshot cell (steady Poisson × flaky DMA) plus the
//! numeric-drift check; the full run sweeps every fault profile against
//! every traffic profile. All of it is simulated time — the gates cannot
//! flake.

use std::process::exit;
use sw_bench::chaos_load::{
    check_chaos_gates, check_numeric_drift, fault_profiles, run_chaos_scenario,
    snapshot_chaos_cell, traffic_profiles, FULL_CHAOS_REQUESTS, SNAPSHOT_CHAOS_REQUESTS,
};
use sw_bench::report::Table;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");

    // Batches and golden-run convolutions share the worker pool; spawn it
    // before anything is timed.
    sw_runtime::global().prewarm();
    println!("threads: {}", sw_runtime::thread_policy());

    let cells: Vec<_> = if smoke {
        let (traffic, name, chaos) = snapshot_chaos_cell();
        vec![(traffic, name, chaos)]
    } else {
        traffic_profiles()
            .into_iter()
            .flat_map(|t| fault_profiles().into_iter().map(move |(n, c)| (t, n, c)))
            .collect()
    };
    let requests = if smoke {
        SNAPSHOT_CHAOS_REQUESTS
    } else {
        FULL_CHAOS_REQUESTS
    };
    println!(
        "open-loop chaos sweep: {} cells x {} requests",
        cells.len(),
        requests
    );

    let mut t = Table::new(
        "Chaos-hardened serving under injected faults (simulated time)",
        &[
            "traffic",
            "faults",
            "served",
            "shed",
            "evicted",
            "timed_out",
            "high_p99_us",
            "shed_p99_us",
            "trips",
            "degraded",
            "host",
        ],
    );
    let mut failures = Vec::new();
    for (traffic, name, chaos) in &cells {
        let rep = run_chaos_scenario(traffic, name, *chaos, requests).unwrap_or_else(|e| {
            eprintln!("chaos cell {}/{} failed: {e}", traffic.name, name);
            exit(1);
        });
        let s = rep.summary;
        t.row(vec![
            rep.traffic.into(),
            rep.faults.into(),
            s.served.to_string(),
            s.rejected.to_string(),
            s.evicted.to_string(),
            s.timed_out.to_string(),
            s.high_p99_latency_us.to_string(),
            s.shed_p99_wait_us.to_string(),
            s.breaker_trips.to_string(),
            s.degraded_batches.to_string(),
            s.host_batches.to_string(),
        ]);
        match check_chaos_gates(&rep) {
            Ok(line) => println!("PASS {line}"),
            Err(msg) => failures.push(msg),
        }
    }
    t.print();
    t.write_csv("chaos_serve");

    match check_numeric_drift() {
        Ok(line) => println!("PASS {line}"),
        Err(msg) => failures.push(msg),
    }

    println!(
        "\nFaults cost simulated time, never answers: breaker trips reroute\n\
         the row split to healthy CGs, exhausted retries fall back to the\n\
         degraded mesh and then the host reference, and admission control\n\
         spends the damage on low-priority traffic first."
    );

    if !failures.is_empty() {
        for m in &failures {
            eprintln!("CHAOS GATE FAILURE: {m}");
        }
        exit(1);
    }
    println!("\nall chaos gates met");
}
