//! `serve_bench` — closed-loop load generation against the batch-serving
//! engine (`swdnn::serve`): plan-cache hit rate, p50/p99 request latency in
//! simulated time, chip-level Gflops, and graceful rejection under 10×
//! overload.
//!
//! ```sh
//! cargo run --release -p sw-bench --bin serve_bench            # full run
//! cargo run --release -p sw-bench --bin serve_bench -- --smoke # CI gate
//! ```
//!
//! `--smoke` runs the snapshot-sized scenario and *fails* (exit 1) when any
//! serving SLO is violated: post-warmup plan-cache hit rate ≤ 90%, zero
//! rejections under 10× overload, or zero throughput. The whole engine
//! runs on a logical clock over the deterministic simulator, so these
//! gates cannot flake.

use std::process::exit;
use sw_bench::report::{f, Table};
use sw_bench::serve_load::{run_scenario, serve_config, serve_shapes, SNAPSHOT_ROUNDS};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let rounds = if smoke { SNAPSHOT_ROUNDS } else { 12 };
    let cfg = serve_config();

    // One shared worker pool serves every batch; spawn it before the
    // scenario so warmup timing excludes thread start-up.
    sw_runtime::global().prewarm();
    println!("threads: {}", sw_runtime::thread_policy());

    println!(
        "closed-loop serving: {} shapes x {} rounds, batch cap {}, deadline {} us, queue limit {}",
        serve_shapes().len(),
        rounds,
        cfg.policy.max_batch,
        cfg.policy.deadline_us,
        cfg.queue_limit
    );

    let rep = run_scenario(rounds).unwrap_or_else(|e| {
        eprintln!("serve scenario failed: {e}");
        exit(1);
    });
    let s = rep.summary;

    let mut t = Table::new(
        "Batch serving over paper shapes (simulated time)",
        &["metric", "value"],
    );
    t.row(vec!["requests served".into(), s.served.to_string()]);
    t.row(vec!["batches dispatched".into(), s.batches.to_string()]);
    t.row(vec!["batch fill".into(), f(s.batch_fill, 2)]);
    t.row(vec![
        "p50 latency (us)".into(),
        s.p50_latency_us.to_string(),
    ]);
    t.row(vec![
        "p99 latency (us)".into(),
        s.p99_latency_us.to_string(),
    ]);
    t.row(vec!["chip Gflops".into(), f(s.gflops_chip, 0)]);
    t.row(vec![
        "plan-cache hit rate".into(),
        f(s.plan_cache_hit_rate, 3),
    ]);
    t.row(vec![
        "10x overload rejected".into(),
        rep.overload_rejected.to_string(),
    ]);
    t.row(vec![
        "10x overload accepted".into(),
        rep.overload_accepted.to_string(),
    ]);
    t.print();
    t.write_csv("serve_bench");

    println!(
        "\nAfter warmup every request is served from the plan cache — the\n\
         engine re-times nothing, and the 4-CG row partition (§III-D) turns\n\
         the per-CG plan into chip-level throughput. Overload degrades to\n\
         explicit Overloaded rejections at the queue bound, never to\n\
         unbounded memory."
    );

    // SLO gates (CI runs --smoke; the full run gates identically).
    let mut failures = Vec::new();
    if s.plan_cache_hit_rate <= 0.90 {
        failures.push(format!(
            "plan-cache hit rate {} <= 0.90 after warmup",
            s.plan_cache_hit_rate
        ));
    }
    if rep.overload_rejected == 0 {
        failures.push("10x overload produced zero Overloaded rejections".into());
    }
    if s.gflops_chip <= 0.0 {
        failures.push("zero serving throughput".into());
    }
    if !failures.is_empty() {
        for m in &failures {
            eprintln!("SLO FAILURE: {m}");
        }
        exit(1);
    }
    println!("\nall serving SLOs met");
}
