//! §IV-A ablations: LDM blocking sizes, double buffering, kernel
//! reordering — the design choices DESIGN.md calls out, each toggled on
//! the simulated plans.
//!
//! 1. LDM blocking sweep: Eq. 1's RBW and the simulated throughput of the
//!    image-size-aware plan across `(b_B, b_Co)`.
//! 2. Inner-kernel reordering: the same plan with the naive (26 cyc/iter)
//!    vs reordered (17 cyc/iter) kernel — the end-to-end value of §VI.

use sw_bench::report::{f, Table};
use sw_perfmodel::rbw;
use sw_perfmodel::select::{ldm_doubles_image_aware, Blocking};
use sw_perfmodel::ChipSpec;
use sw_tensor::ConvShape;
use swdnn::plans::{ConvPlan, ImageAwarePlan};

fn main() {
    let chip = ChipSpec::sw26010();
    let shape = ConvShape::new(128, 128, 128, 64, 64, 3, 3);

    let mut t = Table::new(
        "LDM blocking sweep (image-size-aware, Ni=No=128, one CG)",
        &["bB", "bCo", "LDM doubles", "RBW Eq.1", "sim Gflops", "eff%"],
    );
    for b_b in [32usize, 64, 128] {
        for b_co in [4usize, 8, 16, 32] {
            if !shape.co.is_multiple_of(b_co) || !shape.batch.is_multiple_of(b_b) {
                continue;
            }
            let blk = Blocking { b_b, b_co };
            let ldm = ldm_doubles_image_aware(&shape, blk);
            let rbw_v = rbw::rbw_image_aware(b_b, b_co, shape.no, chip.peak_gflops_per_cg());
            let plan = ImageAwarePlan::new(blk);
            let (gflops, eff) = match plan.time_full_shape(&shape) {
                Ok(timing) => {
                    let g = timing.gflops(&shape, &chip);
                    (f(g, 0), f(100.0 * g / chip.peak_gflops_per_cg(), 1))
                }
                Err(_) => ("LDM overflow".to_string(), "-".to_string()),
            };
            t.row(vec![
                b_b.to_string(),
                b_co.to_string(),
                ldm.to_string(),
                f(rbw_v, 1),
                gflops,
                eff,
            ]);
        }
    }
    t.print();
    t.write_csv("ablation_ldm_blocking");

    // Kernel reordering end-to-end.
    let mut t2 = Table::new(
        "Inner-kernel reordering, end-to-end (image-size-aware plan)",
        &["Ni", "No", "kernel", "sim Gflops", "eff%"],
    );
    for (ni, no) in [(64, 64), (128, 128), (256, 256)] {
        let shape = ConvShape::new(128, ni, no, 64, 64, 3, 3);
        for reordered in [false, true] {
            let mut plan = ImageAwarePlan::new(Blocking { b_b: 32, b_co: 8 });
            plan.reordered_kernel = reordered;
            let timing = plan.time_full_shape(&shape).expect("plan");
            let g = timing.gflops(&shape, &chip);
            t2.row(vec![
                ni.to_string(),
                no.to_string(),
                if reordered {
                    "reordered (17/iter)"
                } else {
                    "naive (26/iter)"
                }
                .to_string(),
                f(g, 0),
                f(100.0 * g / chip.peak_gflops_per_cg(), 1),
            ]);
        }
    }
    t2.print();
    t2.write_csv("ablation_kernel_reorder");

    // Double buffering end-to-end.
    let mut t3 = Table::new(
        "DMA double buffering, end-to-end (image-size-aware plan)",
        &["Ni", "No", "mode", "sim Gflops", "eff%", "dma stall Mcyc"],
    );
    for (ni, no) in [(64, 64), (128, 128)] {
        let shape = ConvShape::new(128, ni, no, 64, 64, 3, 3);
        for buffered in [false, true] {
            let mut plan = ImageAwarePlan::new(Blocking { b_b: 32, b_co: 8 });
            plan.double_buffer = buffered;
            let timing = plan.time_full_shape(&shape).expect("plan");
            let g = timing.gflops(&shape, &chip);
            t3.row(vec![
                ni.to_string(),
                no.to_string(),
                if buffered {
                    "double-buffered"
                } else {
                    "synchronous"
                }
                .to_string(),
                f(g, 0),
                f(100.0 * g / chip.peak_gflops_per_cg(), 1),
                f(timing.stats.totals.dma_stall_cycles as f64 / 1e6, 1),
            ]);
        }
    }
    t3.print();
    t3.write_csv("ablation_double_buffer");

    println!(
        "\nTakeaways: (1) larger bB*bCo lowers Eq.1's RBW until LDM overflows —\n\
         the blocking sweet spot the model picks; (2) §VI reordering lifts\n\
         end-to-end throughput by roughly the 26/17 kernel ratio wherever the\n\
         plan is compute-bound."
    );
}
