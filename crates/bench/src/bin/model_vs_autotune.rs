//! §VII validation: does the performance model pick (near-)optimal plans?
//!
//! "The comparison between the measurement and our performance model shows
//! a reasonable match, thus proving that our performance model has ...
//! provided useful guidance in our optimization process."
//!
//! For each configuration: exhaustively time every feasible plan/blocking
//! candidate (sampled simulation) and compare the empirical optimum against
//! the model's choice.

use sw_bench::report::{f, Table};
use sw_tensor::ConvShape;
use swdnn::tune::autotune;

fn main() {
    let mut t = Table::new(
        "Model-guided selection vs exhaustive autotuning (one CG)",
        &[
            "Ni",
            "No",
            "best candidate",
            "best Gflops",
            "model choice",
            "model Gflops",
            "model/best",
        ],
    );
    for (ni, no) in [
        (64usize, 64usize),
        (128, 128),
        (128, 256),
        (256, 256),
        (384, 384),
    ] {
        let shape = ConvShape::new(128, ni, no, 64, 64, 3, 3);
        let rep = autotune(&shape).expect("candidates exist");
        let best = rep.best().clone();
        let (mdesc, mg) = match rep.model_choice {
            Some(i) => (
                rep.candidates[i].description.clone(),
                rep.candidates[i].gflops,
            ),
            None => ("(infeasible)".into(), 0.0),
        };
        t.row(vec![
            ni.to_string(),
            no.to_string(),
            best.description.clone(),
            f(best.gflops, 0),
            mdesc,
            f(mg, 0),
            f(mg / best.gflops, 2),
        ]);
    }
    t.print();
    t.write_csv("model_vs_autotune");
    println!(
        "\n§VII's claim in executable form: at evaluation scale the model's pick\n\
         attains most of the exhaustive-search optimum without timing a single\n\
         candidate. (At toy scales the model misses — its equations ignore the\n\
         fixed per-superstep costs that dominate small problems.)"
    );
}
