//! `sim_throughput` — host wall-clock throughput of the simulator over the
//! Table III shapes plus the serve-engine closed loop, the artifact the CI
//! bench-regression job gates host-side performance with.
//!
//! ```sh
//! # Measure (min wall-clock of 5 reps per conv shape) and write
//! # SIM_THROUGHPUT.json into $SWDNN_RESULTS_DIR (default: results/).
//! cargo run --release -p sw-bench --bin sim_throughput
//!
//! # Three reps per shape (min-of-reps) — the quick CI configuration.
//! cargo run --release -p sw-bench --bin sim_throughput -- --smoke
//!
//! # Measure and gate against the committed baseline: exit 1 when host
//! # wall-clock regresses >15% (or any simulated metric drifts >2%).
//! cargo run --release -p sw-bench --bin sim_throughput -- --smoke \
//!     --check results/SIM_THROUGHPUT.baseline.json
//! ```
//!
//! The simulated side of every row is deterministic; only the `host`
//! blocks depend on the machine. Regenerate the baseline when the bench
//! hardware changes (see CONTRIBUTING.md):
//!
//! ```sh
//! cargo run --release -p sw-bench --bin sim_throughput
//! cp results/SIM_THROUGHPUT.json results/SIM_THROUGHPUT.baseline.json
//! ```

use std::path::{Path, PathBuf};
use std::process::exit;
use sw_bench::configs::conv_256;
use sw_bench::serve_load::{check_serve_slo, SERVE_REPORT_CONFIG};
use sw_bench::sim_throughput::{compare_with_host_retry, measure_conv, measure_suite};
use sw_obs::{Snapshot, Tolerances};
use swdnn::plans::gemm_mesh;

fn usage() -> ! {
    eprintln!(
        "usage: sim_throughput [--smoke] [--check <baseline>]\n\
         \u{20}  --smoke            three reps per conv shape instead of five\n\
         \u{20}  --check <baseline> exit 1 on regression vs the saved snapshot"
    );
    exit(2);
}

fn results_dir() -> PathBuf {
    PathBuf::from(std::env::var("SWDNN_RESULTS_DIR").unwrap_or_else(|_| "results".into()))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut check: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--check" => check = Some(it.next().cloned().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    // host_secs is min-of-reps (see `measure_conv`). The 15% gate sits
    // close to shared-runner scheduling noise, so even the smoke mode
    // takes three samples; a couple of descheduled reps can't fail it.
    let reps = if smoke { 3 } else { 5 };

    // Spawn the worker pool before the timed region so no rep pays thread
    // start-up, and record which policy sized it — host numbers are only
    // comparable across runs with the same thread policy.
    sw_runtime::global().prewarm();
    println!("threads: {}", sw_runtime::thread_policy());

    let mut current = measure_suite(reps);
    for r in &current.reports {
        let h = r.host.expect("sim_throughput rows carry a host block");
        println!(
            "{:<55} {:>8.3} s host   {:>9.2} sim-GF/host-s",
            r.key(),
            h.host_secs,
            h.sim_gflops_per_host_sec
        );
    }

    // Self-calibrating microkernel figure: re-run the anchor shape with the
    // scalar reference kernel forced. Same machine, same run — the ratio
    // isolates the register-tiled microkernel, independent of hardware.
    let (shape, kind) = conv_256();
    gemm_mesh::force_reference_microkernel(true);
    let reference = measure_conv(&shape, kind, reps);
    gemm_mesh::force_reference_microkernel(false);
    let fast = current
        .reports
        .iter()
        .find(|r| r.config == reference.config && r.plan == reference.plan)
        .expect("conv_256 row in suite");
    let (fh, rh) = (fast.host.unwrap(), reference.host.unwrap());
    println!(
        "conv_256 microkernel: {:.3} s tiled vs {:.3} s scalar reference ({:.2}x)",
        fh.host_secs,
        rh.host_secs,
        rh.host_secs / fh.host_secs
    );

    match check {
        Some(baseline_path) => {
            let baseline = Snapshot::load(Path::new(&baseline_path)).unwrap_or_else(|e| {
                eprintln!("cannot load baseline: {e}");
                exit(2);
            });
            // One automatic re-measure absorbs whole-window scheduler
            // bursts on shared runners; a real host regression (or any
            // simulated drift) fails both passes.
            let report =
                compare_with_host_retry(&baseline, &mut current, &Tolerances::default(), || {
                    measure_suite(reps)
                });
            print!("{}", report.summary());
            // The serve row additionally carries hard SLOs (absolute
            // floor/ceiling, not relative-to-baseline): evaluate on the
            // post-retry snapshot so a single scheduler burst can't fail
            // the throughput floor spuriously.
            let slo_ok = gate_serve_slo(&current);
            exit(if report.is_ok() && slo_ok { 0 } else { 1 });
        }
        None => {
            gate_serve_slo(&current);
            let dir = results_dir();
            std::fs::create_dir_all(&dir).expect("create results dir");
            let path = dir.join("SIM_THROUGHPUT.json");
            current.save(&path).expect("write SIM_THROUGHPUT.json");
            println!("wrote {}", path.display());
        }
    }
}

/// Print (and return) the serve row's hard-SLO verdict.
fn gate_serve_slo(snapshot: &Snapshot) -> bool {
    let row = snapshot
        .reports
        .iter()
        .find(|r| r.config == SERVE_REPORT_CONFIG)
        .expect("sim_throughput suite always contains the serve row");
    match check_serve_slo(row) {
        Ok(line) => {
            println!("{line}");
            true
        }
        Err(violation) => {
            eprintln!("SLO VIOLATION: {violation}");
            false
        }
    }
}
