//! Fig. 7 — double-precision convolution performance over the 101
//! channel configurations, vs Tesla K40m + cuDNNv5.1.
//!
//! `B = 128`, output `64×64`, filter `3×3`; configurations 1–21 from the
//! left Fig. 8 script (diagonal `Ni = No`), 22–101 from the center script
//! (channel grid). swDNN numbers come from the simulated SW26010 (all four
//! core groups via the §III-D row partitioning); K40m numbers from the
//! calibrated cuDNN model.
//!
//! The paper reports: swDNN above 1.6 Tflops for most configurations
//! (>54 % of peak, stable), speedups 1.91–9.75× over cuDNN.

use rayon::prelude::*;
use sw_bench::configs::fig7_configs;
use sw_bench::report::{f, Table};
use sw_gpuref::K40m;
use sw_perfmodel::ChipSpec;
use swdnn::Executor;

fn main() {
    let configs = fig7_configs();
    let exec = Executor::new();
    let gpu = K40m::default();
    let chip = ChipSpec::sw26010();
    let cgs = chip.core_groups;

    let rows: Vec<_> = configs
        .par_iter()
        .enumerate()
        .map(|(i, shape)| {
            let multi = exec.run_multi_cg(shape, cgs).expect("config must run");
            let sw = multi.gflops_chip;
            let k40 = gpu.conv_gflops(shape);
            (i + 1, *shape, sw, k40)
        })
        .collect();

    let mut t = Table::new(
        "Fig. 7: conv performance over 101 (Ni,No) configs (chip vs K40m)",
        &[
            "#",
            "Ni",
            "No",
            "swDNN Gflops",
            "eff%",
            "K40m Gflops",
            "speedup",
        ],
    );
    let peak_chip = chip.peak_gflops_per_cg() * cgs as f64;
    let mut speedups = Vec::new();
    let mut above_1600 = 0;
    for (idx, shape, sw, k40) in &rows {
        let sp = sw / k40;
        speedups.push(sp);
        if *sw >= 1600.0 {
            above_1600 += 1;
        }
        t.row(vec![
            idx.to_string(),
            shape.ni.to_string(),
            shape.no.to_string(),
            f(*sw, 0),
            f(100.0 * sw / peak_chip, 1),
            f(*k40, 0),
            f(sp, 2),
        ]);
    }
    t.print();
    t.write_csv("fig7_channels");

    speedups.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let sw_vals: Vec<f64> = rows.iter().map(|r| r.2).collect();
    let sw_min = sw_vals.iter().cloned().fold(f64::INFINITY, f64::min);
    let sw_max = sw_vals.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "\nSummary over {} configs:\n\
         swDNN: {:.0}-{:.0} Gflops ({}/{} configs above 1.6 Tflops; paper: \"above 1.6 Tflops in most cases\")\n\
         speedup vs K40m: {:.2}x - {:.2}x (paper: 1.91x - 9.75x over Figs. 7+9)\n\
         stability: swDNN spread {:.2}x vs cuDNN spread {:.2}x (paper: swDNN \"stable\", cuDNN not)",
        rows.len(),
        sw_min,
        sw_max,
        above_1600,
        rows.len(),
        speedups.first().unwrap(),
        speedups.last().unwrap(),
        sw_max / sw_min,
        {
            let k: Vec<f64> = rows.iter().map(|r| r.3).collect();
            k.iter().cloned().fold(0.0f64, f64::max) / k.iter().cloned().fold(f64::INFINITY, f64::min)
        }
    );
}
