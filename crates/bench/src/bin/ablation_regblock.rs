//! §V-B/§V-C — register blocking ablation (Eqs. 3, 4, 5).
//!
//! Sweeps the GEMM register blocking `(rb_B, rb_No)` and prints the
//! required LDM→REG bandwidth of the plain (Eq. 4) and SIMD (Eq. 5)
//! variants against the 46.4 GB/s hardware budget, plus the spatial
//! blocking alternative (Eq. 3) that the paper rejects. Confirms the
//! published choice `rb_B = 16`, `rb_No = 4` ⇒ 23.2 GB/s.

use sw_bench::report::{f, Table};
use sw_perfmodel::rbw;
use sw_perfmodel::ChipSpec;

fn main() {
    let chip = ChipSpec::sw26010();
    let t_cpe = chip.peak_gflops_per_cpe();
    let budget = chip.ldm_reg_gbps;

    let mut t = Table::new(
        "Eq. 4/5: GEMM register blocking sweep (per-CPE RBW, GB/s)",
        &[
            "rb_B",
            "rb_No",
            "regs used",
            "RBW plain",
            "RBW simd",
            "fits 46.4?",
        ],
    );
    for rb_b in [4usize, 8, 16, 32] {
        for rb_no in [1usize, 2, 4, 8] {
            // Register budget: rb_B/4 A vectors + rb_No B vectors +
            // (rb_B/4 * rb_No) C vectors out of 32.
            let regs = rb_b / 4 + rb_no + (rb_b / 4) * rb_no;
            let plain = rbw::rbw_reg_gemm(rb_b, rb_no, t_cpe);
            let simd = rbw::rbw_reg_gemm_simd(rb_b, rb_no, t_cpe);
            t.row(vec![
                rb_b.to_string(),
                rb_no.to_string(),
                format!("{regs}/32{}", if regs > 32 { " (!)" } else { "" }),
                f(plain, 1),
                f(simd, 1),
                (simd < budget && regs <= 32).to_string(),
            ]);
        }
    }
    t.print();
    t.write_csv("ablation_regblock");

    let chosen = rbw::rbw_reg_gemm_simd(16, 4, t_cpe);
    println!(
        "\nPaper's choice rb_B=16, rb_No=4: RBW = {:.1} GB/s < {budget} GB/s (Eq. 5),\n\
         with 4 + 4 + 16 = 24 of 32 vector registers used.",
        chosen
    );

    let mut t2 = Table::new(
        "Eq. 3: spatial register blocking (rejected alternative, per-CPE RBW)",
        &["tile", "K=1", "K=3", "K=5"],
    );
    for tile in [4usize, 6, 8, 10] {
        let cell = |k: usize| {
            if tile >= k {
                f(rbw::rbw_reg_spatial(tile, tile, k, k, t_cpe), 1)
            } else {
                "-".into()
            }
        };
        t2.row(vec![format!("{tile}x{tile}"), cell(1), cell(3), cell(5)]);
    }
    t2.print();
    t2.write_csv("ablation_regblock_spatial");
    println!(
        "\nEq. 3's RBW is pinned by the network's Kr,Kc (for K=1 it can never\n\
         drop below DS*T = {:.1} GB/s > {budget}); Eq. 4/5 blocking is tunable for\n\
         any configuration — the reason swDNN uses the GEMM plan.",
        rbw::rbw_reg_spatial(4, 4, 1, 1, t_cpe)
    );
}
