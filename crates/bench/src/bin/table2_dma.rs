//! Table II — measured DMA bandwidths (GB/s) on one CG vs block size.
//!
//! Runs the DMA micro-benchmark of §III-D on the simulated core group: all
//! 64 CPEs stream a large array in blocks of the given size, in both
//! directions, and the achieved bandwidth is computed from simulated time.
//! The engine's curve is calibrated to the published Table II, so the
//! "sim" columns reproduce the paper numbers; the "fit" columns show the
//! mechanistic two-parameter model (setup cost + link ceiling + alignment
//! penalty) that explains the curve's shape.

use sw_bench::report::{f, Table};
use sw_perfmodel::dma::{DmaDirection, RationalFit, TABLE_II_GET, TABLE_II_PUT, TABLE_II_SIZES};
use sw_perfmodel::ChipSpec;
use sw_sim::{LdmBuf, Mesh};

/// Measure achieved aggregate bandwidth with every CPE moving
/// `per_cpe_bytes` in blocks of `block` bytes.
fn measure(dir: DmaDirection, block: usize, per_cpe_bytes: usize) -> f64 {
    let chip = ChipSpec::sw26010();
    let src = vec![1.0f64; per_cpe_bytes / 8 * 64];
    let mut mesh: Mesh<LdmBuf> = Mesh::new(chip, |_, _| LdmBuf { offset: 0, len: 0 });
    mesh.sync_cycles = 0;
    let doubles = block / 8;
    let reqs = per_cpe_bytes / block;
    mesh.superstep(|ctx, buf| {
        *buf = ctx.ldm_alloc(doubles)?;
        let base = ctx.id() * (per_cpe_bytes / 8);
        let mut last = None;
        for r in 0..reqs {
            let h = match dir {
                DmaDirection::Get => ctx.dma_get(*buf, 0, &src, base + r * doubles, doubles)?,
                DmaDirection::Put => ctx.dma_put(*buf, 0, base + r * doubles, doubles)?,
            };
            last = Some(h);
        }
        if let Some(h) = last {
            ctx.dma_wait(h);
        }
        Ok(())
    })
    .expect("dma microbenchmark");
    let st = mesh.stats();
    let total_bytes = (per_cpe_bytes * 64) as f64;
    total_bytes / st.seconds(chip.clock_ghz) / 1e9
}

fn main() {
    let mut t = Table::new(
        "Table II: Measured DMA Bandwidths (GB/s) on 1 CG",
        &[
            "Size(B)",
            "Get(paper)",
            "Get(sim)",
            "Get(fit)",
            "Put(paper)",
            "Put(sim)",
            "Put(fit)",
        ],
    );
    let get_fit = RationalFit::get();
    let put_fit = RationalFit::put();
    for (i, &size) in TABLE_II_SIZES.iter().enumerate() {
        let per_cpe = (1 << 20).max(size * 64);
        let g = measure(DmaDirection::Get, size, per_cpe);
        let p = measure(DmaDirection::Put, size, per_cpe);
        t.row(vec![
            size.to_string(),
            f(TABLE_II_GET[i], 2),
            f(g, 2),
            f(get_fit.bandwidth_gbps(size), 2),
            f(TABLE_II_PUT[i], 2),
            f(p, 2),
            f(put_fit.bandwidth_gbps(size), 2),
        ]);
    }
    t.print();
    t.write_csv("table2_dma");
    println!(
        "\nTakeaway (§III-D): blocks >= 256 B aligned to 128 B approach the\n\
         32-36 GB/s ceiling; 32-64 B blocks waste ~75% of the interface."
    );
}
