//! Fig. 9 — convolution performance for filter sizes 3×3 … 21×21 vs K40m.
//!
//! The right Fig. 8 script: 30 configurations (10 odd filter sizes × three
//! channel settings), `B = 128`, output `64×64`. The paper's claim: swDNN
//! stays above 54 % efficiency across filter sizes while cuDNN falls off
//! its tuned small-filter kernels, so the speedup *grows* with filter size
//! (the upper end of the 1.91–9.75× range lives here).

use rayon::prelude::*;
use sw_bench::configs::fig9_configs;
use sw_bench::report::{f, Table};
use sw_gpuref::K40m;
use sw_perfmodel::ChipSpec;
use swdnn::Executor;

fn main() {
    let configs = fig9_configs();
    let exec = Executor::new();
    let gpu = K40m::default();
    let chip = ChipSpec::sw26010();
    let cgs = chip.core_groups;
    let peak_chip = chip.peak_gflops_per_cg() * cgs as f64;

    let rows: Vec<_> = configs
        .par_iter()
        .enumerate()
        .map(|(i, shape)| {
            let multi = exec.run_multi_cg(shape, cgs).expect("config must run");
            (i + 1, *shape, multi.gflops_chip, gpu.conv_gflops(shape))
        })
        .collect();

    let mut t = Table::new(
        "Fig. 9: conv performance for filter sizes 3x3..21x21 (chip vs K40m)",
        &[
            "#",
            "Ni",
            "No",
            "K",
            "swDNN Gflops",
            "eff%",
            "K40m Gflops",
            "speedup",
        ],
    );
    for (idx, shape, sw, k40) in &rows {
        t.row(vec![
            idx.to_string(),
            shape.ni.to_string(),
            shape.no.to_string(),
            format!("{}x{}", shape.kr, shape.kc),
            f(*sw, 0),
            f(100.0 * sw / peak_chip, 1),
            f(*k40, 0),
            f(sw / k40, 2),
        ]);
    }
    t.print();
    t.write_csv("fig9_filters");

    // The headline shape claim: speedup grows with filter size.
    let mean_speedup = |k: usize| -> f64 {
        let v: Vec<f64> = rows
            .iter()
            .filter(|r| r.1.kr == k)
            .map(|r| r.2 / r.3)
            .collect();
        v.iter().sum::<f64>() / v.len() as f64
    };
    println!(
        "\nMean speedup by filter size: 3x3 = {:.2}x, 9x9 = {:.2}x, 15x15 = {:.2}x, 21x21 = {:.2}x",
        mean_speedup(3),
        mean_speedup(9),
        mean_speedup(15),
        mean_speedup(21)
    );
    println!(
        "Paper shape: swDNN stable across K while cuDNN degrades => crossover-free,\n\
         monotonically growing advantage toward large filters."
    );
}
