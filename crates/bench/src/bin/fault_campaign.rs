//! Fault-injection campaign: sweep DMA fault rates across the paper's
//! convolution configurations and report completion rate, retry overhead,
//! and numeric drift against the reference convolution.
//!
//! The configurations keep the paper's channel settings (the Table III
//! plans and a Fig. 8 diagonal point) at reduced spatial extents — the
//! campaign runs every convolution *in full* (not sampled) so the output
//! can be diffed bit-for-bit against `conv2d_ref`, and fault decisions
//! depend on the actual DMA stream, not an extrapolation.
//!
//! Expected picture:
//!
//! * rate 0 — every config completes first try, zero overhead, zero drift;
//! * rates 1e-4 / 1e-3 — every config still completes (simulator-level DMA
//!   retries absorb the faults), drift stays exactly 0, overhead cycles
//!   grow with the rate;
//! * rate 1e-2 — plans may burn through retries and fall down the plan
//!   chain, but the campaign still completes every config;
//! * dead CPE — the executor masks the faulty row/column and re-plans on
//!   the degraded 4×4 mesh.

use rayon::prelude::*;
use sw_bench::report::{f, Table};
use sw_tensor::init::lattice_tensor;
use sw_tensor::{conv2d_ref, ConvShape, Layout};
use swdnn::resilient::ResilientExecutor;
use swdnn::FaultPlan;

/// Paper channel configurations at campaign scale (B=32, 4×8 output).
fn campaign_configs() -> Vec<(&'static str, ConvShape)> {
    vec![
        // The four Table III configurations' channel settings.
        ("t3 img 128/128", ConvShape::new(32, 128, 128, 4, 8, 3, 3)),
        ("t3 img 128/256", ConvShape::new(32, 128, 256, 4, 8, 3, 3)),
        ("t3 bat 256/256", ConvShape::new(32, 256, 256, 4, 8, 3, 3)),
        ("t3 bat 128/384", ConvShape::new(32, 128, 384, 4, 8, 3, 3)),
        // Fig. 8 diagonal start/end points.
        ("fig8 64/64", ConvShape::new(32, 64, 64, 4, 8, 3, 3)),
        ("fig8 384/384", ConvShape::new(32, 384, 384, 4, 8, 3, 3)),
        // A Fig. 9 larger-filter point.
        ("fig9 64/64 k5", ConvShape::new(32, 64, 64, 4, 8, 5, 5)),
    ]
}

struct Outcome {
    name: &'static str,
    rate: f64,
    completed: bool,
    plan: String,
    attempts: u32,
    dma_retries: u64,
    overhead_cycles: u64,
    slowdown: f64,
    drift: f64,
}

fn main() {
    let configs = campaign_configs();
    let rates = [0.0, 1e-4, 1e-3, 1e-2];
    let seed = 0xFA_17u64;

    let per_config: Vec<Vec<Outcome>> = configs
        .par_iter()
        .map(|(name, shape)| {
            let input = lattice_tensor(shape.input_shape(), Layout::Nchw, 31);
            let filter = lattice_tensor(shape.filter_shape(), Layout::Nchw, 32);
            let expect = conv2d_ref(*shape, &input, &filter);
            let clean_cycles = ResilientExecutor::new()
                .run(shape, &input, &filter)
                .expect("fault-free run must complete")
                .run
                .timing
                .cycles;
            rates
                .iter()
                .map(|&rate| {
                    let fault =
                        (rate > 0.0).then(|| FaultPlan::none(seed).with_dma_fail_rate(rate));
                    match ResilientExecutor::new()
                        .with_fault(fault)
                        .run(shape, &input, &filter)
                    {
                        Ok(rep) => Outcome {
                            name,
                            rate,
                            completed: true,
                            plan: rep.plan_name,
                            attempts: rep.attempts,
                            dma_retries: rep.dma_retries,
                            overhead_cycles: rep.retry_cycles,
                            slowdown: rep.run.timing.cycles as f64 / clean_cycles as f64,
                            drift: rep.run.output.max_abs_diff(&expect),
                        },
                        Err(e) => Outcome {
                            name,
                            rate,
                            completed: false,
                            plan: format!("FAILED: {e}"),
                            attempts: 0,
                            dma_retries: 0,
                            overhead_cycles: 0,
                            slowdown: 0.0,
                            drift: f64::INFINITY,
                        },
                    }
                })
                .collect::<Vec<_>>()
        })
        .collect();
    let outcomes: Vec<Outcome> = per_config.into_iter().flatten().collect();

    let mut t = Table::new(
        "Fault campaign: DMA fault-rate sweep over paper conv configs",
        &[
            "config",
            "rate",
            "plan",
            "attempts",
            "dma retries",
            "overhead cyc",
            "slowdown",
            "max drift",
        ],
    );
    let mut completed = 0usize;
    for o in &outcomes {
        if o.completed {
            completed += 1;
        }
        t.row(vec![
            o.name.to_string(),
            format!("{:.0e}", o.rate),
            o.plan.clone(),
            o.attempts.to_string(),
            o.dma_retries.to_string(),
            o.overhead_cycles.to_string(),
            f(o.slowdown, 3),
            format!("{:.1e}", o.drift),
        ]);
    }
    t.print();
    t.write_csv("fault_campaign");
    println!(
        "completion rate: {}/{} ({}%)",
        completed,
        outcomes.len(),
        100 * completed / outcomes.len()
    );
    let at_1e3: Vec<_> = outcomes.iter().filter(|o| o.rate == 1e-3).collect();
    println!(
        "rate 1e-3: {}/{} completed, {} with retries, max drift {:.1e}",
        at_1e3.iter().filter(|o| o.completed).count(),
        at_1e3.len(),
        at_1e3.iter().filter(|o| o.dma_retries > 0).count(),
        at_1e3.iter().map(|o| o.drift).fold(0.0f64, f64::max),
    );

    // Degraded-mesh demonstration: one CPE dead, the executor masks its
    // row/column and re-plans on the 4×4 mesh.
    let mut d = Table::new(
        "Dead CPE (2,3): degraded-mesh execution",
        &["config", "plan", "degraded", "max drift"],
    );
    for (name, shape) in configs.iter().take(3) {
        let input = lattice_tensor(shape.input_shape(), Layout::Nchw, 31);
        let filter = lattice_tensor(shape.filter_shape(), Layout::Nchw, 32);
        let expect = conv2d_ref(*shape, &input, &filter);
        let rep = ResilientExecutor::new()
            .with_fault(Some(FaultPlan::none(seed).with_dead_cpe(2, 3)))
            .run(shape, &input, &filter)
            .expect("degraded run must complete");
        d.row(vec![
            name.to_string(),
            rep.plan_name.clone(),
            rep.degraded.to_string(),
            format!("{:.1e}", rep.run.output.max_abs_diff(&expect)),
        ]);
    }
    d.print();
}
