//! `autotune_search` — model-guided schedule search gated against the
//! hand-written presets and the host fallback.
//!
//! ```sh
//! # Measure, print the table, write AUTOTUNE.json, enforce the gates.
//! cargo run --release -p sw-bench --bin autotune_search
//!
//! # CI smoke: measure and enforce the gates only (no snapshot diff).
//! cargo run --release -p sw-bench --bin autotune_search -- --smoke
//!
//! # CI gate: measure, enforce gates, AND diff against the baseline.
//! cargo run --release -p sw-bench --bin autotune_search -- --check results/AUTOTUNE.baseline.json
//! ```
//!
//! Two gates, both independent of the baseline diff:
//!
//! * **searched ≥ hand** — on every Table III shape the search is
//!   warm-started with the paper's hand schedule, so its winner must be
//!   no slower (in simulated cycles) than the hand preset; a violation
//!   means search, lowering, or sampled timing regressed;
//! * **stride-2 beats host** — a stride-2 shape the dense plans reject
//!   must get a patch-GEMM schedule faster than the honest host MPE
//!   baseline, proving the search opens shapes to mesh execution instead
//!   of the host fallback.
//!
//! To accept an intentional change, regenerate the baseline (see
//! CONTRIBUTING.md):
//!
//! ```sh
//! cargo run --release -p sw-bench --bin autotune_search
//! cp results/AUTOTUNE.json results/AUTOTUNE.baseline.json
//! ```

use std::path::{Path, PathBuf};
use std::process::exit;
use sw_bench::configs::{table3_configs, BATCH, OUT_IMAGE};
use sw_bench::report::{f, Table};
use sw_obs::{compare, Level, LevelIo, PerfReport, Snapshot, Tolerances};
use sw_perfmodel::ChipSpec;
use sw_tensor::{general_flops, ConvGeometry, ConvShape, Shape4};
use swdnn::plans::{lower_schedule, BatchAwarePlan, LowerCtx, Schedule};
use swdnn::tune::{autotune_general, autotune_with, GeneralTune, TuneReport};

fn results_dir() -> PathBuf {
    PathBuf::from(std::env::var("SWDNN_RESULTS_DIR").unwrap_or_else(|_| "results".into()))
}

fn usage() -> ! {
    eprintln!(
        "usage: autotune_search                    measure, write AUTOTUNE.json, enforce gates\n\
         \u{20}      autotune_search --smoke          measure, enforce gates only\n\
         \u{20}      autotune_search --check <baseline> measure, also fail (exit 1) on drift"
    );
    exit(2);
}

/// One Table III row: the hand preset vs the searched winner.
struct SearchRow {
    shape: ConvShape,
    hand: Schedule,
    hand_cycles: u64,
    report: TuneReport,
}

/// The hand schedule a Table III config names (`img` rows carry their
/// published blocking; `batch` rows resolve `b_Co` the way the plan's
/// auto constructor does).
fn hand_schedule(
    chip: &ChipSpec,
    tag: &str,
    b_b: usize,
    b_co: usize,
    shape: &ConvShape,
) -> Schedule {
    match tag {
        "img" => Schedule::image_aware(b_b, b_co),
        _ => Schedule::batch_aware(BatchAwarePlan::auto_on(*chip, shape).b_co),
    }
}

fn measure_table3(chip: &ChipSpec) -> Vec<SearchRow> {
    table3_configs()
        .into_iter()
        .map(|(tag, b_b, b_co, ni, no)| {
            let shape = ConvShape::new(BATCH, ni, no, OUT_IMAGE, OUT_IMAGE, 3, 3);
            let hand = hand_schedule(chip, tag, b_b, b_co, &shape);
            let plan = lower_schedule(&hand, &shape, &LowerCtx::on_chip(*chip))
                .unwrap_or_else(|e| panic!("hand preset must lower for {shape}: {e}"));
            let hand_cycles = plan
                .time_full_shape(&shape)
                .unwrap_or_else(|e| panic!("hand preset must time for {shape}: {e}"))
                .cycles;
            let report = autotune_with(chip, &shape, &[hand])
                .unwrap_or_else(|e| panic!("search must succeed for {shape}: {e}"));
            SearchRow {
                shape,
                hand,
                hand_cycles,
                report,
            }
        })
        .collect()
}

/// The stride-2 shape the dense schedule space rejects: the search must
/// find a patch-GEMM schedule faster than the host fallback. (Scaled
/// below paper size — the general path simulates full runs, not sampled
/// ones — but still 17×17 outputs over 128×128 channels.)
fn stride2_case() -> (ConvGeometry, Shape4, usize) {
    (
        ConvGeometry::valid(3, 3).with_stride(2, 2),
        Shape4::new(32, 128, 35, 35),
        128,
    )
}

fn measure_stride2(chip: &ChipSpec) -> GeneralTune {
    let (geom, input, no) = stride2_case();
    autotune_general(chip, &geom, input, no)
        .unwrap_or_else(|e| panic!("stride-2 search must succeed: {e}"))
}

fn print_table(rows: &[SearchRow], general: &GeneralTune) {
    let mut t = Table::new(
        "Model-guided schedule search vs hand presets (one CG)",
        &[
            "config",
            "hand schedule",
            "hand cycles",
            "searched schedule",
            "searched cycles",
            "Gflops",
            "enumerated",
            "pruned",
        ],
    );
    for r in rows {
        let best = r.report.best();
        t.row(vec![
            format!("Ni{} No{}", r.shape.ni, r.shape.no),
            r.hand.describe(),
            r.hand_cycles.to_string(),
            best.description.clone(),
            best.cycles.to_string(),
            f(best.gflops, 0),
            r.report.enumerated.to_string(),
            r.report.pruned.to_string(),
        ]);
    }
    let (_, input, no) = stride2_case();
    t.row(vec![
        format!("stride2 B{} Ni{} No{no}", input.d0, input.d1),
        "(host fallback)".into(),
        general.host_cycles.to_string(),
        general.schedule.describe(),
        general.cycles.to_string(),
        f(general.gflops, 0),
        general.enumerated.to_string(),
        "0".into(),
    ]);
    t.print();
    t.write_csv("autotune_search");
}

/// A searched row carries no per-level traffic accounting — the winner's
/// full counters live in the perf snapshot; this snapshot pins the
/// *search outcome*: which schedule won, its cycles/throughput, and the
/// search cost.
fn search_report(
    chip: &ChipSpec,
    config: String,
    plan: String,
    cycles: u64,
    gflops: f64,
    predicted: f64,
    counters: Vec<(String, u64)>,
) -> PerfReport {
    let secs = chip.cycles_to_seconds(cycles);
    PerfReport {
        config,
        plan,
        cycles,
        time_ms: secs * 1e3,
        gflops_measured: gflops,
        gflops_modeled: predicted,
        efficiency_modeled: 0.0,
        memory_bound: false,
        ldm_high_water_frac: 0.0,
        mem: LevelIo::zero(Level::Mem),
        reg: LevelIo::zero(Level::Reg),
        counters,
        host: None,
    }
}

fn snapshot(chip: &ChipSpec, rows: &[SearchRow], general: &GeneralTune) -> Snapshot {
    let mut reports = Vec::new();
    for r in rows {
        let best = r.report.best();
        reports.push(search_report(
            chip,
            r.shape.to_string(),
            best.description.clone(),
            best.cycles,
            best.gflops,
            best.predicted_gflops,
            vec![
                ("hand_cycles".into(), r.hand_cycles),
                ("enumerated".into(), r.report.enumerated as u64),
                ("pruned".into(), r.report.pruned as u64),
            ],
        ));
    }
    let (geom, input, no) = stride2_case();
    let flops = general_flops(&geom, input, no);
    reports.push(search_report(
        chip,
        format!(
            "stride2 B{} Ni{} No{no} {}x{}",
            input.d0, input.d1, input.d2, input.d3
        ),
        general.schedule.describe(),
        general.cycles,
        general.gflops,
        0.0,
        vec![
            ("host_cycles".into(), general.host_cycles),
            ("enumerated".into(), general.enumerated as u64),
            ("flops".into(), flops),
        ],
    ));
    Snapshot::new(reports)
}

fn check_gates(rows: &[SearchRow], general: &GeneralTune) -> Result<Vec<String>, Vec<String>> {
    let mut pass = Vec::new();
    let mut fail = Vec::new();
    for r in rows {
        let best = r.report.best();
        if best.cycles <= r.hand_cycles {
            pass.push(format!(
                "Ni{} No{}: searched {} ({} cycles) ≤ hand {} ({} cycles)",
                r.shape.ni,
                r.shape.no,
                best.description,
                best.cycles,
                r.hand.describe(),
                r.hand_cycles
            ));
        } else {
            fail.push(format!(
                "Ni{} No{}: searched {} cycles > hand {} cycles — search lost to its own warm start",
                r.shape.ni, r.shape.no, best.cycles, r.hand_cycles
            ));
        }
    }
    if general.cycles < general.host_cycles {
        pass.push(format!(
            "stride-2: {} ({} cycles) beats host fallback ({} cycles, {:.1}×)",
            general.schedule.describe(),
            general.cycles,
            general.host_cycles,
            general.speedup_vs_host()
        ));
    } else {
        fail.push(format!(
            "stride-2: searched {} cycles does not beat the host fallback ({} cycles)",
            general.cycles, general.host_cycles
        ));
    }
    if fail.is_empty() {
        Ok(pass)
    } else {
        Err(fail)
    }
}

fn main() {
    sw_runtime::global().prewarm();
    println!("threads: {}", sw_runtime::thread_policy());

    let args: Vec<String> = std::env::args().skip(1).collect();
    let (smoke, baseline_path) = match args.first().map(String::as_str) {
        None => (false, None),
        Some("--smoke") if args.len() == 1 => (true, None),
        Some("--check") if args.len() == 2 => (false, Some(args[1].clone())),
        _ => usage(),
    };

    let chip = ChipSpec::sw26010();
    let rows = measure_table3(&chip);
    let general = measure_stride2(&chip);
    print_table(&rows, &general);

    let mut failed = false;
    match check_gates(&rows, &general) {
        Ok(lines) => {
            for l in lines {
                println!("PASS {l}");
            }
        }
        Err(msgs) => {
            for m in msgs {
                eprintln!("SEARCH GATE FAILURE: {m}");
            }
            failed = true;
        }
    }

    if !smoke {
        let snap = snapshot(&chip, &rows, &general);
        let dir = results_dir();
        std::fs::create_dir_all(&dir).expect("create results dir");
        let out = dir.join("AUTOTUNE.json");
        snap.save(&out).expect("write AUTOTUNE.json");
        println!("(snapshot written to {})", out.display());

        if let Some(path) = baseline_path {
            let baseline = Snapshot::load(Path::new(&path)).unwrap_or_else(|e| {
                eprintln!("cannot load baseline: {e}");
                exit(2);
            });
            // Search outcomes are fully simulated and deterministic.
            let report = compare(&baseline, &snap, &Tolerances::default());
            print!("{}", report.summary());
            failed |= !report.is_ok();
        }
    }

    if failed {
        exit(1);
    }
    println!("\nall autotune search gates met");
}
