//! `cluster_bench` — weak-scaling sweeps of the multi-chip fleet, gated
//! against a committed baseline and a hard efficiency floor.
//!
//! ```sh
//! # Measure 1/2/4/8 chips, print the curves, write CLUSTER.json (+ CSVs
//! # when SWDNN_RESULTS_DIR is set), enforce the efficiency floor.
//! cargo run --release -p sw-bench --bin cluster_bench
//!
//! # CI mode: measure, enforce the floor, AND diff against the committed
//! # baseline — exit 1 on either kind of failure.
//! cargo run --release -p sw-bench --bin cluster_bench -- --check results/CLUSTER.baseline.json
//! ```
//!
//! Three sweeps, all entirely on the deterministic logical clock:
//!
//! * **serving** — the open-loop generator offers `C ×` the single-chip
//!   arrival rate to a `C`-chip [`swdnn::cluster::Cluster`]; req/s per
//!   simulated second must scale at ≥ 80% efficiency at 8 chips;
//! * **training (weak)** — data-parallel SGD with a fixed per-chip
//!   microbatch load; samples/s must scale at ≥ 80% efficiency at 8
//!   chips (the loss is the modeled ring/tree allreduce time);
//! * **training (strong)** — fixed total batch, bucketized gradient
//!   collectives overlapping backward compute on the grouped supernode
//!   topology; at every multi-chip point the overlapped schedule must
//!   strictly beat the overlap-disabled twin.
//!
//! To accept an intentional change, regenerate the baseline (see
//! CONTRIBUTING.md):
//!
//! ```sh
//! cargo run --release -p sw-bench --bin cluster_bench
//! cp results/CLUSTER.json results/CLUSTER.baseline.json
//! ```

use std::path::{Path, PathBuf};
use std::process::exit;
use sw_bench::cluster_scale::{
    check_scaling_gates, check_strong_gates, efficiency, run_serve_scale, run_train_scale,
    run_train_strong, serve_scale_report, train_scale_report, train_strong_report, ServeScalePoint,
    StrongScalePoint, TrainScalePoint, SCALING_CHIPS, SERVE_REQUESTS_PER_CHIP,
};
use sw_bench::report::{f, Table};
use sw_obs::{compare, Snapshot, Tolerances};

fn results_dir() -> PathBuf {
    PathBuf::from(std::env::var("SWDNN_RESULTS_DIR").unwrap_or_else(|_| "results".into()))
}

fn usage() -> ! {
    eprintln!(
        "usage: cluster_bench                    measure, write CLUSTER.json, enforce efficiency floor\n\
         \u{20}      cluster_bench --check <baseline> measure, also fail (exit 1) on drift vs baseline"
    );
    exit(2);
}

fn measure() -> (
    Vec<ServeScalePoint>,
    Vec<TrainScalePoint>,
    Vec<StrongScalePoint>,
) {
    let serve: Vec<ServeScalePoint> = SCALING_CHIPS
        .iter()
        .map(|&chips| {
            run_serve_scale(chips, SERVE_REQUESTS_PER_CHIP)
                .unwrap_or_else(|e| panic!("serve sweep at {chips} chips: {e}"))
        })
        .collect();
    let train: Vec<TrainScalePoint> = SCALING_CHIPS
        .iter()
        .map(|&chips| {
            run_train_scale(chips).unwrap_or_else(|e| panic!("train sweep at {chips} chips: {e}"))
        })
        .collect();
    let strong: Vec<StrongScalePoint> = SCALING_CHIPS
        .iter()
        .map(|&chips| {
            run_train_strong(chips).unwrap_or_else(|e| panic!("strong sweep at {chips} chips: {e}"))
        })
        .collect();
    (serve, train, strong)
}

fn print_curves(serve: &[ServeScalePoint], train: &[TrainScalePoint], strong: &[StrongScalePoint]) {
    let serve_anchor = serve[0].reqs_per_sim_sec;
    let mut st = Table::new(
        "Cluster serving weak scaling (open-loop, simulated time)",
        &[
            "chips",
            "served",
            "spilled",
            "req_per_s",
            "p99_us",
            "efficiency",
        ],
    );
    for p in serve {
        st.row(vec![
            p.chips.to_string(),
            p.summary.served.to_string(),
            p.summary.spilled.to_string(),
            f(p.reqs_per_sim_sec, 0),
            p.summary.p99_latency_us.to_string(),
            f(efficiency(p.reqs_per_sim_sec, p.chips, serve_anchor), 3),
        ]);
    }
    st.print();
    st.write_csv("cluster_serve_scaling");

    let train_anchor = train[0].samples_per_sim_sec;
    let mut tt = Table::new(
        "Cluster training weak scaling (data-parallel SGD, simulated time)",
        &[
            "chips",
            "samples_per_step",
            "step_us",
            "allreduce_us",
            "samples_per_s",
            "efficiency",
        ],
    );
    for p in train {
        tt.row(vec![
            p.chips.to_string(),
            p.samples_per_step.to_string(),
            f(p.step_us, 0),
            f(p.allreduce_us, 1),
            f(p.samples_per_sim_sec, 0),
            f(efficiency(p.samples_per_sim_sec, p.chips, train_anchor), 3),
        ]);
    }
    tt.print();
    tt.write_csv("cluster_train_scaling");

    let mut sg = Table::new(
        "Cluster training strong scaling (fixed total batch, bucketized overlap)",
        &[
            "chips",
            "buckets",
            "step_us",
            "serial_us",
            "comm_us",
            "hidden_us",
            "overlap_permille",
        ],
    );
    for p in strong {
        sg.row(vec![
            p.chips.to_string(),
            p.buckets.to_string(),
            f(p.step_us, 0),
            f(p.serial_step_us, 0),
            f(p.comm_us, 1),
            f(p.hidden_us, 1),
            p.overlap_permille.to_string(),
        ]);
    }
    sg.print();
    sg.write_csv("cluster_train_strong_scaling");
}

fn snapshot(
    serve: &[ServeScalePoint],
    train: &[TrainScalePoint],
    strong: &[StrongScalePoint],
) -> Snapshot {
    let mut reports = Vec::new();
    reports.extend(serve.iter().map(serve_scale_report));
    reports.extend(train.iter().map(train_scale_report));
    reports.extend(strong.iter().map(train_strong_report));
    Snapshot::new(reports)
}

fn main() {
    // Serving batches simulate on the shared worker pool; spawn it before
    // anything is measured.
    sw_runtime::global().prewarm();
    println!("threads: {}", sw_runtime::thread_policy());

    let args: Vec<String> = std::env::args().skip(1).collect();
    let baseline_path = match args.first().map(String::as_str) {
        None => None,
        Some("--check") if args.len() == 2 => Some(args[1].clone()),
        _ => usage(),
    };

    let (serve, train, strong) = measure();
    print_curves(&serve, &train, &strong);

    let snap = snapshot(&serve, &train, &strong);
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let out = dir.join("CLUSTER.json");
    snap.save(&out).expect("write CLUSTER.json");
    println!("(snapshot written to {})", out.display());

    let mut failed = false;
    match check_scaling_gates(&serve, &train) {
        Ok(lines) => {
            for l in lines {
                println!("PASS {l}");
            }
        }
        Err(msgs) => {
            for m in msgs {
                eprintln!("SCALING GATE FAILURE: {m}");
            }
            failed = true;
        }
    }
    match check_strong_gates(&strong) {
        Ok(lines) => {
            for l in lines {
                println!("PASS {l}");
            }
        }
        Err(msgs) => {
            for m in msgs {
                eprintln!("STRONG-SCALING GATE FAILURE: {m}");
            }
            failed = true;
        }
    }

    if let Some(path) = baseline_path {
        let baseline = Snapshot::load(Path::new(&path)).unwrap_or_else(|e| {
            eprintln!("cannot load baseline: {e}");
            exit(2);
        });
        // Everything here is simulated — no host block, no retry loop.
        let report = compare(&baseline, &snap, &Tolerances::default());
        print!("{}", report.summary());
        failed |= !report.is_ok();
    }

    if failed {
        exit(1);
    }
    println!("\nall cluster scaling gates met");
}
