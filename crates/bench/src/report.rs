//! Shared output helpers for the harness binaries.
//!
//! Every binary prints a human-readable aligned table to stdout and, when
//! `SWDNN_RESULTS_DIR` is set, also writes a CSV with the same rows so
//! EXPERIMENTS.md numbers can be regenerated mechanically.

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// A simple column-aligned table accumulator.
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: &str, header: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width");
        self.rows.push(cells);
    }

    /// Print to stdout with aligned columns.
    pub fn print(&self) {
        println!("\n== {} ==", self.title);
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let line = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("{}", line(&self.header));
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
        );
        for row in &self.rows {
            println!("{}", line(row));
        }
    }

    /// Optionally write `<SWDNN_RESULTS_DIR>/<name>.csv`.
    pub fn write_csv(&self, name: &str) {
        let Ok(dir) = std::env::var("SWDNN_RESULTS_DIR") else {
            return;
        };
        let mut path = PathBuf::from(dir);
        if fs::create_dir_all(&path).is_err() {
            eprintln!("cannot create results dir {path:?}");
            return;
        }
        path.push(format!("{name}.csv"));
        let mut out = match fs::File::create(&path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("cannot write {path:?}: {e}");
                return;
            }
        };
        let _ = writeln!(out, "{}", self.header.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        println!("(csv written to {})", path.display());
    }
}

/// Format a float with fixed decimals.
pub fn f(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rows_must_match_header() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.rows.len(), 1);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_width_panics() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn csv_written_when_env_set() {
        let dir = std::env::temp_dir().join("swdnn_report_test");
        std::env::set_var("SWDNN_RESULTS_DIR", &dir);
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.write_csv("unit_test");
        let content = std::fs::read_to_string(dir.join("unit_test.csv")).unwrap();
        assert!(content.contains("a,b"));
        assert!(content.contains("1,2"));
        std::env::remove_var("SWDNN_RESULTS_DIR");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(1.23456, 2), "1.23");
    }
}
