//! The `chaos_serve` scenario: a trace-driven *open-loop* load generator
//! replayed against the fault-injecting serving engine, shared between the
//! `chaos_serve` binary and the chaos BENCH_PERF row.
//!
//! Unlike `serve_load`'s closed loop (submit a batch, drain, repeat), the
//! open-loop generator pre-computes an arrival trace — Poisson or bursty
//! inter-arrival gaps on the logical clock, mixed shapes from
//! [`swdnn::zoo::serving_mix`], mixed tenants and priority tiers — and
//! replays it without ever waiting on the engine: arrivals keep coming
//! whether or not the chip is keeping up, which is exactly the regime
//! where admission control, deadline timeouts, and breaker rerouting earn
//! their keep.
//!
//! Everything runs in simulated microseconds from seeded PRNG streams, so
//! every cell of the fault-rate × traffic-profile sweep reproduces
//! number-for-number and the chaos SLOs are gated in CI:
//!
//! 1. **no lost high-priority work** — every high-priority arrival is
//!    either served or shed *at admission* with a structured
//!    [`SwdnnError::Overloaded`] (depth, limit, retry hint); none ever
//!    vanishes, regardless of fault rate;
//! 2. **zero numeric drift** — completed requests are bit-identical to
//!    the scalar reference at every row-split width rerouting can pick
//!    ([`check_numeric_drift`]);
//! 3. **bounded high-priority tail** — p99 over high-priority completions
//!    stays under [`CHAOS_MAX_HIGH_P99_US`] while faults are active.

use sw_obs::{Level, LevelIo, PerfReport};
use sw_sim::FaultPlan;
use sw_tensor::{conv2d_ref, init::lattice_tensor, ConvShape, Layout};
use swdnn::serve::{
    BatchPolicy, BreakerPolicy, ChaosConfig, Priority, RequestClass, ServeConfig, ServeEngine,
    ServeSummary, ShardedDispatcher,
};
use swdnn::zoo::serving_mix;
use swdnn::{ChipSpec, SwdnnError};

/// Root seed for every trace and fault stream in the sweep.
pub const CHAOS_SEED: u64 = 0xC8A0_5EED;

/// Arrivals replayed per sweep cell (the smoke run and the BENCH_PERF row
/// use [`SNAPSHOT_CHAOS_REQUESTS`]).
pub const FULL_CHAOS_REQUESTS: usize = 400;
pub const SNAPSHOT_CHAOS_REQUESTS: usize = 160;

/// Dispatch deadline attached to every low-priority arrival, logical µs —
/// a few batch-service times, so low traffic queued behind a burst times
/// out instead of waiting it out.
pub const LOW_PRIORITY_DEADLINE_US: u64 = 6_000;

/// Hard ceiling on p99 latency over *high-priority* completions in every
/// sweep cell, faults included. The logical clock makes the measurement
/// exact; the ceiling sits above the worst cell of the committed sweep
/// (steady Poisson against the lossy bus, currently ≈ 29.6 ms of
/// simulated time, dominated by redispatch and fallback costs) and fails
/// on any change that lets faults push the high tier's tail further out.
pub const CHAOS_MAX_HIGH_P99_US: u64 = 40_000;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform in `(0, 1]` — never 0, so `ln` below is always finite.
fn unit(state: &mut u64) -> f64 {
    ((splitmix64(state) >> 11) + 1) as f64 / (1u64 << 53) as f64
}

/// One arrival-process shape for the sweep.
#[derive(Clone, Copy, Debug)]
pub struct TrafficProfile {
    pub name: &'static str,
    /// Mean inter-arrival gap while traffic flows, logical µs.
    pub mean_gap_us: f64,
    /// `Some((on_us, off_us))` gates arrivals into on-windows: requests
    /// that would land in an off-window slide to the next window start,
    /// piling up a burst front. `None` is a pure Poisson process.
    pub burst: Option<(u64, u64)>,
}

/// The committed traffic axis: steady Poisson plus an on/off burst train
/// at the same average rate within windows.
pub fn traffic_profiles() -> Vec<TrafficProfile> {
    vec![
        // A batch of 8 mix-shape requests serves in ≈ 2.3 ms, so the chip
        // sustains ≈ 3.5 req/ms fully batched. Poisson at 1/400 µs keeps
        // the queue busy but rarely full; the burst train arrives at more
        // than the service rate inside its on-windows, so the bounded
        // queue must actually shed.
        TrafficProfile {
            name: "poisson",
            mean_gap_us: 400.0,
            burst: None,
        },
        TrafficProfile {
            name: "bursty",
            mean_gap_us: 150.0,
            burst: Some((60_000, 60_000)),
        },
    ]
}

/// The committed fault axis, from a clean chip to a dead core group.
pub fn fault_profiles() -> Vec<(&'static str, ChaosConfig)> {
    let base = |fault: FaultPlan| ChaosConfig {
        fault,
        dead_cg: 0,
        breaker: BreakerPolicy::default(),
        dispatch_retries: 2,
    };
    vec![
        ("fault_free", base(FaultPlan::none(CHAOS_SEED))),
        (
            "dma_flaky",
            base(
                FaultPlan::none(CHAOS_SEED)
                    .with_dma_fail_rate(2e-3)
                    .with_dma_stalls(5e-3, 512),
            ),
        ),
        (
            "lossy_bus",
            base(
                FaultPlan::none(CHAOS_SEED)
                    .with_dma_fail_rate(1e-3)
                    .with_msg_drop_rate(2e-4),
            ),
        ),
        (
            "dead_cg",
            ChaosConfig {
                dead_cg: 1,
                ..base(FaultPlan::none(CHAOS_SEED).with_dead_cpe(2, 2))
            },
        ),
    ]
}

/// One request in the replayable arrival trace.
#[derive(Clone, Copy, Debug)]
pub struct Arrival {
    pub at_us: u64,
    pub shape: ConvShape,
    pub class: RequestClass,
}

/// Generate the open-loop trace: exponential gaps (burst-gated when the
/// profile says so), shapes drawn from the serving mix, ~70% high-priority
/// traffic across four tenants, low-priority requests carrying a dispatch
/// deadline. Pure function of `(profile, requests, seed)`.
pub fn generate_trace(profile: &TrafficProfile, requests: usize, seed: u64) -> Vec<Arrival> {
    let mix = serving_mix();
    let mut rng = seed;
    let mut t_us: u64 = 0;
    let mut out = Vec::with_capacity(requests);
    for _ in 0..requests {
        let gap = (-unit(&mut rng).ln() * profile.mean_gap_us).round() as u64;
        t_us += gap.max(1);
        if let Some((on_us, off_us)) = profile.burst {
            let period = on_us + off_us;
            let phase = t_us % period;
            if phase >= on_us {
                // Off-window: the arrival slides to the next burst front.
                t_us += period - phase;
            }
        }
        let pick = splitmix64(&mut rng);
        let (_, shape) = mix[(pick % mix.len() as u64) as usize];
        let high = (pick >> 8) % 10 < 7;
        let class = RequestClass {
            priority: if high { Priority::High } else { Priority::Low },
            tenant: ((pick >> 16) % 4) as u32,
            deadline_us: (!high).then_some(LOW_PRIORITY_DEADLINE_US),
        };
        out.push(Arrival {
            at_us: t_us,
            shape,
            class,
        });
    }
    out
}

/// Outcome of one sweep cell.
#[derive(Clone, Debug)]
pub struct ChaosReport {
    pub traffic: &'static str,
    pub faults: &'static str,
    pub offered: u64,
    pub offered_high: u64,
    /// High-priority completions.
    pub high_served: u64,
    /// High-priority admission-time sheds (each returned a structured
    /// `Overloaded` to the caller).
    pub high_shed: u64,
    /// Sheds whose `Overloaded` lacked usable context (depth ≠ limit or a
    /// zero retry hint) — must be 0.
    pub malformed_sheds: u64,
    pub summary: ServeSummary,
    pub busy_cycles: u64,
    pub busy_us: u64,
}

/// Engine configuration for every sweep cell: snapshot-sized batching over
/// a deliberately tight queue so bursts actually exercise admission
/// control.
pub fn chaos_serve_config(chaos: ChaosConfig) -> ServeConfig {
    ServeConfig {
        policy: BatchPolicy {
            max_batch: 8,
            deadline_us: 2_000,
        },
        queue_limit: 24,
        chaos: Some(chaos),
        ..ServeConfig::default()
    }
}

/// Replay one trace against one fault profile: advance the logical clock
/// to each arrival (dispatching whatever triggers on the way), submit,
/// account the outcome, then drain the tail.
pub fn run_chaos_scenario(
    traffic: &TrafficProfile,
    fault_name: &'static str,
    chaos: ChaosConfig,
    requests: usize,
) -> Result<ChaosReport, SwdnnError> {
    let trace = generate_trace(traffic, requests, CHAOS_SEED ^ fault_name.len() as u64);
    let mut engine = ServeEngine::new(chaos_serve_config(chaos))?;
    let mut high_shed = 0u64;
    let mut malformed_sheds = 0u64;
    let mut offered_high = 0u64;
    for a in &trace {
        engine.run_until(a.at_us)?;
        let high = a.class.priority == Priority::High;
        offered_high += high as u64;
        match engine.submit_with(a.shape, a.class) {
            Ok(_) => {}
            Err(SwdnnError::Overloaded {
                depth,
                limit,
                retry_after_us,
            }) => {
                if depth != limit || retry_after_us == 0 {
                    malformed_sheds += 1;
                }
                high_shed += high as u64;
            }
            Err(e) => return Err(e),
        }
    }
    engine.drain()?;
    let high_served = engine
        .completions()
        .iter()
        .filter(|c| c.priority == Priority::High)
        .count() as u64;
    Ok(ChaosReport {
        traffic: traffic.name,
        faults: fault_name,
        offered: trace.len() as u64,
        offered_high,
        high_served,
        high_shed,
        malformed_sheds,
        summary: engine.summary(),
        busy_cycles: engine.counters.busy_cycles.get(),
        busy_us: engine.counters.busy_us.get(),
    })
}

/// Evaluate one sweep cell against the chaos SLOs. Returns the one-line
/// pass description, or a violation message.
pub fn check_chaos_gates(rep: &ChaosReport) -> Result<String, String> {
    let s = rep.summary;
    let line = format!(
        "{}/{}: {} served, {} shed, {} evicted, {} timed out; high p99 {} us \
         (ceiling {CHAOS_MAX_HIGH_P99_US}); trips {}, degraded {}, host {}",
        rep.traffic,
        rep.faults,
        s.served,
        s.rejected,
        s.evicted,
        s.timed_out,
        s.high_p99_latency_us,
        s.breaker_trips,
        s.degraded_batches,
        s.host_batches,
    );
    let high_accounted = rep.high_served + rep.high_shed;
    if high_accounted != rep.offered_high {
        return Err(format!(
            "{line} — lost high-priority work: {} of {} accounted",
            high_accounted, rep.offered_high
        ));
    }
    if rep.malformed_sheds > 0 {
        return Err(format!(
            "{line} — {} shed responses lacked structured Overloaded context",
            rep.malformed_sheds
        ));
    }
    let accounted = s.served + s.rejected + s.evicted + s.timed_out;
    if accounted != rep.offered {
        return Err(format!(
            "{line} — request accounting leak: {accounted} of {} accounted",
            rep.offered
        ));
    }
    if s.high_p99_latency_us > CHAOS_MAX_HIGH_P99_US {
        return Err(format!(
            "{line} — high-priority p99 above ceiling: {} > {CHAOS_MAX_HIGH_P99_US}",
            s.high_p99_latency_us
        ));
    }
    if s.served == 0 || s.gflops_chip <= 0.0 {
        return Err(format!("{line} — zero serving throughput"));
    }
    Ok(line)
}

/// The numeric-drift gate: every row-split width breaker rerouting can
/// pick must produce output bit-identical to the scalar reference on every
/// serving-mix shape. Fault injection only ever changes *timing* and
/// *routing*; if any width drifted numerically, a rerouted batch would
/// silently serve different answers than the fault-free golden run.
pub fn check_numeric_drift() -> Result<String, String> {
    let chip = ChipSpec::sw26010();
    let mut checked = 0usize;
    for (name, shape) in serving_mix() {
        let input = lattice_tensor(shape.input_shape(), Layout::Nchw, 40);
        let filter = lattice_tensor(shape.filter_shape(), Layout::Nchw, 41);
        let golden = conv2d_ref(shape, &input, &filter);
        for cgs in [1usize, 2, 4] {
            let d = ShardedDispatcher::new(chip, cgs)
                .map_err(|e| format!("{name} at {cgs} CGs: {e}"))?;
            let (out, _) = d
                .run(&shape, &input, &filter)
                .map_err(|e| format!("{name} at {cgs} CGs: {e}"))?;
            let drift = out.max_abs_diff(&golden);
            if drift != 0.0 {
                return Err(format!(
                    "{name} drifts {drift:e} from the reference at {cgs} CGs"
                ));
            }
            checked += 1;
        }
    }
    Ok(format!(
        "numeric drift: 0.0 across {checked} shape x width combinations"
    ))
}

/// Stable `PerfReport::key()` of the chaos row in BENCH_PERF.
pub const CHAOS_REPORT_CONFIG: &str = "chaos open-loop (mixed shapes)";
pub const CHAOS_REPORT_PLAN: &str = "chaos_serve";

/// The sweep cell the BENCH_PERF snapshot tracks: steady Poisson traffic
/// against the flaky-DMA profile — faulty enough that retry/stall charging
/// shows up in the counters, tame enough that the row stays comparable
/// run-over-run.
pub fn snapshot_chaos_cell() -> (TrafficProfile, &'static str, ChaosConfig) {
    let traffic = traffic_profiles()[0];
    let (name, chaos) = fault_profiles()[1];
    (traffic, name, chaos)
}

/// Flatten one chaos cell into the BENCH_PERF schema: chip Gflops is the
/// tolerance-gated throughput metric; completion/drop percentiles, drop
/// counts, and fallback-path counts ride in the counter dump (recorded and
/// diffed, not tolerance-gated — the chaos *gates* live in
/// [`check_chaos_gates`]).
pub fn chaos_perf_report(rep: &ChaosReport) -> PerfReport {
    let s = rep.summary;
    let zero = |level| LevelIo {
        level,
        required_gbps: 0.0,
        modeled_gbps: 0.0,
        measured_gbps: 0.0,
        bytes: 0,
    };
    PerfReport {
        config: CHAOS_REPORT_CONFIG.to_string(),
        plan: CHAOS_REPORT_PLAN.to_string(),
        cycles: rep.busy_cycles,
        time_ms: rep.busy_us as f64 / 1e3,
        gflops_measured: s.gflops_chip,
        gflops_modeled: 0.0,
        efficiency_modeled: 0.0,
        memory_bound: false,
        ldm_high_water_frac: 0.0,
        mem: zero(Level::Mem),
        reg: zero(Level::Reg),
        counters: vec![
            ("served".into(), s.served),
            ("shed".into(), s.rejected),
            ("evicted".into(), s.evicted),
            ("timed_out".into(), s.timed_out),
            ("high_served".into(), rep.high_served),
            ("high_shed".into(), rep.high_shed),
            ("p99_latency_us".into(), s.p99_latency_us),
            ("high_p99_latency_us".into(), s.high_p99_latency_us),
            ("shed_p99_wait_us".into(), s.shed_p99_wait_us),
            ("breaker_trips".into(), s.breaker_trips),
            ("degraded_batches".into(), s.degraded_batches),
            ("host_batches".into(), s.host_batches),
        ],
        host: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic_and_mixed() {
        let p = traffic_profiles()[0];
        let a = generate_trace(&p, 200, 7);
        let b = generate_trace(&p, 200, 7);
        assert_eq!(a.len(), 200);
        assert!(a
            .iter()
            .zip(&b)
            .all(|(x, y)| x.at_us == y.at_us && x.shape == y.shape));
        // Monotone non-decreasing arrival clock.
        assert!(a.windows(2).all(|w| w[0].at_us <= w[1].at_us));
        // Both tiers, several tenants, several shapes actually show up.
        let highs = a
            .iter()
            .filter(|x| x.class.priority == Priority::High)
            .count();
        assert!(highs > 100 && highs < 180, "~70% high, got {highs}");
        let tenants: std::collections::BTreeSet<u32> = a.iter().map(|x| x.class.tenant).collect();
        assert!(tenants.len() >= 3);
        let shapes: std::collections::BTreeSet<String> =
            a.iter().map(|x| format!("{}", x.shape)).collect();
        assert!(shapes.len() >= 3);
        // Low-priority traffic carries the dispatch deadline; high never.
        assert!(a.iter().all(|x| match x.class.priority {
            Priority::High => x.class.deadline_us.is_none(),
            Priority::Low => x.class.deadline_us == Some(LOW_PRIORITY_DEADLINE_US),
        }));
    }

    #[test]
    fn bursty_traces_respect_on_windows() {
        let p = traffic_profiles()[1];
        let (on_us, off_us) = p.burst.unwrap();
        let trace = generate_trace(&p, 200, 7);
        // Every arrival lands inside an on-window (window starts count).
        assert!(trace
            .iter()
            .all(|a| a.at_us % (on_us + off_us) < on_us || a.at_us % (on_us + off_us) == 0));
    }

    #[test]
    fn smoke_cell_passes_every_chaos_gate() {
        let (traffic, name, chaos) = snapshot_chaos_cell();
        let rep = run_chaos_scenario(&traffic, name, chaos, SNAPSHOT_CHAOS_REQUESTS).unwrap();
        check_chaos_gates(&rep).unwrap();
        assert_eq!(rep.offered, SNAPSHOT_CHAOS_REQUESTS as u64);
        assert!(rep.summary.served > 0);
    }

    #[test]
    fn chaos_cells_are_deterministic() {
        let (traffic, name, chaos) = snapshot_chaos_cell();
        let run = || {
            let r = run_chaos_scenario(&traffic, name, chaos, 80).unwrap();
            (
                r.summary.served,
                r.summary.rejected,
                r.summary.high_p99_latency_us,
                r.busy_cycles,
                chaos_perf_report(&r).counters,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn numeric_drift_gate_holds() {
        check_numeric_drift().unwrap();
    }

    #[test]
    fn gates_reject_lost_or_malformed_work() {
        let (traffic, name, chaos) = snapshot_chaos_cell();
        let rep = run_chaos_scenario(&traffic, name, chaos, 80).unwrap();
        let mut lost = rep.clone();
        lost.high_served -= 1;
        assert!(check_chaos_gates(&lost)
            .unwrap_err()
            .contains("lost high-priority work"));
        let mut malformed = rep.clone();
        malformed.malformed_sheds = 1;
        assert!(check_chaos_gates(&malformed)
            .unwrap_err()
            .contains("structured Overloaded"));
        let mut slow = rep;
        slow.summary.high_p99_latency_us = CHAOS_MAX_HIGH_P99_US + 1;
        assert!(check_chaos_gates(&slow).unwrap_err().contains("ceiling"));
    }
}
