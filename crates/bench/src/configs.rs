//! The Fig. 8 test scripts: parameter-configuration generators for the
//! performance evaluations.
//!
//! The paper evaluates with `B = 128`, `64×64` output images, `3×3`
//! filters and `(Ni, No)` ranging from `(64, 64)` to `(384, 384)`:
//!
//! * the **left** script generates configurations 1–21 of Fig. 7 — the
//!   diagonal sweep `Ni = No ∈ {64, 80, …, 384}` (step 16 gives exactly
//!   21 points);
//! * the **center** script generates configurations 22–101 — an 80-point
//!   grid over `(Ni, No)` (the scan of the paper is not pixel-legible, so
//!   we use `Ni ∈ {64, 96, …, 352}` × `No ∈ {64, 96, …, 288}`, documented
//!   in DESIGN.md; any 80-point grid over the same ranges exercises the
//!   identical code paths);
//! * the **right** script generates the 30 configurations of Fig. 9 —
//!   filter sizes `3×3 … 21×21` (odd) × three channel settings.

use sw_perfmodel::PlanKind;
use sw_tensor::ConvShape;

/// Canonical evaluation constants (§VII).
pub const BATCH: usize = 128;
pub const OUT_IMAGE: usize = 64;

/// Left script of Fig. 8: configurations 1–21 (diagonal channel sweep).
pub fn fig8_left() -> Vec<ConvShape> {
    (0..21)
        .map(|i| {
            let ch = 64 + 16 * i;
            ConvShape::new(BATCH, ch, ch, OUT_IMAGE, OUT_IMAGE, 3, 3)
        })
        .collect()
}

/// Center script of Fig. 8: configurations 22–101 (channel grid).
pub fn fig8_center() -> Vec<ConvShape> {
    let mut v = Vec::with_capacity(80);
    for ni in (64..=352).step_by(32) {
        for no in (64..=288).step_by(32) {
            v.push(ConvShape::new(BATCH, ni, no, OUT_IMAGE, OUT_IMAGE, 3, 3));
        }
    }
    v
}

/// All 101 configurations of Fig. 7, in figure order.
pub fn fig7_configs() -> Vec<ConvShape> {
    let mut v = fig8_left();
    v.extend(fig8_center());
    v
}

/// Right script of Fig. 8: the 30 configurations of Fig. 9
/// (filter sizes 3–21 × three channel settings).
pub fn fig9_configs() -> Vec<ConvShape> {
    let mut v = Vec::with_capacity(30);
    for &(ni, no) in &[(64, 64), (128, 128), (256, 256)] {
        for k in (3..=21).step_by(2) {
            v.push(ConvShape::new(BATCH, ni, no, OUT_IMAGE, OUT_IMAGE, k, k));
        }
    }
    v
}

/// The configurations the CI perf snapshot (`perf_snapshot` binary)
/// measures: the Table III rows, each pinned to its published plan.
///
/// Deliberately small (CI runs this on every push) and deliberately
/// *stable*: `PerfReport::key()` is derived from the shape and plan, and
/// the committed `results/BENCH_PERF.baseline.json` must contain exactly
/// these keys — adding or removing a configuration requires regenerating
/// the baseline (see CONTRIBUTING.md).
pub fn perf_snapshot_configs() -> Vec<(ConvShape, PlanKind)> {
    vec![
        (
            ConvShape::new(BATCH, 128, 128, OUT_IMAGE, OUT_IMAGE, 3, 3),
            PlanKind::ImageSizeAware,
        ),
        (
            ConvShape::new(BATCH, 128, 256, OUT_IMAGE, OUT_IMAGE, 3, 3),
            PlanKind::ImageSizeAware,
        ),
        (
            ConvShape::new(BATCH, 256, 256, OUT_IMAGE, OUT_IMAGE, 3, 3),
            PlanKind::BatchSizeAware,
        ),
        (
            ConvShape::new(BATCH, 128, 384, OUT_IMAGE, OUT_IMAGE, 3, 3),
            PlanKind::BatchSizeAware,
        ),
    ]
}

/// The `conv_256` Table III row (`Ni = No = 256`, batch-size-aware) — the
/// shape the `sim_throughput` host wall-clock gate is anchored on.
pub fn conv_256() -> (ConvShape, PlanKind) {
    (
        ConvShape::new(BATCH, 256, 256, OUT_IMAGE, OUT_IMAGE, 3, 3),
        PlanKind::BatchSizeAware,
    )
}

/// The four Table III configurations `(plan, Kc, bB, bCo, Ni, No)`.
/// `plan` is "img" or "batch"; blockings apply to the image plan only.
pub fn table3_configs() -> Vec<(&'static str, usize, usize, usize, usize)> {
    vec![
        // (plan, bB, bCo, Ni, No) with Kc = 3
        ("img", 32, 16, 128, 128),
        ("img", 32, 8, 128, 256),
        ("batch", 0, 0, 256, 256),
        ("batch", 0, 0, 128, 384),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn left_script_has_21_diagonal_configs() {
        let v = fig8_left();
        assert_eq!(v.len(), 21);
        assert_eq!(v[0].ni, 64);
        assert_eq!(v[20].ni, 384);
        assert!(v
            .iter()
            .all(|s| s.ni == s.no && s.batch == 128 && s.kr == 3));
    }

    #[test]
    fn center_script_has_80_grid_configs() {
        let v = fig8_center();
        assert_eq!(v.len(), 80);
        assert!(v.iter().all(|s| s.ro == 64 && s.co == 64));
    }

    #[test]
    fn fig7_has_101_configs_total() {
        assert_eq!(fig7_configs().len(), 101);
    }

    #[test]
    fn fig9_covers_filter_sizes_3_to_21() {
        let v = fig9_configs();
        assert_eq!(v.len(), 30);
        assert_eq!(v.iter().map(|s| s.kr).min(), Some(3));
        assert_eq!(v.iter().map(|s| s.kr).max(), Some(21));
        assert!(v.iter().all(|s| s.kr == s.kc));
    }

    #[test]
    fn perf_snapshot_configs_are_valid_and_have_unique_keys() {
        let v = perf_snapshot_configs();
        assert_eq!(v.len(), 4);
        let mut keys: Vec<String> = v
            .iter()
            .map(|(s, k)| {
                assert!(s.is_valid());
                format!("{s} / {k:?}")
            })
            .collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 4, "snapshot keys must be unique");
    }

    #[test]
    fn all_configs_are_valid_and_channel_aligned() {
        for s in fig7_configs().iter().chain(fig9_configs().iter()) {
            assert!(s.is_valid());
            assert_eq!(s.ni % 8, 0, "{s}");
            assert_eq!(s.no % 8, 0, "{s}");
        }
    }
}
