//! The `serve_bench` scenario: a deterministic closed-loop load generator
//! over paper shapes, shared between the `serve_bench` binary and the
//! `perf_snapshot` BENCH_PERF row.
//!
//! The whole engine runs on a logical clock of simulated microseconds, so
//! every number here — latency percentiles included — is exactly
//! reproducible and safe to gate in CI.

use sw_obs::{Level, LevelIo, PerfReport};
use sw_tensor::ConvShape;
use swdnn::serve::{BatchPolicy, ServeConfig, ServeEngine, ServeSummary};
use swdnn::SwdnnError;

/// Paper shapes the serving load cycles over (Table III channels at the
/// canonical `B = 128`, `64×64` output — `ro = 64` splits evenly over the
/// 4 CGs).
pub fn serve_shapes() -> Vec<ConvShape> {
    vec![
        ConvShape::new(128, 64, 64, 64, 64, 3, 3),
        ConvShape::new(128, 128, 128, 64, 64, 3, 3),
        ConvShape::new(128, 128, 256, 64, 64, 3, 3),
    ]
}

/// Canonical bench engine configuration.
pub fn serve_config() -> ServeConfig {
    ServeConfig {
        policy: BatchPolicy {
            max_batch: 8,
            deadline_us: 2_000,
        },
        queue_limit: 64,
        ..ServeConfig::default()
    }
}

/// Outcome of one full scenario run.
#[derive(Clone, Copy, Debug)]
pub struct LoadReport {
    /// Measured window (post-warmup) summary.
    pub summary: ServeSummary,
    /// Busy chip cycles over the measured window.
    pub busy_cycles: u64,
    pub busy_us: u64,
    /// Requests rejected with `Overloaded` during the 10× overload phase.
    pub overload_rejected: u64,
    pub overload_accepted: u64,
    /// Worker-pool handoffs the host paid over the whole scenario
    /// ([`sw_runtime::ExecutionContext::pool_handoffs`] delta) — the
    /// superstep tax of the serving path. Host-side only: a process-wide
    /// counter, so concurrent work in the same process inflates it (the
    /// determinism test normalizes it away; snapshots record the
    /// per-request quotient, which is stable in the single-run binaries).
    pub pool_handoffs: u64,
}

/// Run the closed-loop scenario:
///
/// 1. **warmup** — one full batch per shape, populating the plan cache;
/// 2. **measured window** — `rounds` rounds submitting one full batch per
///    shape and draining, with counters reset after warmup (so the cache
///    hit rate reflects steady state);
/// 3. **overload phase** — 10× the queue limit submitted with no
///    draining; everything past the bound must reject with
///    [`SwdnnError::Overloaded`] (measured-window stats are captured
///    before this phase so the SLO numbers stay clean).
pub fn run_scenario(rounds: usize) -> Result<LoadReport, SwdnnError> {
    let shapes = serve_shapes();
    let cfg = serve_config();
    let mut engine = ServeEngine::new(cfg)?;
    let handoffs_before = sw_runtime::global().pool_handoffs();

    // Warmup: one cap-triggered batch per shape.
    for shape in &shapes {
        for _ in 0..cfg.policy.max_batch {
            engine.submit(*shape)?;
        }
        engine.drain()?;
    }
    engine.reset_measurements();

    // Measured closed loop.
    for _ in 0..rounds {
        for shape in &shapes {
            for _ in 0..cfg.policy.max_batch {
                engine.submit(*shape)?;
            }
            engine.drain()?;
            // A beat of idle time between bursts, like a real arrival gap.
            engine.advance_us(100);
        }
    }
    let summary = engine.summary();
    let busy_cycles = engine.counters.busy_cycles.get();
    let busy_us = engine.counters.busy_us.get();

    // Overload: 10× the queue bound with no draining. The queue must shed
    // load via Overloaded, never grow or panic.
    let mut overload_rejected = 0u64;
    let mut overload_accepted = 0u64;
    for i in 0..(cfg.queue_limit * 10) {
        match engine.submit(shapes[i % shapes.len()]) {
            Ok(_) => overload_accepted += 1,
            Err(SwdnnError::Overloaded {
                depth,
                limit,
                retry_after_us,
            }) => {
                // A shed response must carry usable backpressure context:
                // the full queue it bounced off and a non-zero retry hint.
                assert_eq!(depth, limit, "shed at depth {depth} below limit {limit}");
                assert!(retry_after_us > 0, "shed without a retry hint");
                overload_rejected += 1;
            }
            Err(e) => return Err(e),
        }
    }
    engine.drain()?;

    Ok(LoadReport {
        summary,
        busy_cycles,
        busy_us,
        overload_rejected,
        overload_accepted,
        pool_handoffs: sw_runtime::global().pool_handoffs() - handoffs_before,
    })
}

/// Rounds used by the BENCH_PERF snapshot row and `serve_bench --smoke`.
pub const SNAPSHOT_ROUNDS: usize = 3;

/// Hard SLO floor on serving throughput: requests completed per host
/// wall-clock second over the whole scenario (warmup + measured window +
/// overload). The dev-box figure is an order of magnitude above this; the
/// floor is set low enough that shared-CI scheduling noise cannot trip it
/// while still catching any order-of-magnitude host-path regression
/// (e.g. losing plan-cache reuse or re-simulating per request).
pub const SLO_MIN_REQS_PER_HOST_SEC: f64 = 25.0;

/// Hard SLO ceiling on the measured window's p99 latency, in simulated µs.
/// The scenario runs on a logical clock, so this number is exactly
/// reproducible (currently 1,297,512 µs); the ceiling sits just above it
/// and fails on *any* scheduling or batching change that pushes tail
/// latency up, machine-independently.
pub const SLO_MAX_P99_US: u64 = 1_300_000;

/// Evaluate the serve row of a sim_throughput snapshot against the hard
/// serving SLOs ([`SLO_MIN_REQS_PER_HOST_SEC`], [`SLO_MAX_P99_US`]).
/// Returns the human-readable SLO line on pass and a violation
/// description on failure.
pub fn check_serve_slo(row: &PerfReport) -> Result<String, String> {
    let counter = |name: &str| {
        row.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
    };
    let served = counter("served").ok_or("serve row has no `served` counter")?;
    let p99_us = counter("p99_latency_us").ok_or("serve row has no `p99_latency_us` counter")?;
    let host = row
        .host
        .ok_or("serve row has no host block (SLO gate needs host_secs)")?;
    if host.host_secs <= 0.0 {
        return Err(format!("non-positive host_secs {}", host.host_secs));
    }
    let rps = served as f64 / host.host_secs;
    let line = format!(
        "serve SLO: {rps:.1} req/host-s (floor {SLO_MIN_REQS_PER_HOST_SEC}), \
         p99 {p99_us} us (ceiling {SLO_MAX_P99_US})"
    );
    if rps < SLO_MIN_REQS_PER_HOST_SEC {
        return Err(format!(
            "{line} — throughput below floor: {rps:.1} < {SLO_MIN_REQS_PER_HOST_SEC}"
        ));
    }
    if p99_us > SLO_MAX_P99_US {
        return Err(format!(
            "{line} — p99 above ceiling: {p99_us} > {SLO_MAX_P99_US}"
        ));
    }
    Ok(line)
}

/// Stable `PerfReport::key()` of the serving row in BENCH_PERF.
pub const SERVE_REPORT_CONFIG: &str = "serve closed-loop (3 shapes)";
pub const SERVE_REPORT_PLAN: &str = "sharded_serve";

/// Flatten the serving scenario into the BENCH_PERF schema: chip Gflops is
/// the gated throughput metric; latency percentiles, batch fill, cache hit
/// rate, and rejection counts ride in the counter dump (recorded in the
/// snapshot, visible in diffs, not tolerance-gated).
pub fn serve_perf_report(rep: &LoadReport) -> PerfReport {
    let s = rep.summary;
    let zero = |level| LevelIo {
        level,
        required_gbps: 0.0,
        modeled_gbps: 0.0,
        measured_gbps: 0.0,
        bytes: 0,
    };
    PerfReport {
        config: SERVE_REPORT_CONFIG.to_string(),
        plan: SERVE_REPORT_PLAN.to_string(),
        cycles: rep.busy_cycles,
        time_ms: rep.busy_us as f64 / 1e3,
        gflops_measured: s.gflops_chip,
        gflops_modeled: 0.0,
        efficiency_modeled: 0.0,
        memory_bound: false,
        ldm_high_water_frac: 0.0,
        mem: zero(Level::Mem),
        reg: zero(Level::Reg),
        counters: vec![
            ("served".into(), s.served),
            ("batches".into(), s.batches),
            ("p50_latency_us".into(), s.p50_latency_us),
            ("p99_latency_us".into(), s.p99_latency_us),
            ("batch_fill_permille".into(), (s.batch_fill * 1e3) as u64),
            (
                "plan_cache_hit_permille".into(),
                (s.plan_cache_hit_rate * 1e3) as u64,
            ),
            ("overload_rejected".into(), rep.overload_rejected),
            (
                "pool_handoffs_per_request".into(),
                rep.pool_handoffs / s.served.max(1),
            ),
        ],
        host: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_meets_the_serving_slos() {
        let rep = run_scenario(SNAPSHOT_ROUNDS).unwrap();
        let s = rep.summary;
        assert_eq!(s.served as usize, SNAPSHOT_ROUNDS * 3 * 8);
        assert!(
            s.plan_cache_hit_rate > 0.9,
            "post-warmup hit rate {}",
            s.plan_cache_hit_rate
        );
        assert!(s.gflops_chip > 0.0);
        assert!(s.p99_latency_us >= s.p50_latency_us);
        assert!(rep.overload_rejected > 0, "10x overload must shed load");
        assert_eq!(
            rep.overload_accepted + rep.overload_rejected,
            (serve_config().queue_limit * 10) as u64
        );
    }

    #[test]
    fn scenario_is_deterministic() {
        let a = run_scenario(2).unwrap();
        let b = run_scenario(2).unwrap();
        assert_eq!(a.busy_cycles, b.busy_cycles);
        assert_eq!(a.summary.p99_latency_us, b.summary.p99_latency_us);
        // pool_handoffs is a process-wide host counter: tests running in
        // parallel in this binary inflate it nondeterministically, so
        // normalize it out before comparing the simulated numbers.
        let strip = |rep: &LoadReport| {
            let mut row = serve_perf_report(rep);
            row.counters
                .retain(|(k, _)| k != "pool_handoffs_per_request");
            row
        };
        assert_eq!(strip(&a), strip(&b));
    }

    #[test]
    fn slo_gate_accepts_the_scenario_and_rejects_violations() {
        let rep = run_scenario(SNAPSHOT_ROUNDS).unwrap();
        let mut row = serve_perf_report(&rep);
        assert!(
            check_serve_slo(&row).is_err(),
            "a row without a host block must not pass the gate"
        );
        // 72 served requests in one host second: comfortably above the floor.
        row.host = Some(sw_obs::HostPerf {
            host_secs: 1.0,
            sim_gflops_per_host_sec: 0.0,
        });
        check_serve_slo(&row).expect("healthy run passes");
        // Same simulated numbers, pathological host time: below the floor.
        row.host = Some(sw_obs::HostPerf {
            host_secs: 100.0,
            sim_gflops_per_host_sec: 0.0,
        });
        assert!(check_serve_slo(&row).is_err(), "0.72 req/s must fail");
        // Tail-latency ceiling is exact and machine-independent.
        row.host = Some(sw_obs::HostPerf {
            host_secs: 1.0,
            sim_gflops_per_host_sec: 0.0,
        });
        for c in row.counters.iter_mut() {
            if c.0 == "p99_latency_us" {
                c.1 = SLO_MAX_P99_US + 1;
            }
        }
        assert!(check_serve_slo(&row).is_err(), "p99 over ceiling must fail");
    }

    #[test]
    fn serve_shapes_split_across_four_cgs() {
        for s in serve_shapes() {
            assert!(s.is_valid());
            assert_eq!(s.ro % 4, 0, "{s}");
        }
        assert!(serve_shapes().len() >= 3);
    }
}
