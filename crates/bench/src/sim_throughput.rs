//! Host-side throughput of the simulator itself, shared between the
//! `sim_throughput` binary and the `perf_snapshot` BENCH_PERF row.
//!
//! Everything else the bench harness gates is *simulated* time; this
//! module measures *host* time — how many wall-clock seconds the machine
//! running the simulation spends producing each Table III measurement and
//! one serve-engine closed loop. The headline metric is
//! [`sw_obs::HostPerf::sim_gflops_per_host_sec`]: simulated Gflop of
//! delivered measurement per host second. The simulated side of each row
//! (cycles, counters, Gflops) is deterministic and identical to the
//! corresponding `perf_snapshot` row; only the `host` block is
//! machine-dependent, and the comparator gates it with the loose,
//! directional [`sw_obs::Tolerances::host_rel`] (15%).
//!
//! Note on semantics: conv rows use the executor's sampled timing path
//! (`run_config_with`), exactly like the serving engine and the table
//! regenerators do, so `sim_gflops_per_host_sec` is "extrapolated
//! full-shape Gflop per host second of *sampled* simulation". The
//! extrapolation is deterministic, so the ratio is stable across runs on
//! one machine and comparable across versions of the simulator.

use crate::configs::perf_snapshot_configs;
use crate::serve_load::{run_scenario, serve_perf_report, SNAPSHOT_ROUNDS};
use std::time::Instant;
use sw_obs::{compare, CompareReport, HostPerf, PerfReport, Snapshot, Tolerances};
use sw_perfmodel::PlanKind;
use sw_tensor::ConvShape;
use swdnn::Executor;

/// Plan-name prefix distinguishing sim_throughput rows from the plain
/// simulated rows sharing a snapshot (keys must stay unique).
pub const PLAN_PREFIX: &str = "sim_throughput/";

/// Run `shape` under `kind` on a fresh [`Executor`] `reps` times and
/// report the (deterministic) simulated measurement with the host block
/// attached: `host_secs` is the *minimum* wall-clock over the reps — the
/// noise-robust estimator for a deterministic workload, since scheduler
/// jitter and cache pollution only ever add time. A fresh executor per
/// rep keeps the plan cache cold, so every rep pays the full simulation
/// the way an uncached serving or autotune request would.
pub fn measure_conv(shape: &ConvShape, kind: PlanKind, reps: usize) -> PerfReport {
    assert!(reps > 0, "need at least one rep");
    let mut host_secs = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let exec = Executor::new();
        let rep = exec
            .run_config_with(shape, kind)
            .unwrap_or_else(|e| panic!("sim_throughput measuring {shape}: {e}"));
        host_secs = host_secs.min(t0.elapsed().as_secs_f64());
        last = Some((rep, exec.chip));
    }
    let (rep, chip) = last.expect("reps > 0");
    let mut obs = rep.obs_report(&chip);
    obs.plan = format!("{PLAN_PREFIX}{}", obs.plan);
    obs.host = Some(HostPerf {
        host_secs,
        sim_gflops_per_host_sec: rep.timing.stats.host_gflops(host_secs),
    });
    obs
}

/// Time the serve-engine closed loop (`run_scenario`) and attach the host
/// block to its BENCH_PERF row. Simulated work here is the chip-level
/// Gflops over the measured window's busy time.
pub fn measure_serve(rounds: usize) -> PerfReport {
    let t0 = Instant::now();
    let rep = run_scenario(rounds).unwrap_or_else(|e| panic!("sim_throughput serve loop: {e}"));
    let host_secs = t0.elapsed().as_secs_f64();
    let mut obs = serve_perf_report(&rep);
    obs.plan = format!("{PLAN_PREFIX}{}", obs.plan);
    let sim_gflop = obs.gflops_measured * (rep.busy_us as f64 / 1e6);
    obs.host = Some(HostPerf {
        host_secs,
        sim_gflops_per_host_sec: if host_secs > 0.0 {
            sim_gflop / host_secs
        } else {
            0.0
        },
    });
    obs
}

/// The full sim_throughput suite: every `perf_snapshot` Table III
/// configuration plus the serve closed loop, each with a host block.
pub fn measure_suite(reps: usize) -> Snapshot {
    let mut reports: Vec<PerfReport> = perf_snapshot_configs()
        .iter()
        .map(|(shape, kind)| measure_conv(shape, *kind, reps))
        .collect();
    reports.push(measure_serve(SNAPSHOT_ROUNDS));
    Snapshot::new(reports)
}

/// Fold a fresh measurement into `current`: for every row whose key also
/// appears in `fresh`, keep whichever host block has the smaller
/// `host_secs`. Simulated metrics are deterministic, so only the host
/// block can differ between the two measurements.
pub fn min_host_merge(current: &mut Snapshot, fresh: &Snapshot) {
    for row in &mut current.reports {
        let Some(h) = row.host else { continue };
        let faster = fresh
            .reports
            .iter()
            .find(|f| f.key() == row.key())
            .and_then(|f| f.host)
            .filter(|f| f.host_secs < h.host_secs);
        if let Some(f) = faster {
            row.host = Some(f);
        }
    }
}

/// How many times [`compare_with_host_retry`] re-measures before a host
/// wall-clock failure is treated as real.
pub const HOST_RETRIES: usize = 3;

/// Gate `current` against `baseline`, absorbing host wall-clock noise:
/// on failure, `remeasure` is invoked (up to [`HOST_RETRIES`] times, with
/// a short decorrelating pause), the per-row faster host blocks are
/// folded into `current` ([`min_host_merge`]), and the comparison reruns.
/// Scheduler bursts on a shared runner routinely inflate an entire
/// measurement window past the 15% host tolerance; the running min over
/// several windows converges to the true floor as soon as any one window
/// is quiet, while a real regression deterministically fails every pass
/// (and simulated-metric drift is unaffected — those values are exact
/// and identical across reruns).
pub fn compare_with_host_retry(
    baseline: &Snapshot,
    current: &mut Snapshot,
    tol: &Tolerances,
    mut remeasure: impl FnMut() -> Snapshot,
) -> CompareReport {
    let mut report = compare(baseline, current, tol);
    for attempt in 1..=HOST_RETRIES {
        if report.is_ok() {
            break;
        }
        eprintln!(
            "comparison failed; re-measuring ({attempt}/{HOST_RETRIES}) \
             to rule out a host scheduler burst"
        );
        std::thread::sleep(std::time::Duration::from_millis(400));
        min_host_merge(current, &remeasure());
        report = compare(baseline, current, tol);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs::conv_256;

    #[test]
    fn conv_row_carries_consistent_host_block() {
        let (shape, kind) = conv_256();
        let row = measure_conv(&shape, kind, 1);
        assert!(row.plan.starts_with(PLAN_PREFIX));
        let host = row.host.expect("host block present");
        assert!(host.host_secs > 0.0);
        assert!(host.sim_gflops_per_host_sec > 0.0);
        // flops / host_secs / 1e9, from the same counters the row reports.
        let flops = row
            .counters
            .iter()
            .find(|(k, _)| k == "flops")
            .map(|(_, v)| *v)
            .expect("flops counter");
        let expect = flops as f64 / host.host_secs / 1e9;
        assert!((host.sim_gflops_per_host_sec - expect).abs() < 1e-6 * expect);
    }
}
