//! Benchmark harness regenerating every table and figure of the swDNN
//! paper (IPDPS'17).
//!
//! One binary per artifact (see `src/bin/`):
//!
//! | binary              | paper artifact |
//! |---------------------|----------------|
//! | `table2_dma`        | Table II — DMA bandwidth vs block size |
//! | `fig2_model`        | Fig. 2 — direct-gload vs REG-LDM-MEM paths |
//! | `fig6_reorder`      | Fig. 6 / §VI — 26 → 17 cycles per iteration |
//! | `fig7_channels`     | Fig. 7 — 101 (Ni, No) configs vs K40m |
//! | `fig9_filters`      | Fig. 9 — filter sizes 3×3 … 21×21 vs K40m |
//! | `table3_model`      | Table III — model vs measured |
//! | `scaling_cgs`       | §III-D — 4-CG near-linear scaling |
//! | `ablation_regblock` | §V-C Eq. 5 — register blocking sweep |
//! | `ablation_ldm`      | §IV-A — LDM blocking / double-buffer ablations |
//! | `perf_snapshot`     | observability — `BENCH_PERF.json` snapshot + CI regression gate |
//! | `serve_bench`       | serving — closed-loop load over paper shapes, SLO-gated |
//! | `chaos_serve`       | serving — open-loop fault-rate × burst sweep, chaos-gated |
//! | `cluster_bench`     | cluster — 1→8 chip weak-scaling curves, efficiency-gated |
//! | `autotune_search`   | tuning — schedule search vs hand presets, stride-2 coverage gate |
//!
//! [`configs`] holds the Fig. 8 configuration-generator scripts; [`report`]
//! the table-formatting helpers shared by the binaries.

pub mod chaos_load;
pub mod cluster_scale;
pub mod configs;
pub mod report;
pub mod serve_load;
pub mod sim_throughput;
