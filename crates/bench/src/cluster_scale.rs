//! The `cluster_bench` scenario: weak-scaling sweeps of the multi-chip
//! fleet (serving) and the data-parallel trainer (training), shared
//! between the `cluster_bench` binary and its CI gate.
//!
//! **Weak scaling** holds the *per-chip* load constant while the chip
//! count grows: the serving sweep offers `C ×` the single-chip arrival
//! rate to a `C`-chip [`swdnn::cluster::Cluster`], the training sweep
//! gives every chip the same number of microbatches per step. Perfect
//! scale-out doubles throughput with the chip count; the efficiency
//!
//! ```text
//! eff(C) = throughput(C) / (C × throughput(1))
//! ```
//!
//! captures everything lost to routing imbalance, interconnect time, and
//! allreduce overhead. Both sweeps run entirely on the deterministic
//! logical clock, so every efficiency figure is exact and CI holds the
//! floor ([`SCALING_MIN_EFFICIENCY`]) at [`GATED_CHIPS`] chips without
//! any flake risk.
//!
//! **Strong scaling** holds the *total* batch fixed while chips grow —
//! the regime where collective latency actually bites, because per-chip
//! compute shrinks while the gradient (and its wire time) does not. The
//! strong sweep runs the bucketized, overlap-aware collective on the
//! grouped supernode topology and, at every point, also runs the same
//! configuration with overlap disabled; CI gates that overlap *strictly*
//! reduces the modeled step time at every multi-chip point
//! ([`check_strong_gates`]).

use sw_obs::{Level, LevelIo, PerfReport};
use sw_perfmodel::Topology;
use sw_tensor::{ConvShape, Layout, Shape4, Tensor4};
use swdnn::cluster::{Cluster, ClusterConfig, ClusterSummary, DataParallelTrainer, TrainConfig};
use swdnn::layers::Engine;
use swdnn::optim::Optimizer;
use swdnn::serve::{BatchPolicy, RequestClass, ServeConfig};
use swdnn::zoo::{lenet_12, serving_mix};
use swdnn::SwdnnError;

/// Chip counts the sweep covers.
pub const SCALING_CHIPS: [usize; 4] = [1, 2, 4, 8];

/// The chip count the efficiency floor is enforced at.
pub const GATED_CHIPS: usize = 8;

/// Hard floor on weak-scaling efficiency at [`GATED_CHIPS`] chips, for
/// both serving req/s and training samples/s. The committed sweep sits
/// comfortably above this; the floor fails any change that lets routing
/// imbalance or collective overhead eat the scale-out.
pub const SCALING_MIN_EFFICIENCY: f64 = 0.80;

/// Requests offered *per chip* in the serving sweep (so a `C`-chip run
/// replays `C ×` this many arrivals at `C ×` the single-chip rate).
pub const SERVE_REQUESTS_PER_CHIP: usize = 80;

/// Mean inter-arrival gap of the single-chip serving load, logical µs.
/// A batch of 8 mix-shape requests serves in ≈ 2.3 ms, so one chip
/// sustains ≈ 3.5 req/ms fully batched; offering ≈ 1.4 req/ms keeps
/// every chip busy without driving the bounded queues into shedding.
pub const SERVE_BASE_GAP_US: f64 = 700.0;

/// Root seed for the serving arrival trace.
pub const CLUSTER_SEED: u64 = 0xC1A5_7E12_5EED;

/// Microbatches per chip per training step (weak scaling: the global
/// batch grows with the chip count, per-chip work stays fixed).
pub const TRAIN_MICROBATCHES_PER_CHIP: usize = 2;

/// Samples per microbatch (the master network's fixed batch size).
pub const TRAIN_MICROBATCH_SIZE: usize = 4;

/// Training steps measured per sweep point.
pub const TRAIN_STEPS: usize = 3;

/// Total microbatches of the strong-scaling sweep — fixed across chip
/// counts, so per-chip compute shrinks as chips grow.
pub const STRONG_TOTAL_MICROBATCHES: usize = 8;

/// Bucket size (parameters) of the strong sweep's collective. lenet_12
/// at 2 classes has 646 parameters, so this cuts the gradient into 7
/// buckets — enough in-flight collectives to exercise port contention.
pub const STRONG_BUCKET_PARAMS: usize = 100;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit(state: &mut u64) -> f64 {
    ((splitmix64(state) >> 11) + 1) as f64 / (1u64 << 53) as f64
}

/// The serving-shape mix for the cluster sweep: every [`serving_mix`]
/// shape at two batch sizes — 8 distinct shapes, enough consistent-hash
/// arcs that an 8-chip ring sees work on most chips *before* load
/// spilling evens out the rest.
pub fn cluster_mix() -> Vec<ConvShape> {
    let mut out = Vec::new();
    for (_, s) in serving_mix() {
        out.push(s);
        out.push(ConvShape::new(
            s.batch * 2,
            s.ni,
            s.no,
            s.ro,
            s.co,
            s.kr,
            s.kc,
        ));
    }
    out
}

/// Per-chip engine configuration for the sweep: the chaos bench's tight
/// batching over a queue deep enough that spilling, not shedding,
/// absorbs transient imbalance.
pub fn cluster_serve_config() -> ServeConfig {
    ServeConfig {
        policy: BatchPolicy {
            max_batch: 8,
            deadline_us: 2_000,
        },
        queue_limit: 48,
        ..ServeConfig::default()
    }
}

/// One serving sweep point.
#[derive(Clone, Copy, Debug)]
pub struct ServeScalePoint {
    pub chips: usize,
    pub summary: ClusterSummary,
    /// First arrival to last completion, logical µs.
    pub duration_us: u64,
    /// Requests served per *simulated* second.
    pub reqs_per_sim_sec: f64,
    /// Routing-decision digest (determinism comparand).
    pub fingerprint: u64,
}

/// Replay the weak-scaled open-loop trace against a `chips`-chip fleet.
/// Pure function of `(chips, requests_per_chip)` on the logical clock.
pub fn run_serve_scale(
    chips: usize,
    requests_per_chip: usize,
) -> Result<ServeScalePoint, SwdnnError> {
    let mix = cluster_mix();
    let mut cluster = Cluster::new(ClusterConfig {
        chips,
        serve: cluster_serve_config(),
        ..ClusterConfig::default()
    })?;
    let requests = requests_per_chip * chips;
    let mean_gap = SERVE_BASE_GAP_US / chips as f64;
    let mut rng = CLUSTER_SEED ^ chips as u64;
    let mut t_us = 0u64;
    for _ in 0..requests {
        t_us += ((-unit(&mut rng).ln() * mean_gap).round() as u64).max(1);
        let shape = mix[(splitmix64(&mut rng) % mix.len() as u64) as usize];
        cluster.submit_at(shape, RequestClass::default(), t_us)?;
    }
    cluster.drain()?;
    let duration_us = (0..chips)
        .map(|c| cluster.engine(c).now_us())
        .max()
        .unwrap_or(0)
        .max(1);
    let summary = cluster.summary();
    Ok(ServeScalePoint {
        chips,
        summary,
        duration_us,
        reqs_per_sim_sec: summary.served as f64 / (duration_us as f64 / 1e6),
        fingerprint: cluster.route_fingerprint(),
    })
}

/// One training sweep point.
#[derive(Clone, Copy, Debug)]
pub struct TrainScalePoint {
    pub chips: usize,
    /// Samples in each global batch (`chips × microbatches/chip × mb`).
    pub samples_per_step: usize,
    /// Modeled per-step cluster time, µs.
    pub step_us: f64,
    /// Per-chip compute share of the step, µs.
    pub compute_us: f64,
    /// Modeled collective time, µs.
    pub allreduce_us: f64,
    pub wire_bytes_per_chip: u64,
    /// Samples per *simulated* second.
    pub samples_per_sim_sec: f64,
    /// Mean loss of the last measured step.
    pub loss: f64,
}

/// A deterministic two-class 12×12 task sized to the sweep point's
/// global batch (same generator as the trainer's unit tests).
fn train_task(batch: usize, seed: u64) -> (Tensor4<f64>, Vec<usize>) {
    let mut rng = seed;
    let mut x = Tensor4::zeros(Shape4::new(batch, 1, 12, 12), Layout::Nchw);
    let mut y = Vec::new();
    for b in 0..batch {
        let class = (splitmix64(&mut rng) % 2) as usize;
        for r in 0..12 {
            for c in 0..12 {
                let v = if (class == 0) == (c < 6) { 1.0 } else { 0.1 };
                x.set(b, 0, r, c, v + (unit(&mut rng) - 0.5) * 0.1);
            }
        }
        y.push(class);
    }
    (x, y)
}

/// Run [`TRAIN_STEPS`] data-parallel steps at `chips` chips with the
/// per-chip microbatch load fixed, reporting the last step's modeled
/// cost (steady state: the first steps are identical in time anyway —
/// the model is closed-form — but loss settles).
pub fn run_train_scale(chips: usize) -> Result<TrainScalePoint, SwdnnError> {
    let microbatches = TRAIN_MICROBATCHES_PER_CHIP * chips;
    let batch = microbatches * TRAIN_MICROBATCH_SIZE;
    let net = lenet_12(TRAIN_MICROBATCH_SIZE, 1, 2, Engine::Host, 42)?;
    let mut trainer = DataParallelTrainer::new(
        net,
        Optimizer::sgd(0.05),
        TrainConfig {
            chips,
            microbatches,
            ..TrainConfig::default()
        },
    )?;
    let (x, y) = train_task(batch, CLUSTER_SEED ^ 0xB07);
    let mut last = None;
    for _ in 0..TRAIN_STEPS {
        last = Some(trainer.step(&x, &y)?);
    }
    let rep = last.expect("TRAIN_STEPS > 0");
    Ok(TrainScalePoint {
        chips,
        samples_per_step: rep.samples,
        step_us: rep.step_us,
        compute_us: rep.compute_us,
        allreduce_us: rep.allreduce.time_us,
        wire_bytes_per_chip: rep.allreduce.wire_bytes_per_chip,
        samples_per_sim_sec: rep.samples_per_sec(),
        loss: rep.loss,
    })
}

/// One strong-scaling sweep point: the overlapped, bucketized collective
/// on the grouped topology, next to its overlap-disabled twin.
#[derive(Clone, Copy, Debug)]
pub struct StrongScalePoint {
    pub chips: usize,
    /// Samples per step — constant across the sweep by construction.
    pub samples_per_step: usize,
    /// Modeled step time with bucketized overlap, µs.
    pub step_us: f64,
    /// Same configuration, buckets held until compute ends, µs.
    pub serial_step_us: f64,
    /// Σ per-bucket wire time, µs.
    pub comm_us: f64,
    /// Wire time hidden under backward compute, µs.
    pub hidden_us: f64,
    pub overlap_permille: u64,
    pub buckets: usize,
    /// Samples per *simulated* second (overlapped configuration).
    pub samples_per_sim_sec: f64,
    /// Mean loss of the last step — must match between the two
    /// configurations (schedules move time, never numerics).
    pub loss: f64,
}

/// Run the strong-scaling point at `chips` chips: fixed
/// [`STRONG_TOTAL_MICROBATCHES`] global microbatches, bucketized
/// collectives on [`Topology::sw_supernode`], overlapped and not.
pub fn run_train_strong(chips: usize) -> Result<StrongScalePoint, SwdnnError> {
    let batch = STRONG_TOTAL_MICROBATCHES * TRAIN_MICROBATCH_SIZE;
    let cfg = TrainConfig {
        chips,
        microbatches: STRONG_TOTAL_MICROBATCHES,
        bucket_params: Some(STRONG_BUCKET_PARAMS),
        overlap: true,
        topology: Topology::sw_supernode(),
        ..TrainConfig::default()
    };
    let (x, y) = train_task(batch, CLUSTER_SEED ^ 0x57F0);
    let run = |cfg: TrainConfig| -> Result<swdnn::cluster::StepReport, SwdnnError> {
        let net = lenet_12(TRAIN_MICROBATCH_SIZE, 1, 2, Engine::Host, 42)?;
        let mut trainer = DataParallelTrainer::new(net, Optimizer::sgd(0.05), cfg)?;
        let mut last = None;
        for _ in 0..TRAIN_STEPS {
            last = Some(trainer.step(&x, &y)?);
        }
        Ok(last.expect("TRAIN_STEPS > 0"))
    };
    let over = run(cfg)?;
    let serial = run(TrainConfig {
        overlap: false,
        ..cfg
    })?;
    debug_assert_eq!(over.loss, serial.loss);
    Ok(StrongScalePoint {
        chips,
        samples_per_step: over.samples,
        step_us: over.step_us,
        serial_step_us: serial.step_us,
        comm_us: over.collective.comm_us,
        hidden_us: over.collective.hidden_us,
        overlap_permille: over.collective.overlap_permille,
        buckets: over.collective.buckets,
        samples_per_sim_sec: over.samples_per_sec(),
        loss: over.loss,
    })
}

/// Evaluate the strong sweep: overlap must *strictly* beat the
/// non-overlapped schedule at every multi-chip point (and visibly hide
/// wire time), and adding chips at fixed total batch must keep cutting
/// the step time through the gated count.
pub fn check_strong_gates(strong: &[StrongScalePoint]) -> Result<Vec<String>, Vec<String>> {
    let mut lines = Vec::new();
    let mut failures = Vec::new();
    for p in strong {
        if p.chips == 1 {
            if p.comm_us != 0.0 {
                failures.push(format!(
                    "strong-scaling 1-chip anchor has {} µs of wire time",
                    p.comm_us
                ));
            }
            continue;
        }
        let line = format!(
            "train strong-scaling at {} chips: step {:.1} µs overlapped vs {:.1} µs serial \
             ({} buckets, {}‰ of wire time hidden)",
            p.chips, p.step_us, p.serial_step_us, p.buckets, p.overlap_permille
        );
        if p.step_us < p.serial_step_us && p.overlap_permille > 0 {
            lines.push(line);
        } else {
            failures.push(format!("{line} — overlap must strictly win"));
        }
    }
    if let Some(anchor) = strong.iter().find(|p| p.chips == 1) {
        for p in strong
            .iter()
            .filter(|p| p.chips > 1 && p.chips <= GATED_CHIPS)
        {
            if p.step_us >= anchor.step_us {
                failures.push(format!(
                    "strong-scaling stopped paying at {} chips: step {:.1} µs ≥ 1-chip {:.1} µs",
                    p.chips, p.step_us, anchor.step_us
                ));
            }
        }
    } else {
        failures.push("strong sweep has no 1-chip anchor".into());
    }
    if failures.is_empty() {
        Ok(lines)
    } else {
        Err(failures)
    }
}

/// Weak-scaling efficiency of a sweep point against the 1-chip anchor.
pub fn efficiency(throughput: f64, chips: usize, single_chip_throughput: f64) -> f64 {
    throughput / (chips as f64 * single_chip_throughput)
}

/// Evaluate the sweep against the scaling gates. Returns the pass lines,
/// or every violation found.
pub fn check_scaling_gates(
    serve: &[ServeScalePoint],
    train: &[TrainScalePoint],
) -> Result<Vec<String>, Vec<String>> {
    let mut lines = Vec::new();
    let mut failures = Vec::new();
    let gate = |name: &str, chips: usize, eff: f64, extra: String| -> Result<String, String> {
        let line = format!(
            "{name} weak-scaling at {chips} chips: {:.1}% efficiency \
             (floor {:.0}%){extra}",
            eff * 100.0,
            SCALING_MIN_EFFICIENCY * 100.0
        );
        if chips == GATED_CHIPS && eff < SCALING_MIN_EFFICIENCY {
            Err(format!("{line} — below the floor"))
        } else {
            Ok(line)
        }
    };
    match serve.iter().find(|p| p.chips == 1) {
        Some(anchor) => {
            for p in serve.iter().filter(|p| p.chips > 1) {
                let eff = efficiency(p.reqs_per_sim_sec, p.chips, anchor.reqs_per_sim_sec);
                match gate(
                    "serve",
                    p.chips,
                    eff,
                    format!("; {:.0} req/s", p.reqs_per_sim_sec),
                ) {
                    Ok(l) => lines.push(l),
                    Err(m) => failures.push(m),
                }
            }
        }
        None => failures.push("serve sweep has no 1-chip anchor".into()),
    }
    match train.iter().find(|p| p.chips == 1) {
        Some(anchor) => {
            for p in train.iter().filter(|p| p.chips > 1) {
                let eff = efficiency(p.samples_per_sim_sec, p.chips, anchor.samples_per_sim_sec);
                match gate(
                    "train",
                    p.chips,
                    eff,
                    format!("; {:.0} samples/s", p.samples_per_sim_sec),
                ) {
                    Ok(l) => lines.push(l),
                    Err(m) => failures.push(m),
                }
            }
        }
        None => failures.push("train sweep has no 1-chip anchor".into()),
    }
    // Scale-out that sheds or loses work is not scale-out.
    for p in serve {
        let offered = (SERVE_REQUESTS_PER_CHIP * p.chips) as u64;
        if p.summary.served != offered {
            failures.push(format!(
                "serve at {} chips served {} of {offered} offered",
                p.chips, p.summary.served
            ));
        }
    }
    if failures.is_empty() {
        Ok(lines)
    } else {
        Err(failures)
    }
}

/// Stable `PerfReport::key()` pieces of the cluster snapshot rows.
pub const SERVE_SCALE_CONFIG: &str = "cluster serve weak-scaling";
pub const TRAIN_SCALE_CONFIG: &str = "cluster train weak-scaling";
pub const TRAIN_STRONG_CONFIG: &str = "cluster train strong-scaling";

fn zero_io(level: Level) -> LevelIo {
    LevelIo {
        level,
        required_gbps: 0.0,
        modeled_gbps: 0.0,
        measured_gbps: 0.0,
        bytes: 0,
    }
}

/// Flatten a serving sweep point into the snapshot schema: req/s per
/// simulated second is the tolerance-gated throughput metric; counts,
/// spill/reroute totals, the tail, and the routing fingerprint ride in
/// the counter dump (recorded and diffed, the hard gates live in
/// [`check_scaling_gates`]).
pub fn serve_scale_report(p: &ServeScalePoint) -> PerfReport {
    let s = p.summary;
    PerfReport {
        config: SERVE_SCALE_CONFIG.to_string(),
        plan: format!("chips={}", p.chips),
        cycles: 0,
        time_ms: p.duration_us as f64 / 1e3,
        gflops_measured: p.reqs_per_sim_sec,
        gflops_modeled: 0.0,
        efficiency_modeled: 0.0,
        memory_bound: false,
        ldm_high_water_frac: 0.0,
        mem: zero_io(Level::Mem),
        reg: zero_io(Level::Reg),
        counters: vec![
            ("served".into(), s.served),
            ("rejected".into(), s.rejected),
            ("spilled".into(), s.spilled),
            ("p50_latency_us".into(), s.p50_latency_us),
            ("p99_latency_us".into(), s.p99_latency_us),
            ("ingress_bytes".into(), s.ingress_bytes),
            // Low 48 bits only: the snapshot JSON stores numbers as f64,
            // which is exact up to 2^53 but not across the full u64 range.
            (
                "route_fingerprint48".into(),
                p.fingerprint & 0xFFFF_FFFF_FFFF,
            ),
        ],
        host: None,
    }
}

/// Flatten a training sweep point: samples per simulated second is the
/// gated metric; step anatomy and wire bytes ride in the counters.
pub fn train_scale_report(p: &TrainScalePoint) -> PerfReport {
    PerfReport {
        config: TRAIN_SCALE_CONFIG.to_string(),
        plan: format!("chips={}", p.chips),
        cycles: 0,
        time_ms: p.step_us / 1e3,
        gflops_measured: p.samples_per_sim_sec,
        gflops_modeled: 0.0,
        efficiency_modeled: 0.0,
        memory_bound: false,
        ldm_high_water_frac: 0.0,
        mem: zero_io(Level::Mem),
        reg: zero_io(Level::Reg),
        counters: vec![
            ("samples_per_step".into(), p.samples_per_step as u64),
            ("step_us".into(), p.step_us.round() as u64),
            ("compute_us".into(), p.compute_us.round() as u64),
            ("allreduce_us".into(), p.allreduce_us.round() as u64),
            ("wire_bytes_per_chip".into(), p.wire_bytes_per_chip),
        ],
        host: None,
    }
}

/// Flatten a strong-scaling point: overlapped samples/s is the gated
/// metric; the serial comparator, the overlap gauge, and the bucket
/// anatomy ride in the counters so any drift in the collective model
/// shows up in the baseline diff.
pub fn train_strong_report(p: &StrongScalePoint) -> PerfReport {
    PerfReport {
        config: TRAIN_STRONG_CONFIG.to_string(),
        plan: format!("chips={}", p.chips),
        cycles: 0,
        time_ms: p.step_us / 1e3,
        gflops_measured: p.samples_per_sim_sec,
        gflops_modeled: 0.0,
        efficiency_modeled: 0.0,
        memory_bound: false,
        ldm_high_water_frac: 0.0,
        mem: zero_io(Level::Mem),
        reg: zero_io(Level::Reg),
        counters: vec![
            ("samples_per_step".into(), p.samples_per_step as u64),
            ("step_us".into(), p.step_us.round() as u64),
            ("serial_step_us".into(), p.serial_step_us.round() as u64),
            ("comm_us".into(), p.comm_us.round() as u64),
            ("hidden_us".into(), p.hidden_us.round() as u64),
            ("overlap_permille".into(), p.overlap_permille),
            ("buckets".into(), p.buckets as u64),
        ],
        host: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_points_are_deterministic() {
        let a = run_serve_scale(2, 20).unwrap();
        let b = run_serve_scale(2, 20).unwrap();
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.duration_us, b.duration_us);
        assert_eq!(a.summary.served, b.summary.served);
        assert_eq!(a.summary.served, 40);
    }

    #[test]
    fn train_weak_scaling_meets_the_floor() {
        let one = run_train_scale(1).unwrap();
        let eight = run_train_scale(GATED_CHIPS).unwrap();
        assert_eq!(
            eight.samples_per_step,
            GATED_CHIPS * TRAIN_MICROBATCHES_PER_CHIP * TRAIN_MICROBATCH_SIZE
        );
        let eff = efficiency(
            eight.samples_per_sim_sec,
            GATED_CHIPS,
            one.samples_per_sim_sec,
        );
        assert!(
            eff >= SCALING_MIN_EFFICIENCY,
            "training weak-scaling efficiency {eff:.3} under the floor"
        );
        assert_eq!(one.allreduce_us, 0.0, "single chip pays no collective");
        assert!(eight.allreduce_us > 0.0);
    }

    #[test]
    fn gates_reject_a_flat_curve() {
        let mk = |chips: usize, thr: f64| ServeScalePoint {
            chips,
            summary: ClusterSummary {
                served: (SERVE_REQUESTS_PER_CHIP * chips) as u64,
                ..ClusterSummary::default()
            },
            duration_us: 1,
            reqs_per_sim_sec: thr,
            fingerprint: 0,
        };
        let tr = |chips: usize, thr: f64| TrainScalePoint {
            chips,
            samples_per_step: 8,
            step_us: 1.0,
            compute_us: 1.0,
            allreduce_us: 0.0,
            wire_bytes_per_chip: 0,
            samples_per_sim_sec: thr,
            loss: 0.0,
        };
        // Serving stops scaling past 4 chips: the 8-chip gate must trip.
        let serve = vec![mk(1, 1000.0), mk(8, 4000.0)];
        let train = vec![tr(1, 1000.0), tr(8, 8000.0)];
        let errs = check_scaling_gates(&serve, &train).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("below the floor")),
            "{errs:?}"
        );
        // A healthy pair of curves passes.
        let serve = vec![mk(1, 1000.0), mk(8, 7600.0)];
        check_scaling_gates(&serve, &train).unwrap();
    }

    #[test]
    fn reports_have_stable_unique_keys() {
        let p = run_train_scale(2).unwrap();
        let r = train_scale_report(&p);
        assert_eq!(r.key(), "cluster train weak-scaling / chips=2");
        assert!(r.gflops_measured > 0.0);
        let s = run_train_strong(2).unwrap();
        let r = train_strong_report(&s);
        assert_eq!(r.key(), "cluster train strong-scaling / chips=2");
    }

    #[test]
    fn strong_scaling_overlap_wins_at_every_multi_chip_point() {
        let strong: Vec<StrongScalePoint> = SCALING_CHIPS
            .iter()
            .map(|&c| run_train_strong(c).unwrap())
            .collect();
        let lines = check_strong_gates(&strong).unwrap_or_else(|e| panic!("{e:?}"));
        assert_eq!(lines.len(), SCALING_CHIPS.len() - 1);
        for p in &strong {
            assert_eq!(
                p.samples_per_step,
                STRONG_TOTAL_MICROBATCHES * TRAIN_MICROBATCH_SIZE
            );
            if p.chips > 1 {
                assert!(p.buckets > 1, "gradient must actually be bucketized");
                assert!(p.hidden_us > 0.0);
            }
        }
        // Determinism: the sweep is a pure function of the chip count.
        let again = run_train_strong(4).unwrap();
        let first = strong.iter().find(|p| p.chips == 4).unwrap();
        assert_eq!(again.step_us, first.step_us);
        assert_eq!(again.loss, first.loss);
    }

    #[test]
    fn strong_gates_reject_an_overlap_regression() {
        let p = StrongScalePoint {
            chips: 4,
            samples_per_step: 32,
            step_us: 10.0,
            serial_step_us: 10.0, // no win ⇒ must fail
            comm_us: 5.0,
            hidden_us: 0.0,
            overlap_permille: 0,
            buckets: 7,
            samples_per_sim_sec: 1.0,
            loss: 0.0,
        };
        let anchor = StrongScalePoint {
            chips: 1,
            comm_us: 0.0,
            step_us: 100.0,
            serial_step_us: 100.0,
            ..p
        };
        let errs = check_strong_gates(&[anchor, p]).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("strictly win")), "{errs:?}");
    }

    #[test]
    fn cluster_mix_is_richer_than_the_serving_mix() {
        let mix = cluster_mix();
        assert_eq!(mix.len(), 2 * serving_mix().len());
        let distinct: std::collections::BTreeSet<String> =
            mix.iter().map(|s| format!("{s}")).collect();
        assert_eq!(distinct.len(), mix.len(), "no duplicate shapes");
    }
}
