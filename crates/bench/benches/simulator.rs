//! Criterion benchmarks of the simulator itself: superstep dispatch, DMA
//! machinery, the distributed GEMM round, and a full small convolution on
//! the mesh — how fast the reproduction simulates, not how fast the
//! simulated chip is.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sw_perfmodel::ChipSpec;
use sw_sim::{LdmBuf, Mesh};
use sw_tensor::init::seeded_tensor;
use sw_tensor::{ConvShape, Layout};
use swdnn::plans::{ConvPlan, ImageAwarePlan};
use swdnn::Conv2d;

fn bench_superstep(c: &mut Criterion) {
    c.bench_function("mesh superstep (empty)", |b| {
        let mut mesh: Mesh<()> = Mesh::new(ChipSpec::sw26010(), |_, _| ());
        b.iter(|| {
            mesh.superstep(|ctx, _| {
                black_box(ctx.id());
                Ok(())
            })
            .unwrap()
        })
    });

    c.bench_function("mesh superstep (dma 512B/cpe)", |b| {
        let src = vec![1.0f64; 64 * 64];
        let mut mesh: Mesh<LdmBuf> =
            Mesh::new(ChipSpec::sw26010(), |_, _| LdmBuf { offset: 0, len: 0 });
        mesh.superstep(|ctx, buf| {
            *buf = ctx.ldm_alloc(64)?;
            Ok(())
        })
        .unwrap();
        b.iter(|| {
            mesh.superstep(|ctx, buf| {
                let h = ctx.dma_get(*buf, 0, &src, ctx.id() * 64, 64)?;
                ctx.dma_wait(h);
                Ok(())
            })
            .unwrap()
        })
    });
}

fn bench_mesh_conv(c: &mut Criterion) {
    let shape = ConvShape::new(32, 8, 8, 2, 4, 3, 3);
    let input = seeded_tensor(shape.input_shape(), Layout::Nchw, 1);
    let filter = seeded_tensor(shape.filter_shape(), Layout::Nchw, 2);
    let plan = ImageAwarePlan::new(sw_perfmodel::Blocking { b_b: 32, b_co: 4 });

    c.bench_function("image_aware plan, 32x8x8 2x4 out", |b| {
        b.iter(|| {
            plan.run(black_box(&shape), black_box(&input), black_box(&filter))
                .unwrap()
        })
    });

    let conv = Conv2d::new(shape).unwrap();
    c.bench_function("auto plan end-to-end, 32x8x8 2x4 out", |b| {
        b.iter(|| conv.forward(black_box(&input), black_box(&filter)).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_superstep, bench_mesh_conv
}
criterion_main!(benches);
