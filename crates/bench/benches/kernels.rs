//! Criterion micro-benchmarks for the host-side hot paths: the reference
//! and im2col convolutions, layout transforms, and the instruction-level
//! machinery (pipeline simulation, dependence analysis, scheduling).
//!
//! These measure the *reproduction's own* performance (wall-clock of the
//! Rust code), complementing the harness binaries that report *simulated*
//! SW26010 performance.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sw_isa::pipeline::LatencyTable;
use sw_isa::{
    list_schedule, naive_gemm_kernel, reordered_gemm_kernel, DepGraph, DualPipe, KernelSpec,
};
use sw_tensor::init::seeded_tensor;
use sw_tensor::{conv2d_ref, ConvShape, Layout};

fn bench_conv_paths(c: &mut Criterion) {
    let shape = ConvShape::new(4, 8, 8, 8, 8, 3, 3);
    let input = seeded_tensor(shape.input_shape(), Layout::Nchw, 1);
    let filter = seeded_tensor(shape.filter_shape(), Layout::Nchw, 2);

    c.bench_function("conv2d_ref 4x8x8x8 k3", |b| {
        b.iter(|| conv2d_ref(black_box(shape), black_box(&input), black_box(&filter)))
    });
    c.bench_function("conv2d_im2col 4x8x8x8 k3", |b| {
        b.iter(|| {
            sw_gpuref::conv2d_im2col(black_box(&shape), black_box(&input), black_box(&filter))
        })
    });
}

fn bench_layout_transforms(c: &mut Criterion) {
    let shape = ConvShape::new(32, 16, 16, 16, 16, 3, 3);
    let t = seeded_tensor::<f64>(shape.input_shape(), Layout::Nchw, 3);
    c.bench_function("to_layout ImageAware 32x16x18x18", |b| {
        b.iter(|| black_box(&t).to_layout(Layout::ImageAware))
    });
    c.bench_function("to_layout BatchAware 32x16x18x18", |b| {
        b.iter(|| black_box(&t).to_layout(Layout::BatchAware))
    });
}

fn bench_pipeline(c: &mut Criterion) {
    let pipe = DualPipe::default();
    let naive = naive_gemm_kernel(KernelSpec::new(16));
    let reord = reordered_gemm_kernel(KernelSpec::new(16));
    c.bench_function("DualPipe::run naive n=16", |b| {
        b.iter(|| pipe.run(black_box(&naive)))
    });
    c.bench_function("DualPipe::run reordered n=16", |b| {
        b.iter(|| pipe.run(black_box(&reord)))
    });

    let lat = LatencyTable::default();
    c.bench_function("DepGraph::build n=16 kernel", |b| {
        b.iter(|| DepGraph::build(black_box(&reord), black_box(&lat)))
    });
    let one_iter = naive_gemm_kernel(KernelSpec::new(1));
    c.bench_function("list_schedule one iteration", |b| {
        b.iter(|| list_schedule(black_box(&one_iter), black_box(&lat)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_conv_paths, bench_layout_transforms, bench_pipeline
}
criterion_main!(benches);
