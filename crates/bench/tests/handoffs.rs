//! Regression gate for the superstep tax (DESIGN.md §14): the fused
//! superstep path must issue strictly fewer worker-pool handoffs than the
//! unfused round-per-handoff loop on every Table III shape.
//!
//! Runs on a private [`sw_runtime::ExecutionContext`] so concurrent tests
//! sharing the global pool cannot inflate the deltas, and in its own
//! integration-test binary so toggling the process-wide
//! [`swdnn::plans::gemm_mesh::force_unfused`] switch cannot race other
//! suites.

use sw_bench::configs::perf_snapshot_configs;
use swdnn::plans::gemm_mesh::{force_unfused, unfused_forced};
use swdnn::Executor;

#[test]
fn fused_supersteps_cut_pool_handoffs_on_every_table3_shape() {
    if unfused_forced() {
        // Under SWDNN_UNFUSED=1 (the CI opt-out determinism run) both arms
        // take the unfused path; there is no ratio to gate.
        eprintln!("SWDNN_UNFUSED set; skipping handoff-ratio gate");
        return;
    }
    let rt: &'static sw_runtime::ExecutionContext =
        Box::leak(Box::new(sw_runtime::ExecutionContext::new()));
    let exec = Executor::new().on_runtime(rt);
    sw_runtime::with_threads(8, || {
        for (shape, kind) in perf_snapshot_configs() {
            let fused = exec.run_config_with(&shape, kind).unwrap();
            force_unfused(true);
            let unfused = exec.run_config_with(&shape, kind).unwrap();
            force_unfused(false);
            assert_eq!(
                fused.timing.cycles, unfused.timing.cycles,
                "{shape}: fusing supersteps must not move simulated time"
            );
            assert!(
                fused.pool_handoffs > 0,
                "{shape}: at 8 lanes the fused path still crosses the pool"
            );
            // O(rotations) vs O(rounds): each rotation is `mesh_dim` rounds
            // of 2 supersteps each, so the unfused loop pays ≥ 2× (in fact
            // ~2·mesh_dim×) the handoffs of the fused path. Gating on 2×
            // proves fused < rounds without hard-coding plan internals.
            assert!(
                2 * fused.pool_handoffs < unfused.pool_handoffs,
                "{shape}: fused {} vs unfused {} handoffs",
                fused.pool_handoffs,
                unfused.pool_handoffs
            );
        }
    });
}
