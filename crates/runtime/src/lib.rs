//! The persistent runtime layer: a worker pool spawned once per
//! [`ExecutionContext`] and reused by every parallel region in the
//! workspace — mesh supersteps, multi-CG fan-outs, bench sweeps — instead
//! of paying a fresh scoped-thread spawn per superstep.
//!
//! # Handoff protocol
//!
//! Work arrives as a *job*: a closure plus a number of `slots` (the
//! deterministic chunks of the old `shims/rayon` partitioning —
//! `chunk = n.div_ceil(threads)`, chunks in index order). The posting
//! thread pushes the job onto a queue guarded by one mutex, wakes the
//! workers through a condvar, and then participates itself: caller and
//! workers race to claim slot indices from an atomic counter until the
//! job is exhausted. The caller blocks until every claimed slot has
//! *finished* (not merely been claimed), so the job's closure — borrowed
//! from the caller's stack — provably outlives all uses.
//!
//! # Determinism
//!
//! The pool changes *who* runs a slot, never *what* the slots are: slot
//! boundaries depend only on the item count and the effective thread
//! count, and results are written into slot-indexed positions of the
//! output, so a [`ExecutionContext::map_index`] over the same input is
//! bit-identical regardless of which worker executed which slot, in which
//! order, on how many cores. The simulator additionally synchronizes all
//! simulated clocks at superstep barriers, so simulated time is
//! independent of the host schedule entirely; the golden-digest suite
//! (`tests/determinism.rs`) pins both properties at thread counts 1, 4,
//! and 8.
//!
//! # Panics
//!
//! A panic in a slot is caught, held until every other slot of that job
//! has finished, and then resumed on the posting thread — matching
//! `std::thread::scope` semantics. The pool itself is never poisoned: no
//! lock is held across user code, and workers survive to serve the next
//! job.

use std::any::{Any, TypeId};
use std::cell::Cell;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

// ---------------------------------------------------------------------------
// Thread-count policy
// ---------------------------------------------------------------------------

thread_local! {
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    /// The pool lane this thread represents: worker `w` is lane `w + 1`,
    /// the posting thread is lane 0 (represented as `None` so posts from
    /// arbitrary threads behave identically). Used by [`ExecutionContext::
    /// run_affine`] to keep slot `i` on the same OS thread across calls.
    static WORKER_LANE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Run `f` with every parallel region on this thread using exactly
/// `threads` lanes (still capped by the item count). Subsumes the old
/// `rayon::with_max_threads`: determinism tests pin the fan-out to 1, 4,
/// 8, … and assert identical simulation results. Note that unlike a plain
/// cap this *raises* the lane count on single-core hosts, so the
/// schedules being compared are genuinely different. Restores the
/// previous override on exit, including across panics.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    assert!(threads > 0, "thread count must be positive");
    let prev = THREAD_OVERRIDE.with(|c| c.replace(Some(threads)));
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(prev);
    f()
}

/// The active [`with_threads`] override on this thread, if any.
pub fn current_override() -> Option<usize> {
    THREAD_OVERRIDE.with(|c| c.get())
}

/// The `SWDNN_THREADS` environment override, read once per process.
fn env_threads() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("SWDNN_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
    })
}

fn machine_threads() -> usize {
    std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1)
}

/// The lane count parallel regions on this thread will use, resolved from
/// (in priority order) the [`with_threads`] override, the `SWDNN_THREADS`
/// environment variable, and the machine's `available_parallelism`.
pub fn effective_threads() -> usize {
    current_override()
        .or_else(env_threads)
        .unwrap_or_else(machine_threads)
}

/// Human-readable description of the resolved thread policy, for bench
/// banners (so a snapshot's host numbers can be tied to the lane count
/// that produced them).
pub fn thread_policy() -> String {
    if let Some(n) = current_override() {
        format!("{n} (with_threads override)")
    } else if let Some(n) = env_threads() {
        format!("{n} (SWDNN_THREADS)")
    } else {
        format!("{} (available_parallelism)", machine_threads())
    }
}

// ---------------------------------------------------------------------------
// Jobs
// ---------------------------------------------------------------------------

/// One parallel region in flight. The closure pointer is lifetime-erased;
/// safety rests on the posting thread keeping the closure alive until
/// `wait` observes every slot finished.
struct Job {
    /// The user closure, called once per slot index.
    task: *const (dyn Fn(usize) + Sync),
    /// Total slots; claimed from `next_slot` until exhausted.
    slots: usize,
    next_slot: AtomicUsize,
    /// Slots not yet *finished* (claimed-and-returned). Guards `done`.
    unfinished: Mutex<usize>,
    done: Condvar,
    /// First (lowest-slot) captured panic, resumed by the poster.
    panic: Mutex<Option<(usize, Box<dyn Any + Send>)>>,
}

// SAFETY: the raw closure pointer is only dereferenced between job post
// and the poster's `wait` returning, during which the closure (which is
// `Sync`, per the bound under which the pointer was created) is kept
// alive by the posting stack frame.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    fn exhausted(&self) -> bool {
        self.next_slot.load(Ordering::Relaxed) >= self.slots
    }

    /// Claim and run slots until none remain. Called by workers and by
    /// the posting thread alike.
    fn run_slots(&self) {
        loop {
            let slot = self.next_slot.fetch_add(1, Ordering::Relaxed);
            if slot >= self.slots {
                return;
            }
            // SAFETY: see the struct-level invariant — the poster keeps
            // the closure alive until every slot has finished.
            let task = unsafe { &*self.task };
            let outcome = catch_unwind(AssertUnwindSafe(|| task(slot)));
            if let Err(payload) = outcome {
                let mut held = self.panic.lock().unwrap();
                // Keep the lowest-slot panic so the propagated payload is
                // deterministic when several slots blow up at once.
                match &*held {
                    Some((lowest, _)) if *lowest <= slot => {}
                    _ => *held = Some((slot, payload)),
                }
            }
            let mut left = self.unfinished.lock().unwrap();
            *left -= 1;
            if *left == 0 {
                self.done.notify_all();
            }
        }
    }

    /// Block until every slot has finished running.
    fn wait(&self) {
        let mut left = self.unfinished.lock().unwrap();
        while *left > 0 {
            left = self.done.wait(left).unwrap();
        }
    }
}

// ---------------------------------------------------------------------------
// The pool
// ---------------------------------------------------------------------------

struct PoolState {
    queue: VecDeque<Arc<Job>>,
    shutdown: bool,
    spawned: usize,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signals workers: a job was posted, or shutdown began.
    work: Condvar,
}

fn worker_loop(shared: Arc<PoolShared>, lane: usize) {
    WORKER_LANE.with(|c| c.set(Some(lane)));
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                // Exhausted jobs linger at the front until someone looks;
                // drop them so their Arc (and closure pointer) is released
                // promptly.
                while st.queue.front().is_some_and(|j| j.exhausted()) {
                    st.queue.pop_front();
                }
                if let Some(j) = st.queue.front() {
                    break Arc::clone(j);
                }
                if st.shutdown {
                    return;
                }
                st = shared.work.wait(st).unwrap();
            }
        };
        job.run_slots();
    }
}

/// Scratch arena key: one pool of parked values per (type, caller key).
type ScratchKey = (TypeId, usize);

/// A persistent worker pool plus the policies and arenas every layer of
/// the stack shares: thread-count resolution ([`effective_threads`]) and
/// reusable host-side scratch (e.g. the GEMM pack arenas), keyed so
/// concurrent leases get distinct instances.
///
/// One context is meant to be shared process-wide ([`global`]); the
/// simulator, executor, serving engine, and benches all thread a
/// `&'static ExecutionContext` through their layers. Dropping a
/// (non-global) context shuts the pool down and joins every worker.
pub struct ExecutionContext {
    shared: Arc<PoolShared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    scratch: Mutex<HashMap<ScratchKey, Vec<Box<dyn Any + Send>>>>,
    /// Jobs actually posted to the worker queue (parallel regions only;
    /// inline serial regions are free and not counted). The currency of
    /// the superstep tax: each handoff pays a condvar wake plus a join
    /// barrier, so fused paths are judged by how few of these they issue.
    pool_handoffs: AtomicU64,
}

impl Default for ExecutionContext {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for ExecutionContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let spawned = self.shared.state.lock().unwrap().spawned;
        f.debug_struct("ExecutionContext")
            .field("workers", &spawned)
            .field("effective_threads", &effective_threads())
            .finish()
    }
}

/// The process-wide context. Never dropped; its workers live for the
/// process. Everything that does not explicitly receive a context uses
/// this one.
pub fn global() -> &'static ExecutionContext {
    static GLOBAL: OnceLock<ExecutionContext> = OnceLock::new();
    GLOBAL.get_or_init(ExecutionContext::new)
}

impl ExecutionContext {
    /// A context with no workers yet; workers spawn lazily on the first
    /// parallel region that wants them.
    pub fn new() -> Self {
        ExecutionContext {
            shared: Arc::new(PoolShared {
                state: Mutex::new(PoolState {
                    queue: VecDeque::new(),
                    shutdown: false,
                    spawned: 0,
                }),
                work: Condvar::new(),
            }),
            handles: Mutex::new(Vec::new()),
            scratch: Mutex::new(HashMap::new()),
            pool_handoffs: AtomicU64::new(0),
        }
    }

    /// Total jobs posted to the worker queue since this context was
    /// created. Monotone; callers measure a region by delta. Zero when
    /// every region so far ran inline (effective thread count 1).
    pub fn pool_handoffs(&self) -> u64 {
        self.pool_handoffs.load(Ordering::Relaxed)
    }

    /// Spawn workers up to `target` (the posting thread is lane 0, so a
    /// `t`-lane region wants `t - 1` workers).
    fn ensure_workers(&self, target: usize) {
        let mut new_handles = Vec::new();
        {
            let mut st = self.shared.state.lock().unwrap();
            while st.spawned < target {
                let shared = Arc::clone(&self.shared);
                let name = format!("sw-runtime-{}", st.spawned);
                let lane = st.spawned + 1;
                let handle = std::thread::Builder::new()
                    .name(name)
                    .spawn(move || worker_loop(shared, lane))
                    .expect("spawn sw-runtime worker");
                new_handles.push(handle);
                st.spawned += 1;
            }
        }
        if !new_handles.is_empty() {
            self.handles.lock().unwrap().extend(new_handles);
        }
    }

    /// Spawn the workers the current thread policy calls for, so the
    /// first measured superstep does not pay thread-creation cost. Benches
    /// call this before their timed region.
    pub fn prewarm(&self) {
        let t = effective_threads();
        if t > 1 {
            self.ensure_workers(t - 1);
        }
    }

    /// Workers currently spawned (not necessarily busy).
    pub fn workers(&self) -> usize {
        self.shared.state.lock().unwrap().spawned
    }

    /// Run `f(slot)` for every `slot in 0..slots` across the pool, blocking
    /// until all slots finish. With an effective thread count of one the
    /// slots run inline on the caller — the fast path on single-core hosts
    /// and under `with_threads(1)`. Panics in any slot are re-raised here
    /// after the region completes (lowest slot wins); the pool survives.
    pub fn run(&self, slots: usize, f: impl Fn(usize) + Sync) {
        if slots == 0 {
            return;
        }
        let threads = effective_threads().min(slots);
        if threads <= 1 {
            for s in 0..slots {
                f(s);
            }
            return;
        }
        self.ensure_workers(threads - 1);
        let local: &(dyn Fn(usize) + Sync) = &f;
        // SAFETY: erasing the closure's lifetime is sound because this
        // frame owns `f` and does not return until `job.wait()` has
        // observed every slot finished.
        let erased: *const (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(local) };
        let job = Arc::new(Job {
            task: erased,
            slots,
            next_slot: AtomicUsize::new(0),
            unfinished: Mutex::new(slots),
            done: Condvar::new(),
            panic: Mutex::new(None),
        });
        {
            let mut st = self.shared.state.lock().unwrap();
            st.queue.push_back(Arc::clone(&job));
        }
        self.pool_handoffs.fetch_add(1, Ordering::Relaxed);
        self.shared.work.notify_all();
        job.run_slots();
        job.wait();
        // The workers' lazy front-of-queue cleanup usually removes the
        // exhausted job; make sure it is gone before the closure dies.
        {
            let mut st = self.shared.state.lock().unwrap();
            st.queue.retain(|j| !Arc::ptr_eq(j, &job));
        }
        let held = job.panic.lock().unwrap().take();
        if let Some((_, payload)) = held {
            resume_unwind(payload);
        }
    }

    /// Run `steps` *dependent* parallel regions under ONE pool handoff.
    ///
    /// Step `k` fans out over `slots_for(k)` slots, each running
    /// `work(k, slot)`. When the last slot of a step finishes, the lane
    /// that finished it runs `seam(k)` exactly once — with every write of
    /// step `k` visible — and its return value decides whether the
    /// remaining steps run (`false` aborts the call). All lanes then move
    /// to step `k + 1` without returning to the pool queue, so the condvar
    /// wake + join barrier is paid once per call instead of once per step.
    ///
    /// Slot boundaries, seam order, and the work each slot performs are a
    /// pure function of `(steps, slots_for, effective_threads())` — which
    /// lane runs which slot varies, but nothing observable does. With an
    /// effective thread count of one the whole schedule runs inline in the
    /// identical order (step-major, slots ascending, seam after each).
    ///
    /// `slots_for(k)` must be at least 1 for every step. A panic in `work`
    /// or `seam` aborts the remaining steps and is resumed on the caller.
    pub fn run_stepped(
        &self,
        steps: usize,
        slots_for: impl Fn(usize) -> usize + Sync,
        work: impl Fn(usize, usize) + Sync,
        seam: impl Fn(usize) -> bool + Sync,
    ) {
        if steps == 0 {
            return;
        }
        let max_slots = (0..steps).map(&slots_for).max().unwrap_or(1);
        assert!(
            (0..steps).all(|k| slots_for(k) >= 1),
            "run_stepped requires at least one slot per step"
        );
        let threads = effective_threads().min(max_slots);
        if threads <= 1 {
            for step in 0..steps {
                for slot in 0..slots_for(step) {
                    work(step, slot);
                }
                if !seam(step) {
                    return;
                }
            }
            return;
        }

        // One packed word drives the whole schedule: the high 32 bits hold
        // the current step, the low 32 a claim counter that restarts at
        // zero when the step advances. Lanes `fetch_add` tickets; a ticket
        // whose claim lands below the step's slot count runs that slot, a
        // ticket above it ("overclaim") means every slot of the step is
        // already claimed and the lane waits for the seam to advance the
        // step. The advance `store` wipes the low word, so stale tickets
        // from the old step decode as overclaims and are harmless (ABA
        // safe: claims never carry across steps).
        struct Ctl {
            packed: AtomicU64,
            /// Slots of the current step not yet finished; the lane that
            /// decrements this to zero owns the seam.
            unfinished: AtomicUsize,
            park: Mutex<()>,
            advance: Condvar,
            /// First captured panic; once set, remaining steps are skipped.
            panic: Mutex<Option<Box<dyn Any + Send>>>,
            aborted: AtomicBool,
        }
        let ctl = Ctl {
            packed: AtomicU64::new(0),
            unfinished: AtomicUsize::new(slots_for(0)),
            park: Mutex::new(()),
            advance: Condvar::new(),
            panic: Mutex::new(None),
            aborted: AtomicBool::new(false),
        };
        // When the lane count exceeds the machine's cores
        // (`with_threads`/`SWDNN_THREADS` oversubscription) an overclaimed
        // lane can neither spin usefully (it steals cycles from the lane
        // holding the work) nor park productively (it will wake, claim
        // nothing, and park again every step). Such lanes leave the
        // schedule instead: slot claims are dynamic, and the last finisher
        // of each step carries on to the next, so the remaining lanes —
        // in the limit, one — drive every step to completion with
        // identical results and near-serial scheduling overhead.
        let oversubscribed = threads > machine_threads();
        let capture = |payload: Box<dyn Any + Send>| {
            let mut held = ctl.panic.lock().unwrap();
            if held.is_none() {
                *held = Some(payload);
            }
            ctl.aborted.store(true, Ordering::Release);
        };

        self.run(threads, |_| loop {
            let ticket = ctl.packed.fetch_add(1, Ordering::AcqRel);
            let step = (ticket >> 32) as usize;
            let claim = (ticket & 0xffff_ffff) as usize;
            if step >= steps {
                return;
            }
            if claim < slots_for(step) {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| work(step, claim))) {
                    capture(payload);
                }
                if ctl.unfinished.fetch_sub(1, Ordering::AcqRel) == 1 {
                    // Last finisher of the step: run the seam, decide the
                    // next step, publish it, wake parked lanes. Acquire on
                    // the decrement above makes every slot's writes
                    // visible here; Release on the stores below makes the
                    // seam's writes visible to whoever claims next.
                    let cont = if ctl.aborted.load(Ordering::Acquire) {
                        false
                    } else {
                        match catch_unwind(AssertUnwindSafe(|| seam(step))) {
                            Ok(c) => c,
                            Err(payload) => {
                                capture(payload);
                                false
                            }
                        }
                    };
                    let next = if cont { step + 1 } else { steps };
                    if next < steps {
                        ctl.unfinished.store(slots_for(next), Ordering::Release);
                    }
                    ctl.packed.store((next as u64) << 32, Ordering::Release);
                    // Taking the park lock before notifying closes the
                    // missed-wakeup window against lanes between their
                    // re-check and their `wait`.
                    let _g = ctl.park.lock().unwrap();
                    ctl.advance.notify_all();
                }
            } else {
                if oversubscribed {
                    return;
                }
                // Overclaim: spin briefly (seams are short), then park.
                let mut spins = 0u32;
                while (ctl.packed.load(Ordering::Acquire) >> 32) as usize == step {
                    spins += 1;
                    if spins < 16_384 {
                        std::hint::spin_loop();
                    } else {
                        let g = ctl.park.lock().unwrap();
                        if (ctl.packed.load(Ordering::Acquire) >> 32) as usize == step {
                            drop(ctl.advance.wait(g).unwrap());
                        }
                    }
                }
            }
        });

        let held = ctl.panic.lock().unwrap().take();
        if let Some(payload) = held {
            resume_unwind(payload);
        }
    }

    /// [`Self::run`] with per-lane slot affinity: slot `i` prefers the OS
    /// thread that is pool lane `i`, so state a slot touches every call
    /// (e.g. one CG's simulation arrays in the serve dispatcher) stays on
    /// one thread's cache instead of migrating between requests. Falls
    /// back to any unclaimed slot when the preferred one is taken; by
    /// pigeonhole (one claim per invocation) every slot runs exactly once.
    /// Purely a scheduling hint — observable results are identical to
    /// [`Self::run`].
    pub fn run_affine(&self, slots: usize, f: impl Fn(usize) + Sync) {
        if slots == 0 {
            return;
        }
        let threads = effective_threads().min(slots);
        if threads <= 1 {
            for s in 0..slots {
                f(s);
            }
            return;
        }
        let taken: Vec<AtomicBool> = (0..slots).map(|_| AtomicBool::new(false)).collect();
        self.run(slots, |_| {
            let pref = WORKER_LANE.with(|c| c.get()).unwrap_or(0) % slots;
            let slot = (0..slots)
                .map(|i| (pref + i) % slots)
                .find(|&i| !taken[i].swap(true, Ordering::AcqRel))
                .expect("pigeonhole: an unclaimed slot always exists");
            f(slot);
        });
    }

    /// [`Self::map_index`] scheduled through [`Self::run_affine`]: same
    /// deterministic chunking and index-ordered results, but chunk `i`
    /// prefers pool lane `i` across calls.
    pub fn map_index_affine<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let threads = effective_threads().min(n.max(1));
        if threads <= 1 || n <= 1 {
            return (0..n).map(f).collect();
        }
        let chunk = n.div_ceil(threads);
        let slots = n.div_ceil(chunk);
        let mut out: Vec<R> = Vec::with_capacity(n);
        let base = SendPtr(out.as_mut_ptr());
        self.run_affine(slots, |slot| {
            let lo = slot * chunk;
            let hi = ((slot + 1) * chunk).min(n);
            for i in lo..hi {
                // SAFETY: slots cover disjoint index ranges and each index
                // is written exactly once, into capacity reserved above.
                unsafe { base.get().add(i).write(f(i)) };
            }
        });
        // SAFETY: `run_affine` returns only after every slot finished, so
        // all `n` elements are initialized.
        unsafe { out.set_len(n) };
        out
    }

    /// `(0..n).map(f)` across the pool, results in index order. Chunking
    /// is the deterministic static partition the old rayon shim used:
    /// `chunk = n.div_ceil(threads)`, chunks in order — so the slot
    /// boundaries (and therefore everything observable) depend only on
    /// `n` and the effective thread count, never on scheduling.
    pub fn map_index<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let threads = effective_threads().min(n.max(1));
        if threads <= 1 || n <= 1 {
            return (0..n).map(f).collect();
        }
        let chunk = n.div_ceil(threads);
        let slots = n.div_ceil(chunk);
        let mut out: Vec<R> = Vec::with_capacity(n);
        let base = SendPtr(out.as_mut_ptr());
        self.run(slots, |slot| {
            let lo = slot * chunk;
            let hi = ((slot + 1) * chunk).min(n);
            for i in lo..hi {
                // SAFETY: slots cover disjoint index ranges and each index
                // is written exactly once, into capacity reserved above.
                unsafe { base.get().add(i).write(f(i)) };
            }
        });
        // SAFETY: `run` returns only after every slot finished, so all `n`
        // elements are initialized. (On a panic `run` unwinds first and
        // the written elements leak — safe, and only on the panic path.)
        unsafe { out.set_len(n) };
        out
    }

    /// `items.iter_mut().enumerate().map(f)` across the pool, results in
    /// index order. The parallel-superstep entry point: the simulator maps
    /// over its 64 CPE nodes with this.
    pub fn map_mut<T, R, F>(&self, items: &mut [T], f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, &mut T) -> R + Sync,
    {
        let base = SendPtr(items.as_mut_ptr());
        let n = items.len();
        self.map_index(n, move |i| {
            // SAFETY: `map_index` hands each index to exactly one slot, so
            // the &mut borrows are disjoint and within bounds.
            let item = unsafe { &mut *base.get().add(i) };
            f(i, item)
        })
    }

    /// Consume `items`, mapping `f(index, item)` across the pool; results
    /// in index order. Backs the rayon façade's single-pass `collect`.
    pub fn map_vec<I, R, F>(&self, items: Vec<I>, f: F) -> Vec<R>
    where
        I: Send,
        R: Send,
        F: Fn(usize, I) -> R + Sync,
    {
        let n = items.len();
        let threads = effective_threads().min(n.max(1));
        if threads <= 1 || n <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, x)| f(i, x))
                .collect();
        }
        let mut items = items;
        let src = SendPtr(items.as_mut_ptr());
        // The elements now belong to the slots: each is moved out exactly
        // once by `ptr::read`. Emptying the Vec first keeps its Drop from
        // double-freeing them; on a panic the unread tail leaks (safe).
        // SAFETY: 0 <= capacity, elements above are transferred, not lost.
        unsafe { items.set_len(0) };
        let out = self.map_index(n, |i| {
            // SAFETY: each index read exactly once, see above.
            let item = unsafe { src.get().add(i).read() };
            f(i, item)
        });
        drop(items);
        out
    }

    /// The serial counterpart of [`Self::map_mut`]: same signature family,
    /// `FnMut` closure, guaranteed index order on the calling thread. The
    /// simulator's `superstep_serial` routes here so the "stay serial"
    /// policy decision lives in the runtime layer alongside the parallel
    /// one.
    pub fn map_mut_serial<T, R, F>(&self, items: &mut [T], mut f: F) -> Vec<R>
    where
        F: FnMut(usize, &mut T) -> R,
    {
        items.iter_mut().enumerate().map(|(i, x)| f(i, x)).collect()
    }

    /// Lease a reusable scratch value of type `T` under `key` (e.g. the
    /// mesh dimension for GEMM pack arenas). A parked value from an
    /// earlier lease with the same `(T, key)` is handed back if one is
    /// free, else `init` builds a fresh one; concurrent leases therefore
    /// always get distinct instances. The value returns to the arena when
    /// the lease drops.
    pub fn scratch<T, F>(&self, key: usize, init: F) -> ScratchLease<'_, T>
    where
        T: Send + 'static,
        F: FnOnce() -> T,
    {
        let parked = self
            .scratch
            .lock()
            .unwrap()
            .get_mut(&(TypeId::of::<T>(), key))
            .and_then(Vec::pop);
        let value = match parked {
            Some(boxed) => boxed
                .downcast::<T>()
                .expect("scratch arena keyed by TypeId"),
            None => Box::new(init()),
        };
        ScratchLease {
            ctx: self,
            key,
            value: Some(value),
        }
    }
}

impl Drop for ExecutionContext {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        for handle in self.handles.get_mut().unwrap().drain(..) {
            let _ = handle.join();
        }
    }
}

/// A leased scratch value; dereferences to `T` and returns the value to
/// the context's arena on drop (even when dropped during unwinding).
pub struct ScratchLease<'a, T: Send + 'static> {
    ctx: &'a ExecutionContext,
    key: usize,
    value: Option<Box<T>>,
}

impl<T: Send + 'static> Deref for ScratchLease<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.value.as_ref().expect("leased value present")
    }
}

impl<T: Send + 'static> DerefMut for ScratchLease<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.value.as_mut().expect("leased value present")
    }
}

impl<T: Send + 'static> Drop for ScratchLease<'_, T> {
    fn drop(&mut self) {
        if let Some(boxed) = self.value.take() {
            self.ctx
                .scratch
                .lock()
                .unwrap()
                .entry((TypeId::of::<T>(), self.key))
                .or_default()
                .push(boxed as Box<dyn Any + Send>);
        }
    }
}

// ---------------------------------------------------------------------------
// Broadcast payload pool
// ---------------------------------------------------------------------------

/// A free-list of `Arc<[f64]>` broadcast payloads keyed by length.
///
/// The mesh bus hands `Arc<[f64]>` payloads to every receiver; once all
/// receivers drop their clones the allocation is dead. Allocating a fresh
/// `Arc` per broadcast made the allocator a contended hot path across
/// lanes. Instead, broadcasters park their previous payload here when
/// they replace it and lease it back on the next broadcast:
/// [`PayloadPool::lease_from`] returns a parked buffer of the right length
/// whose refcount has dropped back to one (refilled with the new bytes via
/// `copy_from_slice`, so contents are bit-identical to a fresh
/// `Arc::from`), or falls back to a fresh allocation.
///
/// Buffers still referenced by in-flight receivers stay in the list and
/// are skipped (the `Arc::get_mut` probe fails); they become leasable as
/// soon as the last receiver drops. In a steady rotation every broadcast
/// after warmup reuses — the counters make that assertable in tests.
#[derive(Default)]
pub struct PayloadPool {
    free: HashMap<usize, Vec<Arc<[f64]>>>,
    fresh_allocs: u64,
    reuses: u64,
}

impl PayloadPool {
    pub fn new() -> Self {
        Self::default()
    }

    /// An `Arc` with the contents of `data`: a recycled buffer when one of
    /// the right length is free (no other `Arc` clones alive), else fresh.
    pub fn lease_from(&mut self, data: &[f64]) -> Arc<[f64]> {
        if let Some(list) = self.free.get_mut(&data.len()) {
            if let Some(pos) = list.iter_mut().position(|a| Arc::get_mut(a).is_some()) {
                let mut arc = list.swap_remove(pos);
                Arc::get_mut(&mut arc)
                    .expect("probed unique above")
                    .copy_from_slice(data);
                self.reuses += 1;
                return arc;
            }
        }
        self.fresh_allocs += 1;
        Arc::from(data)
    }

    /// Park a payload for future leases. Safe to call while receivers
    /// still hold clones — it stays parked until it is the last reference.
    pub fn recycle(&mut self, arc: Arc<[f64]>) {
        self.free.entry(arc.len()).or_default().push(arc);
    }

    /// Payloads allocated because nothing suitable was parked.
    pub fn fresh_allocs(&self) -> u64 {
        self.fresh_allocs
    }

    /// Payloads served from the free-list.
    pub fn reuses(&self) -> u64 {
        self.reuses
    }
}

/// A raw pointer that crosses threads. Safety is argued at each use site:
/// every wrapped pointer is only dereferenced at indices owned exclusively
/// by one slot of one job.
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor (rather than field access) so closures capture the `Sync`
    /// wrapper, not the raw pointer, under edition-2021 precise capture.
    fn get(&self) -> *mut T {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_index_matches_serial_at_every_thread_count() {
        let ctx = ExecutionContext::new();
        let want: Vec<usize> = (0..103).map(|i| i * 3 + 1).collect();
        for threads in [1, 2, 4, 8] {
            let got = with_threads(threads, || ctx.map_index(103, |i| i * 3 + 1));
            assert_eq!(got, want, "threads = {threads}");
        }
    }

    #[test]
    fn map_vec_moves_each_item_exactly_once() {
        let ctx = ExecutionContext::new();
        let items: Vec<String> = (0..57).map(|i| format!("item-{i}")).collect();
        let got = with_threads(4, || ctx.map_vec(items, |i, s| format!("{i}:{s}")));
        let want: Vec<String> = (0..57).map(|i| format!("{i}:item-{i}")).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn map_mut_mutates_in_place_and_returns_in_order() {
        let ctx = ExecutionContext::new();
        let mut v = vec![1u64; 64];
        let idx = with_threads(4, || {
            ctx.map_mut(&mut v, |i, x| {
                *x += i as u64;
                i
            })
        });
        assert_eq!(idx, (0..64).collect::<Vec<_>>());
        assert!(v.iter().enumerate().all(|(i, &x)| x == 1 + i as u64));
    }

    #[test]
    fn panic_propagates_without_poisoning_the_pool() {
        let ctx = ExecutionContext::new();
        let result = with_threads(4, || {
            catch_unwind(AssertUnwindSafe(|| {
                ctx.run(64, |slot| {
                    if slot == 13 {
                        panic!("boom");
                    }
                })
            }))
        });
        assert!(result.is_err(), "slot panic must reach the caller");
        // The same pool serves the next region: nothing was poisoned.
        let after = with_threads(4, || ctx.map_index(64, |i| i * 2));
        assert_eq!(after, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn nested_regions_do_not_deadlock() {
        // A slot that posts its own region must make progress even when
        // every worker is busy: posters always participate in their own
        // jobs, so the inner region completes on the posting lane alone
        // in the worst case.
        let ctx = ExecutionContext::new();
        let total = AtomicU64::new(0);
        with_threads(4, || {
            ctx.run(8, |outer| {
                let inner: u64 = ctx.map_index(8, |i| (outer * 8 + i) as u64).iter().sum();
                total.fetch_add(inner, Ordering::Relaxed);
            });
        });
        assert_eq!(total.into_inner(), (0..64).sum::<u64>());
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        assert_eq!(current_override(), None);
        let nested = with_threads(1, || with_threads(2, current_override));
        assert_eq!(nested, Some(2));
        assert_eq!(current_override(), None);
        // Restored across panics too.
        let _ = catch_unwind(|| with_threads(3, || panic!("boom")));
        assert_eq!(current_override(), None);
    }

    #[test]
    fn drop_joins_all_workers() {
        let ctx = ExecutionContext::new();
        with_threads(4, || ctx.prewarm());
        assert_eq!(ctx.workers(), 3, "prewarm spawns threads-1 workers");
        // Drop must shut the pool down and join every worker; a hang here
        // is the failure mode this test exists to catch.
        drop(ctx);
    }

    #[test]
    fn scratch_lease_reuses_parked_values_per_key() {
        let ctx = ExecutionContext::new();
        {
            let mut a = ctx.scratch::<Vec<u64>, _>(8, Vec::new);
            a.extend_from_slice(&[1, 2, 3]);
        }
        // Same key: the parked value (with its contents) comes back.
        {
            let a = ctx.scratch::<Vec<u64>, _>(8, Vec::new);
            assert_eq!(&*a, &[1, 2, 3]);
            // While `a` is out, a second lease must get a distinct value.
            let b = ctx.scratch::<Vec<u64>, _>(8, Vec::new);
            assert!(b.is_empty());
        }
        // Different key: fresh value.
        let c = ctx.scratch::<Vec<u64>, _>(4, Vec::new);
        assert!(c.is_empty());
    }

    #[test]
    fn deterministic_chunking_is_independent_of_workers() {
        // Record which slot handled each index; the mapping must be a
        // pure function of (n, threads), not of scheduling. Run the same
        // region repeatedly and require identical slot assignments.
        let ctx = ExecutionContext::new();
        let assign = |ctx: &ExecutionContext| -> Vec<usize> {
            let slots: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
            ctx.run(4, |slot| {
                let chunk = 100usize.div_ceil(4);
                for s in slots.iter().take((slot + 1) * chunk).skip(slot * chunk) {
                    s.store(slot + 1, Ordering::Relaxed);
                }
            });
            slots.into_iter().map(AtomicUsize::into_inner).collect()
        };
        let first = with_threads(4, || assign(&ctx));
        for _ in 0..5 {
            assert_eq!(with_threads(4, || assign(&ctx)), first);
        }
        assert!(first.iter().all(|&s| s >= 1), "every index covered");
    }

    #[test]
    fn run_stepped_runs_every_slot_and_seam_in_one_handoff() {
        let ctx = ExecutionContext::new();
        for threads in [1, 2, 4, 8] {
            let cells: Vec<AtomicU64> = (0..64).map(|_| AtomicU64::new(0)).collect();
            let seams = AtomicU64::new(0);
            let before = ctx.pool_handoffs();
            with_threads(threads, || {
                ctx.run_stepped(
                    10,
                    |step| if step % 2 == 0 { 1 } else { 8 },
                    |step, slot| {
                        let width = if step % 2 == 0 { 64 } else { 8 };
                        for i in slot * width..(slot + 1) * width {
                            cells[i % 64].fetch_add(1, Ordering::Relaxed);
                        }
                    },
                    |_| {
                        seams.fetch_add(1, Ordering::Relaxed);
                        true
                    },
                );
            });
            let handoffs = ctx.pool_handoffs() - before;
            // 10 cells-touches per index: 5 serial steps + 5 fanned steps.
            assert!(
                cells.iter().all(|c| c.load(Ordering::Relaxed) == 10),
                "threads = {threads}"
            );
            assert_eq!(seams.load(Ordering::Relaxed), 10);
            assert_eq!(handoffs, u64::from(threads > 1), "one handoff total");
        }
    }

    #[test]
    fn run_stepped_seam_sees_step_writes_and_can_abort() {
        let ctx = ExecutionContext::new();
        for threads in [1, 4] {
            let sum = AtomicU64::new(0);
            let steps_run = AtomicU64::new(0);
            with_threads(threads, || {
                ctx.run_stepped(
                    100,
                    |_| 8,
                    |_, slot| {
                        sum.fetch_add(slot as u64, Ordering::Relaxed);
                    },
                    |step| {
                        // All 8 slots of this step must be visible here.
                        let expect = (step as u64 + 1) * 28;
                        assert_eq!(sum.load(Ordering::Relaxed), expect);
                        steps_run.fetch_add(1, Ordering::Relaxed);
                        step < 2 // abort after the third step
                    },
                );
            });
            assert_eq!(steps_run.load(Ordering::Relaxed), 3, "threads = {threads}");
            assert_eq!(sum.load(Ordering::Relaxed), 3 * 28);
        }
    }

    #[test]
    fn run_stepped_panic_aborts_and_propagates() {
        let ctx = ExecutionContext::new();
        let seams = AtomicU64::new(0);
        let result = with_threads(4, || {
            catch_unwind(AssertUnwindSafe(|| {
                ctx.run_stepped(
                    50,
                    |_| 8,
                    |step, slot| {
                        if step == 1 && slot == 3 {
                            panic!("superstep boom");
                        }
                    },
                    |_| {
                        seams.fetch_add(1, Ordering::Relaxed);
                        true
                    },
                );
            }))
        });
        assert!(result.is_err(), "slot panic must reach the caller");
        assert!(
            seams.load(Ordering::Relaxed) < 50,
            "remaining steps skipped"
        );
        // Pool still serves the next region.
        let after = with_threads(4, || ctx.map_index(16, |i| i));
        assert_eq!(after, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn run_affine_covers_every_slot_exactly_once() {
        let ctx = ExecutionContext::new();
        for threads in [1, 2, 4, 8] {
            let hits: Vec<AtomicU64> = (0..4).map(|_| AtomicU64::new(0)).collect();
            with_threads(threads, || {
                ctx.run_affine(4, |slot| {
                    hits[slot].fetch_add(1, Ordering::Relaxed);
                });
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "threads = {threads}"
            );
        }
        let got = with_threads(4, || ctx.map_index_affine(103, |i| i * 7));
        assert_eq!(got, (0..103).map(|i| i * 7).collect::<Vec<_>>());
    }

    #[test]
    fn payload_pool_reuses_buffers_once_refcount_drops() {
        let mut pool = PayloadPool::new();
        let a = pool.lease_from(&[1.0, 2.0, 3.0]);
        assert_eq!(pool.fresh_allocs(), 1);
        let receiver = Arc::clone(&a);
        pool.recycle(a);
        // Receiver still holds a clone: must not be handed out.
        let b = pool.lease_from(&[4.0, 5.0, 6.0]);
        assert_eq!(pool.fresh_allocs(), 2);
        assert_eq!(&*receiver, &[1.0, 2.0, 3.0], "live payload untouched");
        drop(receiver);
        pool.recycle(b);
        // Both parked buffers are now unique; leases reuse, bytes match.
        let c = pool.lease_from(&[7.0, 8.0, 9.0]);
        assert_eq!(pool.fresh_allocs(), 2);
        assert_eq!(pool.reuses(), 1);
        assert_eq!(&*c, &[7.0, 8.0, 9.0]);
        // Length mismatch: fresh.
        let d = pool.lease_from(&[1.0]);
        assert_eq!(pool.fresh_allocs(), 3);
        drop((c, d));
    }

    #[test]
    fn zero_and_one_slot_regions_run_inline() {
        let ctx = ExecutionContext::new();
        ctx.run(0, |_| panic!("never called"));
        let hits = AtomicU64::new(0);
        with_threads(8, || {
            ctx.run(1, |slot| {
                assert_eq!(slot, 0);
                hits.fetch_add(1, Ordering::Relaxed);
            })
        });
        assert_eq!(hits.into_inner(), 1);
        assert_eq!(ctx.workers(), 0, "single-slot regions spawn nothing");
    }
}
