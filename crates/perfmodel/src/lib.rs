//! The swDNN three-level (REG–LDM–MEM) performance model — §III-D, Fig. 2.
//!
//! The model answers one question per memory level: *what bandwidth would
//! this level need to sustain peak floating-point throughput (the required
//! bandwidth, `RBW`), and what does the hardware actually deliver (the
//! measured bandwidth, `MBW`)?* Whenever `RBW > MBW`, the level throttles
//! compute; following the paper, attained performance is scaled by the
//! *square* of `MBW/RBW` ("the amount of computation increases with the
//! square of the input data in convolution operations").
//!
//! Modules:
//!
//! * [`chip`] — the published SW26010 machine constants,
//! * [`comm`] — the closed-form MEM-level communication lower bound
//!   (compulsory reads vs the Hong–Kung `2·MACs/√M` term) behind the
//!   "attained fraction of comm-optimal" gauge,
//! * [`dma`] — Table II: measured DMA bandwidth vs block size, as an exact
//!   interpolation table plus a mechanistic two-parameter fit,
//! * [`rbw`] — Equations 1–5: required bandwidths of the LDM blocking plans
//!   and of the register blocking schemes,
//! * [`model`] — the full Fig. 2 estimate combining RBW/MBW ratios with the
//!   §VI execution efficiency,
//! * [`select`] — the paper's plan-selection policy (batch-size-aware when
//!   the batch is large enough, image-size-aware with `Co` blocking
//!   otherwise) driven by minimizing modeled RBW under the LDM budget,
//! * [`interconnect`] — the chip-to-chip network model (per-link latency +
//!   bandwidth, ring/tree allreduce schedules as data, switch-group
//!   topology with shared uplinks, per-link occupancy timelines) behind
//!   `swdnn::cluster`.

pub mod chip;
pub mod comm;
pub mod dma;
pub mod freq;
pub mod interconnect;
pub mod model;
pub mod rbw;
pub mod select;

pub use chip::ChipSpec;
pub use comm::{comm_optimal_permille, conv_macs, mem_comm_lower_bound_bytes};
pub use dma::{DmaDirection, DmaTable, RationalFit};
pub use freq::{spatial_wins, FftConvModel, FreqCase};
pub use interconnect::{
    AllreduceKind, CollectiveCost, CollectiveSchedule, InterconnectSpec, LinkOccupancy, LinkUse,
    NetworkModel, Round, Topology, Transfer,
};
pub use model::{ConvPerfModel, PerfEstimate};
pub use select::{select_plan, Blocking, PlanChoice, PlanKind};
