//! §III-C — why swDNN rejects frequency-domain convolution.
//!
//! "As the FFT used in frequency-domain based methods has higher
//! requirements for the memory bandwidth and involves global communication
//! from different processing threads, the spatial-domain based methods
//! seem a better fit to the SW26010 many-core architecture."
//!
//! This module quantifies that sentence. An FFT-based convolution
//! (fbfft-style) computes, per (image, filter) pair at size `N×N`
//! (`N = Ro + Kr − 1` padded):
//!
//! * forward FFTs of inputs and filters, inverse FFTs of outputs —
//!   `O(N² log N)` flops each, amortized over channel pairs,
//! * an elementwise complex multiply-accumulate per frequency bin —
//!   the only part with `Ni·No` reuse,
//!
//! The arithmetic *drops* relative to direct convolution when
//! `Kr·Kc ≫ log N`, but every FFT butterfly stage streams the whole
//! transform through memory (or LDM) with *no* reuse, and the transposes
//! between stages are all-to-all exchanges — the register-communication
//! buses would carry full tiles every stage instead of once per GEMM
//! rotation. The [`FftConvModel`] captures the bandwidth side: bytes moved
//! per useful flop, compared against the spatial plan's Eq. 1/2 figures.

use crate::chip::ChipSpec;
use crate::rbw;

/// First-order model of an fbfft-style frequency-domain convolution.
#[derive(Clone, Copy, Debug)]
pub struct FftConvModel {
    pub chip: ChipSpec,
    /// Butterfly stages that spill to LDM/memory (radix-2: log2 N).
    pub spill_every_stages: usize,
}

impl Default for FftConvModel {
    fn default() -> Self {
        // Even a generous model (spill every 4 stages thanks to register
        // blocking inside the FFT kernel) loses to the spatial plan.
        Self {
            chip: ChipSpec::sw26010(),
            spill_every_stages: 4,
        }
    }
}

/// Parameters of the compared convolution.
#[derive(Clone, Copy, Debug)]
pub struct FreqCase {
    pub batch: usize,
    pub ni: usize,
    pub no: usize,
    pub image: usize,
    pub k: usize,
}

impl FftConvModel {
    /// Padded transform size (next power of two of `image + k − 1`).
    pub fn transform_size(&self, case: &FreqCase) -> usize {
        (case.image + case.k - 1).next_power_of_two()
    }

    /// Useful flops of the direct convolution this replaces.
    pub fn direct_flops(&self, case: &FreqCase) -> f64 {
        2.0 * (case.batch * case.no * case.image * case.image * case.ni * case.k * case.k) as f64
    }

    /// Flops of the FFT path: transforms + pointwise complex MACs.
    pub fn fft_flops(&self, case: &FreqCase) -> f64 {
        let n = self.transform_size(case) as f64;
        let fft_one = 5.0 * n * n * n.log2(); // classic 5 N^2 log2 N for 2-D
        let transforms = (case.batch * case.ni + case.ni * case.no + case.batch * case.no) as f64;
        let pointwise = 8.0 * n * n * (case.batch * case.ni * case.no) as f64;
        transforms * fft_one + pointwise
    }

    /// Bytes crossing the MEM/LDM boundary on the FFT path: every spill
    /// group streams the full complex tile in and out.
    pub fn fft_bytes(&self, case: &FreqCase) -> f64 {
        let n = self.transform_size(case) as f64;
        let stages = n.log2().ceil();
        let spills = (stages / self.spill_every_stages as f64).ceil() * 2.0; // in + out
        let complex_tile = 16.0 * n * n; // complex f64
        let transforms = (case.batch * case.ni + case.ni * case.no + case.batch * case.no) as f64;
        // Transform traffic + one pass for the pointwise stage.
        transforms * complex_tile * spills
            + 3.0 * complex_tile * (case.batch * case.ni.max(case.no)) as f64
    }

    /// Required bandwidth (GB/s) for the FFT path to keep one CG at peak
    /// on the *useful* (direct-equivalent) flops.
    pub fn fft_rbw(&self, case: &FreqCase) -> f64 {
        let t = self.chip.peak_gflops_per_cg();
        self.fft_bytes(case) / self.direct_flops(case) * t
    }

    /// Arithmetic advantage of the FFT path (`>1` means fewer flops).
    pub fn flop_ratio(&self, case: &FreqCase) -> f64 {
        self.direct_flops(case) / self.fft_flops(case)
    }
}

/// The paper's conclusion, as an executable predicate: does the spatial
/// plan need less memory bandwidth than the FFT plan for this case?
///
/// True throughout the CNN-typical filter range (3×3 … 9×9). For very
/// large filters the FFT's constant traffic amortizes over `K²`-growing
/// useful flops and the pure-bandwidth comparison crosses over — there the
/// paper's *other* §III-C argument carries the decision: the transposes
/// between butterfly stages are all-to-all exchanges that would occupy the
/// register buses every stage ("involves global communication from
/// different processing threads").
pub fn spatial_wins(case: &FreqCase) -> bool {
    let fft = FftConvModel::default();
    let spatial = rbw::rbw_batch_aware(case.batch, case.k, case.no, 742.4)
        .min(rbw::rbw_image_aware(32, 16.min(case.image), case.no, 742.4));
    fft.fft_rbw(case) > spatial
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_case(k: usize) -> FreqCase {
        FreqCase {
            batch: 128,
            ni: 128,
            no: 128,
            image: 64,
            k,
        }
    }

    #[test]
    fn fft_needs_far_more_bandwidth_at_3x3() {
        let case = paper_case(3);
        let fft = FftConvModel::default();
        let fft_rbw = fft.fft_rbw(&case);
        let spatial = rbw::rbw_batch_aware(128, 3, 128, 742.4);
        assert!(
            fft_rbw > 4.0 * spatial,
            "fft {fft_rbw:.0} GB/s vs spatial {spatial:.1} GB/s"
        );
        assert!(spatial_wins(&case));
    }

    #[test]
    fn spatial_wins_across_cnn_typical_filters() {
        for k in (3..=9).step_by(2) {
            assert!(spatial_wins(&paper_case(k)), "k={k}");
        }
    }

    #[test]
    fn bandwidth_argument_crosses_over_for_huge_filters() {
        // For K >= ~11 the FFT's constant traffic amortizes over the
        // K^2-growing direct-equivalent flops and the pure bandwidth
        // comparison flips — the regime where the paper's global-
        // communication argument (not bandwidth) rejects the FFT.
        let crossed = (11..=21).step_by(2).any(|k| !spatial_wins(&paper_case(k)));
        assert!(
            crossed,
            "expected a bandwidth crossover somewhere in 11..=21"
        );
        // And the crossover is monotone: once FFT wins on bandwidth it
        // keeps winning as K grows.
        let fft = FftConvModel::default();
        let mut prev = f64::INFINITY;
        for k in (3..=21).step_by(2) {
            let r = fft.fft_rbw(&paper_case(k));
            assert!(r <= prev, "fft RBW must fall with K");
            prev = r;
        }
    }

    #[test]
    fn fft_does_save_arithmetic_for_large_filters() {
        // The FFT's appeal is real — fewer flops for big K — which is why
        // the paper's argument is about bandwidth, not arithmetic.
        let fft = FftConvModel::default();
        let small = fft.flop_ratio(&paper_case(3));
        let large = fft.flop_ratio(&paper_case(21));
        assert!(large > small);
        assert!(large > 1.0, "21x21 should save flops: ratio {large}");
    }

    #[test]
    fn transform_size_is_padded_power_of_two() {
        let fft = FftConvModel::default();
        assert_eq!(fft.transform_size(&paper_case(3)), 128); // 66 -> 128
        assert_eq!(
            fft.transform_size(&FreqCase {
                batch: 1,
                ni: 1,
                no: 1,
                image: 30,
                k: 3
            }),
            32
        );
    }
}
