//! The full Fig. 2 performance estimate.
//!
//! Fig. 2 derives attained performance per CG by walking the memory
//! hierarchy and derating peak throughput at each level where required
//! bandwidth exceeds measured bandwidth:
//!
//! ```text
//! P = 742.4 · EE · min(1, MBW_ldm→reg / RBW_ldm→reg)²
//!              · min(1, MBW_mem→ldm / RBW_mem→ldm)²      (REG-LDM-MEM path)
//! P = 742.4 · EE · min(1, 8 / 139.2)²                    (direct gload path)
//! ```
//!
//! `EE` is the §VI execution efficiency of the inner kernel (from the
//! `sw-isa` pipeline analysis: `16n/(17n+4)` with `n = Ni/8` for the
//! reordered kernel).
//!
//! `MBW_mem→ldm` comes from the Table II curve at the plan's DMA block
//! size, multiplied by a multi-stream derate (default 0.8): the Table II
//! micro-benchmark streams a single array, while a convolution plan mixes
//! input gets, filter gets and output puts, and the paper's own Table III
//! `MBW` column sits at 70–85 % of the corresponding Table II entries.

use crate::chip::ChipSpec;
use crate::dma::{DmaDirection, DmaTable};
use crate::rbw;
use crate::select::{Blocking, PlanKind};

/// Everything the model concluded about one configuration.
#[derive(Clone, Copy, Debug)]
pub struct PerfEstimate {
    /// Required MEM→LDM bandwidth, GB/s (Eq. 1 or Eq. 2).
    pub rbw_mem_ldm: f64,
    /// Modeled measured MEM→LDM bandwidth at the plan's block size, GB/s.
    pub mbw_mem_ldm: f64,
    /// Required LDM→REG bandwidth, GB/s (Eq. 5).
    pub rbw_ldm_reg: f64,
    /// LDM→REG bandwidth of the hardware, GB/s.
    pub mbw_ldm_reg: f64,
    /// Execution efficiency of the inner kernel.
    pub execution_efficiency: f64,
    /// Predicted attained Gflops for one CG.
    pub gflops_per_cg: f64,
    /// True when MEM→LDM bandwidth is the binding constraint.
    pub memory_bound: bool,
}

/// Fig. 2 model evaluator.
#[derive(Clone, Copy, Debug)]
pub struct ConvPerfModel {
    pub chip: ChipSpec,
    pub dma: DmaTable,
    /// Multi-stream contention derate applied to Table II bandwidths.
    pub dma_derate: f64,
    /// Register blocking used by the vectorized inner kernel (§V-C).
    pub rb_b: usize,
    pub rb_no: usize,
}

impl Default for ConvPerfModel {
    fn default() -> Self {
        Self {
            chip: ChipSpec::sw26010(),
            dma: DmaTable,
            dma_derate: 0.8,
            rb_b: 16,
            rb_no: 4,
        }
    }
}

/// `min(1, measured / required)` with degenerate denominators treated as
/// "not a bottleneck". Shapes the schedule search now actually generates
/// (1×1 images, batch 1, `No = 1`) can drive a required-bandwidth formula
/// to `0` or `∞`; the derate must stay a finite factor in `[0, 1]` rather
/// than poisoning `gflops_per_cg` with NaN.
fn derate_ratio(measured: f64, required: f64) -> f64 {
    if required.is_nan() || required <= 0.0 {
        // No bandwidth demanded (or garbage in): not a bottleneck.
        return 1.0;
    }
    if required.is_infinite() {
        // Unbounded demand: total collapse, not NaN.
        return 0.0;
    }
    let r = measured / required;
    if r.is_finite() {
        r.clamp(0.0, 1.0)
    } else {
        1.0
    }
}

impl ConvPerfModel {
    /// DMA block size (bytes per CPE request) implied by a plan's layout.
    ///
    /// * image-size-aware: one `(batch-quad, channel, row)` run of the
    ///   input tile — `4 · (b_co + kc − 1)` doubles;
    /// * batch-size-aware: one pixel across the batch — `B` doubles;
    /// * patch-GEMM: one input-channel row of the gathered patch tile —
    ///   `b_p` doubles (`b_p` rides in `blocking.b_b`).
    pub fn dma_block_bytes(
        &self,
        kind: PlanKind,
        blocking: Blocking,
        batch: usize,
        kc: usize,
    ) -> usize {
        match kind {
            PlanKind::ImageSizeAware => 8 * 4 * (blocking.b_co + kc - 1),
            PlanKind::BatchSizeAware => 8 * batch,
            PlanKind::DirectGload => 8,
            PlanKind::PatchGemm => 8 * blocking.b_b,
        }
    }

    /// Evaluate the REG-LDM-MEM path for a plan choice.
    ///
    /// `ni`/`no` are channel counts, `batch` the batch size, `kc` the filter
    /// width.
    pub fn estimate(
        &self,
        kind: PlanKind,
        blocking: Blocking,
        batch: usize,
        ni: usize,
        no: usize,
        kc: usize,
    ) -> PerfEstimate {
        let t_cg = self.chip.peak_gflops_per_cg();
        let t_cpe = self.chip.peak_gflops_per_cpe();

        if kind == PlanKind::DirectGload {
            let ee = sw_isa::efficiency::ee_for_ni(ni);
            let ratio = (self.chip.gload_gbps / self.chip.rbw_direct_mem_gbps).min(1.0);
            let gflops = t_cg * ee * ratio * ratio;
            return PerfEstimate {
                rbw_mem_ldm: self.chip.rbw_direct_mem_gbps,
                mbw_mem_ldm: self.chip.gload_gbps,
                rbw_ldm_reg: self.chip.rbw_direct_mem_gbps,
                mbw_ldm_reg: self.chip.ldm_reg_gbps,
                execution_efficiency: ee,
                gflops_per_cg: gflops,
                memory_bound: true,
            };
        }

        let rbw_mem = match kind {
            PlanKind::ImageSizeAware => rbw::rbw_image_aware(blocking.b_b, blocking.b_co, no, t_cg),
            PlanKind::BatchSizeAware => rbw::rbw_batch_aware(batch, kc, no, t_cg),
            // Per-tap GEMM over a gathered `b_p`-pixel patch: the filter
            // tap is reused `b_p` times and each input element `no` times,
            // which is exactly Eq. 1 with `b_co·b_B → b_p`.
            PlanKind::PatchGemm => rbw::rbw_image_aware(blocking.b_b, 1, no, t_cg),
            PlanKind::DirectGload => unreachable!(),
        };
        let block = self.dma_block_bytes(kind, blocking, batch, kc);
        let mbw_mem = self.dma.bandwidth_gbps(DmaDirection::Get, block) * self.dma_derate;

        let rbw_reg = rbw::rbw_reg_gemm_simd(self.rb_b, self.rb_no, t_cpe);
        let mbw_reg = self.chip.ldm_reg_gbps;

        let ee = sw_isa::efficiency::ee_for_ni(ni);
        let mem_ratio = derate_ratio(mbw_mem, rbw_mem);
        let reg_ratio = derate_ratio(mbw_reg, rbw_reg);
        let gflops = t_cg * ee * reg_ratio * reg_ratio * mem_ratio * mem_ratio;

        PerfEstimate {
            rbw_mem_ldm: rbw_mem,
            mbw_mem_ldm: mbw_mem,
            rbw_ldm_reg: rbw_reg,
            mbw_ldm_reg: mbw_reg,
            execution_efficiency: ee,
            gflops_per_cg: gflops,
            memory_bound: mem_ratio < 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_gload_utilization_matches_paper() {
        let m = ConvPerfModel::default();
        let est = m.estimate(PlanKind::DirectGload, Blocking::default(), 128, 256, 256, 3);
        // 0.32% of 742.4 ≈ 2.4 Gflops (EE<1 lowers it slightly further).
        let frac = est.gflops_per_cg / m.chip.peak_gflops_per_cg();
        assert!(
            frac < 0.0035,
            "direct path must be ~0.32% of peak, got {frac}"
        );
        assert!(est.memory_bound);
    }

    #[test]
    fn reg_ldm_mem_path_lands_in_table_iii_range() {
        // Table III rows report modeled 368..422 and measured 350..410
        // Gflops per CG. Our estimates must land in the same regime
        // (roughly 45-75% of the 742.4 peak).
        let m = ConvPerfModel::default();
        let cases = [
            (
                PlanKind::ImageSizeAware,
                Blocking { b_b: 32, b_co: 16 },
                128,
                128,
                128,
            ),
            (
                PlanKind::ImageSizeAware,
                Blocking { b_b: 32, b_co: 8 },
                128,
                128,
                256,
            ),
            (PlanKind::BatchSizeAware, Blocking::default(), 128, 256, 256),
            (PlanKind::BatchSizeAware, Blocking::default(), 128, 128, 384),
        ];
        for (kind, blk, b, ni, no) in cases {
            let est = m.estimate(kind, blk, b, ni, no, 3);
            let frac = est.gflops_per_cg / 742.4;
            assert!(
                (0.40..0.80).contains(&frac),
                "{kind:?} ni={ni} no={no}: {:.0} Gflops ({frac:.2} of peak)",
                est.gflops_per_cg
            );
        }
    }

    #[test]
    fn register_blocking_is_never_the_bottleneck() {
        let m = ConvPerfModel::default();
        let est = m.estimate(
            PlanKind::BatchSizeAware,
            Blocking::default(),
            128,
            256,
            256,
            3,
        );
        assert!(
            est.rbw_ldm_reg < est.mbw_ldm_reg,
            "Eq.5 guarantees 23.2 < 46.4"
        );
    }

    #[test]
    fn bigger_no_improves_image_plan() {
        let m = ConvPerfModel::default();
        let blk = Blocking { b_b: 32, b_co: 16 };
        let small = m.estimate(PlanKind::ImageSizeAware, blk, 128, 128, 64, 3);
        let large = m.estimate(PlanKind::ImageSizeAware, blk, 128, 128, 384, 3);
        assert!(large.gflops_per_cg > small.gflops_per_cg);
    }

    #[test]
    fn degenerate_shapes_produce_finite_estimates() {
        // 1×1 images, batch 1 and single channels are now reachable via
        // the schedule search; every estimate must stay finite.
        let m = ConvPerfModel::default();
        let cases = [
            (
                PlanKind::ImageSizeAware,
                Blocking { b_b: 1, b_co: 1 },
                1,
                1,
                1,
                1,
            ),
            (PlanKind::BatchSizeAware, Blocking::default(), 1, 1, 1, 1),
            (
                PlanKind::PatchGemm,
                Blocking { b_b: 8, b_co: 1 },
                1,
                8,
                8,
                1,
            ),
            (PlanKind::DirectGload, Blocking::default(), 1, 1, 1, 1),
        ];
        for (kind, blk, b, ni, no, kc) in cases {
            let est = m.estimate(kind, blk, b, ni, no, kc);
            assert!(
                est.gflops_per_cg.is_finite() && est.gflops_per_cg >= 0.0,
                "{kind:?}: {est:?}"
            );
            assert!(est.execution_efficiency.is_finite());
        }
    }

    #[test]
    fn ratio_guard_handles_zero_and_nonfinite_denominators() {
        assert_eq!(derate_ratio(10.0, 0.0), 1.0);
        assert_eq!(derate_ratio(10.0, f64::NAN), 1.0);
        assert_eq!(derate_ratio(10.0, f64::INFINITY), 0.0);
        assert_eq!(derate_ratio(5.0, 10.0), 0.5);
        assert_eq!(derate_ratio(20.0, 10.0), 1.0);
    }

    #[test]
    fn ee_rises_with_ni() {
        let m = ConvPerfModel::default();
        let blk = Blocking { b_b: 32, b_co: 16 };
        let a = m.estimate(PlanKind::ImageSizeAware, blk, 128, 64, 128, 3);
        let b = m.estimate(PlanKind::ImageSizeAware, blk, 128, 384, 128, 3);
        assert!(b.execution_efficiency > a.execution_efficiency);
    }
}
