//! Required-bandwidth equations (Eqs. 1–5 of the paper).
//!
//! `RBW` is the memory traffic a level must sustain, per unit time, for the
//! arithmetic units to run at peak `T` flop/s. All equations reduce to
//! `RBW = (bytes moved / flops performed) · T`; with `T` in Gflop/s and
//! `DS = 8` bytes the result is in GB/s.
//!
//! Verified against the paper's own numbers: Eq. 1 reproduces the Table III
//! `RBW` column rows 1–2 (29.0 / 23.2 GB/s) and Eq. 2 rows 3–4
//! (27.1 / 25.7 GB/s); Eq. 5 reproduces the 23.2 GB/s of §V-C.

/// Size of a double in bytes (`DS` in the paper).
pub const DS: f64 = 8.0;

/// Eq. 1 — MEM→LDM required bandwidth of the *image-size-aware* plan
/// (Algorithm 1), which blocks on the batch (`b_b`) and output-column
/// (`b_co`) dimensions:
///
/// `RBW = ((No + b_co·b_b)·DS) / (2·b_co·b_b·No / T)
///      = ((1/(b_co·b_b) + 1/No) · DS) / (2/T)`
pub fn rbw_image_aware(b_b: usize, b_co: usize, no: usize, t_gflops: f64) -> f64 {
    let inv = 1.0 / (b_co as f64 * b_b as f64) + 1.0 / no as f64;
    inv * DS / (2.0 / t_gflops)
}

/// Eq. 2 — MEM→LDM required bandwidth of the *batch-size-aware* plan
/// (Algorithm 2):
///
/// `RBW = ((B + Kc·No)·DS) / (2·Kc·B·No / T)
///      = ((1/(Kc·No) + 1/B) · DS) / (2/T)`
pub fn rbw_batch_aware(batch: usize, kc: usize, no: usize, t_gflops: f64) -> f64 {
    let inv = 1.0 / (kc as f64 * no as f64) + 1.0 / batch as f64;
    inv * DS / (2.0 / t_gflops)
}

/// Eq. 3 — LDM→REG required bandwidth of the *spatial* register-blocking
/// scheme (convolve on `Ci × Ri` in registers with an `rb_kr × rb_kc`
/// filter tile held resident). `t_gflops` is per CPE.
///
/// `RBW = (rb_ri·rb_ci + rb_co·rb_ro)·DS / (2·rb_kr·rb_kc·rb_co·rb_ro / T)`
/// with `rb_co = rb_ci − kc + 1`, `rb_ro = rb_ri − kr + 1`.
pub fn rbw_reg_spatial(
    rb_ri: usize,
    rb_ci: usize,
    rb_kr: usize,
    rb_kc: usize,
    t_gflops: f64,
) -> f64 {
    assert!(
        rb_ci >= rb_kc && rb_ri >= rb_kr,
        "register tile smaller than filter tile"
    );
    let rb_co = (rb_ci - rb_kc + 1) as f64;
    let rb_ro = (rb_ri - rb_kr + 1) as f64;
    let bytes = (rb_ri as f64 * rb_ci as f64 + rb_co * rb_ro) * DS;
    let flops = 2.0 * rb_kr as f64 * rb_kc as f64 * rb_co * rb_ro;
    bytes / (flops / t_gflops)
}

/// Eq. 4 — LDM→REG required bandwidth of the *GEMM-style* register blocking
/// (block on `B` and `No`; `rb_b · rb_no` outputs stay resident in
/// registers). `t_gflops` is per CPE.
///
/// `RBW = (rb_b + rb_no)·DS / (2·rb_b·rb_no / T)`
pub fn rbw_reg_gemm(rb_b: usize, rb_no: usize, t_gflops: f64) -> f64 {
    (rb_b + rb_no) as f64 * DS / (2.0 * rb_b as f64 * rb_no as f64 / t_gflops)
}

/// Eq. 5 — the SIMD-aware variant of Eq. 4: filter elements are loaded as
/// scalars and replicated into 4-lane vectors (`vldde`), which costs 4× the
/// bandwidth on the `rb_no` term:
///
/// `RBW = (rb_b + 4·rb_no)·DS / (2·rb_b·rb_no / T)`
pub fn rbw_reg_gemm_simd(rb_b: usize, rb_no: usize, t_gflops: f64) -> f64 {
    (rb_b + 4 * rb_no) as f64 * DS / (2.0 * rb_b as f64 * rb_no as f64 / t_gflops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::ChipSpec;

    const T_CG: f64 = 742.4;

    #[test]
    fn eq1_reproduces_table_iii_rows_1_and_2() {
        // Row 1: Kc=3 bB=32 bCo=16 Ni=128 No=128 -> RBW 29.0
        assert!((rbw_image_aware(32, 16, 128, T_CG) - 29.0).abs() < 0.05);
        // Row 2: bB=32 bCo=8 No=256 -> RBW 23.2
        assert!((rbw_image_aware(32, 8, 256, T_CG) - 23.2).abs() < 0.05);
    }

    #[test]
    fn eq2_reproduces_table_iii_rows_3_and_4() {
        // Row 3: Kc=3 B=128 Ni=256 No=256 -> RBW 27.1
        assert!((rbw_batch_aware(128, 3, 256, T_CG) - 27.1).abs() < 0.05);
        // Row 4: No=384 -> RBW 25.7
        assert!((rbw_batch_aware(128, 3, 384, T_CG) - 25.7).abs() < 0.1);
    }

    #[test]
    fn eq5_reproduces_section_v_c() {
        let t_cpe = ChipSpec::sw26010().peak_gflops_per_cpe();
        let rbw = rbw_reg_gemm_simd(16, 4, t_cpe);
        assert!((rbw - 23.2).abs() < 0.05, "got {rbw}");
        assert!(rbw < ChipSpec::sw26010().ldm_reg_gbps);
    }

    #[test]
    fn eq4_is_cheaper_than_eq5() {
        let t = 11.6;
        assert!(rbw_reg_gemm(16, 4, t) < rbw_reg_gemm_simd(16, 4, t));
    }

    #[test]
    fn larger_blocking_lowers_rbw() {
        assert!(rbw_image_aware(64, 16, 128, T_CG) < rbw_image_aware(32, 16, 128, T_CG));
        assert!(rbw_image_aware(32, 32, 128, T_CG) < rbw_image_aware(32, 16, 128, T_CG));
        assert!(rbw_batch_aware(256, 3, 128, T_CG) < rbw_batch_aware(128, 3, 128, T_CG));
    }

    #[test]
    fn larger_no_lowers_rbw_in_both_plans() {
        // "For both versions, a large output channel No will reduce the RBW."
        assert!(rbw_image_aware(32, 16, 384, T_CG) < rbw_image_aware(32, 16, 64, T_CG));
        assert!(rbw_batch_aware(128, 3, 384, T_CG) < rbw_batch_aware(128, 3, 64, T_CG));
    }

    #[test]
    fn spatial_register_blocking_is_kernel_size_bound() {
        // Eq. 3's RBW depends on the filter tile; growing the image tile
        // alone cannot push it arbitrarily low (the paper's reason for
        // rejecting the direct plan).
        let t = 11.6;
        let small_filter = rbw_reg_spatial(8, 8, 3, 3, t);
        let big_filter = rbw_reg_spatial(8, 8, 5, 5, t);
        assert!(big_filter < small_filter);
        // For a 1x1 filter the spatial RBW is DS*T = 92.8 GB/s regardless
        // of tile size — above the 46.4 GB/s LDM-REG bandwidth, i.e. the
        // spatial plan *cannot* be made compute-bound, while the GEMM plan
        // (Eq. 5) sits at 23.2 GB/s for any filter size.
        let gemm = rbw_reg_gemm_simd(16, 4, t);
        assert!((rbw_reg_spatial(4, 4, 1, 1, t) - 92.8).abs() < 0.05);
        for tile in [2usize, 4, 8, 16] {
            assert!(rbw_reg_spatial(tile, tile, 1, 1, t) > 46.4);
            assert!(rbw_reg_spatial(tile, tile, 1, 1, t) > gemm);
        }
    }

    #[test]
    #[should_panic(expected = "register tile smaller")]
    fn eq3_rejects_undersized_tiles() {
        rbw_reg_spatial(2, 2, 3, 3, 11.6);
    }
}
