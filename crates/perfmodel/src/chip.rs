//! Published SW26010 machine constants (§III-B, §III-D).
//!
//! Every number here is taken from the paper (or follows arithmetically
//! from one that is): 1.45 GHz clock, 4 core groups of 64 CPEs, 8 DP flops
//! per CPE per cycle (one 4-lane FMA), 64 KB LDM per CPE, 36 GB/s DDR3 per
//! CG, 8 GB/s `gload` path, 46.4 GB/s LDM↔register per CPE
//! (32 B × 1.45 GHz), and the derived 742.4 Gflops/CG peak.

/// Machine description of one SW26010 processor.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChipSpec {
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Number of core groups on the chip.
    pub core_groups: usize,
    /// Computing processing elements per core group (8×8 mesh).
    pub cpes_per_cg: usize,
    /// Mesh side (8): row/column communication bus span.
    pub mesh_dim: usize,
    /// Double-precision flops per CPE per cycle (4-lane FMA = 8).
    pub flops_per_cycle_per_cpe: u64,
    /// Local Directive Memory per CPE, bytes.
    pub ldm_bytes: usize,
    /// Peak DDR3 bandwidth per CG, GB/s.
    pub ddr3_peak_gbps: f64,
    /// Bandwidth of the direct `gload` path from CPEs to memory, GB/s.
    pub gload_gbps: f64,
    /// LDM ↔ register bandwidth per CPE, GB/s.
    pub ldm_reg_gbps: f64,
    /// The paper's required bandwidth for the direct-memory-access mapping
    /// with no data sharing (Fig. 2 middle column), GB/s.
    pub rbw_direct_mem_gbps: f64,
}

impl ChipSpec {
    /// The SW26010 as described in the paper.
    pub const fn sw26010() -> Self {
        Self {
            clock_ghz: 1.45,
            core_groups: 4,
            cpes_per_cg: 64,
            mesh_dim: 8,
            flops_per_cycle_per_cpe: 8,
            ldm_bytes: 64 * 1024,
            ddr3_peak_gbps: 36.0,
            gload_gbps: 8.0,
            ldm_reg_gbps: 46.4,
            rbw_direct_mem_gbps: 139.2,
        }
    }

    /// Peak double-precision Gflops of one core group (742.4 for SW26010).
    pub fn peak_gflops_per_cg(&self) -> f64 {
        self.clock_ghz * self.flops_per_cycle_per_cpe as f64 * self.cpes_per_cg as f64
    }

    /// Peak double-precision Gflops of one CPE (11.6 for SW26010).
    pub fn peak_gflops_per_cpe(&self) -> f64 {
        self.clock_ghz * self.flops_per_cycle_per_cpe as f64
    }

    /// Peak double-precision Tflops of the whole chip (≈2.97; the paper
    /// quotes 3.06 including the MPEs, which swDNN does not use for compute).
    pub fn peak_tflops_chip(&self) -> f64 {
        self.peak_gflops_per_cg() * self.core_groups as f64 / 1000.0
    }

    /// Aggregate DDR3 bandwidth of the chip, GB/s (144 for SW26010).
    pub fn total_mem_bw_gbps(&self) -> f64 {
        self.ddr3_peak_gbps * self.core_groups as f64
    }

    /// LDM capacity in doubles (8192 for SW26010).
    pub fn ldm_doubles(&self) -> usize {
        self.ldm_bytes / 8
    }

    /// Peak *single*-precision Gflops — identical to double precision on
    /// the SW26010, which is why the paper evaluates in f64: "the current
    /// arithmetic architecture does not allow an easy doubling or even
    /// quadrupling of the performance by using single or even half
    /// precision" (§VII). The vector unit is 256-bit with 4 f64 lanes; it
    /// does not widen to 8 f32 lanes.
    pub fn peak_sp_gflops_per_cg(&self) -> f64 {
        self.peak_gflops_per_cg()
    }

    /// Convert a CPE cycle count into seconds.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_ghz * 1e9)
    }

    /// Gflops attained by `flops` of work in `cycles` CPE cycles.
    pub fn gflops(&self, flops: u64, cycles: u64) -> f64 {
        if cycles == 0 {
            return 0.0;
        }
        flops as f64 / self.cycles_to_seconds(cycles) / 1e9
    }
}

impl Default for ChipSpec {
    fn default() -> Self {
        Self::sw26010()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_per_cg_is_742_4() {
        let c = ChipSpec::sw26010();
        assert!((c.peak_gflops_per_cg() - 742.4).abs() < 1e-9);
    }

    #[test]
    fn chip_peak_near_3_tflops() {
        let c = ChipSpec::sw26010();
        assert!((c.peak_tflops_chip() - 2.9696).abs() < 1e-3);
    }

    #[test]
    fn ldm_reg_bandwidth_is_32_bytes_per_cycle() {
        let c = ChipSpec::sw26010();
        assert!((c.ldm_reg_gbps - 32.0 * c.clock_ghz).abs() < 1e-9);
    }

    #[test]
    fn aggregate_memory_bandwidth() {
        assert!((ChipSpec::sw26010().total_mem_bw_gbps() - 144.0).abs() < 1e-9);
    }

    #[test]
    fn direct_gload_utilization_is_0_32_percent() {
        // (8 / 139.2)^2 = 0.33% — the paper quotes 0.32%.
        let c = ChipSpec::sw26010();
        let u = (c.gload_gbps / c.rbw_direct_mem_gbps).powi(2);
        assert!((u - 0.0033).abs() < 3e-4);
    }

    #[test]
    fn single_precision_gains_nothing() {
        // The architectural fact behind the paper's all-f64 evaluation.
        let c = ChipSpec::sw26010();
        assert_eq!(c.peak_sp_gflops_per_cg(), c.peak_gflops_per_cg());
    }

    #[test]
    fn cycle_time_conversions() {
        let c = ChipSpec::sw26010();
        assert!((c.cycles_to_seconds(1_450_000_000) - 1.0).abs() < 1e-12);
        // 8 flops/cycle at full rate = 11.6 Gflops.
        assert!((c.gflops(8 * 1450, 1450) - 11.6).abs() < 1e-9);
    }
}
