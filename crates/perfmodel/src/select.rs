//! Plan selection — "we adopt different loop scheduling and blocking
//! strategies according to the performance model for different parameter
//! configurations" (§VII).
//!
//! The policy follows §IV-A: if the batch is large enough that Eq. 2's RBW
//! is already low, adopt the batch-size-aware plan; otherwise block the
//! output-column dimension and use the image-size-aware plan with the
//! `(b_b, b_co)` pair that maximizes modeled performance under the LDM
//! capacity constraint.
//!
//! The LDM footprint formulas mirror how the `swdnn` plans actually buffer
//! data (each CPE owns 1/64 of every tile; input and filter buffers are
//! double-buffered to overlap DMA with compute):
//!
//! * image-size-aware, per CPE, in doubles:
//!   `2·(b_b·Ni·(b_co+Kc−1))/64 + 2·(Ni·No)/64 + (b_b·No·b_co)/64`
//! * batch-size-aware, per CPE:
//!   `2·(B·Ni)/64 + 2·(Ni·No·Kc)/64 + (B·No·b_co... )/64` — the output tile
//!   held is `B·No·Kc/64` (the `b_co = Kc` window Algorithm 2 accumulates).

use crate::chip::ChipSpec;
use crate::model::{ConvPerfModel, PerfEstimate};
use sw_tensor::ConvShape;

/// Which convolution plan to run.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PlanKind {
    /// Algorithm 1 — block on `B` and `Co`, layout `(4, C, R, N, B/4)`.
    ImageSizeAware,
    /// Algorithm 2 — stream pixels across the batch, layout `(4, B/4, C, R, N)`.
    BatchSizeAware,
    /// The pathological direct-`gload` mapping (for the Fig. 2 ablation).
    DirectGload,
    /// Per-tap register-communication GEMM over gathered output-pixel
    /// patches — the general-geometry mapping (stride/dilation/padding)
    /// the schedule search lowers for shapes the dense plans reject.
    PatchGemm,
}

/// LDM blocking factors (meaningful for the image-size-aware plan).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Blocking {
    /// Batch-dimension block `b_B`.
    pub b_b: usize,
    /// Output-column block `b_Co`.
    pub b_co: usize,
}

impl Default for Blocking {
    fn default() -> Self {
        Self { b_b: 32, b_co: 16 }
    }
}

/// The outcome of plan selection.
#[derive(Clone, Copy, Debug)]
pub struct PlanChoice {
    pub kind: PlanKind,
    pub blocking: Blocking,
    /// LDM doubles used per CPE (must be ≤ 8192).
    pub ldm_doubles: usize,
    pub estimate: PerfEstimate,
}

/// Per-CPE LDM footprint of the image-size-aware plan, in doubles.
pub fn ldm_doubles_image_aware(shape: &ConvShape, blk: Blocking) -> usize {
    let cpes = 64;
    let input = 2 * blk.b_b * shape.ni * (blk.b_co + shape.kc - 1) / cpes;
    let filter = 2 * shape.ni * shape.no / cpes;
    let output = blk.b_b * shape.no * blk.b_co / cpes;
    input + filter + output
}

/// Per-CPE LDM footprint of the batch-size-aware plan, in doubles.
pub fn ldm_doubles_batch_aware(shape: &ConvShape) -> usize {
    let cpes = 64;
    let input = 2 * shape.batch * shape.ni / cpes;
    let filter = 2 * shape.ni * shape.no * shape.kc / cpes;
    let output = shape.batch * shape.no * shape.kc / cpes;
    input + filter + output
}

/// Candidate blockings searched for the image-size-aware plan.
///
/// `b_B` starts at 32: the mesh distribution assigns whole batch-quads to
/// each of the 8 pixel chunks, so the plan needs `b_B` to be a multiple of
/// `4 · 8`.
fn blocking_candidates(shape: &ConvShape) -> Vec<Blocking> {
    let mut out = Vec::new();
    let mut b_b = 32;
    while b_b <= shape.batch {
        // Every divisor of Co up to 33 (covers power-of-two outputs and
        // the odd extents of backward-data shapes like Co = 66).
        for b_co in 1..=shape.co.min(33) {
            if shape.co.is_multiple_of(b_co) {
                out.push(Blocking { b_b, b_co });
            }
        }
        b_b *= 2;
    }
    out
}

/// Choose a plan for `shape` on `chip` following the paper's policy.
///
/// Returns `None` only when no candidate fits in LDM (tiny LDM or enormous
/// channel counts — at that point the caller must also block `Ni`/`No`,
/// which the paper notes as the fallback).
pub fn select_plan(shape: &ConvShape, chip: &ChipSpec) -> Option<PlanChoice> {
    let model = ConvPerfModel {
        chip: *chip,
        ..ConvPerfModel::default()
    };
    let budget = chip.ldm_doubles();
    let mut best: Option<PlanChoice> = None;

    // Batch-size-aware candidate.
    let batch_ldm = ldm_doubles_batch_aware(shape);
    if batch_ldm <= budget {
        let est = model.estimate(
            PlanKind::BatchSizeAware,
            Blocking::default(),
            shape.batch,
            shape.ni,
            shape.no,
            shape.kc,
        );
        best = Some(PlanChoice {
            kind: PlanKind::BatchSizeAware,
            blocking: Blocking {
                b_b: shape.batch,
                b_co: shape.kc,
            },
            ldm_doubles: batch_ldm,
            estimate: est,
        });
    }

    // Image-size-aware candidates.
    for blk in blocking_candidates(shape) {
        let ldm = ldm_doubles_image_aware(shape, blk);
        if ldm > budget {
            continue;
        }
        let est = model.estimate(
            PlanKind::ImageSizeAware,
            blk,
            shape.batch,
            shape.ni,
            shape.no,
            shape.kc,
        );
        let better = match &best {
            None => true,
            Some(b) => est.gflops_per_cg > b.estimate.gflops_per_cg,
        };
        if better {
            best = Some(PlanChoice {
                kind: PlanKind::ImageSizeAware,
                blocking: blk,
                ldm_doubles: ldm,
                estimate: est,
            });
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_shape(ni: usize, no: usize) -> ConvShape {
        ConvShape::new(128, ni, no, 64, 64, 3, 3)
    }

    #[test]
    fn selection_always_fits_ldm() {
        let chip = ChipSpec::sw26010();
        for ni in [64, 128, 256, 384] {
            for no in [64, 128, 256, 384] {
                let choice = select_plan(&paper_shape(ni, no), &chip)
                    .unwrap_or_else(|| panic!("no plan for ni={ni} no={no}"));
                assert!(choice.ldm_doubles <= chip.ldm_doubles());
            }
        }
    }

    #[test]
    fn large_batch_prefers_batch_plan_when_it_fits() {
        // With B=128 Eq.2's RBW is low; for moderate channel counts the
        // batch plan fits LDM and should win or be competitive.
        let chip = ChipSpec::sw26010();
        let choice = select_plan(&paper_shape(128, 128), &chip).unwrap();
        let batch_est = ConvPerfModel::default().estimate(
            PlanKind::BatchSizeAware,
            Blocking::default(),
            128,
            128,
            128,
            3,
        );
        assert!(choice.estimate.gflops_per_cg >= batch_est.gflops_per_cg * 0.999);
    }

    #[test]
    fn huge_channels_fall_back_to_image_plan() {
        // Ni=No=384: the batch plan's double-buffered filter tile
        // (2*384*384*3/64 = 13824 doubles) exceeds LDM, so the image plan
        // must be chosen.
        let chip = ChipSpec::sw26010();
        assert!(ldm_doubles_batch_aware(&paper_shape(384, 384)) > chip.ldm_doubles());
        let choice = select_plan(&paper_shape(384, 384), &chip).unwrap();
        assert_eq!(choice.kind, PlanKind::ImageSizeAware);
    }

    #[test]
    fn predicted_performance_is_high_for_most_paper_configs() {
        // §VII: "we see a convolution performance above 1.6 Tflops" for the
        // chip = 400 Gflops per CG ≈ 54% of peak. The analytic model is
        // conservative at the channel extremes (tiny No, or Ni=No=384 where
        // LDM forces small blocks), so require: most configs near half
        // peak, and every config well above the direct-mapping collapse.
        let chip = ChipSpec::sw26010();
        let mut above = 0;
        let mut total = 0;
        for ni in [64, 128, 192, 256, 320, 384] {
            for no in [64, 128, 192, 256, 320, 384] {
                let choice = select_plan(&paper_shape(ni, no), &chip).unwrap();
                total += 1;
                if choice.estimate.gflops_per_cg >= 0.45 * 742.4 {
                    above += 1;
                }
                assert!(
                    choice.estimate.gflops_per_cg > 0.15 * 742.4,
                    "ni={ni} no={no} collapsed to {:.0}",
                    choice.estimate.gflops_per_cg
                );
            }
        }
        assert!(
            2 * above >= total,
            "only {above}/{total} configs above 45% of peak"
        );
    }

    #[test]
    fn tiny_ldm_chip_yields_none() {
        let mut chip = ChipSpec::sw26010();
        chip.ldm_bytes = 512; // 64 doubles — nothing fits
        assert!(select_plan(&paper_shape(128, 128), &chip).is_none());
    }

    #[test]
    fn footprint_formulas_are_monotone() {
        let s = paper_shape(128, 128);
        let small = ldm_doubles_image_aware(&s, Blocking { b_b: 8, b_co: 4 });
        let large = ldm_doubles_image_aware(&s, Blocking { b_b: 64, b_co: 32 });
        assert!(small < large);
    }
}
