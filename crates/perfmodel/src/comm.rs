//! Closed-form MEM-level communication lower bound for convolution.
//!
//! Following the communication-avoiding line of work (Demmel & Dinh,
//! "Communication-optimal convolutional neural nets", see PAPERS.md), any
//! schedule of a direct convolution on a processor with fast memory of
//! `M` words must move at least
//!
//! ```text
//! W ≥ max( compulsory reads , 2 · #MACs / sqrt(M) )   words
//! ```
//!
//! from slow memory. The first term is the *compulsory* traffic — every
//! input pixel and every filter weight has to cross the MEM→LDM boundary
//! at least once. The second is the Hong–Kung pebbling bound: with `M`
//! words of fast memory, at most `O(M^{3/2})` multiply-accumulates can be
//! served per `M` words moved, i.e. at least `2·#MACs/√M` operand words
//! must stream in overall.
//!
//! For the SW26010 the fast memory is the *aggregate* LDM of one core
//! group (64 CPEs × 64 KB): the register-communication scheme shares
//! operands across the mesh, so the whole CG's LDM acts as one cooperative
//! cache — that is exactly the mechanism that lets swDNN approach this
//! bound where the `gload` mapping cannot.
//!
//! [`mem_comm_lower_bound_bytes`] evaluates the bound; the executor
//! compares it against the measured `dma_get_bytes` counter and reports
//! the attained fraction of comm-optimal via [`comm_optimal_permille`].

use crate::chip::ChipSpec;

/// Multiply-accumulate count of a direct convolution:
/// `B·No·Ro·Co·Ni·Kr·Kc`.
#[allow(clippy::too_many_arguments)]
pub fn conv_macs(
    batch: usize,
    ni: usize,
    no: usize,
    ro: usize,
    co: usize,
    kr: usize,
    kc: usize,
) -> u64 {
    (batch as u64)
        * (no as u64)
        * (ro as u64)
        * (co as u64)
        * (ni as u64)
        * (kr as u64)
        * (kc as u64)
}

/// Lower bound, in bytes, on MEM→LDM read traffic for one core group
/// running the full direct convolution (f64 operands).
///
/// `max(compulsory, Hong–Kung)` where the compulsory term counts each
/// input pixel (`B·Ni·Ri·Ci`, with `Ri = Ro+Kr−1`, `Ci = Co+Kc−1`) and
/// filter weight (`Ni·No·Kr·Kc`) once, and the Hong–Kung term is
/// `2·#MACs/√M` with `M` the CG's aggregate LDM capacity in words.
#[allow(clippy::too_many_arguments)]
pub fn mem_comm_lower_bound_bytes(
    chip: &ChipSpec,
    batch: usize,
    ni: usize,
    no: usize,
    ro: usize,
    co: usize,
    kr: usize,
    kc: usize,
) -> u64 {
    let ri = (ro + kr - 1) as u64;
    let ci = (co + kc - 1) as u64;
    let compulsory_words = (batch as u64) * (ni as u64) * ri * ci
        + (ni as u64) * (no as u64) * (kr as u64) * (kc as u64);
    let macs = conv_macs(batch, ni, no, ro, co, kr, kc);
    let m_words = (chip.cpes_per_cg * chip.ldm_bytes / 8) as f64;
    let hong_kung_words = (2.0 * macs as f64 / m_words.sqrt()).ceil() as u64;
    8 * compulsory_words.max(hong_kung_words)
}

/// Attained fraction of comm-optimal, in permille.
///
/// `1000` means the measured MEM→LDM traffic (`dma_get_bytes`) matches the
/// lower bound — the schedule is communication-optimal; `500` means it
/// moved twice the essential bytes. Clamped to `[0, 1000]` so modeling
/// slack (e.g. a bound evaluated for a slightly different halo) can never
/// report an impossible >100%; degenerate zero-traffic measurements
/// report `0`.
pub fn comm_optimal_permille(lower_bound_bytes: u64, measured_bytes: u64) -> u64 {
    if measured_bytes == 0 {
        return 0;
    }
    let permille = (1000.0 * lower_bound_bytes as f64 / measured_bytes as f64).round() as u64;
    permille.min(1000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compulsory_term_dominates_low_reuse_shapes() {
        // One output channel, 1x1 filter: one MAC per input pixel, so the
        // Hong–Kung term (2·MACs/√M, M = 512K words) is tiny and the bound
        // must be exactly the compulsory bytes.
        let chip = ChipSpec::sw26010();
        let (b, ni, no, ro, co, kr, kc) = (4, 8, 1, 16, 16, 1, 1);
        let compulsory = (b * ni * ro * co + ni * no) as u64 * 8;
        assert_eq!(
            mem_comm_lower_bound_bytes(&chip, b, ni, no, ro, co, kr, kc),
            compulsory
        );
    }

    #[test]
    fn hong_kung_term_dominates_high_reuse_shapes() {
        // A compute-dense shape: MACs grow with No while compulsory input
        // traffic does not, so for large No the √M term takes over.
        let chip = ChipSpec::sw26010();
        let (b, ni, no, ro, co, kr, kc) = (128, 256, 4096, 64, 64, 3, 3);
        let bound = mem_comm_lower_bound_bytes(&chip, b, ni, no, ro, co, kr, kc);
        let m_words = (chip.cpes_per_cg * chip.ldm_bytes / 8) as f64;
        let hk = (2.0 * conv_macs(b, ni, no, ro, co, kr, kc) as f64 / m_words.sqrt()).ceil() as u64;
        assert_eq!(bound, 8 * hk);
        let compulsory = ((b * ni * (ro + kr - 1) * (co + kc - 1)) + ni * no * kr * kc) as u64 * 8;
        assert!(bound > compulsory);
    }

    #[test]
    fn smaller_fast_memory_raises_the_bound() {
        let big = ChipSpec::sw26010();
        let small = ChipSpec {
            ldm_bytes: big.ldm_bytes / 4,
            ..big
        };
        let (b, ni, no, ro, co, kr, kc) = (128, 256, 4096, 64, 64, 3, 3);
        assert!(
            mem_comm_lower_bound_bytes(&small, b, ni, no, ro, co, kr, kc)
                > mem_comm_lower_bound_bytes(&big, b, ni, no, ro, co, kr, kc)
        );
    }

    #[test]
    fn permille_gauge_clamps_and_handles_degenerate_traffic() {
        assert_eq!(comm_optimal_permille(500, 1000), 500);
        assert_eq!(comm_optimal_permille(1000, 1000), 1000);
        // Bound above measurement (modeling slack) clamps at optimal.
        assert_eq!(comm_optimal_permille(2000, 1000), 1000);
        assert_eq!(comm_optimal_permille(1000, 0), 0);
        assert_eq!(comm_optimal_permille(0, 1000), 0);
    }
}
