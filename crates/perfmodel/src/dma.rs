//! Table II — measured DMA bandwidth vs contiguous block size.
//!
//! The paper measures the effective MEM↔LDM DMA bandwidth of one CG as a
//! function of the per-CPE contiguous block size, from 32 B to 4096 B, in
//! both directions. The numbers are reproduced here verbatim and exposed
//! two ways:
//!
//! * [`DmaTable`] — exact at the published points, log-linear interpolation
//!   between them, clamped extrapolation outside. This is the bandwidth
//!   source for *both* the analytic model and the `sw-sim` DMA engine, so
//!   model and simulation share one ground truth.
//! * [`RationalFit`] — a mechanistic two-parameter saturating model
//!   `bw(s) = Bmax · s / (s + K)` with a misalignment penalty for block
//!   sizes that are not multiples of 256 B, fit to the table. It explains
//!   the curve (fixed per-transfer setup cost + link ceiling + alignment)
//!   and is validated against the table within 16 % for sizes ≥ 128 B.

/// Transfer direction: `Get` = memory → LDM, `Put` = LDM → memory.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DmaDirection {
    Get,
    Put,
}

/// The published (size, GB/s) measurement points of Table II.
pub const TABLE_II_SIZES: [usize; 12] =
    [32, 64, 128, 192, 256, 384, 512, 576, 640, 1024, 2048, 4096];
pub const TABLE_II_GET: [f64; 12] = [
    4.31, 9.00, 17.25, 17.94, 22.44, 22.88, 27.42, 25.96, 29.05, 29.79, 31.32, 32.05,
];
pub const TABLE_II_PUT: [f64; 12] = [
    2.56, 9.20, 18.83, 19.82, 25.80, 24.67, 30.34, 28.91, 32.00, 33.44, 35.19, 36.01,
];

/// Interpolating view of Table II.
#[derive(Clone, Copy, Debug, Default)]
pub struct DmaTable;

impl DmaTable {
    /// Effective aggregate bandwidth (GB/s, one CG with all 64 CPEs active)
    /// when each CPE transfers contiguous blocks of `block_bytes`.
    ///
    /// Exact at the published sizes; log-linear in block size between them;
    /// proportional below 32 B (setup-dominated); flat above 4096 B.
    pub fn bandwidth_gbps(self, dir: DmaDirection, block_bytes: usize) -> f64 {
        let ys: &[f64; 12] = match dir {
            DmaDirection::Get => &TABLE_II_GET,
            DmaDirection::Put => &TABLE_II_PUT,
        };
        let s = block_bytes.max(1);
        if s <= TABLE_II_SIZES[0] {
            // Setup-cost dominated: bandwidth ~ proportional to size.
            return ys[0] * s as f64 / TABLE_II_SIZES[0] as f64;
        }
        if s >= *TABLE_II_SIZES.last().unwrap() {
            return *ys.last().unwrap();
        }
        let i = TABLE_II_SIZES.iter().rposition(|&x| x <= s).unwrap();
        let (x0, x1) = (TABLE_II_SIZES[i] as f64, TABLE_II_SIZES[i + 1] as f64);
        let t = ((s as f64).ln() - x0.ln()) / (x1.ln() - x0.ln());
        ys[i] + t * (ys[i + 1] - ys[i])
    }

    /// Seconds to move `bytes` total across one CG when each CPE issues
    /// blocks of `block_bytes`.
    pub fn transfer_seconds(self, dir: DmaDirection, bytes: u64, block_bytes: usize) -> f64 {
        bytes as f64 / (self.bandwidth_gbps(dir, block_bytes) * 1e9)
    }
}

/// Mechanistic saturating-bandwidth fit (see module docs).
#[derive(Clone, Copy, Debug)]
pub struct RationalFit {
    /// Asymptotic link bandwidth, GB/s.
    pub bmax: f64,
    /// Half-saturation block size, bytes (encodes per-transfer setup cost).
    pub half_size: f64,
    /// Multiplicative penalty for blocks not a multiple of 256 B.
    pub misalign_penalty: f64,
}

impl RationalFit {
    /// Parameters fit to the `Get` column of Table II.
    pub const fn get() -> Self {
        Self {
            bmax: 34.0,
            half_size: 122.0,
            misalign_penalty: 0.93,
        }
    }

    /// Parameters fit to the `Put` column of Table II.
    pub const fn put() -> Self {
        Self {
            bmax: 38.5,
            half_size: 122.0,
            misalign_penalty: 0.93,
        }
    }

    pub const fn for_direction(dir: DmaDirection) -> Self {
        match dir {
            DmaDirection::Get => Self::get(),
            DmaDirection::Put => Self::put(),
        }
    }

    /// Modeled bandwidth for a given block size.
    pub fn bandwidth_gbps(&self, block_bytes: usize) -> f64 {
        let s = block_bytes as f64;
        let base = self.bmax * s / (s + self.half_size);
        if block_bytes.is_multiple_of(256) {
            base
        } else {
            base * self.misalign_penalty
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_exact_at_published_points() {
        let t = DmaTable;
        for (i, &s) in TABLE_II_SIZES.iter().enumerate() {
            assert_eq!(t.bandwidth_gbps(DmaDirection::Get, s), TABLE_II_GET[i]);
            assert_eq!(t.bandwidth_gbps(DmaDirection::Put, s), TABLE_II_PUT[i]);
        }
    }

    #[test]
    fn interpolation_is_between_neighbours() {
        let t = DmaTable;
        let b = t.bandwidth_gbps(DmaDirection::Get, 300);
        assert!(b > 22.44 && b < 22.88, "got {b}");
    }

    #[test]
    fn extrapolation_clamps() {
        let t = DmaTable;
        assert_eq!(t.bandwidth_gbps(DmaDirection::Put, 1 << 20), 36.01);
        assert!(t.bandwidth_gbps(DmaDirection::Get, 16) < 4.31);
    }

    #[test]
    fn paper_guidance_blocks_over_256b_do_well() {
        // "a higher bandwidth is achieved when using a block size larger
        // than 256B and aligned in 128B"
        let t = DmaTable;
        assert!(t.bandwidth_gbps(DmaDirection::Get, 512) > 27.0);
        assert!(t.bandwidth_gbps(DmaDirection::Get, 64) < 10.0);
    }

    #[test]
    fn transfer_time_scales_linearly_in_bytes() {
        let t = DmaTable;
        let a = t.transfer_seconds(DmaDirection::Get, 1 << 20, 512);
        let b = t.transfer_seconds(DmaDirection::Get, 2 << 20, 512);
        assert!((b / a - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rational_fit_tracks_table_for_ge_128b() {
        for dir in [DmaDirection::Get, DmaDirection::Put] {
            let fit = RationalFit::for_direction(dir);
            let tab = DmaTable;
            for &s in TABLE_II_SIZES.iter().filter(|&&s| s >= 128) {
                let m = fit.bandwidth_gbps(s);
                let t = tab.bandwidth_gbps(dir, s);
                let err = (m - t).abs() / t;
                assert!(
                    err < 0.16,
                    "{dir:?} {s}B: fit {m:.2} vs table {t:.2} ({:.0}%)",
                    err * 100.0
                );
            }
        }
    }

    #[test]
    fn rational_fit_penalizes_misalignment() {
        let fit = RationalFit::get();
        // 576 is not a multiple of 256; its larger size must not beat 512.
        assert!(fit.bandwidth_gbps(576) < fit.bandwidth_gbps(512) * 1.02);
    }

    #[test]
    fn get_is_slower_than_put_at_large_blocks() {
        // Table II: put saturates higher (36.01 vs 32.05 at 4 KiB).
        let t = DmaTable;
        assert!(
            t.bandwidth_gbps(DmaDirection::Put, 4096) > t.bandwidth_gbps(DmaDirection::Get, 4096)
        );
    }
}
