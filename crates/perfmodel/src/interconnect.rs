//! Modeled multi-chip interconnect: per-link latency + bandwidth, and
//! collective (allreduce) schedules built on top.
//!
//! Sunway TaihuLight connects SW26010 nodes through a custom fat-tree
//! network; swCaffe-style data-parallel training and fleet serving both
//! charge their cross-chip traffic against that network. This module is
//! the chip-to-chip analogue of [`crate::dma`]: a two-parameter
//! (latency, bandwidth) cost per link, plus closed-form costs for the
//! two allreduce schedules the cluster layer uses:
//!
//! * **ring** — `2·(C−1)` steps, each moving `bytes/C` per link; optimal
//!   wire bytes for large tensors (`2·bytes·(C−1)/C` per chip);
//! * **tree** — `2·⌈log₂C⌉` steps, each moving the full tensor; fewer
//!   latency terms, so it wins for small tensors where the per-step
//!   latency dominates the wire time.
//!
//! Costs are *timing only*: the cluster layer computes gradients in a
//! fixed order independent of the schedule, so schedule choice moves
//! simulated time and wire-byte counters, never numerics.

/// Per-link characteristics of the modeled chip-to-chip network.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InterconnectSpec {
    /// One-way link latency per message, µs of simulated time.
    pub link_latency_us: f64,
    /// Link bandwidth, GB/s (bytes/ns).
    pub link_gbps: f64,
}

impl InterconnectSpec {
    /// TaihuLight-like node network: ~8 GB/s per direction with a ~1 µs
    /// MPI-grade injection latency.
    pub const fn sw_cluster() -> Self {
        Self {
            link_latency_us: 1.0,
            link_gbps: 8.0,
        }
    }

    /// Time for one `bytes`-sized message over one link, µs.
    pub fn transfer_us(&self, bytes: u64) -> f64 {
        self.link_latency_us + bytes as f64 / (self.link_gbps * 1e3)
    }

    /// Ring allreduce over `chips` peers: reduce-scatter then allgather,
    /// `2·(C−1)` steps each moving a `bytes/C` segment. Returns 0 for a
    /// single chip (no wire traffic).
    pub fn ring_allreduce_us(&self, bytes: u64, chips: usize) -> f64 {
        if chips <= 1 {
            return 0.0;
        }
        let steps = 2 * (chips - 1);
        let segment = (bytes as f64 / chips as f64).ceil() as u64;
        steps as f64 * self.transfer_us(segment)
    }

    /// Tree allreduce (reduce then broadcast): `2·⌈log₂C⌉` steps moving
    /// the whole tensor each step.
    pub fn tree_allreduce_us(&self, bytes: u64, chips: usize) -> f64 {
        if chips <= 1 {
            return 0.0;
        }
        let rounds = (chips as f64).log2().ceil() as usize;
        (2 * rounds) as f64 * self.transfer_us(bytes)
    }

    /// The schedule the cluster uses for a tensor of `bytes`: whichever
    /// of ring/tree is cheaper under this spec.
    pub fn allreduce_us(&self, bytes: u64, chips: usize) -> (AllreduceKind, f64) {
        let ring = self.ring_allreduce_us(bytes, chips);
        let tree = self.tree_allreduce_us(bytes, chips);
        if tree < ring {
            (AllreduceKind::Tree, tree)
        } else {
            (AllreduceKind::Ring, ring)
        }
    }

    /// Bytes each chip puts on the wire under the given schedule — the
    /// Demmel-style first-class metric the cluster counters report.
    pub fn allreduce_wire_bytes_per_chip(
        &self,
        kind: AllreduceKind,
        bytes: u64,
        chips: usize,
    ) -> u64 {
        if chips <= 1 {
            return 0;
        }
        match kind {
            AllreduceKind::Ring => {
                let segment = (bytes as f64 / chips as f64).ceil() as u64;
                2 * (chips as u64 - 1) * segment
            }
            AllreduceKind::Tree => {
                let rounds = (chips as f64).log2().ceil() as u64;
                2 * rounds * bytes
            }
        }
    }
}

impl Default for InterconnectSpec {
    fn default() -> Self {
        Self::sw_cluster()
    }
}

/// Which collective schedule an allreduce used.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllreduceKind {
    Ring,
    Tree,
}

impl AllreduceKind {
    pub fn name(&self) -> &'static str {
        match self {
            AllreduceKind::Ring => "ring",
            AllreduceKind::Tree => "tree",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_is_latency_plus_wire_time() {
        let net = InterconnectSpec::sw_cluster();
        // 8 KB at 8 GB/s = 1 µs of wire time + 1 µs latency.
        assert!((net.transfer_us(8_000) - 2.0).abs() < 1e-12);
        // Latency floor: an empty message still costs the latency.
        assert!((net.transfer_us(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_chip_allreduce_is_free() {
        let net = InterconnectSpec::sw_cluster();
        assert_eq!(net.ring_allreduce_us(1 << 20, 1), 0.0);
        assert_eq!(net.tree_allreduce_us(1 << 20, 1), 0.0);
        assert_eq!(
            net.allreduce_wire_bytes_per_chip(AllreduceKind::Ring, 1 << 20, 1),
            0
        );
    }

    #[test]
    fn ring_wins_large_tensors_tree_wins_small() {
        let net = InterconnectSpec::sw_cluster();
        let (kind, _) = net.allreduce_us(64 << 20, 8);
        assert_eq!(kind, AllreduceKind::Ring, "64 MB: bandwidth-bound");
        let (kind, _) = net.allreduce_us(256, 8);
        assert_eq!(kind, AllreduceKind::Tree, "256 B: latency-bound");
    }

    #[test]
    fn ring_step_count_and_segments() {
        let net = InterconnectSpec {
            link_latency_us: 0.0,
            link_gbps: 1.0,
        };
        // 4 chips, 4000 bytes → 6 steps × 1000 bytes / (1 GB/s) = 6 µs.
        assert!((net.ring_allreduce_us(4_000, 4) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn tree_rounds_are_log2_ceil() {
        let net = InterconnectSpec {
            link_latency_us: 1.0,
            link_gbps: 1e12, // wire time ~0
        };
        // 8 chips → 3 rounds each way → 6 µs of pure latency.
        assert!((net.tree_allreduce_us(1, 8) - 6.0).abs() < 1e-6);
        // 5 chips round up to 3 rounds too.
        assert!((net.tree_allreduce_us(1, 5) - 6.0).abs() < 1e-6);
    }

    #[test]
    fn ring_wire_bytes_approach_2x_tensor() {
        let net = InterconnectSpec::sw_cluster();
        let bytes = 1 << 20;
        let wire = net.allreduce_wire_bytes_per_chip(AllreduceKind::Ring, bytes, 8);
        let optimal = 2 * bytes * 7 / 8;
        assert_eq!(wire, optimal, "ring is wire-byte optimal");
        let tree = net.allreduce_wire_bytes_per_chip(AllreduceKind::Tree, bytes, 8);
        assert!(tree > wire, "tree trades wire bytes for latency terms");
    }
}
