//! Modeled multi-chip interconnect: per-link latency + bandwidth, and
//! collective (allreduce) schedules built on top.
//!
//! Sunway TaihuLight connects SW26010 nodes through a custom fat-tree
//! network; swCaffe-style data-parallel training and fleet serving both
//! charge their cross-chip traffic against that network. This module is
//! the chip-to-chip analogue of [`crate::dma`]: a two-parameter
//! (latency, bandwidth) cost per link, plus closed-form costs for the
//! two allreduce schedules the cluster layer uses:
//!
//! * **ring** — `2·(C−1)` steps, each moving `bytes/C` per link; optimal
//!   wire bytes for large tensors (`2·bytes·(C−1)/C` per chip);
//! * **tree** — `2·⌈log₂C⌉` steps, each moving the full tensor; fewer
//!   latency terms, so it wins for small tensors where the per-step
//!   latency dominates the wire time.
//!
//! Costs are *timing only*: the cluster layer computes gradients in a
//! fixed order independent of the schedule, so schedule choice moves
//! simulated time and wire-byte counters, never numerics.
//!
//! Beyond the closed forms, this module carries the **topology-aware**
//! model the bucketized collective path uses:
//!
//! * [`CollectiveSchedule`] — a collective as *data*: explicit rounds of
//!   `src → dst` transfers (ring and tree constructors today, future
//!   schedules are new data, not new code);
//! * [`Topology`] — switch groups with shared duplex uplinks, so
//!   cross-group transfers contend for an oversubscribed resource;
//! * [`NetworkModel`] + [`LinkOccupancy`] — executes schedules against
//!   per-link occupancy timelines: transfers sharing a send port, a
//!   receive port, or a group uplink serialize deterministically, and
//!   collectives launched back to back pipeline through the same
//!   occupancy state. On a flat topology the executed ring/tree times
//!   reproduce the closed forms (a property test pins it); on a grouped
//!   topology congestion is priced instead of wished away.

/// Per-link characteristics of the modeled chip-to-chip network.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InterconnectSpec {
    /// One-way link latency per message, µs of simulated time.
    pub link_latency_us: f64,
    /// Link bandwidth, GB/s (bytes/ns).
    pub link_gbps: f64,
}

impl InterconnectSpec {
    /// TaihuLight-like node network: ~8 GB/s per direction with a ~1 µs
    /// MPI-grade injection latency.
    pub const fn sw_cluster() -> Self {
        Self {
            link_latency_us: 1.0,
            link_gbps: 8.0,
        }
    }

    /// Time for one `bytes`-sized message over one link, µs.
    pub fn transfer_us(&self, bytes: u64) -> f64 {
        self.link_latency_us + bytes as f64 / (self.link_gbps * 1e3)
    }

    /// Ring allreduce over `chips` peers: reduce-scatter then allgather,
    /// `2·(C−1)` steps each moving a `bytes/C` segment. Returns 0 for a
    /// single chip (no wire traffic).
    pub fn ring_allreduce_us(&self, bytes: u64, chips: usize) -> f64 {
        if chips <= 1 {
            return 0.0;
        }
        let steps = 2 * (chips - 1);
        let segment = (bytes as f64 / chips as f64).ceil() as u64;
        steps as f64 * self.transfer_us(segment)
    }

    /// Tree allreduce (reduce then broadcast): `2·⌈log₂C⌉` steps moving
    /// the whole tensor each step.
    pub fn tree_allreduce_us(&self, bytes: u64, chips: usize) -> f64 {
        if chips <= 1 {
            return 0.0;
        }
        let rounds = (chips as f64).log2().ceil() as usize;
        (2 * rounds) as f64 * self.transfer_us(bytes)
    }

    /// The schedule the cluster uses for a tensor of `bytes`: whichever
    /// of ring/tree is cheaper under this spec.
    pub fn allreduce_us(&self, bytes: u64, chips: usize) -> (AllreduceKind, f64) {
        let ring = self.ring_allreduce_us(bytes, chips);
        let tree = self.tree_allreduce_us(bytes, chips);
        if tree < ring {
            (AllreduceKind::Tree, tree)
        } else {
            (AllreduceKind::Ring, ring)
        }
    }

    /// Bytes each chip puts on the wire under the given schedule — the
    /// Demmel-style first-class metric the cluster counters report.
    pub fn allreduce_wire_bytes_per_chip(
        &self,
        kind: AllreduceKind,
        bytes: u64,
        chips: usize,
    ) -> u64 {
        if chips <= 1 {
            return 0;
        }
        match kind {
            AllreduceKind::Ring => {
                let segment = (bytes as f64 / chips as f64).ceil() as u64;
                2 * (chips as u64 - 1) * segment
            }
            AllreduceKind::Tree => {
                let rounds = (chips as f64).log2().ceil() as u64;
                2 * rounds * bytes
            }
        }
    }
}

impl Default for InterconnectSpec {
    fn default() -> Self {
        Self::sw_cluster()
    }
}

/// Which collective schedule an allreduce used.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllreduceKind {
    Ring,
    Tree,
}

impl AllreduceKind {
    pub fn name(&self) -> &'static str {
        match self {
            AllreduceKind::Ring => "ring",
            AllreduceKind::Tree => "tree",
        }
    }
}

/// Switch-group overlay on the per-link [`InterconnectSpec`].
///
/// Chips are partitioned into groups of `group_size` consecutive ids
/// (TaihuLight: four SW26010 nodes per board, boards joined by the
/// supernode switch). Transfers inside a group ride dedicated links;
/// transfers that cross a group boundary additionally occupy one duplex
/// uplink on *each* side, and a group's uplinks are shared by all of its
/// cross-group flows — that sharing is where oversubscription shows up
/// as serialization instead of free parallelism.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Topology {
    /// Chips per switch group; `0` means flat (no shared resources
    /// beyond each chip's own send/receive ports).
    pub group_size: usize,
    /// Duplex uplinks per group; cross-group transfers pick the
    /// least-busy one (ties to the lowest index, so the choice is
    /// deterministic).
    pub uplinks_per_group: usize,
    /// Uplink bandwidth, GB/s. `None` inherits the intra-group link
    /// bandwidth; a smaller value models a tapered fat-tree.
    pub uplink_gbps: Option<f64>,
}

impl Topology {
    /// Every chip pair has a dedicated path — the PR 7 model.
    pub const fn flat() -> Self {
        Self {
            group_size: 0,
            uplinks_per_group: 0,
            uplink_gbps: None,
        }
    }

    /// TaihuLight-like supernode tier: 4 chips per board, one duplex
    /// uplink per board into the switch (4:1 oversubscribed when every
    /// chip talks off-board at once).
    pub const fn sw_supernode() -> Self {
        Self {
            group_size: 4,
            uplinks_per_group: 1,
            uplink_gbps: None,
        }
    }

    /// Is grouping active at all?
    pub fn is_grouped(&self) -> bool {
        self.group_size > 0 && self.uplinks_per_group > 0
    }

    /// The switch group `chip` belongs to (`None` on a flat topology).
    pub fn group_of(&self, chip: usize) -> Option<usize> {
        if self.is_grouped() {
            Some(chip / self.group_size)
        } else {
            None
        }
    }

    /// Do `src → dst` cross a group boundary?
    pub fn crosses_groups(&self, src: usize, dst: usize) -> bool {
        match (self.group_of(src), self.group_of(dst)) {
            (Some(a), Some(b)) => a != b,
            _ => false,
        }
    }
}

impl Default for Topology {
    fn default() -> Self {
        Self::flat()
    }
}

/// One point-to-point transfer inside a collective round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Transfer {
    pub src: usize,
    pub dst: usize,
    pub bytes: u64,
}

/// One bulk-synchronous round: its transfers are nominally concurrent,
/// but shared links may serialize them; the next round starts only when
/// every transfer of this round has finished.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Round {
    pub transfers: Vec<Transfer>,
}

/// A collective schedule as data: which bytes move between which chips
/// in which round. Numerics live elsewhere (the cluster layer reduces in
/// fixed microbatch order whatever the schedule); this object decides
/// only time and wire bytes when executed by a [`NetworkModel`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CollectiveSchedule {
    pub kind: AllreduceKind,
    /// Participating chip ids, ascending. Need not be contiguous — an
    /// elastic trainer builds schedules over failure survivors.
    pub members: Vec<usize>,
    /// Size of the tensor being reduced, bytes.
    pub tensor_bytes: u64,
    pub rounds: Vec<Round>,
}

impl CollectiveSchedule {
    /// Ring allreduce over `members`: reduce-scatter then allgather,
    /// `2·(C−1)` rounds in which member `i` sends a `⌈bytes/C⌉` segment
    /// to member `i+1 (mod C)`.
    pub fn ring(members: &[usize], bytes: u64) -> Self {
        let c = members.len();
        let mut rounds = Vec::new();
        if c > 1 {
            let segment = bytes.div_ceil(c as u64);
            for _ in 0..2 * (c - 1) {
                rounds.push(Round {
                    transfers: (0..c)
                        .map(|i| Transfer {
                            src: members[i],
                            dst: members[(i + 1) % c],
                            bytes: segment,
                        })
                        .collect(),
                });
            }
        }
        Self {
            kind: AllreduceKind::Ring,
            members: members.to_vec(),
            tensor_bytes: bytes,
            rounds,
        }
    }

    /// Tree allreduce over `members`: recursive-halving reduce toward
    /// `members[0]`, then the mirror broadcast — `2·⌈log₂C⌉` rounds
    /// moving the whole tensor per transfer.
    pub fn tree(members: &[usize], bytes: u64) -> Self {
        let c = members.len();
        let mut reduce = Vec::new();
        let mut stride = 1usize;
        while stride < c {
            let mut transfers = Vec::new();
            let mut i = 0usize;
            while i + stride < c {
                transfers.push(Transfer {
                    src: members[i + stride],
                    dst: members[i],
                    bytes,
                });
                i += 2 * stride;
            }
            reduce.push(Round { transfers });
            stride *= 2;
        }
        let mut rounds = reduce.clone();
        for r in reduce.iter().rev() {
            rounds.push(Round {
                transfers: r
                    .transfers
                    .iter()
                    .map(|t| Transfer {
                        src: t.dst,
                        dst: t.src,
                        bytes: t.bytes,
                    })
                    .collect(),
            });
        }
        Self {
            kind: AllreduceKind::Tree,
            members: members.to_vec(),
            tensor_bytes: bytes,
            rounds,
        }
    }

    /// The schedule the cluster uses for this tensor: whichever of
    /// ring/tree the closed-form (uncontended) model prices cheaper.
    pub fn plan(spec: &InterconnectSpec, members: &[usize], bytes: u64) -> Self {
        match spec.allreduce_us(bytes, members.len()).0 {
            AllreduceKind::Ring => Self::ring(members, bytes),
            AllreduceKind::Tree => Self::tree(members, bytes),
        }
    }

    /// Bytes the busiest member puts on the wire under this schedule.
    pub fn wire_bytes_per_chip(&self) -> u64 {
        let mut sent = std::collections::BTreeMap::new();
        for r in &self.rounds {
            for t in &r.transfers {
                *sent.entry(t.src).or_insert(0u64) += t.bytes;
            }
        }
        sent.values().copied().max().unwrap_or(0)
    }

    /// Total bytes moved by all members over all rounds.
    pub fn total_wire_bytes(&self) -> u64 {
        self.rounds
            .iter()
            .flat_map(|r| r.transfers.iter())
            .map(|t| t.bytes)
            .sum()
    }
}

/// Occupancy of one named network resource (a chip's send/receive port
/// or a group uplink).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LinkUse {
    /// Simulated time until which the resource is busy, µs.
    pub busy_until_us: f64,
    /// Total busy time accumulated, µs.
    pub busy_us: f64,
    /// Total bytes carried.
    pub bytes: u64,
}

/// Per-link occupancy timelines shared by every collective charged to
/// the same network. Executing two schedules through one occupancy makes
/// them contend for ports and uplinks exactly like two gradient buckets
/// in flight at once.
#[derive(Clone, Debug, Default)]
pub struct LinkOccupancy {
    links: std::collections::BTreeMap<String, LinkUse>,
}

impl LinkOccupancy {
    pub fn new() -> Self {
        Self::default()
    }

    fn busy_until(&self, name: &str) -> f64 {
        self.links.get(name).map(|l| l.busy_until_us).unwrap_or(0.0)
    }

    fn occupy(&mut self, name: &str, finish_us: f64, dur_us: f64, bytes: u64) {
        let l = self.links.entry(name.to_string()).or_default();
        l.busy_until_us = l.busy_until_us.max(finish_us);
        l.busy_us += dur_us;
        l.bytes += bytes;
    }

    /// Every `(link name, usage)` pair, deterministically sorted.
    pub fn links(&self) -> impl Iterator<Item = (&str, &LinkUse)> {
        self.links.iter().map(|(k, v)| (k.as_str(), v))
    }

    pub fn get(&self, name: &str) -> LinkUse {
        self.links.get(name).copied().unwrap_or_default()
    }
}

/// Outcome of executing one schedule against the shared occupancy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CollectiveCost {
    /// When the first transfer actually started, µs (≥ the requested
    /// earliest start when the network was already busy).
    pub start_us: f64,
    /// When the last round finished, µs.
    pub finish_us: f64,
}

/// The topology-aware network: a link spec plus the group structure,
/// executing [`CollectiveSchedule`]s over [`LinkOccupancy`] timelines.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetworkModel {
    pub spec: InterconnectSpec,
    pub topology: Topology,
}

impl NetworkModel {
    pub fn new(spec: InterconnectSpec, topology: Topology) -> Self {
        Self { spec, topology }
    }

    /// Name of chip `chip`'s send port resource.
    pub fn tx_link(chip: usize) -> String {
        format!("tx-{chip}")
    }

    /// Name of chip `chip`'s receive port resource.
    pub fn rx_link(chip: usize) -> String {
        format!("rx-{chip}")
    }

    /// Name of uplink `k` of group `group`.
    pub fn uplink(group: usize, k: usize) -> String {
        format!("uplink-{group}-{k}")
    }

    /// Pick the least-busy uplink of `group` (lowest index wins ties).
    fn choose_uplink(&self, occ: &LinkOccupancy, group: usize) -> String {
        let mut best = Self::uplink(group, 0);
        let mut best_busy = occ.busy_until(&best);
        for k in 1..self.topology.uplinks_per_group {
            let name = Self::uplink(group, k);
            let busy = occ.busy_until(&name);
            if busy < best_busy {
                best_busy = busy;
                best = name;
            }
        }
        best
    }

    /// Duration of one transfer: latency plus wire time at the narrowest
    /// link on the path (the uplink, when the transfer crosses groups
    /// and the uplink is tapered).
    fn transfer_dur_us(&self, t: &Transfer) -> f64 {
        let mut gbps = self.spec.link_gbps;
        if self.topology.crosses_groups(t.src, t.dst) {
            gbps = gbps.min(self.topology.uplink_gbps.unwrap_or(gbps));
        }
        self.spec.link_latency_us + t.bytes as f64 / (gbps * 1e3)
    }

    /// Execute `sched` no earlier than `earliest_us`, serializing on
    /// whatever `occ` says is busy and charging every resource touched.
    ///
    /// Determinism: transfers are processed in their stored order inside
    /// each round, rounds strictly in order, and uplink choice breaks
    /// ties by index — the result is a pure function of
    /// `(self, occ, sched, earliest_us)`.
    pub fn execute(
        &self,
        occ: &mut LinkOccupancy,
        sched: &CollectiveSchedule,
        earliest_us: f64,
    ) -> CollectiveCost {
        let mut round_start = earliest_us;
        let mut first_start = f64::INFINITY;
        for round in &sched.rounds {
            let mut round_end = round_start;
            for t in &round.transfers {
                let tx = Self::tx_link(t.src);
                let rx = Self::rx_link(t.dst);
                let mut resources = vec![tx, rx];
                if self.topology.crosses_groups(t.src, t.dst) {
                    let sg = self.topology.group_of(t.src).expect("grouped");
                    let dg = self.topology.group_of(t.dst).expect("grouped");
                    resources.push(self.choose_uplink(occ, sg));
                    resources.push(self.choose_uplink(occ, dg));
                }
                let start = resources
                    .iter()
                    .map(|r| occ.busy_until(r))
                    .fold(round_start, f64::max);
                let dur = self.transfer_dur_us(t);
                let finish = start + dur;
                for r in &resources {
                    occ.occupy(r, finish, dur, t.bytes);
                }
                first_start = first_start.min(start);
                round_end = round_end.max(finish);
            }
            round_start = round_end;
        }
        if !first_start.is_finite() {
            first_start = earliest_us;
        }
        CollectiveCost {
            start_us: first_start,
            finish_us: round_start,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_is_latency_plus_wire_time() {
        let net = InterconnectSpec::sw_cluster();
        // 8 KB at 8 GB/s = 1 µs of wire time + 1 µs latency.
        assert!((net.transfer_us(8_000) - 2.0).abs() < 1e-12);
        // Latency floor: an empty message still costs the latency.
        assert!((net.transfer_us(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_chip_allreduce_is_free() {
        let net = InterconnectSpec::sw_cluster();
        assert_eq!(net.ring_allreduce_us(1 << 20, 1), 0.0);
        assert_eq!(net.tree_allreduce_us(1 << 20, 1), 0.0);
        assert_eq!(
            net.allreduce_wire_bytes_per_chip(AllreduceKind::Ring, 1 << 20, 1),
            0
        );
    }

    #[test]
    fn ring_wins_large_tensors_tree_wins_small() {
        let net = InterconnectSpec::sw_cluster();
        let (kind, _) = net.allreduce_us(64 << 20, 8);
        assert_eq!(kind, AllreduceKind::Ring, "64 MB: bandwidth-bound");
        let (kind, _) = net.allreduce_us(256, 8);
        assert_eq!(kind, AllreduceKind::Tree, "256 B: latency-bound");
    }

    #[test]
    fn ring_step_count_and_segments() {
        let net = InterconnectSpec {
            link_latency_us: 0.0,
            link_gbps: 1.0,
        };
        // 4 chips, 4000 bytes → 6 steps × 1000 bytes / (1 GB/s) = 6 µs.
        assert!((net.ring_allreduce_us(4_000, 4) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn tree_rounds_are_log2_ceil() {
        let net = InterconnectSpec {
            link_latency_us: 1.0,
            link_gbps: 1e12, // wire time ~0
        };
        // 8 chips → 3 rounds each way → 6 µs of pure latency.
        assert!((net.tree_allreduce_us(1, 8) - 6.0).abs() < 1e-6);
        // 5 chips round up to 3 rounds too.
        assert!((net.tree_allreduce_us(1, 5) - 6.0).abs() < 1e-6);
    }

    #[test]
    fn ring_wire_bytes_approach_2x_tensor() {
        let net = InterconnectSpec::sw_cluster();
        let bytes = 1 << 20;
        let wire = net.allreduce_wire_bytes_per_chip(AllreduceKind::Ring, bytes, 8);
        let optimal = 2 * bytes * 7 / 8;
        assert_eq!(wire, optimal, "ring is wire-byte optimal");
        let tree = net.allreduce_wire_bytes_per_chip(AllreduceKind::Tree, bytes, 8);
        assert!(tree > wire, "tree trades wire bytes for latency terms");
    }

    #[test]
    fn executed_schedules_match_closed_forms_on_flat_topology() {
        let spec = InterconnectSpec::sw_cluster();
        let net = NetworkModel::new(spec, Topology::flat());
        for &chips in &[2usize, 3, 4, 5, 8] {
            let members: Vec<usize> = (0..chips).collect();
            let bytes = 40_000u64;
            for sched in [
                CollectiveSchedule::ring(&members, bytes),
                CollectiveSchedule::tree(&members, bytes),
            ] {
                let mut occ = LinkOccupancy::new();
                let cost = net.execute(&mut occ, &sched, 10.0);
                let closed = match sched.kind {
                    AllreduceKind::Ring => spec.ring_allreduce_us(bytes, chips),
                    AllreduceKind::Tree => spec.tree_allreduce_us(bytes, chips),
                };
                assert!((cost.start_us - 10.0).abs() < 1e-9);
                assert!(
                    (cost.finish_us - 10.0 - closed).abs() < 1e-6 * closed.max(1.0),
                    "{} chips={chips}: executed {} vs closed {}",
                    sched.kind.name(),
                    cost.finish_us - 10.0,
                    closed
                );
            }
        }
    }

    #[test]
    fn schedule_wire_bytes_match_closed_form() {
        let spec = InterconnectSpec::sw_cluster();
        let members: Vec<usize> = (0..8).collect();
        let bytes = 1 << 20;
        let ring = CollectiveSchedule::ring(&members, bytes);
        assert_eq!(
            ring.wire_bytes_per_chip(),
            spec.allreduce_wire_bytes_per_chip(AllreduceKind::Ring, bytes, 8)
        );
        let single = CollectiveSchedule::ring(&[3], bytes);
        assert_eq!(single.wire_bytes_per_chip(), 0);
        assert!(single.rounds.is_empty());
    }

    #[test]
    fn back_to_back_collectives_serialize_on_shared_ports() {
        let net = NetworkModel::new(InterconnectSpec::sw_cluster(), Topology::flat());
        let members: Vec<usize> = (0..4).collect();
        let sched = CollectiveSchedule::ring(&members, 40_000);
        let mut occ = LinkOccupancy::new();
        let a = net.execute(&mut occ, &sched, 0.0);
        let b = net.execute(&mut occ, &sched, 0.0);
        let single = a.finish_us;
        // The second collective wants to start at 0 but every port is
        // busy until `single`; it serializes behind the first.
        assert!(b.start_us >= single - 1e-9, "second waits for ports");
        assert!((b.finish_us - 2.0 * single).abs() < 1e-6 * single);
        // Determinism: replaying from scratch reproduces both costs.
        let mut occ2 = LinkOccupancy::new();
        assert_eq!(net.execute(&mut occ2, &sched, 0.0), a);
        assert_eq!(net.execute(&mut occ2, &sched, 0.0), b);
    }

    #[test]
    fn oversubscribed_uplink_slows_cross_group_traffic() {
        let spec = InterconnectSpec::sw_cluster();
        let members: Vec<usize> = (0..8).collect();
        let sched = CollectiveSchedule::ring(&members, 400_000);
        let mut flat_occ = LinkOccupancy::new();
        let flat = NetworkModel::new(spec, Topology::flat()).execute(&mut flat_occ, &sched, 0.0);
        let mut grp_occ = LinkOccupancy::new();
        let grouped =
            NetworkModel::new(spec, Topology::sw_supernode()).execute(&mut grp_occ, &sched, 0.0);
        // Chips 3→4 and 7→0 cross the board boundary and share each
        // board's single duplex uplink, so the grouped run is slower.
        assert!(
            grouped.finish_us > flat.finish_us,
            "grouped {} must exceed flat {}",
            grouped.finish_us,
            flat.finish_us
        );
        let up = grp_occ.get(&NetworkModel::uplink(0, 0));
        assert!(up.bytes > 0, "uplink-0-0 carried traffic");
        assert!(flat_occ.get(&NetworkModel::uplink(0, 0)).bytes == 0);
    }

    #[test]
    fn schedules_support_non_contiguous_survivor_sets() {
        let net = NetworkModel::new(InterconnectSpec::sw_cluster(), Topology::flat());
        let members = [0usize, 2, 5];
        for sched in [
            CollectiveSchedule::ring(&members, 10_000),
            CollectiveSchedule::tree(&members, 10_000),
        ] {
            for t in sched.rounds.iter().flat_map(|r| r.transfers.iter()) {
                assert!(members.contains(&t.src) && members.contains(&t.dst));
                assert_ne!(t.src, t.dst);
            }
            let mut occ = LinkOccupancy::new();
            let cost = net.execute(&mut occ, &sched, 0.0);
            assert!(cost.finish_us > 0.0);
        }
    }

    #[test]
    fn tapered_uplink_prices_narrowest_hop() {
        let spec = InterconnectSpec {
            link_latency_us: 0.0,
            link_gbps: 8.0,
        };
        let topo = Topology {
            group_size: 2,
            uplinks_per_group: 1,
            uplink_gbps: Some(2.0),
        };
        let net = NetworkModel::new(spec, topo);
        let sched = CollectiveSchedule {
            kind: AllreduceKind::Ring,
            members: vec![0, 2],
            tensor_bytes: 8_000,
            rounds: vec![Round {
                transfers: vec![Transfer {
                    src: 0,
                    dst: 2,
                    bytes: 8_000,
                }],
            }],
        };
        let mut occ = LinkOccupancy::new();
        let cost = net.execute(&mut occ, &sched, 0.0);
        // 8 KB at the 2 GB/s uplink = 4 µs, not the 1 µs the 8 GB/s
        // chip ports could do.
        assert!((cost.finish_us - 4.0).abs() < 1e-9);
    }
}
