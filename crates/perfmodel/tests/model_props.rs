//! Property tests for the performance model: monotonicities, bounds and
//! internal consistency of the RBW equations and the Fig. 2 estimator.

use proptest::prelude::*;
use sw_perfmodel::dma::{DmaDirection, DmaTable};
use sw_perfmodel::select::{ldm_doubles_image_aware, Blocking};
use sw_perfmodel::{rbw, select_plan, ChipSpec, ConvPerfModel, PlanKind};
use sw_tensor::ConvShape;

fn arb_channels() -> impl Strategy<Value = usize> {
    (1usize..=48).prop_map(|v| v * 8)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn estimates_never_exceed_peak(
        ni in arb_channels(), no in arb_channels(),
        b_b in prop::sample::select(vec![32usize, 64, 128]),
        b_co in prop::sample::select(vec![4usize, 8, 16, 32]),
        kc in 1usize..8,
    ) {
        let m = ConvPerfModel::default();
        for kind in [PlanKind::ImageSizeAware, PlanKind::BatchSizeAware, PlanKind::DirectGload] {
            let est = m.estimate(kind, Blocking { b_b, b_co }, 128, ni, no, kc);
            prop_assert!(est.gflops_per_cg > 0.0);
            prop_assert!(est.gflops_per_cg <= m.chip.peak_gflops_per_cg() + 1e-9);
            prop_assert!(est.execution_efficiency > 0.0 && est.execution_efficiency < 1.0);
        }
    }

    #[test]
    fn rbw_eq1_monotonic_in_all_arguments(
        b_b in prop::sample::select(vec![32usize, 64, 128]),
        b_co in prop::sample::select(vec![4usize, 8, 16]),
        no in arb_channels(),
    ) {
        let t = 742.4;
        let base = rbw::rbw_image_aware(b_b, b_co, no, t);
        prop_assert!(rbw::rbw_image_aware(b_b * 2, b_co, no, t) < base);
        prop_assert!(rbw::rbw_image_aware(b_b, b_co * 2, no, t) < base);
        prop_assert!(rbw::rbw_image_aware(b_b, b_co, no + 8, t) < base);
        // And scales linearly with peak throughput.
        prop_assert!((rbw::rbw_image_aware(b_b, b_co, no, 2.0 * t) - 2.0 * base).abs() < 1e-9);
    }

    #[test]
    fn rbw_eq2_bounded_below_by_batch_term(batch in 1usize..512, kc in 1usize..22, no in arb_channels()) {
        let t = 742.4;
        let v = rbw::rbw_batch_aware(batch, kc, no, t);
        // RBW >= DS*T/(2*B): the irreducible per-batch-element traffic.
        let floor = 8.0 / (2.0 * batch as f64) * t;
        prop_assert!(v >= floor - 1e-9);
    }

    #[test]
    fn selection_respects_ldm_budget_when_some(ni in arb_channels(), no in arb_channels()) {
        let chip = ChipSpec::sw26010();
        let shape = ConvShape::new(128, ni, no, 64, 64, 3, 3);
        if let Some(c) = select_plan(&shape, &chip) {
            prop_assert!(c.ldm_doubles <= chip.ldm_doubles());
            prop_assert!(c.estimate.gflops_per_cg > 0.0);
            if c.kind == PlanKind::ImageSizeAware {
                prop_assert_eq!(ldm_doubles_image_aware(&shape, c.blocking), c.ldm_doubles);
            }
        }
    }

    #[test]
    fn dma_table_bandwidth_within_published_envelope(bytes in 1usize..16384) {
        let t = DmaTable;
        for dir in [DmaDirection::Get, DmaDirection::Put] {
            let bw = t.bandwidth_gbps(dir, bytes);
            prop_assert!(bw > 0.0);
            prop_assert!(bw <= 36.01 + 1e-9, "{dir:?} {bytes}B -> {bw}");
        }
    }

    #[test]
    fn direct_plan_estimate_is_always_worst(
        // Paper-regime channel counts: Eq. 1's modeled throughput collapses
        // below even the direct mapping for tiny No (1/No dominates), which
        // is exactly why the evaluation starts at 64 channels.
        ni in (4usize..=48).prop_map(|v| v * 8),
        no in (4usize..=48).prop_map(|v| v * 8),
        kc in 1usize..8,
    ) {
        let m = ConvPerfModel::default();
        let blk = Blocking::default();
        let direct = m.estimate(PlanKind::DirectGload, blk, 128, ni, no, kc);
        for kind in [PlanKind::ImageSizeAware, PlanKind::BatchSizeAware] {
            let est = m.estimate(kind, blk, 128, ni, no, kc);
            prop_assert!(direct.gflops_per_cg < est.gflops_per_cg);
        }
    }
}
