//! Deterministic tensor initializers.
//!
//! Reproducible experiments need reproducible data: every generator here is
//! seeded, so two runs of a benchmark see identical operands.

use crate::layout::Layout;
use crate::shape::Shape4;
use crate::tensor::{Scalar, Tensor4};
use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Uniform values in `[-1, 1)` from a fixed seed.
pub fn seeded_tensor<T: Scalar>(shape: Shape4, layout: Layout, seed: u64) -> Tensor4<T> {
    let mut rng = StdRng::seed_from_u64(seed);
    let dist = Uniform::new(-1.0f64, 1.0);
    Tensor4::from_fn(shape, layout, |_, _, _, _| {
        T::from_f64(dist.sample(&mut rng))
    })
}

/// Xavier/Glorot-style uniform initialization for filters:
/// `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`,
/// `fan_in = d1*d2*d3`, `fan_out = d0*d2*d3`.
pub fn xavier_filter<T: Scalar>(shape: Shape4, layout: Layout, seed: u64) -> Tensor4<T> {
    let fan_in = (shape.d1 * shape.d2 * shape.d3) as f64;
    let fan_out = (shape.d0 * shape.d2 * shape.d3) as f64;
    let a = (6.0 / (fan_in + fan_out)).sqrt();
    let mut rng = StdRng::seed_from_u64(seed);
    let dist = Uniform::new(-a, a);
    Tensor4::from_fn(shape, layout, |_, _, _, _| {
        T::from_f64(dist.sample(&mut rng))
    })
}

/// A small-integer-valued tensor (values in `{-4..4}` scaled by 0.25).
///
/// All optimized convolution plans are *exactly* equal to the reference on
/// such inputs regardless of summation order, which makes bit-exact
/// assertions robust even if a plan reassociates additions.
pub fn lattice_tensor<T: Scalar>(shape: Shape4, layout: Layout, seed: u64) -> Tensor4<T> {
    let mut rng = StdRng::seed_from_u64(seed);
    let dist = Uniform::new(-4i32, 5);
    Tensor4::from_fn(shape, layout, |_, _, _, _| {
        T::from_f64(f64::from(dist.sample(&mut rng)) * 0.25)
    })
}

/// Index-encoded tensor (`v = i0*1e3 + i1*1e2 + i2*10 + i3`), useful for
/// debugging layout transforms because every element is identifiable.
pub fn index_tensor<T: Scalar>(shape: Shape4, layout: Layout) -> Tensor4<T> {
    Tensor4::from_fn(shape, layout, |a, b, c, d| {
        T::from_f64((a * 1000 + b * 100 + c * 10 + d) as f64)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let s = Shape4::new(2, 3, 4, 5);
        let a = seeded_tensor::<f64>(s, Layout::Nchw, 42);
        let b = seeded_tensor::<f64>(s, Layout::Nchw, 42);
        assert_eq!(a.max_abs_diff(&b), 0.0);
        let c = seeded_tensor::<f64>(s, Layout::Nchw, 43);
        assert!(a.max_abs_diff(&c) > 0.0);
    }

    #[test]
    fn seeded_values_in_range() {
        let s = Shape4::new(4, 4, 4, 4);
        let t = seeded_tensor::<f64>(s, Layout::Nchw, 1);
        for v in t.data() {
            assert!((-1.0..1.0).contains(v));
        }
    }

    #[test]
    fn xavier_bound_scales_with_fanin() {
        let small = Shape4::new(4, 4, 3, 3);
        let big = Shape4::new(256, 256, 3, 3);
        let a = xavier_filter::<f64>(small, Layout::Nchw, 5);
        let b = xavier_filter::<f64>(big, Layout::Nchw, 5);
        let max_a = a.data().iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let max_b = b.data().iter().fold(0.0f64, |m, v| m.max(v.abs()));
        assert!(max_a > max_b, "larger fan-in must shrink the bound");
    }

    #[test]
    fn lattice_values_are_quarter_integers() {
        let t = lattice_tensor::<f64>(Shape4::new(3, 3, 3, 3), Layout::Nchw, 2);
        for v in t.data() {
            let q = v * 4.0;
            assert_eq!(q, q.round());
            assert!(v.abs() <= 1.0);
        }
    }

    #[test]
    fn index_tensor_encodes_indices() {
        let t = index_tensor::<f64>(Shape4::new(2, 2, 2, 2), Layout::BatchAware);
        assert_eq!(t.get(1, 0, 1, 1), 1011.0);
    }
}
