//! Physical data layouts (§V-C of the paper).
//!
//! The SW26010's DMA engine only approaches peak bandwidth when each CPE
//! transfers contiguous blocks of ≥256 bytes aligned to 128 bytes (Table II),
//! and its 256-bit SIMD unit wants 4 doubles contiguous in memory. swDNN
//! therefore reorganizes the 4-D operands so that 4 elements of the
//! *vectorized* dimension sit innermost:
//!
//! * [`Layout::ImageAware`] — `(4, C, R, N, B/4)` reading inner→outer:
//!   used by the image-size-aware plan (Algorithm 1). The contiguous run per
//!   `(batch-quad, channel, row)` is `C*4` elements, so wide images give
//!   large DMA blocks.
//! * [`Layout::BatchAware`] — `(4, B/4, C, R, N)` inner→outer: used by the
//!   batch-size-aware plan (Algorithm 2). The contiguous run per pixel is
//!   `B` elements, so large batches give large DMA blocks.
//! * [`Layout::Nchw`] — plain row-major, the interchange format and what the
//!   naive reference and the GPU baseline use.

use crate::shape::Shape4;
use crate::VECTOR_WIDTH;

/// Physical element order of a [`crate::Tensor4`] buffer.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Layout {
    /// Row-major `(d0, d1, d2, d3)`, e.g. NCHW for activations.
    #[default]
    Nchw,
    /// swDNN image-size-aware vectorized layout `(4, d3, d2, d1, d0/4)`.
    /// The vector lane runs over `d0` (the batch for activations).
    ImageAware,
    /// swDNN batch-size-aware vectorized layout `(4, d0/4, d3, d2, d1)`.
    /// The vector lane runs over `d0` (the batch for activations).
    BatchAware,
}

#[inline]
const fn ceil_div(a: usize, b: usize) -> usize {
    a.div_ceil(b)
}

impl Layout {
    /// All layouts, for exhaustive tests.
    pub const ALL: [Layout; 3] = [Layout::Nchw, Layout::ImageAware, Layout::BatchAware];

    /// Length of the flat buffer needed to store `shape` in this layout.
    ///
    /// The vectorized layouts pad `d0` up to a multiple of the vector width
    /// so every quad is complete.
    pub fn buffer_len(self, shape: Shape4) -> usize {
        match self {
            Layout::Nchw => shape.len(),
            Layout::ImageAware | Layout::BatchAware => {
                ceil_div(shape.d0, VECTOR_WIDTH) * VECTOR_WIDTH * shape.d1 * shape.d2 * shape.d3
            }
        }
    }

    /// Flat buffer offset of logical index `(i0, i1, i2, i3)`.
    #[inline]
    pub fn offset(self, s: Shape4, i0: usize, i1: usize, i2: usize, i3: usize) -> usize {
        debug_assert!(i0 < s.d0 && i1 < s.d1 && i2 < s.d2 && i3 < s.d3);
        match self {
            Layout::Nchw => ((i0 * s.d1 + i1) * s.d2 + i2) * s.d3 + i3,
            Layout::ImageAware => {
                // outer→inner: d0/4, d1, d2, d3, lane
                let (q, lane) = (i0 / VECTOR_WIDTH, i0 % VECTOR_WIDTH);
                (((q * s.d1 + i1) * s.d2 + i2) * s.d3 + i3) * VECTOR_WIDTH + lane
            }
            Layout::BatchAware => {
                // outer→inner: d1, d2, d3, d0/4, lane
                let (q, lane) = (i0 / VECTOR_WIDTH, i0 % VECTOR_WIDTH);
                let quads = ceil_div(s.d0, VECTOR_WIDTH);
                (((i1 * s.d2 + i2) * s.d3 + i3) * quads + q) * VECTOR_WIDTH + lane
            }
        }
    }

    /// Length in elements of the longest contiguous run this layout
    /// guarantees for DMA transfers (the "leading blocking size" of §III-D).
    ///
    /// Plans use this to predict the DMA block size and therefore the
    /// effective bandwidth from the Table II curve.
    pub fn contiguous_run(self, s: Shape4) -> usize {
        match self {
            Layout::Nchw => s.d3,
            // lane * d3 contiguous per (quad, d1, d2)
            Layout::ImageAware => VECTOR_WIDTH * s.d3,
            // lane * quads contiguous per (d1, d2, d3)
            Layout::BatchAware => VECTOR_WIDTH * ceil_div(s.d0, VECTOR_WIDTH),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nchw_offset_is_row_major() {
        let s = Shape4::new(2, 3, 4, 5);
        assert_eq!(Layout::Nchw.offset(s, 0, 0, 0, 0), 0);
        assert_eq!(Layout::Nchw.offset(s, 0, 0, 0, 1), 1);
        assert_eq!(Layout::Nchw.offset(s, 1, 2, 3, 4), 119);
    }

    #[test]
    fn image_aware_lane_is_innermost() {
        let s = Shape4::new(8, 2, 2, 4);
        let base = Layout::ImageAware.offset(s, 0, 1, 1, 2);
        for lane in 1..4 {
            assert_eq!(Layout::ImageAware.offset(s, lane, 1, 1, 2), base + lane);
        }
        // next column is VECTOR_WIDTH away
        assert_eq!(Layout::ImageAware.offset(s, 0, 1, 1, 3), base + 4);
    }

    #[test]
    fn batch_aware_batch_is_contiguous_per_pixel() {
        let s = Shape4::new(16, 2, 2, 2);
        let base = Layout::BatchAware.offset(s, 0, 1, 0, 1);
        for b in 1..16 {
            assert_eq!(Layout::BatchAware.offset(s, b, 1, 0, 1), base + b);
        }
    }

    #[test]
    fn offsets_are_unique_and_in_bounds() {
        let s = Shape4::new(6, 3, 2, 5); // d0 not a multiple of 4 on purpose
        for lay in Layout::ALL {
            let cap = lay.buffer_len(s);
            let mut seen = vec![false; cap];
            for i0 in 0..s.d0 {
                for i1 in 0..s.d1 {
                    for i2 in 0..s.d2 {
                        for i3 in 0..s.d3 {
                            let o = lay.offset(s, i0, i1, i2, i3);
                            assert!(o < cap, "{lay:?} offset out of bounds");
                            assert!(!seen[o], "{lay:?} offset collision at {o}");
                            seen[o] = true;
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn buffer_len_pads_vector_layouts() {
        let s = Shape4::new(5, 1, 1, 1);
        assert_eq!(Layout::Nchw.buffer_len(s), 5);
        assert_eq!(Layout::ImageAware.buffer_len(s), 8);
        assert_eq!(Layout::BatchAware.buffer_len(s), 8);
    }

    #[test]
    fn contiguous_runs_match_paper_intent() {
        // B=128, Ni=64, 66x66 input images.
        let s = Shape4::new(128, 64, 66, 66);
        assert_eq!(Layout::ImageAware.contiguous_run(s), 4 * 66);
        assert_eq!(Layout::BatchAware.contiguous_run(s), 128);
        assert_eq!(Layout::Nchw.contiguous_run(s), 66);
    }
}
