//! General convolution geometry: zero padding and striding.
//!
//! The paper's kernels cover the dense "valid" convolution (stride 1, no
//! padding) that dominates training time; a usable library also needs the
//! general form for real network architectures (AlexNet's stride-4 stem,
//! "same" padding everywhere). This module provides the reference
//! implementation — forward and both backward passes — against which any
//! future optimized general plan can be checked, together with the
//! geometry algebra.
//!
//! With input `Ri×Ci`, filter `Kr×Kc`, padding `(pr, pc)` and stride
//! `(sr, sc)`:  `Ro = (Ri + 2·pr − Kr)/sr + 1` (and likewise for columns).

use crate::shape::{ConvShape, Shape4};
use crate::tensor::{Scalar, Tensor4};

/// Convolution geometry: filter extent, padding, stride and dilation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ConvGeometry {
    pub kr: usize,
    pub kc: usize,
    pub pad_r: usize,
    pub pad_c: usize,
    pub stride_r: usize,
    pub stride_c: usize,
    /// Row dilation: tap `kr` lands `kr · dil_r` rows into the window.
    pub dil_r: usize,
    /// Column dilation.
    pub dil_c: usize,
}

impl ConvGeometry {
    /// Dense "valid" geometry (the paper's case).
    pub const fn valid(kr: usize, kc: usize) -> Self {
        Self {
            kr,
            kc,
            pad_r: 0,
            pad_c: 0,
            stride_r: 1,
            stride_c: 1,
            dil_r: 1,
            dil_c: 1,
        }
    }

    /// "Same" padding for odd filters at stride 1.
    pub const fn same(kr: usize, kc: usize) -> Self {
        Self {
            kr,
            kc,
            pad_r: (kr - 1) / 2,
            pad_c: (kc - 1) / 2,
            stride_r: 1,
            stride_c: 1,
            dil_r: 1,
            dil_c: 1,
        }
    }

    pub const fn with_stride(mut self, sr: usize, sc: usize) -> Self {
        self.stride_r = sr;
        self.stride_c = sc;
        self
    }

    pub const fn with_padding(mut self, pr: usize, pc: usize) -> Self {
        self.pad_r = pr;
        self.pad_c = pc;
        self
    }

    pub const fn with_dilation(mut self, dr: usize, dc: usize) -> Self {
        self.dil_r = dr;
        self.dil_c = dc;
        self
    }

    /// Effective (dilated) filter height: `(Kr − 1) · dil_r + 1`.
    pub const fn kr_eff(&self) -> usize {
        (self.kr - 1) * self.dil_r + 1
    }

    /// Effective (dilated) filter width.
    pub const fn kc_eff(&self) -> usize {
        (self.kc - 1) * self.dil_c + 1
    }

    /// Output spatial extent for a given input extent, or `None` if the
    /// geometry does not fit.
    pub fn output_extent(&self, ri: usize, ci: usize) -> Option<(usize, usize)> {
        let er = ri + 2 * self.pad_r;
        let ec = ci + 2 * self.pad_c;
        if er < self.kr_eff() || ec < self.kc_eff() {
            return None;
        }
        Some((
            (er - self.kr_eff()) / self.stride_r + 1,
            (ec - self.kc_eff()) / self.stride_c + 1,
        ))
    }

    /// Whether this geometry degenerates to the paper's dense case.
    pub const fn is_valid_dense(&self) -> bool {
        self.pad_r == 0
            && self.pad_c == 0
            && self.stride_r == 1
            && self.stride_c == 1
            && self.dil_r == 1
            && self.dil_c == 1
    }
}

/// Padded, strided forward convolution.
///
/// `input: (B, Ni, Ri, Ci)`, `filter: (No, Ni, Kr, Kc)` →
/// `(B, No, Ro, Co)` with the extents from [`ConvGeometry::output_extent`].
pub fn conv2d_general<T: Scalar>(
    geom: &ConvGeometry,
    input: &Tensor4<T>,
    filter: &Tensor4<T>,
) -> Tensor4<T> {
    let s = input.shape();
    let f = filter.shape();
    assert_eq!(s.d1, f.d1, "input channels");
    assert_eq!(f.d2, geom.kr);
    assert_eq!(f.d3, geom.kc);
    let (ro, co) = geom.output_extent(s.d2, s.d3).expect("geometry fits input");
    let mut out = Tensor4::zeros(Shape4::new(s.d0, f.d0, ro, co), crate::Layout::Nchw);
    for b in 0..s.d0 {
        for no in 0..f.d0 {
            for orow in 0..ro {
                for ocol in 0..co {
                    let mut acc = T::ZERO;
                    for ni in 0..s.d1 {
                        for kr in 0..geom.kr {
                            for kc in 0..geom.kc {
                                let ir = orow * geom.stride_r + kr * geom.dil_r;
                                let ic = ocol * geom.stride_c + kc * geom.dil_c;
                                // Padded coordinates: subtract the pad and
                                // skip out-of-image taps.
                                if ir < geom.pad_r || ic < geom.pad_c {
                                    continue;
                                }
                                let (ir, ic) = (ir - geom.pad_r, ic - geom.pad_c);
                                if ir >= s.d2 || ic >= s.d3 {
                                    continue;
                                }
                                acc += input.get(b, ni, ir, ic) * filter.get(no, ni, kr, kc);
                            }
                        }
                    }
                    out.set(b, no, orow, ocol, acc);
                }
            }
        }
    }
    out
}

/// Gradient w.r.t. the input for the general geometry.
pub fn conv2d_general_bwd_data<T: Scalar>(
    geom: &ConvGeometry,
    input_shape: Shape4,
    d_out: &Tensor4<T>,
    filter: &Tensor4<T>,
) -> Tensor4<T> {
    let s = input_shape;
    let f = filter.shape();
    let o = d_out.shape();
    let mut d_in = Tensor4::zeros(s, crate::Layout::Nchw);
    for b in 0..o.d0 {
        for no in 0..o.d1 {
            for orow in 0..o.d2 {
                for ocol in 0..o.d3 {
                    let g = d_out.get(b, no, orow, ocol);
                    for ni in 0..s.d1 {
                        for kr in 0..geom.kr {
                            for kc in 0..geom.kc {
                                let ir = orow * geom.stride_r + kr * geom.dil_r;
                                let ic = ocol * geom.stride_c + kc * geom.dil_c;
                                if ir < geom.pad_r || ic < geom.pad_c {
                                    continue;
                                }
                                let (ir, ic) = (ir - geom.pad_r, ic - geom.pad_c);
                                if ir >= s.d2 || ic >= s.d3 {
                                    continue;
                                }
                                let cur = d_in.get(b, ni, ir, ic);
                                d_in.set(b, ni, ir, ic, cur + g * filter.get(no, ni, kr, kc));
                            }
                        }
                    }
                    let _ = f;
                }
            }
        }
    }
    d_in
}

/// Gradient w.r.t. the filters for the general geometry.
pub fn conv2d_general_bwd_filter<T: Scalar>(
    geom: &ConvGeometry,
    input: &Tensor4<T>,
    d_out: &Tensor4<T>,
) -> Tensor4<T> {
    let s = input.shape();
    let o = d_out.shape();
    let mut d_w = Tensor4::zeros(
        Shape4::new(o.d1, s.d1, geom.kr, geom.kc),
        crate::Layout::Nchw,
    );
    for b in 0..o.d0 {
        for no in 0..o.d1 {
            for orow in 0..o.d2 {
                for ocol in 0..o.d3 {
                    let g = d_out.get(b, no, orow, ocol);
                    for ni in 0..s.d1 {
                        for kr in 0..geom.kr {
                            for kc in 0..geom.kc {
                                let ir = orow * geom.stride_r + kr * geom.dil_r;
                                let ic = ocol * geom.stride_c + kc * geom.dil_c;
                                if ir < geom.pad_r || ic < geom.pad_c {
                                    continue;
                                }
                                let (ir, ic) = (ir - geom.pad_r, ic - geom.pad_c);
                                if ir >= s.d2 || ic >= s.d3 {
                                    continue;
                                }
                                let cur = d_w.get(no, ni, kr, kc);
                                d_w.set(no, ni, kr, kc, cur + g * input.get(b, ni, ir, ic));
                            }
                        }
                    }
                }
            }
        }
    }
    d_w
}

/// Flop count of one general forward pass (2 per multiply-add, counting
/// padded taps as skipped).
pub fn general_flops(geom: &ConvGeometry, input_shape: Shape4, no: usize) -> u64 {
    let (ro, co) = geom
        .output_extent(input_shape.d2, input_shape.d3)
        .unwrap_or((0, 0));
    2 * (input_shape.d0 * no * ro * co * input_shape.d1 * geom.kr * geom.kc) as u64
}

impl ConvGeometry {
    /// The equivalent dense [`ConvShape`] when this geometry is valid/dense.
    pub fn as_dense_shape(&self, input: Shape4, no: usize) -> Option<ConvShape> {
        if !self.is_valid_dense() {
            return None;
        }
        let (ro, co) = self.output_extent(input.d2, input.d3)?;
        Some(ConvShape::new(
            input.d0, input.d1, no, ro, co, self.kr, self.kc,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv_ref::conv2d_ref;
    use crate::init::seeded_tensor;
    use crate::Layout;

    #[test]
    fn valid_geometry_matches_dense_reference() {
        let geom = ConvGeometry::valid(3, 2);
        let shape = ConvShape::new(2, 3, 4, 4, 5, 3, 2);
        let input = seeded_tensor::<f64>(shape.input_shape(), Layout::Nchw, 1);
        let filter = seeded_tensor::<f64>(shape.filter_shape(), Layout::Nchw, 2);
        let dense = conv2d_ref(shape, &input, &filter);
        let general = conv2d_general(&geom, &input, &filter);
        assert_eq!(general.max_abs_diff(&dense), 0.0);
    }

    #[test]
    fn same_padding_preserves_extent() {
        let geom = ConvGeometry::same(3, 3);
        assert_eq!(geom.output_extent(7, 9), Some((7, 9)));
        let input = seeded_tensor::<f64>(Shape4::new(1, 2, 7, 9), Layout::Nchw, 3);
        let filter = seeded_tensor::<f64>(Shape4::new(4, 2, 3, 3), Layout::Nchw, 4);
        let out = conv2d_general(&geom, &input, &filter);
        assert_eq!(out.shape(), Shape4::new(1, 4, 7, 9));
    }

    #[test]
    fn stride_downsamples() {
        let geom = ConvGeometry::valid(3, 3).with_stride(2, 2);
        assert_eq!(geom.output_extent(7, 7), Some((3, 3)));
        // AlexNet-style stem: 11x11 stride 4.
        let stem = ConvGeometry::valid(11, 11).with_stride(4, 4);
        assert_eq!(stem.output_extent(227, 227), Some((55, 55)));
    }

    #[test]
    fn padding_taps_are_zero() {
        // A 1-pixel image, 3x3 same padding: only the center tap can hit.
        let geom = ConvGeometry::same(3, 3);
        let input = Tensor4::from_vec(Shape4::new(1, 1, 1, 1), vec![2.0]);
        let filter = seeded_tensor::<f64>(Shape4::new(1, 1, 3, 3), Layout::Nchw, 5);
        let out = conv2d_general(&geom, &input, &filter);
        assert!((out.get(0, 0, 0, 0) - 2.0 * filter.get(0, 0, 1, 1)).abs() < 1e-12);
    }

    #[test]
    fn bwd_data_matches_finite_difference() {
        let geom = ConvGeometry::same(3, 3).with_stride(2, 2);
        let in_shape = Shape4::new(1, 2, 5, 5);
        let input = seeded_tensor::<f64>(in_shape, Layout::Nchw, 6);
        let filter = seeded_tensor::<f64>(Shape4::new(2, 2, 3, 3), Layout::Nchw, 7);
        let out = conv2d_general(&geom, &input, &filter);
        let d_out = Tensor4::full(out.shape(), Layout::Nchw, 1.0);
        let d_in = conv2d_general_bwd_data(&geom, in_shape, &d_out, &filter);

        let eps = 1e-6;
        let base = out.sum_f64();
        for probe in [(0, 0, 0, 0), (0, 1, 2, 2), (0, 0, 4, 4)] {
            let mut bumped = input.clone();
            bumped[probe] += eps;
            let fd = (conv2d_general(&geom, &bumped, &filter).sum_f64() - base) / eps;
            let an = d_in[probe];
            assert!((fd - an).abs() < 1e-4, "{probe:?}: fd {fd} vs {an}");
        }
    }

    #[test]
    fn bwd_filter_matches_finite_difference() {
        let geom = ConvGeometry::valid(2, 2)
            .with_stride(2, 1)
            .with_padding(1, 0);
        let in_shape = Shape4::new(2, 1, 4, 4);
        let input = seeded_tensor::<f64>(in_shape, Layout::Nchw, 8);
        let filter = seeded_tensor::<f64>(Shape4::new(2, 1, 2, 2), Layout::Nchw, 9);
        let out = conv2d_general(&geom, &input, &filter);
        let d_out = Tensor4::full(out.shape(), Layout::Nchw, 1.0);
        let d_w = conv2d_general_bwd_filter(&geom, &input, &d_out);

        let eps = 1e-6;
        let base = out.sum_f64();
        for probe in [(0, 0, 0, 0), (1, 0, 1, 1)] {
            let mut bumped = filter.clone();
            bumped[probe] += eps;
            let fd = (conv2d_general(&geom, &input, &bumped).sum_f64() - base) / eps;
            let an = d_w[probe];
            assert!((fd - an).abs() < 1e-4, "{probe:?}: fd {fd} vs {an}");
        }
    }

    #[test]
    fn dense_shape_conversion() {
        let geom = ConvGeometry::valid(3, 3);
        let shape = geom.as_dense_shape(Shape4::new(8, 16, 10, 10), 32).unwrap();
        assert_eq!(shape, ConvShape::new(8, 16, 32, 8, 8, 3, 3));
        assert!(ConvGeometry::same(3, 3)
            .as_dense_shape(Shape4::new(1, 1, 4, 4), 1)
            .is_none());
    }

    #[test]
    fn too_small_inputs_are_rejected() {
        assert_eq!(ConvGeometry::valid(5, 5).output_extent(3, 3), None);
    }

    #[test]
    fn dilation_widens_the_receptive_field() {
        // A dilated 3x3 at rate 2 spans 5x5: extents match the 5x5 dense
        // filter, and the taps read every other pixel.
        let geom = ConvGeometry::valid(3, 3).with_dilation(2, 2);
        assert_eq!(geom.kr_eff(), 5);
        assert_eq!(geom.output_extent(7, 7), Some((3, 3)));
        assert_eq!(geom.output_extent(4, 4), None);
        assert!(!geom.is_valid_dense());

        // Equivalence: dilated conv == dense conv with a zero-stuffed filter.
        let input = seeded_tensor::<f64>(Shape4::new(1, 2, 7, 7), Layout::Nchw, 13);
        let filter = seeded_tensor::<f64>(Shape4::new(3, 2, 3, 3), Layout::Nchw, 14);
        let mut stuffed = Tensor4::zeros(Shape4::new(3, 2, 5, 5), Layout::Nchw);
        for no in 0..3 {
            for ni in 0..2 {
                for kr in 0..3 {
                    for kc in 0..3 {
                        stuffed.set(no, ni, 2 * kr, 2 * kc, filter.get(no, ni, kr, kc));
                    }
                }
            }
        }
        let dilated = conv2d_general(&geom, &input, &filter);
        let dense = conv2d_general(&ConvGeometry::valid(5, 5), &input, &stuffed);
        assert!(dilated.max_abs_diff(&dense) < 1e-12);
    }

    #[test]
    fn dilated_bwd_filter_matches_finite_difference() {
        let geom = ConvGeometry::valid(2, 2).with_dilation(2, 3);
        let in_shape = Shape4::new(1, 1, 5, 6);
        let input = seeded_tensor::<f64>(in_shape, Layout::Nchw, 15);
        let filter = seeded_tensor::<f64>(Shape4::new(1, 1, 2, 2), Layout::Nchw, 16);
        let out = conv2d_general(&geom, &input, &filter);
        let d_out = Tensor4::full(out.shape(), Layout::Nchw, 1.0);
        let d_w = conv2d_general_bwd_filter(&geom, &input, &d_out);

        let eps = 1e-6;
        let base = out.sum_f64();
        for probe in [(0, 0, 0, 0), (0, 0, 1, 1)] {
            let mut bumped = filter.clone();
            bumped[probe] += eps;
            let fd = (conv2d_general(&geom, &input, &bumped).sum_f64() - base) / eps;
            let an = d_w[probe];
            assert!((fd - an).abs() < 1e-4, "{probe:?}: fd {fd} vs {an}");
        }
    }
}
