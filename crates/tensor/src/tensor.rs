//! Owned dense 4-D tensors.

use crate::layout::Layout;
use crate::shape::Shape4;
use std::fmt;
use std::ops::{Index, IndexMut};

/// Floating-point element types supported by the library.
///
/// The paper evaluates exclusively in double precision (the SW26010's
/// arithmetic units do not run faster in single precision, §VII), so `f64`
/// is the primary instantiation; `f32` is provided for library completeness.
pub trait Scalar:
    Copy
    + Default
    + PartialOrd
    + fmt::Debug
    + fmt::Display
    + std::ops::Add<Output = Self>
    + std::ops::Sub<Output = Self>
    + std::ops::Mul<Output = Self>
    + std::ops::Div<Output = Self>
    + std::ops::AddAssign
    + std::ops::SubAssign
    + std::ops::Neg<Output = Self>
    + Send
    + Sync
    + 'static
{
    const ZERO: Self;
    const ONE: Self;
    /// Size of one element in bytes (used by bandwidth accounting).
    const BYTES: usize;
    fn from_f64(v: f64) -> Self;
    fn to_f64(self) -> f64;
    fn abs(self) -> Self;
    fn exp(self) -> Self;
    fn max(self, other: Self) -> Self;
    fn ln(self) -> Self;
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const BYTES: usize = 8;
    #[inline]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline]
    fn exp(self) -> Self {
        f64::exp(self)
    }
    #[inline]
    fn max(self, other: Self) -> Self {
        f64::max(self, other)
    }
    #[inline]
    fn ln(self) -> Self {
        f64::ln(self)
    }
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const BYTES: usize = 4;
    #[inline]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline]
    fn exp(self) -> Self {
        f32::exp(self)
    }
    #[inline]
    fn max(self, other: Self) -> Self {
        f32::max(self, other)
    }
    #[inline]
    fn ln(self) -> Self {
        f32::ln(self)
    }
}

/// An owned dense 4-D tensor with an explicit physical [`Layout`].
///
/// Logical indexing is always `(d0, d1, d2, d3)` in the order of
/// [`Shape4`]; the layout maps logical indices to positions in the flat
/// buffer. Plans that DMA sub-blocks address the buffer directly through
/// [`Tensor4::data`] using offsets computed from the layout.
#[derive(Clone, PartialEq)]
pub struct Tensor4<T: Scalar = f64> {
    shape: Shape4,
    layout: Layout,
    data: Vec<T>,
}

impl<T: Scalar> Tensor4<T> {
    /// Zero-filled tensor.
    pub fn zeros(shape: Shape4, layout: Layout) -> Self {
        let padded = layout.buffer_len(shape);
        Self {
            shape,
            layout,
            data: vec![T::ZERO; padded],
        }
    }

    /// Tensor filled with a constant.
    pub fn full(shape: Shape4, layout: Layout, v: T) -> Self {
        let padded = layout.buffer_len(shape);
        Self {
            shape,
            layout,
            data: vec![v; padded],
        }
    }

    /// Build from a closure of logical indices.
    pub fn from_fn(
        shape: Shape4,
        layout: Layout,
        mut f: impl FnMut(usize, usize, usize, usize) -> T,
    ) -> Self {
        let mut t = Self::zeros(shape, layout);
        for i0 in 0..shape.d0 {
            for i1 in 0..shape.d1 {
                for i2 in 0..shape.d2 {
                    for i3 in 0..shape.d3 {
                        t[(i0, i1, i2, i3)] = f(i0, i1, i2, i3);
                    }
                }
            }
        }
        t
    }

    /// Wrap an existing buffer laid out row-major ([`Layout::Nchw`]).
    ///
    /// # Panics
    /// If `data.len() != shape.len()`.
    pub fn from_vec(shape: Shape4, data: Vec<T>) -> Self {
        assert_eq!(data.len(), shape.len(), "buffer length must match shape");
        Self {
            shape,
            layout: Layout::Nchw,
            data,
        }
    }

    pub fn shape(&self) -> Shape4 {
        self.shape
    }

    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// The flat backing buffer (layout order, possibly vector-padded).
    pub fn data(&self) -> &[T] {
        &self.data
    }

    pub fn data_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Number of logical elements (excludes layout padding).
    pub fn len(&self) -> usize {
        self.shape.len()
    }

    pub fn is_empty(&self) -> bool {
        self.shape.is_empty()
    }

    /// Logical element read.
    #[inline]
    pub fn get(&self, i0: usize, i1: usize, i2: usize, i3: usize) -> T {
        self.data[self.layout.offset(self.shape, i0, i1, i2, i3)]
    }

    /// Logical element write.
    #[inline]
    pub fn set(&mut self, i0: usize, i1: usize, i2: usize, i3: usize, v: T) {
        let off = self.layout.offset(self.shape, i0, i1, i2, i3);
        self.data[off] = v;
    }

    /// Convert this tensor to another layout, preserving logical content.
    pub fn to_layout(&self, layout: Layout) -> Self {
        if layout == self.layout {
            return self.clone();
        }
        let mut out = Self::zeros(self.shape, layout);
        let s = self.shape;
        for i0 in 0..s.d0 {
            for i1 in 0..s.d1 {
                for i2 in 0..s.d2 {
                    for i3 in 0..s.d3 {
                        out[(i0, i1, i2, i3)] = self.get(i0, i1, i2, i3);
                    }
                }
            }
        }
        out
    }

    /// Max absolute difference against another tensor of the same shape.
    pub fn max_abs_diff(&self, other: &Self) -> f64 {
        assert_eq!(self.shape, other.shape, "shape mismatch");
        let mut m = 0.0f64;
        let s = self.shape;
        for i0 in 0..s.d0 {
            for i1 in 0..s.d1 {
                for i2 in 0..s.d2 {
                    for i3 in 0..s.d3 {
                        let d = (self.get(i0, i1, i2, i3).to_f64()
                            - other.get(i0, i1, i2, i3).to_f64())
                        .abs();
                        if d > m {
                            m = d;
                        }
                    }
                }
            }
        }
        m
    }

    /// `true` when every element matches `other` within `tol` absolutely.
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        self.max_abs_diff(other) <= tol
    }

    /// Sum of all logical elements in f64.
    pub fn sum_f64(&self) -> f64 {
        let s = self.shape;
        let mut acc = 0.0;
        for i0 in 0..s.d0 {
            for i1 in 0..s.d1 {
                for i2 in 0..s.d2 {
                    for i3 in 0..s.d3 {
                        acc += self.get(i0, i1, i2, i3).to_f64();
                    }
                }
            }
        }
        acc
    }

    /// Fill every logical element from a closure (in-place).
    pub fn fill_with(&mut self, mut f: impl FnMut(usize, usize, usize, usize) -> T) {
        let s = self.shape;
        for i0 in 0..s.d0 {
            for i1 in 0..s.d1 {
                for i2 in 0..s.d2 {
                    for i3 in 0..s.d3 {
                        self[(i0, i1, i2, i3)] = f(i0, i1, i2, i3);
                    }
                }
            }
        }
    }

    /// Set every logical element to zero (padding included).
    pub fn zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = T::ZERO);
    }
}

impl<T: Scalar> Index<(usize, usize, usize, usize)> for Tensor4<T> {
    type Output = T;
    #[inline]
    fn index(&self, (i0, i1, i2, i3): (usize, usize, usize, usize)) -> &T {
        &self.data[self.layout.offset(self.shape, i0, i1, i2, i3)]
    }
}

impl<T: Scalar> IndexMut<(usize, usize, usize, usize)> for Tensor4<T> {
    #[inline]
    fn index_mut(&mut self, (i0, i1, i2, i3): (usize, usize, usize, usize)) -> &mut T {
        let off = self.layout.offset(self.shape, i0, i1, i2, i3);
        &mut self.data[off]
    }
}

impl<T: Scalar> fmt::Debug for Tensor4<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor4{:?}@{:?}", self.shape, self.layout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_indexing() {
        let s = Shape4::new(2, 3, 4, 5);
        let mut t = Tensor4::<f64>::zeros(s, Layout::Nchw);
        assert_eq!(t.len(), 120);
        assert_eq!(t.get(1, 2, 3, 4), 0.0);
        t.set(1, 2, 3, 4, 7.5);
        assert_eq!(t[(1, 2, 3, 4)], 7.5);
    }

    #[test]
    fn from_fn_matches_closure() {
        let s = Shape4::new(2, 2, 2, 2);
        let t = Tensor4::<f64>::from_fn(s, Layout::Nchw, |a, b, c, d| {
            (a * 1000 + b * 100 + c * 10 + d) as f64
        });
        assert_eq!(t.get(1, 0, 1, 0), 1010.0);
    }

    #[test]
    fn layout_round_trip_preserves_content() {
        let s = Shape4::new(8, 3, 5, 6);
        let t = Tensor4::<f64>::from_fn(s, Layout::Nchw, |a, b, c, d| {
            (a * 7919 + b * 104729 + c * 13 + d) as f64
        });
        for lay in [Layout::ImageAware, Layout::BatchAware] {
            let u = t.to_layout(lay);
            let back = u.to_layout(Layout::Nchw);
            assert_eq!(back.max_abs_diff(&t), 0.0, "layout {lay:?}");
        }
    }

    #[test]
    fn max_abs_diff_detects_change() {
        let s = Shape4::new(1, 1, 2, 2);
        let a = Tensor4::<f64>::full(s, Layout::Nchw, 1.0);
        let mut b = a.clone();
        b.set(0, 0, 1, 1, 1.5);
        assert!((a.max_abs_diff(&b) - 0.5).abs() < 1e-12);
        assert!(!a.approx_eq(&b, 0.25));
        assert!(a.approx_eq(&b, 0.75));
    }

    #[test]
    fn f32_scalar_ops() {
        let x: f32 = Scalar::from_f64(2.0);
        assert_eq!(x.to_f64(), 2.0);
        assert_eq!(f32::BYTES, 4);
        assert_eq!((-x).abs(), 2.0);
    }

    #[test]
    fn sum_and_zero() {
        let s = Shape4::new(2, 2, 2, 2);
        let mut t = Tensor4::<f64>::full(s, Layout::BatchAware, 2.0);
        assert_eq!(t.sum_f64(), 32.0);
        t.zero();
        assert_eq!(t.sum_f64(), 0.0);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_length_checked() {
        let _ = Tensor4::<f64>::from_vec(Shape4::new(2, 2, 2, 2), vec![0.0; 3]);
    }
}
