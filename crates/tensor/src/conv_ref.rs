//! Naive reference convolution — Listing 1 of the paper.
//!
//! The seven-loop direct form is the semantic specification every optimized
//! plan must match bit-for-bit (the optimized plans reorder the same f64
//! additions per output element in the same `(ni, kr, kc)` order, so results
//! are expected to be *exactly* equal, not merely close; the test suites
//! rely on this).
//!
//! Also provides the reference backward passes (gradients w.r.t. input and
//! filters) used as the training-path oracle.

use crate::shape::ConvShape;
use crate::tensor::{Scalar, Tensor4};

/// Forward convolution: `out[b][no][ro][co] += Σ in[b][ni][ro+kr][co+kc] * w[no][ni][kr][kc]`.
///
/// Allocates the output tensor in the input's layout family (`Nchw`).
pub fn conv2d_ref<T: Scalar>(
    shape: ConvShape,
    input: &Tensor4<T>,
    filter: &Tensor4<T>,
) -> Tensor4<T> {
    let mut out = Tensor4::zeros(shape.output_shape(), crate::Layout::Nchw);
    conv2d_ref_into(shape, input, filter, &mut out);
    out
}

/// Forward convolution accumulating into an existing (pre-zeroed) output.
///
/// # Panics
/// If tensor shapes disagree with `shape`.
pub fn conv2d_ref_into<T: Scalar>(
    shape: ConvShape,
    input: &Tensor4<T>,
    filter: &Tensor4<T>,
    out: &mut Tensor4<T>,
) {
    assert_eq!(input.shape(), shape.input_shape(), "input shape");
    assert_eq!(filter.shape(), shape.filter_shape(), "filter shape");
    assert_eq!(out.shape(), shape.output_shape(), "output shape");
    for b in 0..shape.batch {
        for no in 0..shape.no {
            for ro in 0..shape.ro {
                for co in 0..shape.co {
                    let mut acc = out.get(b, no, ro, co);
                    for ni in 0..shape.ni {
                        for kr in 0..shape.kr {
                            for kc in 0..shape.kc {
                                acc +=
                                    input.get(b, ni, ro + kr, co + kc) * filter.get(no, ni, kr, kc);
                            }
                        }
                    }
                    out.set(b, no, ro, co, acc);
                }
            }
        }
    }
}

/// Reference gradient w.r.t. the input ("backward data").
///
/// `d_in[b][ni][ri][ci] = Σ_{no,kr,kc : 0<=ri-kr<Ro, 0<=ci-kc<Co}
///     d_out[b][no][ri-kr][ci-kc] * w[no][ni][kr][kc]`
pub fn conv2d_bwd_data_ref<T: Scalar>(
    shape: ConvShape,
    d_out: &Tensor4<T>,
    filter: &Tensor4<T>,
) -> Tensor4<T> {
    assert_eq!(d_out.shape(), shape.output_shape(), "d_out shape");
    assert_eq!(filter.shape(), shape.filter_shape(), "filter shape");
    let mut d_in = Tensor4::zeros(shape.input_shape(), crate::Layout::Nchw);
    for b in 0..shape.batch {
        for no in 0..shape.no {
            for ro in 0..shape.ro {
                for co in 0..shape.co {
                    let g = d_out.get(b, no, ro, co);
                    for ni in 0..shape.ni {
                        for kr in 0..shape.kr {
                            for kc in 0..shape.kc {
                                let cur = d_in.get(b, ni, ro + kr, co + kc);
                                d_in.set(
                                    b,
                                    ni,
                                    ro + kr,
                                    co + kc,
                                    cur + g * filter.get(no, ni, kr, kc),
                                );
                            }
                        }
                    }
                }
            }
        }
    }
    d_in
}

/// Reference gradient w.r.t. the filters ("backward filter").
///
/// `d_w[no][ni][kr][kc] = Σ_{b,ro,co} in[b][ni][ro+kr][co+kc] * d_out[b][no][ro][co]`
pub fn conv2d_bwd_filter_ref<T: Scalar>(
    shape: ConvShape,
    input: &Tensor4<T>,
    d_out: &Tensor4<T>,
) -> Tensor4<T> {
    assert_eq!(input.shape(), shape.input_shape(), "input shape");
    assert_eq!(d_out.shape(), shape.output_shape(), "d_out shape");
    let mut d_w = Tensor4::zeros(shape.filter_shape(), crate::Layout::Nchw);
    for no in 0..shape.no {
        for ni in 0..shape.ni {
            for kr in 0..shape.kr {
                for kc in 0..shape.kc {
                    let mut acc = T::ZERO;
                    for b in 0..shape.batch {
                        for ro in 0..shape.ro {
                            for co in 0..shape.co {
                                acc +=
                                    input.get(b, ni, ro + kr, co + kc) * d_out.get(b, no, ro, co);
                            }
                        }
                    }
                    d_w.set(no, ni, kr, kc, acc);
                }
            }
        }
    }
    d_w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::seeded_tensor;
    use crate::Layout;

    #[test]
    fn identity_filter_copies_input() {
        // 1x1 filter of value 1 with Ni=No=1 is the identity map.
        let shape = ConvShape::new(2, 1, 1, 4, 4, 1, 1);
        let input = seeded_tensor(shape.input_shape(), Layout::Nchw, 1);
        let filter = Tensor4::full(shape.filter_shape(), Layout::Nchw, 1.0);
        let out = conv2d_ref(shape, &input, &filter);
        assert_eq!(out.max_abs_diff(&input), 0.0);
    }

    #[test]
    fn box_filter_sums_window() {
        let shape = ConvShape::new(1, 1, 1, 2, 2, 2, 2);
        let input = Tensor4::from_fn(shape.input_shape(), Layout::Nchw, |_, _, r, c| {
            (r * 3 + c) as f64
        });
        let filter = Tensor4::full(shape.filter_shape(), Layout::Nchw, 1.0);
        let out = conv2d_ref(shape, &input, &filter);
        // window sums of [[0,1,2],[3,4,5],[6,7,8]]
        assert_eq!(out.get(0, 0, 0, 0), 0.0 + 1.0 + 3.0 + 4.0);
        assert_eq!(out.get(0, 0, 1, 1), 4.0 + 5.0 + 7.0 + 8.0);
    }

    #[test]
    fn multi_channel_accumulates_over_ni() {
        let shape = ConvShape::new(1, 3, 1, 1, 1, 1, 1);
        let input = Tensor4::from_fn(shape.input_shape(), Layout::Nchw, |_, ni, _, _| {
            (ni + 1) as f64
        });
        let filter = Tensor4::full(shape.filter_shape(), Layout::Nchw, 2.0);
        let out = conv2d_ref(shape, &input, &filter);
        assert_eq!(out.get(0, 0, 0, 0), 2.0 * (1.0 + 2.0 + 3.0));
    }

    #[test]
    fn bwd_data_matches_finite_difference() {
        let shape = ConvShape::new(1, 2, 2, 3, 3, 2, 2);
        let input = seeded_tensor(shape.input_shape(), Layout::Nchw, 7);
        let filter = seeded_tensor(shape.filter_shape(), Layout::Nchw, 8);
        // Loss = sum(out); then dL/dx = bwd_data with d_out = 1.
        let d_out = Tensor4::full(shape.output_shape(), Layout::Nchw, 1.0);
        let d_in = conv2d_bwd_data_ref(shape, &d_out, &filter);

        let eps = 1e-5;
        let base = conv2d_ref(shape, &input, &filter).sum_f64();
        for (i0, i1, i2, i3) in [(0, 0, 0, 0), (0, 1, 2, 2), (0, 0, 3, 3)] {
            let mut bumped = input.clone();
            bumped.set(i0, i1, i2, i3, bumped.get(i0, i1, i2, i3) + eps);
            let fd = (conv2d_ref(shape, &bumped, &filter).sum_f64() - base) / eps;
            assert!(
                (fd - d_in.get(i0, i1, i2, i3)).abs() < 1e-5,
                "fd {fd} vs analytic {}",
                d_in.get(i0, i1, i2, i3)
            );
        }
    }

    #[test]
    fn bwd_filter_matches_finite_difference() {
        let shape = ConvShape::new(2, 2, 2, 3, 3, 2, 2);
        let input = seeded_tensor(shape.input_shape(), Layout::Nchw, 9);
        let filter = seeded_tensor(shape.filter_shape(), Layout::Nchw, 10);
        let d_out = Tensor4::full(shape.output_shape(), Layout::Nchw, 1.0);
        let d_w = conv2d_bwd_filter_ref(shape, &input, &d_out);

        let eps = 1e-5;
        let base = conv2d_ref(shape, &input, &filter).sum_f64();
        for (i0, i1, i2, i3) in [(0, 0, 0, 0), (1, 1, 1, 1), (1, 0, 0, 1)] {
            let mut bumped = filter.clone();
            bumped.set(i0, i1, i2, i3, bumped.get(i0, i1, i2, i3) + eps);
            let fd = (conv2d_ref(shape, &input, &bumped).sum_f64() - base) / eps;
            assert!(
                (fd - d_w.get(i0, i1, i2, i3)).abs() < 1e-4,
                "fd {fd} vs analytic {}",
                d_w.get(i0, i1, i2, i3)
            );
        }
    }
}
