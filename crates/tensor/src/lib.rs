//! Dense tensors and the swDNN data layouts.
//!
//! The swDNN paper (IPDPS'17) stores 4-D convolution operands in layouts
//! chosen so that (a) the innermost dimension is a 4-wide vector lane that
//! maps onto the SW26010's 256-bit SIMD registers, and (b) the leading
//! contiguous block is large and 128-byte aligned so DMA between main memory
//! and the CPE scratchpads (LDM) runs near peak bandwidth (paper §V-C).
//!
//! This crate provides:
//!
//! * [`Shape4`] / [`ConvShape`] — dimension bookkeeping for convolutions,
//! * [`Tensor4`] — an owned dense 4-D tensor over [`Scalar`] elements,
//! * [`Layout`] — the three layouts used throughout the reproduction
//!   (`Nchw`, `ImageAware`, `BatchAware`) and transforms between them,
//! * [`conv_ref`] — the naive 7-loop reference convolution of Listing 1,
//!   used as the correctness oracle for every optimized plan.

pub mod conv_general;
pub mod conv_ref;
pub mod init;
pub mod layout;
pub mod shape;
pub mod tensor;

pub use conv_general::{
    conv2d_general, conv2d_general_bwd_data, conv2d_general_bwd_filter, general_flops, ConvGeometry,
};
pub use conv_ref::{conv2d_bwd_data_ref, conv2d_bwd_filter_ref, conv2d_ref, conv2d_ref_into};
pub use layout::Layout;
pub use shape::{ConvShape, Shape4};
pub use tensor::{Scalar, Tensor4};

/// Vector width of the SW26010 SIMD unit in double precision
/// (256-bit registers / 64-bit lanes).
pub const VECTOR_WIDTH: usize = 4;
