//! Dimension bookkeeping for 4-D tensors and convolutional layers.

use std::fmt;

/// Shape of a dense 4-D tensor, in logical `(d0, d1, d2, d3)` order.
///
/// For activations the logical order is `(batch, channel, row, col)`;
/// for filters it is `(out_channel, in_channel, kr, kc)`. Physical element
/// order is a property of [`crate::Layout`], not of the shape.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape4 {
    pub d0: usize,
    pub d1: usize,
    pub d2: usize,
    pub d3: usize,
}

impl Shape4 {
    pub const fn new(d0: usize, d1: usize, d2: usize, d3: usize) -> Self {
        Self { d0, d1, d2, d3 }
    }

    /// Total number of elements.
    pub const fn len(&self) -> usize {
        self.d0 * self.d1 * self.d2 * self.d3
    }

    pub const fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row-major linear index of `(i0, i1, i2, i3)`.
    #[inline]
    pub fn index(&self, i0: usize, i1: usize, i2: usize, i3: usize) -> usize {
        debug_assert!(i0 < self.d0 && i1 < self.d1 && i2 < self.d2 && i3 < self.d3);
        ((i0 * self.d1 + i1) * self.d2 + i2) * self.d3 + i3
    }

    pub const fn as_tuple(&self) -> (usize, usize, usize, usize) {
        (self.d0, self.d1, self.d2, self.d3)
    }
}

impl fmt::Debug for Shape4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}x{}x{}x{}]", self.d0, self.d1, self.d2, self.d3)
    }
}

impl From<(usize, usize, usize, usize)> for Shape4 {
    fn from(t: (usize, usize, usize, usize)) -> Self {
        Shape4::new(t.0, t.1, t.2, t.3)
    }
}

/// Parameters of a convolutional layer, Table I of the paper.
///
/// The paper's "valid" convolution relates input and output extents as
/// `Ri = Ro + Kr - 1` and `Ci = Co + Kc - 1`; no padding or striding is
/// modelled (the paper's evaluation uses none).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ConvShape {
    /// Batch size `B`.
    pub batch: usize,
    /// Number of input feature maps `Ni`.
    pub ni: usize,
    /// Number of output feature maps `No`.
    pub no: usize,
    /// Output image height `Ro`.
    pub ro: usize,
    /// Output image width `Co`.
    pub co: usize,
    /// Filter height `Kr`.
    pub kr: usize,
    /// Filter width `Kc`.
    pub kc: usize,
}

impl ConvShape {
    pub const fn new(
        batch: usize,
        ni: usize,
        no: usize,
        ro: usize,
        co: usize,
        kr: usize,
        kc: usize,
    ) -> Self {
        Self {
            batch,
            ni,
            no,
            ro,
            co,
            kr,
            kc,
        }
    }

    /// Input image height `Ri = Ro + Kr - 1`.
    pub const fn ri(&self) -> usize {
        self.ro + self.kr - 1
    }

    /// Input image width `Ci = Co + Kc - 1`.
    pub const fn ci(&self) -> usize {
        self.co + self.kc - 1
    }

    /// Shape of the input activation tensor `(B, Ni, Ri, Ci)`.
    pub const fn input_shape(&self) -> Shape4 {
        Shape4::new(self.batch, self.ni, self.ri(), self.ci())
    }

    /// Shape of the filter tensor `(No, Ni, Kr, Kc)`.
    pub const fn filter_shape(&self) -> Shape4 {
        Shape4::new(self.no, self.ni, self.kr, self.kc)
    }

    /// Shape of the output activation tensor `(B, No, Ro, Co)`.
    pub const fn output_shape(&self) -> Shape4 {
        Shape4::new(self.batch, self.no, self.ro, self.co)
    }

    /// Total floating-point operations of one forward pass.
    ///
    /// Each output element accumulates `Ni*Kr*Kc` multiply-adds; following
    /// the paper (and cuDNN) each multiply-add counts as 2 flops.
    pub const fn flops(&self) -> u64 {
        2 * (self.batch * self.no * self.ro * self.co * self.ni * self.kr * self.kc) as u64
    }

    /// Bytes touched in main memory for one pass with no reuse
    /// (input + filters + output), double precision.
    pub const fn min_bytes_f64(&self) -> u64 {
        8 * (self.input_shape().len() + self.filter_shape().len() + self.output_shape().len())
            as u64
    }

    /// `true` when all extents are positive and the output fits the input.
    pub const fn is_valid(&self) -> bool {
        self.batch > 0
            && self.ni > 0
            && self.no > 0
            && self.ro > 0
            && self.co > 0
            && self.kr > 0
            && self.kc > 0
    }
}

impl fmt::Display for ConvShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "B={} Ni={} No={} out={}x{} K={}x{}",
            self.batch, self.ni, self.no, self.ro, self.co, self.kr, self.kc
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_len_and_index() {
        let s = Shape4::new(2, 3, 4, 5);
        assert_eq!(s.len(), 120);
        assert_eq!(s.index(0, 0, 0, 0), 0);
        assert_eq!(s.index(1, 2, 3, 4), 119);
        assert_eq!(s.index(0, 1, 0, 0), 20);
    }

    #[test]
    fn shape_from_tuple_round_trips() {
        let s: Shape4 = (7, 1, 2, 9).into();
        assert_eq!(s.as_tuple(), (7, 1, 2, 9));
    }

    #[test]
    fn conv_shape_extents() {
        // The paper's canonical config: B=128, 64x64 output, 3x3 filters.
        let c = ConvShape::new(128, 64, 64, 64, 64, 3, 3);
        assert_eq!(c.ri(), 66);
        assert_eq!(c.ci(), 66);
        assert_eq!(c.input_shape(), Shape4::new(128, 64, 66, 66));
        assert_eq!(c.filter_shape(), Shape4::new(64, 64, 3, 3));
        assert_eq!(c.output_shape(), Shape4::new(128, 64, 64, 64));
    }

    #[test]
    fn conv_shape_flops_matches_hand_count() {
        let c = ConvShape::new(2, 3, 5, 4, 4, 3, 3);
        // 2*B*No*Ro*Co*Ni*Kr*Kc
        assert_eq!(c.flops(), 2 * 2 * 5 * 4 * 4 * 3 * 3 * 3);
    }

    #[test]
    fn conv_shape_validity() {
        assert!(ConvShape::new(1, 1, 1, 1, 1, 1, 1).is_valid());
        assert!(!ConvShape::new(0, 1, 1, 1, 1, 1, 1).is_valid());
        assert!(!ConvShape::new(1, 1, 1, 1, 1, 0, 1).is_valid());
    }

    #[test]
    fn min_bytes_counts_all_three_operands() {
        let c = ConvShape::new(1, 1, 1, 1, 1, 1, 1);
        // input 1x1x1x1, filter 1x1x1x1, output 1x1x1x1 => 3 doubles.
        assert_eq!(c.min_bytes_f64(), 24);
    }
}
