//! The closed-loop serving engine: submit → queue → batch → sharded
//! dispatch → completion accounting, all under one deterministic logical
//! clock of simulated microseconds.
//!
//! Per-request latency is `completion − arrival` in simulated time; queue
//! depth, batch fill, rejections, and cache hit-rate feed the
//! observability layer as counters, and every dispatched batch emits a
//! Chrome-trace span (category `"serve"`) when tracing is enabled.

use super::batcher::{Batch, BatchPolicy, MicroBatcher, QueuedRequest};
use super::dispatch::ShardedDispatcher;
use super::plan_cache::{CacheStats, PlanCache};
use crate::error::SwdnnError;
use serde_json::Value;
use sw_obs::{Counter, Recorder};
use sw_perfmodel::{ChipSpec, PlanKind};
use sw_tensor::ConvShape;

/// Engine construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    pub chip: ChipSpec,
    /// Core groups each batch shards across.
    pub cgs: usize,
    pub policy: BatchPolicy,
    /// Bounded queue depth; submissions beyond it are rejected with
    /// [`SwdnnError::Overloaded`].
    pub queue_limit: usize,
    /// Record Chrome-trace spans per dispatched batch.
    pub trace: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let chip = ChipSpec::sw26010();
        Self {
            chip,
            cgs: chip.core_groups,
            policy: BatchPolicy::default(),
            queue_limit: 64,
            trace: false,
        }
    }
}

/// One finished request.
#[derive(Clone, Copy, Debug)]
pub struct Completion {
    pub id: u64,
    pub shape: ConvShape,
    pub arrival_us: u64,
    pub completion_us: u64,
}

impl Completion {
    pub fn latency_us(&self) -> u64 {
        self.completion_us - self.arrival_us
    }
}

/// Monotonic serving counters (all relaxed-atomic, snapshot-safe at any
/// quiescent point).
#[derive(Debug, Default)]
pub struct ServeCounters {
    pub submitted: Counter,
    pub rejected: Counter,
    pub served: Counter,
    pub batches: Counter,
    /// Sum of batch fills; fill ratio = batch_fill_sum / (batches · cap).
    pub batch_fill_sum: Counter,
    /// Busy chip time accumulated over dispatched batches, µs.
    pub busy_us: Counter,
    /// Busy chip time in simulated cycles.
    pub busy_cycles: Counter,
    /// Total flops dispatched.
    pub flops: Counter,
}

/// End-of-run summary for benches and snapshots.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeSummary {
    pub served: u64,
    pub rejected: u64,
    pub batches: u64,
    /// Mean batch fill as a fraction of the cap.
    pub batch_fill: f64,
    pub p50_latency_us: u64,
    pub p99_latency_us: u64,
    /// Chip-level Gflops over busy time.
    pub gflops_chip: f64,
    pub plan_cache_hit_rate: f64,
}

/// The deterministic batch-serving engine.
pub struct ServeEngine {
    config: ServeConfig,
    dispatcher: ShardedDispatcher,
    batcher: MicroBatcher,
    cache: PlanCache,
    recorder: Recorder,
    /// Logical clock, µs of simulated time.
    clock_us: u64,
    next_id: u64,
    pub counters: ServeCounters,
    completions: Vec<Completion>,
}

impl ServeEngine {
    pub fn new(config: ServeConfig) -> Result<Self, SwdnnError> {
        Ok(Self {
            dispatcher: ShardedDispatcher::new(config.chip, config.cgs)?,
            batcher: MicroBatcher::new(config.policy, config.queue_limit),
            cache: PlanCache::new(),
            recorder: if config.trace {
                Recorder::enabled()
            } else {
                Recorder::disabled()
            },
            config,
            clock_us: 0,
            next_id: 0,
            counters: ServeCounters::default(),
            completions: Vec::new(),
        })
    }

    /// Run every dispatched batch (and the warmup simulations behind the
    /// plan cache) on an explicit [`sw_runtime::ExecutionContext`] instead
    /// of the process-wide pool.
    pub fn on_runtime(mut self, rt: &'static sw_runtime::ExecutionContext) -> Self {
        self.dispatcher = self.dispatcher.on_runtime(rt);
        self
    }

    pub fn now_us(&self) -> u64 {
        self.clock_us
    }

    pub fn queue_depth(&self) -> usize {
        self.batcher.len()
    }

    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Advance the logical clock (idle time between arrivals).
    pub fn advance_us(&mut self, us: u64) {
        self.clock_us += us;
    }

    /// Submit one inference request at the current clock. Returns its id,
    /// or [`SwdnnError::Overloaded`] when the bounded queue is full — the
    /// request is dropped, nothing grows.
    pub fn submit(&mut self, shape: ConvShape) -> Result<u64, SwdnnError> {
        self.counters.submitted.inc();
        let id = self.next_id;
        let res = self.batcher.push(QueuedRequest {
            id,
            shape,
            arrival_us: self.clock_us,
        });
        match res {
            Ok(()) => {
                self.next_id += 1;
                Ok(id)
            }
            Err(e) => {
                self.counters.rejected.inc();
                Err(e)
            }
        }
    }

    /// Dispatch at most one batch if a trigger fires at the current clock.
    /// Returns the number of requests served (0 = nothing ready).
    pub fn poll(&mut self) -> Result<usize, SwdnnError> {
        let Some(batch) = self.batcher.pop_batch(self.clock_us) else {
            return Ok(0);
        };
        self.execute(batch)
    }

    /// Run the queue dry: fire deadline releases by jumping the clock to
    /// the next deadline whenever no trigger is ready, then flush leftovers.
    pub fn drain(&mut self) -> Result<usize, SwdnnError> {
        let mut served = 0;
        while !self.batcher.is_empty() {
            served += match self.batcher.pop_batch(self.clock_us) {
                Some(batch) => self.execute(batch)?,
                None => match self.batcher.next_deadline_us() {
                    Some(deadline) if deadline > self.clock_us => {
                        self.clock_us = deadline;
                        0
                    }
                    _ => match self.batcher.flush() {
                        Some(batch) => self.execute(batch)?,
                        None => 0,
                    },
                },
            };
        }
        Ok(served)
    }

    fn execute(&mut self, batch: Batch) -> Result<usize, SwdnnError> {
        let n = batch.requests.len();
        let timing = self
            .dispatcher
            .time_batch(&self.cache, &batch.shape, n, None::<PlanKind>)?;
        let start_us = self.clock_us;
        self.clock_us += timing.wall_us;
        self.counters.batches.inc();
        self.counters.batch_fill_sum.add(n as u64);
        self.counters.served.add(n as u64);
        self.counters.busy_us.add(timing.wall_us);
        self.counters.busy_cycles.add(timing.wall_cycles);
        self.counters.flops.add(timing.total_flops);
        for r in &batch.requests {
            self.completions.push(Completion {
                id: r.id,
                shape: r.shape,
                arrival_us: r.arrival_us,
                completion_us: self.clock_us,
            });
        }
        self.recorder.span_cat(
            &format!("batch {}", batch.shape),
            "serve",
            0,
            0,
            start_us as f64,
            timing.wall_us as f64,
            vec![
                ("requests".into(), Value::from(n as u64)),
                (
                    "trigger".into(),
                    Value::from(format!("{:?}", batch.trigger)),
                ),
                ("queue_depth".into(), Value::from(self.batcher.len() as u64)),
                ("wall_cycles".into(), Value::from(timing.wall_cycles)),
            ],
        );
        Ok(n)
    }

    /// All completions so far, in completion order.
    pub fn completions(&self) -> &[Completion] {
        &self.completions
    }

    /// Reset measurement state (completions + counters + cache counters)
    /// after a warmup phase, keeping caches and the clock hot.
    pub fn reset_measurements(&mut self) {
        self.completions.clear();
        self.counters = ServeCounters::default();
        self.cache.reset_counters();
    }

    /// Take the recorded Chrome trace (empty when tracing is off).
    pub fn take_trace(&mut self) -> sw_obs::ChromeTrace {
        self.recorder.take()
    }

    /// Order-statistic latency percentile over completions (0–100).
    pub fn latency_percentile_us(&self, pct: f64) -> u64 {
        let mut lats: Vec<u64> = self.completions.iter().map(|c| c.latency_us()).collect();
        if lats.is_empty() {
            return 0;
        }
        lats.sort_unstable();
        let rank = ((pct / 100.0) * (lats.len() - 1) as f64).round() as usize;
        lats[rank.min(lats.len() - 1)]
    }

    pub fn summary(&self) -> ServeSummary {
        let batches = self.counters.batches.get();
        let busy_secs = self.counters.busy_us.get() as f64 / 1e6;
        ServeSummary {
            served: self.counters.served.get(),
            rejected: self.counters.rejected.get(),
            batches,
            batch_fill: if batches == 0 {
                0.0
            } else {
                self.counters.batch_fill_sum.get() as f64
                    / (batches * self.config.policy.max_batch as u64) as f64
            },
            p50_latency_us: self.latency_percentile_us(50.0),
            p99_latency_us: self.latency_percentile_us(99.0),
            gflops_chip: if busy_secs > 0.0 {
                self.counters.flops.get() as f64 / busy_secs / 1e9
            } else {
                0.0
            },
            plan_cache_hit_rate: self.cache.stats().plan_hit_rate(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> ConvShape {
        // ro = 8 splits over 4 CGs.
        ConvShape::new(16, 8, 8, 8, 8, 3, 3)
    }

    fn engine(max_batch: usize, queue_limit: usize) -> ServeEngine {
        ServeEngine::new(ServeConfig {
            policy: BatchPolicy {
                max_batch,
                deadline_us: 1_000,
            },
            queue_limit,
            trace: true,
            ..ServeConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn closed_loop_serves_everything_and_caches_plans() {
        let mut e = engine(4, 64);
        for _ in 0..16 {
            e.submit(shape()).unwrap();
        }
        let served = e.drain().unwrap();
        assert_eq!(served, 16);
        let s = e.summary();
        assert_eq!(s.served, 16);
        assert_eq!(s.batches, 4, "cap releases of 4");
        assert_eq!(s.batch_fill, 1.0);
        assert!(s.p99_latency_us >= s.p50_latency_us);
        assert!(s.gflops_chip > 0.0);
        // One slice-shape miss, every later batch hits.
        let cs = e.cache_stats();
        assert_eq!(cs.plan_misses, 1);
        assert_eq!(cs.plan_hits, 3);
    }

    #[test]
    fn overload_rejects_gracefully_and_recovers() {
        let mut e = engine(4, 8);
        let mut rejected = 0;
        for _ in 0..80 {
            match e.submit(shape()) {
                Ok(_) => {}
                Err(SwdnnError::Overloaded { .. }) => rejected += 1,
                Err(e) => panic!("only Overloaded expected, got {e}"),
            }
        }
        assert_eq!(rejected, 72, "queue of 8 sheds the 10x overload");
        assert_eq!(e.queue_depth(), 8);
        e.drain().unwrap();
        assert_eq!(e.queue_depth(), 0);
        // After draining, submissions succeed again.
        e.submit(shape()).unwrap();
        assert_eq!(e.summary().rejected, 72);
    }

    #[test]
    fn deadline_fires_for_a_lone_request() {
        let mut e = engine(8, 64);
        e.submit(shape()).unwrap();
        assert_eq!(e.poll().unwrap(), 0, "no trigger yet");
        e.advance_us(1_000);
        assert_eq!(e.poll().unwrap(), 1, "deadline release");
        let c = e.completions()[0];
        assert!(c.latency_us() >= 1_000, "waited out the deadline");
    }

    #[test]
    fn trace_records_one_span_per_batch() {
        let mut e = engine(2, 64);
        for _ in 0..4 {
            e.submit(shape()).unwrap();
        }
        e.drain().unwrap();
        let trace = e.take_trace();
        let spans: Vec<_> = trace.events.iter().filter(|ev| ev.cat == "serve").collect();
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().all(|s| s.ph == 'X' && s.dur_us > 0.0));
    }

    #[test]
    fn reset_measurements_keeps_the_cache_hot() {
        let mut e = engine(4, 64);
        for _ in 0..8 {
            e.submit(shape()).unwrap();
        }
        e.drain().unwrap();
        e.reset_measurements();
        for _ in 0..8 {
            e.submit(shape()).unwrap();
        }
        e.drain().unwrap();
        let cs = e.cache_stats();
        assert_eq!(cs.plan_misses, 0, "warmup already populated the cache");
        assert_eq!(cs.plan_hit_rate(), 1.0);
        assert_eq!(e.summary().served, 8, "only the measured window counts");
    }
}
