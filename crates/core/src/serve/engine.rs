//! The closed-loop serving engine: submit → queue → batch → sharded
//! dispatch → completion accounting, all under one deterministic logical
//! clock of simulated microseconds.
//!
//! Per-request latency is `completion − arrival` in simulated time; queue
//! depth, batch fill, rejections, and cache hit-rate feed the
//! observability layer as counters, and every dispatched batch emits a
//! Chrome-trace span (category `"serve"`) when tracing is enabled.
//!
//! ## Fault-aware dispatch
//!
//! With a [`ChaosConfig`] the engine serves *through* injected hardware
//! faults instead of assuming a clean chip:
//!
//! * every accounted batch samples the seeded [`sw_sim::FaultPlan`]
//!   decision streams per CG ([`super::dispatch::sample_slice_faults`]),
//!   charging DMA backoff/stall cycles into the batch's wall time;
//! * per-CG circuit breakers ([`super::health::HealthBoard`]) trip failing
//!   CGs into cooldown; the batch is re-dispatched (reseeded, its wasted
//!   wall time charged) on whatever subset of CGs stays healthy, at the
//!   widest row split that still divides the shape
//!   ([`super::dispatch::effective_cgs`]);
//! * when no CG is routable (or the re-dispatch budget is spent) the batch
//!   walks the `resilient.rs` fallback chain: the degraded 4×4 mesh, then
//!   the host reference — which touches no mesh and never fails, so an
//!   admitted request always completes ([`ServePath`] records which path
//!   served it);
//! * requests carry a [`Priority`] tier, tenant tag, and optional dispatch
//!   deadline; admission control and deadline timeouts hit low-priority
//!   traffic first, and every shed/evicted/timed-out request is recorded
//!   in a [`DropRecord`] — accounted separately from completion latency,
//!   never silently lost.
//!
//! Fault sampling, routing, and breaker transitions are pure functions of
//! the fault seed, the batch sequence number, and the logical clock, so a
//! chaos run replays number-for-number at any worker-pool thread count.

use super::batcher::{Batch, BatchPolicy, MicroBatcher, Priority, QueuedRequest};
use super::dispatch::{effective_cgs, sample_slice_faults, BatchTiming, ShardedDispatcher};
use super::health::{BreakerPolicy, CgHealthStats, HealthBoard, Route};
use super::plan_cache::{CacheStats, PlanCache};
use crate::error::SwdnnError;
use crate::plans::{ConvPlan, ReferencePlan};
use crate::resilient::ResilientExecutor;
use serde_json::Value;
use sw_obs::{Counter, Recorder, TagCounters};
use sw_perfmodel::{ChipSpec, PlanKind};
use sw_sim::chip::LAUNCH_OVERHEAD_CYCLES;
use sw_sim::FaultPlan;
use sw_tensor::ConvShape;

/// Fault-injection configuration for the serving path.
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Seeded fault rates injected into every CG's accounted dispatch.
    pub fault: FaultPlan,
    /// The CG that owns `fault.dead_mask`: dead CPEs are a per-CG failure
    /// in serving (the other CGs keep their meshes), so the mask is pinned
    /// to one core group instead of killing all four.
    pub dead_cg: usize,
    /// Per-CG circuit-breaker tuning.
    pub breaker: BreakerPolicy,
    /// Whole-batch re-dispatches (reseeded, wasted time charged) after a
    /// slice failure before the batch takes the fallback chain.
    pub dispatch_retries: u32,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            fault: FaultPlan::none(0),
            dead_cg: 0,
            breaker: BreakerPolicy::default(),
            dispatch_retries: 2,
        }
    }
}

/// Engine construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    pub chip: ChipSpec,
    /// Core groups each batch shards across.
    pub cgs: usize,
    pub policy: BatchPolicy,
    /// Bounded queue depth; submissions beyond it are rejected with
    /// [`SwdnnError::Overloaded`].
    pub queue_limit: usize,
    /// Record Chrome-trace spans per dispatched batch.
    pub trace: bool,
    /// Fault injection + breaker policy; `None` serves on a clean chip
    /// with byte-identical behavior to the pre-chaos engine.
    pub chaos: Option<ChaosConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let chip = ChipSpec::sw26010();
        Self {
            chip,
            cgs: chip.core_groups,
            policy: BatchPolicy::default(),
            queue_limit: 64,
            trace: false,
            chaos: None,
        }
    }
}

/// Per-request class: priority tier, tenant tag, and optional dispatch
/// deadline relative to arrival. The default (high priority, tenant 0, no
/// deadline) is the legacy closed-loop traffic class.
#[derive(Clone, Copy, Debug, Default)]
pub struct RequestClass {
    pub priority: Priority,
    pub tenant: u32,
    /// Must be dispatched within this many logical µs of arrival; `None`
    /// never times out.
    pub deadline_us: Option<u64>,
}

/// Which execution path served a completed request's batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServePath {
    /// Row-sharded across `cgs` healthy core groups (the normal path; a
    /// value below the configured width means the batch was rerouted
    /// around tripped CGs).
    Sharded { cgs: usize },
    /// All CGs unavailable: re-planned on the degraded 4×4 mesh.
    Degraded,
    /// Even the degraded mesh failed: host-reference execution on the MPE
    /// (never fails).
    HostReference,
}

impl ServePath {
    pub fn name(&self) -> &'static str {
        match self {
            ServePath::Sharded { .. } => "sharded",
            ServePath::Degraded => "degraded",
            ServePath::HostReference => "host_reference",
        }
    }
}

/// One finished request.
#[derive(Clone, Copy, Debug)]
pub struct Completion {
    pub id: u64,
    pub shape: ConvShape,
    pub arrival_us: u64,
    pub completion_us: u64,
    pub priority: Priority,
    pub tenant: u32,
    pub path: ServePath,
}

impl Completion {
    pub fn latency_us(&self) -> u64 {
        self.completion_us - self.arrival_us
    }
}

/// Why a request was dropped instead of served.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropKind {
    /// Rejected at admission with [`SwdnnError::Overloaded`] (the caller
    /// got the structured error; the engine records the event).
    ShedAtAdmission,
    /// Accepted earlier, then displaced by a higher-priority admission.
    Evicted,
    /// Still queued strictly past its dispatch deadline.
    DeadlineExceeded,
}

impl DropKind {
    pub fn name(&self) -> &'static str {
        match self {
            DropKind::ShedAtAdmission => "shed",
            DropKind::Evicted => "evicted",
            DropKind::DeadlineExceeded => "timed_out",
        }
    }
}

/// One dropped request. Drops live in their own histogram
/// ([`ServeEngine::shed_wait_percentile_us`]): they are *never* folded
/// into — or silently omitted from — the completed-request latency
/// percentiles.
#[derive(Clone, Copy, Debug)]
pub struct DropRecord {
    /// `None` for admission-time sheds (no id was ever assigned).
    pub id: Option<u64>,
    pub shape: ConvShape,
    pub priority: Priority,
    pub tenant: u32,
    pub arrival_us: u64,
    pub drop_us: u64,
    pub kind: DropKind,
}

impl DropRecord {
    /// How long the request waited before being dropped.
    pub fn waited_us(&self) -> u64 {
        self.drop_us - self.arrival_us
    }
}

/// Monotonic serving counters (all relaxed-atomic, snapshot-safe at any
/// quiescent point).
#[derive(Debug, Default)]
pub struct ServeCounters {
    pub submitted: Counter,
    pub rejected: Counter,
    pub served: Counter,
    pub batches: Counter,
    /// Sum of batch fills; fill ratio = batch_fill_sum / (batches · cap).
    pub batch_fill_sum: Counter,
    /// Busy chip time accumulated over dispatched batches, µs.
    pub busy_us: Counter,
    /// Busy chip time in simulated cycles.
    pub busy_cycles: Counter,
    /// Total flops dispatched.
    pub flops: Counter,
    /// Low-priority requests displaced by high-priority admissions.
    pub evicted: Counter,
    /// Requests dropped past their dispatch deadline.
    pub timed_out: Counter,
    /// Per-CG slice failures observed during chaos dispatch.
    pub cg_failures: Counter,
    /// Whole-batch re-dispatches after a slice failure.
    pub redispatches: Counter,
    /// Batches served on the degraded 4×4 mesh.
    pub degraded_batches: Counter,
    /// Batches served by the host reference.
    pub host_batches: Counter,
    /// Cycles charged for fault backoff/stalls and wasted dispatches.
    pub fault_extra_cycles: Counter,
    /// Sampled DMA re-issues that eventually succeeded.
    pub fault_dma_retries: Counter,
}

/// End-of-run summary for benches and snapshots.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeSummary {
    pub served: u64,
    pub rejected: u64,
    pub batches: u64,
    /// Mean batch fill as a fraction of the cap.
    pub batch_fill: f64,
    pub p50_latency_us: u64,
    pub p99_latency_us: u64,
    /// Chip-level Gflops over busy time.
    pub gflops_chip: f64,
    pub plan_cache_hit_rate: f64,
    pub evicted: u64,
    pub timed_out: u64,
    /// p99 over *high-priority* completions only (the chaos SLO metric).
    pub high_p99_latency_us: u64,
    /// p99 queue wait of dropped requests — a separate histogram from the
    /// completion percentiles above.
    pub shed_p99_wait_us: u64,
    pub breaker_trips: u64,
    pub degraded_batches: u64,
    pub host_batches: u64,
}

/// The deterministic batch-serving engine.
pub struct ServeEngine {
    config: ServeConfig,
    dispatcher: ShardedDispatcher,
    batcher: MicroBatcher,
    cache: PlanCache,
    recorder: Recorder,
    /// Per-CG breakers (present iff `config.chaos` is).
    health: Option<HealthBoard>,
    /// Logical clock, µs of simulated time.
    clock_us: u64,
    next_id: u64,
    /// Monotonic dispatch sequence — the fault-sampling key.
    batch_seq: u64,
    pub counters: ServeCounters,
    /// Per-tenant / per-CG keyed counters.
    pub tags: TagCounters,
    completions: Vec<Completion>,
    drops: Vec<DropRecord>,
}

impl ServeEngine {
    pub fn new(config: ServeConfig) -> Result<Self, SwdnnError> {
        Ok(Self {
            dispatcher: ShardedDispatcher::new(config.chip, config.cgs)?,
            batcher: MicroBatcher::new(config.policy, config.queue_limit),
            cache: PlanCache::new(),
            recorder: if config.trace {
                Recorder::enabled()
            } else {
                Recorder::disabled()
            },
            health: config
                .chaos
                .map(|c| HealthBoard::new(config.cgs, c.breaker)),
            config,
            clock_us: 0,
            next_id: 0,
            batch_seq: 0,
            counters: ServeCounters::default(),
            tags: TagCounters::new(),
            completions: Vec::new(),
            drops: Vec::new(),
        })
    }

    /// Run every dispatched batch (and the warmup simulations behind the
    /// plan cache) on an explicit [`sw_runtime::ExecutionContext`] instead
    /// of the process-wide pool.
    pub fn on_runtime(mut self, rt: &'static sw_runtime::ExecutionContext) -> Self {
        self.dispatcher = self.dispatcher.on_runtime(rt);
        self
    }

    pub fn now_us(&self) -> u64 {
        self.clock_us
    }

    pub fn queue_depth(&self) -> usize {
        self.batcher.len()
    }

    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Advance the logical clock (idle time between arrivals).
    pub fn advance_us(&mut self, us: u64) {
        self.clock_us += us;
    }

    /// Submit one default-class request (high priority, tenant 0, no
    /// deadline) at the current clock. Returns its id, or
    /// [`SwdnnError::Overloaded`] when the bounded queue is full — the
    /// request is dropped, nothing grows.
    pub fn submit(&mut self, shape: ConvShape) -> Result<u64, SwdnnError> {
        self.submit_with(shape, RequestClass::default())
    }

    /// [`ServeEngine::submit`] with an explicit [`RequestClass`]. A
    /// high-priority submission into a full queue evicts the newest
    /// low-priority request (recorded as [`DropKind::Evicted`]) before it
    /// is itself rejected; a rejected request is recorded as
    /// [`DropKind::ShedAtAdmission`] and the returned
    /// [`SwdnnError::Overloaded`] carries the queue depth and retry-after
    /// hint.
    pub fn submit_with(
        &mut self,
        shape: ConvShape,
        class: RequestClass,
    ) -> Result<u64, SwdnnError> {
        self.counters.submitted.inc();
        let id = self.next_id;
        let req = QueuedRequest {
            id,
            shape,
            arrival_us: self.clock_us,
            priority: class.priority,
            tenant: class.tenant,
            expires_us: class.deadline_us.map(|d| self.clock_us + d),
        };
        match self.batcher.push(req) {
            Ok(victim) => {
                self.next_id += 1;
                if let Some(v) = victim {
                    self.drop_request(v, DropKind::Evicted);
                }
                Ok(id)
            }
            Err(e) => {
                self.drop_request(req, DropKind::ShedAtAdmission);
                Err(e)
            }
        }
    }

    /// Submit with an explicit arrival time at or after the current
    /// clock — the cluster front door uses this to charge ingress link
    /// time: a request leaves the router at `t` and lands on this chip
    /// at `t + transfer_us`. The engine first advances to `arrival_us`
    /// (dispatching anything due on the way, exactly like
    /// [`ServeEngine::run_until`]) so the queue state the request meets
    /// is the state at its true arrival instant. An `arrival_us` in the
    /// past submits at the current clock.
    pub fn submit_arriving(
        &mut self,
        shape: ConvShape,
        class: RequestClass,
        arrival_us: u64,
    ) -> Result<u64, SwdnnError> {
        if arrival_us > self.clock_us {
            self.run_until(arrival_us)?;
        }
        self.submit_with(shape, class)
    }

    /// Pull every queued (not-yet-dispatched) request out of the batcher
    /// — the cluster's chip-failure path. The returned requests keep
    /// their ids, priorities, and arrival times; the caller owns
    /// rerouting them, so nothing is recorded as dropped here. In-flight
    /// completions and counters are untouched.
    pub fn evacuate(&mut self) -> Vec<QueuedRequest> {
        self.batcher.take_all()
    }

    fn drop_request(&mut self, req: QueuedRequest, kind: DropKind) {
        match kind {
            DropKind::ShedAtAdmission => self.counters.rejected.inc(),
            DropKind::Evicted => self.counters.evicted.inc(),
            DropKind::DeadlineExceeded => self.counters.timed_out.inc(),
        }
        self.tags
            .inc(&format!("tenant/{}/{}", req.tenant, kind.name()));
        self.drops.push(DropRecord {
            // A shed request never got its id assigned.
            id: (kind != DropKind::ShedAtAdmission).then_some(req.id),
            shape: req.shape,
            priority: req.priority,
            tenant: req.tenant,
            arrival_us: req.arrival_us,
            drop_us: self.clock_us,
            kind,
        });
    }

    /// Fire deadline timeouts for requests still queued past their
    /// dispatch deadline at the current clock.
    fn fire_expiries(&mut self) {
        for req in self.batcher.expire(self.clock_us) {
            self.drop_request(req, DropKind::DeadlineExceeded);
        }
    }

    /// Dispatch at most one batch if a trigger fires at the current clock.
    /// Returns the number of requests served (0 = nothing ready).
    pub fn poll(&mut self) -> Result<usize, SwdnnError> {
        self.fire_expiries();
        let Some(batch) = self.batcher.pop_batch(self.clock_us) else {
            return Ok(0);
        };
        self.execute(batch)
    }

    /// Run the queue dry: fire deadline releases by jumping the clock to
    /// the next deadline whenever no trigger is ready, then flush leftovers.
    pub fn drain(&mut self) -> Result<usize, SwdnnError> {
        let mut served = 0;
        loop {
            self.fire_expiries();
            if self.batcher.is_empty() {
                break;
            }
            served += match self.batcher.pop_batch(self.clock_us) {
                Some(batch) => self.execute(batch)?,
                None => match self.batcher.next_deadline_us() {
                    Some(deadline) if deadline > self.clock_us => {
                        self.clock_us = deadline;
                        0
                    }
                    _ => match self.batcher.flush() {
                        Some(batch) => self.execute(batch)?,
                        None => 0,
                    },
                },
            };
        }
        Ok(served)
    }

    /// Advance the logical clock to `target_us`, dispatching every batch
    /// whose trigger fires on the way and firing deadline timeouts as they
    /// come due — the open-loop driver's "let simulated time pass" step.
    /// Work in flight when the target is reached still completes (the
    /// clock ends at `max(target, last dispatch end)`); queued work whose
    /// trigger hasn't fired stays queued.
    pub fn run_until(&mut self, target_us: u64) -> Result<usize, SwdnnError> {
        let mut served = 0;
        loop {
            self.fire_expiries();
            if let Some(batch) = self.batcher.pop_batch(self.clock_us) {
                served += self.execute(batch)?;
                continue;
            }
            let next_event = [
                self.batcher.next_deadline_us(),
                // A request expires strictly *after* its deadline instant.
                self.batcher.next_expiry_us().map(|e| e + 1),
            ]
            .into_iter()
            .flatten()
            .filter(|&t| t > self.clock_us)
            .min();
            match next_event {
                Some(t) if t <= target_us => self.clock_us = t,
                _ => break,
            }
        }
        if self.clock_us < target_us {
            self.clock_us = target_us;
        }
        Ok(served)
    }

    fn execute(&mut self, batch: Batch) -> Result<usize, SwdnnError> {
        let n = batch.requests.len();
        let seq = self.batch_seq;
        self.batch_seq += 1;
        let (timing, path) = match self.config.chaos {
            Some(chaos) => self.account_chaos_batch(&batch, seq, &chaos)?,
            None => (
                self.dispatcher
                    .time_batch(&self.cache, &batch.shape, n, None::<PlanKind>)?,
                ServePath::Sharded {
                    cgs: self.config.cgs,
                },
            ),
        };
        let start_us = self.clock_us;
        self.clock_us += timing.wall_us;
        self.counters.batches.inc();
        self.counters.batch_fill_sum.add(n as u64);
        self.counters.served.add(n as u64);
        self.counters.busy_us.add(timing.wall_us);
        self.counters.busy_cycles.add(timing.wall_cycles);
        self.counters.flops.add(timing.total_flops);
        match path {
            ServePath::Degraded => self.counters.degraded_batches.inc(),
            ServePath::HostReference => self.counters.host_batches.inc(),
            ServePath::Sharded { .. } => {}
        }
        for r in &batch.requests {
            self.tags.inc(&format!("tenant/{}/served", r.tenant));
            self.completions.push(Completion {
                id: r.id,
                shape: r.shape,
                arrival_us: r.arrival_us,
                completion_us: self.clock_us,
                priority: r.priority,
                tenant: r.tenant,
                path,
            });
        }
        self.recorder.span_cat(
            &format!("batch {}", batch.shape),
            "serve",
            0,
            0,
            start_us as f64,
            timing.wall_us as f64,
            vec![
                ("requests".into(), Value::from(n as u64)),
                (
                    "trigger".into(),
                    Value::from(format!("{:?}", batch.trigger)),
                ),
                ("queue_depth".into(), Value::from(self.batcher.len() as u64)),
                ("wall_cycles".into(), Value::from(timing.wall_cycles)),
                ("path".into(), Value::from(path.name())),
            ],
        );
        Ok(n)
    }

    /// The per-CG fault plan: the shared rates, with `dead_mask` pinned to
    /// the configured CG and the seed re-derived per re-dispatch round
    /// (replaying the identical seed would reproduce the failure).
    fn cg_fault(chaos: &ChaosConfig, cg: usize, round: u32) -> FaultPlan {
        let mut f = chaos.fault;
        if cg != chaos.dead_cg {
            f.dead_mask = 0;
        }
        if round > 0 {
            f = f.reseed(f.seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(round as u64));
        }
        f
    }

    /// Account one batch under fault injection: route on the health board,
    /// sample per-CG fault outcomes, charge backoff/stall cycles, trip and
    /// probe breakers, re-dispatch on failure, and fall back to the
    /// degraded mesh / host reference when the mesh path is exhausted.
    fn account_chaos_batch(
        &mut self,
        batch: &Batch,
        seq: u64,
        chaos: &ChaosConfig,
    ) -> Result<(BatchTiming, ServePath), SwdnnError> {
        let n = batch.requests.len();
        // Cycles charged for dispatch attempts that failed and were thrown
        // away — the retry tax, exactly like PR 1's executor retries.
        let mut wasted_cycles: u64 = 0;
        let mut round: u32 = 0;
        loop {
            let route = self
                .health
                .as_mut()
                .expect("chaos implies a health board")
                .route(self.clock_us);
            let k = effective_cgs(&batch.shape, route.cgs.len());
            if k == 0 {
                break; // every breaker open → fallback chain
            }
            let active: Vec<usize> = route.cgs[..k].to_vec();
            // Probes excluded by the row split must be re-admittable.
            let unused = Route {
                cgs: Vec::new(),
                probes: route
                    .probes
                    .iter()
                    .copied()
                    .filter(|p| !active.contains(p))
                    .collect(),
            };
            self.health.as_mut().unwrap().cancel_probes(&unused);

            let timing = self.dispatcher.time_batch_for(
                &self.cache,
                &batch.shape,
                n,
                None::<PlanKind>,
                k,
                self.config.chip,
            )?;
            let slice = ShardedDispatcher::slice_shape_for(&batch.shape, k)?;
            let cached = self
                .cache
                .plan_on(self.dispatcher.rt, &self.config.chip, &slice, None)?;
            let transfers = cached.timing.stats.totals.dma_requests.max(1) * n as u64;

            // Slices run concurrently: wall time extends by the slowest.
            let mut extra_max = 0u64;
            let mut failed: Vec<usize> = Vec::new();
            for &cg in &active {
                let fault = Self::cg_fault(chaos, cg, round);
                let out = sample_slice_faults(&fault, cg, seq, transfers);
                extra_max = extra_max.max(out.extra_cycles);
                self.counters.fault_dma_retries.add(out.dma_retries);
                if out.failed() {
                    failed.push(cg);
                }
            }
            for &cg in &active {
                let ok = !failed.contains(&cg);
                let tripped = self.health.as_mut().unwrap().record(cg, ok, self.clock_us);
                self.tags.inc(&format!(
                    "cg/{cg}/{}",
                    if ok { "success" } else { "failure" }
                ));
                if !ok {
                    self.counters.cg_failures.inc();
                }
                if tripped {
                    self.tags.inc(&format!("cg/{cg}/trip"));
                    self.recorder.instant(
                        "breaker_open",
                        "health",
                        2,
                        cg as u64,
                        self.clock_us as f64,
                        vec![
                            ("cg".into(), Value::from(cg as u64)),
                            ("batch_seq".into(), Value::from(seq)),
                        ],
                    );
                } else if ok && route.probes.contains(&cg) {
                    self.recorder.instant(
                        "breaker_close",
                        "health",
                        2,
                        cg as u64,
                        self.clock_us as f64,
                        vec![("cg".into(), Value::from(cg as u64))],
                    );
                }
            }
            self.counters.fault_extra_cycles.add(extra_max);
            if failed.is_empty() {
                let mut t = timing;
                t.wall_cycles += extra_max + wasted_cycles;
                t.wall_us = self.cycles_to_us(t.wall_cycles);
                return Ok((t, ServePath::Sharded { cgs: k }));
            }
            // The attempt's wall time was spent and is thrown away.
            wasted_cycles += timing.wall_cycles + extra_max;
            self.counters.fault_extra_cycles.add(timing.wall_cycles);
            self.counters.redispatches.inc();
            round += 1;
            if round > chaos.dispatch_retries {
                break;
            }
        }

        // Fallback 1: the degraded 4×4 mesh (faults still apply — its DMA
        // engines misbehave like everyone else's — but dead CPEs are
        // masked by the re-planning, per resilient.rs).
        let degraded = ResilientExecutor::degraded_chip(self.config.chip);
        if let Ok(timing) = self.dispatcher.time_batch_for(
            &self.cache,
            &batch.shape,
            n,
            None::<PlanKind>,
            1,
            degraded,
        ) {
            let mut fault = chaos.fault;
            fault.dead_mask = 0;
            // Actor 64 is off-mesh: an independent decision stream from
            // the four CGs'.
            let out = sample_slice_faults(&fault, 64, seq, timing.wall_cycles.max(1) / 64);
            self.counters.fault_dma_retries.add(out.dma_retries);
            self.counters.fault_extra_cycles.add(out.extra_cycles);
            if !out.failed() {
                let mut t = timing;
                t.wall_cycles += out.extra_cycles + wasted_cycles;
                t.wall_us = self.cycles_to_us(t.wall_cycles);
                return Ok((t, ServePath::Degraded));
            }
            wasted_cycles += timing.wall_cycles + out.extra_cycles;
            self.counters.fault_extra_cycles.add(timing.wall_cycles);
        }

        // Fallback 2: the host reference touches no mesh and never fails.
        let ref_timing = ReferencePlan {
            chip: self.config.chip,
        }
        .time_full_shape(&batch.shape)?;
        let wall_cycles = n as u64 * ref_timing.cycles + LAUNCH_OVERHEAD_CYCLES + wasted_cycles;
        Ok((
            BatchTiming {
                requests: n,
                wall_cycles,
                wall_us: self.cycles_to_us(wall_cycles),
                total_flops: n as u64 * batch.shape.flops(),
            },
            ServePath::HostReference,
        ))
    }

    fn cycles_to_us(&self, cycles: u64) -> u64 {
        (self.config.chip.cycles_to_seconds(cycles) * 1e6).ceil() as u64
    }

    /// All completions so far, in completion order.
    pub fn completions(&self) -> &[Completion] {
        &self.completions
    }

    /// All dropped requests (shed / evicted / timed out), in drop order.
    pub fn drops(&self) -> &[DropRecord] {
        &self.drops
    }

    /// Per-CG breaker snapshot (`None` without a [`ChaosConfig`]).
    pub fn health_snapshot(&self) -> Option<Vec<(&'static str, CgHealthStats)>> {
        self.health.as_ref().map(|h| h.snapshot())
    }

    /// Aggregate breaker stats (zeros without a [`ChaosConfig`]).
    pub fn health_totals(&self) -> CgHealthStats {
        self.health.as_ref().map(|h| h.totals()).unwrap_or_default()
    }

    /// Currently-open breakers.
    pub fn open_breakers(&self) -> usize {
        self.health.as_ref().map(|h| h.open_count()).unwrap_or(0)
    }

    /// Reset measurement state (completions + drops + counters + cache
    /// counters + tags) after a warmup phase, keeping caches, breaker
    /// state, and the clock hot.
    pub fn reset_measurements(&mut self) {
        self.completions.clear();
        self.drops.clear();
        self.counters = ServeCounters::default();
        self.cache.reset_counters();
        self.tags.reset();
    }

    /// Take the recorded Chrome trace (empty when tracing is off).
    pub fn take_trace(&mut self) -> sw_obs::ChromeTrace {
        self.recorder.take()
    }

    fn percentile(mut vals: Vec<u64>, pct: f64) -> u64 {
        if vals.is_empty() {
            return 0;
        }
        vals.sort_unstable();
        let rank = ((pct / 100.0) * (vals.len() - 1) as f64).round() as usize;
        vals[rank.min(vals.len() - 1)]
    }

    /// Order-statistic latency percentile over all completions (0–100).
    pub fn latency_percentile_us(&self, pct: f64) -> u64 {
        Self::percentile(
            self.completions.iter().map(|c| c.latency_us()).collect(),
            pct,
        )
    }

    /// Latency percentile over completions of one priority tier only.
    pub fn latency_percentile_for(&self, priority: Priority, pct: f64) -> u64 {
        Self::percentile(
            self.completions
                .iter()
                .filter(|c| c.priority == priority)
                .map(|c| c.latency_us())
                .collect(),
            pct,
        )
    }

    /// Queue-wait percentile over *dropped* requests — the shed/timeout
    /// histogram, kept apart from the completion percentiles so shedding
    /// can never flatter the reported latency.
    pub fn shed_wait_percentile_us(&self, pct: f64) -> u64 {
        Self::percentile(self.drops.iter().map(|d| d.waited_us()).collect(), pct)
    }

    pub fn summary(&self) -> ServeSummary {
        let batches = self.counters.batches.get();
        let busy_secs = self.counters.busy_us.get() as f64 / 1e6;
        ServeSummary {
            served: self.counters.served.get(),
            rejected: self.counters.rejected.get(),
            batches,
            batch_fill: if batches == 0 {
                0.0
            } else {
                self.counters.batch_fill_sum.get() as f64
                    / (batches * self.config.policy.max_batch as u64) as f64
            },
            p50_latency_us: self.latency_percentile_us(50.0),
            p99_latency_us: self.latency_percentile_us(99.0),
            gflops_chip: if busy_secs > 0.0 {
                self.counters.flops.get() as f64 / busy_secs / 1e9
            } else {
                0.0
            },
            plan_cache_hit_rate: self.cache.stats().plan_hit_rate(),
            evicted: self.counters.evicted.get(),
            timed_out: self.counters.timed_out.get(),
            high_p99_latency_us: self.latency_percentile_for(Priority::High, 99.0),
            shed_p99_wait_us: self.shed_wait_percentile_us(99.0),
            breaker_trips: self.health_totals().trips,
            degraded_batches: self.counters.degraded_batches.get(),
            host_batches: self.counters.host_batches.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> ConvShape {
        // ro = 8 splits over 4 CGs.
        ConvShape::new(16, 8, 8, 8, 8, 3, 3)
    }

    fn engine(max_batch: usize, queue_limit: usize) -> ServeEngine {
        ServeEngine::new(ServeConfig {
            policy: BatchPolicy {
                max_batch,
                deadline_us: 1_000,
            },
            queue_limit,
            trace: true,
            ..ServeConfig::default()
        })
        .unwrap()
    }

    fn chaos_engine(chaos: ChaosConfig, max_batch: usize, queue_limit: usize) -> ServeEngine {
        ServeEngine::new(ServeConfig {
            policy: BatchPolicy {
                max_batch,
                deadline_us: 1_000,
            },
            queue_limit,
            chaos: Some(chaos),
            ..ServeConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn closed_loop_serves_everything_and_caches_plans() {
        let mut e = engine(4, 64);
        for _ in 0..16 {
            e.submit(shape()).unwrap();
        }
        let served = e.drain().unwrap();
        assert_eq!(served, 16);
        let s = e.summary();
        assert_eq!(s.served, 16);
        assert_eq!(s.batches, 4, "cap releases of 4");
        assert_eq!(s.batch_fill, 1.0);
        assert!(s.p99_latency_us >= s.p50_latency_us);
        assert!(s.gflops_chip > 0.0);
        // One slice-shape miss, every later batch hits.
        let cs = e.cache_stats();
        assert_eq!(cs.plan_misses, 1);
        assert_eq!(cs.plan_hits, 3);
    }

    #[test]
    fn overload_rejects_gracefully_and_recovers() {
        let mut e = engine(4, 8);
        let mut rejected = 0;
        for _ in 0..80 {
            match e.submit(shape()) {
                Ok(_) => {}
                Err(SwdnnError::Overloaded { .. }) => rejected += 1,
                Err(e) => panic!("only Overloaded expected, got {e}"),
            }
        }
        assert_eq!(rejected, 72, "queue of 8 sheds the 10x overload");
        assert_eq!(e.queue_depth(), 8);
        e.drain().unwrap();
        assert_eq!(e.queue_depth(), 0);
        // After draining, submissions succeed again.
        e.submit(shape()).unwrap();
        assert_eq!(e.summary().rejected, 72);
        // Every shed request is in the drop log, none has an id.
        assert_eq!(e.drops().len(), 72);
        assert!(e.drops().iter().all(|d| d.id.is_none()));
    }

    #[test]
    fn deadline_fires_for_a_lone_request() {
        let mut e = engine(8, 64);
        e.submit(shape()).unwrap();
        assert_eq!(e.poll().unwrap(), 0, "no trigger yet");
        e.advance_us(1_000);
        assert_eq!(e.poll().unwrap(), 1, "deadline release");
        let c = e.completions()[0];
        assert!(c.latency_us() >= 1_000, "waited out the deadline");
    }

    #[test]
    fn trace_records_one_span_per_batch() {
        let mut e = engine(2, 64);
        for _ in 0..4 {
            e.submit(shape()).unwrap();
        }
        e.drain().unwrap();
        let trace = e.take_trace();
        let spans: Vec<_> = trace.events.iter().filter(|ev| ev.cat == "serve").collect();
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().all(|s| s.ph == 'X' && s.dur_us > 0.0));
    }

    #[test]
    fn reset_measurements_keeps_the_cache_hot() {
        let mut e = engine(4, 64);
        for _ in 0..8 {
            e.submit(shape()).unwrap();
        }
        e.drain().unwrap();
        e.reset_measurements();
        for _ in 0..8 {
            e.submit(shape()).unwrap();
        }
        e.drain().unwrap();
        let cs = e.cache_stats();
        assert_eq!(cs.plan_misses, 0, "warmup already populated the cache");
        assert_eq!(cs.plan_hit_rate(), 1.0);
        assert_eq!(e.summary().served, 8, "only the measured window counts");
    }

    #[test]
    fn zero_rate_chaos_is_identical_to_fault_free_serving() {
        let run = |chaos: Option<ChaosConfig>| {
            let mut e = ServeEngine::new(ServeConfig {
                policy: BatchPolicy {
                    max_batch: 4,
                    deadline_us: 1_000,
                },
                queue_limit: 64,
                chaos,
                ..ServeConfig::default()
            })
            .unwrap();
            for _ in 0..12 {
                e.submit(shape()).unwrap();
            }
            e.drain().unwrap();
            let s = e.summary();
            (s.served, s.batches, s.p50_latency_us, s.p99_latency_us)
        };
        assert_eq!(
            run(None),
            run(Some(ChaosConfig::default())),
            "inert fault plan must not change a single number"
        );
    }

    #[test]
    fn dead_cg_trips_its_breaker_and_requests_still_complete() {
        let chaos = ChaosConfig {
            fault: FaultPlan::none(3).with_dead_cpe(2, 2),
            dead_cg: 1,
            breaker: BreakerPolicy {
                trip_after: 3,
                cooldown_us: 50_000,
            },
            dispatch_retries: 2,
        };
        let mut e = chaos_engine(chaos, 4, 64);
        for _ in 0..32 {
            e.submit(shape()).unwrap();
        }
        e.drain().unwrap();
        let s = e.summary();
        assert_eq!(s.served, 32, "a dead CG must never lose requests");
        assert!(s.breaker_trips >= 1, "CG 1 must trip");
        assert!(
            e.completions()
                .iter()
                .any(|c| c.path != ServePath::Sharded { cgs: 4 }),
            "traffic must have been rerouted or fallen back"
        );
        // Once CG 1 is tripped, batches shard over 2 of the 3 healthy CGs
        // (the widest split dividing ro = 8).
        assert!(e
            .completions()
            .iter()
            .any(|c| c.path == ServePath::Sharded { cgs: 2 }));
        let snap = e.health_snapshot().unwrap();
        assert!(snap[1].1.failures > 0);
        assert_eq!(snap[0].1.failures, 0, "healthy CGs never fail");
        assert!(e.tags.get("cg/1/trip") >= 1);
    }

    #[test]
    fn chaos_runs_are_deterministic() {
        let run = || {
            let chaos = ChaosConfig {
                fault: FaultPlan::none(17).with_dma_fail_rate(5e-3),
                ..ChaosConfig::default()
            };
            let mut e = chaos_engine(chaos, 4, 64);
            for _ in 0..24 {
                e.submit(shape()).unwrap();
            }
            e.drain().unwrap();
            let s = e.summary();
            (
                s.served,
                s.p99_latency_us,
                s.breaker_trips,
                e.counters.fault_extra_cycles.get(),
                e.counters.cg_failures.get(),
            )
        };
        assert_eq!(run(), run(), "same seed, same chaos numbers");
    }

    #[test]
    fn faults_cost_time_never_lose_requests() {
        let chaos = ChaosConfig {
            fault: FaultPlan::none(9)
                .with_dma_fail_rate(2e-3)
                .with_dma_stalls(1e-2, 512),
            ..ChaosConfig::default()
        };
        let mut clean = engine(4, 64);
        let mut noisy = chaos_engine(chaos, 4, 64);
        for _ in 0..24 {
            clean.submit(shape()).unwrap();
            noisy.submit(shape()).unwrap();
        }
        clean.drain().unwrap();
        noisy.drain().unwrap();
        assert_eq!(noisy.summary().served, 24);
        assert!(
            noisy.counters.busy_cycles.get() > clean.counters.busy_cycles.get(),
            "stall/backoff cycles must be charged into wall time"
        );
    }

    #[test]
    fn low_priority_is_shed_and_timed_out_first() {
        let mut e = engine(4, 8);
        let low = RequestClass {
            priority: Priority::Low,
            tenant: 7,
            deadline_us: Some(500),
        };
        for _ in 0..8 {
            e.submit_with(shape(), low).unwrap();
        }
        // Queue full of low traffic: high submissions evict, never fail.
        for _ in 0..4 {
            e.submit(shape()).unwrap();
        }
        assert_eq!(e.summary().evicted, 4);
        // Past the dispatch deadline the remaining low requests time out;
        // the high tier is unaffected.
        e.advance_us(2_000);
        e.drain().unwrap();
        let s = e.summary();
        assert_eq!(s.timed_out, 4);
        assert_eq!(s.served, 4, "all high-priority requests complete");
        assert!(e.completions().iter().all(|c| c.priority == Priority::High));
        assert!(e
            .drops()
            .iter()
            .all(|d| d.priority == Priority::Low && d.tenant == 7));
        assert_eq!(e.tags.get("tenant/7/evicted"), 4);
        assert_eq!(e.tags.get("tenant/7/timed_out"), 4);
        assert_eq!(e.tags.get("tenant/0/served"), 4);
    }

    #[test]
    fn run_until_dispatches_on_the_way_and_lands_on_target() {
        let mut e = engine(8, 64);
        e.submit(shape()).unwrap();
        // Target far past the straggler deadline: the deadline release
        // fires mid-flight, not at the end.
        let served = e.run_until(50_000).unwrap();
        assert_eq!(served, 1);
        assert_eq!(e.now_us(), 50_000);
        let c = e.completions()[0];
        assert!(c.completion_us < 50_000, "released at its deadline");
    }

    #[test]
    fn submit_arriving_advances_the_clock_first() {
        let mut e = engine(8, 64);
        e.submit(shape()).unwrap();
        // The new request arrives after the first one's deadline release:
        // the engine must dispatch the first batch on the way.
        e.submit_arriving(shape(), RequestClass::default(), 5_000)
            .unwrap();
        assert_eq!(e.now_us(), 5_000);
        assert_eq!(e.completions().len(), 1, "first request released en route");
        assert_eq!(e.queue_depth(), 1, "second request queued at arrival");
        // A past arrival submits at the current clock, never rewinds.
        e.submit_arriving(shape(), RequestClass::default(), 0)
            .unwrap();
        assert_eq!(e.now_us(), 5_000);
    }

    #[test]
    fn evacuate_returns_queued_work_without_recording_drops() {
        let mut e = engine(8, 64);
        let a = e.submit(shape()).unwrap();
        let b = e
            .submit_with(
                shape(),
                RequestClass {
                    priority: Priority::Low,
                    ..RequestClass::default()
                },
            )
            .unwrap();
        let evacuated = e.evacuate();
        assert_eq!(
            evacuated.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![a, b],
            "high tier first, ids preserved"
        );
        assert_eq!(e.queue_depth(), 0);
        assert!(e.drops().is_empty(), "evacuation is not a drop");
    }

    #[test]
    fn drop_histogram_is_separate_from_completion_latency() {
        let mut e = engine(4, 64);
        // Two served requests with real latency.
        e.submit(shape()).unwrap();
        e.submit(shape()).unwrap();
        e.drain().unwrap();
        let p99_before = e.summary().p99_latency_us;
        // A long-waiting low request that times out must not appear in the
        // completion percentiles.
        let doomed = RequestClass {
            priority: Priority::Low,
            tenant: 1,
            deadline_us: Some(10),
        };
        e.submit_with(shape(), doomed).unwrap();
        e.advance_us(100_000);
        e.poll().unwrap();
        let s = e.summary();
        assert_eq!(s.timed_out, 1);
        assert_eq!(
            s.p99_latency_us, p99_before,
            "a timed-out request must not change completion latency"
        );
        assert!(
            s.shed_p99_wait_us >= 100_000,
            "its wait lives in the shed histogram: {}",
            s.shed_p99_wait_us
        );
    }
}
