//! Per-CG health tracking: a deterministic circuit breaker per core group.
//!
//! The sharded dispatcher routes every batch across the chip's core
//! groups; when one CG starts failing (injected DMA exhaustion, a dead
//! CPE, a dropped bus message deadlock) the dispatcher must stop sending
//! work there *before* every request pays the retry tax. Each CG gets a
//! classic three-state breaker driven entirely by the serving engine's
//! logical clock — no wall time, no background threads — so breaker
//! transitions replay identically on every run and at every worker-pool
//! thread count:
//!
//! * **Closed** — healthy; requests route normally. `trip_after`
//!   *consecutive* failures open the breaker.
//! * **Open** — in cooldown until `open_until_us`; the CG's row-split
//!   share is rerouted to healthy CGs (or the fallback chain when none
//!   remain).
//! * **Half-open** — cooldown elapsed; exactly **one** probe batch is
//!   admitted. Success closes the breaker (full share restored), failure
//!   re-opens it for another cooldown.
//!
//! All counters are monotonic and snapshot-safe; the board exposes them
//! for the `sw-obs` per-CG health report and the Chrome-trace breaker
//! track.

/// Breaker tuning shared by every CG on one dispatcher.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BreakerPolicy {
    /// Consecutive failures that trip a Closed breaker.
    pub trip_after: u32,
    /// Cooldown a tripped breaker waits before admitting a probe (µs of
    /// logical time).
    pub cooldown_us: u64,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        Self {
            trip_after: 3,
            cooldown_us: 50_000,
        }
    }
}

/// Observable breaker state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    Closed,
    /// Cooling down until the contained logical time.
    Open {
        until_us: u64,
    },
    /// Cooldown elapsed; waiting for (or running) the single probe.
    HalfOpen,
}

impl BreakerState {
    pub fn name(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open { .. } => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// How a CG may be used for the next batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Availability {
    /// Closed breaker: routable at full share.
    Ready,
    /// Half-open breaker: routable as the single probe.
    Probe,
    /// Open breaker (or a probe already in flight): do not route.
    Unavailable,
}

/// Monotonic per-CG health counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CgHealthStats {
    pub successes: u64,
    pub failures: u64,
    pub trips: u64,
    pub probes: u64,
}

/// One CG's breaker.
#[derive(Clone, Copy, Debug)]
pub struct CgBreaker {
    state: BreakerState,
    consecutive_failures: u32,
    /// True while a half-open probe has been admitted but its outcome has
    /// not yet been recorded — guarantees "exactly one probe".
    probe_in_flight: bool,
    pub stats: CgHealthStats,
}

impl Default for CgBreaker {
    fn default() -> Self {
        Self {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            probe_in_flight: false,
            stats: CgHealthStats::default(),
        }
    }
}

impl CgBreaker {
    pub fn state(&self) -> BreakerState {
        self.state
    }

    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }

    /// Advance Open → HalfOpen when the cooldown has elapsed, then report
    /// how this CG may be used at `now_us`. Admitting a probe marks it in
    /// flight: further calls return [`Availability::Unavailable`] until
    /// [`CgBreaker::record`] lands the probe's outcome.
    pub fn availability(&mut self, now_us: u64) -> Availability {
        if let BreakerState::Open { until_us } = self.state {
            if now_us >= until_us {
                self.state = BreakerState::HalfOpen;
            }
        }
        match self.state {
            BreakerState::Closed => Availability::Ready,
            BreakerState::Open { .. } => Availability::Unavailable,
            BreakerState::HalfOpen => {
                if self.probe_in_flight {
                    Availability::Unavailable
                } else {
                    self.probe_in_flight = true;
                    self.stats.probes += 1;
                    Availability::Probe
                }
            }
        }
    }

    /// Record one batch outcome on this CG. Returns `true` when the call
    /// tripped the breaker Closed/HalfOpen → Open.
    pub fn record(&mut self, success: bool, now_us: u64, policy: &BreakerPolicy) -> bool {
        let was_probe = matches!(self.state, BreakerState::HalfOpen);
        self.probe_in_flight = false;
        if success {
            self.stats.successes += 1;
            self.consecutive_failures = 0;
            self.state = BreakerState::Closed;
            return false;
        }
        self.stats.failures += 1;
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        let trips = was_probe || self.consecutive_failures >= policy.trip_after;
        if trips {
            self.state = BreakerState::Open {
                until_us: now_us + policy.cooldown_us,
            };
            self.stats.trips += 1;
        }
        trips
    }
}

/// The dispatcher's routing table: one breaker per CG.
#[derive(Clone, Debug)]
pub struct HealthBoard {
    pub policy: BreakerPolicy,
    breakers: Vec<CgBreaker>,
}

/// A routing decision for one batch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Route {
    /// CGs the batch may use, in index order (probes included).
    pub cgs: Vec<usize>,
    /// Subset of `cgs` running as half-open probes.
    pub probes: Vec<usize>,
}

impl HealthBoard {
    pub fn new(cgs: usize, policy: BreakerPolicy) -> Self {
        Self {
            policy,
            breakers: vec![CgBreaker::default(); cgs],
        }
    }

    pub fn breaker(&self, cg: usize) -> &CgBreaker {
        &self.breakers[cg]
    }

    pub fn len(&self) -> usize {
        self.breakers.len()
    }

    pub fn is_empty(&self) -> bool {
        self.breakers.is_empty()
    }

    /// Decide which CGs the next batch may use at `now_us`. Empty `cgs`
    /// means every breaker is open: the caller must take the fallback
    /// chain (degraded mesh → host reference).
    pub fn route(&mut self, now_us: u64) -> Route {
        let mut cgs = Vec::new();
        let mut probes = Vec::new();
        for (g, b) in self.breakers.iter_mut().enumerate() {
            match b.availability(now_us) {
                Availability::Ready => cgs.push(g),
                Availability::Probe => {
                    cgs.push(g);
                    probes.push(g);
                }
                Availability::Unavailable => {}
            }
        }
        Route { cgs, probes }
    }

    /// Record a batch outcome on `cg`; returns `true` on a fresh trip.
    pub fn record(&mut self, cg: usize, success: bool, now_us: u64) -> bool {
        let policy = self.policy;
        self.breakers[cg].record(success, now_us, &policy)
    }

    /// Un-admit the probes of a route that was computed but not executed
    /// (e.g. the caller re-routed after a mid-dispatch trip). Without this
    /// an abandoned probe admission would block the half-open CG forever.
    pub fn cancel_probes(&mut self, route: &Route) {
        for &g in &route.probes {
            let b = &mut self.breakers[g];
            if matches!(b.state, BreakerState::HalfOpen) && b.probe_in_flight {
                b.probe_in_flight = false;
                b.stats.probes -= 1;
            }
        }
    }

    /// Number of currently-open breakers (for counters/summaries).
    pub fn open_count(&self) -> usize {
        self.breakers
            .iter()
            .filter(|b| matches!(b.state, BreakerState::Open { .. }))
            .count()
    }

    /// Aggregate stats across CGs.
    pub fn totals(&self) -> CgHealthStats {
        let mut t = CgHealthStats::default();
        for b in &self.breakers {
            t.successes += b.stats.successes;
            t.failures += b.stats.failures;
            t.trips += b.stats.trips;
            t.probes += b.stats.probes;
        }
        t
    }

    /// Per-CG `(state name, stats)` snapshot for observability.
    pub fn snapshot(&self) -> Vec<(&'static str, CgHealthStats)> {
        self.breakers
            .iter()
            .map(|b| (b.state.name(), b.stats))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> BreakerPolicy {
        BreakerPolicy {
            trip_after: 3,
            cooldown_us: 1_000,
        }
    }

    #[test]
    fn trips_only_at_the_configured_threshold() {
        let mut b = CgBreaker::default();
        let p = policy();
        assert!(!b.record(false, 0, &p));
        assert!(!b.record(false, 0, &p));
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.record(false, 0, &p), "third consecutive failure trips");
        assert_eq!(b.state(), BreakerState::Open { until_us: 1_000 });
        assert_eq!(b.stats.trips, 1);
    }

    #[test]
    fn success_resets_the_consecutive_count() {
        let mut b = CgBreaker::default();
        let p = policy();
        b.record(false, 0, &p);
        b.record(false, 0, &p);
        b.record(true, 0, &p);
        b.record(false, 0, &p);
        b.record(false, 0, &p);
        assert_eq!(
            b.state(),
            BreakerState::Closed,
            "interleaved success must reset the streak"
        );
    }

    #[test]
    fn half_open_admits_exactly_one_probe() {
        let mut b = CgBreaker::default();
        let p = policy();
        for _ in 0..3 {
            b.record(false, 0, &p);
        }
        assert_eq!(b.availability(500), Availability::Unavailable, "cooling");
        assert_eq!(b.availability(1_000), Availability::Probe, "cooldown over");
        assert_eq!(
            b.availability(1_000),
            Availability::Unavailable,
            "second ask while the probe is in flight must be refused"
        );
        assert!(!b.record(true, 1_500, &p));
        assert_eq!(b.state(), BreakerState::Closed, "probe success closes");
        assert_eq!(b.availability(1_500), Availability::Ready);
        assert_eq!(b.stats.probes, 1);
    }

    #[test]
    fn failed_probe_reopens_for_another_cooldown() {
        let mut b = CgBreaker::default();
        let p = policy();
        for _ in 0..3 {
            b.record(false, 0, &p);
        }
        assert_eq!(b.availability(1_000), Availability::Probe);
        assert!(b.record(false, 1_200, &p), "failed probe re-trips");
        assert_eq!(b.state(), BreakerState::Open { until_us: 2_200 });
        assert_eq!(b.availability(2_199), Availability::Unavailable);
        assert_eq!(b.availability(2_200), Availability::Probe);
    }

    #[test]
    fn board_routes_around_open_breakers() {
        let mut board = HealthBoard::new(4, policy());
        for _ in 0..3 {
            board.record(1, false, 0);
        }
        let r = board.route(0);
        assert_eq!(r.cgs, vec![0, 2, 3]);
        assert!(r.probes.is_empty());
        assert_eq!(board.open_count(), 1);
        // After the cooldown CG 1 returns as a probe.
        let r = board.route(1_000);
        assert_eq!(r.cgs, vec![0, 1, 2, 3]);
        assert_eq!(r.probes, vec![1]);
    }

    #[test]
    fn cancel_probes_releases_an_unused_admission() {
        let mut board = HealthBoard::new(2, policy());
        for _ in 0..3 {
            board.record(0, false, 0);
        }
        let r = board.route(1_000);
        assert_eq!(r.probes, vec![0]);
        board.cancel_probes(&r);
        let again = board.route(1_000);
        assert_eq!(again.probes, vec![0], "cancelled probe is re-admittable");
        assert_eq!(
            board.breaker(0).stats.probes,
            1,
            "cancelled admit uncounted"
        );
    }
}
