//! A striped concurrent map with hit/miss accounting.
//!
//! The serving path looks the same few shapes up on every request from
//! every worker thread, so a single global `Mutex<HashMap>` would become
//! the one serialization point in an otherwise embarrassingly parallel
//! engine. Striping the key space over independently locked shards keeps
//! lookups for *different* keys contention-free, and the hit/miss counters
//! (relaxed atomics, see [`sw_obs::Counter`]) give the observability layer
//! the cache hit-rate without touching any lock.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use sw_obs::Counter;

/// Shard count: a small power of two well above the worker parallelism the
/// simulated 4-CG chip ever drives.
const DEFAULT_SHARDS: usize = 16;

/// A hash map striped over independently locked shards, with hit/miss
/// counters suitable for cache-style use.
#[derive(Debug)]
pub struct ShardedMap<K, V> {
    shards: Vec<parking_lot::Mutex<HashMap<K, V>>>,
    hits: Counter,
    misses: Counter,
}

impl<K: Hash + Eq + Clone, V: Clone> Default for ShardedMap<K, V> {
    fn default() -> Self {
        Self::new(DEFAULT_SHARDS)
    }
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedMap<K, V> {
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        Self {
            shards: (0..shards)
                .map(|_| parking_lot::Mutex::new(HashMap::new()))
                .collect(),
            hits: Counter::new(),
            misses: Counter::new(),
        }
    }

    fn shard(&self, key: &K) -> &parking_lot::Mutex<HashMap<K, V>> {
        // DefaultHasher with default keys is deterministic within a
        // process, which is all shard routing needs.
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Look up `key`, counting a hit or miss.
    pub fn get(&self, key: &K) -> Option<V> {
        let found = self.shard(key).lock().get(key).cloned();
        match found {
            Some(_) => self.hits.inc(),
            None => self.misses.inc(),
        }
        found
    }

    /// Insert without touching the hit/miss counters.
    pub fn insert(&self, key: K, value: V) {
        self.shard(&key).lock().insert(key, value);
    }

    /// Cached lookup: on a miss, run `make` *outside* the shard lock and
    /// insert its result. Two racing misses may both compute; the first
    /// insert wins and the duplicate result is returned to its caller —
    /// acceptable for the deterministic, idempotent computations cached
    /// here (plan selection, tile pricing), and it keeps a multi-second
    /// simulated timing from blocking every other key in the shard.
    pub fn get_or_insert_with<E>(
        &self,
        key: &K,
        make: impl FnOnce() -> Result<V, E>,
    ) -> Result<V, E> {
        if let Some(v) = self.get(key) {
            return Ok(v);
        }
        let v = make()?;
        let mut shard = self.shard(key).lock();
        Ok(shard.entry(key.clone()).or_insert(v).clone())
    }

    /// Total entries across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Hits over total lookups (0.0 before any lookup).
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = (self.hits(), self.misses());
        if h + m == 0 {
            return 0.0;
        }
        h as f64 / (h + m) as f64
    }

    /// Zero the hit/miss counters (e.g. after warmup) without dropping the
    /// cached entries.
    pub fn reset_counters(&self) {
        self.hits.reset();
        self.misses.reset();
    }

    /// Drop every entry and zero the counters.
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().clear();
        }
        self.reset_counters();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn get_or_insert_computes_once_per_key() {
        let m: ShardedMap<u32, u32> = ShardedMap::default();
        let v: Result<u32, ()> = m.get_or_insert_with(&7, || Ok(70));
        assert_eq!(v, Ok(70));
        let v: Result<u32, ()> = m.get_or_insert_with(&7, || panic!("cached"));
        assert_eq!(v, Ok(70));
        assert_eq!((m.hits(), m.misses()), (1, 1));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn errors_are_not_cached() {
        let m: ShardedMap<u32, u32> = ShardedMap::default();
        assert_eq!(m.get_or_insert_with(&1, || Err("boom")), Err("boom"));
        assert_eq!(m.get_or_insert_with::<&str>(&1, || Ok(10)), Ok(10));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn counters_reset_without_dropping_entries() {
        let m: ShardedMap<u32, u32> = ShardedMap::new(4);
        for k in 0..10 {
            let _ = m.get_or_insert_with::<()>(&k, || Ok(k));
        }
        assert_eq!(m.misses(), 10);
        m.reset_counters();
        assert_eq!((m.hits(), m.misses()), (0, 0));
        assert_eq!(m.len(), 10);
        assert!(m.get(&3).is_some());
        assert_eq!(m.hit_rate(), 1.0);
    }

    #[test]
    fn concurrent_mixed_keys_stay_consistent() {
        let m: Arc<ShardedMap<u64, u64>> = Arc::new(ShardedMap::default());
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        let k = i % 16;
                        let v = m.get_or_insert_with::<()>(&k, || Ok(k * 2)).unwrap();
                        assert_eq!(v, k * 2, "thread {t}");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.len(), 16);
        assert_eq!(m.hits() + m.misses(), 8 * 200);
        assert!(m.hit_rate() > 0.9);
    }
}
