//! Sharded batch dispatch across the simulated core groups (§III-D).
//!
//! The paper partitions output images along the row dimension and gives
//! each of the SW26010's four CGs one slice; the serving engine reuses that
//! scheme per *batch*: every request's convolution is row-split into `cgs`
//! slices executed on one shared [`sw_runtime::ExecutionContext`]
//! ([`sw_sim::run_multi_cg_on`]) — no per-request thread fan-out — and the
//! batch's requests stream back-to-back so the fixed kernel-launch
//! overhead amortizes over the whole batch instead of being paid per
//! request. The CG fan-out is scheduled with per-lane slot affinity
//! (DESIGN.md §14): CG `g` prefers pool lane `g` on every request, so the
//! four CGs' working sets stop migrating across worker threads between
//! requests.
//!
//! Two paths share the slicing logic:
//!
//! * [`ShardedDispatcher::run`] — the real-arithmetic path: builds each
//!   CG's input slice (its output rows plus the `kr - 1` halo rows),
//!   executes the plan per slice, and stitches the output. Output rows are
//!   computed with exactly the per-row arithmetic of the unsharded plan,
//!   so the stitched tensor is bit-identical to an unsharded run.
//! * [`ShardedDispatcher::time_batch`] — the accounting path the serving
//!   engine uses: per-slice timing comes from the [`PlanCache`], so after
//!   warmup a batch costs two map lookups, not a simulation.

use super::plan_cache::PlanCache;
use crate::conv::Conv2d;
use crate::error::SwdnnError;
use sw_perfmodel::{ChipSpec, PlanKind};
use sw_sim::chip::LAUNCH_OVERHEAD_CYCLES;
use sw_sim::{run_multi_cg_on, FaultPlan};
use sw_tensor::{ConvShape, Layout, Tensor4};

/// Largest shard width usable when only `healthy` CGs are routable: the
/// biggest `k ≤ healthy` whose row split divides `shape.ro` (1 always
/// divides, so this is 0 only when `healthy` is 0 and the caller must take
/// the fallback chain).
pub fn effective_cgs(shape: &ConvShape, healthy: usize) -> usize {
    (1..=healthy)
        .rev()
        .find(|k| shape.ro.is_multiple_of(*k))
        .unwrap_or(0)
}

/// What a [`FaultPlan`] deterministically does to one CG's slice of one
/// accounted batch (see [`sample_slice_faults`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SliceFaults {
    /// Cycles lost to DMA backoff, DMA stalls, and CPE stalls — charged
    /// into the batch's wall time exactly like PR 1 charged executor
    /// retries.
    pub extra_cycles: u64,
    /// DMA re-issues that eventually succeeded.
    pub dma_retries: u64,
    /// Bus messages dropped on this slice (each one is the
    /// `EmptyInbox`-deadlock failure mode: the slice cannot complete).
    pub dropped_msgs: u64,
    /// A permanently-dead CPE sits in this CG: every dispatch fails.
    pub dead: bool,
    /// Some transfer exhausted the mesh's DMA retry budget.
    pub exhausted: bool,
}

impl SliceFaults {
    /// Did the slice fail (as opposed to merely running slow)?
    pub fn failed(&self) -> bool {
        self.dead || self.exhausted || self.dropped_msgs > 0
    }
}

/// Sample the fault outcome of `actor`'s slice of accounted batch
/// `batch_seq`, which moves `transfers` DMA requests.
///
/// The serving engine's hot path accounts batches from cached plan timing
/// rather than re-simulating 64 CPEs per request; this function gives that
/// accounting path the *same* seeded decision streams the mesh itself
/// consults (`FaultPlan::dma_attempt_fails` / `dma_stall` / `msg_dropped` /
/// `cpe_stall`), keyed by `(actor, batch_seq)` so every CG and every batch
/// sees an independent — but exactly reproducible — pattern. Failed DMA
/// attempts charge the retry policy's exponential backoff; exhausting the
/// per-transfer budget (or any dropped message, or a dead CPE) fails the
/// slice. To bound sampling cost on very large batches, at most 2048
/// transfers are drawn and the charged cycles are scaled back up by the
/// ceiling ratio.
pub fn sample_slice_faults(
    fault: &FaultPlan,
    actor: usize,
    batch_seq: u64,
    transfers: u64,
) -> SliceFaults {
    let mut out = SliceFaults::default();
    if fault.dead_mask != 0 {
        out.dead = true;
        return out;
    }
    if !fault.is_active() {
        return out;
    }
    const MAX_SAMPLED: u64 = 2_048;
    let sampled = transfers.clamp(1, MAX_SAMPLED);
    let scale = transfers.max(1).div_ceil(sampled);
    let mut extra = 0u64;
    for t in 0..sampled {
        let seq = batch_seq.wrapping_mul(0xF_4243).wrapping_add(t);
        extra += fault.dma_stall(actor, seq);
        let mut attempt = 0u32;
        while fault.dma_attempt_fails(actor, seq, attempt) {
            if attempt >= fault.retry.max_retries {
                out.exhausted = true;
                break;
            }
            extra += fault.retry.base_backoff_cycles << attempt;
            out.dma_retries += 1;
            attempt += 1;
        }
        if fault.msg_dropped(actor, actor ^ 1, seq) {
            out.dropped_msgs += 1;
        }
    }
    // A handful of nominal supersteps per batch pick up CPE stalls.
    for s in 0..8 {
        extra += fault.cpe_stall(actor, batch_seq.wrapping_mul(8).wrapping_add(s));
    }
    out.extra_cycles = extra.saturating_mul(scale);
    out
}

/// Splits convolutions across core groups.
#[derive(Clone, Copy, Debug)]
pub struct ShardedDispatcher {
    pub chip: ChipSpec,
    /// Core groups to shard over (1..=chip.core_groups).
    pub cgs: usize,
    /// Execution context shared by every batch this dispatcher runs: the
    /// per-CG slices of all requests execute on this one worker pool.
    pub rt: &'static sw_runtime::ExecutionContext,
}

/// Timing of one dispatched batch.
#[derive(Clone, Copy, Debug)]
pub struct BatchTiming {
    /// Requests in the batch.
    pub requests: usize,
    /// Chip wall cycles for the whole batch: per-request slice cycles
    /// summed, plus one launch overhead.
    pub wall_cycles: u64,
    /// Wall time in µs of simulated time.
    pub wall_us: u64,
    /// Total flops across requests and CGs.
    pub total_flops: u64,
}

impl BatchTiming {
    /// Chip-level Gflops sustained over the batch.
    pub fn gflops_chip(&self, clock_ghz: f64) -> f64 {
        if self.wall_cycles == 0 {
            return 0.0;
        }
        let secs = self.wall_cycles as f64 / (clock_ghz * 1e9);
        self.total_flops as f64 / secs / 1e9
    }
}

impl ShardedDispatcher {
    pub fn new(chip: ChipSpec, cgs: usize) -> Result<Self, SwdnnError> {
        if cgs < 1 || cgs > chip.core_groups {
            return Err(SwdnnError::ShapeMismatch {
                expected: format!("between 1 and {} core groups", chip.core_groups),
                got: format!("{cgs} core groups"),
            });
        }
        Ok(Self {
            chip,
            cgs,
            rt: sw_runtime::global(),
        })
    }

    /// Run every batch on an explicit [`sw_runtime::ExecutionContext`].
    pub fn on_runtime(mut self, rt: &'static sw_runtime::ExecutionContext) -> Self {
        self.rt = rt;
        self
    }

    /// The per-CG slice of `shape`: same batch/channels, `ro / cgs` output
    /// rows. Errors when the rows don't divide.
    pub fn slice_shape(&self, shape: &ConvShape) -> Result<ConvShape, SwdnnError> {
        Self::slice_shape_for(shape, self.cgs)
    }

    /// [`ShardedDispatcher::slice_shape`] for an explicit shard width —
    /// the fault-tolerant path re-slices on whatever subset of CGs is
    /// currently healthy.
    pub fn slice_shape_for(shape: &ConvShape, cgs: usize) -> Result<ConvShape, SwdnnError> {
        if cgs == 0 || !shape.ro.is_multiple_of(cgs) {
            return Err(SwdnnError::ShapeMismatch {
                expected: format!("output rows divisible by {cgs} core groups"),
                got: format!("ro = {}", shape.ro),
            });
        }
        Ok(ConvShape {
            ro: shape.ro / cgs,
            ..*shape
        })
    }

    /// Account a batch of `requests` same-shape convolutions without
    /// simulating: per-slice timing is served by `cache` (one simulation on
    /// the first encounter of the slice shape, lookups after).
    pub fn time_batch(
        &self,
        cache: &PlanCache,
        shape: &ConvShape,
        requests: usize,
        forced: Option<PlanKind>,
    ) -> Result<BatchTiming, SwdnnError> {
        self.time_batch_for(cache, shape, requests, forced, self.cgs, self.chip)
    }

    /// [`ShardedDispatcher::time_batch`] generalized over shard width and
    /// chip: the fault-tolerant engine accounts rerouted batches on however
    /// many CGs survive, and fallback batches on the degraded 4×4 mesh.
    pub fn time_batch_for(
        &self,
        cache: &PlanCache,
        shape: &ConvShape,
        requests: usize,
        forced: Option<PlanKind>,
        cgs: usize,
        chip: ChipSpec,
    ) -> Result<BatchTiming, SwdnnError> {
        let slice = Self::slice_shape_for(shape, cgs)?;
        let cached = cache.plan_on(self.rt, &chip, &slice, forced)?;
        let n = requests as u64;
        // Each request's slices run concurrently across CGs (wall = slice
        // cycles); requests within the batch run back-to-back; the MPE
        // launch overhead is paid once per batch — the amortization that
        // makes batching worth the queueing delay.
        let wall_cycles = n * cached.timing.cycles + LAUNCH_OVERHEAD_CYCLES;
        let wall_us = (chip.cycles_to_seconds(wall_cycles) * 1e6).ceil() as u64;
        Ok(BatchTiming {
            requests,
            wall_cycles,
            wall_us,
            total_flops: n * shape.flops(),
        })
    }

    /// Execute one convolution row-sharded across the CGs, returning the
    /// stitched output and the multi-CG wall cycles.
    ///
    /// Each CG g computes output rows `[g·sro, (g+1)·sro)`, reading input
    /// rows `[g·sro, g·sro + sro + kr − 1)` — its slice plus the halo. Row
    /// r of the output depends only on input rows `[r, r + kr)` with the
    /// same reduction order the unsharded plan uses, so the stitched
    /// result is bit-identical to an unsharded run of the same plan
    /// family.
    pub fn run(
        &self,
        shape: &ConvShape,
        input: &Tensor4<f64>,
        filter: &Tensor4<f64>,
    ) -> Result<(Tensor4<f64>, u64), SwdnnError> {
        let slice = self.slice_shape(shape)?;
        if input.shape() != shape.input_shape() {
            return Err(SwdnnError::ShapeMismatch {
                expected: format!("{:?}", shape.input_shape()),
                got: format!("{:?}", input.shape()),
            });
        }
        let sro = slice.ro;
        let sri = slice.ri();
        let results = run_multi_cg_on(self.rt, self.cgs, |g| {
            let row0 = g * sro;
            // Copy this CG's input rows (slice + halo) into a dense slice
            // tensor — the private per-CG memory segment of §III-D.
            let mut sliced = Tensor4::zeros(slice.input_shape(), Layout::Nchw);
            for b in 0..slice.batch {
                for ni in 0..slice.ni {
                    for r in 0..sri {
                        for c in 0..slice.ci() {
                            sliced.set(b, ni, r, c, input.get(b, ni, row0 + r, c));
                        }
                    }
                }
            }
            let run = Conv2d::new(slice).and_then(|conv| {
                conv.on_chip(self.chip)
                    .on_runtime(self.rt)
                    .forward(&sliced, filter)
            });
            match run {
                Ok(run) => (run.timing.stats, Ok((g, run.output))),
                Err(e) => (sw_sim::CgStats::default(), Err(e)),
            }
        });
        let (report, outputs) = results;
        let mut stitched = Tensor4::zeros(shape.output_shape(), Layout::Nchw);
        for out in outputs {
            let (g, out) = out?;
            let row0 = g * sro;
            for b in 0..shape.batch {
                for no in 0..shape.no {
                    for r in 0..sro {
                        for c in 0..shape.co {
                            stitched.set(b, no, row0 + r, c, out.get(b, no, r, c));
                        }
                    }
                }
            }
        }
        Ok((stitched, report.wall_cycles))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_tensor::conv2d_ref;
    use sw_tensor::init::lattice_tensor;

    fn shape() -> ConvShape {
        // ro = 8 divides across 4 CGs.
        ConvShape::new(16, 8, 8, 8, 8, 3, 3)
    }

    #[test]
    fn sharded_output_is_bit_identical_to_reference_and_unsharded() {
        let shape = shape();
        let d = ShardedDispatcher::new(ChipSpec::sw26010(), 4).unwrap();
        let input = lattice_tensor(shape.input_shape(), Layout::Nchw, 61);
        let filter = lattice_tensor(shape.filter_shape(), Layout::Nchw, 62);
        let (sharded, wall) = d.run(&shape, &input, &filter).unwrap();
        let unsharded = Conv2d::new(shape)
            .unwrap()
            .forward(&input, &filter)
            .unwrap();
        assert_eq!(sharded.max_abs_diff(&unsharded.output), 0.0);
        let reference = conv2d_ref(shape, &input, &filter);
        assert_eq!(sharded.max_abs_diff(&reference), 0.0);
        assert!(wall > 0);
    }

    #[test]
    fn indivisible_rows_error_cleanly() {
        let d = ShardedDispatcher::new(ChipSpec::sw26010(), 4).unwrap();
        let odd = ConvShape::new(16, 8, 8, 6, 8, 3, 3);
        assert!(matches!(
            d.slice_shape(&odd),
            Err(SwdnnError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn invalid_cg_counts_are_rejected() {
        let chip = ChipSpec::sw26010();
        assert!(ShardedDispatcher::new(chip, 0).is_err());
        assert!(ShardedDispatcher::new(chip, chip.core_groups + 1).is_err());
    }

    #[test]
    fn effective_cg_count_respects_row_divisibility() {
        let s = shape(); // ro = 8
        assert_eq!(effective_cgs(&s, 4), 4);
        assert_eq!(effective_cgs(&s, 3), 2, "3 doesn't divide 8; 2 does");
        assert_eq!(effective_cgs(&s, 1), 1);
        assert_eq!(effective_cgs(&s, 0), 0, "no healthy CGs → fallback");
        let odd = ConvShape::new(16, 8, 8, 6, 8, 3, 3); // ro = 6
        assert_eq!(effective_cgs(&odd, 4), 3);
    }

    #[test]
    fn fault_sampling_is_deterministic_and_inert_at_zero_rates() {
        let quiet = FaultPlan::none(11);
        let out = sample_slice_faults(&quiet, 0, 0, 1_000);
        assert_eq!(out, SliceFaults::default());
        assert!(!out.failed());

        let noisy = FaultPlan::none(11)
            .with_dma_fail_rate(0.3)
            .with_dma_stalls(0.2, 64);
        let a = sample_slice_faults(&noisy, 2, 7, 500);
        let b = sample_slice_faults(&noisy, 2, 7, 500);
        assert_eq!(a, b, "same (plan, actor, batch) must replay identically");
        assert!(a.extra_cycles > 0, "30% fail rate over 500 transfers");
        let other_cg = sample_slice_faults(&noisy, 3, 7, 500);
        assert_ne!(a, other_cg, "CGs draw independent streams");
    }

    #[test]
    fn total_dma_loss_exhausts_and_dead_cpes_fail_permanently() {
        let lost = FaultPlan::none(5).with_dma_fail_rate(1.0);
        let out = sample_slice_faults(&lost, 0, 0, 16);
        assert!(out.exhausted && out.failed());
        assert!(out.extra_cycles > 0, "every retry's backoff is charged");

        let dead = FaultPlan::none(5).with_dead_cpe(1, 1);
        let out = sample_slice_faults(&dead, 0, 0, 16);
        assert!(out.dead && out.failed());
    }

    #[test]
    fn routed_timing_matches_full_width_when_all_cgs_survive() {
        let cache = PlanCache::new();
        let d = ShardedDispatcher::new(ChipSpec::sw26010(), 4).unwrap();
        let full = d.time_batch(&cache, &shape(), 4, None).unwrap();
        let routed = d
            .time_batch_for(&cache, &shape(), 4, None, 4, d.chip)
            .unwrap();
        assert_eq!(full.wall_cycles, routed.wall_cycles);
        // Narrower routing pays more cycles: each CG owns more rows.
        let narrow = d
            .time_batch_for(&cache, &shape(), 4, None, 2, d.chip)
            .unwrap();
        assert!(narrow.wall_cycles > full.wall_cycles);
    }

    #[test]
    fn batch_timing_amortizes_launch_overhead() {
        let cache = PlanCache::new();
        let d = ShardedDispatcher::new(ChipSpec::sw26010(), 4).unwrap();
        let one = d.time_batch(&cache, &shape(), 1, None).unwrap();
        let eight = d.time_batch(&cache, &shape(), 8, None).unwrap();
        let per_req_batched = eight.wall_cycles as f64 / 8.0;
        assert!(
            per_req_batched < one.wall_cycles as f64,
            "batched per-request cost {per_req_batched} vs solo {}",
            one.wall_cycles
        );
        assert_eq!(eight.total_flops, 8 * shape().flops());
        assert!(eight.gflops_chip(d.chip.clock_ghz) > 0.0);
        // Second accounting of the same shape is pure cache hits.
        let s = cache.stats();
        assert!(s.plan_hits >= 1);
        assert_eq!(s.plan_misses, 1);
    }
}
