//! Sharded batch dispatch across the simulated core groups (§III-D).
//!
//! The paper partitions output images along the row dimension and gives
//! each of the SW26010's four CGs one slice; the serving engine reuses that
//! scheme per *batch*: every request's convolution is row-split into `cgs`
//! slices executed on one shared [`sw_runtime::ExecutionContext`]
//! ([`sw_sim::run_multi_cg_on`]) — no per-request thread fan-out — and the
//! batch's requests stream back-to-back so the fixed kernel-launch
//! overhead amortizes over the whole batch instead of being paid per
//! request.
//!
//! Two paths share the slicing logic:
//!
//! * [`ShardedDispatcher::run`] — the real-arithmetic path: builds each
//!   CG's input slice (its output rows plus the `kr - 1` halo rows),
//!   executes the plan per slice, and stitches the output. Output rows are
//!   computed with exactly the per-row arithmetic of the unsharded plan,
//!   so the stitched tensor is bit-identical to an unsharded run.
//! * [`ShardedDispatcher::time_batch`] — the accounting path the serving
//!   engine uses: per-slice timing comes from the [`PlanCache`], so after
//!   warmup a batch costs two map lookups, not a simulation.

use super::plan_cache::PlanCache;
use crate::conv::Conv2d;
use crate::error::SwdnnError;
use sw_perfmodel::{ChipSpec, PlanKind};
use sw_sim::chip::LAUNCH_OVERHEAD_CYCLES;
use sw_sim::run_multi_cg_on;
use sw_tensor::{ConvShape, Layout, Tensor4};

/// Splits convolutions across core groups.
#[derive(Clone, Copy, Debug)]
pub struct ShardedDispatcher {
    pub chip: ChipSpec,
    /// Core groups to shard over (1..=chip.core_groups).
    pub cgs: usize,
    /// Execution context shared by every batch this dispatcher runs: the
    /// per-CG slices of all requests execute on this one worker pool.
    pub rt: &'static sw_runtime::ExecutionContext,
}

/// Timing of one dispatched batch.
#[derive(Clone, Copy, Debug)]
pub struct BatchTiming {
    /// Requests in the batch.
    pub requests: usize,
    /// Chip wall cycles for the whole batch: per-request slice cycles
    /// summed, plus one launch overhead.
    pub wall_cycles: u64,
    /// Wall time in µs of simulated time.
    pub wall_us: u64,
    /// Total flops across requests and CGs.
    pub total_flops: u64,
}

impl BatchTiming {
    /// Chip-level Gflops sustained over the batch.
    pub fn gflops_chip(&self, clock_ghz: f64) -> f64 {
        if self.wall_cycles == 0 {
            return 0.0;
        }
        let secs = self.wall_cycles as f64 / (clock_ghz * 1e9);
        self.total_flops as f64 / secs / 1e9
    }
}

impl ShardedDispatcher {
    pub fn new(chip: ChipSpec, cgs: usize) -> Result<Self, SwdnnError> {
        if cgs < 1 || cgs > chip.core_groups {
            return Err(SwdnnError::ShapeMismatch {
                expected: format!("between 1 and {} core groups", chip.core_groups),
                got: format!("{cgs} core groups"),
            });
        }
        Ok(Self {
            chip,
            cgs,
            rt: sw_runtime::global(),
        })
    }

    /// Run every batch on an explicit [`sw_runtime::ExecutionContext`].
    pub fn on_runtime(mut self, rt: &'static sw_runtime::ExecutionContext) -> Self {
        self.rt = rt;
        self
    }

    /// The per-CG slice of `shape`: same batch/channels, `ro / cgs` output
    /// rows. Errors when the rows don't divide.
    pub fn slice_shape(&self, shape: &ConvShape) -> Result<ConvShape, SwdnnError> {
        if !shape.ro.is_multiple_of(self.cgs) {
            return Err(SwdnnError::ShapeMismatch {
                expected: format!("output rows divisible by {} core groups", self.cgs),
                got: format!("ro = {}", shape.ro),
            });
        }
        Ok(ConvShape {
            ro: shape.ro / self.cgs,
            ..*shape
        })
    }

    /// Account a batch of `requests` same-shape convolutions without
    /// simulating: per-slice timing is served by `cache` (one simulation on
    /// the first encounter of the slice shape, lookups after).
    pub fn time_batch(
        &self,
        cache: &PlanCache,
        shape: &ConvShape,
        requests: usize,
        forced: Option<PlanKind>,
    ) -> Result<BatchTiming, SwdnnError> {
        let slice = self.slice_shape(shape)?;
        let cached = cache.plan_on(self.rt, &self.chip, &slice, forced)?;
        let n = requests as u64;
        // Each request's slices run concurrently across CGs (wall = slice
        // cycles); requests within the batch run back-to-back; the MPE
        // launch overhead is paid once per batch — the amortization that
        // makes batching worth the queueing delay.
        let wall_cycles = n * cached.timing.cycles + LAUNCH_OVERHEAD_CYCLES;
        let wall_us = (self.chip.cycles_to_seconds(wall_cycles) * 1e6).ceil() as u64;
        Ok(BatchTiming {
            requests,
            wall_cycles,
            wall_us,
            total_flops: n * shape.flops(),
        })
    }

    /// Execute one convolution row-sharded across the CGs, returning the
    /// stitched output and the multi-CG wall cycles.
    ///
    /// Each CG g computes output rows `[g·sro, (g+1)·sro)`, reading input
    /// rows `[g·sro, g·sro + sro + kr − 1)` — its slice plus the halo. Row
    /// r of the output depends only on input rows `[r, r + kr)` with the
    /// same reduction order the unsharded plan uses, so the stitched
    /// result is bit-identical to an unsharded run of the same plan
    /// family.
    pub fn run(
        &self,
        shape: &ConvShape,
        input: &Tensor4<f64>,
        filter: &Tensor4<f64>,
    ) -> Result<(Tensor4<f64>, u64), SwdnnError> {
        let slice = self.slice_shape(shape)?;
        if input.shape() != shape.input_shape() {
            return Err(SwdnnError::ShapeMismatch {
                expected: format!("{:?}", shape.input_shape()),
                got: format!("{:?}", input.shape()),
            });
        }
        let sro = slice.ro;
        let sri = slice.ri();
        let results = run_multi_cg_on(self.rt, self.cgs, |g| {
            let row0 = g * sro;
            // Copy this CG's input rows (slice + halo) into a dense slice
            // tensor — the private per-CG memory segment of §III-D.
            let mut sliced = Tensor4::zeros(slice.input_shape(), Layout::Nchw);
            for b in 0..slice.batch {
                for ni in 0..slice.ni {
                    for r in 0..sri {
                        for c in 0..slice.ci() {
                            sliced.set(b, ni, r, c, input.get(b, ni, row0 + r, c));
                        }
                    }
                }
            }
            let run = Conv2d::new(slice).and_then(|conv| {
                conv.on_chip(self.chip)
                    .on_runtime(self.rt)
                    .forward(&sliced, filter)
            });
            match run {
                Ok(run) => (run.timing.stats, Ok((g, run.output))),
                Err(e) => (sw_sim::CgStats::default(), Err(e)),
            }
        });
        let (report, outputs) = results;
        let mut stitched = Tensor4::zeros(shape.output_shape(), Layout::Nchw);
        for out in outputs {
            let (g, out) = out?;
            let row0 = g * sro;
            for b in 0..shape.batch {
                for no in 0..shape.no {
                    for r in 0..sro {
                        for c in 0..shape.co {
                            stitched.set(b, no, row0 + r, c, out.get(b, no, r, c));
                        }
                    }
                }
            }
        }
        Ok((stitched, report.wall_cycles))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_tensor::conv2d_ref;
    use sw_tensor::init::lattice_tensor;

    fn shape() -> ConvShape {
        // ro = 8 divides across 4 CGs.
        ConvShape::new(16, 8, 8, 8, 8, 3, 3)
    }

    #[test]
    fn sharded_output_is_bit_identical_to_reference_and_unsharded() {
        let shape = shape();
        let d = ShardedDispatcher::new(ChipSpec::sw26010(), 4).unwrap();
        let input = lattice_tensor(shape.input_shape(), Layout::Nchw, 61);
        let filter = lattice_tensor(shape.filter_shape(), Layout::Nchw, 62);
        let (sharded, wall) = d.run(&shape, &input, &filter).unwrap();
        let unsharded = Conv2d::new(shape)
            .unwrap()
            .forward(&input, &filter)
            .unwrap();
        assert_eq!(sharded.max_abs_diff(&unsharded.output), 0.0);
        let reference = conv2d_ref(shape, &input, &filter);
        assert_eq!(sharded.max_abs_diff(&reference), 0.0);
        assert!(wall > 0);
    }

    #[test]
    fn indivisible_rows_error_cleanly() {
        let d = ShardedDispatcher::new(ChipSpec::sw26010(), 4).unwrap();
        let odd = ConvShape::new(16, 8, 8, 6, 8, 3, 3);
        assert!(matches!(
            d.slice_shape(&odd),
            Err(SwdnnError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn invalid_cg_counts_are_rejected() {
        let chip = ChipSpec::sw26010();
        assert!(ShardedDispatcher::new(chip, 0).is_err());
        assert!(ShardedDispatcher::new(chip, chip.core_groups + 1).is_err());
    }

    #[test]
    fn batch_timing_amortizes_launch_overhead() {
        let cache = PlanCache::new();
        let d = ShardedDispatcher::new(ChipSpec::sw26010(), 4).unwrap();
        let one = d.time_batch(&cache, &shape(), 1, None).unwrap();
        let eight = d.time_batch(&cache, &shape(), 8, None).unwrap();
        let per_req_batched = eight.wall_cycles as f64 / 8.0;
        assert!(
            per_req_batched < one.wall_cycles as f64,
            "batched per-request cost {per_req_batched} vs solo {}",
            one.wall_cycles
        );
        assert_eq!(eight.total_flops, 8 * shape().flops());
        assert!(eight.gflops_chip(d.chip.clock_ghz) > 0.0);
        // Second accounting of the same shape is pure cache hits.
        let s = cache.stats();
        assert!(s.plan_hits >= 1);
        assert_eq!(s.plan_misses, 1);
    }
}
