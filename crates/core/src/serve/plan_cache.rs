//! Shape-keyed memoization of plan selection, timing, and autotuning.
//!
//! Every `Conv2d::new` walks model selection and every `autotune` re-times
//! each candidate from scratch — fine for one-shot benches, hostile to a
//! serving path that sees the same handful of shapes on every request. The
//! cache keys on `(shape, forced kind, schedule)` and stores everything
//! the executor needs to *account* a request without re-simulating it:
//! the resolved plan's identity, its executed blocking, the sampled
//! full-shape timing, and the analytic model estimate. Hit/miss counters
//! ride on the underlying [`ShardedMap`]s.
//!
//! ## Cache-key audit for the schedule dimension
//!
//! The schedule search ([`crate::tune`]) introduced a third way to arrive
//! at a plan besides "automatic" and "forced kind": an explicit
//! [`Schedule`]. Two schedules of the *same kind* (say, image-size-aware
//! with `b_co = 16` vs `b_co = 8`) are different plans with different
//! timings — under the old `(shape, forced, mesh_dim)` key a forced-kind
//! entry cached before a search ran would shadow a better searched
//! schedule of that kind forever. The key therefore carries the schedule,
//! and [`PlanCache::install_searched`] explicitly *replaces* the
//! automatic entry with the search winner. The process-wide
//! `kernel_cost` tile cache needs no such widening: its `(n, reordered)`
//! key prices the inner kernel by tile shape only, which every schedule
//! maps through — see `tile_cache_key_is_schedule_independent` below.

use super::sharded_map::ShardedMap;
use crate::conv::Conv2d;
use crate::error::SwdnnError;
use crate::plans::{lower_schedule, LowerCtx, PlanTiming, Schedule};
use crate::tune::{autotune_on, TuneReport};
use std::sync::Arc;
use sw_perfmodel::{Blocking, ChipSpec, ConvPerfModel, PerfEstimate, PlanKind};
use sw_tensor::ConvShape;

/// Cache key: the shape, any forced plan kind (forcing changes the
/// resolved plan, so it must not share an entry with automatic selection),
/// the chip's mesh dimension — the fault-tolerant dispatcher re-plans
/// on the degraded 4×4 mesh, and a degraded-chip timing must never be
/// served where a full 8×8 timing was asked for (or vice versa) — and
/// the explicit schedule when the entry came from the schedule search
/// rather than from plan resolution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PlanKey {
    pub shape: ConvShape,
    pub forced: Option<PlanKind>,
    pub mesh_dim: usize,
    pub schedule: Option<Schedule>,
}

/// Key for memoized autotune sweeps. The sweep simulates candidates on a
/// concrete mesh, so (like plan entries) a degraded 4×4 report must not
/// answer for the full 8×8 chip — keying on the shape alone did exactly
/// that.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TuneKey {
    pub shape: ConvShape,
    pub mesh_dim: usize,
}

/// Everything memoized about one resolved plan.
#[derive(Clone, Debug)]
pub struct CachedPlan {
    pub kind: PlanKind,
    /// The blocking the plan actually executes with
    /// ([`crate::plans::ConvPlan::blocking`]).
    pub blocking: Blocking,
    pub plan_name: String,
    /// The schedule this entry lowers, when it came from the search.
    pub schedule: Option<Schedule>,
    /// Sampled full-shape timing on one CG.
    pub timing: PlanTiming,
    /// Analytic model estimate for the executed (kind, blocking).
    pub model: PerfEstimate,
}

/// Aggregate cache observability, flattened for counters/logs.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    pub plan_hits: u64,
    pub plan_misses: u64,
    pub plan_entries: usize,
    pub tune_hits: u64,
    pub tune_misses: u64,
    /// Process-wide tile-profile cache ([`crate::kernel_cost`]).
    pub tile_hits: u64,
    pub tile_misses: u64,
}

impl CacheStats {
    /// Plan-cache hit rate (the serving SLO metric).
    pub fn plan_hit_rate(&self) -> f64 {
        let total = self.plan_hits + self.plan_misses;
        if total == 0 {
            return 0.0;
        }
        self.plan_hits as f64 / total as f64
    }
}

/// The concurrent plan/tune cache one serving engine owns.
#[derive(Debug, Default)]
pub struct PlanCache {
    plans: ShardedMap<PlanKey, Arc<CachedPlan>>,
    tunes: ShardedMap<TuneKey, Arc<TuneReport>>,
}

impl PlanCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolve (and time) the plan for `shape` on `chip`, memoized.
    ///
    /// The first call per key pays plan resolution plus the sampled
    /// full-shape timing; every later call is a map lookup.
    pub fn plan(
        &self,
        chip: &ChipSpec,
        shape: &ConvShape,
        forced: Option<PlanKind>,
    ) -> Result<Arc<CachedPlan>, SwdnnError> {
        self.plan_on(sw_runtime::global(), chip, shape, forced)
    }

    /// [`PlanCache::plan`] with the warmup simulation pinned to an explicit
    /// execution context (the dispatcher passes its shared pool here).
    pub fn plan_on(
        &self,
        rt: &'static sw_runtime::ExecutionContext,
        chip: &ChipSpec,
        shape: &ConvShape,
        forced: Option<PlanKind>,
    ) -> Result<Arc<CachedPlan>, SwdnnError> {
        let key = PlanKey {
            shape: *shape,
            forced,
            mesh_dim: chip.mesh_dim,
            schedule: None,
        };
        self.plans.get_or_insert_with(&key, || {
            let mut conv = Conv2d::new(*shape)?.on_chip(*chip).on_runtime(rt);
            if let Some(kind) = forced {
                conv = conv.with_plan(kind);
            }
            let plan = conv.plan();
            plan.supports(shape)?;
            let timing = plan.time_full_shape(shape)?;
            let blocking = plan.blocking(shape);
            Ok(Arc::new(Self::entry(
                shape,
                plan.kind(),
                blocking,
                plan.name().to_string(),
                None,
                timing,
            )))
        })
    }

    /// Resolve (and time) an explicit searched schedule, memoized under
    /// its own key — distinct from automatic and forced-kind entries, so
    /// a pre-existing forced entry of the same kind can never shadow it.
    pub fn plan_scheduled(
        &self,
        rt: &'static sw_runtime::ExecutionContext,
        chip: &ChipSpec,
        shape: &ConvShape,
        schedule: &Schedule,
    ) -> Result<Arc<CachedPlan>, SwdnnError> {
        let key = PlanKey {
            shape: *shape,
            forced: None,
            mesh_dim: chip.mesh_dim,
            schedule: Some(*schedule),
        };
        self.plans.get_or_insert_with(&key, || {
            let ctx = LowerCtx {
                chip: *chip,
                fault: None,
                rt,
            };
            let plan = lower_schedule(schedule, shape, &ctx)?;
            let timing = plan.time_full_shape(shape)?;
            let blocking = plan.blocking(shape);
            Ok(Arc::new(Self::entry(
                shape,
                plan.kind(),
                blocking,
                plan.name().to_string(),
                Some(*schedule),
                timing,
            )))
        })
    }

    /// Promote a search winner to the automatic entry for its shape: the
    /// entry `plan()` serves with `forced = None` is *replaced* by the
    /// searched schedule's plan. Without this, an automatic (or stale)
    /// entry cached before the search ran would keep shadowing the
    /// better searched schedule on every subsequent request.
    pub fn install_searched(
        &self,
        rt: &'static sw_runtime::ExecutionContext,
        chip: &ChipSpec,
        shape: &ConvShape,
        report: &TuneReport,
    ) -> Result<Arc<CachedPlan>, SwdnnError> {
        let best = report.best().schedule;
        let winner = self.plan_scheduled(rt, chip, shape, &best)?;
        let auto_key = PlanKey {
            shape: *shape,
            forced: None,
            mesh_dim: chip.mesh_dim,
            schedule: None,
        };
        self.plans.insert(auto_key, Arc::clone(&winner));
        Ok(winner)
    }

    fn entry(
        shape: &ConvShape,
        kind: PlanKind,
        blocking: Blocking,
        plan_name: String,
        schedule: Option<Schedule>,
        timing: PlanTiming,
    ) -> CachedPlan {
        let model = ConvPerfModel::default().estimate(
            kind,
            blocking,
            shape.batch,
            shape.ni,
            shape.no,
            shape.kc,
        );
        CachedPlan {
            kind,
            blocking,
            plan_name,
            schedule,
            timing,
            model,
        }
    }

    /// Memoized [`autotune_on`]: the full candidate sweep runs once per
    /// `(shape, mesh_dim)`.
    pub fn autotune(
        &self,
        chip: &ChipSpec,
        shape: &ConvShape,
    ) -> Result<Arc<TuneReport>, SwdnnError> {
        let key = TuneKey {
            shape: *shape,
            mesh_dim: chip.mesh_dim,
        };
        self.tunes
            .get_or_insert_with(&key, || Ok(Arc::new(autotune_on(chip, shape)?)))
    }

    pub fn stats(&self) -> CacheStats {
        let (tile_hits, tile_misses) = crate::kernel_cost::tile_cache_stats();
        CacheStats {
            plan_hits: self.plans.hits(),
            plan_misses: self.plans.misses(),
            plan_entries: self.plans.len(),
            tune_hits: self.tunes.hits(),
            tune_misses: self.tunes.misses(),
            tile_hits,
            tile_misses,
        }
    }

    /// Zero hit/miss counters (post-warmup measurement windows) while
    /// keeping the cached entries hot.
    pub fn reset_counters(&self) {
        self.plans.reset_counters();
        self.tunes.reset_counters();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> ConvShape {
        ConvShape::new(32, 16, 16, 8, 8, 3, 3)
    }

    #[test]
    fn repeated_plan_lookups_hit_and_are_identical() {
        let cache = PlanCache::new();
        let chip = ChipSpec::sw26010();
        let a = cache.plan(&chip, &shape(), None).unwrap();
        let b = cache.plan(&chip, &shape(), None).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must return the entry");
        assert_eq!(a.timing.cycles, b.timing.cycles);
        let s = cache.stats();
        assert_eq!((s.plan_hits, s.plan_misses), (1, 1));
        assert_eq!(s.plan_entries, 1);
        assert_eq!(s.plan_hit_rate(), 0.5);
    }

    #[test]
    fn forced_kind_gets_its_own_entry() {
        let cache = PlanCache::new();
        let chip = ChipSpec::sw26010();
        let auto = cache.plan(&chip, &shape(), None).unwrap();
        let forced = cache
            .plan(&chip, &shape(), Some(PlanKind::BatchSizeAware))
            .unwrap();
        assert_eq!(forced.kind, PlanKind::BatchSizeAware);
        assert_eq!(cache.stats().plan_entries, 2);
        assert_eq!(forced.blocking.b_b, shape().batch);
        // The auto entry must be untouched by the forced lookup.
        assert_eq!(
            auto.timing.cycles,
            cache.plan(&chip, &shape(), None).unwrap().timing.cycles
        );
    }

    #[test]
    fn unsupported_forced_plans_error_and_are_not_cached() {
        let cache = PlanCache::new();
        let chip = ChipSpec::sw26010();
        // Channels not a multiple of 8: mesh plans refuse.
        let bad = ConvShape::new(32, 7, 7, 8, 8, 3, 3);
        let err = cache.plan(&chip, &bad, Some(PlanKind::ImageSizeAware));
        assert!(err.is_err());
        assert_eq!(cache.stats().plan_entries, 0);
    }

    #[test]
    fn degraded_mesh_entries_do_not_collide_with_full_mesh() {
        let cache = PlanCache::new();
        let chip = ChipSpec::sw26010();
        let degraded = crate::resilient::ResilientExecutor::degraded_chip(chip);
        let full = cache.plan(&chip, &shape(), None).unwrap();
        let masked = cache.plan(&degraded, &shape(), None).unwrap();
        assert_eq!(
            cache.stats().plan_entries,
            2,
            "mesh_dim must be part of the key"
        );
        assert!(!Arc::ptr_eq(&full, &masked));
        assert_ne!(
            full.timing.cycles, masked.timing.cycles,
            "a 16-CPE timing served for the 64-CPE mesh would corrupt accounting"
        );
    }

    #[test]
    fn forced_entry_does_not_shadow_a_searched_schedule() {
        // The shadowing bug the schedule key dimension fixes: a forced
        // image-size-aware entry lands in the cache first; the search
        // then finds a *different* image-size-aware blocking. Under the
        // old `(shape, forced, mesh_dim)` key the searched plan had no
        // distinct slot, so the stale entry's blocking/timing answered
        // forever.
        let cache = PlanCache::new();
        let chip = ChipSpec::sw26010();
        let rt = sw_runtime::global();
        let forced = cache
            .plan(&chip, &shape(), Some(PlanKind::ImageSizeAware))
            .unwrap();
        let searched_sched = Schedule::image_aware(32, 4);
        assert_ne!(
            forced.blocking,
            Blocking { b_b: 32, b_co: 4 },
            "test needs the forced blocking to differ from the searched one"
        );
        let searched = cache
            .plan_scheduled(rt, &chip, &shape(), &searched_sched)
            .unwrap();
        assert_eq!(searched.blocking, Blocking { b_b: 32, b_co: 4 });
        assert_eq!(searched.schedule, Some(searched_sched));
        assert_eq!(
            cache.stats().plan_entries,
            2,
            "the searched schedule must own its own entry"
        );
        // And the forced entry is still served unchanged for forced asks.
        let again = cache
            .plan(&chip, &shape(), Some(PlanKind::ImageSizeAware))
            .unwrap();
        assert!(Arc::ptr_eq(&forced, &again));
    }

    #[test]
    fn install_searched_replaces_the_stale_automatic_entry() {
        let cache = PlanCache::new();
        let chip = ChipSpec::sw26010();
        let rt = sw_runtime::global();
        // An automatic entry cached before any search ran.
        let stale = cache.plan(&chip, &shape(), None).unwrap();
        let report = cache.autotune(&chip, &shape()).unwrap();
        let winner = cache
            .install_searched(rt, &chip, &shape(), &report)
            .unwrap();
        assert!(
            winner.timing.cycles <= stale.timing.cycles,
            "search winner ({}) must be no slower than the automatic pick ({})",
            winner.timing.cycles,
            stale.timing.cycles
        );
        // The automatic slot now serves the searched winner.
        let served = cache.plan(&chip, &shape(), None).unwrap();
        assert!(Arc::ptr_eq(&served, &winner));
        assert_eq!(served.schedule, Some(report.best().schedule));
    }

    #[test]
    fn autotune_is_memoized() {
        let cache = PlanCache::new();
        let chip = ChipSpec::sw26010();
        let a = cache.autotune(&chip, &shape()).unwrap();
        let b = cache.autotune(&chip, &shape()).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!((s.tune_hits, s.tune_misses), (1, 1));
    }

    #[test]
    fn tune_reports_key_on_the_mesh_dimension() {
        // The sweep simulates real meshes; a degraded 4×4 report served
        // for the full 8×8 chip would misrank every candidate. The old
        // shape-only key did exactly that.
        let cache = PlanCache::new();
        let chip = ChipSpec::sw26010();
        let degraded = crate::resilient::ResilientExecutor::degraded_chip(chip);
        let full = cache.autotune(&chip, &shape()).unwrap();
        let masked = cache.autotune(&degraded, &shape()).unwrap();
        assert!(!Arc::ptr_eq(&full, &masked), "distinct entries per mesh");
        assert_ne!(
            full.best().cycles,
            masked.best().cycles,
            "16-CPE sweep timings must not answer for the 64-CPE mesh"
        );
    }

    #[test]
    fn tile_cache_key_is_schedule_independent() {
        // Audit for the schedule dimension: the kernel_cost tile cache
        // keys on `(n, reordered)` — the inner-kernel trip count and
        // kernel flavor. Every schedule prices its GEMM through the same
        // per-tile profiles, so two different schedules that produce the
        // same tile shape must (and do) share one entry; the cache needs
        // no schedule key.
        let a = crate::kernel_cost::tile_profile(2, true);
        let (_, misses_before) = crate::kernel_cost::tile_cache_stats();
        let b = crate::kernel_cost::tile_profile(2, true);
        let (_, misses_after) = crate::kernel_cost::tile_cache_stats();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(
            misses_before, misses_after,
            "same tile shape must hit regardless of which schedule asked"
        );
    }

    #[test]
    fn reset_counters_keeps_entries_hot() {
        let cache = PlanCache::new();
        let chip = ChipSpec::sw26010();
        cache.plan(&chip, &shape(), None).unwrap();
        cache.reset_counters();
        cache.plan(&chip, &shape(), None).unwrap();
        let s = cache.stats();
        assert_eq!((s.plan_hits, s.plan_misses), (1, 0));
        assert_eq!(s.plan_hit_rate(), 1.0);
    }
}
