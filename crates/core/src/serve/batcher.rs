//! Dynamic micro-batching of inference requests.
//!
//! Requests for the same convolution shape are coalesced into one batch so
//! the per-batch costs (kernel launch, plan lookup, DMA ramp) amortize.
//! Two triggers release a batch, whichever fires first:
//!
//! * **cap** — `max_batch` same-shape requests are queued;
//! * **deadline** — the oldest queued request has waited `deadline_us` of
//!   simulated time (bounding the latency a quiet shape can accumulate).
//!
//! The queue is bounded: [`MicroBatcher::push`] rejects with
//! [`SwdnnError::Overloaded`] at the limit instead of growing without
//! bound — under overload the engine degrades to explicit rejections the
//! client can act on, never to OOM.
//!
//! All time is the caller's logical clock (microseconds of simulated
//! time); the batcher imposes no clock of its own, which keeps the whole
//! serving engine deterministic and testable.

use crate::error::SwdnnError;
use std::collections::VecDeque;
use sw_tensor::ConvShape;

/// When a batch is released.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Release as soon as this many same-shape requests are queued.
    pub max_batch: usize,
    /// Release once the oldest queued request has waited this long (µs of
    /// simulated time).
    pub deadline_us: u64,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        Self {
            max_batch: 8,
            deadline_us: 2_000,
        }
    }
}

/// One queued inference request.
#[derive(Clone, Copy, Debug)]
pub struct QueuedRequest {
    pub id: u64,
    pub shape: ConvShape,
    /// Simulated arrival time, µs.
    pub arrival_us: u64,
}

/// A coalesced batch, ready for dispatch.
#[derive(Clone, Debug)]
pub struct Batch {
    pub shape: ConvShape,
    pub requests: Vec<QueuedRequest>,
    /// Why the batch was released (observability).
    pub trigger: BatchTrigger,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchTrigger {
    Cap,
    Deadline,
    /// Explicit flush (engine drain).
    Flush,
}

/// FIFO queue + coalescing logic.
#[derive(Debug)]
pub struct MicroBatcher {
    policy: BatchPolicy,
    limit: usize,
    queue: VecDeque<QueuedRequest>,
}

impl MicroBatcher {
    pub fn new(policy: BatchPolicy, queue_limit: usize) -> Self {
        Self {
            policy,
            limit: queue_limit.max(1),
            queue: VecDeque::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// Enqueue, or reject with [`SwdnnError::Overloaded`] at the limit.
    pub fn push(&mut self, req: QueuedRequest) -> Result<(), SwdnnError> {
        if self.queue.len() >= self.limit {
            return Err(SwdnnError::Overloaded {
                depth: self.queue.len(),
                limit: self.limit,
            });
        }
        self.queue.push_back(req);
        Ok(())
    }

    /// Release the next batch if either trigger fires at `now_us`.
    ///
    /// The batch takes the *oldest* request's shape and coalesces up to
    /// `max_batch` same-shape requests in FIFO order; other shapes keep
    /// their queue positions. A deadline release ships however many
    /// same-shape requests are present (possibly one).
    pub fn pop_batch(&mut self, now_us: u64) -> Option<Batch> {
        let oldest = self.queue.front()?;
        let shape = oldest.shape;
        let same_shape = self.queue.iter().filter(|r| r.shape == shape).count();
        let deadline_hit = now_us.saturating_sub(oldest.arrival_us) >= self.policy.deadline_us;
        let trigger = if same_shape >= self.policy.max_batch {
            BatchTrigger::Cap
        } else if deadline_hit {
            BatchTrigger::Deadline
        } else {
            return None;
        };
        Some(self.take_batch(shape, trigger))
    }

    /// Unconditionally release the oldest request's batch (drain path).
    pub fn flush(&mut self) -> Option<Batch> {
        let shape = self.queue.front()?.shape;
        Some(self.take_batch(shape, BatchTrigger::Flush))
    }

    /// Earliest deadline among queued requests — when the caller's clock
    /// should next wake the batcher if no cap release happens first.
    pub fn next_deadline_us(&self) -> Option<u64> {
        self.queue
            .front()
            .map(|r| r.arrival_us + self.policy.deadline_us)
    }

    fn take_batch(&mut self, shape: ConvShape, trigger: BatchTrigger) -> Batch {
        let mut requests = Vec::new();
        let mut rest = VecDeque::with_capacity(self.queue.len());
        for r in self.queue.drain(..) {
            if r.shape == shape && requests.len() < self.policy.max_batch {
                requests.push(r);
            } else {
                rest.push_back(r);
            }
        }
        self.queue = rest;
        Batch {
            shape,
            requests,
            trigger,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape_a() -> ConvShape {
        ConvShape::new(32, 16, 16, 8, 8, 3, 3)
    }

    fn shape_b() -> ConvShape {
        ConvShape::new(64, 16, 16, 8, 8, 3, 3)
    }

    fn req(id: u64, shape: ConvShape, at: u64) -> QueuedRequest {
        QueuedRequest {
            id,
            shape,
            arrival_us: at,
        }
    }

    #[test]
    fn cap_releases_exactly_max_batch() {
        let mut b = MicroBatcher::new(
            BatchPolicy {
                max_batch: 3,
                deadline_us: 1_000,
            },
            64,
        );
        for i in 0..4 {
            b.push(req(i, shape_a(), 0)).unwrap();
        }
        let batch = b.pop_batch(0).expect("cap trigger");
        assert_eq!(batch.trigger, BatchTrigger::Cap);
        assert_eq!(batch.requests.len(), 3);
        assert_eq!(
            batch.requests.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![0, 1, 2],
            "FIFO within the shape"
        );
        assert_eq!(b.len(), 1, "overflow request stays queued");
    }

    #[test]
    fn deadline_releases_a_partial_batch() {
        let mut b = MicroBatcher::new(
            BatchPolicy {
                max_batch: 8,
                deadline_us: 500,
            },
            64,
        );
        b.push(req(1, shape_a(), 100)).unwrap();
        assert!(b.pop_batch(100).is_none(), "neither trigger at arrival");
        assert!(b.pop_batch(599).is_none(), "1µs before the deadline");
        let batch = b.pop_batch(600).expect("deadline trigger");
        assert_eq!(batch.trigger, BatchTrigger::Deadline);
        assert_eq!(batch.requests.len(), 1);
        assert_eq!(b.next_deadline_us(), None);
    }

    #[test]
    fn mixed_shapes_keep_fifo_order() {
        let mut b = MicroBatcher::new(
            BatchPolicy {
                max_batch: 2,
                deadline_us: 1_000,
            },
            64,
        );
        b.push(req(1, shape_a(), 0)).unwrap();
        b.push(req(2, shape_b(), 0)).unwrap();
        b.push(req(3, shape_a(), 0)).unwrap();
        let batch = b.pop_batch(0).expect("shape A hits the cap");
        assert_eq!(batch.shape, shape_a());
        assert_eq!(
            batch.requests.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![1, 3]
        );
        // Shape B is now the oldest and releases on its deadline.
        let batch = b.pop_batch(1_000).expect("deadline for B");
        assert_eq!(batch.shape, shape_b());
        assert!(b.is_empty());
    }

    #[test]
    fn bounded_queue_rejects_with_overloaded() {
        let mut b = MicroBatcher::new(BatchPolicy::default(), 2);
        b.push(req(1, shape_a(), 0)).unwrap();
        b.push(req(2, shape_a(), 0)).unwrap();
        let err = b.push(req(3, shape_a(), 0)).unwrap_err();
        assert!(
            matches!(err, SwdnnError::Overloaded { depth: 2, limit: 2 }),
            "{err}"
        );
        // Draining makes room again.
        b.flush().unwrap();
        b.push(req(3, shape_a(), 0)).unwrap();
    }

    #[test]
    fn flush_drains_regardless_of_triggers() {
        let mut b = MicroBatcher::new(
            BatchPolicy {
                max_batch: 100,
                deadline_us: u64::MAX,
            },
            64,
        );
        b.push(req(1, shape_a(), 0)).unwrap();
        assert!(b.pop_batch(u64::MAX - 1).is_none());
        let batch = b.flush().expect("flush always releases");
        assert_eq!(batch.trigger, BatchTrigger::Flush);
        assert!(b.flush().is_none());
    }
}
