//! Dynamic micro-batching with priority tiers, per-request dispatch
//! deadlines, and admission control.
//!
//! Requests for the same convolution shape are coalesced into one batch so
//! the per-batch costs (kernel launch, plan lookup, DMA ramp) amortize.
//! Two triggers release a batch, whichever fires first:
//!
//! * **cap** — `max_batch` same-shape requests are queued;
//! * **deadline** — the oldest queued request has waited `deadline_us` of
//!   simulated time (bounding the latency a quiet shape can accumulate).
//!
//! Requests carry a [`Priority`] tier and the batcher keeps one FIFO per
//! tier. Releases prefer the high tier: the batch seed (the request whose
//! shape and age drive the triggers) is the oldest *high*-priority request
//! when any is queued, and same-shape low-priority requests only fill the
//! slots high traffic leaves free. When every request is high priority
//! (the default class) this degenerates to exactly the single-FIFO
//! behavior the closed-loop serve bench gates.
//!
//! The queue is bounded, and the bound is where admission control lives:
//!
//! * a **low**-priority push at the limit is rejected with
//!   [`SwdnnError::Overloaded`] carrying the queue depth and a
//!   retry-after hint: the time until the next deadline release *in the
//!   rejected request's own tier* (a shed Low request must not be told
//!   to retry on the High tier's sooner schedule);
//! * a **high**-priority push at the limit first tries to *evict the
//!   newest low-priority request* — shedding hits the low tier first, and
//!   the evicted request is returned to the caller so it can be accounted
//!   as shed, never silently lost. Only when the queue is wall-to-wall
//!   high-priority work is the high push itself rejected.
//!
//! Requests may also carry an absolute *dispatch deadline*
//! ([`QueuedRequest::expires_us`]): [`MicroBatcher::expire`] removes
//! requests that are still queued strictly after their deadline and hands
//! them back for timeout accounting (they are never silently dropped, and
//! never folded into a batch).
//!
//! All time is the caller's logical clock (microseconds of simulated
//! time); the batcher imposes no clock of its own, which keeps the whole
//! serving engine deterministic and testable.

use crate::error::SwdnnError;
use std::collections::VecDeque;
use sw_tensor::ConvShape;

/// Request priority tier. Admission control sheds [`Priority::Low`]
/// first; batch releases seed from the high tier first.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    #[default]
    High,
    Low,
}

impl Priority {
    pub fn name(&self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Low => "low",
        }
    }
}

/// When a batch is released.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Release as soon as this many same-shape requests are queued.
    pub max_batch: usize,
    /// Release once the oldest queued request has waited this long (µs of
    /// simulated time).
    pub deadline_us: u64,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        Self {
            max_batch: 8,
            deadline_us: 2_000,
        }
    }
}

/// One queued inference request.
#[derive(Clone, Copy, Debug)]
pub struct QueuedRequest {
    pub id: u64,
    pub shape: ConvShape,
    /// Simulated arrival time, µs.
    pub arrival_us: u64,
    pub priority: Priority,
    /// Tenant tag for per-tenant accounting.
    pub tenant: u32,
    /// Absolute dispatch deadline: the request may be dispatched at any
    /// `now ≤ expires_us` and times out strictly after. `None` never
    /// expires.
    pub expires_us: Option<u64>,
}

impl QueuedRequest {
    /// A default-class request (high priority, tenant 0, no deadline) —
    /// the legacy closed-loop traffic shape.
    pub fn basic(id: u64, shape: ConvShape, arrival_us: u64) -> Self {
        Self {
            id,
            shape,
            arrival_us,
            priority: Priority::High,
            tenant: 0,
            expires_us: None,
        }
    }
}

/// A coalesced batch, ready for dispatch.
#[derive(Clone, Debug)]
pub struct Batch {
    pub shape: ConvShape,
    pub requests: Vec<QueuedRequest>,
    /// Why the batch was released (observability).
    pub trigger: BatchTrigger,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchTrigger {
    Cap,
    Deadline,
    /// Explicit flush (engine drain).
    Flush,
}

/// Priority FIFOs + coalescing + admission control.
#[derive(Debug)]
pub struct MicroBatcher {
    policy: BatchPolicy,
    limit: usize,
    /// One FIFO per [`Priority`] tier, high first.
    tiers: [VecDeque<QueuedRequest>; 2],
}

impl MicroBatcher {
    pub fn new(policy: BatchPolicy, queue_limit: usize) -> Self {
        Self {
            policy,
            limit: queue_limit.max(1),
            tiers: [VecDeque::new(), VecDeque::new()],
        }
    }

    pub fn len(&self) -> usize {
        self.tiers.iter().map(VecDeque::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.tiers.iter().all(VecDeque::is_empty)
    }

    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    fn tier(&self, p: Priority) -> &VecDeque<QueuedRequest> {
        &self.tiers[p as usize]
    }

    /// Enqueue under admission control.
    ///
    /// * `Ok(None)` — accepted, nothing displaced.
    /// * `Ok(Some(victim))` — accepted; the newest low-priority request
    ///   was evicted to make room for a high-priority push. The caller
    ///   must account the victim as shed.
    /// * `Err(Overloaded { .. })` — rejected with the queue depth and a
    ///   retry-after hint.
    pub fn push(&mut self, req: QueuedRequest) -> Result<Option<QueuedRequest>, SwdnnError> {
        if self.len() < self.limit {
            self.tiers[req.priority as usize].push_back(req);
            return Ok(None);
        }
        // Full queue: a high push may displace the newest low request so
        // shedding lands on the low tier first.
        if req.priority == Priority::High {
            if let Some(victim) = self.tiers[Priority::Low as usize].pop_back() {
                self.tiers[Priority::High as usize].push_back(req);
                return Ok(Some(victim));
            }
        }
        Err(SwdnnError::Overloaded {
            depth: self.len(),
            limit: self.limit,
            retry_after_us: self.retry_after_us(req.priority, req.arrival_us),
        })
    }

    /// Suggested retry delay at `now_us` for a rejected request of the
    /// given tier: the time until the *rejected tier's own* front hits
    /// its deadline release. A shed Low request must not advertise the
    /// High tier's (typically sooner) release — Low retried on a High
    /// schedule just gets shed again. When the rejected tier is empty
    /// the hint falls back to one full batching deadline; in all cases
    /// it is at least 1 µs so "retry now" is never suggested while the
    /// queue is full.
    fn retry_after_us(&self, priority: Priority, now_us: u64) -> u64 {
        self.tier(priority)
            .front()
            .map(|r| (r.arrival_us + self.policy.deadline_us).saturating_sub(now_us))
            .unwrap_or(self.policy.deadline_us)
            .max(1)
    }

    /// Remove every request whose dispatch deadline has passed (strictly:
    /// `now_us > expires_us`) and return them, oldest first within each
    /// tier (low tier first — it times out first under pressure). The
    /// caller records them as timed out; they never reach a batch.
    pub fn expire(&mut self, now_us: u64) -> Vec<QueuedRequest> {
        let mut expired = Vec::new();
        for tier in [Priority::Low, Priority::High] {
            let q = &mut self.tiers[tier as usize];
            let mut keep = VecDeque::with_capacity(q.len());
            for r in q.drain(..) {
                match r.expires_us {
                    Some(e) if now_us > e => expired.push(r),
                    _ => keep.push_back(r),
                }
            }
            self.tiers[tier as usize] = keep;
        }
        expired
    }

    /// Release the next batch if either trigger fires at `now_us`.
    ///
    /// Tiers are consulted high-first: the seed request is the front of
    /// the highest non-empty tier whose cap or deadline trigger is ready
    /// (so ready low-priority work still releases when the high tier has
    /// nothing to do). The batch coalesces up to `max_batch` same-shape
    /// requests — high tier first, FIFO within each tier; other shapes
    /// keep their queue positions. A deadline release ships however many
    /// same-shape requests are present (possibly one).
    pub fn pop_batch(&mut self, now_us: u64) -> Option<Batch> {
        for tier in [Priority::High, Priority::Low] {
            let Some(seed) = self.tier(tier).front() else {
                continue;
            };
            let shape = seed.shape;
            let same_shape: usize = self
                .tiers
                .iter()
                .map(|q| q.iter().filter(|r| r.shape == shape).count())
                .sum();
            let deadline_hit = now_us.saturating_sub(seed.arrival_us) >= self.policy.deadline_us;
            let trigger = if same_shape >= self.policy.max_batch {
                BatchTrigger::Cap
            } else if deadline_hit {
                BatchTrigger::Deadline
            } else {
                continue;
            };
            return Some(self.take_batch(shape, trigger));
        }
        None
    }

    /// Unconditionally release the oldest request's batch (drain path),
    /// high tier first.
    pub fn flush(&mut self) -> Option<Batch> {
        let shape = self.tiers.iter().find_map(|q| q.front()).map(|r| r.shape)?;
        Some(self.take_batch(shape, BatchTrigger::Flush))
    }

    /// Earliest batching deadline among tier fronts — when the caller's
    /// clock should next wake the batcher if no cap release happens first.
    pub fn next_deadline_us(&self) -> Option<u64> {
        self.tiers
            .iter()
            .filter_map(|q| q.front())
            .map(|r| r.arrival_us + self.policy.deadline_us)
            .min()
    }

    /// Earliest dispatch-deadline expiry among queued requests, for
    /// callers that want to fire timeouts eagerly while idle.
    pub fn next_expiry_us(&self) -> Option<u64> {
        self.tiers
            .iter()
            .flat_map(|q| q.iter())
            .filter_map(|r| r.expires_us)
            .min()
    }

    /// Drain every queued request — high tier first, FIFO within each
    /// tier. This is the chip-evacuation path: when a cluster marks a
    /// chip down, its queued work is pulled out wholesale and rerouted,
    /// never silently dropped.
    pub fn take_all(&mut self) -> Vec<QueuedRequest> {
        let mut all = Vec::with_capacity(self.len());
        for tier in [Priority::High, Priority::Low] {
            all.extend(self.tiers[tier as usize].drain(..));
        }
        all
    }

    fn take_batch(&mut self, shape: ConvShape, trigger: BatchTrigger) -> Batch {
        let mut requests = Vec::new();
        for tier in [Priority::High, Priority::Low] {
            let q = &mut self.tiers[tier as usize];
            let mut rest = VecDeque::with_capacity(q.len());
            for r in q.drain(..) {
                if r.shape == shape && requests.len() < self.policy.max_batch {
                    requests.push(r);
                } else {
                    rest.push_back(r);
                }
            }
            self.tiers[tier as usize] = rest;
        }
        Batch {
            shape,
            requests,
            trigger,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape_a() -> ConvShape {
        ConvShape::new(32, 16, 16, 8, 8, 3, 3)
    }

    fn shape_b() -> ConvShape {
        ConvShape::new(64, 16, 16, 8, 8, 3, 3)
    }

    fn req(id: u64, shape: ConvShape, at: u64) -> QueuedRequest {
        QueuedRequest::basic(id, shape, at)
    }

    fn low(id: u64, shape: ConvShape, at: u64) -> QueuedRequest {
        QueuedRequest {
            priority: Priority::Low,
            ..QueuedRequest::basic(id, shape, at)
        }
    }

    #[test]
    fn cap_releases_exactly_max_batch() {
        let mut b = MicroBatcher::new(
            BatchPolicy {
                max_batch: 3,
                deadline_us: 1_000,
            },
            64,
        );
        for i in 0..4 {
            b.push(req(i, shape_a(), 0)).unwrap();
        }
        let batch = b.pop_batch(0).expect("cap trigger");
        assert_eq!(batch.trigger, BatchTrigger::Cap);
        assert_eq!(batch.requests.len(), 3);
        assert_eq!(
            batch.requests.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![0, 1, 2],
            "FIFO within the shape"
        );
        assert_eq!(b.len(), 1, "overflow request stays queued");
    }

    #[test]
    fn deadline_releases_a_partial_batch() {
        let mut b = MicroBatcher::new(
            BatchPolicy {
                max_batch: 8,
                deadline_us: 500,
            },
            64,
        );
        b.push(req(1, shape_a(), 100)).unwrap();
        assert!(b.pop_batch(100).is_none(), "neither trigger at arrival");
        assert!(b.pop_batch(599).is_none(), "1µs before the deadline");
        let batch = b.pop_batch(600).expect("deadline trigger");
        assert_eq!(batch.trigger, BatchTrigger::Deadline);
        assert_eq!(batch.requests.len(), 1);
        assert_eq!(b.next_deadline_us(), None);
    }

    #[test]
    fn mixed_shapes_keep_fifo_order() {
        let mut b = MicroBatcher::new(
            BatchPolicy {
                max_batch: 2,
                deadline_us: 1_000,
            },
            64,
        );
        b.push(req(1, shape_a(), 0)).unwrap();
        b.push(req(2, shape_b(), 0)).unwrap();
        b.push(req(3, shape_a(), 0)).unwrap();
        let batch = b.pop_batch(0).expect("shape A hits the cap");
        assert_eq!(batch.shape, shape_a());
        assert_eq!(
            batch.requests.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![1, 3]
        );
        // Shape B is now the oldest and releases on its deadline.
        let batch = b.pop_batch(1_000).expect("deadline for B");
        assert_eq!(batch.shape, shape_b());
        assert!(b.is_empty());
    }

    #[test]
    fn bounded_queue_rejects_with_structured_overloaded() {
        let mut b = MicroBatcher::new(BatchPolicy::default(), 2);
        b.push(req(1, shape_a(), 0)).unwrap();
        b.push(req(2, shape_a(), 0)).unwrap();
        let err = b.push(req(3, shape_a(), 100)).unwrap_err();
        match err {
            SwdnnError::Overloaded {
                depth,
                limit,
                retry_after_us,
            } => {
                assert_eq!((depth, limit), (2, 2));
                // Oldest arrived at 0, batch deadline 2000, now 100.
                assert_eq!(retry_after_us, 1_900);
            }
            other => panic!("expected Overloaded, got {other}"),
        }
        // Draining makes room again.
        b.flush().unwrap();
        b.push(req(3, shape_a(), 0)).unwrap();
    }

    #[test]
    fn retry_hint_tracks_the_rejected_tier_not_the_global_front() {
        // Queue of 2: a High request at t=0 and a Low request at t=500.
        let mut b = MicroBatcher::new(BatchPolicy::default(), 2);
        b.push(req(1, shape_a(), 0)).unwrap();
        b.push(low(2, shape_a(), 500)).unwrap();
        // A shed Low request backs off to the *Low* front's release
        // (500 + 2000 − 600), not the High front's sooner 0 + 2000.
        match b.push(low(3, shape_a(), 600)).unwrap_err() {
            SwdnnError::Overloaded { retry_after_us, .. } => {
                assert_eq!(retry_after_us, 1_900);
            }
            other => panic!("expected Overloaded, got {other}"),
        }
        // With no Low work queued at all, a shed Low request gets the
        // default one-deadline hint instead of High-tier timing.
        let mut b = MicroBatcher::new(BatchPolicy::default(), 2);
        b.push(req(1, shape_a(), 0)).unwrap();
        b.push(req(2, shape_a(), 0)).unwrap();
        match b.push(low(3, shape_a(), 100)).unwrap_err() {
            SwdnnError::Overloaded { retry_after_us, .. } => {
                assert_eq!(
                    retry_after_us,
                    BatchPolicy::default().deadline_us,
                    "empty low tier falls back to one full deadline"
                );
            }
            other => panic!("expected Overloaded, got {other}"),
        }
    }

    #[test]
    fn take_all_drains_high_first_fifo_within_tier() {
        let mut b = MicroBatcher::new(BatchPolicy::default(), 64);
        b.push(low(1, shape_a(), 0)).unwrap();
        b.push(req(2, shape_b(), 1)).unwrap();
        b.push(req(3, shape_a(), 2)).unwrap();
        b.push(low(4, shape_b(), 3)).unwrap();
        let all = b.take_all();
        assert_eq!(
            all.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![2, 3, 1, 4]
        );
        assert!(b.is_empty());
    }

    #[test]
    fn high_push_evicts_the_newest_low_request_first() {
        let mut b = MicroBatcher::new(BatchPolicy::default(), 3);
        b.push(low(1, shape_a(), 0)).unwrap();
        b.push(req(2, shape_a(), 0)).unwrap();
        b.push(low(3, shape_a(), 10)).unwrap();
        // Queue full. A low push is rejected outright…
        assert!(matches!(
            b.push(low(4, shape_a(), 20)),
            Err(SwdnnError::Overloaded { .. })
        ));
        // …a high push displaces the newest low request.
        let victim = b
            .push(req(5, shape_a(), 20))
            .unwrap()
            .expect("eviction victim");
        assert_eq!(victim.id, 3, "newest low request is shed first");
        assert_eq!(b.len(), 3);
        // A fully high-priority queue rejects even high pushes.
        let victim = b
            .push(req(6, shape_a(), 30))
            .unwrap()
            .expect("one low left");
        assert_eq!(victim.id, 1);
        assert!(matches!(
            b.push(req(7, shape_a(), 40)),
            Err(SwdnnError::Overloaded { .. })
        ));
    }

    #[test]
    fn batches_fill_high_tier_first() {
        let mut b = MicroBatcher::new(
            BatchPolicy {
                max_batch: 3,
                deadline_us: 1_000,
            },
            64,
        );
        b.push(low(1, shape_a(), 0)).unwrap();
        b.push(low(2, shape_a(), 0)).unwrap();
        b.push(req(3, shape_a(), 5)).unwrap();
        let batch = b.pop_batch(5).expect("cap across tiers");
        assert_eq!(
            batch.requests.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![3, 1, 2],
            "high request leads, low requests fill"
        );
    }

    #[test]
    fn ready_low_work_releases_when_high_tier_is_quiet() {
        let mut b = MicroBatcher::new(
            BatchPolicy {
                max_batch: 8,
                deadline_us: 500,
            },
            64,
        );
        b.push(low(1, shape_a(), 0)).unwrap();
        b.push(req(2, shape_b(), 400)).unwrap();
        // At t=500 the low request's deadline fired; the younger high
        // request has no trigger yet and must not starve the release.
        let batch = b.pop_batch(500).expect("low deadline release");
        assert_eq!(batch.shape, shape_a());
        assert_eq!(batch.requests[0].id, 1);
    }

    #[test]
    fn expire_removes_only_overdue_requests() {
        let mut b = MicroBatcher::new(BatchPolicy::default(), 64);
        b.push(QueuedRequest {
            expires_us: Some(100),
            ..low(1, shape_a(), 0)
        })
        .unwrap();
        b.push(QueuedRequest {
            expires_us: Some(500),
            ..req(2, shape_a(), 0)
        })
        .unwrap();
        b.push(req(3, shape_a(), 0)).unwrap();
        assert!(
            b.expire(100).is_empty(),
            "deadline instant still dispatchable"
        );
        let expired = b.expire(101);
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].id, 1);
        assert_eq!(b.len(), 2);
        assert_eq!(b.next_expiry_us(), Some(500));
        let expired = b.expire(10_000);
        assert_eq!(expired.len(), 1, "the deadline-free request never expires");
        assert_eq!(expired[0].id, 2);
    }

    #[test]
    fn flush_drains_regardless_of_triggers() {
        let mut b = MicroBatcher::new(
            BatchPolicy {
                max_batch: 100,
                deadline_us: u64::MAX,
            },
            64,
        );
        b.push(req(1, shape_a(), 0)).unwrap();
        assert!(b.pop_batch(u64::MAX - 1).is_none());
        let batch = b.flush().expect("flush always releases");
        assert_eq!(batch.trigger, BatchTrigger::Flush);
        assert!(b.flush().is_none());
    }
}
