//! Batch-serving engine: plan caching, dynamic micro-batching, and
//! sharded multi-CG dispatch.
//!
//! The bench harness measures one configuration at a time; a serving
//! system sees a *stream* of requests over a small set of hot shapes. This
//! module turns the existing plan/executor machinery into that request
//! path:
//!
//! * [`PlanCache`] — shape-keyed memoization of plan resolution, sampled
//!   timing, and autotune sweeps behind striped concurrent maps
//!   ([`ShardedMap`]) with hit/miss counters;
//! * [`MicroBatcher`] — coalesces queued requests per shape up to a batch
//!   cap or deadline, with a bounded queue that rejects
//!   ([`crate::SwdnnError::Overloaded`]) instead of growing;
//! * [`ShardedDispatcher`] — splits each batch across the simulated core
//!   groups per §III-D's row partitioning (on one shared
//!   [`sw_runtime::ExecutionContext`] via [`sw_sim::run_multi_cg_on`] —
//!   no per-request thread fan-out), amortizing the kernel-launch
//!   overhead over the batch;
//! * [`ServeEngine`] — the deterministic closed loop driving all three
//!   under a logical clock of simulated microseconds, reporting
//!   per-request latency percentiles, chip Gflops, batch fill, and cache
//!   hit-rate, with optional Chrome-trace spans per batch.
//!
//! Everything is simulated time: runs are exactly reproducible, so the
//! serving SLOs (p99 latency, hit rate, rejection behavior) are asserted
//! in ordinary unit tests and gated in CI via `serve_bench`.

pub mod batcher;
pub mod dispatch;
pub mod engine;
pub mod plan_cache;
pub mod sharded_map;

pub use batcher::{Batch, BatchPolicy, BatchTrigger, MicroBatcher, QueuedRequest};
pub use dispatch::{BatchTiming, ShardedDispatcher};
pub use engine::{Completion, ServeConfig, ServeCounters, ServeEngine, ServeSummary};
pub use plan_cache::{CacheStats, CachedPlan, PlanCache, PlanKey};
pub use sharded_map::ShardedMap;
