//! Batch-serving engine: plan caching, dynamic micro-batching, and
//! sharded multi-CG dispatch.
//!
//! The bench harness measures one configuration at a time; a serving
//! system sees a *stream* of requests over a small set of hot shapes. This
//! module turns the existing plan/executor machinery into that request
//! path:
//!
//! * [`PlanCache`] — shape-keyed memoization of plan resolution, sampled
//!   timing, and autotune sweeps behind striped concurrent maps
//!   ([`ShardedMap`]) with hit/miss counters;
//! * [`MicroBatcher`] — coalesces queued requests per shape up to a batch
//!   cap or deadline, with a bounded queue that rejects
//!   ([`crate::SwdnnError::Overloaded`]) instead of growing;
//! * [`ShardedDispatcher`] — splits each batch across the simulated core
//!   groups per §III-D's row partitioning (on one shared
//!   [`sw_runtime::ExecutionContext`] via [`sw_sim::run_multi_cg_on`] —
//!   no per-request thread fan-out), amortizing the kernel-launch
//!   overhead over the batch;
//! * [`HealthBoard`] — one deterministic circuit breaker per core group:
//!   consecutive slice failures trip a CG into cooldown, its row-split
//!   share reroutes to the survivors, and half-open probing on the logical
//!   clock restores it;
//! * [`ServeEngine`] — the deterministic closed loop driving all of the
//!   above under a logical clock of simulated microseconds, reporting
//!   per-request latency percentiles, chip Gflops, batch fill, and cache
//!   hit-rate, with optional Chrome-trace spans per batch. With a
//!   [`ChaosConfig`] it serves through injected faults: per-CG fault
//!   sampling, breaker-driven rerouting, the degraded-mesh/host-reference
//!   fallback chain, priority admission control, and per-request dispatch
//!   deadlines.
//!
//! Everything is simulated time: runs are exactly reproducible, so the
//! serving SLOs (p99 latency, hit rate, rejection behavior) are asserted
//! in ordinary unit tests and gated in CI via `serve_bench`.

pub mod batcher;
pub mod dispatch;
pub mod engine;
pub mod health;
pub mod plan_cache;
pub mod sharded_map;

pub use batcher::{Batch, BatchPolicy, BatchTrigger, MicroBatcher, Priority, QueuedRequest};
pub use dispatch::{
    effective_cgs, sample_slice_faults, BatchTiming, ShardedDispatcher, SliceFaults,
};
pub use engine::{
    ChaosConfig, Completion, DropKind, DropRecord, RequestClass, ServeConfig, ServeCounters,
    ServeEngine, ServePath, ServeSummary,
};
pub use health::{
    Availability, BreakerPolicy, BreakerState, CgBreaker, CgHealthStats, HealthBoard, Route,
};
pub use plan_cache::{CacheStats, CachedPlan, PlanCache, PlanKey, TuneKey};
pub use sharded_map::ShardedMap;
