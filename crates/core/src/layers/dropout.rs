//! Inverted dropout.
//!
//! Training mode zeroes each activation with probability `p` and scales
//! survivors by `1/(1-p)` so the expected activation is unchanged;
//! evaluation mode is the identity. The mask stream is seeded, so training
//! runs are reproducible.

use super::Layer;
use crate::error::SwdnnError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sw_tensor::Tensor4;

pub struct Dropout {
    pub p: f64,
    pub training: bool,
    rng: StdRng,
    mask: Option<Tensor4<f64>>,
}

impl Dropout {
    pub fn new(p: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "drop probability must be in [0, 1)"
        );
        Self {
            p,
            training: true,
            rng: StdRng::seed_from_u64(seed),
            mask: None,
        }
    }

    pub fn eval_mode(mut self) -> Self {
        self.training = false;
        self
    }
}

impl Layer for Dropout {
    fn name(&self) -> &'static str {
        "dropout"
    }

    fn forward(&mut self, input: &Tensor4<f64>) -> Result<Tensor4<f64>, SwdnnError> {
        if !self.training || self.p == 0.0 {
            self.mask = None;
            return Ok(input.clone());
        }
        let scale = 1.0 / (1.0 - self.p);
        let mut mask = Tensor4::zeros(input.shape(), input.layout());
        let mut out = input.clone();
        for (m, o) in mask.data_mut().iter_mut().zip(out.data_mut()) {
            if self.rng.gen::<f64>() < self.p {
                *m = 0.0;
                *o = 0.0;
            } else {
                *m = scale;
                *o *= scale;
            }
        }
        self.mask = Some(mask);
        Ok(out)
    }

    fn backward(&mut self, d_out: &Tensor4<f64>) -> Result<Tensor4<f64>, SwdnnError> {
        match &self.mask {
            None => Ok(d_out.clone()),
            Some(mask) => {
                if mask.shape() != d_out.shape() {
                    return Err(SwdnnError::ShapeMismatch {
                        expected: format!("{:?}", mask.shape()),
                        got: format!("{:?}", d_out.shape()),
                    });
                }
                let mut dx = d_out.to_layout(mask.layout());
                for (g, m) in dx.data_mut().iter_mut().zip(mask.data()) {
                    *g *= m;
                }
                Ok(dx)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_tensor::{Layout, Shape4};

    #[test]
    fn eval_mode_is_identity() {
        let x = Tensor4::full(Shape4::new(2, 2, 2, 2), Layout::Nchw, 3.0);
        let mut d = Dropout::new(0.5, 1).eval_mode();
        let y = d.forward(&x).unwrap();
        assert_eq!(y.max_abs_diff(&x), 0.0);
    }

    #[test]
    fn training_preserves_expectation_roughly() {
        let x = Tensor4::full(Shape4::new(8, 8, 8, 8), Layout::Nchw, 1.0);
        let mut d = Dropout::new(0.3, 2);
        let y = d.forward(&x).unwrap();
        let mean = y.sum_f64() / y.len() as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        // Survivors are scaled by 1/(1-p).
        let kept: Vec<f64> = y.data().iter().copied().filter(|&v| v != 0.0).collect();
        assert!(kept.iter().all(|&v| (v - 1.0 / 0.7).abs() < 1e-12));
    }

    #[test]
    fn backward_uses_the_same_mask() {
        let x = Tensor4::full(Shape4::new(2, 2, 4, 4), Layout::Nchw, 1.0);
        let mut d = Dropout::new(0.5, 3);
        let y = d.forward(&x).unwrap();
        let dy = Tensor4::full(x.shape(), Layout::Nchw, 1.0);
        let dx = d.backward(&dy).unwrap();
        // Gradient flows exactly where activations survived.
        for i in 0..y.data().len() {
            assert_eq!(y.data()[i] == 0.0, dx.data()[i] == 0.0);
        }
    }

    #[test]
    fn masks_are_seeded_and_reproducible() {
        let x = Tensor4::full(Shape4::new(2, 2, 4, 4), Layout::Nchw, 1.0);
        let mut a = Dropout::new(0.5, 42);
        let mut b = Dropout::new(0.5, 42);
        assert_eq!(
            a.forward(&x).unwrap().max_abs_diff(&b.forward(&x).unwrap()),
            0.0
        );
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn p_must_be_valid() {
        let _ = Dropout::new(1.0, 1);
    }
}
