//! DNN layers with forward and backward passes.
//!
//! swDNN is a *library for deep learning applications* — its kernel is the
//! convolution, but a usable library needs the rest of a small CNN stack:
//! pooling, activations, a classifier head, and a loss. These layers carry
//! `f64` activations in [`Tensor4`] (`(batch, channel, row, col)`), cache
//! what their backward pass needs, and accumulate parameter gradients for
//! an SGD step.
//!
//! The convolution layer can route its forward pass through the simulated
//! SW26010 ([`Engine::Simulated`]) or run host-side ([`Engine::Host`]) —
//! numerically both paths agree (the plan tests prove it), so training
//! tests use the host path for speed and the examples demonstrate the
//! simulated one.

pub mod activation;
pub mod batchnorm;
pub mod conv_general_layer;
pub mod conv_layer;
pub mod dropout;
pub mod linear;
pub mod pool;
pub mod softmax;

pub use activation::{ReLU, Sigmoid, Tanh};
pub use batchnorm::BatchNorm2d;
pub use conv_general_layer::ConvGeneralLayer;
pub use conv_layer::{Conv2dLayer, Engine};
pub use dropout::Dropout;
pub use linear::Linear;
pub use pool::{AvgPool2, MaxPool2};
pub use softmax::SoftmaxCrossEntropy;

use crate::error::SwdnnError;
use sw_tensor::Tensor4;

/// A differentiable layer.
pub trait Layer {
    /// Forward pass; caches whatever backward needs.
    fn forward(&mut self, input: &Tensor4<f64>) -> Result<Tensor4<f64>, SwdnnError>;
    /// Backward pass: gradient w.r.t. the input; accumulates parameter
    /// gradients internally.
    fn backward(&mut self, d_out: &Tensor4<f64>) -> Result<Tensor4<f64>, SwdnnError>;
    /// Visit every `(parameter, gradient)` slice pair in a stable order.
    /// Parameter-free layers keep the empty default.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
        let _ = f;
    }
    /// SGD update: `p -= lr * dp`, then clear gradients. The default walks
    /// [`Layer::visit_params`]; optimizers with state live in
    /// [`crate::optim`].
    fn sgd_step(&mut self, lr: f64) {
        self.visit_params(&mut |w, g| {
            for (wi, gi) in w.iter_mut().zip(g.iter_mut()) {
                *wi -= lr * *gi;
                *gi = 0.0;
            }
        });
    }
    /// Human-readable layer name.
    fn name(&self) -> &'static str;
    /// Number of trainable parameters.
    fn param_count(&self) -> usize {
        0
    }
}
