//! Subsampling layers (the paper's "extractor" stack pairs convolutions
//! with subsampling layers).

use super::Layer;
use crate::error::SwdnnError;
use sw_tensor::{Shape4, Tensor4};

fn halved(s: Shape4) -> Shape4 {
    Shape4::new(s.d0, s.d1, s.d2 / 2, s.d3 / 2)
}

fn check_even(input: &Tensor4<f64>) -> Result<(), SwdnnError> {
    let s = input.shape();
    if !s.d2.is_multiple_of(2) || !s.d3.is_multiple_of(2) {
        return Err(SwdnnError::ShapeMismatch {
            expected: "even spatial extents for 2x2 pooling".into(),
            got: format!("{:?}", s),
        });
    }
    Ok(())
}

/// 2×2 max pooling with stride 2.
#[derive(Default)]
pub struct MaxPool2 {
    /// Index (0..4) of the argmax within each window.
    argmax: Option<Vec<u8>>,
    in_shape: Option<Shape4>,
}

impl MaxPool2 {
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for MaxPool2 {
    fn name(&self) -> &'static str {
        "maxpool2"
    }

    fn forward(&mut self, input: &Tensor4<f64>) -> Result<Tensor4<f64>, SwdnnError> {
        check_even(input)?;
        let s = input.shape();
        let os = halved(s);
        let mut out = Tensor4::zeros(os, input.layout());
        let mut arg = vec![0u8; os.len()];
        let mut idx = 0;
        for b in 0..s.d0 {
            for c in 0..s.d1 {
                for r in 0..os.d2 {
                    for q in 0..os.d3 {
                        let mut best = f64::NEG_INFINITY;
                        let mut best_k = 0u8;
                        for k in 0..4u8 {
                            let (dr, dc) = ((k / 2) as usize, (k % 2) as usize);
                            let v = input.get(b, c, 2 * r + dr, 2 * q + dc);
                            if v > best {
                                best = v;
                                best_k = k;
                            }
                        }
                        out.set(b, c, r, q, best);
                        arg[idx] = best_k;
                        idx += 1;
                    }
                }
            }
        }
        self.argmax = Some(arg);
        self.in_shape = Some(s);
        Ok(out)
    }

    fn backward(&mut self, d_out: &Tensor4<f64>) -> Result<Tensor4<f64>, SwdnnError> {
        let (arg, s) = match (&self.argmax, self.in_shape) {
            (Some(a), Some(s)) => (a, s),
            _ => {
                return Err(SwdnnError::ShapeMismatch {
                    expected: "forward before backward".into(),
                    got: "no cache".into(),
                })
            }
        };
        let os = halved(s);
        let mut dx = Tensor4::zeros(s, d_out.layout());
        let mut idx = 0;
        for b in 0..s.d0 {
            for c in 0..s.d1 {
                for r in 0..os.d2 {
                    for q in 0..os.d3 {
                        let k = arg[idx];
                        idx += 1;
                        let (dr, dc) = ((k / 2) as usize, (k % 2) as usize);
                        let cur = dx.get(b, c, 2 * r + dr, 2 * q + dc);
                        dx.set(b, c, 2 * r + dr, 2 * q + dc, cur + d_out.get(b, c, r, q));
                    }
                }
            }
        }
        Ok(dx)
    }
}

/// 2×2 average pooling with stride 2.
#[derive(Default)]
pub struct AvgPool2 {
    in_shape: Option<Shape4>,
}

impl AvgPool2 {
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for AvgPool2 {
    fn name(&self) -> &'static str {
        "avgpool2"
    }

    fn forward(&mut self, input: &Tensor4<f64>) -> Result<Tensor4<f64>, SwdnnError> {
        check_even(input)?;
        let s = input.shape();
        let os = halved(s);
        let mut out = Tensor4::zeros(os, input.layout());
        for b in 0..s.d0 {
            for c in 0..s.d1 {
                for r in 0..os.d2 {
                    for q in 0..os.d3 {
                        let sum = input.get(b, c, 2 * r, 2 * q)
                            + input.get(b, c, 2 * r, 2 * q + 1)
                            + input.get(b, c, 2 * r + 1, 2 * q)
                            + input.get(b, c, 2 * r + 1, 2 * q + 1);
                        out.set(b, c, r, q, sum * 0.25);
                    }
                }
            }
        }
        self.in_shape = Some(s);
        Ok(out)
    }

    fn backward(&mut self, d_out: &Tensor4<f64>) -> Result<Tensor4<f64>, SwdnnError> {
        let s = self.in_shape.ok_or_else(|| SwdnnError::ShapeMismatch {
            expected: "forward before backward".into(),
            got: "no cache".into(),
        })?;
        let os = halved(s);
        let mut dx = Tensor4::zeros(s, d_out.layout());
        for b in 0..s.d0 {
            for c in 0..s.d1 {
                for r in 0..os.d2 {
                    for q in 0..os.d3 {
                        let g = d_out.get(b, c, r, q) * 0.25;
                        for (dr, dc) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
                            let cur = dx.get(b, c, 2 * r + dr, 2 * q + dc);
                            dx.set(b, c, 2 * r + dr, 2 * q + dc, cur + g);
                        }
                    }
                }
            }
        }
        Ok(dx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_tensor::Layout;

    #[test]
    fn maxpool_takes_window_maxima() {
        let s = Shape4::new(1, 1, 2, 2);
        let x = Tensor4::from_vec(s, vec![1.0, 2.0, 3.0, 4.0]);
        let y = MaxPool2::new().forward(&x).unwrap();
        assert_eq!(y.get(0, 0, 0, 0), 4.0);
        assert_eq!(y.shape(), Shape4::new(1, 1, 1, 1));
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let s = Shape4::new(1, 1, 2, 2);
        let x = Tensor4::from_vec(s, vec![1.0, 2.0, 3.0, 4.0]);
        let mut p = MaxPool2::new();
        let _ = p.forward(&x).unwrap();
        let dy = Tensor4::full(Shape4::new(1, 1, 1, 1), Layout::Nchw, 7.0);
        let dx = p.backward(&dy).unwrap();
        assert_eq!(dx.data(), &[0.0, 0.0, 0.0, 7.0]);
    }

    #[test]
    fn avgpool_averages_and_spreads() {
        let s = Shape4::new(1, 1, 2, 2);
        let x = Tensor4::from_vec(s, vec![1.0, 2.0, 3.0, 6.0]);
        let mut p = AvgPool2::new();
        let y = p.forward(&x).unwrap();
        assert_eq!(y.get(0, 0, 0, 0), 3.0);
        let dy = Tensor4::full(Shape4::new(1, 1, 1, 1), Layout::Nchw, 4.0);
        let dx = p.backward(&dy).unwrap();
        assert!(dx.data().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn odd_extents_rejected() {
        let s = Shape4::new(1, 1, 3, 2);
        let x = Tensor4::zeros(s, Layout::Nchw);
        assert!(MaxPool2::new().forward(&x).is_err());
        assert!(AvgPool2::new().forward(&x).is_err());
    }
}
