//! Softmax + cross-entropy loss head.

use crate::error::SwdnnError;
use sw_tensor::{Shape4, Tensor4};

/// Combined softmax and cross-entropy: numerically stable forward, and the
/// classic `p - one_hot(y)` backward.
#[derive(Default)]
pub struct SoftmaxCrossEntropy {
    probs: Option<Tensor4<f64>>,
}

impl SoftmaxCrossEntropy {
    pub fn new() -> Self {
        Self::default()
    }

    /// Mean cross-entropy loss over the batch; logits are `(B, C, 1, 1)`.
    #[allow(clippy::needless_range_loop)] // b indexes both logits and labels
    pub fn forward(&mut self, logits: &Tensor4<f64>, labels: &[usize]) -> Result<f64, SwdnnError> {
        let s = logits.shape();
        if labels.len() != s.d0 {
            return Err(SwdnnError::ShapeMismatch {
                expected: format!("{} labels", s.d0),
                got: format!("{}", labels.len()),
            });
        }
        let classes = s.d1;
        let mut probs = Tensor4::zeros(s, logits.layout());
        let mut loss = 0.0;
        for b in 0..s.d0 {
            if labels[b] >= classes {
                return Err(SwdnnError::ShapeMismatch {
                    expected: format!("label < {classes}"),
                    got: format!("{}", labels[b]),
                });
            }
            let mut mx = f64::NEG_INFINITY;
            for c in 0..classes {
                mx = mx.max(logits.get(b, c, 0, 0));
            }
            let mut z = 0.0;
            for c in 0..classes {
                z += (logits.get(b, c, 0, 0) - mx).exp();
            }
            for c in 0..classes {
                let p = (logits.get(b, c, 0, 0) - mx).exp() / z;
                probs.set(b, c, 0, 0, p);
            }
            loss -= probs.get(b, labels[b], 0, 0).max(1e-300).ln();
        }
        self.probs = Some(probs);
        Ok(loss / s.d0 as f64)
    }

    /// Gradient of the mean loss w.r.t. the logits.
    #[allow(clippy::needless_range_loop)] // b indexes both probs and labels
    pub fn backward(&mut self, labels: &[usize]) -> Result<Tensor4<f64>, SwdnnError> {
        let probs = self
            .probs
            .as_ref()
            .ok_or_else(|| SwdnnError::ShapeMismatch {
                expected: "forward before backward".into(),
                got: "no cache".into(),
            })?;
        let s = probs.shape();
        let mut grad = probs.clone();
        let inv_b = 1.0 / s.d0 as f64;
        for b in 0..s.d0 {
            for c in 0..s.d1 {
                let delta = if c == labels[b] { 1.0 } else { 0.0 };
                grad.set(b, c, 0, 0, (probs.get(b, c, 0, 0) - delta) * inv_b);
            }
        }
        Ok(grad)
    }

    /// Argmax predictions from the last forward pass.
    pub fn predictions(&self) -> Option<Vec<usize>> {
        let probs = self.probs.as_ref()?;
        let s = probs.shape();
        let mut out = Vec::with_capacity(s.d0);
        for b in 0..s.d0 {
            let mut best = (0usize, f64::NEG_INFINITY);
            for c in 0..s.d1 {
                let p = probs.get(b, c, 0, 0);
                if p > best.1 {
                    best = (c, p);
                }
            }
            out.push(best.0);
        }
        Some(out)
    }
}

/// Helper: build a logits tensor from a flat batch-major vector.
pub fn logits_from(batch: usize, classes: usize, vals: &[f64]) -> Tensor4<f64> {
    assert_eq!(vals.len(), batch * classes);
    Tensor4::from_vec(Shape4::new(batch, classes, 1, 1), vals.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_c_loss() {
        let mut sm = SoftmaxCrossEntropy::new();
        let logits = logits_from(2, 4, &[0.0; 8]);
        let loss = sm.forward(&logits, &[0, 3]).unwrap();
        assert!((loss - (4.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn backward_is_p_minus_onehot_over_batch() {
        let mut sm = SoftmaxCrossEntropy::new();
        let logits = logits_from(1, 2, &[0.0, 0.0]);
        let _ = sm.forward(&logits, &[1]).unwrap();
        let g = sm.backward(&[1]).unwrap();
        assert!((g.get(0, 0, 0, 0) - 0.5).abs() < 1e-12);
        assert!((g.get(0, 1, 0, 0) + 0.5).abs() < 1e-12);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut sm = SoftmaxCrossEntropy::new();
        let vals = [0.3, -0.7, 1.2];
        let logits = logits_from(1, 3, &vals);
        let base = sm.forward(&logits, &[2]).unwrap();
        let g = sm.backward(&[2]).unwrap();
        let eps = 1e-6;
        for c in 0..3 {
            let mut bumped = vals;
            bumped[c] += eps;
            let l2 = SoftmaxCrossEntropy::new()
                .forward(&logits_from(1, 3, &bumped), &[2])
                .unwrap();
            let fd = (l2 - base) / eps;
            assert!((fd - g.get(0, c, 0, 0)).abs() < 1e-5, "class {c}");
        }
    }

    #[test]
    fn predictions_are_argmax() {
        let mut sm = SoftmaxCrossEntropy::new();
        let logits = logits_from(2, 3, &[1.0, 5.0, 2.0, 0.0, -1.0, 3.0]);
        let _ = sm.forward(&logits, &[0, 0]).unwrap();
        assert_eq!(sm.predictions().unwrap(), vec![1, 2]);
    }

    #[test]
    fn stability_with_large_logits() {
        let mut sm = SoftmaxCrossEntropy::new();
        let logits = logits_from(1, 2, &[1000.0, -1000.0]);
        let loss = sm.forward(&logits, &[0]).unwrap();
        assert!(loss.is_finite());
        assert!(loss < 1e-9);
    }

    #[test]
    fn label_bounds_checked() {
        let mut sm = SoftmaxCrossEntropy::new();
        let logits = logits_from(1, 2, &[0.0, 0.0]);
        assert!(sm.forward(&logits, &[2]).is_err());
        assert!(sm.forward(&logits, &[0, 1]).is_err());
    }
}
