//! Trainable convolution layer with general geometry (padding + stride).
//!
//! The mesh plans cover the paper's dense stride-1 case; this layer brings
//! the general form (AlexNet stems, "same"-padded networks) into the layer
//! stack using the host reference kernels — when the geometry degenerates
//! to the dense case it routes through [`super::Conv2dLayer`]'s machinery
//! implicitly by producing identical results.

use super::Layer;
use crate::error::SwdnnError;
use sw_tensor::conv_general::{
    conv2d_general, conv2d_general_bwd_data, conv2d_general_bwd_filter, ConvGeometry,
};
use sw_tensor::{init::xavier_filter, Layout, Shape4, Tensor4};

/// Convolution with arbitrary padding and stride.
pub struct ConvGeneralLayer {
    pub geom: ConvGeometry,
    pub in_channels: usize,
    pub out_channels: usize,
    pub weights: Tensor4<f64>,
    pub bias: Vec<f64>,
    d_weights: Tensor4<f64>,
    d_bias: Vec<f64>,
    cached_input: Option<Tensor4<f64>>,
}

impl ConvGeneralLayer {
    pub fn new(geom: ConvGeometry, in_channels: usize, out_channels: usize, seed: u64) -> Self {
        let w_shape = Shape4::new(out_channels, in_channels, geom.kr, geom.kc);
        Self {
            geom,
            in_channels,
            out_channels,
            weights: xavier_filter(w_shape, Layout::Nchw, seed),
            bias: vec![0.0; out_channels],
            d_weights: Tensor4::zeros(w_shape, Layout::Nchw),
            d_bias: vec![0.0; out_channels],
            cached_input: None,
        }
    }
}

impl Layer for ConvGeneralLayer {
    fn name(&self) -> &'static str {
        "conv_general"
    }

    fn forward(&mut self, input: &Tensor4<f64>) -> Result<Tensor4<f64>, SwdnnError> {
        let s = input.shape();
        if s.d1 != self.in_channels {
            return Err(SwdnnError::ShapeMismatch {
                expected: format!("{} in channels", self.in_channels),
                got: format!("{:?}", s),
            });
        }
        if self.geom.output_extent(s.d2, s.d3).is_none() {
            return Err(SwdnnError::ShapeMismatch {
                expected: "input at least as large as the padded filter".into(),
                got: format!("{:?}", s),
            });
        }
        let mut out = conv2d_general(&self.geom, input, &self.weights);
        let o = out.shape();
        for b in 0..o.d0 {
            for no in 0..o.d1 {
                for r in 0..o.d2 {
                    for c in 0..o.d3 {
                        out[(b, no, r, c)] += self.bias[no];
                    }
                }
            }
        }
        self.cached_input = Some(input.clone());
        Ok(out)
    }

    fn backward(&mut self, d_out: &Tensor4<f64>) -> Result<Tensor4<f64>, SwdnnError> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or_else(|| SwdnnError::ShapeMismatch {
                expected: "forward before backward".into(),
                got: "no cached input".into(),
            })?;
        let dw = conv2d_general_bwd_filter(&self.geom, input, d_out);
        for i in 0..dw.data().len() {
            self.d_weights.data_mut()[i] += dw.data()[i];
        }
        let o = d_out.shape();
        for b in 0..o.d0 {
            for no in 0..o.d1 {
                for r in 0..o.d2 {
                    for c in 0..o.d3 {
                        self.d_bias[no] += d_out.get(b, no, r, c);
                    }
                }
            }
        }
        Ok(conv2d_general_bwd_data(
            &self.geom,
            input.shape(),
            d_out,
            &self.weights,
        ))
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
        f(self.weights.data_mut(), self.d_weights.data_mut());
        f(&mut self.bias, &mut self.d_bias);
    }

    fn param_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::conv_layer::{Conv2dLayer, Engine};
    use sw_tensor::init::seeded_tensor;
    use sw_tensor::ConvShape;

    #[test]
    fn dense_geometry_matches_conv2d_layer() {
        let shape = ConvShape::new(2, 3, 4, 4, 4, 3, 3);
        let x = seeded_tensor(shape.input_shape(), Layout::Nchw, 1);
        let mut dense = Conv2dLayer::new(shape, Engine::Host, 9).unwrap();
        let mut general = ConvGeneralLayer::new(ConvGeometry::valid(3, 3), 3, 4, 9);
        // Same seed -> same xavier weights.
        let yd = dense.forward(&x).unwrap();
        let yg = general.forward(&x).unwrap();
        assert_eq!(yg.max_abs_diff(&yd), 0.0);
    }

    #[test]
    fn same_padding_keeps_spatial_size() {
        let mut layer = ConvGeneralLayer::new(ConvGeometry::same(3, 3), 2, 5, 10);
        let x = seeded_tensor(Shape4::new(1, 2, 7, 7), Layout::Nchw, 2);
        let y = layer.forward(&x).unwrap();
        assert_eq!(y.shape(), Shape4::new(1, 5, 7, 7));
    }

    #[test]
    fn strided_gradient_descends() {
        // loss = sum(out); one SGD step must reduce it.
        let geom = ConvGeometry::same(3, 3).with_stride(2, 2);
        let mut layer = ConvGeneralLayer::new(geom, 1, 2, 11);
        let x = seeded_tensor(Shape4::new(2, 1, 6, 6), Layout::Nchw, 3);
        let y0 = layer.forward(&x).unwrap();
        let dy = Tensor4::full(y0.shape(), Layout::Nchw, 1.0);
        let _ = layer.backward(&dy).unwrap();
        layer.sgd_step(0.01);
        let y1 = layer.forward(&x).unwrap();
        assert!(y1.sum_f64() < y0.sum_f64());
    }

    #[test]
    fn rejects_wrong_channels_and_tiny_inputs() {
        let mut layer = ConvGeneralLayer::new(ConvGeometry::valid(5, 5), 2, 2, 12);
        let wrong_ch = seeded_tensor(Shape4::new(1, 3, 8, 8), Layout::Nchw, 4);
        assert!(layer.forward(&wrong_ch).is_err());
        let tiny = seeded_tensor(Shape4::new(1, 2, 3, 3), Layout::Nchw, 5);
        assert!(layer.forward(&tiny).is_err());
    }
}
