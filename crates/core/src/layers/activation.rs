//! Activation layers.

use super::Layer;
use crate::error::SwdnnError;
use sw_tensor::Tensor4;

/// Logistic sigmoid, elementwise `1/(1+e^-x)`.
#[derive(Default)]
pub struct Sigmoid {
    out: Option<Tensor4<f64>>,
}

impl Sigmoid {
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Sigmoid {
    fn name(&self) -> &'static str {
        "sigmoid"
    }

    fn forward(&mut self, input: &Tensor4<f64>) -> Result<Tensor4<f64>, SwdnnError> {
        let mut out = input.clone();
        for v in out.data_mut() {
            *v = 1.0 / (1.0 + (-*v).exp());
        }
        self.out = Some(out.clone());
        Ok(out)
    }

    fn backward(&mut self, d_out: &Tensor4<f64>) -> Result<Tensor4<f64>, SwdnnError> {
        let out = self.out.as_ref().ok_or_else(|| SwdnnError::ShapeMismatch {
            expected: "forward before backward".into(),
            got: "no cache".into(),
        })?;
        let mut dx = d_out.to_layout(out.layout());
        for (g, &y) in dx.data_mut().iter_mut().zip(out.data()) {
            *g *= y * (1.0 - y);
        }
        Ok(dx)
    }
}

/// Hyperbolic tangent.
#[derive(Default)]
pub struct Tanh {
    out: Option<Tensor4<f64>>,
}

impl Tanh {
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Tanh {
    fn name(&self) -> &'static str {
        "tanh"
    }

    fn forward(&mut self, input: &Tensor4<f64>) -> Result<Tensor4<f64>, SwdnnError> {
        let mut out = input.clone();
        for v in out.data_mut() {
            *v = v.tanh();
        }
        self.out = Some(out.clone());
        Ok(out)
    }

    fn backward(&mut self, d_out: &Tensor4<f64>) -> Result<Tensor4<f64>, SwdnnError> {
        let out = self.out.as_ref().ok_or_else(|| SwdnnError::ShapeMismatch {
            expected: "forward before backward".into(),
            got: "no cache".into(),
        })?;
        let mut dx = d_out.to_layout(out.layout());
        for (g, &y) in dx.data_mut().iter_mut().zip(out.data()) {
            *g *= 1.0 - y * y;
        }
        Ok(dx)
    }
}

/// Rectified linear unit, elementwise `max(0, x)`.
#[derive(Default)]
pub struct ReLU {
    mask: Option<Tensor4<f64>>,
}

impl ReLU {
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for ReLU {
    fn name(&self) -> &'static str {
        "relu"
    }

    fn forward(&mut self, input: &Tensor4<f64>) -> Result<Tensor4<f64>, SwdnnError> {
        let mut out = input.clone();
        let mut mask = Tensor4::zeros(input.shape(), input.layout());
        for (o, m) in out.data_mut().iter_mut().zip(mask.data_mut()) {
            if *o > 0.0 {
                *m = 1.0;
            } else {
                *o = 0.0;
            }
        }
        self.mask = Some(mask);
        Ok(out)
    }

    fn backward(&mut self, d_out: &Tensor4<f64>) -> Result<Tensor4<f64>, SwdnnError> {
        let mask = self
            .mask
            .as_ref()
            .ok_or_else(|| SwdnnError::ShapeMismatch {
                expected: "forward before backward".into(),
                got: "no mask".into(),
            })?;
        if mask.shape() != d_out.shape() {
            return Err(SwdnnError::ShapeMismatch {
                expected: format!("{:?}", mask.shape()),
                got: format!("{:?}", d_out.shape()),
            });
        }
        let mut dx = d_out.to_layout(mask.layout());
        for (g, m) in dx.data_mut().iter_mut().zip(mask.data()) {
            *g *= m;
        }
        Ok(dx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_tensor::{Layout, Shape4};

    #[test]
    fn forward_clamps_negatives() {
        let s = Shape4::new(1, 1, 1, 4);
        let x = Tensor4::from_vec(s, vec![-1.0, 2.0, -3.0, 4.0]);
        let y = ReLU::new().forward(&x).unwrap();
        assert_eq!(y.data(), &[0.0, 2.0, 0.0, 4.0]);
    }

    #[test]
    fn backward_gates_gradient() {
        let s = Shape4::new(1, 1, 1, 4);
        let x = Tensor4::from_vec(s, vec![-1.0, 2.0, -3.0, 4.0]);
        let mut relu = ReLU::new();
        let _ = relu.forward(&x).unwrap();
        let dy = Tensor4::full(s, Layout::Nchw, 1.0);
        let dx = relu.backward(&dy).unwrap();
        assert_eq!(dx.data(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn backward_before_forward_errors() {
        let s = Shape4::new(1, 1, 1, 2);
        let dy = Tensor4::full(s, Layout::Nchw, 1.0);
        assert!(ReLU::new().backward(&dy).is_err());
    }

    #[test]
    fn sigmoid_matches_finite_difference() {
        let s = Shape4::new(1, 1, 1, 3);
        let x = Tensor4::from_vec(s, vec![-2.0, 0.0, 1.5]);
        let mut sig = Sigmoid::new();
        let y = sig.forward(&x).unwrap();
        assert!((y.data()[1] - 0.5).abs() < 1e-12);
        let dy = Tensor4::full(s, Layout::Nchw, 1.0);
        let dx = sig.backward(&dy).unwrap();
        let eps = 1e-6;
        for i in 0..3 {
            let mut bumped = x.clone();
            bumped.data_mut()[i] += eps;
            let y2 = Sigmoid::new().forward(&bumped).unwrap();
            let fd = (y2.data()[i] - y.data()[i]) / eps;
            assert!((fd - dx.data()[i]).abs() < 1e-5, "lane {i}");
        }
    }

    #[test]
    fn tanh_is_odd_and_bounded() {
        let s = Shape4::new(1, 1, 1, 2);
        let x = Tensor4::from_vec(s, vec![3.0, -3.0]);
        let mut t = Tanh::new();
        let y = t.forward(&x).unwrap();
        assert!((y.data()[0] + y.data()[1]).abs() < 1e-12);
        assert!(y.data()[0] < 1.0);
        let dy = Tensor4::full(s, Layout::Nchw, 1.0);
        let dx = t.backward(&dy).unwrap();
        assert!((dx.data()[0] - (1.0 - y.data()[0] * y.data()[0])).abs() < 1e-12);
    }

    #[test]
    fn zero_is_not_active() {
        let s = Shape4::new(1, 1, 1, 1);
        let x = Tensor4::from_vec(s, vec![0.0]);
        let mut relu = ReLU::new();
        let _ = relu.forward(&x).unwrap();
        let dy = Tensor4::full(s, Layout::Nchw, 5.0);
        assert_eq!(relu.backward(&dy).unwrap().data(), &[0.0]);
    }
}
