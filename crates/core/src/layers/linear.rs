//! Fully-connected (classifier) layer.
//!
//! Activations flow as `(batch, features, 1, 1)` tensors; the layer
//! flattens whatever spatial shape arrives.

use super::Layer;
use crate::error::SwdnnError;
use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sw_tensor::{Shape4, Tensor4};

/// `y = W x + b` with `W: (out, in)` row-major.
pub struct Linear {
    pub in_features: usize,
    pub out_features: usize,
    pub w: Vec<f64>,
    pub b: Vec<f64>,
    dw: Vec<f64>,
    db: Vec<f64>,
    cached: Option<Tensor4<f64>>,
    cached_shape: Option<Shape4>,
}

impl Linear {
    pub fn new(in_features: usize, out_features: usize, seed: u64) -> Self {
        let a = (6.0 / (in_features + out_features) as f64).sqrt();
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = Uniform::new(-a, a);
        Self {
            in_features,
            out_features,
            w: (0..in_features * out_features)
                .map(|_| dist.sample(&mut rng))
                .collect(),
            b: vec![0.0; out_features],
            dw: vec![0.0; in_features * out_features],
            db: vec![0.0; out_features],
            cached: None,
            cached_shape: None,
        }
    }

    fn flatten(&self, input: &Tensor4<f64>) -> Result<Tensor4<f64>, SwdnnError> {
        let s = input.shape();
        let feat = s.d1 * s.d2 * s.d3;
        if feat != self.in_features {
            return Err(SwdnnError::ShapeMismatch {
                expected: format!("{} features", self.in_features),
                got: format!("{:?} = {feat}", s),
            });
        }
        let mut flat = Tensor4::zeros(Shape4::new(s.d0, feat, 1, 1), sw_tensor::Layout::Nchw);
        for b in 0..s.d0 {
            let mut f = 0;
            for c in 0..s.d1 {
                for r in 0..s.d2 {
                    for q in 0..s.d3 {
                        flat.set(b, f, 0, 0, input.get(b, c, r, q));
                        f += 1;
                    }
                }
            }
        }
        Ok(flat)
    }
}

impl Layer for Linear {
    fn name(&self) -> &'static str {
        "linear"
    }

    fn forward(&mut self, input: &Tensor4<f64>) -> Result<Tensor4<f64>, SwdnnError> {
        let flat = self.flatten(input)?;
        let batch = flat.shape().d0;
        let mut out = Tensor4::zeros(
            Shape4::new(batch, self.out_features, 1, 1),
            sw_tensor::Layout::Nchw,
        );
        for b in 0..batch {
            for o in 0..self.out_features {
                let mut acc = self.b[o];
                for i in 0..self.in_features {
                    acc += self.w[o * self.in_features + i] * flat.get(b, i, 0, 0);
                }
                out.set(b, o, 0, 0, acc);
            }
        }
        self.cached_shape = Some(input.shape());
        self.cached = Some(flat);
        Ok(out)
    }

    fn backward(&mut self, d_out: &Tensor4<f64>) -> Result<Tensor4<f64>, SwdnnError> {
        let flat = self
            .cached
            .as_ref()
            .ok_or_else(|| SwdnnError::ShapeMismatch {
                expected: "forward before backward".into(),
                got: "no cache".into(),
            })?;
        let in_shape = self.cached_shape.unwrap();
        let batch = flat.shape().d0;
        let mut d_flat = vec![0.0; batch * self.in_features];
        for b in 0..batch {
            for o in 0..self.out_features {
                let g = d_out.get(b, o, 0, 0);
                self.db[o] += g;
                for i in 0..self.in_features {
                    self.dw[o * self.in_features + i] += g * flat.get(b, i, 0, 0);
                    d_flat[b * self.in_features + i] += g * self.w[o * self.in_features + i];
                }
            }
        }
        // Un-flatten.
        let mut dx = Tensor4::zeros(in_shape, sw_tensor::Layout::Nchw);
        for b in 0..in_shape.d0 {
            let mut f = 0;
            for c in 0..in_shape.d1 {
                for r in 0..in_shape.d2 {
                    for q in 0..in_shape.d3 {
                        dx.set(b, c, r, q, d_flat[b * self.in_features + f]);
                        f += 1;
                    }
                }
            }
        }
        Ok(dx)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
        f(&mut self.w, &mut self.dw);
        f(&mut self.b, &mut self.db);
    }

    fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_tensor::Layout;

    #[test]
    fn forward_is_affine() {
        let mut lin = Linear::new(2, 1, 1);
        lin.w = vec![2.0, 3.0];
        lin.b = vec![1.0];
        let x = Tensor4::from_vec(Shape4::new(1, 2, 1, 1), vec![10.0, 20.0]);
        let y = lin.forward(&x).unwrap();
        assert_eq!(y.get(0, 0, 0, 0), 2.0 * 10.0 + 3.0 * 20.0 + 1.0);
    }

    #[test]
    fn flattens_spatial_inputs() {
        let mut lin = Linear::new(8, 2, 2);
        let x = Tensor4::full(Shape4::new(3, 2, 2, 2), Layout::Nchw, 1.0);
        let y = lin.forward(&x).unwrap();
        assert_eq!(y.shape(), Shape4::new(3, 2, 1, 1));
    }

    #[test]
    fn gradient_check() {
        let mut lin = Linear::new(3, 2, 3);
        let x = Tensor4::from_vec(Shape4::new(1, 3, 1, 1), vec![0.5, -1.0, 2.0]);
        let _ = lin.forward(&x).unwrap();
        let dy = Tensor4::full(Shape4::new(1, 2, 1, 1), Layout::Nchw, 1.0);
        let dx = lin.backward(&dy).unwrap();
        // dL/dx_i = sum_o w[o][i]
        for i in 0..3 {
            let expect = lin.w[i] + lin.w[3 + i];
            assert!((dx.get(0, i, 0, 0) - expect).abs() < 1e-12);
        }
        // dL/dw[o][i] = x_i
        assert!((lin.dw[0] - 0.5).abs() < 1e-12);
        assert!((lin.dw[2] - 2.0).abs() < 1e-12);
        assert_eq!(lin.db, vec![1.0, 1.0]);
    }

    #[test]
    fn wrong_feature_count_errors() {
        let mut lin = Linear::new(4, 2, 4);
        let x = Tensor4::full(Shape4::new(1, 3, 1, 1), Layout::Nchw, 1.0);
        assert!(lin.forward(&x).is_err());
    }
}
