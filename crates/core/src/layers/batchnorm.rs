//! Batch normalization over the channel dimension (Ioffe & Szegedy).
//!
//! Training mode normalizes each channel with the batch statistics over
//! `(B, H, W)`, maintains running statistics with momentum, and learns a
//! per-channel scale `gamma` and shift `beta`. Evaluation mode uses the
//! running statistics.

use super::Layer;
use crate::error::SwdnnError;
use sw_tensor::{Shape4, Tensor4};

/// Per-channel batch normalization for `(B, C, H, W)` activations.
pub struct BatchNorm2d {
    pub channels: usize,
    pub eps: f64,
    /// Running-statistics momentum: `run = (1-m)*run + m*batch`.
    pub momentum: f64,
    /// Training (batch stats) vs evaluation (running stats).
    pub training: bool,
    pub gamma: Vec<f64>,
    pub beta: Vec<f64>,
    pub running_mean: Vec<f64>,
    pub running_var: Vec<f64>,
    d_gamma: Vec<f64>,
    d_beta: Vec<f64>,
    // Backward cache.
    cache_xhat: Option<Tensor4<f64>>,
    cache_inv_std: Vec<f64>,
}

impl BatchNorm2d {
    pub fn new(channels: usize) -> Self {
        Self {
            channels,
            eps: 1e-5,
            momentum: 0.1,
            training: true,
            gamma: vec![1.0; channels],
            beta: vec![0.0; channels],
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            d_gamma: vec![0.0; channels],
            d_beta: vec![0.0; channels],
            cache_xhat: None,
            cache_inv_std: Vec::new(),
        }
    }

    pub fn eval_mode(mut self) -> Self {
        self.training = false;
        self
    }

    fn check(&self, s: Shape4) -> Result<(), SwdnnError> {
        if s.d1 != self.channels {
            return Err(SwdnnError::ShapeMismatch {
                expected: format!("{} channels", self.channels),
                got: format!("{:?}", s),
            });
        }
        Ok(())
    }
}

impl Layer for BatchNorm2d {
    fn name(&self) -> &'static str {
        "batchnorm2d"
    }

    fn forward(&mut self, input: &Tensor4<f64>) -> Result<Tensor4<f64>, SwdnnError> {
        let s = input.shape();
        self.check(s)?;
        let n = (s.d0 * s.d2 * s.d3) as f64;
        let mut out = Tensor4::zeros(s, input.layout());
        let mut xhat = Tensor4::zeros(s, input.layout());
        self.cache_inv_std = vec![0.0; self.channels];

        for c in 0..self.channels {
            let (mean, var) = if self.training {
                let mut sum = 0.0;
                let mut sq = 0.0;
                for b in 0..s.d0 {
                    for r in 0..s.d2 {
                        for q in 0..s.d3 {
                            let v = input.get(b, c, r, q);
                            sum += v;
                            sq += v * v;
                        }
                    }
                }
                let mean = sum / n;
                let var = (sq / n - mean * mean).max(0.0);
                self.running_mean[c] =
                    (1.0 - self.momentum) * self.running_mean[c] + self.momentum * mean;
                self.running_var[c] =
                    (1.0 - self.momentum) * self.running_var[c] + self.momentum * var;
                (mean, var)
            } else {
                (self.running_mean[c], self.running_var[c])
            };
            let inv_std = 1.0 / (var + self.eps).sqrt();
            self.cache_inv_std[c] = inv_std;
            for b in 0..s.d0 {
                for r in 0..s.d2 {
                    for q in 0..s.d3 {
                        let xh = (input.get(b, c, r, q) - mean) * inv_std;
                        xhat.set(b, c, r, q, xh);
                        out.set(b, c, r, q, self.gamma[c] * xh + self.beta[c]);
                    }
                }
            }
        }
        self.cache_xhat = Some(xhat);
        Ok(out)
    }

    fn backward(&mut self, d_out: &Tensor4<f64>) -> Result<Tensor4<f64>, SwdnnError> {
        let xhat = self
            .cache_xhat
            .as_ref()
            .ok_or_else(|| SwdnnError::ShapeMismatch {
                expected: "forward before backward".into(),
                got: "no cache".into(),
            })?;
        let s = xhat.shape();
        self.check(d_out.shape())?;
        let n = (s.d0 * s.d2 * s.d3) as f64;
        let mut dx = Tensor4::zeros(s, d_out.layout());

        for c in 0..self.channels {
            // Sums needed by the training-mode gradient.
            let mut sum_dy = 0.0;
            let mut sum_dy_xhat = 0.0;
            for b in 0..s.d0 {
                for r in 0..s.d2 {
                    for q in 0..s.d3 {
                        let dy = d_out.get(b, c, r, q);
                        sum_dy += dy;
                        sum_dy_xhat += dy * xhat.get(b, c, r, q);
                    }
                }
            }
            self.d_beta[c] += sum_dy;
            self.d_gamma[c] += sum_dy_xhat;

            let g = self.gamma[c] * self.cache_inv_std[c];
            for b in 0..s.d0 {
                for r in 0..s.d2 {
                    for q in 0..s.d3 {
                        let dy = d_out.get(b, c, r, q);
                        let v = if self.training {
                            g * (dy - sum_dy / n - xhat.get(b, c, r, q) * sum_dy_xhat / n)
                        } else {
                            g * dy
                        };
                        dx.set(b, c, r, q, v);
                    }
                }
            }
        }
        Ok(dx)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
        f(&mut self.gamma, &mut self.d_gamma);
        f(&mut self.beta, &mut self.d_beta);
    }

    fn param_count(&self) -> usize {
        2 * self.channels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_tensor::init::seeded_tensor;
    use sw_tensor::Layout;

    #[test]
    fn training_output_is_normalized() {
        let s = Shape4::new(4, 2, 3, 3);
        let x = seeded_tensor(s, Layout::Nchw, 1);
        let mut bn = BatchNorm2d::new(2);
        let y = bn.forward(&x).unwrap();
        for c in 0..2 {
            let mut sum = 0.0;
            let mut sq = 0.0;
            let n = (4 * 3 * 3) as f64;
            for b in 0..4 {
                for r in 0..3 {
                    for q in 0..3 {
                        let v = y.get(b, c, r, q);
                        sum += v;
                        sq += v * v;
                    }
                }
            }
            let mean = sum / n;
            let var = sq / n - mean * mean;
            assert!(mean.abs() < 1e-10, "channel {c} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "channel {c} var {var}");
        }
    }

    #[test]
    fn gamma_beta_affect_output() {
        let s = Shape4::new(2, 1, 2, 2);
        let x = seeded_tensor(s, Layout::Nchw, 2);
        let mut bn = BatchNorm2d::new(1);
        bn.gamma[0] = 3.0;
        bn.beta[0] = -1.0;
        let y = bn.forward(&x).unwrap();
        let mut bn0 = BatchNorm2d::new(1);
        let y0 = bn0.forward(&x).unwrap();
        for i in 0..y.data().len() {
            assert!((y.data()[i] - (3.0 * y0.data()[i] - 1.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn eval_mode_uses_running_stats() {
        let s = Shape4::new(8, 1, 2, 2);
        let mut bn = BatchNorm2d::new(1);
        bn.momentum = 1.0; // running stats = last batch stats
        let x = seeded_tensor(s, Layout::Nchw, 3);
        let y_train = bn.forward(&x).unwrap();
        bn.training = false;
        let y_eval = bn.forward(&x).unwrap();
        // With momentum 1, eval stats equal the train batch stats, except
        // eval skips the (biased) var identity only through running slots.
        assert!(y_eval.approx_eq(&y_train, 1e-6));
    }

    #[test]
    fn backward_matches_finite_difference() {
        let s = Shape4::new(3, 2, 2, 2);
        let x = seeded_tensor(s, Layout::Nchw, 4);
        let mut bn = BatchNorm2d::new(2);
        bn.gamma = vec![1.5, 0.5];
        let _ = bn.forward(&x).unwrap();
        let dy = Tensor4::from_fn(s, Layout::Nchw, |b, c, r, q| {
            ((b + 2 * c + 3 * r + 5 * q) % 7) as f64 * 0.1 - 0.3
        });
        let dx = bn.backward(&dy).unwrap();

        let loss = |x: &Tensor4<f64>| -> f64 {
            let mut bn2 = BatchNorm2d::new(2);
            bn2.gamma = vec![1.5, 0.5];
            let y = bn2.forward(x).unwrap();
            y.data().iter().zip(dy.data()).map(|(a, b)| a * b).sum()
        };
        let eps = 1e-6;
        let base = loss(&x);
        for probe in [(0, 0, 0, 0), (1, 1, 1, 1), (2, 0, 1, 0)] {
            let mut bumped = x.clone();
            bumped[probe] += eps;
            let fd = (loss(&bumped) - base) / eps;
            assert!(
                (fd - dx[probe]).abs() < 1e-4,
                "{probe:?}: fd {fd} vs analytic {}",
                dx[probe]
            );
        }
    }

    #[test]
    fn param_gradients_accumulate() {
        let s = Shape4::new(2, 1, 2, 2);
        let x = seeded_tensor(s, Layout::Nchw, 5);
        let mut bn = BatchNorm2d::new(1);
        let _ = bn.forward(&x).unwrap();
        let dy = Tensor4::full(s, Layout::Nchw, 1.0);
        let _ = bn.backward(&dy).unwrap();
        // d_beta = sum(dy) = 8.
        let mut grads = Vec::new();
        bn.visit_params(&mut |_, g| grads.push(g.to_vec()));
        assert!((grads[1][0] - 8.0).abs() < 1e-12);
    }

    #[test]
    fn wrong_channel_count_rejected() {
        let mut bn = BatchNorm2d::new(3);
        let x = Tensor4::zeros(Shape4::new(1, 2, 2, 2), Layout::Nchw);
        assert!(bn.forward(&x).is_err());
    }
}
