//! Trainable convolution layer.

use super::Layer;
use crate::conv::Conv2d;
use crate::error::SwdnnError;
use sw_tensor::{init::xavier_filter, ConvShape, Layout, Tensor4};

/// Where the forward convolution executes.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Engine {
    /// Host loops (fast for unit tests and training demos).
    #[default]
    Host,
    /// The simulated SW26010 core group via the selected swDNN plan.
    Simulated,
}

/// `Conv2d` with trainable filters and per-output-channel bias.
pub struct Conv2dLayer {
    pub conv: Conv2d,
    pub engine: Engine,
    pub weights: Tensor4<f64>,
    pub bias: Vec<f64>,
    d_weights: Tensor4<f64>,
    d_bias: Vec<f64>,
    cached_input: Option<Tensor4<f64>>,
    /// Cycles charged by the simulated engine so far (0 for host runs).
    pub simulated_cycles: u64,
}

impl Conv2dLayer {
    pub fn new(shape: ConvShape, engine: Engine, seed: u64) -> Result<Self, SwdnnError> {
        let conv = Conv2d::new(shape)?;
        Ok(Self {
            conv,
            engine,
            weights: xavier_filter(shape.filter_shape(), Layout::Nchw, seed),
            bias: vec![0.0; shape.no],
            d_weights: Tensor4::zeros(shape.filter_shape(), Layout::Nchw),
            d_bias: vec![0.0; shape.no],
            cached_input: None,
            simulated_cycles: 0,
        })
    }
}

impl Layer for Conv2dLayer {
    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn forward(&mut self, input: &Tensor4<f64>) -> Result<Tensor4<f64>, SwdnnError> {
        let shape = self.conv.shape;
        let mut out = match self.engine {
            Engine::Host => sw_tensor::conv2d_ref(shape, input, &self.weights),
            Engine::Simulated => {
                let run = self.conv.forward(input, &self.weights)?;
                self.simulated_cycles += run.timing.cycles;
                run.output.to_layout(Layout::Nchw)
            }
        };
        // Bias.
        for b in 0..shape.batch {
            for no in 0..shape.no {
                for r in 0..shape.ro {
                    for c in 0..shape.co {
                        out[(b, no, r, c)] += self.bias[no];
                    }
                }
            }
        }
        self.cached_input = Some(input.clone());
        Ok(out)
    }

    fn backward(&mut self, d_out: &Tensor4<f64>) -> Result<Tensor4<f64>, SwdnnError> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or_else(|| SwdnnError::ShapeMismatch {
                expected: "forward before backward".into(),
                got: "no cached input".into(),
            })?;
        let shape = self.conv.shape;
        // Filter gradient: on the simulated chip when the mesh supports the
        // shape (the dedicated BwdFilterPlan), host reference otherwise.
        let dw = if self.engine == Engine::Simulated
            && crate::plans::BwdFilterPlan::auto(&shape)
                .supports(&shape)
                .is_ok()
        {
            let (dw, timing) = self.conv.backward_filter_on_chip(input, d_out)?;
            self.simulated_cycles += timing.cycles;
            dw
        } else {
            self.conv.backward_filter(input, d_out)?
        };
        for i in 0..dw.data().len() {
            self.d_weights.data_mut()[i] += dw.data()[i];
        }
        for b in 0..shape.batch {
            for no in 0..shape.no {
                for r in 0..shape.ro {
                    for c in 0..shape.co {
                        self.d_bias[no] += d_out.get(b, no, r, c);
                    }
                }
            }
        }
        // Data gradient: likewise via the lowered forward convolution.
        if self.engine == Engine::Simulated {
            let bwd_conv = crate::conv::Conv2d {
                shape: self.conv.backward_data_shape(),
                ..self.conv
            };
            if bwd_conv.plan().name() != "reference" {
                let run = self.conv.backward_data_on_chip(d_out, &self.weights)?;
                self.simulated_cycles += run.timing.cycles;
                return Ok(run.output.to_layout(Layout::Nchw));
            }
        }
        self.conv.backward_data(d_out, &self.weights)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
        f(self.weights.data_mut(), self.d_weights.data_mut());
        f(&mut self.bias, &mut self.d_bias);
    }

    fn param_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_tensor::init::seeded_tensor;

    fn layer_shape() -> ConvShape {
        ConvShape::new(2, 3, 4, 4, 4, 3, 3)
    }

    #[test]
    fn forward_adds_bias() {
        let shape = layer_shape();
        let mut layer = Conv2dLayer::new(shape, Engine::Host, 1).unwrap();
        let x = seeded_tensor(shape.input_shape(), Layout::Nchw, 2);
        let y0 = layer.forward(&x).unwrap();
        layer.bias[1] = 5.0;
        let y1 = layer.forward(&x).unwrap();
        assert!((y1.get(0, 1, 0, 0) - y0.get(0, 1, 0, 0) - 5.0).abs() < 1e-12);
        assert_eq!(y1.get(0, 0, 0, 0), y0.get(0, 0, 0, 0));
    }

    #[test]
    fn gradient_check_weights_and_bias() {
        let shape = ConvShape::new(1, 2, 2, 3, 3, 2, 2);
        let mut layer = Conv2dLayer::new(shape, Engine::Host, 3).unwrap();
        let x = seeded_tensor(shape.input_shape(), Layout::Nchw, 4);
        // Loss = sum(output).
        let _ = layer.forward(&x).unwrap();
        let ones = Tensor4::full(shape.output_shape(), Layout::Nchw, 1.0);
        let _ = layer.backward(&ones).unwrap();

        let eps = 1e-6;
        let base: f64 = layer.forward(&x).unwrap().sum_f64();
        // Weight (0,0,0,0).
        let analytic = layer.d_weights.get(0, 0, 0, 0);
        layer
            .weights
            .set(0, 0, 0, 0, layer.weights.get(0, 0, 0, 0) + eps);
        let bumped = layer.forward(&x).unwrap().sum_f64();
        let fd = (bumped - base) / eps;
        assert!(
            (fd - analytic).abs() < 1e-4,
            "weight grad fd {fd} vs {analytic}"
        );
        // Bias 0 gradient is the number of output positions.
        assert!((layer.d_bias[0] - (shape.batch * shape.ro * shape.co) as f64).abs() < 1e-9);
    }

    #[test]
    fn simulated_engine_matches_host_engine() {
        let shape = ConvShape::new(16, 8, 8, 4, 8, 3, 3);
        let x = seeded_tensor(shape.input_shape(), Layout::Nchw, 5);
        let mut host = Conv2dLayer::new(shape, Engine::Host, 7).unwrap();
        let mut sim = Conv2dLayer::new(shape, Engine::Simulated, 7).unwrap();
        let yh = host.forward(&x).unwrap();
        let ys = sim.forward(&x).unwrap();
        assert!(ys.approx_eq(&yh, 1e-10));
        assert!(sim.simulated_cycles > 0);
        assert_eq!(host.simulated_cycles, 0);
    }

    #[test]
    fn simulated_backward_matches_host_backward() {
        // A mesh-eligible layer trained one step with each engine must end
        // with identical parameters (all three passes run on the chip).
        let shape = ConvShape::new(32, 8, 8, 4, 8, 3, 3);
        let x = seeded_tensor(shape.input_shape(), Layout::Nchw, 11);
        let dy = seeded_tensor(shape.output_shape(), Layout::Nchw, 12);
        let mut host = Conv2dLayer::new(shape, Engine::Host, 13).unwrap();
        let mut sim = Conv2dLayer::new(shape, Engine::Simulated, 13).unwrap();
        let _ = host.forward(&x).unwrap();
        let _ = sim.forward(&x).unwrap();
        let dxh = host.backward(&dy).unwrap();
        let dxs = sim.backward(&dy).unwrap();
        assert!(dxs.approx_eq(&dxh, 1e-9));
        host.sgd_step(0.1);
        sim.sgd_step(0.1);
        assert!(sim.weights.approx_eq(&host.weights, 1e-9));
        assert!(sim.simulated_cycles > 0);
    }

    #[test]
    fn sgd_step_moves_weights_and_clears_grads() {
        let shape = layer_shape();
        let mut layer = Conv2dLayer::new(shape, Engine::Host, 9).unwrap();
        let x = seeded_tensor(shape.input_shape(), Layout::Nchw, 10);
        let _ = layer.forward(&x).unwrap();
        let ones = Tensor4::full(shape.output_shape(), Layout::Nchw, 1.0);
        let _ = layer.backward(&ones).unwrap();
        let before = layer.weights.get(0, 0, 0, 0);
        let grad = layer.d_weights.get(0, 0, 0, 0);
        layer.sgd_step(0.1);
        assert!((layer.weights.get(0, 0, 0, 0) - (before - 0.1 * grad)).abs() < 1e-12);
        assert_eq!(layer.d_weights.get(0, 0, 0, 0), 0.0);
    }

    #[test]
    fn param_count_is_filters_plus_bias() {
        let shape = layer_shape();
        let layer = Conv2dLayer::new(shape, Engine::Host, 1).unwrap();
        assert_eq!(layer.param_count(), 4 * 3 * 3 * 3 + 4);
    }
}
