//! Synthetic datasets for the training examples and tests.
//!
//! All generators are seeded and deterministic; each returns `(images,
//! labels)` with images in `(B, 1, H, W)` NCHW layout and labels in
//! `0..classes`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sw_tensor::{Layout, Shape4, Tensor4};

/// Which quadrant of the image is bright: 4 classes.
pub fn quadrants(batch: usize, hw: usize, seed: u64) -> (Tensor4<f64>, Vec<usize>) {
    assert!(hw.is_multiple_of(2), "even extent required");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = Tensor4::zeros(Shape4::new(batch, 1, hw, hw), Layout::Nchw);
    let mut y = Vec::with_capacity(batch);
    let h = hw / 2;
    for b in 0..batch {
        let class = rng.gen_range(0..4usize);
        let (r0, c0) = ((class / 2) * h, (class % 2) * h);
        for r in 0..hw {
            for c in 0..hw {
                let inside = (r0..r0 + h).contains(&r) && (c0..c0 + h).contains(&c);
                let v = if inside { 1.0 } else { 0.1 } + rng.gen_range(-0.05..0.05);
                x.set(b, 0, r, c, v);
            }
        }
        y.push(class);
    }
    (x, y)
}

/// Stripe orientation: 0 = vertical, 1 = horizontal, 2 = checkerboard.
pub fn textures(batch: usize, hw: usize, period: usize, seed: u64) -> (Tensor4<f64>, Vec<usize>) {
    assert!(period >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = Tensor4::zeros(Shape4::new(batch, 1, hw, hw), Layout::Nchw);
    let mut y = Vec::with_capacity(batch);
    for b in 0..batch {
        let class = rng.gen_range(0..3usize);
        for r in 0..hw {
            for c in 0..hw {
                let v = match class {
                    0 => ((c / period) % 2) as f64,
                    1 => ((r / period) % 2) as f64,
                    _ => (((r / period) + (c / period)) % 2) as f64,
                };
                x.set(b, 0, r, c, v + rng.gen_range(-0.1..0.1));
            }
        }
        y.push(class);
    }
    (x, y)
}

/// Two Gaussian blobs: class = which half holds the blob centre.
pub fn blobs(batch: usize, hw: usize, seed: u64) -> (Tensor4<f64>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = Tensor4::zeros(Shape4::new(batch, 1, hw, hw), Layout::Nchw);
    let mut y = Vec::with_capacity(batch);
    let sigma = hw as f64 / 6.0;
    for b in 0..batch {
        let class = rng.gen_range(0..2usize);
        let cc = if class == 0 {
            hw as f64 * 0.25
        } else {
            hw as f64 * 0.75
        };
        let cr = hw as f64 * 0.5 + rng.gen_range(-1.0..1.0);
        let ccj = cc + rng.gen_range(-1.0..1.0);
        for r in 0..hw {
            for c in 0..hw {
                let d2 = (r as f64 - cr).powi(2) + (c as f64 - ccj).powi(2);
                let v = (-d2 / (2.0 * sigma * sigma)).exp() + rng.gen_range(-0.02..0.02);
                x.set(b, 0, r, c, v);
            }
        }
        y.push(class);
    }
    (x, y)
}

/// Per-class counts of a label vector (distribution sanity checks).
pub fn class_histogram(labels: &[usize], classes: usize) -> Vec<usize> {
    let mut h = vec![0usize; classes];
    for &l in labels {
        h[l] += 1;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        let (a, la) = quadrants(8, 8, 7);
        let (b, lb) = quadrants(8, 8, 7);
        assert_eq!(a.max_abs_diff(&b), 0.0);
        assert_eq!(la, lb);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn quadrant_labels_match_bright_region() {
        let (x, y) = quadrants(16, 8, 1);
        for b in 0..16 {
            // Mean brightness of the labeled quadrant beats the image mean.
            let class = y[b];
            let (r0, c0) = ((class / 2) * 4, (class % 2) * 4);
            let mut quad = 0.0;
            let mut total = 0.0;
            for r in 0..8 {
                for c in 0..8 {
                    let v = x.get(b, 0, r, c);
                    total += v;
                    if (r0..r0 + 4).contains(&r) && (c0..c0 + 4).contains(&c) {
                        quad += v;
                    }
                }
            }
            assert!(quad / 16.0 > total / 64.0, "sample {b}");
        }
    }

    #[test]
    fn textures_have_three_classes() {
        let (_, y) = textures(64, 12, 3, 2);
        let h = class_histogram(&y, 3);
        assert!(h.iter().all(|&c| c > 0), "all classes present: {h:?}");
        assert_eq!(h.iter().sum::<usize>(), 64);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn blobs_are_centered_in_the_right_half() {
        let (x, y) = blobs(8, 16, 3);
        for b in 0..8 {
            let mut left = 0.0;
            let mut right = 0.0;
            for r in 0..16 {
                for c in 0..16 {
                    if c < 8 {
                        left += x.get(b, 0, r, c);
                    } else {
                        right += x.get(b, 0, r, c);
                    }
                }
            }
            if y[b] == 0 {
                assert!(left > right, "sample {b}");
            } else {
                assert!(right > left, "sample {b}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "even extent")]
    fn quadrants_need_even_extent() {
        let _ = quadrants(1, 7, 0);
    }
}
