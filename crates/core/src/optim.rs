//! Optimizers: SGD (with momentum) and Adam.
//!
//! Layers expose their parameters through [`crate::layers::Layer::visit_params`];
//! the optimizer walks them in a stable order and keeps per-parameter state
//! (velocity for momentum, first/second moments for Adam) in parallel
//! buffers, lazily sized on the first step.

use crate::error::SwdnnError;
use crate::layers::Layer;

/// Update rule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Method {
    /// `v = mu*v + g; w -= lr*v` (plain SGD when `momentum == 0`).
    Sgd { momentum: f64 },
    /// Kingma & Ba, with bias correction.
    Adam { beta1: f64, beta2: f64, eps: f64 },
}

/// Per-(layer, parameter-slot) optimizer state.
#[derive(Default)]
struct Slot {
    a: Vec<f64>, // velocity / first moment
    b: Vec<f64>, // second moment (Adam only)
}

/// A stateful optimizer over a stack of layers.
pub struct Optimizer {
    pub lr: f64,
    pub method: Method,
    state: Vec<Vec<Slot>>,
    t: u64,
}

impl Optimizer {
    pub fn sgd(lr: f64) -> Self {
        Self {
            lr,
            method: Method::Sgd { momentum: 0.0 },
            state: Vec::new(),
            t: 0,
        }
    }

    pub fn sgd_momentum(lr: f64, momentum: f64) -> Self {
        assert!((0.0..1.0).contains(&momentum));
        Self {
            lr,
            method: Method::Sgd { momentum },
            state: Vec::new(),
            t: 0,
        }
    }

    pub fn adam(lr: f64) -> Self {
        Self {
            lr,
            method: Method::Adam {
                beta1: 0.9,
                beta2: 0.999,
                eps: 1e-8,
            },
            state: Vec::new(),
            t: 0,
        }
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// [`Optimizer::step`] guarded against numeric faults: every gradient
    /// is scanned for NaN/Inf *before* any parameter is touched, so a
    /// poisoned gradient (e.g. from a faulty accelerator run) cannot
    /// corrupt the weights. On error no parameter changes and the step
    /// counter does not advance; the gradients are left in place for
    /// inspection.
    pub fn step_checked(&mut self, layers: &mut [Box<dyn Layer>]) -> Result<(), SwdnnError> {
        for (i, layer) in layers.iter_mut().enumerate() {
            let mut bad: Option<(usize, f64)> = None;
            layer.visit_params(&mut |_, g| {
                if bad.is_none() {
                    if let Some(j) = g.iter().position(|v| !v.is_finite()) {
                        bad = Some((j, g[j]));
                    }
                }
            });
            if let Some((j, v)) = bad {
                return Err(SwdnnError::Numeric {
                    context: format!("layer {i} ({}) gradient", layer.name()),
                    detail: format!("element {j} is {v}"),
                });
            }
        }
        self.step(layers);
        Ok(())
    }

    /// Apply one update to every parameter of every layer and clear the
    /// gradients.
    pub fn step(&mut self, layers: &mut [Box<dyn Layer>]) {
        self.t += 1;
        if self.state.len() < layers.len() {
            self.state.resize_with(layers.len(), Vec::new);
        }
        let (lr, method, t) = (self.lr, self.method, self.t);
        for (layer, slots) in layers.iter_mut().zip(self.state.iter_mut()) {
            let mut slot_idx = 0usize;
            layer.visit_params(&mut |w, g| {
                if slots.len() <= slot_idx {
                    slots.push(Slot::default());
                }
                let slot = &mut slots[slot_idx];
                slot_idx += 1;
                match method {
                    Method::Sgd { momentum } => {
                        if momentum == 0.0 {
                            for (wi, gi) in w.iter_mut().zip(g.iter_mut()) {
                                *wi -= lr * *gi;
                                *gi = 0.0;
                            }
                        } else {
                            if slot.a.len() != w.len() {
                                slot.a = vec![0.0; w.len()];
                            }
                            for ((wi, gi), vi) in
                                w.iter_mut().zip(g.iter_mut()).zip(slot.a.iter_mut())
                            {
                                *vi = momentum * *vi + *gi;
                                *wi -= lr * *vi;
                                *gi = 0.0;
                            }
                        }
                    }
                    Method::Adam { beta1, beta2, eps } => {
                        if slot.a.len() != w.len() {
                            slot.a = vec![0.0; w.len()];
                            slot.b = vec![0.0; w.len()];
                        }
                        let bc1 = 1.0 - beta1.powi(t as i32);
                        let bc2 = 1.0 - beta2.powi(t as i32);
                        for (((wi, gi), mi), vi) in w
                            .iter_mut()
                            .zip(g.iter_mut())
                            .zip(slot.a.iter_mut())
                            .zip(slot.b.iter_mut())
                        {
                            *mi = beta1 * *mi + (1.0 - beta1) * *gi;
                            *vi = beta2 * *vi + (1.0 - beta2) * *gi * *gi;
                            let m_hat = *mi / bc1;
                            let v_hat = *vi / bc2;
                            *wi -= lr * m_hat / (v_hat.sqrt() + eps);
                            *gi = 0.0;
                        }
                    }
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Layer, Linear};
    use sw_tensor::{Shape4, Tensor4};

    fn quadratic_layer() -> (Vec<Box<dyn Layer>>, Tensor4<f64>) {
        // A 1-in/1-out linear layer; loss = output with d_out = 1 means
        // dL/dw = x, dL/db = 1.
        let mut lin = Linear::new(1, 1, 7);
        lin.w = vec![5.0];
        lin.b = vec![0.0];
        let x = Tensor4::from_vec(Shape4::new(1, 1, 1, 1), vec![2.0]);
        (vec![Box::new(lin)], x)
    }

    fn forward_backward(layers: &mut [Box<dyn Layer>], x: &Tensor4<f64>) {
        let y = layers[0].forward(x).unwrap();
        let dy = Tensor4::full(y.shape(), sw_tensor::Layout::Nchw, 1.0);
        let _ = layers[0].backward(&dy).unwrap();
    }

    #[test]
    fn plain_sgd_matches_hand_update() {
        let (mut layers, x) = quadratic_layer();
        let mut opt = Optimizer::sgd(0.1);
        forward_backward(&mut layers, &x);
        opt.step(&mut layers);
        // dL/dw = x = 2 => w = 5 - 0.1*2 = 4.8
        let mut got = Vec::new();
        layers[0].visit_params(&mut |w, _| got.push(w[0]));
        assert!((got[0] - 4.8).abs() < 1e-12);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let (mut layers, x) = quadratic_layer();
        let mut opt = Optimizer::sgd_momentum(0.1, 0.5);
        forward_backward(&mut layers, &x);
        opt.step(&mut layers); // v = 2,    w = 5 - 0.2  = 4.8
        forward_backward(&mut layers, &x);
        opt.step(&mut layers); // v = 3,    w = 4.8 - 0.3 = 4.5
        let mut got = Vec::new();
        layers[0].visit_params(&mut |w, _| got.push(w[0]));
        assert!((got[0] - 4.5).abs() < 1e-12, "got {}", got[0]);
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        let (mut layers, x) = quadratic_layer();
        let mut opt = Optimizer::adam(0.01);
        forward_backward(&mut layers, &x);
        opt.step(&mut layers);
        // Bias-corrected Adam's first step is ~lr * sign(g).
        let mut got = Vec::new();
        layers[0].visit_params(&mut |w, _| got.push(w[0]));
        assert!((got[0] - (5.0 - 0.01)).abs() < 1e-6, "got {}", got[0]);
    }

    #[test]
    fn gradients_are_cleared_after_step() {
        let (mut layers, x) = quadratic_layer();
        let mut opt = Optimizer::sgd(0.1);
        forward_backward(&mut layers, &x);
        opt.step(&mut layers);
        let mut grads = Vec::new();
        layers[0].visit_params(&mut |_, g| grads.extend_from_slice(g));
        assert!(grads.iter().all(|&g| g == 0.0));
    }

    #[test]
    fn checked_step_refuses_poisoned_gradients() {
        let (mut layers, x) = quadratic_layer();
        let mut opt = Optimizer::sgd(0.1);
        forward_backward(&mut layers, &x);
        layers[0].visit_params(&mut |_, g| g[0] = f64::NAN);
        let err = opt.step_checked(&mut layers).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("gradient") && msg.contains("NaN"), "{msg}");
        assert_eq!(opt.steps(), 0, "a refused step must not count");
        let mut w = Vec::new();
        layers[0].visit_params(&mut |p, _| w.push(p[0]));
        assert_eq!(w[0], 5.0, "weights must be untouched");
    }

    #[test]
    fn checked_step_applies_clean_gradients() {
        let (mut layers, x) = quadratic_layer();
        let mut opt = Optimizer::sgd(0.1);
        forward_backward(&mut layers, &x);
        opt.step_checked(&mut layers).unwrap();
        let mut w = Vec::new();
        layers[0].visit_params(&mut |p, _| w.push(p[0]));
        assert!((w[0] - 4.8).abs() < 1e-12);
    }

    #[test]
    fn adam_converges_on_a_quadratic() {
        // minimize (w*x - 4)^2 / 2 over w with x = 2 (optimum w = 2).
        let mut lin = Linear::new(1, 1, 9);
        lin.w = vec![10.0];
        lin.b = vec![0.0];
        let mut layers: Vec<Box<dyn Layer>> = vec![Box::new(lin)];
        let x = Tensor4::from_vec(Shape4::new(1, 1, 1, 1), vec![2.0]);
        let mut opt = Optimizer::adam(0.2);
        let mut residual = f64::INFINITY;
        for _ in 0..300 {
            let y = layers[0].forward(&x).unwrap();
            residual = y.get(0, 0, 0, 0) - 4.0;
            let dy = Tensor4::from_vec(Shape4::new(1, 1, 1, 1), vec![residual]);
            let _ = layers[0].backward(&dy).unwrap();
            opt.step(&mut layers);
        }
        // The layer trains both w and b, so the optimum is the manifold
        // 2w + b = 4: assert the residual, not a particular w.
        assert!(residual.abs() < 0.05, "residual = {residual}");
    }
}
