//! Resilient execution: bounded retry, plan fallback, degraded-mesh
//! re-planning, and opt-in verified execution.
//!
//! The simulated SW26010 can now fail (see `sw_sim::fault`): DMA transfers
//! abort or stall, bus messages get dropped, whole CPEs fall offline. This
//! module is the recovery policy on top of that fault model:
//!
//! 1. **Retry with reseeded faults.** A transient simulator error
//!    ([`sw_sim::SimError::is_transient`]) re-runs the plan up to
//!    `max_retries` times with a reseeded [`FaultPlan`] — the same seed
//!    would deterministically reproduce the failure. Retry cost is charged
//!    inside the timing model (`dma_retries` / `fault_retry_cycles`
//!    counters), so recovered runs are visibly slower, not magically free.
//! 2. **Plan fallback.** When a plan keeps failing (or fails verification),
//!    the executor walks the chain *model choice → image-size-aware →
//!    batch-size-aware → host reference*. The reference plan runs on the
//!    host MPE, touches no mesh, and therefore always completes.
//! 3. **Degraded-mesh execution.** A permanently-offline CPE
//!    ([`sw_sim::SimError::CpeOffline`]) masks the faulty row/column: the
//!    chip is re-described as a 4×4 mesh (16 CPEs) and the whole chain is
//!    re-planned once on the reduced chip.
//! 4. **Verified execution.** [`VerifyPolicy::SpotCheck`] re-computes a
//!    deterministic sample of output pixels with the naive reference loops
//!    and scans the full output for NaN/Inf before a run is accepted.

use crate::conv::Conv2d;
use crate::error::SwdnnError;
use crate::plans::{ConvPlan, ConvRun, ReferencePlan};
use sw_perfmodel::{ChipSpec, PlanKind};
use sw_sim::{FaultPlan, SimError};
use sw_tensor::{ConvShape, Tensor4};

/// What happened on one plan execution during a recovery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryOutcome {
    /// The run completed and passed verification.
    Accepted,
    /// A transient simulator fault; the same plan is re-run reseeded.
    TransientRetry,
    /// The plan was given up on; the chain moves to the next candidate.
    Abandoned,
    /// A dead CPE forced re-planning on the masked 4×4 mesh.
    MeshDegraded,
    /// The planner rejected the shape outright (`supports` said no before
    /// any execution). The event's `detail` carries the structured
    /// [`SwdnnError::PlanRejected`] reason, so a degrade to the host
    /// reference is diagnosable from the Chrome trace instead of silent.
    PlanRejected,
}

impl RecoveryOutcome {
    pub fn name(&self) -> &'static str {
        match self {
            RecoveryOutcome::Accepted => "accepted",
            RecoveryOutcome::TransientRetry => "transient_retry",
            RecoveryOutcome::Abandoned => "abandoned",
            RecoveryOutcome::MeshDegraded => "mesh_degraded",
            RecoveryOutcome::PlanRejected => "plan_rejected",
        }
    }
}

/// One step of the recovery timeline: which plan ran (as which attempt)
/// and how it ended. `detail` carries the triggering error, if any.
#[derive(Clone, Debug, PartialEq)]
pub struct RecoveryEvent {
    /// 1-based global attempt number (0 for the mesh-degradation marker,
    /// which is a re-planning decision, not a plan execution).
    pub attempt: u32,
    pub plan: String,
    pub outcome: RecoveryOutcome,
    pub detail: String,
}

/// How much checking a [`ResilientExecutor`] does on accepted outputs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum VerifyPolicy {
    /// Trust plan outputs (the default; plans are already exact in tests).
    Off,
    /// Scan the output for non-finite values and re-compute `samples`
    /// deterministic output pixels with the reference loops, accepting a
    /// relative error of `tol`.
    SpotCheck { samples: usize, tol: f64 },
}

/// Executes convolutions with retry, fallback, and degradation policies.
#[derive(Clone, Copy, Debug)]
pub struct ResilientExecutor {
    pub chip: ChipSpec,
    /// Faults injected into every simulated mesh.
    pub fault: Option<FaultPlan>,
    /// Transient-error re-runs allowed per plan (on top of the simulator's
    /// own per-transfer DMA retries).
    pub max_retries: u32,
    /// Output acceptance checks.
    pub verify: VerifyPolicy,
    /// Walk the plan-fallback chain on persistent failure. Disable to make
    /// exhaustion surface as [`SwdnnError::FaultExhausted`].
    pub allow_fallback: bool,
    /// Execution context every simulated mesh (including retries and the
    /// degraded re-run) executes on.
    pub rt: &'static sw_runtime::ExecutionContext,
}

impl Default for ResilientExecutor {
    fn default() -> Self {
        Self::new()
    }
}

impl ResilientExecutor {
    pub fn new() -> Self {
        Self {
            chip: ChipSpec::sw26010(),
            fault: None,
            max_retries: 3,
            verify: VerifyPolicy::Off,
            allow_fallback: true,
            rt: sw_runtime::global(),
        }
    }

    /// Run every simulation on an explicit [`sw_runtime::ExecutionContext`].
    pub fn on_runtime(mut self, rt: &'static sw_runtime::ExecutionContext) -> Self {
        self.rt = rt;
        self
    }

    pub fn on_chip(mut self, chip: ChipSpec) -> Self {
        self.chip = chip;
        self
    }

    pub fn with_fault(mut self, fault: Option<FaultPlan>) -> Self {
        self.fault = fault;
        self
    }

    pub fn with_max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    pub fn with_verification(mut self, verify: VerifyPolicy) -> Self {
        self.verify = verify;
        self
    }

    pub fn with_fallback(mut self, allow: bool) -> Self {
        self.allow_fallback = allow;
        self
    }

    /// The reduced chip used once a CPE row/column is masked: the surviving
    /// quadrant runs as a 4×4 mesh.
    pub fn degraded_chip(chip: ChipSpec) -> ChipSpec {
        ChipSpec {
            mesh_dim: 4,
            cpes_per_cg: 16,
            ..chip
        }
    }

    /// Run the convolution with the full recovery policy.
    pub fn run(
        &self,
        shape: &ConvShape,
        input: &Tensor4<f64>,
        filter: &Tensor4<f64>,
    ) -> Result<ResilientReport, SwdnnError> {
        let mut attempts = 0u32;
        let mut fallbacks = Vec::new();
        let mut timeline = Vec::new();
        match self.run_chain(
            self.chip,
            self.fault,
            shape,
            input,
            filter,
            &mut attempts,
            &mut fallbacks,
            &mut timeline,
        ) {
            Ok((run, plan_name)) => {
                Ok(self.report(run, plan_name, false, attempts, fallbacks, timeline))
            }
            Err(e) if Self::is_offline(&e) => {
                fallbacks.push(format!("masking faulty CPE row/column: {e}"));
                timeline.push(RecoveryEvent {
                    attempt: 0,
                    plan: "mesh".into(),
                    outcome: RecoveryOutcome::MeshDegraded,
                    detail: e.to_string(),
                });
                let chip = Self::degraded_chip(self.chip);
                // The dead CPE is outside the masked 4×4 quadrant; other
                // fault processes keep running on the survivors.
                let fault = self.fault.map(|f| FaultPlan { dead_mask: 0, ..f });
                let (run, plan_name) = self.run_chain(
                    chip,
                    fault,
                    shape,
                    input,
                    filter,
                    &mut attempts,
                    &mut fallbacks,
                    &mut timeline,
                )?;
                Ok(self.report(run, plan_name, true, attempts, fallbacks, timeline))
            }
            Err(e) => Err(e),
        }
    }

    /// Walk the candidate-plan chain on one chip description.
    #[allow(clippy::too_many_arguments)]
    fn run_chain(
        &self,
        chip: ChipSpec,
        fault: Option<FaultPlan>,
        shape: &ConvShape,
        input: &Tensor4<f64>,
        filter: &Tensor4<f64>,
        attempts: &mut u32,
        fallbacks: &mut Vec<String>,
        timeline: &mut Vec<RecoveryEvent>,
    ) -> Result<(ConvRun, String), SwdnnError> {
        // Candidate chain: the model's pick, then each mesh family forced,
        // then the always-correct host reference.
        #[derive(Clone, Copy)]
        enum Cand {
            Model,
            Forced(PlanKind),
            Reference,
        }
        let chain = [
            Cand::Model,
            Cand::Forced(PlanKind::ImageSizeAware),
            Cand::Forced(PlanKind::BatchSizeAware),
            Cand::Reference,
        ];
        let make =
            |cand: Cand, fault: Option<FaultPlan>| -> Result<Box<dyn ConvPlan>, SwdnnError> {
                Ok(match cand {
                    Cand::Model => Conv2d::new(*shape)?
                        .on_chip(chip)
                        .with_fault(fault)
                        .on_runtime(self.rt)
                        .plan(),
                    Cand::Forced(k) => Conv2d::new(*shape)?
                        .on_chip(chip)
                        .with_fault(fault)
                        .with_plan(k)
                        .on_runtime(self.rt)
                        .plan(),
                    Cand::Reference => Box::new(ReferencePlan { chip }),
                })
            };

        let mut tried: Vec<String> = Vec::new();
        let mut rejected_logged: Vec<String> = Vec::new();
        // When automatic selection already degraded to the host reference,
        // the mesh families were rejected silently inside `Conv2d::plan` —
        // probe them here so the recovery timeline (and with it the Chrome
        // trace) records the structured reason for the degrade instead of
        // presenting the host run as a first-choice acceptance.
        if make(Cand::Model, None)?.name() == "reference" {
            for kind in [PlanKind::ImageSizeAware, PlanKind::BatchSizeAware] {
                let probe = make(Cand::Forced(kind), None)?;
                if let Err(e) = probe.supports(shape) {
                    log_rejection(
                        shape,
                        probe.name(),
                        e,
                        &mut rejected_logged,
                        fallbacks,
                        timeline,
                    );
                }
            }
        }
        let mut last_sim: Option<SimError> = None;
        'candidates: for cand in chain {
            let probe = make(cand, None)?;
            let name = probe.name().to_string();
            if tried.contains(&name) {
                continue;
            }
            tried.push(name.clone());
            if let Err(e) = probe.supports(shape) {
                log_rejection(shape, &name, e, &mut rejected_logged, fallbacks, timeline);
                continue;
            }

            for attempt in 0..=self.max_retries {
                *attempts += 1;
                let plan = make(cand, Self::reseed_for_attempt(fault, attempt))?;
                let mut record = |outcome: RecoveryOutcome, detail: String| {
                    timeline.push(RecoveryEvent {
                        attempt: *attempts,
                        plan: name.clone(),
                        outcome,
                        detail,
                    });
                };
                match plan.run(shape, input, filter) {
                    Ok(run) => match self.verify_run(shape, input, filter, &run) {
                        Ok(()) => {
                            record(RecoveryOutcome::Accepted, String::new());
                            return Ok((run, name));
                        }
                        Err(e) => {
                            record(RecoveryOutcome::Abandoned, e.to_string());
                            fallbacks.push(format!("{name}: {e}"));
                            if !self.allow_fallback {
                                return Err(e);
                            }
                            continue 'candidates;
                        }
                    },
                    Err(SwdnnError::Sim(e)) => {
                        if matches!(e, SimError::CpeOffline { .. }) {
                            // Not recoverable by retry or another mesh plan:
                            // surface it so `run` can degrade the mesh.
                            return Err(SwdnnError::Sim(e));
                        }
                        last_sim = Some(e.clone());
                        if e.is_transient() && attempt < self.max_retries {
                            record(RecoveryOutcome::TransientRetry, e.to_string());
                            continue; // reseeded re-run
                        }
                        record(RecoveryOutcome::Abandoned, e.to_string());
                        fallbacks.push(format!("{name}: {e}"));
                        if !self.allow_fallback {
                            return Err(SwdnnError::FaultExhausted {
                                attempts: *attempts,
                                last: e,
                            });
                        }
                        continue 'candidates;
                    }
                    Err(e) => {
                        record(RecoveryOutcome::Abandoned, e.to_string());
                        fallbacks.push(format!("{name}: {e}"));
                        if !self.allow_fallback {
                            return Err(e);
                        }
                        continue 'candidates;
                    }
                }
            }
        }
        Err(SwdnnError::FaultExhausted {
            attempts: *attempts,
            last: last_sim.unwrap_or_else(|| SimError::Program("no candidate plan ran".into())),
        })
    }

    fn is_offline(e: &SwdnnError) -> bool {
        matches!(
            e,
            SwdnnError::Sim(SimError::CpeOffline { .. })
                | SwdnnError::FaultExhausted {
                    last: SimError::CpeOffline { .. },
                    ..
                }
        )
    }

    /// Attempt 0 uses the plan as configured; each retry derives a fresh
    /// seed (re-running the identical seed would reproduce the fault).
    fn reseed_for_attempt(fault: Option<FaultPlan>, attempt: u32) -> Option<FaultPlan> {
        fault.map(|f| {
            if attempt == 0 {
                f
            } else {
                f.reseed(f.seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(attempt as u64))
            }
        })
    }

    fn verify_run(
        &self,
        shape: &ConvShape,
        input: &Tensor4<f64>,
        filter: &Tensor4<f64>,
        run: &ConvRun,
    ) -> Result<(), SwdnnError> {
        let VerifyPolicy::SpotCheck { samples, tol } = self.verify else {
            return Ok(());
        };
        if let Some(v) = run.output.data().iter().find(|v| !v.is_finite()) {
            return Err(SwdnnError::Numeric {
                context: "verified execution".into(),
                detail: format!("output contains non-finite value {v}"),
            });
        }
        let mut state = self.fault.map_or(0xD1FF_5EED_u64, |f| f.seed) ^ 0x6A09_E667_F3BC_C909;
        for _ in 0..samples {
            let b = (splitmix64(&mut state) % shape.batch as u64) as usize;
            let no = (splitmix64(&mut state) % shape.no as u64) as usize;
            let r = (splitmix64(&mut state) % shape.ro as u64) as usize;
            let c = (splitmix64(&mut state) % shape.co as u64) as usize;
            let mut acc = 0.0;
            for ni in 0..shape.ni {
                for kr in 0..shape.kr {
                    for kc in 0..shape.kc {
                        acc += input.get(b, ni, r + kr, c + kc) * filter.get(no, ni, kr, kc);
                    }
                }
            }
            let got = run.output.get(b, no, r, c);
            if (acc - got).abs() > tol * (1.0 + acc.abs()) {
                return Err(SwdnnError::Numeric {
                    context: "verified execution".into(),
                    detail: format!(
                        "output[{b},{no},{r},{c}] = {got} diverges from reference {acc}"
                    ),
                });
            }
        }
        Ok(())
    }

    fn report(
        &self,
        run: ConvRun,
        plan_name: String,
        degraded: bool,
        attempts: u32,
        fallbacks: Vec<String>,
        timeline: Vec<RecoveryEvent>,
    ) -> ResilientReport {
        let totals = run.timing.stats.totals;
        ResilientReport {
            plan_name,
            degraded,
            attempts,
            fallbacks,
            timeline,
            dma_retries: totals.dma_retries,
            retry_cycles: totals.fault_retry_cycles + totals.fault_stall_cycles,
            run,
        }
    }
}

/// Outcome of a resilient execution.
#[derive(Clone, Debug)]
pub struct ResilientReport {
    /// The accepted output and timing (retry/stall cycles included).
    pub run: ConvRun,
    /// Name of the plan that finally produced the output.
    pub plan_name: String,
    /// True when a CPE was masked and the run happened on the 4×4 mesh.
    pub degraded: bool,
    /// Plan executions, counting retries, across the whole recovery.
    pub attempts: u32,
    /// Human-readable trail of every plan given up on and why.
    pub fallbacks: Vec<String>,
    /// Structured recovery timeline: one event per plan execution (plus a
    /// marker when the mesh was degraded), in order.
    pub timeline: Vec<RecoveryEvent>,
    /// Simulator-level DMA re-issues inside the accepted run.
    pub dma_retries: u64,
    /// Cycles lost to fault backoff and stalls inside the accepted run.
    pub retry_cycles: u64,
}

impl ResilientReport {
    /// Depth of the fallback chain actually walked: how many distinct plans
    /// were abandoned before one was accepted.
    pub fn fallback_depth(&self) -> usize {
        let mut abandoned: Vec<&str> = self
            .timeline
            .iter()
            .filter(|e| e.outcome == RecoveryOutcome::Abandoned)
            .map(|e| e.plan.as_str())
            .collect();
        abandoned.dedup();
        abandoned.len()
    }

    /// The recovery timeline as a Chrome-trace document: instant events on
    /// `pid 1 / tid 0` ("recovery" track), one per [`RecoveryEvent`],
    /// followed by a span for the accepted run covering its simulated
    /// duration at `clock_ghz`. Merge with the mesh's execution trace
    /// (`sw_sim::trace::to_chrome`) to see recovery decisions alongside
    /// per-CPE activity.
    pub fn recovery_trace(&self, clock_ghz: f64) -> sw_obs::ChromeTrace {
        let mut rec = sw_obs::Recorder::enabled();
        for (i, e) in self.timeline.iter().enumerate() {
            rec.instant(
                e.outcome.name(),
                "exec",
                1,
                0,
                i as f64,
                vec![
                    ("plan".into(), serde_json::Value::from(e.plan.as_str())),
                    ("attempt".into(), serde_json::Value::from(e.attempt as u64)),
                    ("detail".into(), serde_json::Value::from(e.detail.as_str())),
                ],
            );
        }
        let dur_us = self.run.timing.cycles as f64 / (clock_ghz * 1e3);
        rec.span_cat(
            "accepted_run",
            "exec",
            1,
            0,
            self.timeline.len() as f64,
            dur_us,
            vec![
                (
                    "plan".into(),
                    serde_json::Value::from(self.plan_name.as_str()),
                ),
                (
                    "dma_retries".into(),
                    serde_json::Value::from(self.dma_retries),
                ),
                (
                    "retry_cycles".into(),
                    serde_json::Value::from(self.retry_cycles),
                ),
            ],
        );
        rec.take()
    }
}

/// Record one planner rejection as a structured [`SwdnnError::PlanRejected`]
/// in both the human-readable fallback trail and the recovery timeline
/// (which [`ResilientReport::recovery_trace`] emits into the Chrome
/// trace). Deduplicated per plan name: the pre-probe in `run_chain` and
/// the chain walk itself may both see the same rejection.
fn log_rejection(
    shape: &ConvShape,
    name: &str,
    e: SwdnnError,
    rejected_logged: &mut Vec<String>,
    fallbacks: &mut Vec<String>,
    timeline: &mut Vec<RecoveryEvent>,
) {
    if rejected_logged.iter().any(|n| n == name) {
        return;
    }
    rejected_logged.push(name.to_string());
    let structured = match e {
        SwdnnError::Unsupported { reason, .. } => SwdnnError::PlanRejected {
            shape: *shape,
            reason,
        },
        other => other,
    };
    timeline.push(RecoveryEvent {
        attempt: 0,
        plan: name.to_string(),
        outcome: RecoveryOutcome::PlanRejected,
        detail: structured.to_string(),
    });
    fallbacks.push(format!("{name}: {structured}"));
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_tensor::init::lattice_tensor;
    use sw_tensor::{conv2d_ref, Layout};

    fn small() -> ConvShape {
        ConvShape::new(32, 16, 16, 8, 8, 3, 3)
    }

    fn operands(shape: &ConvShape) -> (Tensor4<f64>, Tensor4<f64>) {
        (
            lattice_tensor(shape.input_shape(), Layout::Nchw, 11),
            lattice_tensor(shape.filter_shape(), Layout::Nchw, 12),
        )
    }

    #[test]
    fn clean_run_needs_no_recovery() {
        let shape = small();
        let (input, filter) = operands(&shape);
        let rep = ResilientExecutor::new()
            .run(&shape, &input, &filter)
            .unwrap();
        assert_eq!(rep.attempts, 1);
        assert!(!rep.degraded);
        assert_eq!(rep.dma_retries, 0);
        assert_eq!(rep.retry_cycles, 0);
        let expect = conv2d_ref(shape, &input, &filter);
        assert_eq!(rep.run.output.max_abs_diff(&expect), 0.0);
    }

    #[test]
    fn transient_dma_faults_recover_and_cost_cycles() {
        let shape = small();
        let (input, filter) = operands(&shape);
        let clean = ResilientExecutor::new()
            .run(&shape, &input, &filter)
            .unwrap();
        // Find a seed whose fault pattern actually hits this run's DMA
        // stream (deterministic: the scan itself is reproducible).
        let mut hit = None;
        for seed in 0..64u64 {
            let fault = FaultPlan::none(seed).with_dma_fail_rate(2e-3);
            let rep = ResilientExecutor::new()
                .with_fault(Some(fault))
                .run(&shape, &input, &filter)
                .unwrap();
            if rep.dma_retries > 0 {
                hit = Some((seed, rep));
                break;
            }
        }
        let (seed, rep) = hit.expect("some seed in 0..64 must inject at least one DMA fault");
        assert!(
            rep.retry_cycles > 0,
            "retries must be charged into the timing"
        );
        assert!(
            rep.run.timing.cycles > clean.run.timing.cycles,
            "faulty {} vs clean {}",
            rep.run.timing.cycles,
            clean.run.timing.cycles
        );
        // Bit-identical output: faults cost time, never accuracy.
        assert_eq!(rep.run.output.max_abs_diff(&clean.run.output), 0.0);
        // Determinism: the same seed reproduces the identical recovery.
        let again = ResilientExecutor::new()
            .with_fault(Some(FaultPlan::none(seed).with_dma_fail_rate(2e-3)))
            .run(&shape, &input, &filter)
            .unwrap();
        assert_eq!(again.run.timing.cycles, rep.run.timing.cycles);
        assert_eq!(again.dma_retries, rep.dma_retries);
        assert_eq!(again.attempts, rep.attempts);
    }

    #[test]
    fn dead_cpe_masks_row_and_column_and_completes() {
        let shape = small();
        let (input, filter) = operands(&shape);
        let fault = FaultPlan::none(7).with_dead_cpe(2, 3);
        let rep = ResilientExecutor::new()
            .with_fault(Some(fault))
            .run(&shape, &input, &filter)
            .unwrap();
        assert!(rep.degraded, "a dead CPE must force the 4×4 mesh");
        assert_ne!(
            rep.plan_name, "reference",
            "the reduced mesh must run a real mesh plan, not the host fallback"
        );
        assert!(
            rep.fallbacks.iter().any(|f| f.contains("masking")),
            "fallback trail must record the degradation: {:?}",
            rep.fallbacks
        );
        let expect = conv2d_ref(shape, &input, &filter);
        assert_eq!(rep.run.output.max_abs_diff(&expect), 0.0);
    }

    #[test]
    fn exhausted_recovery_surfaces_fault_exhausted() {
        let shape = small();
        let (input, filter) = operands(&shape);
        let fault = FaultPlan::none(1).with_dma_fail_rate(1.0);
        let err = ResilientExecutor::new()
            .with_fault(Some(fault))
            .with_max_retries(2)
            .with_fallback(false)
            .run(&shape, &input, &filter)
            .unwrap_err();
        match err {
            SwdnnError::FaultExhausted { attempts, last } => {
                assert_eq!(attempts, 3, "initial run + 2 retries");
                assert!(matches!(last, SimError::DmaFault { .. }));
            }
            other => panic!("expected FaultExhausted, got {other}"),
        }
    }

    #[test]
    fn fallback_chain_reaches_the_host_reference_under_total_dma_loss() {
        let shape = small();
        let (input, filter) = operands(&shape);
        let fault = FaultPlan::none(1).with_dma_fail_rate(1.0);
        let rep = ResilientExecutor::new()
            .with_fault(Some(fault))
            .with_max_retries(1)
            .run(&shape, &input, &filter)
            .unwrap();
        assert_eq!(
            rep.plan_name, "reference",
            "only the host path survives 100% DMA loss"
        );
        assert!(
            !rep.fallbacks.is_empty(),
            "the mesh plans must be recorded as abandoned"
        );
        let expect = conv2d_ref(shape, &input, &filter);
        assert_eq!(rep.run.output.max_abs_diff(&expect), 0.0);
    }

    #[test]
    fn clean_run_timeline_is_a_single_acceptance() {
        let shape = small();
        let (input, filter) = operands(&shape);
        let rep = ResilientExecutor::new()
            .run(&shape, &input, &filter)
            .unwrap();
        assert_eq!(rep.timeline.len(), 1);
        assert_eq!(rep.timeline[0].outcome, RecoveryOutcome::Accepted);
        assert_eq!(rep.timeline[0].plan, rep.plan_name);
        assert_eq!(rep.fallback_depth(), 0);
        let trace = rep.recovery_trace(1.45);
        // One instant per timeline event plus the accepted-run span.
        assert_eq!(trace.events.len(), 2);
        assert!(trace.events.iter().all(|e| e.cat == "exec"));
        let span = trace.events.last().unwrap();
        assert_eq!(span.name, "accepted_run");
        assert!(span.dur_us > 0.0);
    }

    #[test]
    fn fallback_timeline_records_abandonments_and_depth() {
        let shape = small();
        let (input, filter) = operands(&shape);
        let fault = FaultPlan::none(1).with_dma_fail_rate(1.0);
        let rep = ResilientExecutor::new()
            .with_fault(Some(fault))
            .with_max_retries(1)
            .run(&shape, &input, &filter)
            .unwrap();
        assert_eq!(rep.plan_name, "reference");
        assert!(rep.fallback_depth() >= 1, "mesh plans were abandoned");
        assert_eq!(
            rep.timeline.last().unwrap().outcome,
            RecoveryOutcome::Accepted
        );
        assert!(
            rep.timeline
                .iter()
                .any(|e| e.outcome == RecoveryOutcome::TransientRetry),
            "100% DMA loss must show reseeded retries before abandonment"
        );
        let trace = rep.recovery_trace(1.45);
        assert_eq!(trace.events.len(), rep.timeline.len() + 1);
        // The document is valid Chrome-trace JSON.
        let back = sw_obs::ChromeTrace::from_json_str(&trace.to_json_string()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn degraded_run_timeline_marks_the_mesh_degradation() {
        let shape = small();
        let (input, filter) = operands(&shape);
        let fault = FaultPlan::none(7).with_dead_cpe(2, 3);
        let rep = ResilientExecutor::new()
            .with_fault(Some(fault))
            .run(&shape, &input, &filter)
            .unwrap();
        assert!(rep.degraded);
        assert!(rep
            .timeline
            .iter()
            .any(|e| e.outcome == RecoveryOutcome::MeshDegraded));
    }

    #[test]
    fn unservable_shapes_log_structured_rejections_into_the_trace() {
        // Ni = No = 7: every mesh plan refuses, the host reference runs.
        // Before this was recorded, the degrade was silent — the timeline
        // showed a clean first-choice acceptance of "reference".
        let shape = ConvShape::new(32, 7, 7, 4, 8, 3, 3);
        let (input, filter) = operands(&shape);
        let rep = ResilientExecutor::new()
            .run(&shape, &input, &filter)
            .unwrap();
        assert_eq!(rep.plan_name, "reference");
        let rejections: Vec<_> = rep
            .timeline
            .iter()
            .filter(|e| e.outcome == RecoveryOutcome::PlanRejected)
            .collect();
        assert_eq!(
            rejections.len(),
            2,
            "both mesh families must be logged: {:?}",
            rep.timeline
        );
        for e in &rejections {
            assert!(e.detail.contains("rejected"), "{}", e.detail);
            assert!(e.detail.contains("multiple"), "{}", e.detail);
        }
        assert!(rep
            .fallbacks
            .iter()
            .any(|f| f.contains("image_size_aware") && f.contains("rejected")));
        // The Chrome trace carries the rejection instants with reasons.
        let trace = rep.recovery_trace(1.45);
        let rejected: Vec<_> = trace
            .events
            .iter()
            .filter(|e| e.name == "plan_rejected")
            .collect();
        assert_eq!(rejected.len(), 2);
        // Rejection never degrades correctness.
        let expect = conv2d_ref(shape, &input, &filter);
        assert_eq!(rep.run.output.max_abs_diff(&expect), 0.0);
    }

    #[test]
    fn verified_execution_accepts_correct_runs() {
        let shape = small();
        let (input, filter) = operands(&shape);
        let rep = ResilientExecutor::new()
            .with_verification(VerifyPolicy::SpotCheck {
                samples: 16,
                tol: 1e-10,
            })
            .run(&shape, &input, &filter)
            .unwrap();
        assert_eq!(
            rep.attempts, 1,
            "a correct run must pass the spot check first try"
        );
    }
}
