//! Cycle cost of the inner GEMM kernel, priced by the `sw-isa` simulator.
//!
//! Every convolution plan's compute step is the register-blocked tile
//! kernel of §V/§VI: a `4 (No) × 16 (pixel)` output tile accumulated over
//! `n` reduction steps. Rather than hard-coding the closed-form `17n + 4`,
//! we *simulate* the generated instruction stream once per distinct `n`
//! (naive and reordered variants) and cache the result — so if the pipeline
//! model changes, every plan's timing follows automatically. The closed
//! forms are asserted against the simulation in `sw-isa`'s own tests.

use crate::serve::ShardedMap;
use std::sync::OnceLock;
use sw_isa::{naive_gemm_kernel, reordered_gemm_kernel, DualPipe, KernelSpec};

/// Extra P1 cycles per tile for spilling/refilling the 16 vector
/// accumulators between rotation rounds (16 `vload` + 16 `vstore` of the
/// C tile, plus loop control) — the C tile lives in registers only inside
/// one round.
pub const TILE_OVERHEAD_CYCLES: u64 = 40;

/// Rows (output channels) covered by one register tile (`rb_no`).
pub const TILE_NO: usize = 4;
/// Pixels covered by one register tile (`rb_b`).
pub const TILE_PIX: usize = 16;

/// The C tile is `TILE_NO x TILE_PIX = 64` doubles = 16 vector registers;
/// the spill/refill between rotation rounds moves it twice (16 `vload` +
/// 16 `vstore`) and accounts for most of [`TILE_OVERHEAD_CYCLES`].
pub const TILE_SPILL_VECTORS: u64 = (TILE_NO * TILE_PIX / 4) as u64;

/// Issue-level profile of one register tile: timing plus the observable
/// side channels (per-pipe slots, LDM traffic) the observability layer
/// aggregates. All values come from simulating the generated instruction
/// stream with the `sw-isa` dual-pipe model.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TileProfile {
    /// Issue cycles of the tile's inner loop.
    pub cycles: u64,
    /// Instructions issued to P0 (FP) / P1 (memory) in the inner loop.
    pub p0_slots: u64,
    pub p1_slots: u64,
    /// LDM bytes read / written by the inner loop (Eq. 5 accounting:
    /// `vldde` is charged the full 32 B of register-file fill).
    pub ldm_load_bytes: u64,
    pub ldm_store_bytes: u64,
}

fn cache() -> &'static ShardedMap<(usize, bool), TileProfile> {
    static CACHE: OnceLock<ShardedMap<(usize, bool), TileProfile>> = OnceLock::new();
    CACHE.get_or_init(ShardedMap::default)
}

/// Hit/miss totals of the process-wide tile-profile cache, for the serving
/// layer's cache observability.
pub fn tile_cache_stats() -> (u64, u64) {
    (cache().hits(), cache().misses())
}

/// Full issue profile of one register tile over `n` reduction steps.
pub fn tile_profile(n: usize, reordered: bool) -> TileProfile {
    let n = n.max(1);
    let computed: Result<TileProfile, std::convert::Infallible> =
        cache().get_or_insert_with(&(n, reordered), || {
            let spec = KernelSpec::new(n);
            let prog = if reordered {
                reordered_gemm_kernel(spec)
            } else {
                naive_gemm_kernel(spec)
            };
            let rep = DualPipe::default().run(&prog);
            Ok(TileProfile {
                cycles: rep.cycles,
                p0_slots: rep.p0_issued,
                p1_slots: rep.p1_issued,
                ldm_load_bytes: rep.ldm_load_bytes,
                ldm_store_bytes: rep.ldm_store_bytes,
            })
        });
    match computed {
        Ok(p) => p,
    }
}

/// Issue cycles of one register tile over `n` reduction steps.
pub fn tile_cycles(n: usize, reordered: bool) -> u64 {
    tile_profile(n, reordered).cycles
}

/// Cycles for a full per-CPE GEMM block update: an `m × p` C block
/// accumulated over `n` reduction steps, tiled `TILE_NO × TILE_PIX`.
pub fn block_cycles(m: usize, p: usize, n: usize, reordered: bool) -> u64 {
    block_profile(m, p, n, reordered).cycles
}

/// Full issue profile of a per-CPE GEMM block update, including the
/// per-tile C spill/refill overhead (counted as P1 vector loads/stores).
pub fn block_profile(m: usize, p: usize, n: usize, reordered: bool) -> TileProfile {
    let tiles = (m.div_ceil(TILE_NO) * p.div_ceil(TILE_PIX)) as u64;
    let t = tile_profile(n, reordered);
    TileProfile {
        cycles: tiles * (t.cycles + TILE_OVERHEAD_CYCLES),
        p0_slots: tiles * t.p0_slots,
        p1_slots: tiles * (t.p1_slots + 2 * TILE_SPILL_VECTORS),
        ldm_load_bytes: tiles * (t.ldm_load_bytes + 32 * TILE_SPILL_VECTORS),
        ldm_store_bytes: tiles * (t.ldm_store_bytes + 32 * TILE_SPILL_VECTORS),
    }
}

/// Flops of the same block update (2 per multiply-add).
pub fn block_flops(m: usize, p: usize, n: usize) -> u64 {
    2 * (m * p * n) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_cycles_match_closed_forms() {
        for n in 2..=48 {
            assert_eq!(tile_cycles(n, true), 17 * n as u64 + 4);
            assert_eq!(tile_cycles(n, false), 26 * n as u64 - 1);
        }
    }

    #[test]
    fn cache_returns_consistent_values() {
        let a = tile_cycles(16, true);
        let b = tile_cycles(16, true);
        assert_eq!(a, b);
    }

    #[test]
    fn tile_cache_counts_hits_and_misses() {
        // The cache is process-global and other tests hit it concurrently,
        // so assert deltas, not absolutes.
        let _ = tile_cycles(37, true);
        let (h0, m0) = tile_cache_stats();
        let _ = tile_cycles(37, true);
        let (h1, m1) = tile_cache_stats();
        assert!(h1 > h0, "second lookup must be a hit");
        assert!(m1 >= m0.max(1), "first lookup was a miss");
    }

    #[test]
    fn block_cycles_tile_count() {
        // 16x64 block = 4*4 = 16 tiles.
        let c = block_cycles(16, 64, 16, true);
        assert_eq!(c, 16 * (17 * 16 + 4 + TILE_OVERHEAD_CYCLES));
    }

    #[test]
    fn reordered_blocks_are_faster() {
        assert!(block_cycles(16, 64, 16, true) < block_cycles(16, 64, 16, false));
    }

    #[test]
    fn block_flops_counts_fmas_twice() {
        assert_eq!(block_flops(4, 16, 8), 2 * 4 * 16 * 8);
    }

    #[test]
    fn partial_tiles_round_up() {
        let full = block_cycles(4, 16, 8, true);
        let partial = block_cycles(3, 15, 8, true);
        assert_eq!(full, partial, "partial tiles cost a full tile");
    }

    #[test]
    fn tile_profile_ldm_traffic_matches_eq5_structure() {
        // Per reduction step the reordered kernel issues 4 vloads (image)
        // + 4 vlddes (filter), each charged 32 B -> 256 B/step. Stores
        // appear only in the spill/refill overhead, not the inner loop.
        let n = 16;
        let t = tile_profile(n, true);
        assert_eq!(t.ldm_load_bytes, 256 * n as u64);
        assert_eq!(t.ldm_store_bytes, 0);
        assert!(t.p0_slots >= (TILE_NO * TILE_PIX / 4 * n) as u64);
        assert!(t.p1_slots > 0);
    }

    #[test]
    fn block_profile_adds_spill_refill_per_tile() {
        let n = 8;
        let t = tile_profile(n, true);
        let b = block_profile(TILE_NO, TILE_PIX, n, true); // exactly one tile
        assert_eq!(b.cycles, t.cycles + TILE_OVERHEAD_CYCLES);
        assert_eq!(b.ldm_load_bytes, t.ldm_load_bytes + 32 * TILE_SPILL_VECTORS);
        assert_eq!(
            b.ldm_store_bytes,
            t.ldm_store_bytes + 32 * TILE_SPILL_VECTORS
        );
        assert_eq!(b.p1_slots, t.p1_slots + 2 * TILE_SPILL_VECTORS);
        assert_eq!(b.p0_slots, t.p0_slots);
    }
}
