//! Cycle cost of the inner GEMM kernel, priced by the `sw-isa` simulator.
//!
//! Every convolution plan's compute step is the register-blocked tile
//! kernel of §V/§VI: a `4 (No) × 16 (pixel)` output tile accumulated over
//! `n` reduction steps. Rather than hard-coding the closed-form `17n + 4`,
//! we *simulate* the generated instruction stream once per distinct `n`
//! (naive and reordered variants) and cache the result — so if the pipeline
//! model changes, every plan's timing follows automatically. The closed
//! forms are asserted against the simulation in `sw-isa`'s own tests.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::OnceLock;
use sw_isa::{naive_gemm_kernel, reordered_gemm_kernel, DualPipe, KernelSpec};

/// Extra P1 cycles per tile for spilling/refilling the 16 vector
/// accumulators between rotation rounds (16 `vload` + 16 `vstore` of the
/// C tile, plus loop control) — the C tile lives in registers only inside
/// one round.
pub const TILE_OVERHEAD_CYCLES: u64 = 40;

/// Rows (output channels) covered by one register tile (`rb_no`).
pub const TILE_NO: usize = 4;
/// Pixels covered by one register tile (`rb_b`).
pub const TILE_PIX: usize = 16;

fn cache() -> &'static Mutex<HashMap<(usize, bool), u64>> {
    static CACHE: OnceLock<Mutex<HashMap<(usize, bool), u64>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Issue cycles of one register tile over `n` reduction steps.
pub fn tile_cycles(n: usize, reordered: bool) -> u64 {
    let n = n.max(1);
    if let Some(&c) = cache().lock().get(&(n, reordered)) {
        return c;
    }
    let spec = KernelSpec::new(n);
    let prog = if reordered {
        reordered_gemm_kernel(spec)
    } else {
        naive_gemm_kernel(spec)
    };
    let cycles = DualPipe::default().run(&prog).cycles;
    cache().lock().insert((n, reordered), cycles);
    cycles
}

/// Cycles for a full per-CPE GEMM block update: an `m × p` C block
/// accumulated over `n` reduction steps, tiled `TILE_NO × TILE_PIX`.
pub fn block_cycles(m: usize, p: usize, n: usize, reordered: bool) -> u64 {
    let tiles = (m.div_ceil(TILE_NO) * p.div_ceil(TILE_PIX)) as u64;
    tiles * (tile_cycles(n, reordered) + TILE_OVERHEAD_CYCLES)
}

/// Flops of the same block update (2 per multiply-add).
pub fn block_flops(m: usize, p: usize, n: usize) -> u64 {
    2 * (m * p * n) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_cycles_match_closed_forms() {
        for n in 2..=48 {
            assert_eq!(tile_cycles(n, true), 17 * n as u64 + 4);
            assert_eq!(tile_cycles(n, false), 26 * n as u64 - 1);
        }
    }

    #[test]
    fn cache_returns_consistent_values() {
        let a = tile_cycles(16, true);
        let b = tile_cycles(16, true);
        assert_eq!(a, b);
    }

    #[test]
    fn block_cycles_tile_count() {
        // 16x64 block = 4*4 = 16 tiles.
        let c = block_cycles(16, 64, 16, true);
        assert_eq!(c, 16 * (17 * 16 + 4 + TILE_OVERHEAD_CYCLES));
    }

    #[test]
    fn reordered_blocks_are_faster() {
        assert!(block_cycles(16, 64, 16, true) < block_cycles(16, 64, 16, false));
    }

    #[test]
    fn block_flops_counts_fmas_twice() {
        assert_eq!(block_flops(4, 16, 8), 2 * 4 * 16 * 8);
    }

    #[test]
    fn partial_tiles_round_up() {
        let full = block_cycles(4, 16, 8, true);
        let partial = block_cycles(3, 15, 8, true);
        assert_eq!(full, partial, "partial tiles cost a full tile");
    }
}
