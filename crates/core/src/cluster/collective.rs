//! Bucketized, overlap-aware gradient collectives.
//!
//! PR 7's trainer did one monolithic allreduce after all backward work
//! finished — correct, but it serialized the step into `compute; comm`.
//! This module cuts the flattened gradient into fixed-size **buckets**
//! and launches each bucket's allreduce as soon as backward has produced
//! it, so communication overlaps the tail of backward compute exactly
//! like a real DDP bucketing engine.
//!
//! Three invariants make that safe here:
//!
//! 1. **Numerics never move.** The reduced gradient is defined per
//!    parameter as the left-to-right sum over *global microbatch index*
//!    ([`super::allreduce::reduce_fixed_order`]). Summation is
//!    element-wise, so partitioning the parameter axis into buckets
//!    cannot change a single bit — [`reduce_bucketized`] is bit-equal to
//!    the monolithic reduce at every bucket size, and a property test
//!    pins it.
//! 2. **Readiness is modeled from the backward walk.** Backward visits
//!    layers last-to-first, while `take_gradients` flattens in forward
//!    layer order — so the *tail* of the flat vector is produced first.
//!    Bucket `[lo, hi)` becomes ready when the final microbatch's
//!    backward sweep passes parameter `lo`:
//!    `ready = end − backward_fraction·mb_us·(lo/total)`.
//! 3. **Contention is priced, not ignored.** Every bucket's
//!    [`CollectiveSchedule`] executes against one shared
//!    [`LinkOccupancy`], so buckets in flight at the same time serialize
//!    on send ports, receive ports, and group uplinks
//!    ([`sw_perfmodel::NetworkModel`]).
//!
//! The module also owns microbatch sharding: ragged contiguous
//! assignment ([`shard_microbatches`]) and the deterministic
//! round-robin reshard the elastic trainer applies when a chip dies
//! mid-step ([`reshard_on_failure`]).

use crate::error::SwdnnError;
use std::ops::Range;
use sw_perfmodel::{AllreduceKind, CollectiveSchedule, LinkOccupancy, NetworkModel};

/// Partition of the flattened parameter axis into contiguous buckets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BucketPlan {
    /// Total flattened parameters.
    pub total_params: usize,
    /// Ascending, contiguous, non-empty ranges covering `0..total`.
    pub buckets: Vec<Range<usize>>,
}

impl BucketPlan {
    /// One bucket spanning everything — the monolithic PR 7 behavior.
    pub fn single(total_params: usize) -> Self {
        let mut buckets = Vec::new();
        if total_params > 0 {
            buckets.push(0..total_params);
        }
        Self {
            total_params,
            buckets,
        }
    }

    /// Cut into buckets of `bucket_params` parameters (the last bucket
    /// takes the ragged remainder). `bucket_params == 0` degrades to a
    /// single bucket.
    pub fn fixed_size(total_params: usize, bucket_params: usize) -> Self {
        if bucket_params == 0 || bucket_params >= total_params {
            return Self::single(total_params);
        }
        let mut buckets = Vec::new();
        let mut lo = 0usize;
        while lo < total_params {
            let hi = (lo + bucket_params).min(total_params);
            buckets.push(lo..hi);
            lo = hi;
        }
        Self {
            total_params,
            buckets,
        }
    }

    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }
}

/// Bucketized fixed-order reduction: per bucket, sum the microbatch
/// shards strictly left to right in global index order. Because the sum
/// is element-wise, the concatenated result is bit-identical to
/// [`super::allreduce::reduce_fixed_order`] over the whole vector — at
/// every bucket size.
pub fn reduce_bucketized(per_microbatch: &[Vec<f64>], plan: &BucketPlan) -> Vec<f64> {
    let Some(first) = per_microbatch.first() else {
        return Vec::new();
    };
    assert_eq!(first.len(), plan.total_params, "plan must match gradient");
    let mut acc = vec![0.0f64; plan.total_params];
    for bucket in &plan.buckets {
        for g in per_microbatch {
            assert_eq!(g.len(), acc.len(), "gradient shards must agree in length");
            for i in bucket.clone() {
                acc[i] += g[i];
            }
        }
    }
    acc
}

/// Ragged contiguous microbatch assignment: chip `i` of `chips` owns a
/// contiguous run of global microbatch indices, the first `M mod C`
/// chips taking one extra. Deterministic, order-preserving (chip `i`'s
/// run starts where chip `i−1`'s ends), and total — every index is owned
/// exactly once. Errors only when some chip would own nothing.
pub fn shard_microbatches(
    microbatches: usize,
    chips: usize,
) -> Result<Vec<Range<usize>>, SwdnnError> {
    if chips == 0 || microbatches < chips {
        return Err(SwdnnError::InsufficientMicrobatches {
            microbatches,
            chips,
        });
    }
    let base = microbatches / chips;
    let extra = microbatches % chips;
    let mut out = Vec::with_capacity(chips);
    let mut lo = 0usize;
    for i in 0..chips {
        let n = base + usize::from(i < extra);
        out.push(lo..lo + n);
        lo += n;
    }
    debug_assert_eq!(lo, microbatches);
    Ok(out)
}

/// Redistribute the failed chip's *entire* assignment round-robin over
/// the survivors (ascending position order, cycling). Returns one extra
/// index list per position in `assignment`; the victim's own list is
/// empty. A failed chip's partial gradients die with it, so every one of
/// its microbatches is recomputed by a survivor — zero lost work, and
/// because survivors feed the same fixed-order reduction, zero numeric
/// drift.
pub fn reshard_on_failure(assignment: &[Range<usize>], victim: usize) -> Vec<Vec<usize>> {
    let mut extra: Vec<Vec<usize>> = vec![Vec::new(); assignment.len()];
    let survivors: Vec<usize> = (0..assignment.len()).filter(|&p| p != victim).collect();
    if survivors.is_empty() {
        return extra;
    }
    for (k, idx) in assignment[victim].clone().enumerate() {
        extra[survivors[k % survivors.len()]].push(idx);
    }
    extra
}

/// One bucket's allreduce as it actually ran on the network.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BucketSpan {
    /// Bucket index in the [`BucketPlan`].
    pub bucket: usize,
    /// Parameter range `[lo, hi)`.
    pub lo: usize,
    pub hi: usize,
    /// Payload bytes (8 per parameter).
    pub bytes: u64,
    pub kind: AllreduceKind,
    /// When backward finished producing the bucket, µs (absolute).
    pub ready_us: f64,
    /// When the first transfer started (≥ ready when links were busy).
    pub start_us: f64,
    /// When the allgather finished on every member.
    pub finish_us: f64,
}

/// The whole step's gradient communication, bucket by bucket.
#[derive(Clone, Debug, PartialEq)]
pub struct CollectiveReport {
    /// Schedule a monolithic reduce of the full tensor would pick —
    /// the headline the legacy `AllreduceReport` keeps carrying.
    pub kind: AllreduceKind,
    pub buckets: usize,
    /// Full gradient payload, bytes.
    pub tensor_bytes: u64,
    /// Σ per-bucket wire time (start→finish), µs.
    pub comm_us: f64,
    /// When the last bucket finished, µs (absolute).
    pub finish_us: f64,
    /// Wire time hidden under backward compute, µs:
    /// `Σ max(0, min(finish, compute_end) − start)`.
    pub hidden_us: f64,
    /// `1000 · hidden / comm` (0 when there is no wire time at all).
    pub overlap_permille: u64,
    /// Bytes the busiest member put on the wire, summed over buckets.
    pub wire_bytes_per_chip: u64,
    pub spans: Vec<BucketSpan>,
}

/// Execute every bucket's allreduce over the shared occupancy.
///
/// Buckets launch in *descending index order* — the tail of the flat
/// gradient is produced first by backward, so the highest bucket has the
/// earliest `ready_us`. Each bucket independently picks ring or tree for
/// its own size (small ragged tails ride the tree, big buckets the
/// ring), and all of them contend for the same ports and uplinks in
/// `occ`. `compute_end_us` is the global end of backward compute, used
/// only for the overlap accounting.
pub fn run_collective(
    model: &NetworkModel,
    occ: &mut LinkOccupancy,
    members: &[usize],
    plan: &BucketPlan,
    ready_us: &[f64],
    compute_end_us: f64,
) -> CollectiveReport {
    assert_eq!(ready_us.len(), plan.len(), "one ready time per bucket");
    let tensor_bytes = (plan.total_params * 8) as u64;
    let kind = CollectiveSchedule::plan(&model.spec, members, tensor_bytes).kind;
    let mut spans = Vec::with_capacity(plan.len());
    let mut comm_us = 0.0;
    let mut hidden_us = 0.0;
    let mut finish_us = compute_end_us;
    let mut wire_bytes_per_chip = 0u64;
    for b in (0..plan.len()).rev() {
        let range = &plan.buckets[b];
        let bytes = ((range.end - range.start) * 8) as u64;
        let sched = CollectiveSchedule::plan(&model.spec, members, bytes);
        let cost = model.execute(occ, &sched, ready_us[b]);
        let dur = cost.finish_us - cost.start_us;
        comm_us += dur;
        hidden_us += (cost.finish_us.min(compute_end_us) - cost.start_us).max(0.0);
        finish_us = finish_us.max(cost.finish_us);
        wire_bytes_per_chip += sched.wire_bytes_per_chip();
        spans.push(BucketSpan {
            bucket: b,
            lo: range.start,
            hi: range.end,
            bytes,
            kind: sched.kind,
            ready_us: ready_us[b],
            start_us: cost.start_us,
            finish_us: cost.finish_us,
        });
    }
    let overlap_permille = if comm_us > 0.0 {
        (1000.0 * hidden_us / comm_us).round() as u64
    } else {
        0
    };
    CollectiveReport {
        kind,
        buckets: plan.len(),
        tensor_bytes,
        comm_us,
        finish_us,
        hidden_us,
        overlap_permille,
        wire_bytes_per_chip,
        spans,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::allreduce::reduce_fixed_order;
    use sw_perfmodel::{InterconnectSpec, Topology};

    fn shards(m: usize, n: usize, seed: u64) -> Vec<Vec<f64>> {
        // Deterministic awkward values: sums round differently if the
        // order or grouping changes.
        (0..m)
            .map(|i| {
                (0..n)
                    .map(|j| {
                        let x = ((i as u64 + 1) * 2654435761 + (j as u64) * 40503 + seed) % 997;
                        (x as f64 - 498.0) / 313.0
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn bucketized_reduce_is_bit_identical_to_monolithic() {
        let g = shards(7, 103, 5);
        let want = reduce_fixed_order(&g);
        for bucket_params in [1usize, 2, 7, 16, 50, 103, 1000] {
            let plan = BucketPlan::fixed_size(103, bucket_params);
            let got = reduce_bucketized(&g, &plan);
            assert_eq!(got, want, "bucket_params={bucket_params} drifted");
        }
    }

    #[test]
    fn fixed_size_plans_cover_everything_once() {
        let plan = BucketPlan::fixed_size(10, 3);
        assert_eq!(plan.buckets, vec![0..3, 3..6, 6..9, 9..10]);
        assert_eq!(BucketPlan::fixed_size(10, 0).len(), 1);
        assert_eq!(BucketPlan::fixed_size(10, 99).len(), 1);
        assert!(BucketPlan::single(0).is_empty());
    }

    #[test]
    fn ragged_sharding_is_contiguous_and_total() {
        let s = shard_microbatches(8, 3).unwrap();
        assert_eq!(s, vec![0..3, 3..6, 6..8]);
        let even = shard_microbatches(8, 4).unwrap();
        assert_eq!(even, vec![0..2, 2..4, 4..6, 6..8]);
        assert!(matches!(
            shard_microbatches(2, 3),
            Err(SwdnnError::InsufficientMicrobatches {
                microbatches: 2,
                chips: 3
            })
        ));
        assert!(shard_microbatches(5, 0).is_err());
    }

    #[test]
    fn reshard_spreads_the_victims_whole_assignment() {
        let assignment = shard_microbatches(8, 3).unwrap(); // 3,3,2
        let extra = reshard_on_failure(&assignment, 0);
        assert!(extra[0].is_empty(), "victim receives nothing");
        // Victim owned 0,1,2 → round-robin over survivors 1,2.
        assert_eq!(extra[1], vec![0, 2]);
        assert_eq!(extra[2], vec![1]);
        let total: usize = extra.iter().map(|e| e.len()).sum();
        assert_eq!(total, 3, "zero lost microbatches");
    }

    #[test]
    fn earlier_ready_buckets_overlap_compute() {
        let model = NetworkModel::new(InterconnectSpec::sw_cluster(), Topology::flat());
        let members = [0usize, 1, 2, 3];
        let plan = BucketPlan::fixed_size(4000, 1000);
        let compute_end = 1000.0;
        // Tail bucket ready well before compute end; head bucket at it.
        let ready = vec![1000.0, 900.0, 800.0, 700.0];
        let mut occ = LinkOccupancy::new();
        let r = run_collective(&model, &mut occ, &members, &plan, &ready, compute_end);
        assert_eq!(r.buckets, 4);
        assert!(r.hidden_us > 0.0, "tail buckets must hide under compute");
        assert!(r.overlap_permille > 0);
        assert!(r.finish_us > compute_end);
        // Spans launch tail-first and stay within [ready, finish].
        assert_eq!(r.spans[0].bucket, 3);
        for s in &r.spans {
            assert!(s.start_us >= s.ready_us - 1e-9);
            assert!(s.finish_us > s.start_us);
        }
        // Non-overlapped comparator: same buckets all released at
        // compute end must finish strictly later.
        let mut occ2 = LinkOccupancy::new();
        let flat_ready = vec![compute_end; plan.len()];
        let r2 = run_collective(&model, &mut occ2, &members, &plan, &flat_ready, compute_end);
        assert!(
            r.finish_us < r2.finish_us,
            "overlap {} must beat serial {}",
            r.finish_us,
            r2.finish_us
        );
        assert_eq!(r2.hidden_us, 0.0);
    }

    #[test]
    fn single_chip_collective_is_free() {
        let model = NetworkModel::new(InterconnectSpec::sw_cluster(), Topology::flat());
        let plan = BucketPlan::single(646);
        let mut occ = LinkOccupancy::new();
        let r = run_collective(&model, &mut occ, &[0], &plan, &[500.0], 500.0);
        assert_eq!(r.comm_us, 0.0);
        assert_eq!(r.finish_us, 500.0);
        assert_eq!(r.wire_bytes_per_chip, 0);
        assert_eq!(r.overlap_permille, 0);
    }
}
