//! Deterministic request routing across chips: consistent hashing by
//! shape with a least-loaded fallback.
//!
//! The primary assignment is a consistent-hash ring over virtual nodes
//! (`vnodes` per chip) keyed by a [`ConvShape`] hash, so each hot shape
//! pins to one chip — that chip's [`super::super::serve::PlanCache`]
//! stays hot for it, and adding or removing a chip remaps only the
//! shapes whose ring arcs move (the classic 1/N reshuffle, not a full
//! rehash). The fallback walks the ring past down or saturated chips,
//! and when the whole ring is saturated it picks the least-loaded
//! healthy chip outright.
//!
//! Everything here is a pure function of `(shape, loads, down)` — no
//! RNG, no wall clock — so a routing trace replays bit-for-bit and the
//! cluster tests fingerprint it.

use sw_tensor::ConvShape;

/// SplitMix64 — the same mixing permutation the fault plans and the
/// chaos trace generator use for seeded decision streams.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Consistent-hash router over `chips` peers.
#[derive(Clone, Debug)]
pub struct ShapeRouter {
    /// `(hash, chip)` ring points, sorted by hash.
    ring: Vec<(u64, usize)>,
    chips: usize,
}

impl ShapeRouter {
    /// A ring with `vnodes` virtual nodes per chip. More vnodes smooth
    /// the arc distribution; 16 keeps a 4-shape serving mix within one
    /// request of balanced at 8 chips.
    pub fn new(chips: usize, vnodes: usize) -> Self {
        assert!(chips >= 1, "a cluster has at least one chip");
        let vnodes = vnodes.max(1);
        let mut ring = Vec::with_capacity(chips * vnodes);
        for chip in 0..chips {
            for v in 0..vnodes {
                let h = splitmix64(((chip as u64) << 20) ^ v as u64 ^ 0xC1A5_7E12);
                ring.push((h, chip));
            }
        }
        ring.sort_unstable();
        Self { ring, chips }
    }

    pub fn chips(&self) -> usize {
        self.chips
    }

    /// Stable hash of a shape's identity fields.
    pub fn hash_shape(shape: &ConvShape) -> u64 {
        let mut h = 0x5EED_0000_0000_0001u64;
        for field in [
            shape.batch,
            shape.ni,
            shape.no,
            shape.ro,
            shape.co,
            shape.kr,
            shape.kc,
        ] {
            h = splitmix64(h ^ field as u64);
        }
        h
    }

    /// Ring position of `shape`'s primary chip, ignoring health/load.
    pub fn primary(&self, shape: &ConvShape) -> usize {
        let h = Self::hash_shape(shape);
        let idx = self
            .ring
            .partition_point(|&(point, _)| point < h)
            .checked_rem(self.ring.len())
            .unwrap_or(0);
        self.ring[idx].1
    }

    /// Route one request. A chip is eligible when it is not `down` and
    /// its queue depth is under `threshold`. The primary wins when
    /// eligible; otherwise the walk continues clockwise around the ring
    /// to the next eligible chip; if every chip is at or over threshold
    /// the least-loaded healthy chip (lowest index on ties) takes it.
    /// Returns `None` only when every chip is down.
    pub fn route(
        &self,
        shape: &ConvShape,
        loads: &[usize],
        down: &[bool],
        threshold: usize,
    ) -> Option<usize> {
        assert_eq!(loads.len(), self.chips);
        assert_eq!(down.len(), self.chips);
        let h = Self::hash_shape(shape);
        let start = self
            .ring
            .partition_point(|&(point, _)| point < h)
            .checked_rem(self.ring.len())
            .unwrap_or(0);
        for i in 0..self.ring.len() {
            let (_, chip) = self.ring[(start + i) % self.ring.len()];
            if !down[chip] && loads[chip] < threshold {
                return Some(chip);
            }
        }
        // Every eligible arc is saturated: shed load evenly instead of
        // hammering the hash-preferred chip.
        (0..self.chips)
            .filter(|&c| !down[c])
            .min_by_key(|&c| (loads[c], c))
    }

    /// Fold a routing decision into a running fingerprint — the cluster
    /// determinism tests compare this digest across thread counts.
    pub fn fold_fingerprint(acc: u64, shape: &ConvShape, chip: usize) -> u64 {
        splitmix64(acc ^ Self::hash_shape(shape) ^ ((chip as u64) << 48))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shapes() -> Vec<ConvShape> {
        crate::zoo::serving_mix()
            .into_iter()
            .map(|(_, s)| s)
            .collect()
    }

    #[test]
    fn primary_is_stable_and_in_range() {
        let r = ShapeRouter::new(8, 16);
        for s in shapes() {
            let p = r.primary(&s);
            assert!(p < 8);
            assert_eq!(p, r.primary(&s), "routing is a pure function");
        }
    }

    #[test]
    fn adding_a_chip_remaps_only_some_shapes() {
        // Consistent hashing: growing the ring must not reshuffle every
        // assignment. With few shapes assert stability as "most stay".
        let small = ShapeRouter::new(4, 64);
        let big = ShapeRouter::new(5, 64);
        let mut moved = 0;
        let mut total = 0;
        // A spread of synthetic shapes for statistical coverage.
        for b in 1..64usize {
            let s = ConvShape::new(b, 8, 8, 8, 8, 3, 3);
            total += 1;
            let p = small.primary(&s);
            if big.primary(&s) != p {
                moved += 1;
            }
        }
        assert!(moved > 0, "the new chip must take some arcs");
        assert!(
            moved < total / 2,
            "only ~1/5 of shapes should move, moved {moved}/{total}"
        );
    }

    #[test]
    fn down_chips_are_never_routed_to() {
        let r = ShapeRouter::new(4, 16);
        let loads = [0usize; 4];
        for s in shapes() {
            let p = r.primary(&s);
            let mut down = [false; 4];
            down[p] = true;
            let got = r.route(&s, &loads, &down, 100).unwrap();
            assert_ne!(got, p, "down primary must be skipped");
        }
        assert_eq!(
            r.route(&shapes()[0], &loads, &[true; 4], 100),
            None,
            "all chips down"
        );
    }

    #[test]
    fn saturated_primary_falls_back_then_least_loaded() {
        let r = ShapeRouter::new(4, 16);
        let s = shapes()[0];
        let p = r.primary(&s);
        // Saturate the primary only: the request walks to another chip.
        let mut loads = [0usize; 4];
        loads[p] = 10;
        let next = r.route(&s, &loads, &[false; 4], 10).unwrap();
        assert_ne!(next, p);
        // Saturate everyone: least-loaded healthy chip wins.
        let loads = [10usize, 3, 10, 10];
        assert_eq!(r.route(&s, &loads, &[false; 4], 10), Some(1));
    }

    #[test]
    fn ring_spreads_a_shape_sweep_across_all_chips() {
        let r = ShapeRouter::new(8, 16);
        let mut hit = [false; 8];
        for b in 1..256usize {
            hit[r.primary(&ConvShape::new(b, 8, 8, 8, 8, 3, 3))] = true;
        }
        assert!(hit.iter().all(|&h| h), "every chip owns some arc: {hit:?}");
    }

    #[test]
    fn fingerprint_reflects_decisions() {
        let s = shapes()[0];
        let a = ShapeRouter::fold_fingerprint(0, &s, 1);
        let b = ShapeRouter::fold_fingerprint(0, &s, 2);
        assert_ne!(a, b, "different chip, different digest");
        assert_eq!(a, ShapeRouter::fold_fingerprint(0, &s, 1));
    }
}
