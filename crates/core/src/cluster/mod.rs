//! Multi-chip cluster scale-out: fleet serving and data-parallel
//! training over a modeled interconnect.
//!
//! One SW26010 chip is the unit every lower layer simulates. This
//! module composes N of them:
//!
//! * [`router`] — deterministic consistent-hash routing of serving
//!   requests by shape (plan caches stay hot per chip) with
//!   least-loaded spill and down-chip avoidance;
//! * [`fleet`] — the [`Cluster`] front door: N independent
//!   [`crate::serve::ServeEngine`]s (each its own plan cache, breaker
//!   state, and optionally its own worker pool) joined by ingress links
//!   whose latency and wire time are charged into the shared
//!   deterministic logical clock, plus chip-failure evacuation that
//!   reroutes queued work without losing it;
//! * [`allreduce`] — fixed-order gradient reduction: numerics are
//!   defined by microbatch index (left-to-right sum), the collective
//!   schedule (ring or tree, chosen by modeled cost) defines only time
//!   and wire bytes, so gradients are bit-identical at any chip count;
//! * [`train`] — [`DataParallelTrainer`]: synchronous data-parallel SGD
//!   over the [`crate::network`] stack with the allreduce charged per
//!   step, emitting per-chip compute spans and per-link byte counters.
//!
//! The interconnect itself is modeled in
//! [`sw_perfmodel::InterconnectSpec`] (per-link latency + bandwidth, as
//! in the TaihuLight fat-tree's intra-supernode tier), keeping the cost
//! model next to the chip-level roofline it extends.

pub mod allreduce;
pub mod fleet;
pub mod router;
pub mod train;

pub use allreduce::{
    load_gradients, plan_allreduce, reduce_fixed_order, take_gradients, AllreduceReport,
};
pub use fleet::{Cluster, ClusterConfig, ClusterSummary};
pub use router::ShapeRouter;
pub use train::{DataParallelTrainer, StepReport, TrainConfig};
