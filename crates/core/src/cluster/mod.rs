//! Multi-chip cluster scale-out: fleet serving and data-parallel
//! training over a modeled interconnect.
//!
//! One SW26010 chip is the unit every lower layer simulates. This
//! module composes N of them:
//!
//! * [`router`] — deterministic consistent-hash routing of serving
//!   requests by shape (plan caches stay hot per chip) with
//!   least-loaded spill and down-chip avoidance;
//! * [`fleet`] — the [`Cluster`] front door: N independent
//!   [`crate::serve::ServeEngine`]s (each its own plan cache, breaker
//!   state, and optionally its own worker pool) joined by ingress links
//!   whose latency and wire time are charged into the shared
//!   deterministic logical clock, plus chip-failure evacuation that
//!   reroutes queued work without losing it;
//! * [`allreduce`] — fixed-order gradient reduction: numerics are
//!   defined by microbatch index (left-to-right sum), the collective
//!   schedule (ring or tree, chosen by modeled cost) defines only time
//!   and wire bytes, so gradients are bit-identical at any chip count;
//! * [`collective`] — bucketized, overlap-aware gradient communication:
//!   the flat gradient cut into buckets, each launching its own
//!   [`sw_perfmodel::CollectiveSchedule`] at modeled backward-readiness
//!   against shared per-link occupancy, plus the ragged microbatch
//!   sharding and failure-reshard helpers;
//! * [`train`] — [`DataParallelTrainer`]: synchronous, *elastic*
//!   data-parallel SGD over the [`crate::network`] stack — bucketized
//!   collectives charged per step, per-chip compute and per-bucket comm
//!   spans, and deterministic mid-step chip-failure recovery that
//!   reshards lost microbatches onto survivors without moving a bit of
//!   the parameters.
//!
//! The interconnect itself is modeled in
//! [`sw_perfmodel::InterconnectSpec`] + [`sw_perfmodel::Topology`]
//! (per-link latency + bandwidth, switch groups with shared uplinks, as
//! in the TaihuLight fat-tree's supernode tier), keeping the cost model
//! next to the chip-level roofline it extends.

pub mod allreduce;
pub mod collective;
pub mod fleet;
pub mod router;
pub mod train;

pub use allreduce::{
    load_gradients, plan_allreduce, reduce_fixed_order, take_gradients, AllreduceReport,
};
pub use collective::{
    reduce_bucketized, reshard_on_failure, run_collective, shard_microbatches, BucketPlan,
    BucketSpan, CollectiveReport,
};
pub use fleet::{Cluster, ClusterConfig, ClusterSummary};
pub use router::ShapeRouter;
pub use train::{CollectiveSummary, DataParallelTrainer, StepReport, TrainConfig};
